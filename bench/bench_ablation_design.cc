// Ablation bench — the design choices DESIGN.md calls out, each evaluated
// by the combined score of the resulting 10x10 sub-table on FL:
//   (a) corpus composition: tuple-sentences / column-sentences / both
//       (Algorithm 2 line 2 uses both);
//   (b) context subsampling cap (our tractable stand-in for the paper's
//       whole-sentence window, DESIGN.md §3);
//   (c) embedding dimension;
//   (d) binning strategy fed to the pipeline (the paper uses KDE binning).
// Not in the paper as a figure — this quantifies our documented deviations.

#include "subtab/util/stopwatch.h"

#include "bench_common.h"

namespace subtab::bench {
namespace {

double ScoreConfig(const GeneratedDataset& data, const CoverageEvaluator& evaluator,
                   SubTabConfig config, double* seconds) {
  Stopwatch watch;
  Result<SubTab> st = SubTab::Fit(data.table, config);
  SUBTAB_CHECK(st.ok());
  const SubTabView view = st->Select();
  *seconds = watch.ElapsedSeconds();
  return ScoreSubTable(evaluator, view.row_ids, view.col_ids, 0.5).combined;
}

}  // namespace
}  // namespace subtab::bench

int main(int argc, char** argv) {
  using namespace subtab::bench;
  using namespace subtab;
  const BenchArgs args = ParseBenchArgs(argc, argv);
  Header("Ablations: corpus composition, pair cap, dimension, binning (FL)");

  const size_t rows = Sized(args, 8000, 2000);
  auto p = Pipeline::Build("FL", rows);
  const CoverageEvaluator& evaluator = p->eval();
  double seconds = 0.0;

  std::printf("\n(a) corpus composition (Algorithm 2 uses rows + columns):\n");
  for (int mode = 0; mode < 3; ++mode) {
    SubTabConfig config = DefaultConfig();
    config.corpus.tuple_sentences = mode != 1;
    config.corpus.column_sentences = mode != 0;
    const char* label = mode == 0 ? "rows only" : mode == 1 ? "cols only" : "both";
    const double score = ScoreConfig(p->data, evaluator, config, &seconds);
    std::printf("  %-10s combined=%.3f  (fit %5.2fs)\n", label, score, seconds);
  }

  std::printf("\n(b) context pairs per token (whole-sentence window subsample):\n");
  for (size_t cap : {4u, 16u, 64u}) {
    SubTabConfig config = DefaultConfig();
    config.embedding.max_pairs_per_token = cap;
    const double score = ScoreConfig(p->data, evaluator, config, &seconds);
    std::printf("  cap=%-6zu combined=%.3f  (fit %5.2fs)\n", cap, score, seconds);
  }

  std::printf("\n(c) embedding dimension:\n");
  for (size_t dim : {8u, 32u, 96u}) {
    SubTabConfig config = DefaultConfig();
    config.embedding.dim = dim;
    const double score = ScoreConfig(p->data, evaluator, config, &seconds);
    std::printf("  dim=%-6zu combined=%.3f  (fit %5.2fs)\n", dim, score, seconds);
  }

  std::printf("\n(d) binning strategy driving the pipeline:\n");
  for (BinningStrategy strategy :
       {BinningStrategy::kEqualWidth, BinningStrategy::kQuantile,
        BinningStrategy::kKde}) {
    SubTabConfig config = DefaultConfig();
    config.binning.strategy = strategy;
    const double score = ScoreConfig(p->data, evaluator, config, &seconds);
    std::printf("  %-12s combined=%.3f  (fit %5.2fs)\n",
                BinningStrategyName(strategy), score, seconds);
  }
  return 0;
}
