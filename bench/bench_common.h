#ifndef SUBTAB_BENCH_BENCH_COMMON_H_
#define SUBTAB_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <string>
#include <type_traits>
#include <vector>

#include "subtab/baselines/naive_clustering.h"
#include "subtab/baselines/random_baseline.h"
#include "subtab/core/subtab.h"
#include "subtab/data/datasets.h"
#include "subtab/eda/session.h"
#include "subtab/rules/miner.h"
#include "subtab/util/parallel.h"

/// \file bench_common.h
/// Shared scaffolding for the per-figure/table benchmark harnesses. Every
/// harness prints (a) what the paper reports and (b) what this reproduction
/// measures, using scaled synthetic datasets (DESIGN.md §4). Budgeted
/// baselines get budgets scaled with the data (the paper's 60 s of RAN
/// against 6M rows becomes a bounded draw count here); each harness states
/// its scaling in its header line.
///
/// Every harness accepts `--quick` (ParseBenchArgs): CI-sized runs with the
/// same shape at ~1/4 of the data, so a workflow can smoke every bench in
/// minutes instead of hardcoding full-report sizes.

namespace subtab::bench {

/// Command-line options common to all harnesses.
struct BenchArgs {
  /// CI-sized run: datasets shrink (see Sized), variant sweeps may narrow.
  bool quick = false;
};

/// Parses harness arguments; exits with a usage message on unknown flags so
/// a typo never silently runs the full-size report.
inline BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      args.quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick]\n  --quick  CI-sized run\n",
                   argv[0]);
      std::exit(arg == "--help" || arg == "-h" ? 0 : 2);
    }
  }
  return args;
}

/// Centralized --quick sizing. Quick CI runs derive from ONE scale factor —
/// 1/4 of the full-report data — instead of ad-hoc per-bench constants, so
/// every harness shrinks consistently and quick CI wall-clock stays bounded
/// (<60 s per bench) by construction as full sizes grow. Per-site floors
/// keep sizes above structural thresholds (e.g. the 10k sampled-selection
/// cutoff needs a >10k quick scope); Pick is the explicit escape hatch for
/// the few benches whose quick size is deliberately deeper than 1/4 (the
/// runtime-dominated fig9 harness).
struct BenchScale {
  bool quick = false;
  double factor = 1.0;  ///< Data-size multiplier applied under --quick.

  /// `full` scaled by the factor under --quick, never below `quick_floor`.
  size_t Rows(size_t full, size_t quick_floor = 1) const {
    if (!quick) return full;
    const auto scaled =
        static_cast<size_t>(static_cast<double>(full) * factor);
    return std::max(quick_floor, std::max<size_t>(1, scaled));
  }
  /// Same scaling for non-row counts (sessions, batches, sweep widths);
  /// reads better at call sites.
  size_t Count(size_t full, size_t quick_floor = 1) const {
    return Rows(full, quick_floor);
  }
  /// Explicit quick-size override (the pre-centralization Sized semantics).
  size_t Pick(size_t full, size_t quick_size) const {
    return quick ? quick_size : full;
  }
};

/// The one place the quick factor is defined.
inline BenchScale ScaleFor(bool quick) {
  return BenchScale{quick, quick ? 0.25 : 1.0};
}

/// The full-report size, or the explicit CI size under --quick (routes
/// through BenchScale::Pick; prefer ScaleFor(...).Rows for new call sites).
inline size_t Sized(const BenchArgs& args, size_t full, size_t quick) {
  return ScaleFor(args.quick).Pick(full, quick);
}

/// Flattens generated analyst sessions into their step queries — the
/// request stream the serving/streaming harnesses replay. Each session's
/// final step has no next-step to capture, so harnesses that score capture
/// pass include_final_step = false.
inline std::vector<SpQuery> StepQueries(const std::vector<Session>& sessions,
                                        bool include_final_step = true) {
  std::vector<SpQuery> queries;
  for (const Session& session : sessions) {
    const size_t count = include_final_step || session.steps.empty()
                             ? session.steps.size()
                             : session.steps.size() - 1;
    for (size_t i = 0; i < count; ++i) {
      queries.push_back(session.steps[i].query);
    }
  }
  return queries;
}

/// Indices [begin, end) — batch/base slicing in the streaming harnesses.
inline std::vector<size_t> RowRange(size_t begin, size_t end) {
  std::vector<size_t> rows(end - begin);
  std::iota(rows.begin(), rows.end(), begin);
  return rows;
}

/// Standard reproduction config (paper defaults; multithreaded training).
inline SubTabConfig DefaultConfig(uint64_t seed = 42) {
  SubTabConfig config;
  config.k = 10;
  config.l = 10;
  config.embedding.dim = 32;
  config.embedding.epochs = 3;
  // Single-threaded training: with our few-hundred-token vocabularies,
  // hogwild updates collide on the same vectors and cost quality (the
  // paper's gensim runs face the same trade-off at much larger vocabs).
  config.embedding.num_threads = 1;
  config.seed = seed;
  return config;
}

/// Paper-default rule mining (Sec. 6.1): support 0.1, confidence 0.6,
/// minimum rule size 3.
inline RuleMiningOptions DefaultMining() {
  RuleMiningOptions mining;
  mining.apriori.min_support = 0.1;
  mining.min_confidence = 0.6;
  mining.min_rule_size = 3;
  return mining;
}

/// Bench-scale dataset sizes (~1/10 of the already-scaled library defaults,
/// so each harness stays within a couple of minutes).
inline GeneratedDataset LoadDataset(const std::string& name, size_t rows) {
  if (name == "FL") return MakeFlights(rows);
  if (name == "CY") return MakeCyber(rows);
  if (name == "SP") return MakeSpotify(rows);
  if (name == "CC") return MakeCreditCard(rows);
  if (name == "USF") return MakeUsFunds(rows);
  if (name == "BL") return MakeBankLoans(rows);
  SUBTAB_CHECK(false);
  return MakeFlights(rows);
}

/// Prints a section header.
inline void Header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Prints the paper-reported reference line for a figure/table.
inline void PaperRef(const std::string& text) {
  std::printf("paper    | %s\n", text.c_str());
}

/// Prints one measured line, aligned with PaperRef.
inline void Measured(const std::string& text) {
  std::printf("measured | %s\n", text.c_str());
}

/// Collects a run's JSON records and writes them as one machine-readable
/// document — BENCH_<name>.json in the working directory — so the repo
/// accumulates a perf trajectory (CI uploads these artifacts from --quick
/// runs). Records are whatever JsonLine::Emit(&file) rendered, in order.
class BenchJsonFile {
 public:
  BenchJsonFile(std::string bench, bool quick)
      : bench_(std::move(bench)), quick_(quick) {}

  void Add(const std::string& record) { records_.push_back(record); }

  /// Writes {"bench":...,"quick":...,"records":[...]}; warns (but does not
  /// fail the bench) when the file cannot be opened.
  void Write() const {
    const std::string path = "BENCH_" + bench_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\"bench\":\"%s\",\"quick\":%s,\"records\":[",
                 bench_.c_str(), quick_ ? "true" : "false");
    for (size_t i = 0; i < records_.size(); ++i) {
      std::fprintf(f, "%s%s", i == 0 ? "" : ",", records_[i].c_str());
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu records)\n", path.c_str(), records_.size());
  }

 private:
  std::string bench_;
  bool quick_;
  std::vector<std::string> records_;
};

/// The repo's standard machine-readable bench record: one JSON object per
/// line, prefixed "json | " so downstream tooling can grep it out of the
/// human-readable report:
///
///   JsonLine("serving_throughput").Field("threads", 4).Field("rps", r).Emit();
///
/// Emit(&file) additionally appends the record to a BenchJsonFile, feeding
/// the BENCH_<name>.json artifact. Keys are emitted in insertion order;
/// strings are assumed not to need escaping (bench names and phases only).
class JsonLine {
 public:
  explicit JsonLine(const std::string& bench) {
    body_ = "{\"bench\":\"" + bench + "\"";
  }
  JsonLine& Field(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return Raw(key, buf);
  }
  /// Any integer type (the template avoids int-literal overload ambiguity
  /// between the double and a fixed-width integer overload).
  template <typename T, typename = std::enable_if_t<std::is_integral_v<T>>>
  JsonLine& Field(const std::string& key, T value) {
    return Raw(key, std::to_string(value));
  }
  JsonLine& Field(const std::string& key, const std::string& value) {
    return Raw(key, "\"" + value + "\"");
  }
  /// Embeds pre-rendered JSON verbatim (e.g. EngineStats::ToJson()).
  JsonLine& RawField(const std::string& key, const std::string& json) {
    return Raw(key, json);
  }
  std::string Render() const { return body_ + "}"; }
  void Emit(BenchJsonFile* file = nullptr) {
    if (file != nullptr) file->Add(Render());
    std::printf("json | %s\n", Render().c_str());
  }

 private:
  JsonLine& Raw(const std::string& key, const std::string& value) {
    body_ += ",\"" + key + "\":" + value;
    return *this;
  }
  std::string body_;
};

/// One fitted pipeline: dataset + SubTab model + mined rules + evaluator.
/// Heap-allocated so every member's address is stable (the evaluator keeps
/// pointers into the binned table and rule set).
struct Pipeline {
  GeneratedDataset data;
  SubTab subtab;
  RuleSet rules;
  std::unique_ptr<CoverageEvaluator> evaluator;

  const CoverageEvaluator& eval() const { return *evaluator; }

  static std::unique_ptr<Pipeline> Build(const std::string& dataset, size_t rows,
                                         SubTabConfig config = DefaultConfig(),
                                         RuleMiningOptions mining = DefaultMining()) {
    GeneratedDataset data = LoadDataset(dataset, rows);
    Result<SubTab> st = SubTab::Fit(data.table, config);
    SUBTAB_CHECK(st.ok());
    auto pipeline = std::unique_ptr<Pipeline>(
        new Pipeline{std::move(data), std::move(*st), RuleSet{}, nullptr});
    pipeline->rules = MineRules(pipeline->subtab.preprocessed().binned(), mining);
    pipeline->evaluator = std::make_unique<CoverageEvaluator>(
        pipeline->subtab.preprocessed().binned(), pipeline->rules);
    return pipeline;
  }
};

/// Scaled RAN baseline: the paper's 60 s on full dumps becomes a bounded
/// number of draws against the scaled tables.
inline RandomBaselineOptions ScaledRan(size_t k, size_t l,
                                       std::vector<size_t> targets = {},
                                       uint64_t seed = 7) {
  RandomBaselineOptions ran;
  ran.k = k;
  ran.l = l;
  ran.target_cols = std::move(targets);
  ran.max_iterations = 100;
  ran.time_budget_seconds = 10.0;
  ran.seed = seed;
  return ran;
}

}  // namespace subtab::bench

#endif  // SUBTAB_BENCH_BENCH_COMMON_H_
