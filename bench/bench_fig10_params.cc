// Figure 10 — parameter-tuning experiment: cell coverage of the SAME
// sub-tables (SubTab / RAN / NC do not take rules as input) evaluated
// against rule sets mined with varying (a) bins per column {5, 7, 10},
// (b) support threshold {0.1, 0.2, 0.3}, (c) confidence threshold
// {0.5, 0.6, 0.7, 0.8}.
//
// Paper shape: SubTab's coverage stays well above both baselines in every
// setting; coverage decreases moderately with more bins, and only slightly
// with higher support/confidence thresholds; the ranking and relative gaps
// are preserved across all settings.

#include "bench_common.h"

namespace subtab::bench {
namespace {

struct Selections {
  std::vector<size_t> subtab_rows, subtab_cols;
  std::vector<size_t> ran_rows, ran_cols;
  std::vector<size_t> nc_rows, nc_cols;
};

/// Computes the three algorithms' sub-tables once (they are rule-free).
Selections ComputeSelections(Pipeline& p) {
  Selections out;
  const SubTabView view = p.subtab.Select();
  out.subtab_rows = view.row_ids;
  out.subtab_cols = view.col_ids;
  const BaselineResult ran = RandomBaseline(p.eval(), ScaledRan(10, 10));
  out.ran_rows = ran.row_ids;
  out.ran_cols = ran.col_ids;
  NaiveClusteringOptions nc_options;
  nc_options.k = 10;
  nc_options.l = 10;
  nc_options.max_rows = 4000;
  const BaselineResult nc = NaiveClustering(p.eval(), nc_options);
  out.nc_rows = nc.row_ids;
  out.nc_cols = nc.col_ids;
  return out;
}

void EvaluateSetting(const char* label, const BinnedTable& binned,
                     const RuleMiningOptions& mining, const Selections& sel) {
  RuleSet rules = MineRules(binned, mining);
  CoverageEvaluator evaluator(binned, rules);
  std::printf("  %-18s rules=%-7zu SubTab=%.3f  RAN=%.3f  NC=%.3f\n", label,
              rules.size(), evaluator.CellCoverage(sel.subtab_rows, sel.subtab_cols),
              evaluator.CellCoverage(sel.ran_rows, sel.ran_cols),
              evaluator.CellCoverage(sel.nc_rows, sel.nc_cols));
}

void RunDataset(const std::string& name, size_t rows) {
  std::printf("\n--- %s (%zu rows) ---\n", name.c_str(), rows);
  auto p = Pipeline::Build(name, rows);
  const Selections sel = ComputeSelections(*p);

  std::printf("(a) bins per column (support 0.1, confidence 0.6):\n");
  for (uint32_t bins : {5u, 7u, 10u}) {
    BinningOptions bin_options;
    bin_options.num_bins = bins;
    bin_options.max_cat_bins = bins;
    // Re-bin for evaluation only; selections are fixed (as in the paper).
    BinnedTable rebinned = BinnedTable::Compute(p->data.table, bin_options);
    char label[32];
    std::snprintf(label, sizeof(label), "#bins=%u", bins);
    EvaluateSetting(label, rebinned, DefaultMining(), sel);
  }

  std::printf("(b) support threshold (5 bins, confidence 0.6):\n");
  for (double support : {0.1, 0.2, 0.3}) {
    RuleMiningOptions mining = DefaultMining();
    mining.apriori.min_support = support;
    char label[32];
    std::snprintf(label, sizeof(label), "support=%.1f", support);
    EvaluateSetting(label, p->subtab.preprocessed().binned(), mining, sel);
  }

  std::printf("(c) confidence threshold (5 bins, support 0.1):\n");
  for (double confidence : {0.5, 0.6, 0.7, 0.8}) {
    RuleMiningOptions mining = DefaultMining();
    mining.min_confidence = confidence;
    char label[32];
    std::snprintf(label, sizeof(label), "confidence=%.1f", confidence);
    EvaluateSetting(label, p->subtab.preprocessed().binned(), mining, sel);
  }
}

}  // namespace
}  // namespace subtab::bench

int main(int argc, char** argv) {
  using namespace subtab::bench;
  const BenchArgs args = ParseBenchArgs(argc, argv);
  Header("Figure 10: cell coverage under varying rule-mining parameters");
  PaperRef("SubTab >> RAN, NC in every setting; moderate decrease with more");
  PaperRef("bins; minor decrease with higher support/confidence thresholds;");
  PaperRef("ranking and relative gaps preserved (averaged over FL and SP).");
  RunDataset("FL", Sized(args, 8000, 2000));
  RunDataset("SP", Sized(args, 8000, 2000));
  return 0;
}
