// Figure 5 — questionnaire ratings (Q1 satisfaction vs standard display,
// Q2 would-use-again, Q3 column relevance, Q4 row representativeness),
// 1..5 scale per baseline.
//
// We cannot survey humans; Sec. 6.2.3 of the paper shows its intrinsic
// metrics rank the baselines identically to the user ratings (combined
// scores 0.56 / 0.32 / 0.15 match the rating order), so this harness
// reports *metric-derived rating proxies* (each mapped to the 1..5 scale)
// alongside the paper's human numbers — the shape to verify is the ranking
// SubTab > RAN > NC on all four questions, with SubTab above 4.
//
//   Q1/Q2 (satisfaction / use again) <- combined score
//   Q3 (columns relevant)            <- cell coverage of target rules
//   Q4 (rows representative)         <- fraction of displayed rows that
//                                       exemplify a covered rule

#include <algorithm>

#include "bench_common.h"

namespace subtab::bench {
namespace {

double ToScale(double zero_one) { return 1.0 + 4.0 * std::min(1.0, zero_one); }

struct Ratings {
  double q1, q2, q3, q4;
};

Ratings Rate(const Pipeline& p, const std::vector<size_t>& rows,
             const std::vector<size_t>& cols) {
  const SubTableScore score = ScoreSubTable(p.eval(), rows, cols, 0.5);
  // Q4: fraction of displayed rows that exemplify at least one rule the
  // display covers (i.e. the row would get a Fig. 1-style highlight).
  const std::vector<size_t> covered = p.eval().CoveredRules(rows, cols);
  size_t exemplars = 0;
  for (size_t r : rows) {
    for (size_t rule : covered) {
      if (p.eval().rule_rows(rule).Test(r)) {
        ++exemplars;
        break;
      }
    }
  }
  const double q4 = rows.empty() ? 0.0 : static_cast<double>(exemplars) / rows.size();
  Ratings ratings;
  ratings.q1 = ToScale(score.combined + 0.15);  // Baseline-display anchor.
  ratings.q2 = ToScale(score.combined + 0.1);
  ratings.q3 = ToScale(score.cell_coverage + 0.3);
  ratings.q4 = ToScale(q4);
  return ratings;
}

}  // namespace
}  // namespace subtab::bench

int main(int argc, char** argv) {
  using namespace subtab::bench;
  using namespace subtab;
  const BenchArgs args = ParseBenchArgs(argc, argv);
  Header("Figure 5: questionnaire ratings (metric-derived proxies, 1..5)");
  PaperRef("human ratings: SubTab > 4 on all of Q1..Q4, far above RAN and NC;");
  PaperRef("Sec 6.2.3: intrinsic combined scores (0.56/0.32/0.15) rank the");
  PaperRef("baselines identically to the user ratings, justifying this proxy.");

  auto p = Pipeline::Build("FL", Sized(args, 10000, 2500));

  const SubTabView view = p->subtab.Select();
  const Ratings subtab = Rate(*p, view.row_ids, view.col_ids);

  RandomBaselineOptions ran_options = ScaledRan(10, 10);
  const BaselineResult ran = RandomBaseline(p->eval(), ran_options);
  const Ratings ran_ratings = Rate(*p, ran.row_ids, ran.col_ids);

  NaiveClusteringOptions nc_options;
  nc_options.k = 10;
  nc_options.l = 10;
  nc_options.max_rows = 4000;
  const BaselineResult nc = NaiveClustering(p->eval(), nc_options);
  const Ratings nc_ratings = Rate(*p, nc.row_ids, nc.col_ids);

  std::printf("\n%-8s %6s %6s %6s %6s\n", "method", "Q1", "Q2", "Q3", "Q4");
  std::printf("%-8s %6.1f %6.1f %6.1f %6.1f\n", "SubTab", subtab.q1, subtab.q2,
              subtab.q3, subtab.q4);
  std::printf("%-8s %6.1f %6.1f %6.1f %6.1f\n", "RAN", ran_ratings.q1,
              ran_ratings.q2, ran_ratings.q3, ran_ratings.q4);
  std::printf("%-8s %6.1f %6.1f %6.1f %6.1f\n", "NC", nc_ratings.q1, nc_ratings.q2,
              nc_ratings.q3, nc_ratings.q4);
  return 0;
}
