// Figure 6 — simulation-based study: replay EDA sessions over CY, build a
// sub-table after every step with SubTab / RAN / NC, and measure the
// percentage of next-step query fragments already visible in the displayed
// sub-table, for sub-table widths 3..7.
//
// Paper shape (122 recorded sessions over CY): SubTab captures 14% at
// width 3 rising to 38% at width 7, significantly above RAN and NC at every
// width; all methods improve with width.

#include "subtab/cluster/kmeans.h"
#include "subtab/eda/replay.h"
#include "subtab/eda/session_generator.h"

#include "bench_common.h"

namespace subtab::bench {
namespace {

SelectorFn SubTabSelector(const Pipeline& p) {
  return [&p](const std::vector<size_t>& rows, const std::vector<size_t>& cols,
              size_t k, size_t l) {
    SelectionScope scope;
    scope.rows = rows;
    scope.cols = cols;
    const SubTabView view = p.subtab.SelectScoped(scope, k, l);
    return std::make_pair(view.row_ids, view.col_ids);
  };
}

SelectorFn RanSelector(const Pipeline& p, uint64_t seed, int draws) {
  auto rng = std::make_shared<Rng>(seed);
  return [&p, rng, draws](const std::vector<size_t>& rows,
                          const std::vector<size_t>& cols, size_t k, size_t l) {
    // RAN within the query result: `draws` = 1 is an arbitrary display;
    // larger budgets re-optimize the combined metric per display.
    std::vector<size_t> best_rows;
    std::vector<size_t> best_cols;
    double best = -1.0;
    for (int draw = 0; draw < draws; ++draw) {
      std::vector<size_t> r;
      for (size_t pick :
           rng->SampleWithoutReplacement(rows.size(), std::min(k, rows.size()))) {
        r.push_back(rows[pick]);
      }
      std::vector<size_t> c;
      for (size_t pick :
           rng->SampleWithoutReplacement(cols.size(), std::min(l, cols.size()))) {
        c.push_back(cols[pick]);
      }
      const SubTableScore score = ScoreSubTable(p.eval(), r, c, 0.5);
      if (score.combined > best) {
        best = score.combined;
        best_rows = std::move(r);
        best_cols = std::move(c);
      }
    }
    return std::make_pair(best_rows, best_cols);
  };
}

SelectorFn NcSelector(const Pipeline& p, uint64_t seed) {
  return [&p, seed](const std::vector<size_t>& rows, const std::vector<size_t>& cols,
                    size_t k, size_t l) {
    // NC over the query result: one-hot cluster the visible rows. Rebuild a
    // result-scoped evaluator-free run by clustering within the scope.
    // For simplicity (and speed) NC clusters a subsample of the visible rows
    // with the library baseline over the full table restricted afterwards.
    NaiveClusteringOptions options;
    options.k = k;
    options.l = l;
    options.seed = seed;
    options.max_rows = 1500;
    // Restrict by running on a materialized sub-table view.
    // Build a scoped binned table once per call.
    const BinnedTable& binned = p.subtab.preprocessed().binned();
    // Cheap scoped NC: cluster one-hot vectors of (subsampled) visible rows.
    const size_t take = std::min<size_t>(rows.size(), 1500);
    const size_t stride = std::max<size_t>(1, rows.size() / take);
    std::vector<size_t> pool;
    for (size_t i = 0; i < rows.size() && pool.size() < take; i += stride) {
      pool.push_back(rows[i]);
    }
    const size_t dim = binned.total_bins();
    std::vector<float> onehot(pool.size() * dim, 0.0f);
    for (size_t i = 0; i < pool.size(); ++i) {
      for (size_t c : cols) {
        onehot[i * dim + binned.DenseIndex(binned.token(pool[i], c))] = 1.0f;
      }
    }
    KMeansOptions kopt;
    kopt.k = std::min(k, pool.size());
    kopt.seed = seed;
    kopt.max_iterations = 15;
    std::vector<size_t> sel_rows;
    for (size_t medoid : ClusterRepresentatives(onehot, dim, kopt)) {
      sel_rows.push_back(pool[medoid]);
    }
    // Columns: normalized bin ordinals over the pooled rows.
    const size_t l_eff = std::min(l, cols.size());
    std::vector<size_t> sel_cols;
    if (l_eff == cols.size()) {
      sel_cols = cols;
    } else {
      std::vector<float> col_matrix(cols.size() * pool.size());
      for (size_t i = 0; i < cols.size(); ++i) {
        const float inv = 1.0f / static_cast<float>(binned.bins_in_column(cols[i]));
        for (size_t j = 0; j < pool.size(); ++j) {
          col_matrix[i * pool.size() + j] =
              static_cast<float>(TokenBin(binned.token(pool[j], cols[i]))) * inv;
        }
      }
      KMeansOptions copt;
      copt.k = l_eff;
      copt.seed = seed ^ 0x51ed270b;
      copt.max_iterations = 15;
      for (size_t medoid : ClusterRepresentatives(col_matrix, pool.size(), copt)) {
        sel_cols.push_back(cols[medoid]);
      }
    }
    return std::make_pair(sel_rows, sel_cols);
  };
}

}  // namespace
}  // namespace subtab::bench

int main(int argc, char** argv) {
  using namespace subtab::bench;
  using namespace subtab;
  const BenchArgs args = ParseBenchArgs(argc, argv);
  Header("Figure 6: % of next-query fragments captured vs sub-table width (CY)");
  PaperRef("SubTab: 14% (width 3) -> 38% (width 7), clearly above RAN and NC");
  PaperRef("at every width; capture grows with width for all methods.");

  const size_t rows = Sized(args, 8000, 2000);
  auto p = Pipeline::Build("CY", rows);

  SessionGeneratorOptions session_options;
  session_options.num_sessions = 122;  // Paper's session count.
  session_options.seed = 17;
  const std::vector<Session> sessions = GenerateSessions(p->data, session_options);
  size_t steps = 0;
  for (const auto& s : sessions) steps += s.steps.size();
  std::printf("\n%zu sessions, %zu steps over CY (%zu rows)\n", sessions.size(),
              steps, rows);

  std::printf("%-7s", "width");
  for (const char* m : {"SubTab", "RAN-1", "RAN-15", "NC"}) std::printf(" %8s", m);
  std::printf("\n");

  const Table& table = p->data.table;
  const BinnedTable& binned = p->subtab.preprocessed().binned();
  for (size_t width = 3; width <= 7; ++width) {
    const ReplayStats st =
        ReplaySessions(table, binned, sessions, 10, width, SubTabSelector(*p));
    const ReplayStats ran1 =
        ReplaySessions(table, binned, sessions, 10, width, RanSelector(*p, 5, 1));
    const ReplayStats ran15 =
        ReplaySessions(table, binned, sessions, 10, width, RanSelector(*p, 5, 15));
    const ReplayStats nc =
        ReplaySessions(table, binned, sessions, 10, width, NcSelector(*p, 9));
    std::printf("%-7zu %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", width,
                st.capture_rate * 100, ran1.capture_rate * 100,
                ran15.capture_rate * 100, nc.capture_rate * 100);
  }
  return 0;
}
