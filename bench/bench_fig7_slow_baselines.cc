// Figure 7 — quality score and total running time of SubTab vs the slow,
// non-interactive baselines on FL: EmbDI (graph embedding), MAB (UCB
// bandit), and semi-greedy Algorithm 1.
//
// Paper shape: (a) combined quality — SubTab 0.61 == EmbDI 0.61, Greedy 0.63
// (best), MAB 0.53 (worst); (b) time — SubTab 1.5 min, EmbDI ~26x slower
// (40 min), MAB/Greedy run for hours-days (Greedy's 0.63 took 48 h). We
// scale all budgets with the data (DESIGN.md §4): MAB and semi-greedy get a
// fixed wall-clock budget far above SubTab's runtime; the shape to verify is
// quality(Greedy) >= quality(SubTab) ≈ quality(EmbDI) > quality(MAB) with
// time(SubTab) << time(EmbDI) << time(MAB/Greedy budgets).

#include "subtab/baselines/greedy.h"
#include "subtab/baselines/mab.h"
#include "subtab/embed/embdi.h"
#include "subtab/util/stopwatch.h"

#include "bench_common.h"

namespace subtab::bench {
namespace {

void Report(const char* name, const SubTableScore& score, double seconds,
            double subtab_seconds) {
  std::printf("%-10s combined=%.3f (cov=%.3f div=%.3f)  time=%7.2fs  (%.1fx SubTab)\n",
              name, score.combined, score.cell_coverage, score.diversity, seconds,
              seconds / subtab_seconds);
}

}  // namespace
}  // namespace subtab::bench

int main(int argc, char** argv) {
  using namespace subtab::bench;
  using namespace subtab;
  const BenchArgs args = ParseBenchArgs(argc, argv);
  Header("Figure 7: quality and runtime, SubTab vs slow baselines (FL)");
  PaperRef("quality: Greedy 0.63 > SubTab 0.61 = EmbDI 0.61 > MAB 0.53;");
  PaperRef("time: SubTab 1.5min; EmbDI 26x slower; MAB >24h; Greedy 48h.");

  const size_t rows = Sized(args, 8000, 2000);
  std::printf("\nFL at %zu rows; MAB/semi-greedy budget 30 s (scaled).\n", rows);

  // ---- SubTab (pre-processing + selection = its total cost). --------------
  Stopwatch subtab_watch;
  auto p = Pipeline::Build("FL", rows);
  SubTabView view = p->subtab.Select();
  const double subtab_seconds =
      p->subtab.preprocessed().timings().total_seconds + view.selection_seconds;
  const SubTableScore subtab_score =
      ScoreSubTable(p->eval(), view.row_ids, view.col_ids, 0.5);

  // ---- EmbDI: same selection machinery over a graph-walk embedding. -------
  Stopwatch embdi_watch;
  EmbDiOptions embdi_options;
  embdi_options.word2vec = DefaultConfig().embedding;
  embdi_options.seed = 42;
  Word2VecModel embdi_model =
      TrainEmbDi(p->subtab.preprocessed().binned(), embdi_options);
  PreprocessedTable embdi_pre =
      PreprocessWithModel(p->data.table, DefaultConfig(), std::move(embdi_model));
  Selection embdi_sel = SelectSubTable(embdi_pre, 10, 10, SelectionScope{}, 42);
  const double embdi_seconds = embdi_watch.ElapsedSeconds();
  const SubTableScore embdi_score =
      ScoreSubTable(p->eval(), embdi_sel.row_ids, embdi_sel.col_ids, 0.5);

  // ---- MAB (budgeted). -----------------------------------------------------
  MabOptions mab_options;
  mab_options.k = 10;
  mab_options.l = 10;
  mab_options.time_budget_seconds = args.quick ? 5.0 : 30.0;
  const BaselineResult mab = MabBaseline(p->eval(), mab_options);

  // ---- Semi-greedy Algorithm 1 (budgeted). ---------------------------------
  GreedyOptions greedy_options;
  greedy_options.k = 10;
  greedy_options.l = 10;
  greedy_options.randomize_column_order = true;
  greedy_options.time_budget_seconds = args.quick ? 5.0 : 30.0;
  const BaselineResult greedy = GreedySubTable(p->eval(), greedy_options);

  std::printf("\n");
  Report("SubTab", subtab_score, subtab_seconds, subtab_seconds);
  Report("EmbDI", embdi_score, embdi_seconds, subtab_seconds);
  Report("MAB", mab.score, mab.seconds, subtab_seconds);
  Report("Greedy", greedy.score, greedy.seconds, subtab_seconds);
  std::printf("\n(semi-greedy examined %zu column subsets; MAB ran %zu rounds)\n",
              greedy.iterations, mab.iterations);
  return 0;
}
