// Figure 8 — intrinsic quality metrics (diversity, cell coverage, combined)
// for SubTab vs RAN vs NC over the FL, SP, and CY datasets.
//
// Paper shape: SubTab has significantly higher cell coverage and combined
// score on all three datasets; on FL and CY it also wins diversity, on SP
// RAN's diversity is slightly higher but its coverage is very low (e.g. SP
// totals: SubTab 0.68 vs RAN 0.47 vs NC 0.51).

#include "bench_common.h"

namespace subtab::bench {
namespace {

void RunDataset(const std::string& name, size_t rows) {
  std::printf("\n--- %s (%zu rows, scaled) ---\n", name.c_str(), rows);
  auto p = Pipeline::Build(name, rows);
  std::printf("rules mined: %zu (%zu token-set classes), upcov=%zu cells\n",
              p->rules.size(), p->eval().num_classes(), p->eval().upcov());

  // SubTab.
  const SubTabView view = p->subtab.Select();
  const SubTableScore st = ScoreSubTable(p->eval(), view.row_ids, view.col_ids, 0.5);

  // RAN at two budgets: a single arbitrary draw (what a plain display shows)
  // and the paper's best-of-budget variant. NOTE (EXPERIMENTS.md): on the
  // paper's full-size tables one metric evaluation costs seconds, so its
  // 60 s budget bought only a handful of draws; at our scale the same
  // wall-clock-equivalent budget (~100 draws) makes RAN a much stronger
  // direct optimizer of the reported metric than it was in the paper.
  RandomBaselineOptions one = ScaledRan(10, 10);
  one.max_iterations = 1;
  const BaselineResult ran1 = RandomBaseline(p->eval(), one);
  const BaselineResult ran100 = RandomBaseline(p->eval(), ScaledRan(10, 10));

  // NC.
  NaiveClusteringOptions nc_options;
  nc_options.k = 10;
  nc_options.l = 10;
  nc_options.max_rows = 4000;
  const BaselineResult nc = NaiveClustering(p->eval(), nc_options);

  std::printf("%-8s %10s %14s %10s\n", "method", "diversity", "cell coverage",
              "combined");
  std::printf("%-8s %10.3f %14.3f %10.3f\n", "SubTab", st.diversity,
              st.cell_coverage, st.combined);
  std::printf("%-8s %10.3f %14.3f %10.3f\n", "RAN-1", ran1.score.diversity,
              ran1.score.cell_coverage, ran1.score.combined);
  std::printf("%-8s %10.3f %14.3f %10.3f\n", "RAN-100", ran100.score.diversity,
              ran100.score.cell_coverage, ran100.score.combined);
  std::printf("%-8s %10.3f %14.3f %10.3f\n", "NC", nc.score.diversity,
              nc.score.cell_coverage, nc.score.combined);
}

}  // namespace
}  // namespace subtab::bench

int main(int argc, char** argv) {
  using namespace subtab::bench;
  const BenchArgs args = ParseBenchArgs(argc, argv);
  Header("Figure 8: quality metrics for SubTab / RAN / NC on FL, SP, CY");
  PaperRef("SubTab wins cell coverage + combined on all three datasets;");
  PaperRef("diversity too on FL and CY (SP: RAN slightly more diverse,");
  PaperRef("but with very low coverage). SP combined: 0.68 / 0.47 / 0.51.");
  RunDataset("FL", Sized(args, 12000, 3000));
  RunDataset("SP", Sized(args, 10000, 2500));
  RunDataset("CY", Sized(args, 8000, 2000));
  return 0;
}
