// Figure 9 — average running time of SubTab's two phases per dataset:
// Pre-processing (binning + corpus + embedding; once per table load) vs
// Centroid Selection (per display; also measured on a query result).
//
// Paper shape (6M-row FL on a 24-core Xeon): pre-processing tens of seconds
// (90 s for CC, which is all-numeric and binning-heavy; ~60 s FL; ~10-20 s
// SP/CY), selection only 1-5 s on every dataset. Our datasets are ~1/100
// scale, so absolute numbers are smaller; the shape to check is
// (a) pre-processing >> selection, (b) selection interactive on all
// datasets, (c) CC's binning share the largest.

#include "bench_common.h"

namespace subtab::bench {
namespace {

void RunDataset(const std::string& name, size_t rows) {
  GeneratedDataset data = LoadDataset(name, rows);
  SubTabConfig config = DefaultConfig();
  Result<SubTab> st = SubTab::Fit(data.table, config);
  SUBTAB_CHECK(st.ok());
  const PreprocessTimings& t = st->preprocessed().timings();

  // Selection on the full table and on a query result (red arrows, Fig. 1).
  const SubTabView full = st->Select();
  const std::string target = DatasetTargetColumn(name);
  double query_seconds = 0.0;
  if (!target.empty() && data.table.column(target).is_numeric()) {
    SpQuery q;
    q.filters = {Predicate::NotNull(target)};
    Result<SubTabView> view = st->SelectForQuery(q);
    if (view.ok()) query_seconds = view->selection_seconds;
  } else if (!target.empty()) {
    SpQuery q;
    q.filters = {Predicate::NotNull(target)};
    Result<SubTabView> view = st->SelectForQuery(q);
    if (view.ok()) query_seconds = view->selection_seconds;
  }

  std::printf("%-4s %8zu x %-3zu  bin %6.2fs  corpus %6.2fs  train %6.2fs "
              "| preprocess %7.2fs | select(full) %5.2fs select(query) %5.2fs\n",
              name.c_str(), data.table.num_rows(), data.table.num_columns(),
              t.binning_seconds, t.corpus_seconds, t.training_seconds,
              t.total_seconds, full.selection_seconds, query_seconds);
}

}  // namespace
}  // namespace subtab::bench

int main(int argc, char** argv) {
  using namespace subtab::bench;
  const BenchArgs args = ParseBenchArgs(argc, argv);
  Header("Figure 9: pre-processing vs centroid-selection running time");
  PaperRef("FL(6M): ~60s pre / 4s sel; CC(250K): 90s pre (binning-heavy) /");
  PaperRef("5s sel; SP(42K): ~12s / 2s; CY(30K): ~8s / 1s. Selection is");
  PaperRef("interactive everywhere; pre-processing amortized per table load.");
  std::printf("\n(reproduction at ~1/100 row scale, %zu threads)\n",
              subtab::HardwareThreads());
  RunDataset("FL", Sized(args, 60000, 8000));
  RunDataset("CC", Sized(args, 50000, 6000));
  RunDataset("SP", Sized(args, 42000, 6000));
  RunDataset("CY", Sized(args, 30000, 5000));
  return 0;
}
