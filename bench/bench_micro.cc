// Google-benchmark micro benchmarks for the substrates: query engine,
// binning, Apriori, Word2Vec training, k-means, coverage evaluation. These
// are throughput measurements of the building blocks behind Figs. 7 and 9.
//
// Like the figure harnesses, accepts --quick (CI-sized: only the smallest
// size variant of each benchmark is registered); every other flag passes
// through to the google-benchmark runner.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "subtab/binning/binned_table.h"
#include "subtab/cluster/kmeans.h"
#include "subtab/data/datasets.h"
#include "subtab/embed/word2vec.h"
#include "subtab/metrics/combined.h"
#include "subtab/rules/miner.h"
#include "subtab/table/query.h"

namespace subtab {
namespace {

const GeneratedDataset& Flights(size_t rows) {
  static auto* cache = new std::map<size_t, GeneratedDataset>();
  auto it = cache->find(rows);
  if (it == cache->end()) it = cache->emplace(rows, MakeFlights(rows)).first;
  return it->second;
}

void BM_QueryFilter(benchmark::State& state) {
  const GeneratedDataset& data = Flights(static_cast<size_t>(state.range(0)));
  SpQuery q;
  q.filters = {Predicate::Num("DISTANCE", CmpOp::kGe, 1500.0),
               Predicate::Str("CANCELLED", CmpOp::kEq, "0")};
  for (auto _ : state) {
    Result<QueryResult> r = RunQuery(data.table, q);
    benchmark::DoNotOptimize(r->row_ids.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Binning(benchmark::State& state) {
  const GeneratedDataset& data = Flights(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    BinnedTable binned = BinnedTable::Compute(data.table);
    benchmark::DoNotOptimize(binned.total_bins());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 31);
}

void BM_Apriori(benchmark::State& state) {
  const GeneratedDataset& data = Flights(static_cast<size_t>(state.range(0)));
  BinnedTable binned = BinnedTable::Compute(data.table);
  AprioriOptions options;
  options.min_support = 0.1;
  options.max_itemset_size = 3;
  for (auto _ : state) {
    auto itemsets = MineFrequentItemsets(binned, options);
    benchmark::DoNotOptimize(itemsets.size());
  }
}

void BM_Word2VecEpoch(benchmark::State& state) {
  const GeneratedDataset& data = Flights(10000);
  BinnedTable binned = BinnedTable::Compute(data.table);
  Rng rng(1);
  Corpus corpus = Corpus::Build(binned, CorpusOptions{}, &rng);
  Word2VecOptions options;
  options.dim = static_cast<size_t>(state.range(0));
  options.epochs = 1;
  options.num_threads = 1;
  for (auto _ : state) {
    Word2VecModel model = Word2VecModel::Train(corpus, options);
    benchmark::DoNotOptimize(model.vocab_size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.total_words()));
}

void BM_KMeans(benchmark::State& state) {
  Rng rng(3);
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t dim = 32;
  std::vector<float> points(n * dim);
  for (float& v : points) v = static_cast<float>(rng.Normal());
  KMeansOptions options;
  options.k = 10;
  for (auto _ : state) {
    KMeansResult result = KMeans(points, dim, options);
    benchmark::DoNotOptimize(result.inertia);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_CoverageScore(benchmark::State& state) {
  const GeneratedDataset& data = Flights(static_cast<size_t>(state.range(0)));
  BinnedTable binned = BinnedTable::Compute(data.table);
  RuleMiningOptions mining;
  mining.apriori.min_support = 0.1;
  mining.min_confidence = 0.6;
  mining.min_rule_size = 3;
  RuleSet rules = MineRules(binned, mining);
  CoverageEvaluator evaluator(binned, rules);
  Rng rng(5);
  for (auto _ : state) {
    std::vector<size_t> rows = rng.SampleWithoutReplacement(binned.num_rows(), 10);
    std::vector<size_t> cols = rng.SampleWithoutReplacement(binned.num_columns(), 10);
    SubTableScore score = ScoreSubTable(evaluator, rows, cols, 0.5);
    benchmark::DoNotOptimize(score.combined);
  }
}

/// Registers every micro benchmark; under --quick only the smallest size
/// variant runs (registration-time choice: google-benchmark has no
/// post-registration filtering by Arg).
void RegisterAll(bool quick) {
  auto* query = benchmark::RegisterBenchmark("BM_QueryFilter", BM_QueryFilter);
  query->Arg(10000);
  if (!quick) query->Arg(40000);
  auto* binning = benchmark::RegisterBenchmark("BM_Binning", BM_Binning);
  binning->Arg(10000);
  if (!quick) binning->Arg(40000);
  auto* apriori = benchmark::RegisterBenchmark("BM_Apriori", BM_Apriori);
  apriori->Arg(5000)->Unit(benchmark::kMillisecond);
  if (!quick) apriori->Arg(20000);
  auto* w2v = benchmark::RegisterBenchmark("BM_Word2VecEpoch", BM_Word2VecEpoch);
  w2v->Arg(16)->Unit(benchmark::kMillisecond);
  if (!quick) w2v->Arg(64);
  auto* kmeans = benchmark::RegisterBenchmark("BM_KMeans", BM_KMeans);
  kmeans->Arg(2000)->Unit(benchmark::kMillisecond);
  if (!quick) kmeans->Arg(10000);
  auto* coverage =
      benchmark::RegisterBenchmark("BM_CoverageScore", BM_CoverageScore);
  coverage->Arg(5000)->Unit(benchmark::kMillisecond);
  if (!quick) coverage->Arg(20000);
}

}  // namespace
}  // namespace subtab

int main(int argc, char** argv) {
  bool quick = false;
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      quick = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int pass_argc = static_cast<int>(passthrough.size());
  subtab::RegisterAll(quick);
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
