// Google-benchmark micro benchmarks for the substrates: query engine,
// binning, Apriori, Word2Vec training, k-means, coverage evaluation. These
// are throughput measurements of the building blocks behind Figs. 7 and 9.

#include <benchmark/benchmark.h>

#include "subtab/binning/binned_table.h"
#include "subtab/cluster/kmeans.h"
#include "subtab/data/datasets.h"
#include "subtab/embed/word2vec.h"
#include "subtab/metrics/combined.h"
#include "subtab/rules/miner.h"
#include "subtab/table/query.h"

namespace subtab {
namespace {

const GeneratedDataset& Flights(size_t rows) {
  static auto* cache = new std::map<size_t, GeneratedDataset>();
  auto it = cache->find(rows);
  if (it == cache->end()) it = cache->emplace(rows, MakeFlights(rows)).first;
  return it->second;
}

void BM_QueryFilter(benchmark::State& state) {
  const GeneratedDataset& data = Flights(static_cast<size_t>(state.range(0)));
  SpQuery q;
  q.filters = {Predicate::Num("DISTANCE", CmpOp::kGe, 1500.0),
               Predicate::Str("CANCELLED", CmpOp::kEq, "0")};
  for (auto _ : state) {
    Result<QueryResult> r = RunQuery(data.table, q);
    benchmark::DoNotOptimize(r->row_ids.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QueryFilter)->Arg(10000)->Arg(40000);

void BM_Binning(benchmark::State& state) {
  const GeneratedDataset& data = Flights(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    BinnedTable binned = BinnedTable::Compute(data.table);
    benchmark::DoNotOptimize(binned.total_bins());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 31);
}
BENCHMARK(BM_Binning)->Arg(10000)->Arg(40000);

void BM_Apriori(benchmark::State& state) {
  const GeneratedDataset& data = Flights(static_cast<size_t>(state.range(0)));
  BinnedTable binned = BinnedTable::Compute(data.table);
  AprioriOptions options;
  options.min_support = 0.1;
  options.max_itemset_size = 3;
  for (auto _ : state) {
    auto itemsets = MineFrequentItemsets(binned, options);
    benchmark::DoNotOptimize(itemsets.size());
  }
}
BENCHMARK(BM_Apriori)->Arg(5000)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_Word2VecEpoch(benchmark::State& state) {
  const GeneratedDataset& data = Flights(10000);
  BinnedTable binned = BinnedTable::Compute(data.table);
  Rng rng(1);
  Corpus corpus = Corpus::Build(binned, CorpusOptions{}, &rng);
  Word2VecOptions options;
  options.dim = static_cast<size_t>(state.range(0));
  options.epochs = 1;
  options.num_threads = 1;
  for (auto _ : state) {
    Word2VecModel model = Word2VecModel::Train(corpus, options);
    benchmark::DoNotOptimize(model.vocab_size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.total_words()));
}
BENCHMARK(BM_Word2VecEpoch)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_KMeans(benchmark::State& state) {
  Rng rng(3);
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t dim = 32;
  std::vector<float> points(n * dim);
  for (float& v : points) v = static_cast<float>(rng.Normal());
  KMeansOptions options;
  options.k = 10;
  for (auto _ : state) {
    KMeansResult result = KMeans(points, dim, options);
    benchmark::DoNotOptimize(result.inertia);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KMeans)->Arg(2000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_CoverageScore(benchmark::State& state) {
  const GeneratedDataset& data = Flights(static_cast<size_t>(state.range(0)));
  BinnedTable binned = BinnedTable::Compute(data.table);
  RuleMiningOptions mining;
  mining.apriori.min_support = 0.1;
  mining.min_confidence = 0.6;
  mining.min_rule_size = 3;
  RuleSet rules = MineRules(binned, mining);
  CoverageEvaluator evaluator(binned, rules);
  Rng rng(5);
  for (auto _ : state) {
    std::vector<size_t> rows = rng.SampleWithoutReplacement(binned.num_rows(), 10);
    std::vector<size_t> cols = rng.SampleWithoutReplacement(binned.num_columns(), 10);
    SubTableScore score = ScoreSubTable(evaluator, rows, cols, 0.5);
    benchmark::DoNotOptimize(score.combined);
  }
}
BENCHMARK(BM_CoverageScore)->Arg(5000)->Arg(20000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace subtab

BENCHMARK_MAIN();
