#include <algorithm>
#include <cmath>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "subtab/service/engine.h"
#include "subtab/util/parallel.h"
#include "subtab/util/stopwatch.h"
#include "subtab/util/string_util.h"
#include "subtab/workload/synthetic_table.h"
#include "subtab/workload/traffic_driver.h"

/// \file bench_scale.cc
/// BENCH_scale: the workload-forge scaling harness (ROADMAP item 4). Two
/// phases:
///
///   1. generator_scaling — GenerateSyntheticTable must be O(rows): the
///      per-row cost of a 10x larger table (10^6 rows full-size) must stay
///      flat within [0.8, 1.2] (CHECKed; wider under --quick where runner
///      noise dominates short runs).
///
///   2. scale_sweep — the OPEN-LOOP knee. For each rows x threads point an
///      engine serves Zipf-skewed multi-tenant drill-down traffic fired by
///      the TrafficDriver at rates calibrated against the measured per-
///      request busy time: below capacity, around capacity, and past
///      saturation (plus a bursty point at capacity in full runs). Unlike
///      the closed-loop benches, arrival never waits for completion, so
///      shed rate and queueing delay are real observables. Per (rows,
///      threads) group the knee is CHECKed: past saturation the shed rate
///      must rise while the p95 of ADMITTED requests stays bounded by the
///      admission queue (no unbounded queueing) — bounded-queue theory
///      gives wait <= (max_queue_depth / threads + 1) service times, and we
///      allow generous slack for percentile-vs-mean spread and histogram
///      bucket resolution.
///
/// Emits BENCH_scale.json (scale_sweep / generator_scaling / scale_knee
/// records; scripts/check_bench_schema.py --scale pins the schema, and
/// scripts/bench_history.py --scale folds the headline numbers into the
/// bench trajectory).

namespace subtab::bench {
namespace {

using subtab::workload::ArrivalProcess;
using subtab::workload::ArrivalProcessName;
using subtab::workload::ColumnDataDistribution;
using subtab::workload::DriveReport;
using subtab::workload::GenerateSyntheticTable;
using subtab::workload::PlantedRule;
using subtab::workload::SyntheticColumnSpec;
using subtab::workload::SyntheticTable;
using subtab::workload::SyntheticTableSpec;
using subtab::workload::TrafficDriver;
using subtab::workload::TrafficOptions;
using subtab::workload::TrafficRequest;

/// The forge spec every phase shares: heavy-tailed and skewed marginals,
/// planted rules over the categorical triplet, profile-driven cluster
/// structure — million-row data the coverage metrics still mean something
/// on.
SyntheticTableSpec ForgeSpec(size_t rows, uint64_t seed) {
  SyntheticTableSpec spec;
  spec.name = "forge";
  spec.num_rows = rows;
  spec.chunk_rows = 16384;
  spec.seed = seed;
  auto amount = ColumnDataDistribution::Pareto(1.0, 1.3);
  amount.null_fraction = 0.04;
  spec.columns = {
      SyntheticColumnSpec::Numeric("amount", amount),
      SyntheticColumnSpec::Numeric(
          "score", ColumnDataDistribution::NormalSkewed(50.0, 12.0, 4.0)),
      SyntheticColumnSpec::Numeric(
          "age", ColumnDataDistribution::Uniform(18.0, 90.0, 64), 0.35),
      SyntheticColumnSpec::Categorical(
          "region", ColumnDataDistribution::Uniform(0.0, 1.0, 4)),
      SyntheticColumnSpec::Categorical(
          "device", ColumnDataDistribution::Uniform(0.0, 1.0, 4), 0.5),
      SyntheticColumnSpec::Categorical(
          "outcome", ColumnDataDistribution::Uniform(0.0, 1.0, 4)),
      SyntheticColumnSpec::Categorical(
          "plan", ColumnDataDistribution::Pareto(1.0, 1.1, 6)),
  };
  spec.rules = {
      PlantedRule{{{"region", 1}, {"device", 2}}, {"outcome", 0}, 0.12, 0.9},
      PlantedRule{{{"region", 2}, {"device", 0}}, {"outcome", 3}, 0.08, 0.85},
  };
  spec.num_profiles = 8;
  spec.profile_zipf = 1.1;
  return spec;
}

/// Drill-down chains over the forge columns (the bench_serving idiom:
/// narrowing numeric bounds + categorical refinements, so containment reuse
/// and zone-map pruning see their intended workload).
std::vector<std::vector<SpQuery>> ForgeSessions(const SyntheticTable& data,
                                                size_t num_sessions,
                                                uint64_t seed) {
  double score_min = 0.0, score_max = 1.0, age_min = 0.0, age_max = 1.0;
  SUBTAB_CHECK(data.table.column(data.ColumnIndex("score"))
                   .NumericRange(&score_min, &score_max));
  SUBTAB_CHECK(data.table.column(data.ColumnIndex("age"))
                   .NumericRange(&age_min, &age_max));
  auto score_at = [&](double f) {
    return score_min + f * (score_max - score_min);
  };
  Rng rng(seed);
  std::vector<std::vector<SpQuery>> sessions;
  sessions.reserve(num_sessions);
  for (size_t s = 0; s < num_sessions; ++s) {
    const double lo = rng.UniformDouble(0.05, 0.35);
    std::vector<SpQuery> chain;
    SpQuery q;
    q.filters = {Predicate::Num("score", CmpOp::kGe, score_at(lo))};
    chain.push_back(q);
    q.filters.push_back(Predicate::Str(
        "region", CmpOp::kEq, workload::CategoryOfIndex(rng.Uniform(4))));
    chain.push_back(q);
    q.filters[0] = Predicate::Num("score", CmpOp::kGe, score_at(lo + 0.1));
    chain.push_back(q);
    q.filters.push_back(Predicate::Num(
        "age", CmpOp::kLe, age_min + 0.85 * (age_max - age_min)));
    chain.push_back(q);
    if (s % 2 == 0) {
      q.filters.push_back(Predicate::Str(
          "device", CmpOp::kEq, workload::CategoryOfIndex(rng.Uniform(4))));
      chain.push_back(q);
    }
    sessions.push_back(std::move(chain));
  }
  return sessions;
}

// ---------------------------------------------------------------- phase 1 --

double BestGenerationSeconds(const SyntheticTableSpec& spec, int attempts) {
  double best = 1e300;
  for (int i = 0; i < attempts; ++i) {
    Stopwatch watch;
    SyntheticTable generated = GenerateSyntheticTable(spec);
    best = std::min(best, watch.ElapsedSeconds());
    SUBTAB_CHECK(generated.table.num_rows() == spec.num_rows);
  }
  return best;
}

void RunGeneratorScaling(const BenchScale& scale, BenchJsonFile* file) {
  Header("Generator scaling: per-row cost flat across 10x (O(rows))");
  PaperRef("(no paper figure; ROADMAP item 4 — the harness must mint");
  PaperRef("10^6-row tables in O(rows) or the sweep cannot afford them.)");

  const size_t rows_small = scale.Rows(100000, 25000);
  const size_t rows_large = rows_small * 10;  // 10^6 at full size.
  const double small_s = BestGenerationSeconds(ForgeSpec(rows_small, 7), 3);
  const double large_s = BestGenerationSeconds(ForgeSpec(rows_large, 7), 2);
  const double ns_small = small_s / static_cast<double>(rows_small) * 1e9;
  const double ns_large = large_s / static_cast<double>(rows_large) * 1e9;
  const double ratio = ns_large / ns_small;
  // Quick CI sizes are small enough that constant costs and runner noise
  // smear the ratio; the strict O(rows) gate is the full-size run's.
  const double lo = scale.quick ? 0.6 : 0.8;
  const double hi = scale.quick ? 1.7 : 1.2;
  const bool flat = ratio >= lo && ratio <= hi;

  Measured(StrFormat("%zu rows in %.3fs (%.0f ns/row); %zu rows in %.3fs "
                     "(%.0f ns/row); per-row ratio %.3f (flat in [%.1f, %.1f])",
                     rows_small, small_s, ns_small, rows_large, large_s,
                     ns_large, ratio, lo, hi));
  JsonLine("generator_scaling")
      .Field("rows_small", static_cast<uint64_t>(rows_small))
      .Field("rows_large", static_cast<uint64_t>(rows_large))
      .Field("ns_per_row_small", ns_small)
      .Field("ns_per_row_large", ns_large)
      .Field("per_row_ratio", ratio)
      .Field("flat", static_cast<uint64_t>(flat ? 1 : 0))
      .Emit(file);
  SUBTAB_CHECK(flat);
}

// ---------------------------------------------------------------- phase 2 --

struct SweepResult {
  double rate_rps = 0.0;
  double rps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double shed_fraction = 0.0;
};

double HistP95Ms(const MetricsSnapshot& delta, const std::string& name) {
  const auto it = delta.histograms.find(name);
  return it == delta.histograms.end() ? 0.0
                                      : it->second.Percentile(0.95) * 1e3;
}

/// One open-loop point: fire `total` requests at `rate`, report admitted
/// latency (engine-side pipeline.latency delta — client-side timing would
/// re-measure the closed loop we just removed) and the shed fraction.
SweepResult RunSweepPoint(service::ServingEngine& engine,
                          const std::vector<std::vector<SpQuery>>& sessions,
                          size_t rows, size_t threads, size_t tenants,
                          ArrivalProcess arrival, double rate, size_t total,
                          uint64_t seed, BenchJsonFile* file) {
  TrafficOptions traffic;
  traffic.rate_rps = rate;
  traffic.arrival = arrival;
  traffic.num_tenants = tenants;
  traffic.tenant_zipf = 1.0;
  traffic.total_requests = total;
  traffic.seed = seed;
  TrafficDriver driver(traffic, sessions);

  const MetricsSnapshot before = engine.metrics().Snapshot();
  const service::EngineStats stats_before = engine.Stats();
  // Unique per-request seeds dodge the selection cache / in-flight dedup, so
  // every admitted request pays real pipeline work and admission control is
  // actually exercised (cache hits are admission-free).
  const uint64_t seed_base = seed * 1000003ULL;
  Stopwatch wall;
  const DriveReport report = driver.Drive([&](const TrafficRequest& request) {
    service::SelectRequest select;
    select.table_id = request.table_id;
    select.query = *request.query;
    select.seed = seed_base + request.sequence;
    engine.SubmitSelect(select);  // Open loop: never wait here.
  });
  engine.Drain();
  const double elapsed = wall.ElapsedSeconds();

  const service::EngineStats stats_after = engine.Stats();
  const MetricsSnapshot delta = engine.metrics().Snapshot().Delta(before);
  const uint64_t submitted =
      stats_after.requests_submitted - stats_before.requests_submitted;
  const uint64_t shed = stats_after.pipeline.requests_shed -
                        stats_before.pipeline.requests_shed;
  SUBTAB_CHECK(submitted == report.fired);

  SweepResult result;
  result.rate_rps = rate;
  result.shed_fraction =
      static_cast<double>(shed) /
      static_cast<double>(std::max<uint64_t>(1, submitted));
  result.rps = static_cast<double>(submitted - shed) / std::max(1e-9, elapsed);
  const auto latency = delta.histograms.find("pipeline.latency");
  if (latency != delta.histograms.end()) {
    result.p50_ms = latency->second.Percentile(0.50) * 1e3;
    result.p95_ms = latency->second.Percentile(0.95) * 1e3;
    result.p99_ms = latency->second.Percentile(0.99) * 1e3;
  }

  Measured(StrFormat(
      "%7zu rows %2zu thr %2zu tenants %-7s %7.1f rps offered -> %7.1f "
      "served  p50 %7.2fms p95 %7.2fms  shed %5.1f%%  lag max %.2fms",
      rows, threads, tenants, ArrivalProcessName(arrival), rate, result.rps,
      result.p50_ms, result.p95_ms, result.shed_fraction * 100.0,
      report.max_lag_seconds * 1e3));
  JsonLine("scale_sweep")
      .Field("rows", static_cast<uint64_t>(rows))
      .Field("threads", static_cast<uint64_t>(threads))
      .Field("tenants", static_cast<uint64_t>(tenants))
      .Field("arrival", std::string(ArrivalProcessName(arrival)))
      .Field("rate_rps", rate)
      .Field("fired", static_cast<uint64_t>(report.fired))
      .Field("duration_s", elapsed)
      .Field("rps", result.rps)
      .Field("p50_ms", result.p50_ms)
      .Field("p95_ms", result.p95_ms)
      .Field("p99_ms", result.p99_ms)
      .Field("shed_fraction", result.shed_fraction)
      .Field("queue_scan_p95_ms", HistP95Ms(delta, "pipeline.stage.queue_scan"))
      .Field("scan_p95_ms", HistP95Ms(delta, "pipeline.stage.scan"))
      .Field("queue_select_p95_ms",
             HistP95Ms(delta, "pipeline.stage.queue_select"))
      .Field("select_p95_ms", HistP95Ms(delta, "pipeline.stage.select"))
      .Field("max_lag_ms", report.max_lag_seconds * 1e3)
      .Emit(file);
  return result;
}

void RunScaleSweep(const BenchScale& scale, const std::string& model_dir,
                   BenchJsonFile* file) {
  Header("Open-loop scale sweep: rows x threads x tenants x arrival rate");
  PaperRef("(no paper figure; ROADMAP north star — 'heavy traffic from");
  PaperRef("millions of users'. Closed-loop benches cannot show the knee:");
  PaperRef("offered load must exceed capacity for shed/queueing to exist.)");

  const std::vector<size_t> rows_list =
      scale.quick ? std::vector<size_t>{scale.Rows(250000)}
                  : std::vector<size_t>{250000, 1000000};
  const std::vector<size_t> threads_list =
      scale.quick ? std::vector<size_t>{4} : std::vector<size_t>{4, 16};
  const size_t tenants = scale.Count(8, 4);

  SubTabConfig config = DefaultConfig(17);
  // The forge tables are 1-2 orders past the paper-replica benches; bound
  // the one-off fit without touching the serving path under test.
  config.embedding.epochs = 2;
  config.embedding.num_threads = HardwareThreads();

  for (const size_t rows : rows_list) {
    const SyntheticTable data = GenerateSyntheticTable(ForgeSpec(rows, 7));
    const std::vector<std::vector<SpQuery>> sessions =
        ForgeSessions(data, scale.Count(64, 24), 123);

    for (const size_t threads : threads_list) {
      service::EngineOptions options;
      options.num_threads = threads;
      options.persist_dir = model_dir;  // Fit once, load on later engines.
      options.max_queue_depth = 4 * threads;
      options.max_pending_per_tenant = 2 * threads;
      options.tracing = false;  // Stage histograms record regardless.
      service::ServingEngine engine(options);
      for (size_t t = 0; t < tenants; ++t) {
        // Same table under every tenant id: the registry dedups by content
        // fingerprint, so one fit serves all tenants (multi-tenancy without
        // N copies — exactly the production claim being tested).
        SUBTAB_CHECK(engine
                         .RegisterTable("t" + std::to_string(t), data.table,
                                        config)
                         .ok());
      }

      // Calibrate capacity by direct measurement: a short CLOSED-loop burst
      // with `threads` concurrent clients (each waits for its responses, so
      // admission control never sheds) saturates the workers, and served
      // throughput IS the capacity. Deriving it from solo stage times would
      // overestimate — selection fans out internally and workers contend
      // for the same cores, so per-request wall time stretches under load.
      const size_t cal_per_client = 12;
      Stopwatch cal_watch;
      {
        std::vector<std::thread> clients;
        for (size_t c = 0; c < threads; ++c) {
          clients.emplace_back([&, c] {
            for (size_t i = 0; i < cal_per_client; ++i) {
              const size_t n = c * cal_per_client + i;
              service::SelectRequest request;
              request.table_id = "t" + std::to_string(n % tenants);
              request.query = sessions[n % sessions.size()]
                                      [n % sessions[n % sessions.size()].size()];
              request.seed = 900000000ULL + n;
              SUBTAB_CHECK(engine.Select(request).status.ok());
            }
          });
        }
        for (std::thread& client : clients) client.join();
      }
      const double cal_s = std::max(1e-6, cal_watch.ElapsedSeconds());
      const double capacity =
          static_cast<double>(threads * cal_per_client) / cal_s;
      // Effective busy time per request per worker at saturation (feeds the
      // queueing bound below).
      const double busy_per_request = static_cast<double>(threads) / capacity;
      Measured(StrFormat(
          "%7zu rows %2zu thr: calibrated capacity ~%.0f rps (%.2fms "
          "effective busy/request)",
          rows, threads, capacity, busy_per_request * 1e3));

      // Below capacity / near capacity / past saturation (+ a bursty point
      // at capacity in full runs).
      struct Point {
        ArrivalProcess arrival;
        double fraction;
      };
      std::vector<Point> points = {{ArrivalProcess::kPoisson, 0.25},
                                   {ArrivalProcess::kPoisson, 0.7},
                                   {ArrivalProcess::kPoisson, 2.5}};
      if (!scale.quick) {
        points.push_back({ArrivalProcess::kBursty, 1.0});
      }
      const double target_seconds = scale.quick ? 4.0 : 6.0;
      std::vector<SweepResult> results;
      for (size_t p = 0; p < points.size(); ++p) {
        const double rate = std::max(1.0, capacity * points[p].fraction);
        const size_t total = std::min<size_t>(
            6000,
            std::max<size_t>(80, static_cast<size_t>(rate * target_seconds)));
        results.push_back(RunSweepPoint(
            engine, sessions, rows, threads, tenants, points[p].arrival,
            rate, total, /*seed=*/1000 + rows / 1000 + threads * 13 + p,
            file));
      }

      // The knee: shed must rise past saturation while admitted p95 stays
      // bounded by the admission queue.
      const SweepResult& low = results.front();
      const SweepResult& top = results[2];  // The 2.5x-capacity point.
      const double bound_ms =
          (static_cast<double>(options.max_queue_depth) /
               static_cast<double>(threads) +
           2.0) *
          busy_per_request * 1e3 * (scale.quick ? 6.0 : 4.0);
      const bool knee = top.shed_fraction >
                            std::max(0.05, low.shed_fraction + 0.02) &&
                        low.shed_fraction < 0.10 && top.p95_ms <= bound_ms;
      Measured(StrFormat(
          "knee @ %zu rows %zu thr: shed %.1f%% -> %.1f%%, admitted p95 "
          "%.2fms (bound %.2fms) -> %s",
          rows, threads, low.shed_fraction * 100.0, top.shed_fraction * 100.0,
          top.p95_ms, bound_ms, knee ? "DEMONSTRATED" : "NOT demonstrated"));
      JsonLine("scale_knee")
          .Field("rows", static_cast<uint64_t>(rows))
          .Field("threads", static_cast<uint64_t>(threads))
          .Field("low_rate_rps", low.rate_rps)
          .Field("top_rate_rps", top.rate_rps)
          .Field("low_shed_fraction", low.shed_fraction)
          .Field("top_shed_fraction", top.shed_fraction)
          .Field("admitted_p95_ms", top.p95_ms)
          .Field("p95_bound_ms", bound_ms)
          .Field("knee_demonstrated", static_cast<uint64_t>(knee ? 1 : 0))
          .Emit(file);
      SUBTAB_CHECK(knee);
    }
  }
}

}  // namespace
}  // namespace subtab::bench

int main(int argc, char** argv) {
  using namespace subtab::bench;
  const BenchArgs args = ParseBenchArgs(argc, argv);
  const BenchScale scale = ScaleFor(args.quick);
  BenchJsonFile file("scale", args.quick);

  Header("Workload forge: synthetic scale data + open-loop traffic curves");
  std::printf("quick=%d  hardware threads: %zu\n", args.quick ? 1 : 0,
              subtab::HardwareThreads());

  const std::string model_dir =
      (std::filesystem::temp_directory_path() / "subtab_bench_scale_models")
          .string();
  std::filesystem::create_directories(model_dir);

  RunGeneratorScaling(scale, &file);
  RunScaleSweep(scale, model_dir, &file);

  file.Write();
  std::printf("\nbench_scale: all checks passed\n");
  return 0;
}
