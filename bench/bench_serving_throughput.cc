// Serving-engine throughput — not a paper figure, but the number the ROADMAP
// north star cares about: how many display requests per second can one
// process answer, and at what tail latency, as worker threads scale 1/4/16?
//
// Workload: synthetic analyst sessions over the cyber-security dataset
// (Sec. 6.2.2's replay study), every step query issued as a SelectRequest by
// closed-loop client threads (one client per engine worker). Phases per
// thread count:
//   legacy — the pre-refactor blocking executor (one monolithic
//            SelectForQuery task per request): the before-side of the
//            pipeline refactor, same queries, same engine chassis;
//   cold   — the staged pipeline (scan/select stage hops, no intermediate
//            materialization): mostly cache misses, raw throughput;
//   warm   — every client replays the full list: the served-from-cache path.
// A final overload phase hammers a bounded-admission engine open-loop to
// measure the shed rate, and a drill-down phase replays sessions of 4-6
// successively refined queries with containment reuse on vs off (hit rate,
// restricted- vs full-scan rows, throughput delta). Emits the repo's
// standard "json |" records AND the machine-readable BENCH_serving.json
// artifact (p50/p95/p99 latency, throughput, shed rate, containment hit
// rate) so the repo accumulates a perf trajectory; the full-size run
// enforces the pipeline >= 2x the blocking executor at 16 threads, and
// every run enforces containment hits > 0 with restricted scans smaller
// than the table.

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <random>
#include <thread>
#include <utility>

#include "bench_common.h"
#include "subtab/cluster/kmeans.h"
#include "subtab/core/subtab.h"
#include "subtab/eda/session_generator.h"
#include "subtab/service/engine.h"
#include "subtab/table/query.h"
#include "subtab/util/sample_quality.h"
#include "subtab/util/stopwatch.h"
#include "subtab/util/string_util.h"

namespace subtab::bench {
namespace {

/// The pipeline must beat the blocking executor by at least this factor at
/// the top thread count (full-size run; CHECKed so CI catches regressions).
constexpr double kPipelineSpeedupFloor = 2.0;

/// Nearest-rank percentile over an ascending-sorted sample, in ms.
double PercentileMs(const std::vector<double>& sorted_seconds, double p) {
  SUBTAB_CHECK(!sorted_seconds.empty());
  const size_t rank = std::clamp<size_t>(
      static_cast<size_t>(std::ceil(p * static_cast<double>(sorted_seconds.size()))),
      1, sorted_seconds.size());
  return sorted_seconds[rank - 1] * 1e3;
}

struct PhaseResult {
  size_t requests = 0;
  double seconds = 0.0;
  std::vector<double> latencies;
  double rps = 0.0;
};

/// Each client thread runs a closed loop over its assigned queries.
PhaseResult RunClients(service::ServingEngine& engine, size_t num_clients,
                       const std::vector<std::vector<SpQuery>>& per_client) {
  std::vector<PhaseResult> partial(num_clients);
  std::vector<std::thread> clients;
  Stopwatch wall;
  for (size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&engine, &partial, &per_client, c] {
      for (const SpQuery& query : per_client[c]) {
        service::SelectRequest request;
        request.table_id = "cyber";
        request.query = query;
        Stopwatch watch;
        service::SelectResponse response = engine.Select(request);
        partial[c].latencies.push_back(watch.ElapsedSeconds());
        // Empty query results are valid outcomes of session replay.
        SUBTAB_CHECK(response.status.ok() ||
                     response.status.code() == StatusCode::kInvalidArgument);
      }
    });
  }
  for (auto& t : clients) t.join();

  PhaseResult merged;
  merged.seconds = wall.ElapsedSeconds();
  for (PhaseResult& p : partial) {
    merged.requests += p.latencies.size();
    merged.latencies.insert(merged.latencies.end(), p.latencies.begin(),
                            p.latencies.end());
  }
  merged.rps = static_cast<double>(merged.requests) / merged.seconds;
  return merged;
}

/// Reports one phase; cache/coalescing rates are per-phase deltas.
void Report(const std::string& phase, size_t threads, const PhaseResult& result,
            const service::EngineStats& before,
            const service::EngineStats& after, BenchJsonFile* file) {
  std::vector<double> sorted = result.latencies;
  std::sort(sorted.begin(), sorted.end());
  const double p50 = PercentileMs(sorted, 0.50);
  const double p95 = PercentileMs(sorted, 0.95);
  const double p99 = PercentileMs(sorted, 0.99);
  const uint64_t hits = after.selection_cache.hits - before.selection_cache.hits;
  const uint64_t misses =
      after.selection_cache.misses - before.selection_cache.misses;
  const uint64_t coalesced = after.requests_coalesced - before.requests_coalesced;
  const uint64_t shed =
      after.pipeline.requests_shed - before.pipeline.requests_shed;
  const double hit_rate = static_cast<double>(hits) /
                          static_cast<double>(std::max<uint64_t>(1, hits + misses));
  const double shed_rate =
      static_cast<double>(shed) /
      static_cast<double>(std::max<uint64_t>(
          1, after.requests_submitted - before.requests_submitted));
  Measured(StrFormat("%-7s %2zu threads  %5zu req in %6.2fs  %8.1f req/s  "
                     "p50 %7.3fms  p95 %7.3fms  p99 %7.3fms  cache-hit %4.1f%%",
                     phase.c_str(), threads, result.requests, result.seconds,
                     result.rps, p50, p95, p99, hit_rate * 100.0));
  JsonLine("serving_throughput")
      .Field("phase", phase)
      .Field("threads", static_cast<uint64_t>(threads))
      .Field("requests", static_cast<uint64_t>(result.requests))
      .Field("seconds", result.seconds)
      .Field("rps", result.rps)
      .Field("p50_ms", p50)
      .Field("p95_ms", p95)
      .Field("p99_ms", p99)
      .Field("cache_hit_rate", hit_rate)
      .Field("coalesced", coalesced)
      .Field("shed_rate", shed_rate)
      .Emit(file);
}

/// One thread count: the blocking executor first (the before-side), then the
/// staged pipeline cold + warm. Returns (legacy rps, pipeline cold rps).
std::pair<double, double> RunOne(size_t threads, const GeneratedDataset& data,
                                 const std::vector<SpQuery>& queries,
                                 const std::string& model_dir,
                                 BenchJsonFile* file) {
  // Cold phases partition the distinct work across clients.
  std::vector<std::vector<SpQuery>> shards(threads);
  for (size_t i = 0; i < queries.size(); ++i) {
    shards[i % threads].push_back(queries[i]);
  }

  // ---- Legacy: the pre-refactor blocking executor, faithfully — one
  // ---- monolithic task per request (materializing the intermediate query
  // ---- result) AND the pre-refactor k-means distance kernel.
  double legacy_rps = 0.0;
  {
    service::EngineOptions options;
    options.num_threads = threads;
    options.persist_dir = model_dir;  // Fit once, load on later phases.
    options.staged_pipeline = false;
    service::ServingEngine engine(options);
    SUBTAB_CHECK(engine.RegisterTable("cyber", data.table, DefaultConfig()).ok());
    SetKMeansReferenceKernel(true);
    service::EngineStats before = engine.Stats();
    PhaseResult legacy = RunClients(engine, threads, shards);
    SetKMeansReferenceKernel(false);
    Report("legacy", threads, legacy, before, engine.Stats(), file);
    legacy_rps = legacy.rps;
  }

  // ---- Pipeline: staged scan/select with chunk-parallel scans. ----
  service::EngineOptions options;
  options.num_threads = threads;
  options.persist_dir = model_dir;
  service::ServingEngine engine(options);
  SUBTAB_CHECK(engine.RegisterTable("cyber", data.table, DefaultConfig()).ok());

  service::EngineStats before = engine.Stats();
  PhaseResult cold = RunClients(engine, threads, shards);
  service::EngineStats after = engine.Stats();
  Report("cold", threads, cold, before, after, file);

  // Warm: every client replays everything; the cache absorbs the load.
  std::vector<std::vector<SpQuery>> full(threads, queries);
  before = after;
  PhaseResult warm = RunClients(engine, threads, full);
  after = engine.Stats();
  Report("warm", threads, warm, before, after, file);
  JsonLine("engine_stats")
      .Field("threads", static_cast<uint64_t>(threads))
      .RawField("stats", after.ToJson())
      .Emit(file);
  return {legacy_rps, cold.rps};
}

/// Open-loop overload against a bounded-admission engine: the shed-rate
/// measurement (admission keeps tail latency sane by failing fast).
void RunOverload(const GeneratedDataset& data,
                 const std::vector<SpQuery>& queries,
                 const std::string& model_dir, BenchJsonFile* file) {
  service::EngineOptions options;
  options.num_threads = 4;
  options.persist_dir = model_dir;
  options.max_pending_per_tenant = 32;
  service::ServingEngine engine(options);
  SUBTAB_CHECK(engine.RegisterTable("cyber", data.table, DefaultConfig()).ok());

  constexpr size_t kSubmitters = 8;
  std::vector<std::thread> submitters;
  Stopwatch wall;
  for (size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&engine, &queries, t] {
      for (size_t i = t; i < queries.size(); i += 2) {  // Overlapping halves.
        service::SelectRequest request;
        request.table_id = "cyber";
        request.query = queries[i % queries.size()];
        request.seed = 77777 + t * queries.size() + i;  // Dodge cache/dedup.
        engine.SubmitSelect(request);
      }
    });
  }
  for (auto& t : submitters) t.join();
  engine.Drain();
  const double seconds = wall.ElapsedSeconds();

  const service::EngineStats stats = engine.Stats();
  const double shed_rate = static_cast<double>(stats.pipeline.requests_shed) /
                           static_cast<double>(stats.requests_submitted);
  Measured(StrFormat("overload: %llu submitted open-loop in %.2fs, "
                     "%llu shed (%.1f%%), p95 %.3fms, queue bounded",
                     (unsigned long long)stats.requests_submitted, seconds,
                     (unsigned long long)stats.pipeline.requests_shed,
                     shed_rate * 100.0, stats.pipeline.latency_p95_ms));
  JsonLine("serving_overload")
      .Field("submitted", stats.requests_submitted)
      .Field("shed", stats.pipeline.requests_shed)
      .Field("shed_rate", shed_rate)
      .Field("seconds", seconds)
      .Field("p50_ms", stats.pipeline.latency_p50_ms)
      .Field("p95_ms", stats.pipeline.latency_p95_ms)
      .Field("p99_ms", stats.pipeline.latency_p99_ms)
      .Emit(file);
  // Bounded queues shed under overload instead of queueing unboundedly (the
  // saturation suite proves no-deadlock; this pins the bench workload too).
  SUBTAB_CHECK(stats.pipeline.requests_shed > 0);
  SUBTAB_CHECK(stats.requests_submitted == stats.requests_completed);
}

/// Synthetic drill-down sessions: chains of 4-6 successively narrower
/// queries over the cyber table, the workload Smart Drill-Down reports
/// dominating interactive exploration. Each step either tightens an existing
/// numeric bound or adds a conjunct, so every step's result is contained in
/// its predecessor's — the shape the containment tier reuses.
std::vector<std::vector<SpQuery>> DrillDownSessions(const GeneratedDataset& data,
                                                    size_t num_sessions,
                                                    uint64_t seed) {
  double ts_min = 0.0, ts_max = 1.0, by_min = 0.0, by_max = 1.0;
  {
    size_t ts_idx = *data.table.ColumnIndex("timestamp");
    size_t by_idx = *data.table.ColumnIndex("bytes");
    SUBTAB_CHECK(data.table.column(ts_idx).NumericRange(&ts_min, &ts_max));
    SUBTAB_CHECK(data.table.column(by_idx).NumericRange(&by_min, &by_max));
  }
  auto ts_at = [&](double frac) { return ts_min + frac * (ts_max - ts_min); };
  const char* protocols[] = {"tcp", "udp", "icmp"};
  const char* actions[] = {"allow", "deny", "drop"};

  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> base_frac(0.05, 0.35);
  std::vector<std::vector<SpQuery>> sessions;
  for (size_t s = 0; s < num_sessions; ++s) {
    const double lo = base_frac(rng);
    std::vector<SpQuery> chain;
    SpQuery q;
    q.filters = {Predicate::Num("timestamp", CmpOp::kGe, ts_at(lo))};
    chain.push_back(q);
    q.filters.push_back(Predicate::Str("protocol", CmpOp::kEq, protocols[s % 3]));
    chain.push_back(q);
    // Tighten the bound already held: interval containment, no shared literal.
    q.filters[0] = Predicate::Num("timestamp", CmpOp::kGe, ts_at(lo + 0.15));
    chain.push_back(q);
    q.filters.push_back(Predicate::Num(
        "bytes", CmpOp::kLe, by_min + 0.9 * (by_max - by_min)));
    chain.push_back(q);
    if (s % 3 != 0) {  // Chains of 4, 5, and 6 steps.
      q.filters.push_back(Predicate::Str("action", CmpOp::kEq, actions[s % 3]));
      chain.push_back(q);
    }
    if (s % 3 == 2) {
      q.filters[0] = Predicate::Num("timestamp", CmpOp::kGe, ts_at(lo + 0.25));
      chain.push_back(q);
    }
    sessions.push_back(std::move(chain));
  }
  return sessions;
}

/// Walks the sink's retained drill-down traces and enforces the
/// observability acceptance bar: some fully-staged request's
/// queue.scan/scan/queue.select/select spans must attribute >= 90% of its
/// root's wall time, with the scan span carrying containment + row-cost
/// attributes. Emits the trace_summary record (per-stage p50/p95 off the
/// unified registry histograms) and writes the two artifacts CI uploads:
/// TRACE_serving_exemplars.jsonl (slow-query exemplars; the full ring when
/// nothing crossed the threshold yet) and METRICS_serving.json.
void ReportTraces(const service::ServingEngine& engine,
                  const service::EngineStats& stats, BenchJsonFile* file) {
  const std::shared_ptr<TraceSink>& sink = engine.trace_sink();
  SUBTAB_CHECK(sink != nullptr);
  std::vector<std::shared_ptr<const CompletedTrace>> exemplars =
      sink->Exemplars();
  // Non-destructive observer view: ring (newest first) + exemplars the ring
  // already dropped, deduplicated — the same merge /traces serves.
  std::vector<std::shared_ptr<const CompletedTrace>> retained = sink->Peek();

  size_t staged_traces = 0;
  size_t containment_hit_traces = 0;
  bool scan_attrs_populated = false;
  double best_coverage = 0.0;
  for (const auto& trace : retained) {
    if (trace->spans.size() < 5) continue;  // Root + the 4 stage spans.
    ++staged_traces;
    uint64_t staged_ns = 0;
    for (const TraceSpan& span : trace->spans) {
      if (span.parent_id != 0) staged_ns += span.duration_ns;
      if (span.name != "scan") continue;
      const std::string* containment = span.FindAttr("containment");
      if (containment != nullptr && span.FindAttr("rows_visited") != nullptr &&
          span.FindAttr("chunks_scanned") != nullptr) {
        scan_attrs_populated = true;
        if (*containment == "hit") ++containment_hit_traces;
      }
    }
    best_coverage = std::max(
        best_coverage,
        static_cast<double>(staged_ns) /
            static_cast<double>(
                std::max<uint64_t>(1, trace->root().duration_ns)));
  }

  const TraceSinkStats sink_stats = sink->Stats();
  const service::PipelineStats& pipeline = stats.pipeline;
  Measured(StrFormat(
      "traces: %zu staged retained (%zu containment-hit), best stage "
      "coverage %.1f%% of root wall, %llu exemplars pinned (threshold %.3fms)",
      staged_traces, containment_hit_traces, best_coverage * 100.0,
      (unsigned long long)sink_stats.exemplars_pinned,
      sink_stats.exemplar_threshold_seconds * 1e3));
  JsonLine("trace_summary")
      .Field("staged_traces", static_cast<uint64_t>(staged_traces))
      .Field("containment_hit_traces",
             static_cast<uint64_t>(containment_hit_traces))
      .Field("span_coverage", best_coverage)
      .Field("queue_scan_p50_ms", pipeline.stage_queue_scan.p50_ms)
      .Field("queue_scan_p95_ms", pipeline.stage_queue_scan.p95_ms)
      .Field("scan_p50_ms", pipeline.stage_scan.p50_ms)
      .Field("scan_p95_ms", pipeline.stage_scan.p95_ms)
      .Field("queue_select_p50_ms", pipeline.stage_queue_select.p50_ms)
      .Field("queue_select_p95_ms", pipeline.stage_queue_select.p95_ms)
      .Field("select_p50_ms", pipeline.stage_select.p50_ms)
      .Field("select_p95_ms", pipeline.stage_select.p95_ms)
      .Field("traces_committed", sink_stats.committed)
      .Field("exemplars_pinned", sink_stats.exemplars_pinned)
      .Field("exemplar_threshold_ms",
             sink_stats.exemplar_threshold_seconds * 1e3)
      .Emit(file);

  // Acceptance: the stage spans account for the request, not just decorate
  // it — and the scan span explains its cost (containment verdict + rows).
  SUBTAB_CHECK(staged_traces > 0);
  SUBTAB_CHECK(scan_attrs_populated);
  SUBTAB_CHECK(best_coverage >= 0.9);

  // Artifacts for the CI stress job. Exemplar pinning needs a minimum
  // sample count before the percentile threshold arms; fall back to the
  // ring so the artifact is never empty on short runs.
  const std::string jsonl =
      TracesToJsonl(exemplars.empty() ? retained : exemplars);
  if (std::FILE* f = std::fopen("TRACE_serving_exemplars.jsonl", "w")) {
    std::fwrite(jsonl.data(), 1, jsonl.size(), f);
    std::fclose(f);
    std::printf("wrote TRACE_serving_exemplars.jsonl (%zu traces)\n",
                exemplars.empty() ? retained.size() : exemplars.size());
  }
  const std::string metrics = engine.MetricsJson();
  if (std::FILE* f = std::fopen("METRICS_serving.json", "w")) {
    std::fwrite(metrics.data(), 1, metrics.size(), f);
    std::fclose(f);
    std::printf("wrote METRICS_serving.json\n");
  }
}

/// Drill-down trace through the containment tier, against the same trace
/// with reuse disabled: hit rate, restricted- vs full-scan rows, and the
/// throughput delta. The full-size AND quick runs both enforce the
/// acceptance criteria: containment hits > 0, restricted scans smaller
/// than the table.
void RunDrillDown(const GeneratedDataset& data,
                  const std::string& model_dir, bool quick,
                  BenchJsonFile* file) {
  constexpr size_t kClients = 4;
  const std::vector<std::vector<SpQuery>> sessions =
      DrillDownSessions(data, quick ? 24 : 120, 123);
  // Whole chains per client, steps in order: a refinement is always
  // submitted after its parent resolved, as an analyst would.
  std::vector<std::vector<SpQuery>> per_client(kClients);
  for (size_t s = 0; s < sessions.size(); ++s) {
    for (const SpQuery& q : sessions[s]) per_client[s % kClients].push_back(q);
  }

  double rps_without = 0.0;
  for (const bool containment : {false, true}) {
    service::EngineOptions options;
    options.num_threads = kClients;
    options.persist_dir = model_dir;
    options.containment_reuse = containment;
    service::ServingEngine engine(options);
    SUBTAB_CHECK(engine.RegisterTable("cyber", data.table, DefaultConfig()).ok());

    const service::EngineStats before = engine.Stats();
    PhaseResult result = RunClients(engine, kClients, per_client);
    const service::EngineStats after = engine.Stats();
    Report(containment ? "drill+c" : "drill", kClients, result, before, after,
           file);

    const auto& c = after.containment;
    const double hit_rate =
        static_cast<double>(c.containment_hits) /
        static_cast<double>(
            std::max<uint64_t>(1, c.containment_hits + c.containment_misses));
    const double avg_restricted =
        c.containment_hits == 0
            ? 0.0
            : static_cast<double>(c.restricted_scan_rows) /
                  static_cast<double>(c.containment_hits);
    const double table_rows = static_cast<double>(data.table.num_rows());
    Measured(StrFormat(
        "drill-down %-3s  %8.1f req/s  containment-hit %4.1f%%  "
        "restricted scan %7.1f rows vs table %zu  (%.2fx vs no-reuse)",
        containment ? "on" : "off", result.rps, hit_rate * 100.0,
        avg_restricted, data.table.num_rows(),
        rps_without > 0.0 ? result.rps / rps_without : 1.0));
    JsonLine("serving_drilldown")
        .Field("containment", containment ? uint64_t{1} : uint64_t{0})
        .Field("requests", static_cast<uint64_t>(result.requests))
        .Field("rps", result.rps)
        .Field("containment_hits", c.containment_hits)
        .Field("containment_hit_rate", hit_rate)
        .Field("restricted_scan_rows", c.restricted_scan_rows)
        .Field("avg_restricted_scan_rows", avg_restricted)
        .Field("full_scan_rows", c.full_scan_rows)
        .Field("table_rows", static_cast<uint64_t>(data.table.num_rows()))
        .Field("speedup_vs_no_reuse",
               rps_without > 0.0 ? result.rps / rps_without : 1.0)
        .Emit(file);

    if (!containment) {
      rps_without = result.rps;
      SUBTAB_CHECK(c.containment_hits == 0);  // Reuse actually disabled.
    } else {
      // Acceptance: drill-downs reuse cached ancestors, and restricted
      // scans are genuinely smaller than full-table scans.
      SUBTAB_CHECK(c.containment_hits > 0);
      SUBTAB_CHECK(avg_restricted < table_rows);
      // The drill-down engine is also where the retained traces must carry
      // their weight (containment attributes on real refinement chains).
      ReportTraces(engine, after, file);
    }
  }
}

/// Tracing cost guard: the same cold workload (per-request seeds dodge the
/// cache, so every request walks scan + select) through two otherwise
/// identical engines, tracing on vs off. The full-size run enforces the
/// <= 3% overhead bound; --quick's per-request work is too small for a
/// stable ratio in CI (same policy as the pipeline-speedup floor).
void RunTracingOverhead(const GeneratedDataset& data,
                        const std::vector<SpQuery>& queries,
                        const std::string& model_dir, bool quick,
                        BenchJsonFile* file) {
  constexpr size_t kClients = 4;
  const size_t repeats = quick ? 1 : 3;

  double rps_off = 0.0, rps_on = 0.0;
  for (const bool tracing : {false, true}) {
    service::EngineOptions options;
    options.num_threads = kClients;
    options.persist_dir = model_dir;
    options.tracing = tracing;
    service::ServingEngine engine(options);
    SUBTAB_CHECK(engine.RegisterTable("cyber", data.table, DefaultConfig()).ok());
    SUBTAB_CHECK((engine.trace_sink() != nullptr) == tracing);

    // Unique seeds per request keep both sides on the full staged path.
    Stopwatch wall;
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&engine, &queries, repeats, c] {
        for (size_t r = 0; r < repeats; ++r) {
          for (size_t i = c; i < queries.size(); i += kClients) {
            service::SelectRequest request;
            request.table_id = "cyber";
            request.query = queries[i];
            request.seed = 900000 + (r * kClients + c) * queries.size() + i;
            const service::SelectResponse response = engine.Select(request);
            SUBTAB_CHECK(response.status.ok() ||
                         response.status.code() ==
                             StatusCode::kInvalidArgument);
          }
        }
      });
    }
    for (auto& t : clients) t.join();
    const double seconds = wall.ElapsedSeconds();
    const double rps =
        static_cast<double>(engine.Stats().requests_submitted) / seconds;
    (tracing ? rps_on : rps_off) = rps;
  }

  const double overhead = 1.0 - rps_on / rps_off;
  Measured(StrFormat("tracing overhead (cold staged path): %.1f traced vs "
                     "%.1f untraced req/s (%+.2f%%, bound 3%%)",
                     rps_on, rps_off, overhead * 100.0));
  JsonLine("tracing_overhead")
      .Field("rps_traced", rps_on)
      .Field("rps_untraced", rps_off)
      .Field("overhead", overhead)
      .Emit(file);
  if (!quick) SUBTAB_CHECK(overhead <= 0.03);
}

/// Sub-linear sampled selection vs the exact path on a scope large enough
/// that the threshold (10k rows) is exceeded even in --quick. Timed on the
/// model directly (SelectScoped with and without sampling, same seeds) so
/// the comparison isolates the select stage; quality ratios come from the
/// same SampleQualityCheck the engine's gate uses. Both run sizes enforce
/// the acceptance criteria: sampled p95 <= 0.3x exact, and MEAN combined
/// coverage+diversity ratio >= 0.95 across the paired seeds. Per-seed
/// ratios straddle 1.0 either way (k-means local optima: a sample can beat
/// the exact run), so the worst seed is reported but not gated — in
/// production a sub-gate seed is exactly what the engine's quality check
/// catches and serves exact instead (quality_fallbacks counts them here).
void RunSampledSelection(const BenchArgs& args, BenchJsonFile* file) {
  GeneratedDataset data = LoadDataset("CY", ScaleFor(args.quick).Rows(30000, 12000));
  Result<SubTab> fitted = SubTab::Fit(data.table, DefaultConfig());
  SUBTAB_CHECK(fitted.ok());
  const SubTab& model = *fitted;

  SelectionScope scope;  // Full table: the worst case for exact selection.
  SelectionSamplingOptions sampling;
  sampling.min_rows = 1;
  sampling.sample_rows = 2048;
  constexpr size_t kRows = 10, kCols = 8;

  // Exact is the slow side, so only the first `pairs` iterations run it
  // (paired seeds: the quality ratio compares like with like).
  const size_t pairs = args.quick ? 6 : 15;
  const size_t sampled_iters = args.quick ? 24 : 60;

  SampleQualityCheck quality;
  std::vector<double> sampled_seconds, exact_seconds;
  double worst_ratio = 2.0, ratio_sum = 0.0;
  uint64_t checks = 0, fallbacks = 0;
  for (size_t i = 0; i < sampled_iters; ++i) {
    const uint64_t seed = 4242 + i;
    const SubTabView sampled =
        model.SelectScoped(scope, kRows, kCols, seed, sampling);
    SUBTAB_CHECK(sampled.sampled);
    sampled_seconds.push_back(sampled.selection_seconds);
    if (i < pairs) {
      const SubTabView exact = model.SelectScoped(scope, kRows, kCols, seed);
      exact_seconds.push_back(exact.selection_seconds);
      const double ratio = quality.QualityRatio(
          /*model_digest=*/1, model.preprocessed().binned(),
          /*keep_alive=*/nullptr, sampled.row_ids, sampled.col_ids,
          exact.row_ids, exact.col_ids);
      ++checks;
      worst_ratio = std::min(worst_ratio, ratio);
      ratio_sum += ratio;
      if (ratio < 0.95) ++fallbacks;
    }
  }
  std::sort(sampled_seconds.begin(), sampled_seconds.end());
  std::sort(exact_seconds.begin(), exact_seconds.end());
  const double sampled_p95 = PercentileMs(sampled_seconds, 0.95);
  const double exact_p95 = PercentileMs(exact_seconds, 0.95);
  const double speedup = exact_p95 / sampled_p95;
  const double mean_ratio = ratio_sum / static_cast<double>(checks);

  Measured(StrFormat(
      "sampled selection %zu of %zu rows: p95 %.2f ms vs exact %.2f ms "
      "(%.1fx, floor 3.3x)  quality ratio %.3f mean / %.3f worst "
      "(gate 0.95 on mean; %zu of %zu seeds would fall back)",
      sampling.sample_rows, data.table.num_rows(), sampled_p95, exact_p95,
      speedup, mean_ratio, worst_ratio, static_cast<size_t>(fallbacks),
      static_cast<size_t>(checks)));
  JsonLine("selection_sampling")
      .Field("scope_rows", static_cast<uint64_t>(data.table.num_rows()))
      .Field("sample_rows", static_cast<uint64_t>(sampling.sample_rows))
      .Field("sampled_select_p95_ms", sampled_p95)
      .Field("exact_select_p95_ms", exact_p95)
      .Field("speedup", speedup)
      .Field("quality_ratio", mean_ratio)
      .Field("worst_quality_ratio", worst_ratio)
      .Field("quality_checks", checks)
      .Field("quality_fallbacks", fallbacks)
      .Emit(file);

  SUBTAB_CHECK(sampled_p95 <= 0.3 * exact_p95);
  SUBTAB_CHECK(mean_ratio >= 0.95);
}

/// Zone-map pruning on the scan stage itself: a wide clustered table
/// (ascending timestamps rechunked into ~128 sealed chunks, a block-local
/// categorical riding along) under narrowing drill-down chains — the
/// analyst refinement pattern where each step's range is a subset of its
/// parent's, so most chunks refute most steps. ResolveQueryScope is timed
/// directly (pruning on vs off, identical queries and repeats) so the
/// comparison isolates the filter scan from selection/caching; bit-identity
/// is asserted on every query. Both run sizes enforce the acceptance bar:
/// mean pruned-chunk fraction >= 60% and full-scan p95 >= 2x the pruned p95.
void RunScanPruning(const BenchArgs& args, BenchJsonFile* file) {
  const size_t rows = ScaleFor(args.quick).Rows(512000);
  constexpr size_t kChunks = 128;
  const size_t chunk_rows = rows / kChunks;
  constexpr size_t kBlocks = 8;  // Categorical value per table eighth.
  std::vector<double> ts(rows);
  std::vector<std::string> shard(rows);
  for (size_t i = 0; i < rows; ++i) {
    ts[i] = static_cast<double>(i);
    shard[i] = "shard" + std::to_string(i * kBlocks / rows);
  }
  Result<Table> made =
      Table::Make({Column::Numeric("ts", ts).Rechunked(chunk_rows),
                   Column::Categorical("shard", shard).Rechunked(chunk_rows)});
  SUBTAB_CHECK(made.ok());
  const Table& table = *made;

  // Drill-down chains: each starts on a quarter of the domain at a random
  // offset plus the shard holding its lower edge, then tightens the range
  // by 0.6x per step — interval containment, like DrillDownSessions.
  const size_t chains = ScaleFor(args.quick).Count(8, 4);
  constexpr size_t kSteps = 10;
  std::mt19937 rng(271);
  std::uniform_real_distribution<double> offset(0.0, 0.7);
  std::vector<SpQuery> queries;
  for (size_t c = 0; c < chains; ++c) {
    const double lo = offset(rng) * static_cast<double>(rows);
    double span = 0.25 * static_cast<double>(rows);
    const std::string value =
        "shard" + std::to_string(static_cast<size_t>(lo) * kBlocks / rows);
    for (size_t s = 0; s < kSteps; ++s) {
      SpQuery q;
      q.filters = {Predicate::Num("ts", CmpOp::kGe, lo),
                   Predicate::Num("ts", CmpOp::kLt, lo + span),
                   Predicate::Str("shard", CmpOp::kEq, value)};
      queries.push_back(q);
      span *= 0.6;
    }
  }

  QueryExecOptions pruned;  // Serial: isolate pruning from thread fan-out.
  pruned.zone_map_pruning = true;
  QueryExecOptions full = pruned;
  full.zone_map_pruning = false;

  const size_t repeats = ScaleFor(args.quick).Count(9, 5);
  std::vector<double> pruned_seconds, full_seconds;
  double pruned_fraction_sum = 0.0;
  uint64_t code_eval = 0;
  for (const SpQuery& q : queries) {
    Result<QueryScope> off = ResolveQueryScope(table, q, full);
    SUBTAB_CHECK(off.ok());
    Result<QueryScope> on = ResolveQueryScope(table, q, pruned);
    SUBTAB_CHECK(on.ok());
    SUBTAB_CHECK(on->row_ids == off->row_ids);  // Bit-identity, every query.
    SUBTAB_CHECK(on->col_ids == off->col_ids);
    const ScanStats& s = on->stats;
    SUBTAB_CHECK(s.chunks_scanned + s.chunks_pruned ==
                 off->stats.chunks_scanned);
    pruned_fraction_sum += static_cast<double>(s.chunks_pruned) /
                           static_cast<double>(std::max<size_t>(
                               1, s.chunks_scanned + s.chunks_pruned));
    code_eval += s.code_eval_predicates;
    for (size_t r = 0; r < repeats; ++r) {
      Stopwatch watch;
      (void)ResolveQueryScope(table, q, pruned);
      pruned_seconds.push_back(watch.ElapsedSeconds());
      watch.Reset();
      (void)ResolveQueryScope(table, q, full);
      full_seconds.push_back(watch.ElapsedSeconds());
    }
  }
  std::sort(pruned_seconds.begin(), pruned_seconds.end());
  std::sort(full_seconds.begin(), full_seconds.end());
  const double pruned_p95 = PercentileMs(pruned_seconds, 0.95);
  const double full_p95 = PercentileMs(full_seconds, 0.95);
  const double speedup = full_p95 / pruned_p95;
  const double pruned_fraction =
      pruned_fraction_sum / static_cast<double>(queries.size());

  Measured(StrFormat(
      "scan pruning over %zu rows / %zu chunks: %zu drill-down queries, "
      "%.1f%% chunks pruned (floor 60%%), scan p95 %.3f ms pruned vs %.3f ms "
      "full (%.1fx, floor 2x), %llu code-eval conjuncts",
      rows, kChunks, queries.size(), pruned_fraction * 100.0, pruned_p95,
      full_p95, speedup, static_cast<unsigned long long>(code_eval)));
  JsonLine("scan_pruning")
      .Field("table_rows", static_cast<uint64_t>(rows))
      .Field("chunks", static_cast<uint64_t>(kChunks))
      .Field("queries", static_cast<uint64_t>(queries.size()))
      .Field("pruned_chunk_fraction", pruned_fraction)
      .Field("scan_p95_pruned_ms", pruned_p95)
      .Field("scan_p95_full_ms", full_p95)
      .Field("speedup", speedup)
      .Field("code_eval_predicates", code_eval)
      .Field("bit_identical", uint64_t{1})
      .Emit(file);

  SUBTAB_CHECK(pruned_fraction >= 0.6);
  SUBTAB_CHECK(speedup >= 2.0);
}

}  // namespace
}  // namespace subtab::bench

int main(int argc, char** argv) {
  using namespace subtab::bench;
  using namespace subtab;
  const BenchArgs args = ParseBenchArgs(argc, argv);
  BenchJsonFile file("serving", args.quick);

  Header("Serving throughput: requests/sec and latency vs worker threads");
  PaperRef("(no paper figure; ROADMAP north-star metric. Paper reports 1-5s");
  PaperRef("per serial selection, Fig. 9 — the engine must beat that at p99");
  PaperRef("while scaling with threads and serving repeats from cache.)");

  GeneratedDataset data = LoadDataset("CY", ScaleFor(args.quick).Rows(8000));
  SessionGeneratorOptions session_options;
  session_options.num_sessions = ScaleFor(args.quick).Count(40, 12);
  session_options.seed = 9;
  std::vector<Session> sessions = GenerateSessions(data, session_options);
  const std::vector<SpQuery> queries = StepQueries(sessions);
  std::printf("\n%zu sessions -> %zu step queries, %zu hardware threads\n\n",
              sessions.size(), queries.size(), HardwareThreads());

  const std::string model_dir =
      (std::filesystem::temp_directory_path() / "subtab_bench_models").string();
  std::filesystem::create_directories(model_dir);

  const std::vector<size_t> thread_counts =
      args.quick ? std::vector<size_t>{1, 4} : std::vector<size_t>{1, 4, 16};
  double top_legacy_rps = 0.0;
  double top_cold_rps = 0.0;
  for (size_t threads : thread_counts) {
    std::tie(top_legacy_rps, top_cold_rps) =
        RunOne(threads, data, queries, model_dir, &file);
  }
  const double speedup = top_cold_rps / top_legacy_rps;
  Measured(StrFormat("pipeline vs blocking executor at %zu threads: "
                     "%.1f vs %.1f req/s (%.2fx, floor %.1fx)",
                     thread_counts.back(), top_cold_rps, top_legacy_rps,
                     speedup, kPipelineSpeedupFloor));
  JsonLine("pipeline_speedup")
      .Field("threads", static_cast<uint64_t>(thread_counts.back()))
      .Field("legacy_rps", top_legacy_rps)
      .Field("pipeline_rps", top_cold_rps)
      .Field("speedup", speedup)
      .Emit(&file);

  RunOverload(data, queries, model_dir, &file);
  RunDrillDown(data, model_dir, args.quick, &file);
  RunTracingOverhead(data, queries, model_dir, args.quick, &file);
  RunSampledSelection(args, &file);
  RunScanPruning(args, &file);
  file.Write();

  // Enforced on the full-size run only: --quick's tiny tables leave too
  // little per-request work for a stable ratio in CI.
  if (!args.quick) SUBTAB_CHECK(speedup >= kPipelineSpeedupFloor);
  return 0;
}
