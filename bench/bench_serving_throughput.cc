// Serving-engine throughput — not a paper figure, but the number the ROADMAP
// north star cares about: how many display requests per second can one
// process answer, and at what tail latency, as worker threads scale 1/4/16?
//
// Workload: synthetic analyst sessions over the cyber-security dataset
// (Sec. 6.2.2's replay study), every step query issued as a SelectRequest by
// closed-loop client threads (one client per engine worker). Two phases per
// thread count:
//   cold — clients partition the query list: mostly cache misses, measures
//          raw selection throughput under concurrency;
//   warm — every client replays the full list: mostly selection-cache hits,
//          measures the served-from-cache fast path.
// Emits the repo's standard "json |" records for downstream tooling.

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <thread>

#include "bench_common.h"
#include "subtab/eda/session_generator.h"
#include "subtab/service/engine.h"
#include "subtab/util/stopwatch.h"
#include "subtab/util/string_util.h"

namespace subtab::bench {
namespace {

/// Nearest-rank percentile over an ascending-sorted sample, in ms.
double PercentileMs(const std::vector<double>& sorted_seconds, double p) {
  SUBTAB_CHECK(!sorted_seconds.empty());
  const size_t rank = std::clamp<size_t>(
      static_cast<size_t>(std::ceil(p * static_cast<double>(sorted_seconds.size()))),
      1, sorted_seconds.size());
  return sorted_seconds[rank - 1] * 1e3;
}

struct PhaseResult {
  size_t requests = 0;
  double seconds = 0.0;
  std::vector<double> latencies;
};

/// Each client thread runs a closed loop over its assigned queries.
PhaseResult RunClients(service::ServingEngine& engine, size_t num_clients,
                       const std::vector<std::vector<SpQuery>>& per_client) {
  std::vector<PhaseResult> partial(num_clients);
  std::vector<std::thread> clients;
  Stopwatch wall;
  for (size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&engine, &partial, &per_client, c] {
      for (const SpQuery& query : per_client[c]) {
        service::SelectRequest request;
        request.table_id = "cyber";
        request.query = query;
        Stopwatch watch;
        service::SelectResponse response = engine.Select(request);
        partial[c].latencies.push_back(watch.ElapsedSeconds());
        // Empty query results are valid outcomes of session replay.
        SUBTAB_CHECK(response.status.ok() ||
                     response.status.code() == StatusCode::kInvalidArgument);
      }
    });
  }
  for (auto& t : clients) t.join();

  PhaseResult merged;
  merged.seconds = wall.ElapsedSeconds();
  for (PhaseResult& p : partial) {
    merged.requests += p.latencies.size();
    merged.latencies.insert(merged.latencies.end(), p.latencies.begin(),
                            p.latencies.end());
  }
  return merged;
}

/// Reports one phase; cache/coalescing rates are per-phase deltas.
void Report(const std::string& phase, size_t threads, const PhaseResult& result,
            const service::EngineStats& before,
            const service::EngineStats& after) {
  std::vector<double> sorted = result.latencies;
  std::sort(sorted.begin(), sorted.end());
  const double rps = static_cast<double>(result.requests) / result.seconds;
  const double p50 = PercentileMs(sorted, 0.50);
  const double p99 = PercentileMs(sorted, 0.99);
  const uint64_t hits = after.selection_cache.hits - before.selection_cache.hits;
  const uint64_t misses =
      after.selection_cache.misses - before.selection_cache.misses;
  const uint64_t coalesced = after.requests_coalesced - before.requests_coalesced;
  const double hit_rate = static_cast<double>(hits) /
                          static_cast<double>(std::max<uint64_t>(1, hits + misses));
  Measured(StrFormat("%-4s %2zu threads  %5zu req in %6.2fs  %8.1f req/s  "
                     "p50 %7.3fms  p99 %7.3fms  cache-hit %4.1f%%",
                     phase.c_str(), threads, result.requests, result.seconds,
                     rps, p50, p99, hit_rate * 100.0));
  JsonLine("serving_throughput")
      .Field("phase", phase)
      .Field("threads", static_cast<uint64_t>(threads))
      .Field("requests", static_cast<uint64_t>(result.requests))
      .Field("seconds", result.seconds)
      .Field("rps", rps)
      .Field("p50_ms", p50)
      .Field("p99_ms", p99)
      .Field("cache_hit_rate", hit_rate)
      .Field("coalesced", coalesced)
      .Emit();
}

void RunOne(size_t threads, const GeneratedDataset& data,
            const std::vector<SpQuery>& queries, const std::string& model_dir) {
  service::EngineOptions options;
  options.num_threads = threads;
  options.persist_dir = model_dir;  // Fit once, load on later thread counts.
  service::ServingEngine engine(options);
  SUBTAB_CHECK(engine.RegisterTable("cyber", data.table, DefaultConfig()).ok());

  // Cold: clients partition the distinct work.
  std::vector<std::vector<SpQuery>> shards(threads);
  for (size_t i = 0; i < queries.size(); ++i) {
    shards[i % threads].push_back(queries[i]);
  }
  service::EngineStats before = engine.Stats();
  PhaseResult cold = RunClients(engine, threads, shards);
  service::EngineStats after = engine.Stats();
  Report("cold", threads, cold, before, after);

  // Warm: every client replays everything; the cache absorbs the load.
  std::vector<std::vector<SpQuery>> full(threads, queries);
  before = after;
  PhaseResult warm = RunClients(engine, threads, full);
  after = engine.Stats();
  Report("warm", threads, warm, before, after);
  JsonLine("engine_stats")
      .Field("threads", static_cast<uint64_t>(threads))
      .RawField("stats", after.ToJson())
      .Emit();
}

}  // namespace
}  // namespace subtab::bench

int main(int argc, char** argv) {
  using namespace subtab::bench;
  using namespace subtab;
  const BenchArgs args = ParseBenchArgs(argc, argv);

  Header("Serving throughput: requests/sec and latency vs worker threads");
  PaperRef("(no paper figure; ROADMAP north-star metric. Paper reports 1-5s");
  PaperRef("per serial selection, Fig. 9 — the engine must beat that at p99");
  PaperRef("while scaling with threads and serving repeats from cache.)");

  GeneratedDataset data = LoadDataset("CY", Sized(args, 8000, 2000));
  SessionGeneratorOptions session_options;
  session_options.num_sessions = Sized(args, 40, 12);
  session_options.seed = 9;
  std::vector<Session> sessions = GenerateSessions(data, session_options);
  const std::vector<SpQuery> queries = StepQueries(sessions);
  std::printf("\n%zu sessions -> %zu step queries, %zu hardware threads\n\n",
              sessions.size(), queries.size(), HardwareThreads());

  const std::string model_dir =
      (std::filesystem::temp_directory_path() / "subtab_bench_models").string();
  std::filesystem::create_directories(model_dir);

  const std::vector<size_t> thread_counts =
      args.quick ? std::vector<size_t>{1, 4} : std::vector<size_t>{1, 4, 16};
  for (size_t threads : thread_counts) {
    RunOne(threads, data, queries, model_dir);
  }
  return 0;
}
