// Streaming ingestion bench — the workload ISSUE/ROADMAP call "incremental
// / streaming tables": an append-mostly table ingests batches while analyst
// selects keep flowing. The paper's architecture pays pre-processing once
// (Fig. 9); without the streaming subsystem every appended batch would
// re-pay it in full. This harness measures, per batch:
//
//   * which refresh the policy chose (fold-in / incremental / full refit)
//     and what it cost,
//   * select throughput against the freshly republished version,
//
// then compares the total refresh cost against the naive baseline (full
// refit per batch) and sanity-checks fold-in selection quality against a
// full refit of the final table (stated tolerance below). Two chunked-store
// acceptance checks ride along: resident-memory stats must show the model
// and the snapshot sharing one table (double residency gone), and the
// snapshot-cost series must show per-batch append cost flat (+-20%) as the
// base table grows 10x — O(batch), not O(rows).

#include <algorithm>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "subtab/eda/session_generator.h"
#include "subtab/metrics/combined.h"
#include "subtab/service/engine.h"
#include "subtab/stream/stream_session.h"
#include "subtab/util/stopwatch.h"
#include "subtab/util/string_util.h"

namespace subtab::bench {
namespace {

/// Fold-in quality must stay within this fraction of the full-refit
/// combined score (coverage + diversity, Eq. 3) on the final table.
constexpr double kFoldInQualityTolerance = 0.7;
/// Incremental maintenance must cost at most this fraction of refitting
/// after every batch.
constexpr double kRefreshCostTolerance = 0.5;

}  // namespace
}  // namespace subtab::bench

int main(int argc, char** argv) {
  using namespace subtab::bench;
  using namespace subtab;

  const BenchArgs args = ParseBenchArgs(argc, argv);
  BenchJsonFile file("streaming", args.quick);
  Header("Streaming ingestion: appends interleaved with selects (CY)");
  PaperRef("(no paper figure; the paper's one-off pre-processing, Fig. 9,");
  PaperRef("assumes frozen content. Target: selects stay interactive over");
  PaperRef(">= 10 append batches at a small fraction of full-refit cost.)");

  const size_t base_rows = ScaleFor(args.quick).Rows(6000);
  const size_t num_batches = 10;
  const size_t batch_rows = base_rows / 10;
  const size_t total_rows = base_rows + num_batches * batch_rows;

  GeneratedDataset full = MakeCyber(total_rows);
  const Table base = full.table.TakeRows(RowRange(0, base_rows));

  SessionGeneratorOptions session_options;
  session_options.num_sessions = 20;
  session_options.seed = 13;
  const std::vector<SpQuery> queries =
      StepQueries(GenerateSessions(full, session_options),
                  /*include_final_step=*/false);
  std::printf("\nbase %zu rows + %zu batches x %zu rows; %zu step queries "
              "between batches\n\n",
              base_rows, num_batches, batch_rows, queries.size());

  const SubTabConfig config = DefaultConfig();

  // ---- Streaming path: policy-driven refresh, selects between batches. ----
  stream::StreamSessionOptions stream_options;
  stream_options.config = config;
  Stopwatch open_watch;
  Result<std::shared_ptr<stream::StreamSession>> session =
      stream::StreamSession::Open(base, stream_options);
  SUBTAB_CHECK(session.ok());
  const double open_seconds = open_watch.ElapsedSeconds();

  service::EngineOptions engine_options;
  engine_options.num_threads = 4;
  service::ServingEngine engine(engine_options);
  SUBTAB_CHECK(engine.RegisterStream("cy", *session).ok());

  double stream_refresh_seconds = 0.0;
  std::printf("%-6s %-12s %10s %10s %9s %9s\n", "batch", "refresh", "cost(s)",
              "selects", "ok", "req/s");
  for (size_t b = 0; b < num_batches; ++b) {
    const size_t begin = base_rows + b * batch_rows;
    const Table batch = full.table.TakeRows(RowRange(begin, begin + batch_rows));
    Result<stream::RefreshEvent> event = engine.Append("cy", batch);
    SUBTAB_CHECK(event.ok());
    stream_refresh_seconds += event->seconds;

    size_t ok = 0;
    std::vector<double> latencies;
    latencies.reserve(queries.size());
    Stopwatch select_watch;
    for (const SpQuery& query : queries) {
      service::SelectRequest request;
      request.table_id = "cy";
      request.query = query;
      Stopwatch one;
      if (engine.Select(request).status.ok()) ++ok;
      latencies.push_back(one.ElapsedSeconds());
    }
    const double select_seconds = select_watch.ElapsedSeconds();
    const double rps = static_cast<double>(queries.size()) / select_seconds;
    std::sort(latencies.begin(), latencies.end());
    const double p50 = latencies[latencies.size() / 2] * 1e3;
    const double p95 = latencies[latencies.size() * 95 / 100] * 1e3;
    std::printf("%-6zu %-12s %10.3f %10zu %9zu %9.1f\n", b + 1,
                stream::RefreshActionName(event->action), event->seconds,
                queries.size(), ok, rps);
    JsonLine("streaming")
        .Field("batch", static_cast<uint64_t>(b + 1))
        .Field("version", static_cast<uint64_t>(event->version))
        .Field("action", stream::RefreshActionName(event->action))
        .Field("refresh_seconds", event->seconds)
        .Field("selects_ok", static_cast<uint64_t>(ok))
        .Field("select_rps", rps)
        .Field("select_p50_ms", p50)
        .Field("select_p95_ms", p95)
        .Emit(&file);
  }
  const service::EngineStats stats = engine.Stats();
  JsonLine("engine_stats").RawField("stats", stats.ToJson()).Emit(&file);
  SUBTAB_CHECK(stats.streaming.appends == num_batches);

  // ---- Resident memory: the zero-copy snapshot path must have removed the
  // ---- double residency (model copy + snapshot copy of the live version).
  SUBTAB_CHECK(stats.memory.tables == 1);  // Model and snapshot share one table.
  SUBTAB_CHECK(stats.memory.resident_bytes < stats.memory.logical_bytes);
  Measured(StrFormat("resident tables %zu, %.1f KiB resident vs %.1f KiB "
                     "logical (%.1f KiB shared away)",
                     stats.memory.tables,
                     stats.memory.resident_bytes / 1024.0,
                     stats.memory.logical_bytes / 1024.0,
                     stats.memory.shared_saved_bytes / 1024.0));

  // ---- Background refresh: the appender publishes a fold-in immediately
  // ---- and the worker upgrades the same version in the background. Every
  // ---- batch must be servable the moment Append returns, and selects
  // ---- issued while an upgrade trains must keep succeeding against the
  // ---- latest published version (never blocking on training).
  {
    stream::StreamSessionOptions bg_options = stream_options;
    bg_options.background_refresh = true;
    bg_options.policy.incremental_threshold = 0.0;  // Upgrade every batch...
    bg_options.policy.max_background_lag = 1e9;     // ...always deferred.
    Result<std::shared_ptr<stream::StreamSession>> bg_session =
        stream::StreamSession::Open(base, bg_options);
    SUBTAB_CHECK(bg_session.ok());
    service::ServingEngine bg_engine(engine_options);
    SUBTAB_CHECK(bg_engine.RegisterStream("cybg", *bg_session).ok());

    double publish_seconds_total = 0.0;
    double publish_seconds_max = 0.0;
    size_t bg_selects_ok = 0;
    size_t bg_selects = 0;
    for (size_t b = 0; b < num_batches; ++b) {
      const size_t begin = base_rows + b * batch_rows;
      const Table batch =
          full.table.TakeRows(RowRange(begin, begin + batch_rows));
      Result<stream::RefreshEvent> event = bg_engine.Append("cybg", batch);
      SUBTAB_CHECK(event.ok());
      // Publication is the cheap fold-in; the trained upgrade is deferred.
      SUBTAB_CHECK(event->action == stream::RefreshAction::kFoldIn);
      SUBTAB_CHECK(event->upgrade_deferred);
      publish_seconds_total += event->seconds;
      publish_seconds_max = std::max(publish_seconds_max, event->seconds);
      // The new version is servable the moment Append returned.
      SUBTAB_CHECK(bg_engine.GetModel("cybg")->table().num_rows() ==
                   base_rows + (b + 1) * batch_rows);
      // Selects race the in-flight upgrade; none may block or fail oddly.
      for (const SpQuery& query : queries) {
        service::SelectRequest request;
        request.table_id = "cybg";
        request.query = query;
        const Status status = bg_engine.Select(request).status;
        SUBTAB_CHECK(status.ok() ||
                     status.code() == StatusCode::kInvalidArgument);
        bg_selects_ok += status.ok() ? 1 : 0;
        ++bg_selects;
      }
    }
    (*bg_session)->WaitForUpgrades();
    const stream::StreamStats bg_stats = (*bg_session)->Stats();
    SUBTAB_CHECK(bg_stats.deferred_upgrades == num_batches);
    SUBTAB_CHECK(bg_stats.upgrades_completed + bg_stats.upgrades_discarded >= 1);
    const double inline_per_batch =
        stream_refresh_seconds / static_cast<double>(num_batches);
    Measured(StrFormat(
        "background refresh: publication %.1f ms/batch max %.1f ms (inline "
        "mode averaged %.1f ms/batch); %zu/%zu selects ok during in-flight "
        "upgrades; %llu upgrades completed, %llu discarded",
        1e3 * publish_seconds_total / num_batches, 1e3 * publish_seconds_max,
        1e3 * inline_per_batch, bg_selects_ok, bg_selects,
        (unsigned long long)bg_stats.upgrades_completed,
        (unsigned long long)bg_stats.upgrades_discarded));
    JsonLine("background_refresh")
        .Field("batches", static_cast<uint64_t>(num_batches))
        .Field("publish_seconds_total", publish_seconds_total)
        .Field("publish_seconds_max", publish_seconds_max)
        .Field("inline_refresh_seconds_per_batch", inline_per_batch)
        .Field("selects_ok", static_cast<uint64_t>(bg_selects_ok))
        .Field("selects_total", static_cast<uint64_t>(bg_selects))
        .Field("deferred_upgrades", bg_stats.deferred_upgrades)
        .Field("upgrades_completed", bg_stats.upgrades_completed)
        .Field("upgrades_discarded", bg_stats.upgrades_discarded)
        .Field("final_refresh_generation", bg_stats.refresh_generation)
        .Emit(&file);
  }

  // ---- Snapshot-cost series: per-batch append cost must be O(batch), i.e.
  // ---- flat as the base table grows 10x. Measures StreamingTable alone
  // ---- (the snapshot primitive), excluding model refresh and data
  // ---- generation. The two sizes are measured INTERLEAVED (one append to
  // ---- each per round) so allocator/frequency drift hits both equally, and
  // ---- the minimum over reps estimates the true cost of the (identical)
  // ---- per-append work with noise suppressed; a real O(rows) term would be
  // ---- paid by every rep and survive the min.
  const size_t series_base = ScaleFor(args.quick).Rows(6000, 3000);
  const size_t series_batch = ScaleFor(args.quick).Rows(3000, 2000);
  const size_t series_reps = 25;
  struct SnapshotSeries {
    std::unique_ptr<stream::StreamingTable> table;
    std::vector<Table> batches;
    double min_seconds = 1e30;
  };
  auto open_series = [&](size_t rows) {
    GeneratedDataset d = MakeCyber(rows + series_batch * series_reps);
    Result<std::unique_ptr<stream::StreamingTable>> st =
        stream::StreamingTable::Open(d.table.TakeRows(RowRange(0, rows)));
    SUBTAB_CHECK(st.ok());
    SnapshotSeries series;
    series.table = std::move(*st);
    for (size_t i = 0; i < series_reps; ++i) {
      const size_t begin = rows + i * series_batch;
      series.batches.push_back(
          d.table.TakeRows(RowRange(begin, begin + series_batch)));
    }
    return series;
  };
  SnapshotSeries small_series = open_series(series_base);
  SnapshotSeries large_series = open_series(series_base * 10);
  for (size_t rep = 0; rep < series_reps; ++rep) {
    for (SnapshotSeries* series : {&small_series, &large_series}) {
      Stopwatch w;
      SUBTAB_CHECK(series->table->Append(series->batches[rep]).ok());
      const double seconds = w.ElapsedSeconds();
      // Skip the first rounds: they warm the allocator and branch caches.
      if (rep >= 3 && seconds < series->min_seconds) {
        series->min_seconds = seconds;
      }
    }
  }
  const double small_seconds = small_series.min_seconds;
  const double large_seconds = large_series.min_seconds;
  const double flatness = large_seconds / small_seconds;
  std::printf("\nsnapshot cost, %zu-row batches: %.3f ms at %zu rows vs "
              "%.3f ms at %zu rows (ratio %.2f)\n",
              series_batch, small_seconds * 1e3, series_base,
              large_seconds * 1e3, series_base * 10, flatness);
  JsonLine("append_cost_series")
      .Field("batch_rows", static_cast<uint64_t>(series_batch))
      .Field("base_rows_small", static_cast<uint64_t>(series_base))
      .Field("base_rows_large", static_cast<uint64_t>(series_base * 10))
      .Field("append_seconds_small", small_seconds)
      .Field("append_seconds_large", large_seconds)
      .Field("flatness_ratio", flatness)
      .Emit(&file);
  Measured(StrFormat("per-batch snapshot cost flat across 10x rows: "
                     "ratio %.2f (tolerance 0.80..1.20)",
                     flatness));
  SUBTAB_CHECK(flatness > 0.8 && flatness < 1.2);

  // ---- Baseline: the pre-streaming architecture refits after every batch. --
  double refit_baseline_seconds = 0.0;
  double final_fit_seconds = 0.0;
  Result<SubTab> refit_model = Status::Internal("unset");
  for (size_t b = 0; b < num_batches; ++b) {
    const Table upto =
        full.table.TakeRows(RowRange(0, base_rows + (b + 1) * batch_rows));
    Stopwatch fit_watch;
    refit_model = SubTab::Fit(upto, config);
    SUBTAB_CHECK(refit_model.ok());
    final_fit_seconds = fit_watch.ElapsedSeconds();
    refit_baseline_seconds += final_fit_seconds;
  }

  // ---- Quality: pure fold-in (no refresh ever) vs full refit. --------------
  stream::StreamSessionOptions fold_in_only = stream_options;
  fold_in_only.policy.max_out_of_range_rate = 1.0;
  fold_in_only.policy.max_new_category_rate = 1.0;
  fold_in_only.policy.staleness_budget = 1e9;
  fold_in_only.policy.incremental_threshold = 1e9;
  Result<std::shared_ptr<stream::StreamSession>> fold_in =
      stream::StreamSession::Open(base, fold_in_only);
  SUBTAB_CHECK(fold_in.ok());
  for (size_t b = 0; b < num_batches; ++b) {
    const size_t begin = base_rows + b * batch_rows;
    SUBTAB_CHECK((*fold_in)
                     ->Append(full.table.TakeRows(
                         RowRange(begin, begin + batch_rows)))
                     .ok());
  }
  const BinnedTable& refit_binned = refit_model->preprocessed().binned();
  const RuleSet rules = MineRules(refit_binned, DefaultMining());
  const CoverageEvaluator evaluator(refit_binned, rules);
  const SubTabView fold_in_view = (*fold_in)->model()->Select();
  const SubTabView refit_view = refit_model->Select();
  const SubTableScore fold_in_score =
      ScoreSubTable(evaluator, fold_in_view.row_ids, fold_in_view.col_ids);
  const SubTableScore refit_score =
      ScoreSubTable(evaluator, refit_view.row_ids, refit_view.col_ids);
  const double quality_ratio =
      refit_score.combined > 0.0 ? fold_in_score.combined / refit_score.combined
                                 : 1.0;

  std::printf("\none-off fit of the base: %.2fs\n", open_seconds);
  Measured(StrFormat("stream refresh total %.2fs (%llu fold-in, %llu "
                     "incremental, %llu refit) vs refit-per-batch %.2fs "
                     "(%.1f%%)",
                     stream_refresh_seconds,
                     (unsigned long long)stats.streaming.fold_ins,
                     (unsigned long long)stats.streaming.incremental_refreshes,
                     (unsigned long long)stats.streaming.full_refits,
                     refit_baseline_seconds,
                     100.0 * stream_refresh_seconds / refit_baseline_seconds));
  Measured(StrFormat("fold-in combined %.3f vs full-refit %.3f (ratio %.2f, "
                     "tolerance %.2f)",
                     fold_in_score.combined, refit_score.combined,
                     quality_ratio, kFoldInQualityTolerance));
  JsonLine("streaming_summary")
      .Field("refresh_seconds", stream_refresh_seconds)
      .Field("refit_baseline_seconds", refit_baseline_seconds)
      .Field("final_fit_seconds", final_fit_seconds)
      .Field("fold_in_combined", fold_in_score.combined)
      .Field("refit_combined", refit_score.combined)
      .Field("quality_ratio", quality_ratio)
      .Emit(&file);

  file.Write();
  SUBTAB_CHECK(stream_refresh_seconds <
               kRefreshCostTolerance * refit_baseline_seconds);
  SUBTAB_CHECK(quality_ratio >= kFoldInQualityTolerance);
  std::printf("\nOK: %zu batches sustained, refresh cost %.1f%% of "
              "refit-per-batch, fold-in within tolerance\n",
              num_batches,
              100.0 * stream_refresh_seconds / refit_baseline_seconds);
  return 0;
}
