// Flights exploration with a target column and rule highlighting — the
// scenario of Example 1.1/1.2: an analyst predicting flight cancellations
// explores the table through sub-tables focused on CANCELLED, with the
// association rules each displayed row exemplifies highlighted in color
// (Fig. 1 / Fig. 2 style).

#include <cstdio>

#include "subtab/core/highlight.h"
#include "subtab/core/subtab.h"
#include "subtab/data/datasets.h"
#include "subtab/rules/miner.h"

using namespace subtab;

int main() {
  std::printf("Generating the flights dataset (Example 1.1)...\n");
  GeneratedDataset flights = MakeFlights(20000);

  // The analyst's task: predict cancellations => CANCELLED is the target
  // column and must appear in every display.
  SubTabConfig config;
  config.target_columns = {"CANCELLED"};
  config.embedding.num_threads = 0;
  Result<SubTab> subtab = SubTab::Fit(flights.table, config);
  SUBTAB_CHECK(subtab.ok());

  // Mine rules once for the highlighting UI; keep only rules that touch the
  // target (the R* filter of Sec. 3.2).
  RuleMiningOptions mining;
  mining.apriori.min_support = 0.08;
  mining.min_confidence = 0.6;
  mining.min_rule_size = 2;
  const BinnedTable& binned = subtab->preprocessed().binned();
  RuleSet rules = MineRules(binned, mining)
                      .FilterByTargets({static_cast<uint32_t>(
                          flights.ColumnIndex("CANCELLED"))});
  std::printf("mined %zu target-focused rules\n\n", rules.size());

  // ---- Display 1: the whole table. ----------------------------------------
  SubTabView view = subtab->Select();
  std::vector<RowHighlight> highlights = HighlightRules(binned, rules, view);
  std::printf("=== Informative view of the full table ===\n%s\n",
              RenderHighlighted(view, highlights).c_str());

  // ---- Display 2: drill into long flights (Example 1.2's first rule). -----
  SpQuery query;
  query.filters = {Predicate::Num("DISTANCE", CmpOp::kGe, 2000.0)};
  Result<SubTabView> drill = subtab->SelectForQuery(query);
  if (drill.ok()) {
    std::vector<RowHighlight> drill_highlights =
        HighlightRules(binned, rules, *drill);
    std::printf("=== %s ===\n%s\n", query.ToString().c_str(),
                RenderHighlighted(*drill, drill_highlights).c_str());
  }

  // ---- Display 3: the cancelled flights themselves. ------------------------
  SpQuery cancelled;
  cancelled.filters = {Predicate::Str("CANCELLED", CmpOp::kEq, "1")};
  Result<SubTabView> cview = subtab->SelectForQuery(cancelled);
  if (cview.ok()) {
    std::vector<RowHighlight> chl = HighlightRules(binned, rules, *cview);
    std::printf("=== %s ===\n%s\n", cancelled.ToString().c_str(),
                RenderHighlighted(*cview, chl).c_str());
  }

  std::printf("Note how cancelled rows carry NaN in the operational columns —\n"
              "the missingness pattern the sub-table surfaces (cf. Fig. 3).\n");
  return 0;
}
