// Quickstart: load a CSV, fit SubTab once, display an informative 10x10
// sub-table of the full table, then of a query result — the end-to-end flow
// of Fig. 1.
//
//   ./quickstart [path/to/table.csv]
//
// Without an argument, a synthetic flights table is generated and written to
// a temporary CSV first, so the example is fully self-contained.

#include <cstdio>
#include <string>

#include "subtab/core/subtab.h"
#include "subtab/data/datasets.h"
#include "subtab/table/csv.h"

using namespace subtab;

int main(int argc, char** argv) {
  // ---- 1. Obtain a table (CSV in, like a Pandas read_csv). -----------------
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = "/tmp/subtab_quickstart_flights.csv";
    std::printf("No CSV given; generating a synthetic flights table at %s\n",
                path.c_str());
    GeneratedDataset flights = MakeFlights(5000);
    Status st = WriteCsvFile(flights.table, path);
    SUBTAB_CHECK(st.ok());
  }

  Result<Table> table = ReadCsvFile(path);
  if (!table.ok()) {
    std::fprintf(stderr, "failed to read %s: %s\n", path.c_str(),
                 table.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu rows x %zu columns\n", table->num_rows(),
              table->num_columns());

  // ---- 2. Fit SubTab (one-off pre-processing: binning + embedding). --------
  SubTabConfig config;       // k = l = 10, alpha = 0.5 — the paper defaults.
  config.embedding.num_threads = 0;  // Use all cores.
  Result<SubTab> subtab = SubTab::Fit(std::move(*table), config);
  if (!subtab.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", subtab.status().ToString().c_str());
    return 1;
  }
  std::printf("pre-processing took %.2fs (binning %.2fs, training %.2fs)\n",
              subtab->preprocessed().timings().total_seconds,
              subtab->preprocessed().timings().binning_seconds,
              subtab->preprocessed().timings().training_seconds);

  // ---- 3. Display the informative sub-table instead of head(). ------------
  SubTabView view = subtab->Select();
  std::printf("\nInformative 10x10 sub-table (selection took %.2fs):\n\n%s\n",
              view.selection_seconds, view.table.ToString(10).c_str());

  // ---- 4. Query, then display the result as a sub-table too. --------------
  SpQuery query;
  query.filters = {Predicate::Str("CANCELLED", CmpOp::kEq, "1")};
  Result<SubTabView> qview = subtab->SelectForQuery(query);
  if (qview.ok()) {
    std::printf("Sub-table of \"%s\" (%.2fs — embedding reused):\n\n%s\n",
                query.ToString().c_str(), qview->selection_seconds,
                qview->table.ToString(10).c_str());
  }
  return 0;
}
