// Serving-engine demo — the multi-tenant counterpart of session_replay:
// register a table once, then replay synthetic analyst sessions through the
// concurrent ServingEngine (service/engine.h) with N worker threads. The
// demo verifies the production properties the engine promises:
//
//   1. every engine response is BIT-IDENTICAL to the serial
//      SubTab::SelectForQuery path (same model, same seed),
//   2. replaying the same sessions again is served from the selection
//      cache (hit counter > 0, selection work skipped),
//   3. a second session opening the same table shares the fitted model
//      (registry hit instead of a second pre-processing pass).
//
// With --admin_port=N it also boots the ops plane (ops/admin_server.h):
// /metrics, /statusz, /traces, /healthz, /readyz on that port (0 =
// ephemeral, printed at startup) while the demo runs, then keeps serving
// for --serve_seconds=S after the workload so a scraper (or `curl`) has
// something live to hit:
//
//   ./serving_demo --admin_port=8080 --serve_seconds=30 &
//   curl -s localhost:8080/metrics | head

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <thread>

#include "subtab/core/subtab.h"
#include "subtab/data/datasets.h"
#include "subtab/eda/engine_replay.h"
#include "subtab/eda/session_generator.h"
#include "subtab/ops/admin_server.h"
#include "subtab/ops/slo_monitor.h"
#include "subtab/service/engine.h"

using namespace subtab;

namespace {

// Collects every scoreable step query of the sessions (what the replay
// submits to the engine).
std::vector<SpQuery> StepQueries(const std::vector<Session>& sessions) {
  std::vector<SpQuery> queries;
  for (const Session& session : sessions) {
    for (size_t i = 0; i + 1 < session.steps.size(); ++i) {
      queries.push_back(session.steps[i].query);
    }
  }
  return queries;
}

// `--flag=N` integer arguments (no dependency-worthy flag parsing for a
// demo); anything unrecognized is a usage error.
struct DemoArgs {
  bool admin = false;
  long admin_port = 0;
  long serve_seconds = 0;
};

DemoArgs ParseDemoArgs(int argc, char** argv) {
  DemoArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--admin_port=", 13) == 0) {
      args.admin = true;
      args.admin_port = std::strtol(arg + 13, nullptr, 10);
    } else if (std::strncmp(arg, "--serve_seconds=", 16) == 0) {
      args.serve_seconds = std::strtol(arg + 16, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: serving_demo [--admin_port=N] [--serve_seconds=S]\n");
      std::exit(2);
    }
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr size_t kWorkers = 4;
  constexpr size_t kK = 10;
  constexpr size_t kL = 7;
  const DemoArgs args = ParseDemoArgs(argc, argv);

  std::printf("Generating the cyber-security dataset and analyst sessions...\n");
  GeneratedDataset cyber = MakeCyber(10000);

  SessionGeneratorOptions session_options;
  session_options.num_sessions = 40;
  session_options.seed = 4;
  std::vector<Session> sessions = GenerateSessions(cyber, session_options);
  const std::vector<SpQuery> queries = StepQueries(sessions);
  std::printf("%zu sessions -> %zu step queries\n", sessions.size(),
              queries.size());
  SUBTAB_CHECK(queries.size() >= 100);

  service::EngineOptions options;
  options.num_threads = kWorkers;
  // This demo's headline property is that the pipeline + caches return the
  // serial path's result bit-identically; sampled selection is a
  // deliberate, quality-gated approximation on large scopes, so pin it off
  // here (sampling_test and BENCH_serving's selection_sampling phase cover
  // that path).
  options.sampled_selection_min_rows = 0;
  service::ServingEngine engine(options);

  // Ops plane: started BEFORE the workload so /metrics and /healthz are
  // live for the whole run, not just the tail.
  std::unique_ptr<ops::SloMonitor> monitor;
  std::unique_ptr<ops::AdminServer> admin;
  if (args.admin) {
    monitor = std::make_unique<ops::SloMonitor>(&engine);
    monitor->Start();
    ops::AdminServerOptions admin_options;
    admin_options.port = static_cast<uint16_t>(args.admin_port);
    admin = std::make_unique<ops::AdminServer>(&engine, monitor.get(),
                                               admin_options);
    Status up = admin->Start();
    SUBTAB_CHECK(up.ok());
    std::printf("admin: ops plane on http://127.0.0.1:%u "
                "(/metrics /statusz /traces /healthz /readyz)\n",
                (unsigned)admin->port());
  }

  SubTabConfig config;
  config.embedding.num_threads = 0;
  std::printf("Registering table 'cyber' (one shared pre-processing pass)...\n");
  Status registered = engine.RegisterTable("cyber", cyber.table, config);
  SUBTAB_CHECK(registered.ok());

  // ---- Replay through the engine across kWorkers threads. ------------------
  std::printf("\nReplaying %zu queries through the engine (%zu workers)...\n",
              queries.size(), kWorkers);
  EngineReplayResult first =
      ReplayThroughEngine(engine, "cyber", sessions, kK, kL);
  std::printf("scored %zu steps, captured %zu fragments (%.1f%%), "
              "%zu empty-result queries skipped\n",
              first.stats.steps_scored, first.stats.fragments_captured,
              first.stats.capture_rate * 100.0, first.failures);

  // ---- 1. Bit-identical to the serial path. --------------------------------
  std::printf("\nVerifying engine responses against serial SelectForQuery...\n");
  std::shared_ptr<const SubTab> model = engine.GetModel("cyber");
  size_t verified = 0;
  for (const SpQuery& query : queries) {
    service::SelectRequest request;
    request.table_id = "cyber";
    request.query = query;
    request.k = kK;
    request.l = kL;
    service::SelectResponse response = engine.Select(request);
    Result<SubTabView> serial = model->SelectForQuery(query, kK, kL);
    SUBTAB_CHECK(response.status.ok() == serial.ok());
    if (!serial.ok()) continue;
    SUBTAB_CHECK(response.view->row_ids == serial->row_ids);
    SUBTAB_CHECK(response.view->col_ids == serial->col_ids);
    ++verified;
  }
  std::printf("%zu/%zu query displays bit-identical to the serial path\n",
              verified, queries.size());

  // ---- 2. Repeated replay is served from cache. ----------------------------
  EngineReplayResult second =
      ReplayThroughEngine(engine, "cyber", sessions, kK, kL);
  service::EngineStats stats = engine.Stats();
  std::printf("\nSecond replay: %zu/%zu responses straight from the selection "
              "cache\n", second.cache_hits, second.queries);
  SUBTAB_CHECK(stats.selection_cache.hits > 0);
  SUBTAB_CHECK(second.stats.fragments_captured == first.stats.fragments_captured);

  // ---- 3. A second session on the same table reuses the model. -------------
  Status again = engine.RegisterTable("cyber-analyst-2", cyber.table, config);
  SUBTAB_CHECK(again.ok());
  stats = engine.Stats();
  SUBTAB_CHECK(stats.registry.fits == 1);  // Still only one fit.

  // One machine-readable line with every counter (same "json |" convention
  // as the bench harnesses), replacing per-counter ad-hoc formatting.
  std::printf("\n=== engine stats ===\n");
  std::printf("json | %s\n", stats.ToJson().c_str());

  // ---- 4. Pipeline gauges: what an ops dashboard scrapes off ToJson. ------
  const service::PipelineStats& pipeline = stats.pipeline;
  std::printf("\npipeline: queue %zu, workers %zu/%zu (utilization %.0f%%), "
              "%llu sheds, scan %.2fs / select %.2fs, latency p50 %.2fms "
              "p95 %.2fms p99 %.2fms over %llu responses\n",
              stats.queue_depth, pipeline.workers_active, stats.num_threads,
              pipeline.worker_utilization * 100.0,
              (unsigned long long)pipeline.requests_shed,
              pipeline.scan_seconds, pipeline.select_seconds,
              pipeline.latency_p50_ms, pipeline.latency_p95_ms,
              pipeline.latency_p99_ms,
              (unsigned long long)pipeline.latency_count);
  SUBTAB_CHECK(stats.queue_depth == 0);  // Drained after the replays.
  SUBTAB_CHECK(pipeline.worker_utilization >= 0.0 &&
               pipeline.worker_utilization <= 1.0);
  SUBTAB_CHECK(pipeline.latency_count >= stats.requests_submitted -
                                             stats.requests_coalesced -
                                             stats.requests_failed);
  SUBTAB_CHECK(pipeline.latency_p99_ms >= pipeline.latency_p50_ms);
  SUBTAB_CHECK(stats.ToJson().find("\"worker_utilization\"") != std::string::npos);

  // Scan attribution: zone maps prune chunks a conjunct provably cannot
  // match, and dictionary-column conjuncts run over integer codes.
  const service::ScanAttributionStats& scan = stats.scan;
  const uint64_t scan_chunk_walk = scan.chunks_scanned + scan.chunks_pruned;
  std::printf("scan: %llu chunks walked, %llu pruned by zone maps (%.0f%%), "
              "%llu code-eval conjuncts, %llu rows visited\n",
              (unsigned long long)scan_chunk_walk,
              (unsigned long long)scan.chunks_pruned,
              scan_chunk_walk == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(scan.chunks_pruned) /
                        static_cast<double>(scan_chunk_walk),
              (unsigned long long)scan.code_eval_predicates,
              (unsigned long long)scan.rows_visited);
  SUBTAB_CHECK(stats.ToJson().find("\"chunks_pruned\"") != std::string::npos);

  // ---- 5. Request-scoped tracing: the per-request stage waterfall. ---------
  // A fresh seed forces a cache miss, so the request walks every stage:
  // queue.scan -> scan -> queue.select -> select under one root span.
  service::SelectRequest traced;
  traced.table_id = "cyber";
  traced.query = queries.front();
  traced.k = kK;
  traced.l = kL;
  traced.seed = 20230408;
  traced.trace_explain = true;
  service::SelectResponse traced_response = engine.Select(traced);
  SUBTAB_CHECK(traced_response.status.ok());
  SUBTAB_CHECK(traced_response.trace_id != 0);
  SUBTAB_CHECK(traced_response.trace != nullptr);
  const CompletedTrace& trace = *traced_response.trace;
  std::printf("\n=== request waterfall (trace %016llx) ===\n",
              (unsigned long long)trace.trace_id);
  const TraceSpan& root = trace.root();
  for (const TraceSpan& span : trace.spans) {
    const bool child = span.parent_id != 0;
    std::string attrs;
    for (const TraceAttr& attr : span.attrs) {
      attrs += "  " + attr.key + "=" + attr.value;
    }
    std::printf("  %s%-14s @%9.3fms  %9.3fms%s\n", child ? "  " : "",
                span.name.c_str(),
                static_cast<double>(span.start_ns - root.start_ns) * 1e-6,
                static_cast<double>(span.duration_ns) * 1e-6, attrs.c_str());
  }
  SUBTAB_CHECK(trace.spans.size() == 5);  // root + 4 stage spans
  // The scan span's waterfall line carries the zone-map attribution.
  bool scan_span_attributed = false;
  for (const TraceSpan& span : trace.spans) {
    if (span.name != "scan") continue;
    for (const TraceAttr& attr : span.attrs) {
      if (attr.key == "chunks_pruned") scan_span_attributed = true;
    }
  }
  SUBTAB_CHECK(scan_span_attributed);
  uint64_t staged_ns = 0;
  for (const TraceSpan& span : trace.spans) {
    if (span.parent_id != 0) {
      SUBTAB_CHECK(span.parent_id == root.span_id);
      staged_ns += span.duration_ns;
    }
  }
  std::printf("stage spans cover %.1f%% of the request's %.3fms wall time\n",
              100.0 * static_cast<double>(staged_ns) /
                  static_cast<double>(root.duration_ns),
              static_cast<double>(root.duration_ns) * 1e-6);

  const TraceSinkStats sink_stats = engine.trace_sink()->Stats();
  std::printf("trace sink: %llu committed, %llu ring-evicted, "
              "%llu slow exemplars pinned\n",
              (unsigned long long)sink_stats.committed,
              (unsigned long long)sink_stats.ring_evicted,
              (unsigned long long)sink_stats.exemplars_pinned);
  SUBTAB_CHECK(sink_stats.committed > 0);

  std::printf("\nOK: >=100 queries, %zu workers, bit-identical, cache hits > 0\n",
              kWorkers);

  if (admin != nullptr && args.serve_seconds > 0) {
    std::printf("admin: serving for %lds more on port %u (ctrl-c to stop)\n",
                args.serve_seconds, (unsigned)admin->port());
    std::this_thread::sleep_for(std::chrono::seconds(args.serve_seconds));
  }
  return 0;
}
