// EDA session replay — the simulation study of Sec. 6.2.2 in miniature:
// generate analyst sessions over the cyber-security dataset, display a
// SubTab after each step, and check whether the *next* step's query
// fragment (selection term / group-by attribute / sort column) was already
// visible — the paper's notion of a sub-table usefully suggesting the next
// exploration step.

#include <cstdio>

#include "subtab/core/subtab.h"
#include "subtab/data/datasets.h"
#include "subtab/eda/replay.h"
#include "subtab/eda/session_generator.h"

using namespace subtab;

int main() {
  std::printf("Generating the cyber-security dataset and 20 sessions...\n");
  GeneratedDataset cyber = MakeCyber(10000);

  SubTabConfig config;
  config.embedding.num_threads = 0;
  Result<SubTab> subtab = SubTab::Fit(cyber.table, config);
  SUBTAB_CHECK(subtab.ok());

  SessionGeneratorOptions session_options;
  session_options.num_sessions = 20;
  session_options.seed = 4;
  std::vector<Session> sessions = GenerateSessions(cyber, session_options);

  // ---- Walk one session verbosely. -----------------------------------------
  const Session& demo = sessions.front();
  std::printf("\n=== session 1 (%zu steps) ===\n", demo.steps.size());
  for (size_t i = 0; i < demo.steps.size(); ++i) {
    const SessionStep& step = demo.steps[i];
    std::printf("\nstep %zu [%s on %s]: %s\n", i + 1, OpKindName(step.kind),
                step.fragment.column.c_str(), step.query.ToString().c_str());
    Result<QueryResult> result = RunQuery(cyber.table, step.query);
    SUBTAB_CHECK(result.ok());
    SelectionScope scope;
    scope.rows = result->row_ids;
    scope.cols = result->col_ids;
    SubTabView view = subtab->SelectScoped(scope, 8, 6);
    std::printf("%s", view.table.ToString(8).c_str());
    if (i + 1 < demo.steps.size()) {
      const bool captured =
          FragmentCaptured(demo.steps[i + 1].fragment,
                           subtab->preprocessed().binned(), view.row_ids,
                           view.col_ids);
      std::printf("next step uses %s '%s' -> %s in this display\n",
                  OpKindName(demo.steps[i + 1].kind),
                  demo.steps[i + 1].fragment.column.c_str(),
                  captured ? "ALREADY VISIBLE" : "not visible");
    }
  }

  // ---- Aggregate capture rate across all sessions. --------------------------
  SelectorFn selector = [&subtab](const std::vector<size_t>& rows,
                                  const std::vector<size_t>& cols, size_t k,
                                  size_t l) {
    SelectionScope scope;
    scope.rows = rows;
    scope.cols = cols;
    SubTabView view = subtab->SelectScoped(scope, k, l);
    return std::make_pair(view.row_ids, view.col_ids);
  };
  ReplayStats stats = ReplaySessions(cyber.table, subtab->preprocessed().binned(),
                                     sessions, 10, 7, selector);
  std::printf("\n=== all sessions ===\n");
  std::printf("%zu scored steps, %zu fragments captured (%.1f%%), "
              "%.2fs total selection time\n",
              stats.steps_scored, stats.fragments_captured,
              stats.capture_rate * 100.0, stats.total_selection_seconds);
  return 0;
}
