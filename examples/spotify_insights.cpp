// Spotify popularity analysis — the user-study task of Sec. 6.2.1 ("what
// makes songs popular"): compare the insights an analyst can draw from an
// arbitrary display (the first k rows, like Pandas head()) against a SubTab
// display, using the simulated analyst with its full-table fact-check.

#include <cstdio>
#include <numeric>

#include "subtab/core/subtab.h"
#include "subtab/data/datasets.h"
#include "subtab/eda/analyst.h"

using namespace subtab;

namespace {

void ReportInsights(const char* label, const BinnedTable& binned,
                    const AnalystReport& report) {
  std::printf("--- %s: %zu insights, %zu statistically correct ---\n", label,
              report.num_total, report.num_correct);
  for (const Insight& insight : report.insights) {
    std::printf("  [%s] %s\n", insight.correct ? "CORRECT " : "SPURIOUS",
                insight.text.c_str());
  }
  (void)binned;
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Generating the Spotify dataset...\n");
  GeneratedDataset spotify = MakeSpotify(20000);

  SubTabConfig config;
  config.target_columns = {"popularity"};
  config.embedding.num_threads = 0;
  Result<SubTab> subtab = SubTab::Fit(spotify.table, config);
  SUBTAB_CHECK(subtab.ok());
  const BinnedTable& binned = subtab->preprocessed().binned();

  // The analyst only cares about task-relevant, non-trivial observations:
  // insights must touch the popularity target.
  AnalystOptions analyst;
  analyst.focus_column = static_cast<int>(spotify.ColumnIndex("popularity"));
  analyst.max_token_support = 0.8;

  // ---- Arbitrary display: first 10 rows, first 10 columns (head()). -------
  std::vector<size_t> head_rows(10);
  std::iota(head_rows.begin(), head_rows.end(), 0);
  std::vector<size_t> head_cols(10);
  std::iota(head_cols.begin(), head_cols.end(), 0);
  AnalystReport head_report =
      SimulateAnalyst(binned, head_rows, head_cols, analyst);
  ReportInsights("pandas-style head() display", binned, head_report);

  // ---- SubTab display. ------------------------------------------------------
  SubTabView view = subtab->Select();
  std::printf("SubTab 10x10 view:\n%s\n", view.table.ToString(10).c_str());
  AnalystReport subtab_report =
      SimulateAnalyst(binned, view.row_ids, view.col_ids, analyst);
  ReportInsights("SubTab display", binned, subtab_report);

  // ---- Ground truth for reference. -----------------------------------------
  std::printf("--- planted ground truth (what a perfect analyst could find) ---\n");
  for (const PlantedPattern& pattern : spotify.spec.patterns) {
    std::printf("  * %s (support %.2f, confidence %.2f)\n",
                pattern.description.c_str(), pattern.support, pattern.confidence);
  }
  return 0;
}
