// Streaming ingestion demo — the append-mostly counterpart of serving_demo:
// open a stream on the cyber-security dataset, ingest batches through the
// engine while displays keep being served, and watch the refresh policy
// escalate. The demo verifies the subsystem's core promises:
//
//   1. in-distribution batches are absorbed by fold-in / incremental
//      refresh — never a full refit — and selects stay served;
//   2. a drifted batch (out-of-range numerics, unseen categories) trips the
//      drift counters and forces a full refit, re-anchoring the bin spec;
//   3. version isolation: a model handle obtained before an append keeps
//      selecting over its own version's rows;
//   4. superseded versions' cached selections are invalidated, and
//      EngineStats reports the refresh activity (one "json |" line).

#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

#include "subtab/data/datasets.h"
#include "subtab/eda/session_generator.h"
#include "subtab/service/engine.h"
#include "subtab/stream/stream_session.h"

using namespace subtab;

namespace {

std::vector<size_t> RowRange(size_t begin, size_t end) {
  std::vector<size_t> rows(end - begin);
  std::iota(rows.begin(), rows.end(), begin);
  return rows;
}

// A batch the fit-time spec misrepresents: numerics pushed far outside the
// observed range, one categorical column full of unseen values.
Table DriftedBatch(const Table& batch) {
  std::vector<Column> columns;
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    const Column& col = batch.column(c);
    if (col.is_numeric()) {
      std::vector<double> values;
      for (size_t r = 0; r < col.size(); ++r) {
        values.push_back(col.is_null(r) ? std::nan("")
                                        : col.num_value(r) * 10.0 + 1e6);
      }
      columns.push_back(Column::Numeric(col.name(), values));
    } else {
      std::vector<std::string> values;
      for (size_t r = 0; r < col.size(); ++r) {
        values.push_back(col.is_null(r)
                             ? std::string()
                             : "novel_" + std::string(col.cat_value(r)));
      }
      columns.push_back(Column::Categorical(col.name(), values));
    }
  }
  Result<Table> table = Table::Make(std::move(columns));
  SUBTAB_CHECK(table.ok());
  return std::move(*table);
}

}  // namespace

int main() {
  constexpr size_t kBaseRows = 3000;
  constexpr size_t kBatchRows = 300;
  constexpr size_t kBatches = 4;

  std::printf("Generating the cyber-security dataset...\n");
  GeneratedDataset cyber = MakeCyber(kBaseRows + kBatches * kBatchRows);
  const Table base = cyber.table.TakeRows(RowRange(0, kBaseRows));

  stream::StreamSessionOptions options;
  options.config.embedding.dim = 32;
  options.config.embedding.epochs = 3;
  std::printf("Fitting the base (%zu rows) and opening the stream...\n",
              kBaseRows);
  Result<std::shared_ptr<stream::StreamSession>> session =
      stream::StreamSession::Open(base, options);
  SUBTAB_CHECK(session.ok());

  service::ServingEngine engine;
  SUBTAB_CHECK(engine.RegisterStream("cyber", *session).ok());

  // Hold version 0's model: later appends must not affect it.
  std::shared_ptr<const SubTab> v0_model = engine.GetModel("cyber");
  SUBTAB_CHECK(v0_model->table().num_rows() == kBaseRows);

  // ---- 1. In-distribution batches: no full refit. --------------------------
  std::printf("\nAppending %zu in-distribution batches of %zu rows...\n",
              kBatches, kBatchRows);
  for (size_t b = 0; b < kBatches; ++b) {
    const size_t begin = kBaseRows + b * kBatchRows;
    const Table batch =
        cyber.table.TakeRows(RowRange(begin, begin + kBatchRows));
    Result<stream::RefreshEvent> event = engine.Append("cyber", batch);
    SUBTAB_CHECK(event.ok());
    SUBTAB_CHECK(event->action != stream::RefreshAction::kFullRefit);

    service::SelectRequest request;
    request.table_id = "cyber";
    service::SelectResponse response = engine.Select(request);
    SUBTAB_CHECK(response.status.ok());
    std::printf("  v%llu: %-11s %6.3fs  oor %.3f  newcat %.3f  "
                "(select over %zu rows ok)\n",
                (unsigned long long)event->version,
                stream::RefreshActionName(event->action), event->seconds,
                event->drift.out_of_range_rate,
                event->drift.new_category_rate,
                engine.GetModel("cyber")->table().num_rows());
  }
  const auto after_inline = engine.Stats();
  SUBTAB_CHECK(after_inline.streaming.full_refits == 0);
  SUBTAB_CHECK(after_inline.streaming.fold_ins +
                   after_inline.streaming.incremental_refreshes ==
               kBatches);

  // ---- 2. A drifted batch forces a full refit. -----------------------------
  std::printf("\nAppending a drifted batch (values x10 + 1e6, novel "
              "categories)...\n");
  const Table drifted = DriftedBatch(
      cyber.table.TakeRows(RowRange(kBaseRows, kBaseRows + kBatchRows)));
  Result<stream::RefreshEvent> refit = engine.Append("cyber", drifted);
  SUBTAB_CHECK(refit.ok());
  std::printf("  v%llu: %-11s %6.3fs  oor %.3f  newcat %.3f\n",
              (unsigned long long)refit->version,
              stream::RefreshActionName(refit->action), refit->seconds,
              refit->drift.out_of_range_rate, refit->drift.new_category_rate);
  SUBTAB_CHECK(refit->action == stream::RefreshAction::kFullRefit);

  // ---- 3. Version isolation + zero-copy residency. -------------------------
  SUBTAB_CHECK(v0_model->table().num_rows() == kBaseRows);
  SUBTAB_CHECK(engine.GetModel("cyber")->table().num_rows() ==
               kBaseRows + (kBatches + 1) * kBatchRows);
  std::printf("\nVersion isolation: v0 handle still selects over %zu rows, "
              "latest over %zu\n",
              v0_model->table().num_rows(),
              engine.GetModel("cyber")->table().num_rows());
  SubTabView old_view = v0_model->Select();
  SUBTAB_CHECK(!old_view.row_ids.empty());
  // The served model and the stream's snapshot are the SAME table object —
  // the live version's rows are resident once, not once per holder (use
  // shared_table(), never a by-value copy of table(), to keep it that way).
  SUBTAB_CHECK(engine.GetModel("cyber")->shared_table().get() ==
               (*session)->current_version().table.get());
  const service::MemoryStats memory = engine.Stats().memory;
  SUBTAB_CHECK(memory.resident_bytes < memory.logical_bytes);
  std::printf("Zero-copy snapshots: %.1f KiB resident vs %.1f KiB logical "
              "across bindings (%zu chunks shared)\n",
              memory.resident_bytes / 1024.0, memory.logical_bytes / 1024.0,
              memory.chunks);

  // ---- 4. Stats: refresh activity + invalidations, machine-readable. -------
  const auto stats = engine.Stats();
  SUBTAB_CHECK(stats.streaming.full_refits == 1);
  SUBTAB_CHECK(stats.streaming.appends == kBatches + 1);
  std::printf("\n=== engine stats ===\n");
  std::printf("json | %s\n", stats.ToJson().c_str());

  std::printf("\nOK: %llu appends (%llu fold-in, %llu incremental, %llu "
              "refit), drift detected, versions isolated\n",
              (unsigned long long)stats.streaming.appends,
              (unsigned long long)stats.streaming.fold_ins,
              (unsigned long long)stats.streaming.incremental_refreshes,
              (unsigned long long)stats.streaming.full_refits);
  return 0;
}
