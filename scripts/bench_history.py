#!/usr/bin/env python3
"""Append one trajectory record per bench run to BENCH_trajectory.jsonl.

The serving bench (bench/bench_serving_throughput.cc) emits a point-in-time
artifact (BENCH_serving.json + METRICS_serving.json); this script folds the
run's headline numbers into an append-only history file so perf moves
ACROSS commits, not just within one run, are visible and checkable
(scripts/check_bench_regression.py compares the newest record against the
rolling median of its predecessors).

One JSONL record per run, keyed by git SHA + UTC timestamp:

  sha, timestamp, quick          — provenance
  rps                            — best serving_throughput phase (req/s)
  scan_p50_ms .. select_p95_ms   — per-stage latency from trace_summary
  shed_rate                      — overload phase shed fraction
  containment_hit_rate           — drill-down phase with reuse ON
  tracing_overhead               — traced vs untraced throughput delta
  sampled_select_p95_ms          — sampled select-stage p95 (>= 10k scope)
  sample_quality_ratio           — mean sampled/exact combined-score ratio
  pruned_chunk_fraction          — mean zone-map pruned fraction (scan bench)
  pruned_scan_p95_ms             — pruned-scan p95 over the drill-down chains
  engine_requests_submitted      — scale witness from METRICS_serving.json

With --scale BENCH_scale.json (the workload-forge sweep, bench/bench_scale.cc;
typically written to its own history file via --out), the record instead
folds the scaling-curve headliners:

  scale_rps                      — best served throughput across sweep points
  scale_p95_ms                   — admitted p95 at the top (past-saturation)
    offered rate — bounded-queue health, not raw speed
  scale_shed_fraction            — shed rate at that top rate (the knee)
  generator_ns_per_row           — large-table generation cost (O(rows) gate)

Usage:
  scripts/bench_history.py [--bench BENCH_serving.json]
                           [--metrics METRICS_serving.json]
                           [--scale BENCH_scale.json]
                           [--out bench/history/BENCH_trajectory.jsonl]
                           [--sha SHA]

Standard library only. Exit 0 on append, 1 when the bench artifact is
missing or carries none of the expected records.
"""

import argparse
import datetime
import json
import os
import subprocess
import sys

# Stage latencies tracked across runs (all emitted by the trace_summary
# record; check_bench_schema.py guarantees they exist).
STAGE_KEYS = [
    "queue_scan_p50_ms",
    "queue_scan_p95_ms",
    "scan_p50_ms",
    "scan_p95_ms",
    "queue_select_p50_ms",
    "queue_select_p95_ms",
    "select_p50_ms",
    "select_p95_ms",
]


def git_sha(explicit: str | None) -> str:
    if explicit:
        return explicit
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def records_by_bench(path: str) -> tuple[dict, bool]:
    """Returns ({bench_name: [records...]}, quick_flag)."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    grouped: dict = {}
    for record in data.get("records", []):
        if isinstance(record, dict) and "bench" in record:
            grouped.setdefault(record["bench"], []).append(record)
    return grouped, bool(data.get("quick", False))


def build_record(bench_path: str, metrics_path: str, sha: str) -> dict | None:
    grouped, quick = records_by_bench(bench_path)
    record: dict = {
        "sha": sha,
        "timestamp": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "quick": quick,
    }
    found = 0

    throughput = grouped.get("serving_throughput", [])
    rps = [r.get("rps") for r in throughput
           if isinstance(r.get("rps"), (int, float))]
    if rps:
        record["rps"] = max(rps)
        found += 1

    summary = grouped.get("trace_summary", [])
    if summary:
        for key in STAGE_KEYS:
            value = summary[0].get(key)
            if isinstance(value, (int, float)):
                record[key] = value
        found += 1

    overload = grouped.get("serving_overload", [])
    if overload and isinstance(overload[0].get("shed_rate"), (int, float)):
        record["shed_rate"] = overload[0]["shed_rate"]
        found += 1

    # Two drill-down records (reuse off / on); the trajectory tracks reuse ON.
    for drill in grouped.get("serving_drilldown", []):
        if drill.get("containment") == 1 and \
                isinstance(drill.get("containment_hit_rate"), (int, float)):
            record["containment_hit_rate"] = drill["containment_hit_rate"]
            found += 1
            break

    overhead = grouped.get("tracing_overhead", [])
    if overhead and isinstance(overhead[0].get("overhead"), (int, float)):
        record["tracing_overhead"] = overhead[0]["overhead"]
        found += 1

    sampling = grouped.get("selection_sampling", [])
    if sampling:
        for src, dst in (("sampled_select_p95_ms", "sampled_select_p95_ms"),
                         ("quality_ratio", "sample_quality_ratio")):
            value = sampling[0].get(src)
            if isinstance(value, (int, float)):
                record[dst] = value
        if "sampled_select_p95_ms" in record or \
                "sample_quality_ratio" in record:
            found += 1

    pruning = grouped.get("scan_pruning", [])
    if pruning:
        for src, dst in (("pruned_chunk_fraction", "pruned_chunk_fraction"),
                         ("scan_p95_pruned_ms", "pruned_scan_p95_ms")):
            value = pruning[0].get(src)
            if isinstance(value, (int, float)):
                record[dst] = value
        if "pruned_chunk_fraction" in record or \
                "pruned_scan_p95_ms" in record:
            found += 1

    if os.path.exists(metrics_path):
        with open(metrics_path, encoding="utf-8") as handle:
            metrics = json.load(handle)
        submitted = metrics.get("counters", {}).get(
            "engine.requests.submitted")
        if isinstance(submitted, int):
            record["engine_requests_submitted"] = submitted

    return record if found > 0 else None


def build_scale_record(scale_path: str, sha: str) -> dict | None:
    """Folds a BENCH_scale.json sweep into one trajectory record."""
    grouped, quick = records_by_bench(scale_path)
    record: dict = {
        "sha": sha,
        "timestamp": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "quick": quick,
    }
    found = 0

    sweeps = [r for r in grouped.get("scale_sweep", [])
              if isinstance(r.get("rps"), (int, float))]
    if sweeps:
        record["scale_rps"] = max(r["rps"] for r in sweeps)
        # The top offered rate is where bounded-queue behavior shows: track
        # the admitted p95 and shed fraction at that point.
        top = max(sweeps, key=lambda r: r.get("rate_rps", 0.0))
        if isinstance(top.get("p95_ms"), (int, float)):
            record["scale_p95_ms"] = top["p95_ms"]
        if isinstance(top.get("shed_fraction"), (int, float)):
            record["scale_shed_fraction"] = top["shed_fraction"]
        found += 1

    generators = grouped.get("generator_scaling", [])
    if generators and isinstance(generators[0].get("ns_per_row_large"),
                                 (int, float)):
        record["generator_ns_per_row"] = generators[0]["ns_per_row_large"]
        found += 1

    return record if found > 0 else None


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", default="BENCH_serving.json")
    parser.add_argument("--metrics", default="METRICS_serving.json")
    parser.add_argument("--scale", default=None,
                        help="fold a BENCH_scale.json sweep instead of the "
                             "serving artifacts")
    parser.add_argument("--out",
                        default="bench/history/BENCH_trajectory.jsonl")
    parser.add_argument("--sha", default=None,
                        help="override `git rev-parse` (e.g. in CI)")
    args = parser.parse_args(argv[1:])

    if args.scale is not None:
        if not os.path.exists(args.scale):
            print(f"bench_history: {args.scale} not found — run bench_scale "
                  "first", file=sys.stderr)
            return 1
        record = build_scale_record(args.scale, git_sha(args.sha))
        if record is None:
            print(f"bench_history: {args.scale} carried no scale_sweep / "
                  "generator_scaling records", file=sys.stderr)
            return 1
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        metric_count = len([k for k in record
                            if k not in ("sha", "timestamp", "quick")])
        print(f"bench_history: appended {record['sha']} @ "
              f"{record['timestamp']} ({metric_count} scale metrics) -> "
              f"{args.out}")
        return 0

    if not os.path.exists(args.bench):
        print(f"bench_history: {args.bench} not found — run the serving "
              "bench first", file=sys.stderr)
        return 1
    record = build_record(args.bench, args.metrics, git_sha(args.sha))
    if record is None:
        print(f"bench_history: {args.bench} carried none of the expected "
              "records (serving_throughput / trace_summary / ...)",
              file=sys.stderr)
        return 1

    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    metric_count = len([k for k in record
                        if k not in ("sha", "timestamp", "quick")])
    print(f"bench_history: appended {record['sha']} @ {record['timestamp']} "
          f"({metric_count} metrics) -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
