#!/usr/bin/env python3
"""Fail CI when the newest trajectory record regresses vs its history.

Reads bench/history/BENCH_trajectory.jsonl (written per run by
scripts/bench_history.py), takes the NEWEST record, and compares each
tracked metric against the rolling median of up to --window prior records.
The median — not the immediately preceding run — is the baseline, so one
noisy run can neither mask a real regression nor manufacture a fake one.

A metric regresses when it moves beyond --tolerance in its bad direction:

  higher-is-better  (rps, containment_hit_rate, sample_quality_ratio,
                     pruned_chunk_fraction):
      value < median * (1 - tolerance)
  lower-is-better   (stage latencies incl. sampled_select_p95_ms and
                     pruned_scan_p95_ms, shed_rate, tracing_overhead):
      value > median * (1 + tolerance) + slack
      (slack absorbs ~0 baselines where any jitter is an infinite ratio)

Exit 1 on any regression, 0 otherwise. With --quick (the CI quick-bench
path, where absolute numbers are noisy) regressions only WARN. Fewer than
2 records is a pass — there is no history to regress against yet.

Usage:
  scripts/check_bench_regression.py [--history PATH] [--window N]
                                    [--tolerance F] [--quick]

Standard library only.
"""

import argparse
import json
import statistics
import sys

HIGHER_IS_BETTER = ["rps", "containment_hit_rate", "sample_quality_ratio",
                    "pruned_chunk_fraction",
                    # Workload-forge sweep (bench_scale, its own history
                    # file): best served throughput across the rate points.
                    "scale_rps"]
LOWER_IS_BETTER = [
    "queue_scan_p95_ms",
    "scan_p50_ms",
    "scan_p95_ms",
    "queue_select_p95_ms",
    "select_p50_ms",
    "select_p95_ms",
    "shed_rate",
    "tracing_overhead",
    "sampled_select_p95_ms",
    "pruned_scan_p95_ms",
    # Workload-forge sweep: admitted p95 at the past-saturation rate
    # (bounded-queue health) and per-row generation cost (O(rows) drift).
    "scale_p95_ms",
    "generator_ns_per_row",
]
# Below this absolute baseline a lower-is-better ratio is meaningless
# (e.g. a 0.02ms queue p95 doubling to 0.04ms); the slack is added to the
# allowed ceiling instead of failing on noise.
ABSOLUTE_SLACK = {
    "shed_rate": 0.05,
    "tracing_overhead": 0.02,
    # Bucketed percentiles at the knee move in ~2x histogram steps; absorb
    # one bucket of jitter.
    "scale_p95_ms": 100.0,
    # ns/row on shared runners jitters with memory bandwidth.
    "generator_ns_per_row": 100.0,
}
DEFAULT_SLACK_MS = 0.05


def load_history(path: str) -> list[dict]:
    records = []
    try:
        with open(path, encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as err:
                    print(f"check_bench_regression: {path}:{line_no}: "
                          f"bad JSON ({err})", file=sys.stderr)
    except FileNotFoundError:
        pass
    return records


def check(records: list[dict], window: int, tolerance: float) -> list[str]:
    current = records[-1]
    prior = records[:-1][-window:]
    failures = []
    for metric in HIGHER_IS_BETTER + LOWER_IS_BETTER:
        value = current.get(metric)
        baseline = [r[metric] for r in prior
                    if isinstance(r.get(metric), (int, float))]
        if not isinstance(value, (int, float)) or not baseline:
            continue
        median = statistics.median(baseline)
        if metric in HIGHER_IS_BETTER:
            floor = median * (1.0 - tolerance)
            if value < floor:
                failures.append(
                    f"{metric}: {value:.6g} fell below {floor:.6g} "
                    f"(median of {len(baseline)} runs: {median:.6g}, "
                    f"tolerance {tolerance:.0%})")
        else:
            slack = ABSOLUTE_SLACK.get(metric, DEFAULT_SLACK_MS)
            ceiling = median * (1.0 + tolerance) + slack
            if value > ceiling:
                failures.append(
                    f"{metric}: {value:.6g} rose above {ceiling:.6g} "
                    f"(median of {len(baseline)} runs: {median:.6g}, "
                    f"tolerance {tolerance:.0%} + slack {slack:g})")
    return failures


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--history",
                        default="bench/history/BENCH_trajectory.jsonl")
    parser.add_argument("--window", type=int, default=5,
                        help="prior records in the rolling median")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative move in the bad direction")
    parser.add_argument("--quick", action="store_true",
                        help="warn instead of failing (noisy quick benches)")
    args = parser.parse_args(argv[1:])

    records = load_history(args.history)
    if len(records) < 2:
        print(f"check_bench_regression: OK — {len(records)} record(s) in "
              f"{args.history}, nothing to compare yet")
        return 0

    failures = check(records, args.window, args.tolerance)
    tail = records[-1]
    label = f"{tail.get('sha', '?')} @ {tail.get('timestamp', '?')}"
    if not failures:
        print(f"check_bench_regression: OK — {label} within tolerance of "
              f"the prior {min(len(records) - 1, args.window)}-run median")
        return 0
    for failure in failures:
        print(f"check_bench_regression: {label}: {failure}", file=sys.stderr)
    if args.quick:
        print("check_bench_regression: WARN only (--quick): quick-bench "
              "numbers are noisy, not failing the job", file=sys.stderr)
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
