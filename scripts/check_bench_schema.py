#!/usr/bin/env python3
"""Schema check for the serving bench's JSON output (CI `stress` job).

The serving bench (bench/bench_serving_throughput.cc) writes
BENCH_serving.json with a `records` list; downstream consumers (the perf
trajectory charts and the observability artifacts) depend on two records
existing with stable keys:

  * `trace_summary`  — per-stage p50/p95 from the request traces plus the
    sink's retention counters (span coverage, containment-hit traces,
    pinned exemplars),
  * `tracing_overhead` — traced vs untraced throughput on the cold staged
    path,
  * `selection_sampling` — sampled vs exact select-stage p95 on a >= 10k
    row scope, the measured speedup, and the combined coverage+diversity
    quality ratio with its check/fallback counts,
  * `scan_pruning` — zone-map pruned vs full scan p95 under narrowing
    drill-down chains, the mean pruned-chunk fraction, and the
    dictionary-code conjunct count (bit_identical pins the equivalence
    assertion the bench ran).

This script fails CI when any record is missing or dropped a key, so a
refactor of the bench cannot silently stop exporting the trace summary
(docs/OBSERVABILITY.md documents the schema).

It also validates the sibling artifacts when asked:

  * --metrics METRICS_serving.json — the registry dump must carry the
    counters/gauges/histograms sections with the core pipeline instruments
    (the same names /metrics exposes in Prometheus form),
  * --trajectory bench/history/BENCH_trajectory.jsonl — every line is a
    JSON object with sha/timestamp, and timestamps are monotonically
    non-decreasing (an out-of-order append corrupts the regression
    baseline of scripts/check_bench_regression.py),
  * --scale BENCH_scale.json — the workload-forge scaling curves
    (bench/bench_scale.cc): a `generator_scaling` record proving O(rows)
    generation, at least three `scale_sweep` points per curve (rps,
    latency percentiles, shed fraction, per-stage attribution), and a
    `scale_knee` record per (rows, threads) group with the open-loop knee
    demonstrated. When --scale is given without an explicit serving-bench
    positional, only the scale file (plus any other requested artifacts)
    is checked — the scale-smoke CI job runs bench_scale alone.

Usage: scripts/check_bench_schema.py [BENCH_serving.json]
                                     [--metrics PATH] [--trajectory PATH]
                                     [--scale PATH]
Exit code 0 = schema intact, 1 = a record or key is missing.
Standard library only.
"""

import argparse
import json
import os
import sys

REQUIRED_KEYS = {
    "trace_summary": [
        "staged_traces",
        "containment_hit_traces",
        "span_coverage",
        "queue_scan_p50_ms",
        "queue_scan_p95_ms",
        "scan_p50_ms",
        "scan_p95_ms",
        "queue_select_p50_ms",
        "queue_select_p95_ms",
        "select_p50_ms",
        "select_p95_ms",
        "traces_committed",
        "exemplars_pinned",
        "exemplar_threshold_ms",
    ],
    "tracing_overhead": [
        "rps_traced",
        "rps_untraced",
        "overhead",
    ],
    "selection_sampling": [
        "scope_rows",
        "sample_rows",
        "sampled_select_p95_ms",
        "exact_select_p95_ms",
        "speedup",
        "quality_ratio",
        "worst_quality_ratio",
        "quality_checks",
        "quality_fallbacks",
    ],
    "scan_pruning": [
        "table_rows",
        "chunks",
        "queries",
        "pruned_chunk_fraction",
        "scan_p95_pruned_ms",
        "scan_p95_full_ms",
        "speedup",
        "code_eval_predicates",
        "bit_identical",
    ],
}


# The registry instruments the serving engine registers at construction;
# METRICS_serving.json (and the Prometheus /metrics endpoint rendering the
# same registry) must never silently lose them.
REQUIRED_METRICS = {
    "counters": [
        "engine.requests.submitted",
        "engine.requests.completed",
        "pipeline.shed.global_queue",
        "pipeline.shed.tenant",
        "scan.chunks_pruned",
        "scan.code_eval_predicates",
    ],
    "gauges": [
        "engine.queue_depth",
        "pipeline.worker_utilization",
        "pipeline.effective_max_queue_depth",
    ],
    "histograms": [
        "pipeline.latency",
    ],
}


# BENCH_scale.json record schemas (bench/bench_scale.cc).
SCALE_SWEEP_KEYS = [
    "rows",
    "threads",
    "tenants",
    "arrival",
    "rate_rps",
    "fired",
    "duration_s",
    "rps",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "shed_fraction",
    "queue_scan_p95_ms",
    "scan_p95_ms",
    "queue_select_p95_ms",
    "select_p95_ms",
    "max_lag_ms",
]

SCALE_GENERATOR_KEYS = [
    "rows_small",
    "rows_large",
    "ns_per_row_small",
    "ns_per_row_large",
    "per_row_ratio",
    "flat",
]

SCALE_KNEE_KEYS = [
    "rows",
    "threads",
    "low_rate_rps",
    "top_rate_rps",
    "low_shed_fraction",
    "top_shed_fraction",
    "admitted_p95_ms",
    "p95_bound_ms",
    "knee_demonstrated",
]


def check_scale(path: str) -> int:
    """Validates the BENCH_scale.json scaling curves. Returns #failures."""
    if not os.path.exists(path):
        print(f"check_bench_schema: {path} not found", file=sys.stderr)
        return 1
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    records = data.get("records")
    if not isinstance(records, list):
        print(f"check_bench_schema: {path} has no `records` list",
              file=sys.stderr)
        return 1

    failures = 0
    sweeps = [r for r in records if r.get("bench") == "scale_sweep"]
    generators = [r for r in records if r.get("bench") == "generator_scaling"]
    knees = [r for r in records if r.get("bench") == "scale_knee"]

    if len(sweeps) < 3:
        print(f"check_bench_schema: {path} has {len(sweeps)} scale_sweep "
              "record(s); the sweep must cover >= 3 rate points",
              file=sys.stderr)
        failures += 1
    if not generators:
        print(f"check_bench_schema: {path} lost the generator_scaling record",
              file=sys.stderr)
        failures += 1
    if not knees:
        print(f"check_bench_schema: {path} lost the scale_knee record(s)",
              file=sys.stderr)
        failures += 1

    for name, keys, group in (("scale_sweep", SCALE_SWEEP_KEYS, sweeps),
                              ("generator_scaling", SCALE_GENERATOR_KEYS,
                               generators),
                              ("scale_knee", SCALE_KNEE_KEYS, knees)):
        for record in group:
            missing = [key for key in keys if key not in record]
            if missing:
                print(f"check_bench_schema: a `{name}` record lost keys: "
                      f"{', '.join(missing)}", file=sys.stderr)
                failures += 1
                break

    for record in sweeps:
        shed = record.get("shed_fraction")
        if not (isinstance(shed, (int, float)) and 0.0 <= shed <= 1.0):
            print(f"check_bench_schema: shed_fraction {shed!r} is not a "
                  "ratio in [0, 1]", file=sys.stderr)
            failures += 1
    for record in knees:
        if not record.get("knee_demonstrated"):
            print("check_bench_schema: a scale_knee record reports the knee "
                  "NOT demonstrated — shed did not rise past saturation or "
                  "admitted p95 broke its queue bound", file=sys.stderr)
            failures += 1

    if failures == 0:
        print(f"check_bench_schema: OK — {path} carries "
              f"{len(sweeps)} sweep point(s), generator scaling, and "
              f"{len(knees)} demonstrated knee(s)")
    return failures


def check_metrics(path: str) -> int:
    """Validates the METRICS_serving.json registry dump. Returns #failures."""
    if not os.path.exists(path):
        print(f"check_bench_schema: {path} not found", file=sys.stderr)
        return 1
    with open(path, encoding="utf-8") as handle:
        metrics = json.load(handle)
    failures = 0
    for section, names in REQUIRED_METRICS.items():
        table = metrics.get(section)
        if not isinstance(table, dict):
            print(f"check_bench_schema: {path} has no `{section}` section",
                  file=sys.stderr)
            failures += 1
            continue
        missing = [name for name in names if name not in table]
        if missing:
            print(f"check_bench_schema: {path} {section} lost: "
                  f"{', '.join(missing)}", file=sys.stderr)
            failures += 1
    histograms = metrics.get("histograms", {})
    latency = histograms.get("pipeline.latency")
    if isinstance(latency, dict) and latency.get("count", 0) <= 0:
        print("check_bench_schema: pipeline.latency recorded no samples — "
              "the bench served nothing", file=sys.stderr)
        failures += 1
    if failures == 0:
        print(f"check_bench_schema: OK — {path} carries the pipeline "
              "instrument catalog")
    return failures


def check_trajectory(path: str) -> int:
    """Validates the bench-history JSONL. Returns #failures."""
    if not os.path.exists(path):
        print(f"check_bench_schema: {path} not found", file=sys.stderr)
        return 1
    failures = 0
    previous_ts = ""
    rows = 0
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            rows += 1
            try:
                record = json.loads(line)
            except json.JSONDecodeError as err:
                print(f"check_bench_schema: {path}:{line_no}: bad JSON "
                      f"({err})", file=sys.stderr)
                failures += 1
                continue
            missing = [key for key in ("sha", "timestamp")
                       if key not in record]
            if missing:
                print(f"check_bench_schema: {path}:{line_no}: missing "
                      f"{', '.join(missing)}", file=sys.stderr)
                failures += 1
                continue
            ts = record["timestamp"]
            # ISO-8601 UTC stamps compare correctly as strings.
            if previous_ts and ts < previous_ts:
                print(f"check_bench_schema: {path}:{line_no}: timestamp "
                      f"{ts} precedes {previous_ts} — history must be "
                      "append-only", file=sys.stderr)
                failures += 1
            previous_ts = ts
    if rows == 0:
        print(f"check_bench_schema: {path} is empty", file=sys.stderr)
        failures += 1
    if failures == 0:
        print(f"check_bench_schema: OK — {path} holds {rows} record(s), "
              "timestamps monotonic")
    return failures


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench", nargs="?", default=None)
    parser.add_argument("--metrics", default=None,
                        help="also validate a METRICS_serving.json dump")
    parser.add_argument("--trajectory", default=None,
                        help="also validate a BENCH_trajectory.jsonl history")
    parser.add_argument("--scale", default=None,
                        help="also validate a BENCH_scale.json scaling sweep")
    args = parser.parse_args(argv[1:])

    extra_failures = 0
    if args.metrics is not None:
        extra_failures += check_metrics(args.metrics)
    if args.trajectory is not None:
        extra_failures += check_trajectory(args.trajectory)
    if args.scale is not None:
        extra_failures += check_scale(args.scale)
        if args.bench is None:
            # Scale-only invocation (the scale-smoke job has no serving
            # artifact to validate).
            return 1 if extra_failures else 0

    path = args.bench if args.bench is not None else "BENCH_serving.json"
    if not os.path.exists(path):
        print(f"check_bench_schema: {path} not found", file=sys.stderr)
        return 1
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)

    records = data.get("records")
    if not isinstance(records, list):
        print(f"check_bench_schema: {path} has no `records` list",
              file=sys.stderr)
        return 1

    by_name = {}
    for record in records:
        if isinstance(record, dict) and "bench" in record:
            by_name.setdefault(record["bench"], record)

    failures = 0
    for name, keys in REQUIRED_KEYS.items():
        record = by_name.get(name)
        if record is None:
            print(f"check_bench_schema: record `{name}` missing from {path}",
                  file=sys.stderr)
            failures += 1
            continue
        missing = [key for key in keys if key not in record]
        if missing:
            print(f"check_bench_schema: record `{name}` lost keys: "
                  f"{', '.join(missing)}", file=sys.stderr)
            failures += 1

    # Cheap sanity on top of presence: coverage is a ratio and the summary
    # must describe at least one staged trace, or the artifact is hollow.
    summary = by_name.get("trace_summary")
    if summary is not None and "span_coverage" in summary:
        coverage = summary["span_coverage"]
        if not (isinstance(coverage, (int, float)) and 0.0 <= coverage <= 1.0):
            print(f"check_bench_schema: span_coverage {coverage!r} is not a "
                  "ratio in [0, 1]", file=sys.stderr)
            failures += 1
    if summary is not None and summary.get("staged_traces", 0) <= 0:
        print("check_bench_schema: trace_summary.staged_traces is not "
              "positive — the bench retained no staged traces",
              file=sys.stderr)
        failures += 1

    if failures or extra_failures:
        return 1
    print(f"check_bench_schema: OK — {path} carries "
          f"{', '.join(REQUIRED_KEYS)} with all required keys")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
