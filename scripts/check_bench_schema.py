#!/usr/bin/env python3
"""Schema check for the serving bench's JSON output (CI `stress` job).

The serving bench (bench/bench_serving_throughput.cc) writes
BENCH_serving.json with a `records` list; downstream consumers (the perf
trajectory charts and the observability artifacts) depend on two records
existing with stable keys:

  * `trace_summary`  — per-stage p50/p95 from the request traces plus the
    sink's retention counters (span coverage, containment-hit traces,
    pinned exemplars),
  * `tracing_overhead` — traced vs untraced throughput on the cold staged
    path.

This script fails CI when either record is missing or dropped a key, so a
refactor of the bench cannot silently stop exporting the trace summary
(docs/OBSERVABILITY.md documents the schema).

Usage: scripts/check_bench_schema.py [BENCH_serving.json]
Exit code 0 = schema intact, 1 = a record or key is missing.
Standard library only.
"""

import json
import os
import sys

REQUIRED_KEYS = {
    "trace_summary": [
        "staged_traces",
        "containment_hit_traces",
        "span_coverage",
        "queue_scan_p50_ms",
        "queue_scan_p95_ms",
        "scan_p50_ms",
        "scan_p95_ms",
        "queue_select_p50_ms",
        "queue_select_p95_ms",
        "select_p50_ms",
        "select_p95_ms",
        "traces_committed",
        "exemplars_pinned",
        "exemplar_threshold_ms",
    ],
    "tracing_overhead": [
        "rps_traced",
        "rps_untraced",
        "overhead",
    ],
}


def main(argv: list[str]) -> int:
    path = argv[1] if len(argv) > 1 else "BENCH_serving.json"
    if not os.path.exists(path):
        print(f"check_bench_schema: {path} not found", file=sys.stderr)
        return 1
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)

    records = data.get("records")
    if not isinstance(records, list):
        print(f"check_bench_schema: {path} has no `records` list",
              file=sys.stderr)
        return 1

    by_name = {}
    for record in records:
        if isinstance(record, dict) and "bench" in record:
            by_name.setdefault(record["bench"], record)

    failures = 0
    for name, keys in REQUIRED_KEYS.items():
        record = by_name.get(name)
        if record is None:
            print(f"check_bench_schema: record `{name}` missing from {path}",
                  file=sys.stderr)
            failures += 1
            continue
        missing = [key for key in keys if key not in record]
        if missing:
            print(f"check_bench_schema: record `{name}` lost keys: "
                  f"{', '.join(missing)}", file=sys.stderr)
            failures += 1

    # Cheap sanity on top of presence: coverage is a ratio and the summary
    # must describe at least one staged trace, or the artifact is hollow.
    summary = by_name.get("trace_summary")
    if summary is not None and "span_coverage" in summary:
        coverage = summary["span_coverage"]
        if not (isinstance(coverage, (int, float)) and 0.0 <= coverage <= 1.0):
            print(f"check_bench_schema: span_coverage {coverage!r} is not a "
                  "ratio in [0, 1]", file=sys.stderr)
            failures += 1
    if summary is not None and summary.get("staged_traces", 0) <= 0:
        print("check_bench_schema: trace_summary.staged_traces is not "
              "positive — the bench retained no staged traces",
              file=sys.stderr)
        failures += 1

    if failures:
        return 1
    print(f"check_bench_schema: OK — {path} carries "
          f"{', '.join(REQUIRED_KEYS)} with all required keys")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
