#!/usr/bin/env python3
"""Markdown link check for the repo's docs (CI `docs` job).

Scans the given markdown files (or the repo's standard docs set) for
intra-repo links — `[text](path)`, `![alt](path)`, and `[[wiki-style]]` are
NOT used here, so only the first two forms — and fails when a relative
target does not exist. External links (http/https/mailto) and pure
anchors (#...) are skipped: CI must not flake on network or third-party
outages, and heading anchors are not worth a parser dependency.

Usage: scripts/check_markdown_links.py [file.md ...]
Exit code 0 = all intra-repo links resolve, 1 = at least one is broken.
Standard library only.
"""

import os
import re
import sys

# [text](target) and ![alt](target); target ends at the first unescaped ')'
# (no nested-paren targets in this repo). Reference-style links are not used.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# Fenced code blocks must not contribute links (they hold example syntax).
FENCE_RE = re.compile(r"^(```|~~~)")

DEFAULT_DOCS = ["README.md", "ROADMAP.md", "CHANGES.md", "PAPER.md",
                "PAPERS.md", "SNIPPETS.md"]


def repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def default_files(root: str) -> list[str]:
    files = [os.path.join(root, name) for name in DEFAULT_DOCS
             if os.path.exists(os.path.join(root, name))]
    docs_dir = os.path.join(root, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                files.append(os.path.join(docs_dir, name))
    return files


def check_file(path: str) -> list[str]:
    errors = []
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            if FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                target = target.split("#", 1)[0]  # Drop heading anchors.
                if not target:
                    continue  # Pure in-page anchor.
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), target))
                if not os.path.exists(resolved):
                    errors.append(f"{path}:{lineno}: broken link -> {target}")
    return errors


def main(argv: list[str]) -> int:
    root = repo_root()
    files = [os.path.abspath(a) for a in argv[1:]] or default_files(root)
    all_errors = []
    for path in files:
        if not os.path.exists(path):
            all_errors.append(f"{path}: file not found")
            continue
        all_errors.extend(check_file(path))
    for error in all_errors:
        print(error, file=sys.stderr)
    print(f"checked {len(files)} files: "
          f"{'FAIL' if all_errors else 'ok'} ({len(all_errors)} broken)")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
