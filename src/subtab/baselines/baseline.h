#ifndef SUBTAB_BASELINES_BASELINE_H_
#define SUBTAB_BASELINES_BASELINE_H_

#include <vector>

#include "subtab/metrics/combined.h"

/// \file baseline.h
/// Shared result type for the paper's baseline algorithms (Sec. 6.1):
/// RAN, NC, Greedy / semi-greedy, MAB, and the brute-force optimum used by
/// tests. Each baseline returns the selected sub-table plus its intrinsic
/// scores and bookkeeping.

namespace subtab {

/// Output of one baseline run.
struct BaselineResult {
  std::vector<size_t> row_ids;
  std::vector<size_t> col_ids;
  SubTableScore score;
  double seconds = 0.0;
  size_t iterations = 0;  ///< Draws / rounds / column combinations examined.
};

/// Lexicographic combination enumeration: `idx` holds `k` ascending indices
/// into [0, n). Returns false when the last combination has been passed.
inline bool NextCombination(std::vector<size_t>* idx, size_t n) {
  std::vector<size_t>& v = *idx;
  const size_t k = v.size();
  if (k == 0 || k > n) return false;
  size_t i = k;
  while (i > 0) {
    --i;
    if (v[i] < n - k + i) {
      ++v[i];
      for (size_t j = i + 1; j < k; ++j) v[j] = v[j - 1] + 1;
      return true;
    }
  }
  return false;
}

/// The first (lexicographically smallest) k-combination {0, 1, ..., k-1}.
inline std::vector<size_t> FirstCombination(size_t k) {
  std::vector<size_t> v(k);
  for (size_t i = 0; i < k; ++i) v[i] = i;
  return v;
}

}  // namespace subtab

#endif  // SUBTAB_BASELINES_BASELINE_H_
