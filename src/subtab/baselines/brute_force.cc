#include "subtab/baselines/brute_force.h"

#include <algorithm>

#include "subtab/util/stopwatch.h"

namespace subtab {

BaselineResult BruteForceOptimal(const CoverageEvaluator& evaluator,
                                 const BruteForceOptions& options) {
  Stopwatch watch;
  const BinnedTable& binned = evaluator.binned();
  const size_t n = binned.num_rows();
  const size_t m = binned.num_columns();
  const size_t k = std::min(options.k, n);
  SUBTAB_CHECK(options.target_cols.size() <= options.l);

  std::vector<size_t> pool;
  for (size_t c = 0; c < m; ++c) {
    if (std::find(options.target_cols.begin(), options.target_cols.end(), c) ==
        options.target_cols.end()) {
      pool.push_back(c);
    }
  }
  const size_t draw = std::min(options.l - options.target_cols.size(), pool.size());

  BaselineResult best;
  best.score.combined = -1.0;
  size_t examined = 0;

  std::vector<size_t> col_picks = FirstCombination(draw);
  bool more_cols = true;
  while (more_cols) {
    std::vector<size_t> cols = options.target_cols;
    for (size_t p : col_picks) cols.push_back(pool[p]);
    std::sort(cols.begin(), cols.end());

    std::vector<size_t> rows = FirstCombination(k);
    bool more_rows = true;
    while (more_rows) {
      ++examined;
      SUBTAB_CHECK(examined <= options.max_subtables);
      const SubTableScore score = ScoreSubTable(evaluator, rows, cols, options.alpha);
      if (score.combined > best.score.combined) {
        best.row_ids = rows;
        best.col_ids = cols;
        best.score = score;
      }
      more_rows = NextCombination(&rows, n);
    }
    more_cols = draw > 0 && NextCombination(&col_picks, pool.size());
  }

  best.iterations = examined;
  best.seconds = watch.ElapsedSeconds();
  return best;
}

}  // namespace subtab
