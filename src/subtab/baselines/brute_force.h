#ifndef SUBTAB_BASELINES_BRUTE_FORCE_H_
#define SUBTAB_BASELINES_BRUTE_FORCE_H_

#include "subtab/baselines/baseline.h"

/// \file brute_force.h
/// Exhaustive optimum for OPT-SUB-TABLE on tiny instances: enumerates all
/// C(n,k) x C(m,l) sub-tables (Sec. 4.1's infeasible brute force). Used by
/// tests to validate the greedy (1-1/e) guarantee and by the worked example
/// of Fig. 3 (which the paper states has ˆT(1)_sub as its optimum).

namespace subtab {

struct BruteForceOptions {
  size_t k = 3;
  size_t l = 4;
  std::vector<size_t> target_cols;
  double alpha = 0.5;
  /// Safety cap on enumerated sub-tables; exceeded => fatal (the caller
  /// asked for an infeasible instance).
  size_t max_subtables = 20000000;
};

/// Returns a maximum-combined-score sub-table (ties: lexicographically
/// smallest row then column selection).
BaselineResult BruteForceOptimal(const CoverageEvaluator& evaluator,
                                 const BruteForceOptions& options);

}  // namespace subtab

#endif  // SUBTAB_BASELINES_BRUTE_FORCE_H_
