#include "subtab/baselines/greedy.h"

#include <algorithm>
#include <set>

#include "subtab/util/rng.h"
#include "subtab/util/stopwatch.h"

namespace subtab {

std::pair<std::vector<size_t>, size_t> GreedyRowSelection(
    const CoverageEvaluator& evaluator, size_t k,
    const std::vector<size_t>& col_ids) {
  const size_t n = evaluator.binned().num_rows();
  CoverageAccumulator acc(evaluator, col_ids);
  std::vector<size_t> rows;
  std::vector<char> taken(n, 0);
  const size_t k_eff = std::min(k, n);
  rows.reserve(k_eff);

  for (size_t step = 0; step < k_eff; ++step) {
    size_t best_row = n;
    size_t best_gain = 0;
    for (size_t r = 0; r < n; ++r) {
      if (taken[r]) continue;
      const size_t gain = acc.GainOfRow(r);
      if (best_row == n || gain > best_gain) {
        best_gain = gain;
        best_row = r;
      }
    }
    SUBTAB_CHECK(best_row < n);
    taken[best_row] = 1;
    rows.push_back(best_row);
    acc.AddRow(best_row);
  }
  std::sort(rows.begin(), rows.end());
  return {rows, acc.covered_cells()};
}

BaselineResult GreedySubTable(const CoverageEvaluator& evaluator,
                              const GreedyOptions& options) {
  Stopwatch watch;
  const BinnedTable& binned = evaluator.binned();
  const size_t m = binned.num_columns();
  SUBTAB_CHECK(options.target_cols.size() <= options.l);

  std::vector<size_t> pool;
  for (size_t c = 0; c < m; ++c) {
    if (std::find(options.target_cols.begin(), options.target_cols.end(), c) ==
        options.target_cols.end()) {
      pool.push_back(c);
    }
  }
  const size_t draw = std::min(options.l - options.target_cols.size(), pool.size());

  BaselineResult best;
  size_t best_cells = 0;
  bool any = false;
  size_t combos = 0;
  const bool budgeted = options.time_budget_seconds > 0.0;
  Deadline deadline(budgeted ? options.time_budget_seconds : 1e18);
  Rng rng(options.seed);

  auto evaluate_combo = [&](const std::vector<size_t>& picks) {
    std::vector<size_t> cols = options.target_cols;
    for (size_t p : picks) cols.push_back(pool[p]);
    std::sort(cols.begin(), cols.end());
    auto [rows, cells] = GreedyRowSelection(evaluator, options.k, cols);
    ++combos;
    if (!any || cells > best_cells) {
      any = true;
      best_cells = cells;
      best.row_ids = std::move(rows);
      best.col_ids = std::move(cols);
    }
  };

  if (draw == 0) {
    evaluate_combo({});
  } else if (options.randomize_column_order) {
    // Semi-greedy: i.i.d. random subsets, deduplicated, until the budget or
    // the combo cap runs out.
    std::set<std::vector<size_t>> seen;
    while (!deadline.Expired()) {
      if (options.max_column_combos > 0 && combos >= options.max_column_combos) break;
      std::vector<size_t> picks = rng.SampleWithoutReplacement(pool.size(), draw);
      std::sort(picks.begin(), picks.end());
      if (!seen.insert(picks).second) continue;
      evaluate_combo(picks);
    }
  } else {
    // Exhaustive lexicographic enumeration (Algorithm 1 line 2).
    std::vector<size_t> picks = FirstCombination(draw);
    do {
      evaluate_combo(picks);
      if (options.max_column_combos > 0 && combos >= options.max_column_combos) break;
      if (budgeted && deadline.Expired()) break;
    } while (NextCombination(&picks, pool.size()));
  }

  SUBTAB_CHECK(any);
  best.score = ScoreSubTable(evaluator, best.row_ids, best.col_ids, options.alpha);
  best.iterations = combos;
  best.seconds = watch.ElapsedSeconds();
  return best;
}

}  // namespace subtab
