#ifndef SUBTAB_BASELINES_GREEDY_H_
#define SUBTAB_BASELINES_GREEDY_H_

#include "subtab/baselines/baseline.h"

/// \file greedy.h
/// Algorithm 1 of the paper: enumerate column subsets of size l and, for
/// each, greedily add the row with the largest marginal cell-coverage gain
/// k times. Greedy row selection is a (1 - 1/e)-approximation of the optimal
/// rows for that column set (Prop. 4.3, via submodularity of cellCov in
/// rows). The exhaustive column enumeration is infeasible beyond tiny m, so
/// the paper's "semi-greedy" variant visits column combinations in random
/// order under a time budget and keeps the best sub-table seen.

namespace subtab {

struct GreedyOptions {
  size_t k = 10;
  size_t l = 10;
  std::vector<size_t> target_cols;  ///< Forced into every column subset.
  double alpha = 0.5;               ///< Used only for the reported score;
                                    ///< selection maximizes coverage alone.
  /// 0 = exhaustive enumeration (use only when C(m,l) is small).
  double time_budget_seconds = 0.0;
  /// Visit column subsets in random order (the semi-greedy variant).
  bool randomize_column_order = false;
  /// Hard cap on subsets examined (0 = unlimited).
  size_t max_column_combos = 0;
  uint64_t seed = 42;
};

/// GreedyRowSelection of Algorithm 1: k rows maximizing marginal coverage
/// gain over the fixed `col_ids`. Ties break toward the smallest row id.
/// Returns the rows and the achieved covered-cell count.
std::pair<std::vector<size_t>, size_t> GreedyRowSelection(
    const CoverageEvaluator& evaluator, size_t k, const std::vector<size_t>& col_ids);

/// Full Algorithm 1 / semi-greedy driver.
BaselineResult GreedySubTable(const CoverageEvaluator& evaluator,
                              const GreedyOptions& options);

}  // namespace subtab

#endif  // SUBTAB_BASELINES_GREEDY_H_
