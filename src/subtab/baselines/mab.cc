#include "subtab/baselines/mab.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "subtab/util/rng.h"
#include "subtab/util/stopwatch.h"

namespace subtab {
namespace {

/// One UCB1 arm pool: picks the `want` arms with the highest upper bound;
/// unexplored arms rank above everything (standard UCB initialization) and
/// ties are broken by a random perturbation so early rounds explore.
class ArmPool {
 public:
  ArmPool(size_t num_arms, double exploration, Rng* rng)
      : counts_(num_arms, 0), means_(num_arms, 0.0), exploration_(exploration),
        rng_(rng) {}

  std::vector<size_t> Pick(size_t want, size_t round) const {
    const size_t n = counts_.size();
    std::vector<double> ucb(n);
    const double log_t = std::log(static_cast<double>(std::max<size_t>(round, 2)));
    for (size_t i = 0; i < n; ++i) {
      if (counts_[i] == 0) {
        ucb[i] = std::numeric_limits<double>::max() - rng_->UniformDouble();
      } else {
        ucb[i] = means_[i] +
                 exploration_ * std::sqrt(log_t / static_cast<double>(counts_[i]));
      }
    }
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    const size_t take = std::min(want, n);
    std::partial_sort(order.begin(), order.begin() + static_cast<long>(take),
                      order.end(),
                      [&ucb](size_t a, size_t b) { return ucb[a] > ucb[b]; });
    order.resize(take);
    return order;
  }

  void Update(const std::vector<size_t>& arms, double reward) {
    for (size_t a : arms) {
      ++counts_[a];
      means_[a] += (reward - means_[a]) / static_cast<double>(counts_[a]);
    }
  }

 private:
  std::vector<size_t> counts_;
  std::vector<double> means_;
  double exploration_;
  Rng* rng_;
};

}  // namespace

BaselineResult MabBaseline(const CoverageEvaluator& evaluator,
                           const MabOptions& options) {
  Stopwatch watch;
  const BinnedTable& binned = evaluator.binned();
  const size_t n = binned.num_rows();
  const size_t m = binned.num_columns();
  SUBTAB_CHECK(options.target_cols.size() <= options.l);

  std::vector<size_t> pool;
  for (size_t c = 0; c < m; ++c) {
    if (std::find(options.target_cols.begin(), options.target_cols.end(), c) ==
        options.target_cols.end()) {
      pool.push_back(c);
    }
  }
  const size_t draw_cols = std::min(options.l - options.target_cols.size(), pool.size());
  const size_t k = std::min(options.k, n);

  Rng rng(options.seed);
  ArmPool row_arms(n, options.exploration, &rng);
  ArmPool col_arms(pool.size(), options.exploration, &rng);

  BaselineResult best;
  best.score.combined = -1.0;
  Deadline deadline(options.time_budget_seconds);

  size_t round = 0;
  while (true) {
    if (options.max_iterations > 0 && round >= options.max_iterations) break;
    if (round > 0 && deadline.Expired()) break;
    ++round;

    std::vector<size_t> row_picks = row_arms.Pick(k, round);
    std::vector<size_t> col_picks = col_arms.Pick(draw_cols, round);

    std::vector<size_t> rows = row_picks;
    std::sort(rows.begin(), rows.end());
    std::vector<size_t> cols = options.target_cols;
    for (size_t p : col_picks) cols.push_back(pool[p]);
    std::sort(cols.begin(), cols.end());

    const SubTableScore score = ScoreSubTable(evaluator, rows, cols, options.alpha);
    row_arms.Update(row_picks, score.combined);
    col_arms.Update(col_picks, score.combined);

    if (score.combined > best.score.combined) {
      best.row_ids = std::move(rows);
      best.col_ids = std::move(cols);
      best.score = score;
    }
  }
  best.iterations = round;
  best.seconds = watch.ElapsedSeconds();
  return best;
}

}  // namespace subtab
