#ifndef SUBTAB_BASELINES_MAB_H_
#define SUBTAB_BASELINES_MAB_H_

#include "subtab/baselines/baseline.h"

/// \file mab.h
/// The Multi-Armed Bandit baseline (Sec. 6.1, baseline 4): every row and
/// every column is an arm; each round draws k row-arms and l column-arms by
/// Upper Confidence Bound (UCB1) [Lai & Robbins '85], evaluates the induced
/// sub-table with the combined metric, and credits the reward to every
/// participating arm. The best sub-table seen within the budget is returned.

namespace subtab {

struct MabOptions {
  size_t k = 10;
  size_t l = 10;
  std::vector<size_t> target_cols;
  double alpha = 0.5;
  double time_budget_seconds = 30.0;
  size_t max_iterations = 0;       ///< 0 = budget-limited only.
  double exploration = 1.41421356; ///< UCB exploration constant (√2).
  uint64_t seed = 42;
};

/// Runs the UCB bandit search.
BaselineResult MabBaseline(const CoverageEvaluator& evaluator, const MabOptions& options);

}  // namespace subtab

#endif  // SUBTAB_BASELINES_MAB_H_
