#include "subtab/baselines/naive_clustering.h"

#include <algorithm>

#include "subtab/cluster/kmeans.h"
#include "subtab/util/stopwatch.h"

namespace subtab {

BaselineResult NaiveClustering(const CoverageEvaluator& evaluator,
                               const NaiveClusteringOptions& options) {
  Stopwatch watch;
  const BinnedTable& binned = evaluator.binned();
  const size_t n = binned.num_rows();
  const size_t m = binned.num_columns();
  const size_t total_bins = binned.total_bins();
  const size_t k = std::min(options.k, n);

  BaselineResult result;

  // ---- Rows: one-hot over the bin vocabulary. ----------------------------
  {
    // Optional deterministic stride subsample of the clustering input.
    std::vector<size_t> pool;
    if (options.max_rows > 0 && n > options.max_rows) {
      const size_t stride = n / options.max_rows;
      for (size_t r = 0; r < n && pool.size() < options.max_rows; r += stride) {
        pool.push_back(r);
      }
    } else {
      pool.resize(n);
      for (size_t r = 0; r < n; ++r) pool[r] = r;
    }
    const size_t pn = pool.size();
    const size_t k_eff = std::min(k, pn);
    std::vector<float> onehot(pn * total_bins, 0.0f);
    for (size_t i = 0; i < pn; ++i) {
      const Token* row = binned.row_data(pool[i]);
      for (size_t c = 0; c < m; ++c) {
        onehot[i * total_bins + binned.DenseIndex(row[c])] = 1.0f;
      }
    }
    KMeansOptions opts;
    opts.k = k_eff;
    opts.n_init = 2;  // Restarts, bounded by the one-hot matrix size.
    opts.seed = options.seed ^ 0xa0761d6478bd642fULL;
    for (size_t medoid : ClusterRepresentatives(onehot, total_bins, opts)) {
      result.row_ids.push_back(pool[medoid]);
    }
    std::sort(result.row_ids.begin(), result.row_ids.end());
  }

  // ---- Columns: per-row normalized bin ordinals. --------------------------
  std::vector<size_t> candidates;
  for (size_t c = 0; c < m; ++c) {
    if (std::find(options.target_cols.begin(), options.target_cols.end(), c) ==
        options.target_cols.end()) {
      candidates.push_back(c);
    }
  }
  SUBTAB_CHECK(options.target_cols.size() <= options.l);
  const size_t clusters =
      std::min(options.l - options.target_cols.size(), candidates.size());

  std::vector<size_t> cols = options.target_cols;
  if (clusters >= candidates.size()) {
    cols.insert(cols.end(), candidates.begin(), candidates.end());
  } else if (clusters > 0) {
    const size_t rows_used = options.column_vector_rows == 0
                                 ? n
                                 : std::min(options.column_vector_rows, n);
    std::vector<float> col_matrix(candidates.size() * rows_used);
    for (size_t i = 0; i < candidates.size(); ++i) {
      const size_t c = candidates[i];
      const float inv_bins = 1.0f / static_cast<float>(binned.bins_in_column(c));
      for (size_t r = 0; r < rows_used; ++r) {
        col_matrix[i * rows_used + r] =
            static_cast<float>(TokenBin(binned.token(r, c))) * inv_bins;
      }
    }
    KMeansOptions opts;
    opts.k = clusters;
    opts.seed = options.seed ^ 0xe7037ed1a0b428dbULL;
    for (size_t medoid : ClusterRepresentatives(col_matrix, rows_used, opts)) {
      cols.push_back(candidates[medoid]);
    }
  }
  std::sort(cols.begin(), cols.end());
  result.col_ids = std::move(cols);

  result.score =
      ScoreSubTable(evaluator, result.row_ids, result.col_ids, options.alpha);
  result.iterations = 1;
  result.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace subtab
