#ifndef SUBTAB_BASELINES_NAIVE_CLUSTERING_H_
#define SUBTAB_BASELINES_NAIVE_CLUSTERING_H_

#include "subtab/baselines/baseline.h"

/// \file naive_clustering.h
/// The NC baseline (Sec. 6.1): skip the embedding entirely — one-hot encode
/// each row over the bin vocabulary, K-means the row vectors and take cluster
/// medoids as rows; represent each column by its per-row (normalized) bin
/// ordinal and select columns analogously. The paper uses NC to show that
/// clustering raw one-hot data misses the patterns the embedding captures.

namespace subtab {

struct NaiveClusteringOptions {
  size_t k = 10;
  size_t l = 10;
  std::vector<size_t> target_cols;
  double alpha = 0.5;
  uint64_t seed = 42;
  /// Rows used to form column vectors (cap keeps the m-point clustering
  /// cheap on tall tables); 0 = all rows.
  size_t column_vector_rows = 4096;
  /// Row-clustering subsample cap (our scalar k-means lacks sklearn's
  /// vectorization, so interactive replay caps the one-hot clustering input);
  /// 0 = all rows. Medoids are drawn from the subsample.
  size_t max_rows = 0;
};

/// Runs naive one-hot clustering. The evaluator provides table + scoring.
BaselineResult NaiveClustering(const CoverageEvaluator& evaluator,
                               const NaiveClusteringOptions& options);

}  // namespace subtab

#endif  // SUBTAB_BASELINES_NAIVE_CLUSTERING_H_
