#include "subtab/baselines/random_baseline.h"

#include <algorithm>

#include "subtab/util/stopwatch.h"

namespace subtab {

BaselineResult RandomBaseline(const CoverageEvaluator& evaluator,
                              const RandomBaselineOptions& options) {
  const BinnedTable& binned = evaluator.binned();
  const size_t n = binned.num_rows();
  const size_t m = binned.num_columns();
  const size_t k = std::min(options.k, n);
  SUBTAB_CHECK(options.target_cols.size() <= options.l);

  // Non-target columns to draw from.
  std::vector<size_t> pool;
  for (size_t c = 0; c < m; ++c) {
    if (std::find(options.target_cols.begin(), options.target_cols.end(), c) ==
        options.target_cols.end()) {
      pool.push_back(c);
    }
  }
  const size_t draw_cols = std::min(options.l - options.target_cols.size(), pool.size());

  Rng rng(options.seed);
  Stopwatch watch;
  Deadline deadline(options.time_budget_seconds);
  BaselineResult best;
  best.score.combined = -1.0;

  size_t iter = 0;
  while (true) {
    if (options.max_iterations > 0 && iter >= options.max_iterations) break;
    if (iter > 0 && deadline.Expired()) break;
    ++iter;

    std::vector<size_t> rows = rng.SampleWithoutReplacement(n, k);
    std::sort(rows.begin(), rows.end());

    std::vector<size_t> cols = options.target_cols;
    for (size_t pick : rng.SampleWithoutReplacement(pool.size(), draw_cols)) {
      cols.push_back(pool[pick]);
    }
    std::sort(cols.begin(), cols.end());

    const SubTableScore score = ScoreSubTable(evaluator, rows, cols, options.alpha);
    if (score.combined > best.score.combined) {
      best.row_ids = std::move(rows);
      best.col_ids = std::move(cols);
      best.score = score;
    }
  }
  best.iterations = iter;
  best.seconds = watch.ElapsedSeconds();
  return best;
}

}  // namespace subtab
