#ifndef SUBTAB_BASELINES_RANDOM_BASELINE_H_
#define SUBTAB_BASELINES_RANDOM_BASELINE_H_

#include "subtab/baselines/baseline.h"
#include "subtab/util/rng.h"

/// \file random_baseline.h
/// The RAN baseline (Sec. 6.1): repeatedly draw k rows and l columns
/// uniformly at random, score each draw with the combined metric, and return
/// the best sub-table found within the budget ("we iteratively repeat the
/// random selection for one minute, and return the sub-table with highest
/// score").

namespace subtab {

struct RandomBaselineOptions {
  size_t k = 10;
  size_t l = 10;
  std::vector<size_t> target_cols;  ///< Always included in the l columns.
  double alpha = 0.5;
  /// Paper uses 60 s; tests/benches shrink this.
  double time_budget_seconds = 60.0;
  /// Hard cap on draws (0 = unbounded, budget-limited only).
  size_t max_iterations = 0;
  uint64_t seed = 42;
};

/// Runs best-of-random selection. The evaluator carries the table and rules.
BaselineResult RandomBaseline(const CoverageEvaluator& evaluator,
                              const RandomBaselineOptions& options);

}  // namespace subtab

#endif  // SUBTAB_BASELINES_RANDOM_BASELINE_H_
