#include "subtab/binning/bin_spec.h"

#include <algorithm>

#include "subtab/util/string_util.h"

namespace subtab {

const char* BinningStrategyName(BinningStrategy strategy) {
  switch (strategy) {
    case BinningStrategy::kEqualWidth:
      return "equal_width";
    case BinningStrategy::kQuantile:
      return "quantile";
    case BinningStrategy::kKde:
      return "kde";
  }
  return "unknown";
}

uint32_t ColumnBinning::BinOfNumeric(double value) const {
  SUBTAB_DCHECK(type == ColumnType::kNumeric);
  // First edge > value determines the bin: bin i covers [e_{i-1}, e_i).
  const auto it = std::upper_bound(edges.begin(), edges.end(), value);
  return static_cast<uint32_t>(it - edges.begin());
}

uint32_t ColumnBinning::BinOfCode(int32_t code) const {
  SUBTAB_DCHECK(type == ColumnType::kCategorical);
  SUBTAB_CHECK(code >= 0 && static_cast<size_t>(code) < code_to_bin.size());
  return code_to_bin[static_cast<size_t>(code)];
}

TableBinning TableBinning::FromColumns(std::vector<ColumnBinning> columns,
                                       const BinningOptions& options) {
  TableBinning binning;
  binning.options_ = options;
  binning.columns_ = std::move(columns);
  return binning;
}

TableBinning TableBinning::Compute(const Table& table, const BinningOptions& options) {
  TableBinning binning;
  binning.options_ = options;
  binning.columns_.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    if (col.is_numeric()) {
      binning.columns_.push_back(BinNumericColumn(col, options));
    } else {
      binning.columns_.push_back(BinCategoricalColumn(col, options));
    }
  }
  return binning;
}

ColumnBinning BinNumericColumn(const Column& column, const BinningOptions& options) {
  SUBTAB_CHECK(column.is_numeric());
  std::vector<double> values;
  values.reserve(column.size());
  for (size_t r = 0; r < column.size(); ++r) {
    if (!column.is_null(r)) values.push_back(column.num_value(r));
  }

  ColumnBinning out;
  out.type = ColumnType::kNumeric;
  switch (options.strategy) {
    case BinningStrategy::kEqualWidth:
      out.edges = EqualWidthEdges(values, options.num_bins);
      break;
    case BinningStrategy::kQuantile:
      out.edges = QuantileEdges(values, options.num_bins);
      break;
    case BinningStrategy::kKde:
      out.edges = KdeEdges(values, options.num_bins);
      break;
  }
  out.num_value_bins = static_cast<uint32_t>(out.edges.size()) + 1;

  // Labels: "(-inf,e0)", "[e0,e1)", ..., "[ek,inf)"; "NaN" for the null bin.
  out.labels.reserve(out.num_bins());
  for (uint32_t b = 0; b < out.num_value_bins; ++b) {
    const std::string lo =
        (b == 0) ? "-inf" : FormatCell(out.edges[b - 1], 4);
    const std::string hi =
        (b == out.num_value_bins - 1) ? "inf" : FormatCell(out.edges[b], 4);
    out.labels.push_back(StrFormat("[%s,%s)", lo.c_str(), hi.c_str()));
  }
  out.labels.push_back("NaN");
  return out;
}

ColumnBinning BinCategoricalColumn(const Column& column, const BinningOptions& options) {
  SUBTAB_CHECK(!column.is_numeric());
  const auto& dict = column.dictionary();

  // Frequency of each dictionary code.
  std::vector<size_t> freq(dict.size(), 0);
  for (size_t r = 0; r < column.size(); ++r) {
    if (!column.is_null(r)) ++freq[static_cast<size_t>(column.cat_code(r))];
  }

  ColumnBinning out;
  out.type = ColumnType::kCategorical;
  out.code_to_bin.assign(dict.size(), 0);

  const uint32_t max_bins = std::max<uint32_t>(options.max_cat_bins, 1);
  if (dict.size() <= max_bins) {
    // Every category keeps its own bin (e.g. a binary CANCELLED column).
    out.num_value_bins = static_cast<uint32_t>(dict.size());
    for (size_t code = 0; code < dict.size(); ++code) {
      out.code_to_bin[code] = static_cast<uint32_t>(code);
      out.labels.push_back(dict[code]);
    }
  } else {
    // Top (max_bins - 1) categories by frequency own a bin; rest -> "other".
    std::vector<size_t> order(dict.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&freq](size_t a, size_t b) { return freq[a] > freq[b]; });
    const uint32_t kept = max_bins - 1;
    out.num_value_bins = kept + 1;
    const uint32_t other_bin = kept;
    out.code_to_bin.assign(dict.size(), other_bin);
    for (uint32_t rank = 0; rank < kept; ++rank) {
      out.code_to_bin[order[rank]] = rank;
      out.labels.push_back(dict[order[rank]]);
    }
    out.labels.push_back("other");
  }
  out.labels.push_back("NaN");
  return out;
}

}  // namespace subtab
