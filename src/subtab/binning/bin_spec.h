#ifndef SUBTAB_BINNING_BIN_SPEC_H_
#define SUBTAB_BINNING_BIN_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "subtab/table/table.h"

/// \file bin_spec.h
/// Binning functions per Def. 3.2: every column u_i is mapped to a finite set
/// of bins such that each cell value belongs to exactly one bin. Numeric
/// columns are cut at strategy-specific edges; categorical columns either
/// keep their categories or group the tail into an "other" bin; nulls always
/// get a dedicated bin (the paper treats NaN as a value that participates in
/// association rules, cf. Fig. 3).

namespace subtab {

/// How numeric cut points are chosen.
enum class BinningStrategy {
  kEqualWidth,  ///< Uniform-width intervals over [min, max].
  kQuantile,    ///< Equal-frequency intervals.
  kKde,         ///< Cuts at minima of a Gaussian kernel density estimate —
                ///< the paper's sciPy-based method (Sec. 6.1).
};

const char* BinningStrategyName(BinningStrategy strategy);

/// Table-wide binning parameters.
struct BinningOptions {
  BinningStrategy strategy = BinningStrategy::kKde;
  /// Target number of value bins per numeric column (paper default: 5).
  uint32_t num_bins = 5;
  /// Maximum category bins per categorical column; less frequent categories
  /// share an "other" bin (cf. Example 3.3: airlines grouped by continent).
  uint32_t max_cat_bins = 5;
};

/// The binning of one column. Bin ids are dense: 0..num_value_bins-1 for
/// values, then one extra id for nulls.
struct ColumnBinning {
  ColumnType type = ColumnType::kNumeric;
  /// Interior cut points, ascending (numeric columns). With c cuts there are
  /// c+1 value bins: (-inf, e0), [e0, e1), ..., [e_{c-1}, +inf).
  std::vector<double> edges;
  /// Dictionary code -> bin id (categorical columns).
  std::vector<uint32_t> code_to_bin;
  /// Human-readable label per bin id (includes the null bin, labelled "NaN").
  std::vector<std::string> labels;
  uint32_t num_value_bins = 0;

  /// Total bins including the null bin.
  uint32_t num_bins() const { return num_value_bins + 1; }
  /// Id of the dedicated null bin.
  uint32_t null_bin() const { return num_value_bins; }

  /// Bin of a non-null numeric value (binary search over edges).
  uint32_t BinOfNumeric(double value) const;
  /// Bin of a categorical dictionary code.
  uint32_t BinOfCode(int32_t code) const;
};

/// The binning of a whole table. Computed once per table load (pre-processing
/// step, Algorithm 2 line 1) and reused for all queries over it.
class TableBinning {
 public:
  /// Derives a binning for every column of `table`.
  static TableBinning Compute(const Table& table, const BinningOptions& options);

  /// Reassembles a binning from per-column specs (model deserialization).
  static TableBinning FromColumns(std::vector<ColumnBinning> columns,
                                  const BinningOptions& options);

  size_t num_columns() const { return columns_.size(); }
  const ColumnBinning& column(size_t i) const {
    SUBTAB_CHECK(i < columns_.size());
    return columns_[i];
  }
  const BinningOptions& options() const { return options_; }

 private:
  std::vector<ColumnBinning> columns_;
  BinningOptions options_;
};

// -- Strategy primitives (exposed for unit testing) ---------------------------

/// Interior edges for `num_bins` equal-width bins over the value range.
std::vector<double> EqualWidthEdges(const std::vector<double>& values,
                                    uint32_t num_bins);

/// Interior edges at the 1/num_bins ... (num_bins-1)/num_bins quantiles
/// (deduplicated, so heavily-tied data can yield fewer bins).
std::vector<double> QuantileEdges(std::vector<double> values, uint32_t num_bins);

/// Interior edges at local minima of a Gaussian KDE (Silverman bandwidth,
/// 256-point grid). Picks the deepest num_bins-1 minima; falls back to
/// quantile edges when the density has no interior minima.
std::vector<double> KdeEdges(const std::vector<double>& values, uint32_t num_bins);

/// Bins one numeric column with the chosen strategy.
ColumnBinning BinNumericColumn(const Column& column, const BinningOptions& options);

/// Bins one categorical column (top-(max_cat_bins-1) categories by frequency
/// keep their own bin, the rest share "other").
ColumnBinning BinCategoricalColumn(const Column& column, const BinningOptions& options);

}  // namespace subtab

#endif  // SUBTAB_BINNING_BIN_SPEC_H_
