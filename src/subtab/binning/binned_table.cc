#include "subtab/binning/binned_table.h"

namespace subtab {

BinnedTable BinnedTable::FromTable(const Table& table, const TableBinning& binning) {
  SUBTAB_CHECK(binning.num_columns() == table.num_columns());
  BinnedTable out;
  out.num_rows_ = table.num_rows();
  out.num_columns_ = table.num_columns();
  out.binning_ = binning;
  out.cells_.resize(out.num_rows_ * out.num_columns_);
  out.column_names_.reserve(out.num_columns_);
  out.offsets_.resize(out.num_columns_);

  size_t offset = 0;
  for (size_t c = 0; c < out.num_columns_; ++c) {
    const ColumnBinning& cb = binning.column(c);
    SUBTAB_CHECK(cb.num_bins() <= kTokenMaxBins);
    out.column_names_.push_back(table.column(c).name());
    out.offsets_[c] = offset;
    offset += cb.num_bins();
  }
  out.total_bins_ = offset;

  for (size_t c = 0; c < out.num_columns_; ++c) {
    const Column& col = table.column(c);
    const ColumnBinning& cb = binning.column(c);
    const bool numeric = col.is_numeric();
    // Chunk-sequential tokenization: one pass per chunk of the (possibly
    // streaming-appended) column, independent of chunk layout.
    col.VisitRows(0, out.num_rows_,
                  [&](size_t r, const Chunk& chunk, size_t local) {
      uint32_t bin;
      if (chunk.is_null(local)) {
        bin = cb.null_bin();
      } else if (numeric) {
        bin = cb.BinOfNumeric(chunk.num_value(local));
      } else {
        bin = cb.BinOfCode(chunk.cat_code(local));
      }
      out.cells_[r * out.num_columns_ + c] = MakeToken(static_cast<uint32_t>(c), bin);
    });
  }
  return out;
}

BinnedTable BinnedTable::Compute(const Table& table, const BinningOptions& options) {
  return FromTable(table, TableBinning::Compute(table, options));
}

void BinnedTable::AppendTokenRows(const Token* tokens, size_t count) {
  SUBTAB_CHECK(num_columns_ > 0);
  cells_.insert(cells_.end(), tokens, tokens + count * num_columns_);
  num_rows_ += count;
}

Token BinnedTable::TokenOfDense(size_t dense) const {
  SUBTAB_CHECK(dense < total_bins_);
  // offsets_ is ascending; linear scan is fine at m <= a few hundred.
  size_t col = num_columns_ - 1;
  for (size_t c = 0; c + 1 < num_columns_; ++c) {
    if (dense < offsets_[c + 1]) {
      col = c;
      break;
    }
  }
  return MakeToken(static_cast<uint32_t>(col),
                   static_cast<uint32_t>(dense - offsets_[col]));
}

std::string BinnedTable::TokenLabel(Token t) const {
  const uint32_t col = TokenColumn(t);
  const uint32_t bin = TokenBin(t);
  SUBTAB_CHECK(col < num_columns_);
  const ColumnBinning& cb = binning_.column(col);
  SUBTAB_CHECK(bin < cb.num_bins());
  return column_names_[col] + "=" + cb.labels[bin];
}

}  // namespace subtab
