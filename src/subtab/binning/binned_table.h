#ifndef SUBTAB_BINNING_BINNED_TABLE_H_
#define SUBTAB_BINNING_BINNED_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "subtab/binning/bin_spec.h"
#include "subtab/table/table.h"

/// \file binned_table.h
/// The normalized, binned view T~ of a table (Algorithm 2 line 1): every cell
/// is replaced by a *token* identifying its (column, bin) pair. Association
/// rule mining, the Jaccard diversity metric, the Word2Vec corpus, and the
/// one-hot baseline all operate on this single representation.

namespace subtab {

/// Packed (column, bin) pair. 20 bits of column, 12 bits of bin.
using Token = uint32_t;

inline constexpr uint32_t kTokenBinBits = 12;
inline constexpr uint32_t kTokenMaxBins = 1u << kTokenBinBits;

inline constexpr Token MakeToken(uint32_t column, uint32_t bin) {
  return (column << kTokenBinBits) | bin;
}
inline constexpr uint32_t TokenColumn(Token t) { return t >> kTokenBinBits; }
inline constexpr uint32_t TokenBin(Token t) { return t & (kTokenMaxBins - 1); }

/// Row-major matrix of tokens plus the binning that produced it.
class BinnedTable {
 public:
  /// Bins every cell of `table` using `binning` (columns must correspond).
  static BinnedTable FromTable(const Table& table, const TableBinning& binning);

  /// Convenience: compute the binning and apply it in one step.
  static BinnedTable Compute(const Table& table, const BinningOptions& options = {});

  /// Extends the matrix with `count` pre-tokenized rows (row-major,
  /// count * num_columns() tokens). The binning spec stays frozen — this is
  /// the streaming layer's incremental maintenance path (see
  /// binning/incremental.h): appended rows are tokenized against the
  /// existing spec, so the vocabulary (total_bins) never changes.
  void AppendTokenRows(const Token* tokens, size_t count);

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return num_columns_; }

  Token token(size_t row, size_t col) const {
    SUBTAB_DCHECK(row < num_rows_ && col < num_columns_);
    return cells_[row * num_columns_ + col];
  }

  /// All tokens of one row (contiguous span of length num_columns()).
  const Token* row_data(size_t row) const {
    SUBTAB_DCHECK(row < num_rows_);
    return cells_.data() + row * num_columns_;
  }

  const TableBinning& binning() const { return binning_; }
  const std::vector<std::string>& column_names() const { return column_names_; }

  /// Bin count (incl. null bin) of a column.
  uint32_t bins_in_column(size_t col) const {
    return binning_.column(col).num_bins();
  }

  /// Total number of distinct tokens across all columns; dense ids below.
  size_t total_bins() const { return total_bins_; }

  /// Bijection between tokens and dense ids in [0, total_bins()); used as
  /// vocabulary indices by the embedding and as one-hot coordinates by the
  /// NC baseline.
  size_t DenseIndex(Token t) const {
    const uint32_t col = TokenColumn(t);
    SUBTAB_DCHECK(col < num_columns_);
    return offsets_[col] + TokenBin(t);
  }
  Token TokenOfDense(size_t dense) const;

  /// "COLUMN=bin_label" for rule and highlight display.
  std::string TokenLabel(Token t) const;

  /// True if two tokens of the same column denote the same bin — the
  /// similarity notion used by the diversity metric.
  static bool SameBin(Token a, Token b) { return a == b; }

 private:
  std::vector<Token> cells_;
  size_t num_rows_ = 0;
  size_t num_columns_ = 0;
  TableBinning binning_;
  std::vector<std::string> column_names_;
  std::vector<size_t> offsets_;  ///< Per-column start of the dense id range.
  size_t total_bins_ = 0;
};

}  // namespace subtab

#endif  // SUBTAB_BINNING_BINNED_TABLE_H_
