// Categorical binning lives in bin_spec.cc (BinCategoricalColumn); this
// translation unit exists to host future category-grouping strategies (e.g.
// semantic grouping such as Example 3.3's airlines-by-continent) behind the
// same ColumnBinning interface.
//
// Current strategy (implemented in BinCategoricalColumn):
//   * <= max_cat_bins distinct categories: one bin per category;
//   * otherwise: top (max_cat_bins - 1) categories by frequency keep a bin,
//     the tail shares an "other" bin; nulls always get their own bin.
#include "subtab/binning/bin_spec.h"
