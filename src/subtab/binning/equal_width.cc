#include <algorithm>

#include "subtab/binning/bin_spec.h"

namespace subtab {

std::vector<double> EqualWidthEdges(const std::vector<double>& values,
                                    uint32_t num_bins) {
  if (values.empty() || num_bins <= 1) return {};
  const auto [mn_it, mx_it] = std::minmax_element(values.begin(), values.end());
  const double mn = *mn_it;
  const double mx = *mx_it;
  if (mn == mx) return {};  // Constant column: a single bin.
  std::vector<double> edges;
  edges.reserve(num_bins - 1);
  const double width = (mx - mn) / static_cast<double>(num_bins);
  for (uint32_t i = 1; i < num_bins; ++i) {
    edges.push_back(mn + width * static_cast<double>(i));
  }
  return edges;
}

}  // namespace subtab
