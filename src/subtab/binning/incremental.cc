#include "subtab/binning/incremental.h"

namespace subtab {

IncrementalBinner::IncrementalBinner(const Table& base, TableBinning frozen)
    : frozen_(std::move(frozen)) {
  SUBTAB_CHECK(frozen_.num_columns() == base.num_columns());
  const size_t m = base.num_columns();
  ranges_.resize(m);
  fit_dict_size_.resize(m, 0);
  drift_.resize(m);
  for (size_t c = 0; c < m; ++c) {
    const Column& col = base.column(c);
    if (col.is_numeric()) {
      ranges_[c].any = col.NumericRange(&ranges_[c].min, &ranges_[c].max);
    } else {
      fit_dict_size_[c] = col.dictionary().size();
    }
  }
}

void IncrementalBinner::AppendRows(const Table& full, size_t row_begin,
                                   BinnedTable* binned) {
  SUBTAB_CHECK(binned != nullptr);
  SUBTAB_CHECK(full.num_columns() == frozen_.num_columns());
  SUBTAB_CHECK(row_begin <= full.num_rows());
  SUBTAB_CHECK(binned->num_rows() == row_begin);
  const size_t m = full.num_columns();
  const size_t count = full.num_rows() - row_begin;
  if (count == 0) return;

  std::vector<Token> tokens(count * m);
  for (size_t c = 0; c < m; ++c) {
    const Column& col = full.column(c);
    const ColumnBinning& cb = frozen_.column(c);
    ColumnDrift& drift = drift_[c];
    // Unseen categories fall back to the shared tail bin when the fit
    // grouped one (dictionary larger than the kept bins), else to the null
    // bin — "category unknown to the model" and "value missing" coincide.
    const bool has_other = cb.type == ColumnType::kCategorical &&
                           fit_dict_size_[c] > cb.num_value_bins;
    const uint32_t fallback_bin =
        has_other ? cb.num_value_bins - 1 : cb.null_bin();
    const bool numeric = col.is_numeric();
    // Chunk-sequential over the delta: with one chunk per appended batch the
    // whole scan usually touches exactly the batch's chunk.
    col.VisitRows(row_begin, full.num_rows(),
                  [&](size_t r, const Chunk& chunk, size_t local) {
      uint32_t bin;
      if (chunk.is_null(local)) {
        bin = cb.null_bin();
        ++drift.nulls;
      } else if (numeric) {
        const double v = chunk.num_value(local);
        bin = cb.BinOfNumeric(v);
        if (!ranges_[c].any || v < ranges_[c].min || v > ranges_[c].max) {
          ++drift.out_of_range;
        }
      } else {
        const int32_t code = chunk.cat_code(local);
        if (static_cast<size_t>(code) < fit_dict_size_[c]) {
          bin = cb.BinOfCode(code);
        } else {
          bin = fallback_bin;
          ++drift.new_categories;
        }
      }
      ++drift.appended;
      tokens[(r - row_begin) * m + c] = MakeToken(static_cast<uint32_t>(c), bin);
    });
  }
  binned->AppendTokenRows(tokens.data(), count);
  rows_appended_ += count;
}

double IncrementalBinner::OutOfRangeRate() const {
  uint64_t out = 0;
  uint64_t cells = 0;
  for (size_t c = 0; c < drift_.size(); ++c) {
    if (frozen_.column(c).type != ColumnType::kNumeric) continue;
    out += drift_[c].out_of_range;
    cells += drift_[c].appended - drift_[c].nulls;
  }
  return cells == 0 ? 0.0 : static_cast<double>(out) / static_cast<double>(cells);
}

double IncrementalBinner::NewCategoryRate() const {
  uint64_t unseen = 0;
  uint64_t cells = 0;
  for (size_t c = 0; c < drift_.size(); ++c) {
    if (frozen_.column(c).type != ColumnType::kCategorical) continue;
    unseen += drift_[c].new_categories;
    cells += drift_[c].appended - drift_[c].nulls;
  }
  return cells == 0 ? 0.0
                    : static_cast<double>(unseen) / static_cast<double>(cells);
}

void IncrementalBinner::ResetDrift() {
  for (ColumnDrift& drift : drift_) drift = ColumnDrift{};
}

void IncrementalBinner::RestoreState(DriftState state) {
  SUBTAB_CHECK(state.drift.size() == drift_.size());
  drift_ = std::move(state.drift);
  rows_appended_ = state.rows_appended;
}

}  // namespace subtab
