#ifndef SUBTAB_BINNING_INCREMENTAL_H_
#define SUBTAB_BINNING_INCREMENTAL_H_

#include <cstdint>
#include <vector>

#include "subtab/binning/binned_table.h"
#include "subtab/table/table.h"

/// \file incremental.h
/// Incremental bin maintenance for append-mostly tables (stream/). The
/// paper computes a binning once per table load (Algorithm 2 line 1); for a
/// streaming table a full re-bin per batch would re-pay exactly the cost the
/// two-phase split avoids. Instead the fit-time spec is *frozen* and
/// appended rows are tokenized against it: every new cell still maps to an
/// existing (column, bin) token, so the embedding vocabulary is unchanged
/// and the fitted cell model remains valid (fold-in).
///
/// Freezing is only sound while new data resembles the data the spec was
/// fitted on, so the binner doubles as a drift detector. Per column it
/// counts appended cells that fall outside the fit-time numeric range
/// (out-of-range) or carry a category unseen at fit time (new-category);
/// the refresh policy (stream/refresh_policy.h) reads these rates to decide
/// when the spec has gone stale and a full refit is due.

namespace subtab {

/// Drift counters of one column, accumulated since the last ResetDrift().
struct ColumnDrift {
  /// Appended cells, including nulls.
  uint64_t appended = 0;
  uint64_t nulls = 0;
  /// Numeric cells outside the fit-time observed [min, max].
  uint64_t out_of_range = 0;
  /// Categorical cells whose value was not in the fit-time dictionary.
  uint64_t new_categories = 0;
};

/// Tokenizes appended rows against a frozen binning spec and accumulates
/// per-column drift counters. Not thread-safe; the owning StreamSession
/// serializes appends.
class IncrementalBinner {
 public:
  /// Captures the fit-time reference state: the frozen spec plus, per
  /// column, the observed numeric range / dictionary size of `base` (the
  /// table the spec was computed on).
  IncrementalBinner(const Table& base, TableBinning frozen);

  /// Tokenizes rows [row_begin, full.num_rows()) of `full` — the streaming
  /// table *after* the batch was appended, so categorical codes are in the
  /// master dictionary — against the frozen spec and appends them to
  /// `binned`. Values outside the spec map conservatively: out-of-range
  /// numerics land in the unbounded edge bins, unseen categories in the
  /// "other" bin when the spec grouped a tail, else in the null bin; both
  /// bump the drift counters.
  void AppendRows(const Table& full, size_t row_begin, BinnedTable* binned);

  const TableBinning& binning() const { return frozen_; }
  const std::vector<ColumnDrift>& drift() const { return drift_; }
  uint64_t rows_appended() const { return rows_appended_; }

  /// Appended numeric cells outside the fit-time range, as a fraction of all
  /// appended non-null numeric cells (0 when none were appended).
  double OutOfRangeRate() const;
  /// Appended unseen-category cells over all appended non-null categorical
  /// cells (0 when none were appended).
  double NewCategoryRate() const;

  /// Clears the drift counters (after the spec was refreshed by a refit).
  void ResetDrift();

  /// Snapshot/restore of the accumulated counters, so a caller whose
  /// fallible follow-up work (model refresh) failed can un-account an
  /// already-tokenized batch.
  struct DriftState {
    std::vector<ColumnDrift> drift;
    uint64_t rows_appended = 0;
  };
  DriftState SaveState() const { return DriftState{drift_, rows_appended_}; }
  void RestoreState(DriftState state);

 private:
  TableBinning frozen_;
  /// Fit-time observed numeric range per column (unset when the base column
  /// had no non-null values).
  struct FitRange {
    double min = 0.0;
    double max = 0.0;
    bool any = false;
  };
  std::vector<FitRange> ranges_;
  /// Fit-time dictionary size per categorical column; codes >= this are
  /// categories first seen after the fit.
  std::vector<size_t> fit_dict_size_;
  std::vector<ColumnDrift> drift_;
  uint64_t rows_appended_ = 0;
};

}  // namespace subtab

#endif  // SUBTAB_BINNING_INCREMENTAL_H_
