#include <algorithm>
#include <cmath>

#include "subtab/binning/bin_spec.h"

namespace subtab {
namespace {

constexpr size_t kGridPoints = 256;
/// Caps the sample used to evaluate the density; KDE cost is
/// O(sample * grid) and a few thousand points pin the minima well enough.
constexpr size_t kMaxKdeSample = 4096;

/// Standard deviation of a sample (population formula; bandwidth heuristic
/// is insensitive to the n-1 correction at our sizes).
double StdDev(const std::vector<double>& v) {
  double mean = 0.0;
  for (double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  double var = 0.0;
  for (double x : v) var += (x - mean) * (x - mean);
  var /= static_cast<double>(v.size());
  return std::sqrt(var);
}

}  // namespace

std::vector<double> KdeEdges(const std::vector<double>& values, uint32_t num_bins) {
  if (values.empty() || num_bins <= 1) return {};
  const auto [mn_it, mx_it] = std::minmax_element(values.begin(), values.end());
  const double mn = *mn_it;
  const double mx = *mx_it;
  if (mn == mx) return {};

  // Deterministic stride subsample keeps evaluation bounded on big columns.
  std::vector<double> sample;
  if (values.size() > kMaxKdeSample) {
    sample.reserve(kMaxKdeSample);
    const size_t stride = values.size() / kMaxKdeSample;
    for (size_t i = 0; i < values.size() && sample.size() < kMaxKdeSample; i += stride) {
      sample.push_back(values[i]);
    }
  } else {
    sample = values;
  }

  // Silverman's rule of thumb, as used by scipy.stats.gaussian_kde.
  const double sd = StdDev(sample);
  const double n = static_cast<double>(sample.size());
  double bandwidth = 1.06 * sd * std::pow(n, -0.2);
  if (bandwidth <= 0.0) bandwidth = (mx - mn) / static_cast<double>(num_bins);

  // Density on a uniform grid over [mn, mx].
  std::vector<double> density(kGridPoints, 0.0);
  const double step = (mx - mn) / static_cast<double>(kGridPoints - 1);
  const double inv_bw = 1.0 / bandwidth;
  for (size_t g = 0; g < kGridPoints; ++g) {
    const double x = mn + step * static_cast<double>(g);
    double acc = 0.0;
    for (double v : sample) {
      const double z = (x - v) * inv_bw;
      acc += std::exp(-0.5 * z * z);
    }
    density[g] = acc;  // Normalization constant is irrelevant for minima.
  }

  // Interior local minima of the density = natural cut points between modes.
  struct Minimum {
    double x;
    double depth;
  };
  std::vector<Minimum> minima;
  for (size_t g = 1; g + 1 < kGridPoints; ++g) {
    if (density[g] <= density[g - 1] && density[g] < density[g + 1]) {
      minima.push_back({mn + step * static_cast<double>(g), density[g]});
    }
  }

  if (minima.empty()) {
    // Unimodal density: no natural cuts; fall back to quantile edges so the
    // requested bin count is still honoured.
    return QuantileEdges(values, num_bins);
  }

  // Keep the deepest (lowest-density) minima, at most num_bins - 1 of them.
  std::stable_sort(minima.begin(), minima.end(),
                   [](const Minimum& a, const Minimum& b) { return a.depth < b.depth; });
  const size_t keep = std::min<size_t>(minima.size(), num_bins - 1);
  std::vector<double> edges;
  edges.reserve(keep);
  for (size_t i = 0; i < keep; ++i) edges.push_back(minima[i].x);
  std::sort(edges.begin(), edges.end());
  return edges;
}

}  // namespace subtab
