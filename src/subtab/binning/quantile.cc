#include <algorithm>

#include "subtab/binning/bin_spec.h"

namespace subtab {

std::vector<double> QuantileEdges(std::vector<double> values, uint32_t num_bins) {
  if (values.empty() || num_bins <= 1) return {};
  std::sort(values.begin(), values.end());
  std::vector<double> edges;
  edges.reserve(num_bins - 1);
  const size_t n = values.size();
  for (uint32_t i = 1; i < num_bins; ++i) {
    // Linear-interpolation quantile at p = i / num_bins.
    const double p = static_cast<double>(i) / static_cast<double>(num_bins);
    const double pos = p * static_cast<double>(n - 1);
    const size_t lo = static_cast<size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    const double q =
        (lo + 1 < n) ? values[lo] * (1.0 - frac) + values[lo + 1] * frac : values[lo];
    // Deduplicate: heavily tied data may repeat a quantile.
    if (edges.empty() || q > edges.back()) edges.push_back(q);
  }
  // An edge equal to the minimum would create an empty first bin.
  while (!edges.empty() && edges.front() <= values.front()) {
    edges.erase(edges.begin());
  }
  return edges;
}

}  // namespace subtab
