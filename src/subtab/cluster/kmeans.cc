#include "subtab/cluster/kmeans.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

namespace subtab {

namespace {
std::atomic<bool> g_reference_kernel{false};
}  // namespace

void SetKMeansReferenceKernel(bool enable) {
  g_reference_kernel.store(enable, std::memory_order_relaxed);
}

bool KMeansReferenceKernelEnabled() {
  return g_reference_kernel.load(std::memory_order_relaxed);
}

double SquaredDistance(const float* a, const float* b, size_t dim) {
  double acc = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    const double diff = static_cast<double>(a[d]) - static_cast<double>(b[d]);
    acc += diff * diff;
  }
  return acc;
}

namespace {

/// Distances from one point to B centroids, accumulated side by side in B
/// compile-time accumulators (held in registers). Each centroid's sum adds
/// the exact same terms in the exact same order as SquaredDistance — only
/// the B *independent* chains interleave — so every output is bit-identical
/// to the one-at-a-time loop, while the B chains pipeline instead of
/// serializing on a single double-add latency chain. `cents` is the first of
/// B consecutive row-major centroids.
template <int B>
inline void DistanceBlock(const float* point, const double* cents_t,
                          size_t stride, size_t dim, double* out) {
  double acc[B] = {};
  for (size_t d = 0; d < dim; ++d) {
    const double pv = static_cast<double>(point[d]);
    const double* row = cents_t + d * stride;  // B contiguous centroids.
    for (int j = 0; j < B; ++j) {
      const double diff = pv - row[j];
      acc[j] += diff * diff;
    }
  }
  for (int j = 0; j < B; ++j) out[j] = acc[j];
}

/// Distances from `point` to all k centroids into `out`, via register
/// blocks of 8/4 with a scalar tail. `cents_t` holds the centroids
/// pre-widened to double (float -> double conversion is exact, so widening
/// once instead of per term changes nothing) and transposed to [dim][k] so
/// the block inner loop reads contiguous doubles the compiler can vectorize
/// lane-per-centroid (no reassociation within any chain); the result is
/// bit-identical to calling SquaredDistance per float centroid.
inline void DistancesToCentroids(const float* point, const double* cents_t,
                                 size_t k, size_t dim, double* out) {
  size_t c = 0;
  for (; c + 8 <= k; c += 8) {
    DistanceBlock<8>(point, cents_t + c, k, dim, out + c);
  }
  for (; c + 4 <= k; c += 4) {
    DistanceBlock<4>(point, cents_t + c, k, dim, out + c);
  }
  for (; c < k; ++c) {
    double acc = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      const double diff = static_cast<double>(point[d]) - cents_t[d * k + c];
      acc += diff * diff;
    }
    out[c] = acc;
  }
}

/// k-means++ seeding: first center uniform, then D^2-weighted.
std::vector<float> PlusPlusInit(const std::vector<float>& points, size_t dim,
                                size_t num_points, size_t k, Rng* rng) {
  std::vector<float> centroids(k * dim);
  std::vector<double> dist2(num_points, std::numeric_limits<double>::max());

  const size_t first = rng->Uniform(num_points);
  std::copy_n(points.data() + first * dim, dim, centroids.begin());

  for (size_t c = 1; c < k; ++c) {
    const float* last = centroids.data() + (c - 1) * dim;
    double total = 0.0;
    for (size_t p = 0; p < num_points; ++p) {
      const double d = SquaredDistance(points.data() + p * dim, last, dim);
      dist2[p] = std::min(dist2[p], d);
      total += dist2[p];
    }
    size_t chosen;
    if (total <= 0.0) {
      // All remaining points coincide with chosen centers.
      chosen = rng->Uniform(num_points);
    } else {
      double u = rng->UniformDouble() * total;
      chosen = num_points - 1;
      for (size_t p = 0; p < num_points; ++p) {
        u -= dist2[p];
        if (u <= 0.0) {
          chosen = p;
          break;
        }
      }
    }
    std::copy_n(points.data() + chosen * dim, dim, centroids.begin() + c * dim);
  }
  return centroids;
}

}  // namespace

namespace {

KMeansResult KMeansSingleInit(const std::vector<float>& points, size_t dim,
                              const KMeansOptions& options, uint64_t seed);

}  // namespace

KMeansResult KMeans(const std::vector<float>& points, size_t dim,
                    const KMeansOptions& options) {
  SUBTAB_CHECK(options.n_init >= 1);
  KMeansResult best;
  for (size_t init = 0; init < options.n_init; ++init) {
    KMeansResult run = KMeansSingleInit(points, dim, options,
                                        options.seed + init * 0x9e3779b9ULL);
    if (init == 0 || run.inertia < best.inertia) best = std::move(run);
  }
  return best;
}

namespace {

KMeansResult KMeansSingleInit(const std::vector<float>& points, size_t dim,
                              const KMeansOptions& options, uint64_t seed) {
  SUBTAB_CHECK(dim > 0);
  SUBTAB_CHECK(points.size() % dim == 0);
  const size_t num_points = points.size() / dim;
  const size_t k = options.k;
  SUBTAB_CHECK(k >= 1 && k <= num_points);

  Rng rng(seed);
  KMeansResult result;
  result.centroids = PlusPlusInit(points, dim, num_points, k, &rng);
  result.assignment.assign(num_points, 0);

  std::vector<double> sums(k * dim);
  std::vector<size_t> counts(k);
  std::vector<double> acc(k);            // Per-centroid distance sums.
  std::vector<double> cents_t(k * dim);  // Widened + transposed centroids.
  double prev_inertia = std::numeric_limits<double>::max();

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step: per point, all k distances via the register-blocked
    // kernel (bit-identical values, see DistanceBlock) — or the pre-refactor
    // one-chain-per-centroid loop when the reference kernel is selected —
    // then the same ascending strict-`<` scan picks the winner.
    const bool reference = KMeansReferenceKernelEnabled();
    for (size_t c = 0; c < k && !reference; ++c) {
      for (size_t d = 0; d < dim; ++d) {
        cents_t[d * k + c] = static_cast<double>(result.centroids[c * dim + d]);
      }
    }
    double inertia = 0.0;
    for (size_t p = 0; p < num_points; ++p) {
      const float* point = points.data() + p * dim;
      if (reference) {
        for (size_t c = 0; c < k; ++c) {
          acc[c] =
              SquaredDistance(point, result.centroids.data() + c * dim, dim);
        }
      } else {
        DistancesToCentroids(point, cents_t.data(), k, dim, acc.data());
      }
      double best = acc[0];
      uint32_t best_c = 0;
      for (size_t c = 1; c < k; ++c) {
        if (acc[c] < best) {
          best = acc[c];
          best_c = static_cast<uint32_t>(c);
        }
      }
      result.assignment[p] = best_c;
      inertia += best;
    }
    result.inertia = inertia;

    // Update step.
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t p = 0; p < num_points; ++p) {
      const uint32_t c = result.assignment[p];
      const float* point = points.data() + p * dim;
      for (size_t d = 0; d < dim; ++d) sums[c * dim + d] += point[d];
      ++counts[c];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Empty cluster: re-seed at the point farthest from its centroid.
        size_t far_p = 0;
        double far_d = -1.0;
        for (size_t p = 0; p < num_points; ++p) {
          const double d = SquaredDistance(
              points.data() + p * dim,
              result.centroids.data() + result.assignment[p] * dim, dim);
          if (d > far_d) {
            far_d = d;
            far_p = p;
          }
        }
        std::copy_n(points.data() + far_p * dim, dim,
                    result.centroids.begin() + c * dim);
        continue;
      }
      const double inv = 1.0 / static_cast<double>(counts[c]);
      for (size_t d = 0; d < dim; ++d) {
        result.centroids[c * dim + d] = static_cast<float>(sums[c * dim + d] * inv);
      }
    }

    // Convergence on relative inertia improvement.
    if (prev_inertia != std::numeric_limits<double>::max()) {
      const double denom = std::max(prev_inertia, 1e-12);
      if ((prev_inertia - inertia) / denom < options.tolerance) break;
    }
    prev_inertia = inertia;
  }
  return result;
}

}  // namespace

std::vector<size_t> SelectMedoids(const std::vector<float>& points, size_t dim,
                                  const KMeansResult& result) {
  const size_t num_points = points.size() / dim;
  const size_t k = result.centroids.size() / dim;
  SUBTAB_CHECK(k <= num_points);

  std::vector<size_t> medoids;
  medoids.reserve(k);
  std::vector<char> used(num_points, 0);
  for (size_t c = 0; c < k; ++c) {
    const float* centroid = result.centroids.data() + c * dim;
    double best = std::numeric_limits<double>::max();
    size_t best_p = num_points;  // Sentinel.
    // Prefer points assigned to this cluster.
    for (size_t p = 0; p < num_points; ++p) {
      if (used[p] || result.assignment[p] != c) continue;
      const double d = SquaredDistance(points.data() + p * dim, centroid, dim);
      if (d < best) {
        best = d;
        best_p = p;
      }
    }
    if (best_p == num_points) {
      // Empty (or fully used) cluster: fall back to the globally nearest
      // unused point so we still return k distinct representatives.
      for (size_t p = 0; p < num_points; ++p) {
        if (used[p]) continue;
        const double d = SquaredDistance(points.data() + p * dim, centroid, dim);
        if (d < best) {
          best = d;
          best_p = p;
        }
      }
    }
    SUBTAB_CHECK(best_p < num_points);
    used[best_p] = 1;
    medoids.push_back(best_p);
  }
  return medoids;
}

std::vector<size_t> ClusterRepresentatives(const std::vector<float>& points,
                                           size_t dim, const KMeansOptions& options) {
  const KMeansResult result = KMeans(points, dim, options);
  return SelectMedoids(points, dim, result);
}

}  // namespace subtab
