#include "subtab/cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace subtab {

double SquaredDistance(const float* a, const float* b, size_t dim) {
  double acc = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    const double diff = static_cast<double>(a[d]) - static_cast<double>(b[d]);
    acc += diff * diff;
  }
  return acc;
}

namespace {

/// k-means++ seeding: first center uniform, then D^2-weighted.
std::vector<float> PlusPlusInit(const std::vector<float>& points, size_t dim,
                                size_t num_points, size_t k, Rng* rng) {
  std::vector<float> centroids(k * dim);
  std::vector<double> dist2(num_points, std::numeric_limits<double>::max());

  const size_t first = rng->Uniform(num_points);
  std::copy_n(points.data() + first * dim, dim, centroids.begin());

  for (size_t c = 1; c < k; ++c) {
    const float* last = centroids.data() + (c - 1) * dim;
    double total = 0.0;
    for (size_t p = 0; p < num_points; ++p) {
      const double d = SquaredDistance(points.data() + p * dim, last, dim);
      dist2[p] = std::min(dist2[p], d);
      total += dist2[p];
    }
    size_t chosen;
    if (total <= 0.0) {
      // All remaining points coincide with chosen centers.
      chosen = rng->Uniform(num_points);
    } else {
      double u = rng->UniformDouble() * total;
      chosen = num_points - 1;
      for (size_t p = 0; p < num_points; ++p) {
        u -= dist2[p];
        if (u <= 0.0) {
          chosen = p;
          break;
        }
      }
    }
    std::copy_n(points.data() + chosen * dim, dim, centroids.begin() + c * dim);
  }
  return centroids;
}

}  // namespace

namespace {

KMeansResult KMeansSingleInit(const std::vector<float>& points, size_t dim,
                              const KMeansOptions& options, uint64_t seed);

}  // namespace

KMeansResult KMeans(const std::vector<float>& points, size_t dim,
                    const KMeansOptions& options) {
  SUBTAB_CHECK(options.n_init >= 1);
  KMeansResult best;
  for (size_t init = 0; init < options.n_init; ++init) {
    KMeansResult run = KMeansSingleInit(points, dim, options,
                                        options.seed + init * 0x9e3779b9ULL);
    if (init == 0 || run.inertia < best.inertia) best = std::move(run);
  }
  return best;
}

namespace {

KMeansResult KMeansSingleInit(const std::vector<float>& points, size_t dim,
                              const KMeansOptions& options, uint64_t seed) {
  SUBTAB_CHECK(dim > 0);
  SUBTAB_CHECK(points.size() % dim == 0);
  const size_t num_points = points.size() / dim;
  const size_t k = options.k;
  SUBTAB_CHECK(k >= 1 && k <= num_points);

  Rng rng(seed);
  KMeansResult result;
  result.centroids = PlusPlusInit(points, dim, num_points, k, &rng);
  result.assignment.assign(num_points, 0);

  std::vector<double> sums(k * dim);
  std::vector<size_t> counts(k);
  double prev_inertia = std::numeric_limits<double>::max();

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    double inertia = 0.0;
    for (size_t p = 0; p < num_points; ++p) {
      const float* point = points.data() + p * dim;
      double best = std::numeric_limits<double>::max();
      uint32_t best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        const double d = SquaredDistance(point, result.centroids.data() + c * dim, dim);
        if (d < best) {
          best = d;
          best_c = static_cast<uint32_t>(c);
        }
      }
      result.assignment[p] = best_c;
      inertia += best;
    }
    result.inertia = inertia;

    // Update step.
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t p = 0; p < num_points; ++p) {
      const uint32_t c = result.assignment[p];
      const float* point = points.data() + p * dim;
      for (size_t d = 0; d < dim; ++d) sums[c * dim + d] += point[d];
      ++counts[c];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Empty cluster: re-seed at the point farthest from its centroid.
        size_t far_p = 0;
        double far_d = -1.0;
        for (size_t p = 0; p < num_points; ++p) {
          const double d = SquaredDistance(
              points.data() + p * dim,
              result.centroids.data() + result.assignment[p] * dim, dim);
          if (d > far_d) {
            far_d = d;
            far_p = p;
          }
        }
        std::copy_n(points.data() + far_p * dim, dim,
                    result.centroids.begin() + c * dim);
        continue;
      }
      const double inv = 1.0 / static_cast<double>(counts[c]);
      for (size_t d = 0; d < dim; ++d) {
        result.centroids[c * dim + d] = static_cast<float>(sums[c * dim + d] * inv);
      }
    }

    // Convergence on relative inertia improvement.
    if (prev_inertia != std::numeric_limits<double>::max()) {
      const double denom = std::max(prev_inertia, 1e-12);
      if ((prev_inertia - inertia) / denom < options.tolerance) break;
    }
    prev_inertia = inertia;
  }
  return result;
}

}  // namespace

std::vector<size_t> SelectMedoids(const std::vector<float>& points, size_t dim,
                                  const KMeansResult& result) {
  const size_t num_points = points.size() / dim;
  const size_t k = result.centroids.size() / dim;
  SUBTAB_CHECK(k <= num_points);

  std::vector<size_t> medoids;
  medoids.reserve(k);
  std::vector<char> used(num_points, 0);
  for (size_t c = 0; c < k; ++c) {
    const float* centroid = result.centroids.data() + c * dim;
    double best = std::numeric_limits<double>::max();
    size_t best_p = num_points;  // Sentinel.
    // Prefer points assigned to this cluster.
    for (size_t p = 0; p < num_points; ++p) {
      if (used[p] || result.assignment[p] != c) continue;
      const double d = SquaredDistance(points.data() + p * dim, centroid, dim);
      if (d < best) {
        best = d;
        best_p = p;
      }
    }
    if (best_p == num_points) {
      // Empty (or fully used) cluster: fall back to the globally nearest
      // unused point so we still return k distinct representatives.
      for (size_t p = 0; p < num_points; ++p) {
        if (used[p]) continue;
        const double d = SquaredDistance(points.data() + p * dim, centroid, dim);
        if (d < best) {
          best = d;
          best_p = p;
        }
      }
    }
    SUBTAB_CHECK(best_p < num_points);
    used[best_p] = 1;
    medoids.push_back(best_p);
  }
  return medoids;
}

std::vector<size_t> ClusterRepresentatives(const std::vector<float>& points,
                                           size_t dim, const KMeansOptions& options) {
  const KMeansResult result = KMeans(points, dim, options);
  return SelectMedoids(points, dim, result);
}

}  // namespace subtab
