#ifndef SUBTAB_CLUSTER_KMEANS_H_
#define SUBTAB_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "subtab/util/rng.h"

/// \file kmeans.h
/// Lloyd's k-means with k-means++ seeding — the clustering step of
/// Algorithm 2 (lines 11 and 16). SubTab displays *actual* rows/columns, so
/// alongside the centroids we extract medoids: the real point nearest each
/// centroid, guaranteed distinct, which become the selected rows/columns.

namespace subtab {

struct KMeansOptions {
  size_t k = 1;
  size_t max_iterations = 50;
  /// Stop when the relative inertia improvement falls below this.
  double tolerance = 1e-6;
  /// Independent k-means++ restarts; the lowest-inertia run wins (sklearn's
  /// KMeans, which the paper uses, defaults to 10).
  size_t n_init = 1;
  uint64_t seed = 42;
};

struct KMeansResult {
  std::vector<float> centroids;      ///< Row-major k x dim.
  std::vector<uint32_t> assignment;  ///< Cluster of each input point.
  double inertia = 0.0;              ///< Sum of squared distances.
  size_t iterations = 0;
};

/// Clusters `num_points` points of dimension `dim` stored row-major in
/// `points`. Requires 1 <= k <= num_points.
KMeansResult KMeans(const std::vector<float>& points, size_t dim,
                    const KMeansOptions& options);

/// For each cluster, the index of the point nearest its centroid ("centroid
/// selection", Algorithm 2 lines 12/17). The returned k indices are distinct.
std::vector<size_t> SelectMedoids(const std::vector<float>& points, size_t dim,
                                  const KMeansResult& result);

/// Convenience: cluster and return medoid indices directly.
std::vector<size_t> ClusterRepresentatives(const std::vector<float>& points,
                                           size_t dim, const KMeansOptions& options);

/// Squared Euclidean distance between two dim-vectors.
double SquaredDistance(const float* a, const float* b, size_t dim);

/// Switches subsequent KMeans calls to the pre-refactor assignment loop (one
/// serial double-accumulation chain per centroid) instead of the
/// register-blocked kernel. The two are bit-identical by construction — each
/// centroid's sum adds the same terms in the same order; cluster_test pins
/// the equivalence — and the slow loop is kept so the serving benchmark can
/// measure the kernel optimization's before/after and differential tests
/// can cross-check. Process-wide; flip only between runs, not concurrently
/// with them.
void SetKMeansReferenceKernel(bool enable);
bool KMeansReferenceKernelEnabled();

}  // namespace subtab

#endif  // SUBTAB_CLUSTER_KMEANS_H_
