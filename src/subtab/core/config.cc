#include "subtab/core/config.h"

#include "subtab/util/string_util.h"

namespace subtab {

Status SubTabConfig::Validate() const {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (l < 1) return Status::InvalidArgument("l must be >= 1");
  if (alpha < 0.0 || alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in [0, 1]");
  }
  if (target_columns.size() > l) {
    return Status::InvalidArgument(
        StrFormat("|U*| = %zu target columns exceed l = %zu", target_columns.size(), l));
  }
  if (binning.num_bins < 2) {
    return Status::InvalidArgument("binning.num_bins must be >= 2");
  }
  if (embedding.dim == 0) {
    return Status::InvalidArgument("embedding.dim must be >= 1");
  }
  if (corpus.max_sentences == 0) {
    return Status::InvalidArgument("corpus.max_sentences must be >= 1");
  }
  return Status::Ok();
}

}  // namespace subtab
