#ifndef SUBTAB_CORE_CONFIG_H_
#define SUBTAB_CORE_CONFIG_H_

#include <string>
#include <vector>

#include "subtab/binning/bin_spec.h"
#include "subtab/embed/corpus.h"
#include "subtab/embed/word2vec.h"
#include "subtab/util/status.h"

/// \file config.h
/// Configuration of the SubTab pipeline (paper defaults throughout): the
/// sub-table dimensions k x l, the coverage/diversity balance α, binning,
/// corpus, and embedding parameters, plus optional target columns U*.

namespace subtab {

/// All knobs of the SubTab algorithm.
struct SubTabConfig {
  /// Sub-table dimensions (paper displays 10 x 10 by default).
  size_t k = 10;
  size_t l = 10;

  /// Coverage/diversity balance in Eq. 3 (paper default 0.5). Only used when
  /// *evaluating* sub-tables; the selection algorithm itself is metric-free.
  double alpha = 0.5;

  /// Target columns U* that must appear in the sub-table (may be empty).
  std::vector<std::string> target_columns;

  BinningOptions binning;
  CorpusOptions corpus;
  Word2VecOptions embedding;

  /// Master seed for every stochastic stage.
  uint64_t seed = 42;

  /// Checks internal consistency (k, l >= 1; α in [0,1]; |U*| <= l).
  Status Validate() const;
};

}  // namespace subtab

#endif  // SUBTAB_CORE_CONFIG_H_
