#include "subtab/core/fingerprint.h"

#include <cmath>
#include <cstring>

#include "subtab/util/hash.h"

namespace subtab {
namespace {

uint64_t HashDoubleBits(uint64_t h, double v) {
  // Canonicalize NaNs and -0.0 so equal-valued tables hash equally.
  if (std::isnan(v)) return HashCombine(h, 0x7ff8000000000000ULL);
  if (v == 0.0) v = 0.0;
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return HashCombine(h, bits);
}

uint64_t HashColumn(uint64_t h, const Column& col) {
  h = HashCombine(h, HashString(col.name()));
  h = HashCombine(h, static_cast<uint64_t>(col.type()));
  const size_t n = col.size();
  h = HashCombine(h, n);
  // Chunk-sequential scan: hashing is value-based, so the result is
  // independent of the physical chunk layout (a chunked table and its flat
  // rebuild hash identically).
  if (col.is_numeric()) {
    col.VisitRows(0, n, [&h](size_t, const Chunk& chunk, size_t local) {
      // The presence flag disambiguates null from any value whose canonical
      // bit pattern is 0 (i.e. 0.0).
      if (chunk.is_null(local)) {
        h = HashCombine(h, 0);
      } else {
        h = HashDoubleBits(HashCombine(h, 1), chunk.num_value(local));
      }
    });
  } else {
    // Hash the dictionary once, then the cheap per-cell codes. Dictionary
    // codes are first-seen order across the whole chunk sequence, so equal
    // column contents (values + order) produce equal hashes.
    for (const std::string& word : col.dictionary()) {
      h = HashCombine(h, HashString(word));
    }
    col.VisitRows(0, n, [&h](size_t, const Chunk& chunk, size_t local) {
      h = chunk.is_null(local)
              ? HashCombine(h, 0)
              : HashCombine(h, static_cast<uint64_t>(chunk.cat_code(local)) + 1);
    });
  }
  return h;
}

}  // namespace

uint64_t TableSliceFingerprint(const Table& table, size_t row_begin,
                               size_t row_end) {
  SUBTAB_CHECK(row_begin <= row_end && row_end <= table.num_rows());
  uint64_t h = HashString("subtab.slice.v1");
  h = HashCombine(h, row_end - row_begin);
  h = HashCombine(h, table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    h = HashCombine(h, HashString(col.name()));
    h = HashCombine(h, static_cast<uint64_t>(col.type()));
    const bool numeric = col.is_numeric();
    const auto& dict = col.dictionary();
    col.VisitRows(row_begin, row_end,
                  [&](size_t, const Chunk& chunk, size_t local) {
      if (chunk.is_null(local)) {
        h = HashCombine(h, 0);
      } else if (numeric) {
        h = HashDoubleBits(HashCombine(h, 1), chunk.num_value(local));
      } else {
        // By value, not dictionary code: codes are first-seen order in the
        // *containing* table, so they differ between a standalone batch and
        // the same rows appended after a larger dictionary.
        h = HashCombine(HashCombine(h, 1),
                        HashString(dict[static_cast<size_t>(
                            chunk.cat_code(local))]));
      }
    });
  }
  return h;
}

uint64_t ChainFingerprint(uint64_t parent_fp, uint64_t delta_fp,
                          uint64_t version) {
  uint64_t h = HashString("subtab.chain.v1");
  h = HashCombine(h, parent_fp);
  h = HashCombine(h, delta_fp);
  h = HashCombine(h, version);
  return h;
}

uint64_t TableFingerprint(const Table& table) {
  uint64_t h = HashString("subtab.table.v1");
  h = HashCombine(h, table.num_rows());
  h = HashCombine(h, table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    h = HashColumn(h, table.column(c));
  }
  return h;
}

uint64_t ConfigFingerprint(const SubTabConfig& config) {
  uint64_t h = HashString("subtab.config.v1");
  h = HashCombine(h, config.k);
  h = HashCombine(h, config.l);
  h = HashDoubleBits(h, config.alpha);
  h = HashCombine(h, config.target_columns.size());
  for (const std::string& name : config.target_columns) {
    h = HashCombine(h, HashString(name));
  }
  h = HashCombine(h, static_cast<uint64_t>(config.binning.strategy));
  h = HashCombine(h, config.binning.num_bins);
  h = HashCombine(h, config.binning.max_cat_bins);
  h = HashCombine(h, config.corpus.max_sentences);
  h = HashCombine(h, config.corpus.tuple_sentences);
  h = HashCombine(h, config.corpus.column_sentences);
  h = HashCombine(h, config.embedding.dim);
  h = HashCombine(h, config.embedding.epochs);
  h = HashCombine(h, config.embedding.negative);
  h = HashDoubleBits(h, config.embedding.initial_lr);
  h = HashDoubleBits(h, config.embedding.min_lr);
  h = HashCombine(h, config.embedding.window);
  h = HashCombine(h, config.embedding.max_pairs_per_token);
  h = HashCombine(h, config.embedding.num_threads);
  h = HashCombine(h, config.embedding.seed);
  h = HashCombine(h, config.seed);
  return h;
}

uint64_t ModelKey::Digest() const {
  uint64_t d = HashCombine(table_fp, config_fp);
  // Version 0 (static tables) keeps the pre-streaming digest, so existing
  // on-disk model artifacts stay addressable by name; refresh generation 0
  // (every non-background publication) likewise folds nothing in.
  if (version != 0) d = HashCombine(d, version);
  if (refresh != 0) d = HashCombine(HashCombine(d, 0x5f9e1a7b3c2d4e6fULL), refresh);
  return d;
}

ModelKey MakeModelKey(const Table& table, const SubTabConfig& config) {
  return ModelKey{TableFingerprint(table), ConfigFingerprint(config)};
}

}  // namespace subtab
