#ifndef SUBTAB_CORE_FINGERPRINT_H_
#define SUBTAB_CORE_FINGERPRINT_H_

#include <cstdint>

#include "subtab/core/config.h"
#include "subtab/table/table.h"

/// \file fingerprint.h
/// Stable identity for the serving layer (service/). Two sessions that open
/// the same table with the same configuration must share one pre-processing
/// pass, so the model registry keys fitted models by
/// (TableFingerprint, ConfigFingerprint). Both hashes are content-based and
/// persistent: they also name on-disk model-cache artifacts, so they must be
/// identical across processes and versions (see util/hash.h).

namespace subtab {

/// Content hash of a table: schema (names + types, order-sensitive), row
/// count, and every cell (value bits, null flags, dictionary strings).
/// Computed in one pass; O(rows * cols) but branch-light — far cheaper than
/// the pre-processing it deduplicates.
uint64_t TableFingerprint(const Table& table);

/// Hash of every field of the config that influences a fitted SubTab:
/// dimensions, alpha, target columns, binning/corpus/embedding options, seed.
uint64_t ConfigFingerprint(const SubTabConfig& config);

/// Combined model identity used by the registry and model-cache file names.
struct ModelKey {
  uint64_t table_fp = 0;
  uint64_t config_fp = 0;

  bool operator==(const ModelKey& other) const {
    return table_fp == other.table_fp && config_fp == other.config_fp;
  }
  /// Single 64-bit digest (cache-shard index, file names).
  uint64_t Digest() const;
};

ModelKey MakeModelKey(const Table& table, const SubTabConfig& config);

}  // namespace subtab

#endif  // SUBTAB_CORE_FINGERPRINT_H_
