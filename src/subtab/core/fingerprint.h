#ifndef SUBTAB_CORE_FINGERPRINT_H_
#define SUBTAB_CORE_FINGERPRINT_H_

#include <cstdint>

#include "subtab/core/config.h"
#include "subtab/table/table.h"

/// \file fingerprint.h
/// Stable identity for the serving layer (service/). Two sessions that open
/// the same table with the same configuration must share one pre-processing
/// pass, so the model registry keys fitted models by
/// (TableFingerprint, ConfigFingerprint). Both hashes are content-based and
/// persistent: they also name on-disk model-cache artifacts, so they must be
/// identical across processes and versions (see util/hash.h).
///
/// Streaming tables (stream/) need identity for *evolving* content. A full
/// re-hash per appended batch would defeat incremental maintenance, so a
/// stream's version-v fingerprint is a chain: the base table's fingerprint
/// folded with each batch's slice fingerprint in append order
/// (ChainFingerprint). Two streams that started from the same base and
/// ingested the same batches in the same order agree on every version's
/// fingerprint across processes — the property the (table fp, version)-keyed
/// registry relies on.

namespace subtab {

/// Content hash of a table: schema (names + types, order-sensitive), row
/// count, and every cell (value bits, null flags, dictionary strings).
/// Computed in one pass; O(rows * cols) but branch-light — far cheaper than
/// the pre-processing it deduplicates.
uint64_t TableFingerprint(const Table& table);

/// Content hash of the rows [row_begin, row_end) only. Unlike
/// TableFingerprint it hashes categorical cells by their string value (not
/// dictionary code), so the hash of a batch equals the hash of the same rows
/// after they were appended to a table with a larger dictionary. O(rows in
/// slice); the streaming layer hashes each appended batch exactly once.
///
/// All table hashes are value-based and scan chunk-sequentially
/// (Column::VisitRows), so they are independent of the physical chunk
/// layout: a chunked table, its Flatten()/Rechunked() copies, and a flat
/// rebuild of the same rows all produce identical digests. Streaming version
/// digests therefore survived the chunked-store refactor unchanged — each
/// appended batch becomes one chunk whose slice hash is folded into the
/// chain exactly as before.
uint64_t TableSliceFingerprint(const Table& table, size_t row_begin,
                               size_t row_end);

/// Folds one appended batch into a chained stream fingerprint:
/// parent version fp x (delta fp, version index) -> child version fp.
/// Order-sensitive, so reordered batches yield different chains.
uint64_t ChainFingerprint(uint64_t parent_fp, uint64_t delta_fp,
                          uint64_t version);

/// Hash of every field of the config that influences a fitted SubTab:
/// dimensions, alpha, target columns, binning/corpus/embedding options, seed.
uint64_t ConfigFingerprint(const SubTabConfig& config);

/// Combined model identity used by the registry and model-cache file names.
/// Static tables have version 0; a streaming table's version-v model carries
/// v plus the chained content fingerprint in `table_fp`. Version 0 digests
/// are identical to the pre-streaming scheme, so persisted model artifacts
/// keep their file names.
struct ModelKey {
  uint64_t table_fp = 0;
  uint64_t config_fp = 0;
  uint64_t version = 0;
  /// Model generation at an unchanged table version: 0 for the publication
  /// that accompanied the content change, +1 per background-refresh upgrade
  /// (stream/stream_session.h) that retrained the embedding over the *same*
  /// rows. Distinct generations select differently, so they must not share
  /// registry entries or selection-cache digests; publication order at one
  /// version is (version, refresh) lexicographic.
  uint64_t refresh = 0;

  bool operator==(const ModelKey& other) const {
    return table_fp == other.table_fp && config_fp == other.config_fp &&
           version == other.version && refresh == other.refresh;
  }
  /// True when this key's publication supersedes `other`'s on the same
  /// stream: newer content version, or a later refresh generation of the
  /// same version.
  bool Supersedes(const ModelKey& other) const {
    return version != other.version ? version > other.version
                                    : refresh > other.refresh;
  }
  /// Single 64-bit digest (cache-shard index, file names).
  uint64_t Digest() const;
};

ModelKey MakeModelKey(const Table& table, const SubTabConfig& config);

}  // namespace subtab

#endif  // SUBTAB_CORE_FINGERPRINT_H_
