#include "subtab/core/highlight.h"

#include <algorithm>

#include "subtab/util/string_util.h"

namespace subtab {

std::vector<RowHighlight> HighlightRules(const BinnedTable& binned,
                                         const RuleSet& rules, const SubTabView& view) {
  std::vector<RowHighlight> highlights;
  if (rules.empty()) return highlights;

  CoverageEvaluator evaluator(binned, rules);
  const std::vector<size_t> covered =
      evaluator.CoveredRules(view.row_ids, view.col_ids);
  if (covered.empty()) return highlights;

  // Source column id -> position within the view.
  std::vector<int> col_pos(binned.num_columns(), -1);
  for (size_t i = 0; i < view.col_ids.size(); ++i) {
    col_pos[view.col_ids[i]] = static_cast<int>(i);
  }

  for (size_t vr = 0; vr < view.row_ids.size(); ++vr) {
    const size_t source_row = view.row_ids[vr];
    // Largest covered rule that holds for this row.
    size_t best_rule = rules.size();
    size_t best_size = 0;
    for (size_t ri : covered) {
      if (!evaluator.rule_rows(ri).Test(source_row)) continue;
      const size_t size = rules.rules[ri].size();
      if (size > best_size) {
        best_size = size;
        best_rule = ri;
      }
    }
    if (best_rule == rules.size()) continue;

    RowHighlight h;
    h.view_row = vr;
    h.rule_index = best_rule;
    for (uint32_t c : evaluator.rule_columns(best_rule)) {
      SUBTAB_CHECK(col_pos[c] >= 0);  // Covered => all rule columns visible.
      h.view_cols.push_back(static_cast<size_t>(col_pos[c]));
    }
    std::sort(h.view_cols.begin(), h.view_cols.end());
    h.rule_text = rules.rules[best_rule].ToString(binned);
    highlights.push_back(std::move(h));
  }
  return highlights;
}

std::string RenderHighlighted(const SubTabView& view,
                              const std::vector<RowHighlight>& highlights) {
  const Table& t = view.table;
  const size_t rows = t.num_rows();
  const size_t cols = t.num_columns();

  // Rotating ANSI background colors, one per highlighted row (Fig. 1 style).
  static const char* kColors[] = {"\x1b[43m", "\x1b[44m", "\x1b[42m",
                                  "\x1b[45m", "\x1b[46m"};
  constexpr const char* kReset = "\x1b[0m";

  std::vector<std::vector<char>> mark(rows, std::vector<char>(cols, 0));
  std::vector<int> row_color(rows, -1);
  for (size_t i = 0; i < highlights.size(); ++i) {
    const RowHighlight& h = highlights[i];
    row_color[h.view_row] = static_cast<int>(i % 5);
    for (size_t c : h.view_cols) mark[h.view_row][c] = 1;
  }

  // Column widths from plain text.
  std::vector<size_t> width(cols);
  std::vector<std::vector<std::string>> cells(rows, std::vector<std::string>(cols));
  for (size_t c = 0; c < cols; ++c) width[c] = t.column(c).name().size();
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      cells[r][c] = t.column(c).ToDisplay(r);
      width[c] = std::max(width[c], cells[r][c].size());
    }
  }

  std::string out;
  for (size_t c = 0; c < cols; ++c) {
    out += "| " + t.column(c).name();
    out.append(width[c] - t.column(c).name().size() + 1, ' ');
  }
  out += "|\n";
  for (size_t c = 0; c < cols; ++c) {
    out += "|";
    out.append(width[c] + 2, '-');
  }
  out += "|\n";
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      out += "| ";
      const std::string& text = cells[r][c];
      if (mark[r][c]) {
        out += kColors[row_color[r]];
        out += text;
        out += kReset;
      } else {
        out += text;
      }
      out.append(width[c] - text.size() + 1, ' ');
    }
    out += "|\n";
  }
  if (!highlights.empty()) {
    out += "\nHighlighted rules (one per row):\n";
    for (size_t i = 0; i < highlights.size(); ++i) {
      out += StrFormat("  row %zu: %s\n", highlights[i].view_row,
                       highlights[i].rule_text.c_str());
    }
  }
  return out;
}

}  // namespace subtab
