#ifndef SUBTAB_CORE_HIGHLIGHT_H_
#define SUBTAB_CORE_HIGHLIGHT_H_

#include <string>
#include <vector>

#include "subtab/core/subtab.h"
#include "subtab/metrics/cell_coverage.h"
#include "subtab/rules/rule.h"

/// \file highlight.h
/// The optional rule-highlighting UI of Figs. 1 and 3: for every displayed
/// row, pick (at most) one association rule that the sub-table covers and
/// that holds for the row — preferring larger rules — and mark the cells it
/// describes. "Many more rules hold; to avoid visual clutter we only
/// highlight one rule per row."

namespace subtab {

/// The highlighted rule of one displayed row.
struct RowHighlight {
  size_t view_row = 0;            ///< Index into the sub-table's rows.
  size_t rule_index = 0;          ///< Index into the rule set.
  std::vector<size_t> view_cols;  ///< Highlighted columns (sub-table positions).
  std::string rule_text;          ///< Human-readable rule.
};

/// Computes at most one highlight per displayed row. Rules must have been
/// mined over the same binned table.
std::vector<RowHighlight> HighlightRules(const BinnedTable& binned,
                                         const RuleSet& rules, const SubTabView& view);

/// Renders the sub-table with ANSI colors marking highlighted cells, plus a
/// legend listing each row's rule (for terminal examples).
std::string RenderHighlighted(const SubTabView& view,
                              const std::vector<RowHighlight>& highlights);

}  // namespace subtab

#endif  // SUBTAB_CORE_HIGHLIGHT_H_
