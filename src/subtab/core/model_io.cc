#include "subtab/core/model_io.h"

#include <cstring>
#include <fstream>

#include "subtab/util/string_util.h"

namespace subtab {
namespace {

constexpr char kMagic[8] = {'S', 'T', 'A', 'B', 'M', 'O', 'D', 'L'};
constexpr uint32_t kVersion = 1;

// ---- Primitive writers/readers (little-endian host assumed; the format is
// ---- a local cache, not an interchange format). ---------------------------

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

void WriteString(std::ostream& out, const std::string& s) {
  WritePod<uint64_t>(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadString(std::istream& in, std::string* s) {
  uint64_t size = 0;
  if (!ReadPod(in, &size)) return false;
  if (size > (1ull << 30)) return false;  // Corrupt-length guard.
  s->resize(size);
  in.read(s->data(), static_cast<std::streamsize>(size));
  return static_cast<bool>(in);
}

template <typename T>
void WriteVector(std::ostream& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  WritePod<uint64_t>(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
bool ReadVector(std::istream& in, std::vector<T>* v) {
  static_assert(std::is_trivially_copyable_v<T>);
  uint64_t size = 0;
  if (!ReadPod(in, &size)) return false;
  if (size > (1ull << 32)) return false;
  v->resize(size);
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(size * sizeof(T)));
  return static_cast<bool>(in);
}

void WriteColumnBinning(std::ostream& out, const ColumnBinning& cb) {
  WritePod<uint8_t>(out, cb.type == ColumnType::kNumeric ? 0 : 1);
  WriteVector(out, cb.edges);
  WriteVector(out, cb.code_to_bin);
  WritePod<uint32_t>(out, cb.num_value_bins);
  WritePod<uint64_t>(out, cb.labels.size());
  for (const std::string& label : cb.labels) WriteString(out, label);
}

bool ReadColumnBinning(std::istream& in, ColumnBinning* cb) {
  uint8_t type = 0;
  if (!ReadPod(in, &type)) return false;
  cb->type = type == 0 ? ColumnType::kNumeric : ColumnType::kCategorical;
  if (!ReadVector(in, &cb->edges)) return false;
  if (!ReadVector(in, &cb->code_to_bin)) return false;
  if (!ReadPod(in, &cb->num_value_bins)) return false;
  uint64_t labels = 0;
  if (!ReadPod(in, &labels)) return false;
  if (labels > (1ull << 24)) return false;
  cb->labels.resize(labels);
  for (auto& label : cb->labels) {
    if (!ReadString(in, &label)) return false;
  }
  return true;
}

}  // namespace

Status SaveModel(const PreprocessedTable& pre, const Table& table,
                 const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::InvalidArgument("cannot open '" + path + "' for writing");

  out.write(kMagic, sizeof(kMagic));
  WritePod<uint32_t>(out, kVersion);

  // Schema fingerprint for load-time validation.
  WritePod<uint64_t>(out, table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    WriteString(out, table.column(c).name());
    WritePod<uint8_t>(out, table.column(c).is_numeric() ? 0 : 1);
  }

  // Binning.
  const TableBinning& binning = pre.binned().binning();
  const BinningOptions& options = binning.options();
  WritePod<uint8_t>(out, static_cast<uint8_t>(options.strategy));
  WritePod<uint32_t>(out, options.num_bins);
  WritePod<uint32_t>(out, options.max_cat_bins);
  WritePod<uint64_t>(out, binning.num_columns());
  for (size_t c = 0; c < binning.num_columns(); ++c) {
    WriteColumnBinning(out, binning.column(c));
  }

  // Embedding.
  const Word2VecModel& model = pre.cell_model().word2vec();
  WritePod<uint64_t>(out, model.vocab_size());
  WritePod<uint64_t>(out, model.dim());
  for (size_t w = 0; w < model.vocab_size(); ++w) {
    const auto v = model.vector(w);
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(float)));
  }

  if (!out) return Status::Internal("write failed for '" + path + "'");
  return Status::Ok();
}

Result<PreprocessedTable> LoadModel(const Table& table, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open model file '" + path + "'");

  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path + "' is not a subtab model file");
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version) || version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported model version %u in '%s'", version, path.c_str()));
  }

  // Schema validation.
  uint64_t columns = 0;
  if (!ReadPod(in, &columns)) return Status::InvalidArgument("truncated model file");
  if (columns != table.num_columns()) {
    return Status::FailedPrecondition(
        StrFormat("model was trained on %llu columns, table has %zu",
                  static_cast<unsigned long long>(columns), table.num_columns()));
  }
  for (size_t c = 0; c < columns; ++c) {
    std::string name;
    uint8_t type = 0;
    if (!ReadString(in, &name) || !ReadPod(in, &type)) {
      return Status::InvalidArgument("truncated model file");
    }
    if (name != table.column(c).name()) {
      return Status::FailedPrecondition(
          StrFormat("column %zu mismatch: model '%s' vs table '%s'", c, name.c_str(),
                    table.column(c).name().c_str()));
    }
    const bool numeric = type == 0;
    if (numeric != table.column(c).is_numeric()) {
      return Status::FailedPrecondition("column type mismatch for '" + name + "'");
    }
  }

  // Binning.
  uint8_t strategy = 0;
  BinningOptions options;
  uint64_t binning_columns = 0;
  if (!ReadPod(in, &strategy) || !ReadPod(in, &options.num_bins) ||
      !ReadPod(in, &options.max_cat_bins) || !ReadPod(in, &binning_columns)) {
    return Status::InvalidArgument("truncated model file");
  }
  options.strategy = static_cast<BinningStrategy>(strategy);
  if (binning_columns != columns) {
    return Status::InvalidArgument("corrupt model: binning column count mismatch");
  }
  std::vector<ColumnBinning> column_binnings(binning_columns);
  for (auto& cb : column_binnings) {
    if (!ReadColumnBinning(in, &cb)) {
      return Status::InvalidArgument("truncated model file (binning)");
    }
  }
  TableBinning binning = TableBinning::FromColumns(std::move(column_binnings), options);
  BinnedTable binned = BinnedTable::FromTable(table, binning);

  // Embedding.
  uint64_t vocab = 0;
  uint64_t dim = 0;
  if (!ReadPod(in, &vocab) || !ReadPod(in, &dim) || dim == 0) {
    return Status::InvalidArgument("truncated model file (embedding header)");
  }
  if (vocab != binned.total_bins()) {
    return Status::InvalidArgument("corrupt model: vocabulary/binning mismatch");
  }
  std::vector<float> vectors(vocab * dim);
  in.read(reinterpret_cast<char*>(vectors.data()),
          static_cast<std::streamsize>(vectors.size() * sizeof(float)));
  if (!in) return Status::InvalidArgument("truncated model file (embedding)");

  PreprocessTimings timings;  // Loading costs ~nothing; leave zeros.
  return PreprocessedTable(std::move(binned),
                           Word2VecModel::FromVectors(dim, std::move(vectors)),
                           timings);
}

}  // namespace subtab
