#ifndef SUBTAB_CORE_MODEL_IO_H_
#define SUBTAB_CORE_MODEL_IO_H_

#include <string>

#include "subtab/core/preprocess.h"

/// \file model_io.h
/// Persistence for the pre-processing artifact. The paper's architecture
/// amortizes pre-processing (binning + embedding training) over an entire
/// EDA session (Fig. 1, Fig. 9); persisting the artifact extends that
/// amortization across sessions: an analyst re-opening the same table
/// re-loads the model in milliseconds instead of re-training.
///
/// Format: little-endian binary, magic "STABMODL", version 1. Contains the
/// per-column binning specs (edges / category-to-bin maps / labels) and the
/// embedding matrix. The raw table itself is NOT stored — the caller
/// supplies it on load, and the model is validated against its schema
/// (column count, names order-sensitive, types).

namespace subtab {

/// Serializes the pre-processing artifact of `pre` to `path`.
/// `column_names` must be the source table's column names (stored for
/// validation on load); typically `table.schema()` provides them.
Status SaveModel(const PreprocessedTable& pre, const Table& table,
                 const std::string& path);

/// Loads a model saved by SaveModel and re-binds it to `table` (which must
/// match the schema recorded at save time). The binned token matrix is
/// rebuilt from the stored binning; the embedding is loaded verbatim.
Result<PreprocessedTable> LoadModel(const Table& table, const std::string& path);

}  // namespace subtab

#endif  // SUBTAB_CORE_MODEL_IO_H_
