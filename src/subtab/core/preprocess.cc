#include "subtab/core/preprocess.h"

#include "subtab/util/logging.h"
#include "subtab/util/stopwatch.h"

namespace subtab {

PreprocessedTable::PreprocessedTable(BinnedTable binned, Word2VecModel model,
                                     PreprocessTimings timings)
    : binned_(std::make_unique<BinnedTable>(std::move(binned))),
      model_(binned_.get(), std::move(model)),
      timings_(timings) {}

PreprocessedTable Preprocess(const Table& table, const SubTabConfig& config) {
  Stopwatch total;
  PreprocessTimings timings;

  // Line 1: normalize and bin. (Value normalization happens at ingestion in
  // the table layer; binning is computed here.)
  Stopwatch phase;
  BinnedTable binned = BinnedTable::Compute(table, config.binning);
  timings.binning_seconds = phase.ElapsedSeconds();

  // Line 2: rows and columns of T as sentences.
  phase.Reset();
  Rng rng(config.seed);
  const Corpus corpus = Corpus::Build(binned, config.corpus, &rng);
  timings.corpus_seconds = phase.ElapsedSeconds();

  // Line 3: Word2Vec(S, windowSize = max{n, m}).
  phase.Reset();
  Word2VecOptions w2v = config.embedding;
  w2v.seed = config.seed;
  Word2VecModel model = Word2VecModel::Train(corpus, w2v);
  timings.training_seconds = phase.ElapsedSeconds();

  timings.total_seconds = total.ElapsedSeconds();
  SUBTAB_LOG_STREAM(Info) << "preprocess: bin=" << timings.binning_seconds
                          << "s corpus=" << timings.corpus_seconds
                          << "s train=" << timings.training_seconds << "s";
  return PreprocessedTable(std::move(binned), std::move(model), timings);
}

PreprocessedTable PreprocessWithModel(const Table& table, const SubTabConfig& config,
                                      Word2VecModel model) {
  Stopwatch total;
  PreprocessTimings timings;
  Stopwatch phase;
  BinnedTable binned = BinnedTable::Compute(table, config.binning);
  timings.binning_seconds = phase.ElapsedSeconds();
  timings.total_seconds = total.ElapsedSeconds();
  return PreprocessedTable(std::move(binned), std::move(model), timings);
}

}  // namespace subtab
