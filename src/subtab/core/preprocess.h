#ifndef SUBTAB_CORE_PREPROCESS_H_
#define SUBTAB_CORE_PREPROCESS_H_

#include <memory>

#include "subtab/binning/binned_table.h"
#include "subtab/core/config.h"
#include "subtab/embed/cell_model.h"

/// \file preprocess.h
/// The pre-processing phase of Algorithm 2 (lines 1–4): normalize & bin the
/// raw table, build the tabular-sentence corpus, train the cell embedding.
/// Executed once when the table is loaded; every subsequent query display
/// reuses the result (red arrows of Fig. 1).

namespace subtab {

/// Wall-clock breakdown of the pre-processing phase (Fig. 9).
struct PreprocessTimings {
  double binning_seconds = 0.0;
  double corpus_seconds = 0.0;
  double training_seconds = 0.0;
  double total_seconds = 0.0;
};

/// The immutable artifact of pre-processing: the binned token matrix and the
/// cell-to-vector model M over it.
class PreprocessedTable {
 public:
  PreprocessedTable(BinnedTable binned, Word2VecModel model, PreprocessTimings timings);

  // Movable (the cell model's internal pointer stays valid because the
  // binned table lives behind a unique_ptr).
  PreprocessedTable(PreprocessedTable&&) = default;
  PreprocessedTable& operator=(PreprocessedTable&&) = default;

  const BinnedTable& binned() const { return *binned_; }
  const CellModel& cell_model() const { return model_; }
  const PreprocessTimings& timings() const { return timings_; }

 private:
  std::unique_ptr<BinnedTable> binned_;
  CellModel model_;
  PreprocessTimings timings_;
};

/// Runs the pre-processing phase on `table`.
PreprocessedTable Preprocess(const Table& table, const SubTabConfig& config);

/// Variant that reuses an external embedding trainer (the EmbDI baseline
/// plugs in here): the caller supplies a token-space model.
PreprocessedTable PreprocessWithModel(const Table& table, const SubTabConfig& config,
                                      Word2VecModel model);

}  // namespace subtab

#endif  // SUBTAB_CORE_PREPROCESS_H_
