#include "subtab/core/select.h"

#include <algorithm>
#include <numeric>

#include "subtab/cluster/kmeans.h"
#include "subtab/util/stopwatch.h"

namespace subtab {
namespace {

std::vector<size_t> AllIndices(size_t n) {
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  return idx;
}

}  // namespace

Selection SelectSubTable(const PreprocessedTable& pre, size_t k, size_t l,
                         const SelectionScope& scope, uint64_t seed) {
  Stopwatch watch;
  const BinnedTable& binned = pre.binned();
  const CellModel& model = pre.cell_model();

  // Line 6-7: restrict to the query result's rows/columns.
  const std::vector<size_t> rows =
      scope.rows.empty() ? AllIndices(binned.num_rows()) : scope.rows;
  const std::vector<size_t> cols =
      scope.cols.empty() ? AllIndices(binned.num_columns()) : scope.cols;
  SUBTAB_CHECK(!rows.empty());
  SUBTAB_CHECK(!cols.empty());

  // Targets restricted to visible columns, deduplicated.
  std::vector<size_t> targets;
  for (size_t t : scope.target_cols) {
    if (std::find(cols.begin(), cols.end(), t) != cols.end() &&
        std::find(targets.begin(), targets.end(), t) == targets.end()) {
      targets.push_back(t);
    }
  }

  Selection out;
  const size_t k_eff = std::min(k, rows.size());
  const size_t l_eff = std::max(std::min(l, cols.size()), std::min(targets.size(), l));

  // ---- Row selection (lines 8-12). --------------------------------------
  if (k_eff == rows.size()) {
    out.row_ids = rows;
  } else {
    const std::vector<float> row_matrix = model.RowMatrix(rows, cols);
    KMeansOptions opts;
    opts.k = k_eff;
    // Multiple k-means++ restarts, like the sklearn KMeans the paper uses
    // (its default n_init is 10; 4 keeps our scalar kernel inside the
    // paper's 1-5 s selection window).
    opts.n_init = 4;
    opts.seed = seed ^ 0x517cc1b727220a95ULL;
    const std::vector<size_t> medoids =
        ClusterRepresentatives(row_matrix, model.dim(), opts);
    out.row_ids.reserve(k_eff);
    for (size_t m : medoids) out.row_ids.push_back(rows[m]);
    std::sort(out.row_ids.begin(), out.row_ids.end());
  }

  // ---- Column selection (lines 13-17). -----------------------------------
  std::vector<size_t> candidates;  // Visible non-target columns.
  for (size_t c : cols) {
    if (std::find(targets.begin(), targets.end(), c) == targets.end()) {
      candidates.push_back(c);
    }
  }
  const size_t clusters =
      l_eff >= targets.size() ? l_eff - targets.size() : 0;

  std::vector<size_t> chosen_cols = targets;
  if (clusters >= candidates.size()) {
    chosen_cols.insert(chosen_cols.end(), candidates.begin(), candidates.end());
  } else if (clusters > 0) {
    std::vector<float> col_matrix;
    col_matrix.reserve(candidates.size() * model.dim());
    for (size_t c : candidates) {
      const std::vector<float> v = model.ColumnVector(c, rows);
      col_matrix.insert(col_matrix.end(), v.begin(), v.end());
    }
    KMeansOptions opts;
    opts.k = clusters;
    opts.n_init = 10;  // Column matrices are tiny; full sklearn default.
    opts.seed = seed ^ 0x2545f4914f6cdd1dULL;
    const std::vector<size_t> medoids =
        ClusterRepresentatives(col_matrix, model.dim(), opts);
    for (size_t m : medoids) chosen_cols.push_back(candidates[m]);
  }
  // Display columns in their source order (line 18 projection).
  std::sort(chosen_cols.begin(), chosen_cols.end());
  out.col_ids = std::move(chosen_cols);

  out.seconds = watch.ElapsedSeconds();
  return out;
}

}  // namespace subtab
