#include "subtab/core/select.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "subtab/cluster/kmeans.h"
#include "subtab/util/alias_table.h"
#include "subtab/util/hash.h"
#include "subtab/util/rng.h"
#include "subtab/util/stopwatch.h"

namespace subtab {
namespace {

std::vector<size_t> AllIndices(size_t n) {
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  return idx;
}

// Salt folded into the request seed for the sampling Rng, so the sample
// stream is independent of the k-means++ streams derived from the same seed.
constexpr uint64_t kSampleSeedSalt = 0xa0761d6478bd642fULL;

/// Deterministic weighted sample of `want` distinct rows from `rows`.
/// Each row is weighted by the inverse frequency of its *bin signature*
/// (hash of its binned tokens over the visible `cols`), so rows carrying a
/// rare value pattern — exactly the planted patterns the coverage metric
/// rewards — are drawn far more often than redundant bulk rows. Draws with
/// replacement from an O(1) alias table, keeping first occurrences; if the
/// attempt budget runs out before `want` distinct rows (heavy skew), tops
/// up in scope order so the result size is exact. Returned ids are sorted
/// ascending and are a pure function of (rows, cols, seed).
std::vector<size_t> SampleScopeRows(const BinnedTable& binned,
                                    const std::vector<size_t>& rows,
                                    const std::vector<size_t>& cols,
                                    size_t want, uint64_t seed) {
  std::vector<uint64_t> signature(rows.size());
  std::unordered_map<uint64_t, uint32_t> frequency;
  frequency.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    const Token* tokens = binned.row_data(rows[i]);
    uint64_t h = kFnvOffsetBasis;
    for (size_t c : cols) h = HashCombine(h, tokens[c]);
    signature[i] = h;
    ++frequency[h];
  }
  std::vector<double> weights(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    weights[i] = 1.0 / static_cast<double>(frequency[signature[i]]);
  }
  const AliasTable alias(weights);
  Rng rng(seed ^ kSampleSeedSalt);

  std::vector<char> picked(rows.size(), 0);
  std::vector<size_t> sample;
  sample.reserve(want);
  // With-replacement draws discard repeats, so heavily skewed weights need
  // slack; 8x covers the worst realistic skew and stays O(sample_rows).
  const size_t max_attempts = 8 * want;
  for (size_t attempt = 0; attempt < max_attempts && sample.size() < want;
       ++attempt) {
    const size_t i = alias.Sample(rng);
    if (!picked[i]) {
      picked[i] = 1;
      sample.push_back(rows[i]);
    }
  }
  for (size_t i = 0; i < rows.size() && sample.size() < want; ++i) {
    if (!picked[i]) {
      picked[i] = 1;
      sample.push_back(rows[i]);
    }
  }
  std::sort(sample.begin(), sample.end());
  return sample;
}

}  // namespace

Selection SelectSubTable(const PreprocessedTable& pre, size_t k, size_t l,
                         const SelectionScope& scope, uint64_t seed,
                         const SelectionSamplingOptions& sampling) {
  Stopwatch watch;
  const BinnedTable& binned = pre.binned();
  const CellModel& model = pre.cell_model();

  // Line 6-7: restrict to the query result's rows/columns.
  const std::vector<size_t> rows =
      scope.rows.empty() ? AllIndices(binned.num_rows()) : scope.rows;
  const std::vector<size_t> cols =
      scope.cols.empty() ? AllIndices(binned.num_columns()) : scope.cols;
  SUBTAB_CHECK(!rows.empty());
  SUBTAB_CHECK(!cols.empty());

  // Targets restricted to visible columns, deduplicated.
  std::vector<size_t> targets;
  for (size_t t : scope.target_cols) {
    if (std::find(cols.begin(), cols.end(), t) != cols.end() &&
        std::find(targets.begin(), targets.end(), t) == targets.end()) {
      targets.push_back(t);
    }
  }

  Selection out;
  const size_t k_eff = std::min(k, rows.size());
  const size_t l_eff = std::max(std::min(l, cols.size()), std::min(targets.size(), l));

  // ---- Sub-linear path: shrink the working row set before any O(rows)
  // embedding work. The sample is deterministic in (scope, cols, seed), so
  // a sampled selection stays a pure function of its request key.
  const bool use_sample = sampling.min_rows > 0 &&
                          rows.size() >= sampling.min_rows &&
                          sampling.sample_rows < rows.size() &&
                          k_eff < rows.size();
  std::vector<size_t> sampled_rows;
  if (use_sample) {
    const size_t want = std::max(sampling.sample_rows, k_eff);
    sampled_rows = SampleScopeRows(binned, rows, cols, want, seed);
    out.sampled = true;
    out.sample_rows = sampled_rows.size();
  }
  // Rows the clustering below actually walks: the sample, or the full scope.
  const std::vector<size_t>& work_rows = use_sample ? sampled_rows : rows;

  // ---- Row selection (lines 8-12). --------------------------------------
  if (k_eff == work_rows.size()) {
    out.row_ids = work_rows;
  } else {
    const std::vector<float> row_matrix = model.RowMatrix(work_rows, cols);
    KMeansOptions opts;
    opts.k = k_eff;
    // Multiple k-means++ restarts, like the sklearn KMeans the paper uses
    // (its default n_init is 10; 4 keeps our scalar kernel inside the
    // paper's 1-5 s selection window).
    opts.n_init = 4;
    opts.seed = seed ^ 0x517cc1b727220a95ULL;
    const std::vector<size_t> medoids =
        ClusterRepresentatives(row_matrix, model.dim(), opts);
    out.row_ids.reserve(k_eff);
    for (size_t m : medoids) out.row_ids.push_back(work_rows[m]);
    std::sort(out.row_ids.begin(), out.row_ids.end());
  }

  // ---- Column selection (lines 13-17). -----------------------------------
  std::vector<size_t> candidates;  // Visible non-target columns.
  for (size_t c : cols) {
    if (std::find(targets.begin(), targets.end(), c) == targets.end()) {
      candidates.push_back(c);
    }
  }
  const size_t clusters =
      l_eff >= targets.size() ? l_eff - targets.size() : 0;

  std::vector<size_t> chosen_cols = targets;
  if (clusters >= candidates.size()) {
    chosen_cols.insert(chosen_cols.end(), candidates.begin(), candidates.end());
  } else if (clusters > 0) {
    std::vector<float> col_matrix;
    col_matrix.reserve(candidates.size() * model.dim());
    for (size_t c : candidates) {
      // On the sampled path, column vectors average over the sampled rows
      // only — the second O(rows) term of the exact path.
      const std::vector<float> v = model.ColumnVector(c, work_rows);
      col_matrix.insert(col_matrix.end(), v.begin(), v.end());
    }
    KMeansOptions opts;
    opts.k = clusters;
    opts.n_init = 10;  // Column matrices are tiny; full sklearn default.
    opts.seed = seed ^ 0x2545f4914f6cdd1dULL;
    const std::vector<size_t> medoids =
        ClusterRepresentatives(col_matrix, model.dim(), opts);
    for (size_t m : medoids) chosen_cols.push_back(candidates[m]);
  }
  // Display columns in their source order (line 18 projection).
  std::sort(chosen_cols.begin(), chosen_cols.end());
  out.col_ids = std::move(chosen_cols);

  out.seconds = watch.ElapsedSeconds();
  return out;
}

}  // namespace subtab
