#ifndef SUBTAB_CORE_SELECT_H_
#define SUBTAB_CORE_SELECT_H_

#include <vector>

#include "subtab/core/preprocess.h"

/// \file select.h
/// The centroid-based selection phase of Algorithm 2 (lines 5–19): average
/// cell vectors into tuple-vectors, cluster them into k clusters and take the
/// medoids as rows; likewise for columns (excluding target columns, which are
/// always included). Runs per display — on the full table or on any SP query
/// result — reusing the pre-computed embedding.

namespace subtab {

/// Scope of one selection: which source rows/columns are visible (a query
/// result), and which columns are mandatory.
struct SelectionScope {
  /// Visible source row ids; empty = all rows.
  std::vector<size_t> rows;
  /// Visible source column ids; empty = all columns.
  std::vector<size_t> cols;
  /// Mandatory columns U* (source ids). Targets projected away by the query
  /// are ignored.
  std::vector<size_t> target_cols;
};

/// The selected sub-table: row/column ids refer to the *source* table.
struct Selection {
  std::vector<size_t> row_ids;
  std::vector<size_t> col_ids;
  double seconds = 0.0;  ///< Wall time of the selection phase (Fig. 9).
};

/// Runs centroid-based selection for a k x l display. If fewer rows/columns
/// are visible than requested, all of them are returned.
Selection SelectSubTable(const PreprocessedTable& pre, size_t k, size_t l,
                         const SelectionScope& scope, uint64_t seed);

}  // namespace subtab

#endif  // SUBTAB_CORE_SELECT_H_
