#ifndef SUBTAB_CORE_SELECT_H_
#define SUBTAB_CORE_SELECT_H_

#include <vector>

#include "subtab/core/preprocess.h"

/// \file select.h
/// The centroid-based selection phase of Algorithm 2 (lines 5–19): average
/// cell vectors into tuple-vectors, cluster them into k clusters and take the
/// medoids as rows; likewise for columns (excluding target columns, which are
/// always included). Runs per display — on the full table or on any SP query
/// result — reusing the pre-computed embedding.

namespace subtab {

/// Scope of one selection: which source rows/columns are visible (a query
/// result), and which columns are mandatory.
struct SelectionScope {
  /// Visible source row ids; empty = all rows.
  std::vector<size_t> rows;
  /// Visible source column ids; empty = all columns.
  std::vector<size_t> cols;
  /// Mandatory columns U* (source ids). Targets projected away by the query
  /// are ignored.
  std::vector<size_t> target_cols;
};

/// The selected sub-table: row/column ids refer to the *source* table.
struct Selection {
  std::vector<size_t> row_ids;
  std::vector<size_t> col_ids;
  double seconds = 0.0;  ///< Wall time of the selection phase (Fig. 9).
  bool sampled = false;  ///< Selection ran over a sampled scope, not all rows.
  size_t sample_rows = 0;  ///< Distinct scope rows in the sample (0 = exact).
};

/// Tuning for the sub-linear sampled path: when `min_rows` > 0 and the scope
/// has at least that many rows, row k-means (and column-vector averaging)
/// run over a deterministic weighted sample of the scope instead of every
/// scoped row. Draws are weighted toward rare bin signatures — rows whose
/// binned value pattern is uncommon in the scope — so small planted patterns
/// survive the sample. The sample is a pure function of (scope, cols, seed),
/// which keeps selection-cache and in-flight-dedup semantics sound.
struct SelectionSamplingOptions {
  /// Minimum scope rows before sampling kicks in; 0 disables sampling.
  size_t min_rows = 0;
  /// Distinct scope rows drawn for the sampled path (floored at k).
  size_t sample_rows = 2048;
};

/// Runs centroid-based selection for a k x l display. If fewer rows/columns
/// are visible than requested, all of them are returned. With `sampling`
/// enabled and a large enough scope, runs the sub-linear sampled path and
/// marks the result `sampled`; the default options always select exactly.
Selection SelectSubTable(const PreprocessedTable& pre, size_t k, size_t l,
                         const SelectionScope& scope, uint64_t seed,
                         const SelectionSamplingOptions& sampling = {});

}  // namespace subtab

#endif  // SUBTAB_CORE_SELECT_H_
