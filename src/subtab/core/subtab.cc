#include "subtab/core/subtab.h"

#include "subtab/core/model_io.h"
#include "subtab/util/logging.h"

namespace subtab {
namespace {

Result<std::vector<size_t>> ResolveTargets(const Table& table,
                                           const SubTabConfig& config) {
  std::vector<size_t> target_ids;
  for (const std::string& name : config.target_columns) {
    SUBTAB_ASSIGN_OR_RETURN(size_t idx, table.ColumnIndex(name));
    target_ids.push_back(idx);
  }
  return target_ids;
}

Status ValidateFitInput(const std::shared_ptr<const Table>& table,
                        const SubTabConfig& config) {
  SUBTAB_RETURN_IF_ERROR(config.Validate());
  if (table == nullptr) {
    return Status::InvalidArgument("cannot fit SubTab on a null table");
  }
  if (table->num_rows() == 0 || table->num_columns() == 0) {
    return Status::InvalidArgument("cannot fit SubTab on an empty table");
  }
  return Status::Ok();
}

}  // namespace

SubTab::SubTab(std::shared_ptr<const Table> table, SubTabConfig config,
               std::vector<size_t> target_ids, PreprocessedTable pre)
    : table_(std::move(table)),
      config_(std::move(config)),
      target_ids_(std::move(target_ids)),
      pre_(std::move(pre)) {}

Result<SubTab> SubTab::Fit(std::shared_ptr<const Table> table,
                           SubTabConfig config) {
  SUBTAB_RETURN_IF_ERROR(ValidateFitInput(table, config));
  SUBTAB_ASSIGN_OR_RETURN(std::vector<size_t> target_ids,
                          ResolveTargets(*table, config));
  PreprocessedTable pre = Preprocess(*table, config);
  return SubTab(std::move(table), std::move(config), std::move(target_ids),
                std::move(pre));
}

Result<SubTab> SubTab::Fit(Table table, SubTabConfig config) {
  return Fit(std::make_shared<const Table>(std::move(table)),
             std::move(config));
}

Result<SubTab> SubTab::FitCached(Table owned, SubTabConfig config,
                                 const std::string& model_path) {
  auto table = std::make_shared<const Table>(std::move(owned));
  SUBTAB_RETURN_IF_ERROR(ValidateFitInput(table, config));
  SUBTAB_ASSIGN_OR_RETURN(std::vector<size_t> target_ids,
                          ResolveTargets(*table, config));

  Result<PreprocessedTable> cached = LoadModel(*table, model_path);
  if (cached.ok()) {
    SUBTAB_LOG_STREAM(Info) << "loaded cached model from " << model_path;
    return SubTab(std::move(table), std::move(config), std::move(target_ids),
                  std::move(*cached));
  }
  SUBTAB_LOG_STREAM(Info) << "model cache miss (" << cached.status().ToString()
                          << "); pre-processing";
  PreprocessedTable pre = Preprocess(*table, config);
  const Status saved = SaveModel(pre, *table, model_path);
  if (!saved.ok()) {
    SUBTAB_LOG_STREAM(Warning) << "could not save model cache: " << saved.ToString();
  }
  return SubTab(std::move(table), std::move(config), std::move(target_ids),
                std::move(pre));
}

Result<SubTab> SubTab::FromPreprocessed(std::shared_ptr<const Table> table,
                                        SubTabConfig config,
                                        PreprocessedTable pre) {
  SUBTAB_RETURN_IF_ERROR(config.Validate());
  if (table == nullptr) {
    return Status::InvalidArgument("cannot wrap a null table");
  }
  SUBTAB_ASSIGN_OR_RETURN(std::vector<size_t> target_ids,
                          ResolveTargets(*table, config));
  return SubTab(std::move(table), std::move(config), std::move(target_ids),
                std::move(pre));
}

Result<SubTab> SubTab::FromPreprocessed(Table table, SubTabConfig config,
                                        PreprocessedTable pre) {
  return FromPreprocessed(std::make_shared<const Table>(std::move(table)),
                          std::move(config), std::move(pre));
}

SubTabView SubTab::Select(std::optional<size_t> k, std::optional<size_t> l) const {
  SelectionScope scope;
  scope.target_cols = target_ids_;
  return SelectScoped(scope, k.value_or(config_.k), l.value_or(config_.l));
}

Result<SelectionScope> SubTab::ResolveScope(const SpQuery& query,
                                            const QueryExecOptions& exec,
                                            const ScopeHint* hint,
                                            ScanStats* scan_stats) const {
  Result<QueryScope> scan =
      hint != nullptr && hint->parent_rows != nullptr
          ? RestrictQueryScope(*table_, *hint->parent_rows, query,
                               hint->extra_conjuncts)
          : ResolveQueryScope(*table_, query, exec);
  SUBTAB_ASSIGN_OR_RETURN(QueryScope result, std::move(scan));
  if (scan_stats != nullptr) *scan_stats = result.stats;
  if (result.row_ids.empty()) {
    return Status::InvalidArgument("query returned no rows: " + query.ToString());
  }
  SelectionScope scope;
  scope.rows = std::move(result.row_ids);
  scope.cols = std::move(result.col_ids);
  scope.target_cols = target_ids_;
  return scope;
}

Result<SubTabView> SubTab::SelectForQuery(const SpQuery& query,
                                          std::optional<size_t> k,
                                          std::optional<size_t> l,
                                          std::optional<uint64_t> seed) const {
  SUBTAB_ASSIGN_OR_RETURN(SelectionScope scope, ResolveScope(query));
  return SelectScoped(scope, k.value_or(config_.k), l.value_or(config_.l), seed);
}

SubTabView SubTab::SelectScoped(const SelectionScope& scope, size_t k, size_t l,
                                std::optional<uint64_t> seed,
                                const SelectionSamplingOptions& sampling) const {
  const Selection sel = SelectSubTable(pre_, k, l, scope,
                                       seed.value_or(config_.seed), sampling);
  SubTabView view;
  view.table = table_->SubTable(sel.row_ids, sel.col_ids);
  view.row_ids = sel.row_ids;
  view.col_ids = sel.col_ids;
  view.selection_seconds = sel.seconds;
  view.sampled = sel.sampled;
  view.sample_rows = sel.sample_rows;
  return view;
}

}  // namespace subtab
