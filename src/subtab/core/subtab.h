#ifndef SUBTAB_CORE_SUBTAB_H_
#define SUBTAB_CORE_SUBTAB_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "subtab/core/config.h"
#include "subtab/core/preprocess.h"
#include "subtab/core/select.h"
#include "subtab/table/query.h"

/// \file subtab.h
/// The SubTab facade — the library's main entry point. Usage:
///
///   SubTabConfig config;                       // paper defaults
///   SUBTAB_ASSIGN_OR_RETURN(SubTab st, SubTab::Fit(table, config));
///   SubTabView view = st.Select();             // 10x10 view of the table
///   SubTabView qview = *st.SelectForQuery(q);  // view of a query result
///
/// Fit runs the one-off pre-processing phase (binning + embedding); Select
/// and SelectForQuery run only the cheap centroid-selection phase, so query
/// displays are interactive (Sec. 5.1).

namespace subtab {

/// A selected sub-table, materialized for display.
struct SubTabView {
  Table table;                  ///< The k x l sub-table.
  std::vector<size_t> row_ids;  ///< Source row ids, ascending.
  std::vector<size_t> col_ids;  ///< Source column ids, ascending.
  double selection_seconds = 0.0;
  bool sampled = false;    ///< Selection ran over a sampled scope.
  size_t sample_rows = 0;  ///< Distinct scope rows sampled (0 = exact).
};

/// Containment hint for ResolveScope: the already-resolved rows of a PROVEN
/// superset query (QueryContains(parent, query) — see table/query.h), plus
/// the conjuncts of `query` not literally present in the parent
/// (ExtraConjuncts). With a hint the scan stage shrinks from O(table rows)
/// to O(parent rows): only the parent's rows are revisited, and only the
/// extra conjuncts are evaluated. `parent_rows` must be in ascending source
/// order (a scope resolved from a query with no order_by and no limit) for
/// the result to be bit-identical to the unhinted scan. The serving engine's
/// containment index supplies hints; results are never affected, only cost.
struct ScopeHint {
  std::shared_ptr<const std::vector<size_t>> parent_rows;
  std::vector<Predicate> extra_conjuncts;
};

/// A fitted SubTab instance bound to one table.
///
/// Thread-safety: a fitted instance is immutable; Select / SelectForQuery /
/// SelectScoped are const, keep all per-call state on the stack, and may be
/// invoked concurrently from any number of threads on one shared instance.
/// The serving engine (service/engine.h) relies on this contract.
class SubTab {
 public:
  /// Validates the config, resolves target columns, and runs pre-processing.
  /// The table is wrapped in shared ownership; with the chunked column store
  /// the wrap shares payload chunks rather than duplicating rows.
  static Result<SubTab> Fit(Table table, SubTabConfig config);

  /// Like Fit, but *sharing* the caller's table outright — no copy at all.
  /// The streaming/serving layers pass each snapshot's shared pointer here,
  /// so the live version's data is resident once, not once in the stream and
  /// once in the model.
  static Result<SubTab> Fit(std::shared_ptr<const Table> table,
                            SubTabConfig config);

  /// Like Fit, but with a persistent model cache (see core/model_io.h): if
  /// `model_path` holds a model matching the table's schema it is loaded
  /// (skipping binning + training); otherwise pre-processing runs and the
  /// artifact is saved there for the next session.
  static Result<SubTab> FitCached(Table table, SubTabConfig config,
                                  const std::string& model_path);

  /// Wraps an already-computed pre-processing artifact. Used by the serving
  /// layer's model registry, which restores artifacts via core/model_io and
  /// rebinds them to the caller's table without re-training, and by the
  /// streaming fold-in path (which shares the snapshot's table).
  static Result<SubTab> FromPreprocessed(std::shared_ptr<const Table> table,
                                         SubTabConfig config,
                                         PreprocessedTable pre);
  static Result<SubTab> FromPreprocessed(Table table, SubTabConfig config,
                                         PreprocessedTable pre);

  const Table& table() const { return *table_; }
  /// The shared table — pass this (not a copy of table()) anywhere the
  /// table must outlive or co-exist with this model.
  const std::shared_ptr<const Table>& shared_table() const { return table_; }
  const SubTabConfig& config() const { return config_; }
  const PreprocessedTable& preprocessed() const { return pre_; }
  /// Resolved indices of the configured target columns.
  const std::vector<size_t>& target_column_ids() const { return target_ids_; }

  /// Sub-table of the full table, with optional dimension overrides.
  SubTabView Select(std::optional<size_t> k = std::nullopt,
                    std::optional<size_t> l = std::nullopt) const;

  /// Sub-table of an SP query's result (re-runs only the selection phase).
  /// `seed` as in SelectScoped. Exactly ResolveScope + SelectScoped; the
  /// serving pipeline runs the two stages as separate queue hops so scans
  /// and selections interleave across workers, and both paths return
  /// bit-identical views.
  Result<SubTabView> SelectForQuery(const SpQuery& query,
                                    std::optional<size_t> k = std::nullopt,
                                    std::optional<size_t> l = std::nullopt,
                                    std::optional<uint64_t> seed = std::nullopt) const;

  /// Stage 1 of SelectForQuery: run the query's scan (optionally
  /// chunk-parallel, see QueryExecOptions) and build the selection scope —
  /// no clustering, no materialization of the intermediate result. Errors on
  /// invalid queries and on empty results (an empty scope would mean "whole
  /// table" to SelectScoped). Stage 2 is SelectScoped on the returned scope.
  /// A non-null `hint` switches the scan to the restricted path
  /// (RestrictQueryScope over the hint's parent rows); the resolved scope is
  /// bit-identical to the unhinted scan under the hint's contract. A
  /// non-null `scan_stats` receives the scan's cost attribution (rows
  /// visited, chunks walked — table/query.h ScanStats) for the serving
  /// pipeline's trace spans; it never affects the result.
  Result<SelectionScope> ResolveScope(const SpQuery& query,
                                      const QueryExecOptions& exec = {},
                                      const ScopeHint* hint = nullptr,
                                      ScanStats* scan_stats = nullptr) const;

  /// Selection over an explicit scope (used by baselines, benches, and the
  /// serving engine). `seed` overrides the config's master seed for this one
  /// selection (nullopt = config seed), letting callers re-randomize a
  /// display without refitting. `sampling` enables the sub-linear sampled
  /// path of core/select.h (default: always exact).
  SubTabView SelectScoped(const SelectionScope& scope, size_t k, size_t l,
                          std::optional<uint64_t> seed = std::nullopt,
                          const SelectionSamplingOptions& sampling = {}) const;

 private:
  SubTab(std::shared_ptr<const Table> table, SubTabConfig config,
         std::vector<size_t> target_ids, PreprocessedTable pre);

  std::shared_ptr<const Table> table_;
  SubTabConfig config_;
  std::vector<size_t> target_ids_;
  PreprocessedTable pre_;
};

}  // namespace subtab

#endif  // SUBTAB_CORE_SUBTAB_H_
