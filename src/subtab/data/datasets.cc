#include "subtab/data/datasets.h"

#include <cmath>

#include "subtab/util/string_util.h"

namespace subtab {
namespace {

/// Time-of-day column: morning / noon / afternoon / evening modes (HHMM).
ColumnSpec TimeOfDay(std::string name, double nan_probability = 0.0) {
  return ColumnSpec::Numeric(std::move(name), {600, 1130, 1530, 2030}, 45.0,
                             nan_probability);
}

/// A high-entropy "noise" column: many near-uniform groups. Such columns
/// carry no frequent itemsets at the paper's support threshold (every bin
/// pair falls below support 0.1), mirroring the id-like and high-cardinality
/// columns of real tables that contribute no rules.
ColumnSpec NoiseNumeric(std::string name, double lo, double hi, size_t groups,
                        double nan_probability = 0.0) {
  std::vector<double> centers;
  const double step = (hi - lo) / static_cast<double>(groups);
  for (size_t g = 0; g < groups; ++g) {
    centers.push_back(lo + step * (static_cast<double>(g) + 0.5));
  }
  ColumnSpec spec = ColumnSpec::Numeric(std::move(name), std::move(centers),
                                        step * 0.18, nan_probability);
  spec.zipf_skew = 0.2;  // Near-uniform: no dominant bin.
  return spec;
}

/// Marks a set of columns as the profile-affine pattern core.
void SetAffinity(DatasetSpec* spec, const std::vector<std::string>& names,
                 double affinity) {
  for (ColumnSpec& col : spec->columns) {
    for (const std::string& name : names) {
      if (col.name == name) col.profile_affinity = affinity;
    }
  }
}

size_t ColumnIndexOf(const DatasetSpec& spec, const std::string& name) {
  for (size_t c = 0; c < spec.columns.size(); ++c) {
    if (spec.columns[c].name == name) return c;
  }
  SUBTAB_CHECK(false);
  return 0;
}

/// Nudges planted-pattern antecedents so that no latent profile *harms*
/// them: a profile is harmful iff it prefers the entire antecedent but a
/// different consequent group — its rows would then flood the antecedent
/// with contradicting consequents, destroying the planted confidence.
/// (A profile agreeing on the consequent reinforces the pattern and is
/// unavoidable for binary-column antecedents anyway.) Must run after
/// profiles are configured.
void AvoidProfileCollisions(DatasetSpec* spec) {
  if (spec->num_profiles == 0) return;
  const auto harmful = [spec](const PlantedPattern& pattern, size_t p) {
    for (const auto& [name, group] : pattern.lhs) {
      if (spec->PreferredGroup(p, ColumnIndexOf(*spec, name)) != group) {
        return false;
      }
    }
    return spec->PreferredGroup(p, ColumnIndexOf(*spec, pattern.rhs.first)) !=
           pattern.rhs.second;
  };
  for (PlantedPattern& pattern : spec->patterns) {
    // Enumerate every lhs group assignment (odometer over the product
    // space, capped) and keep the one with the least popularity-weighted
    // harm; planted semantics tolerate moving a conjunct to a sibling group.
    std::vector<size_t> radices;
    size_t combos = 1;
    for (const auto& [name, group] : pattern.lhs) {
      radices.push_back(spec->columns[ColumnIndexOf(*spec, name)].num_groups());
      combos *= radices.back();
      if (combos > 4096) break;
    }
    if (combos > 4096 || radices.size() != pattern.lhs.size()) continue;

    const auto harm_of = [&](const PlantedPattern& candidate) {
      double harm = 0.0;
      for (size_t p = 0; p < spec->num_profiles; ++p) {
        if (harmful(candidate, p)) {
          // Popular profiles do more damage (Zipf rank weighting).
          harm += 1.0 / std::pow(static_cast<double>(p + 1), spec->profile_zipf);
        }
      }
      return harm;
    };

    PlantedPattern best = pattern;
    double best_harm = harm_of(pattern);
    std::vector<size_t> odometer(radices.size(), 0);
    for (size_t combo = 0; combo < combos && best_harm > 0.0; ++combo) {
      PlantedPattern candidate = pattern;
      for (size_t i = 0; i < odometer.size(); ++i) {
        candidate.lhs[i].second = odometer[i];
      }
      const double harm = harm_of(candidate);
      if (harm < best_harm) {
        best_harm = harm;
        best = candidate;
      }
      // Advance the odometer.
      for (size_t i = 0; i < odometer.size(); ++i) {
        if (++odometer[i] < radices[i]) break;
        odometer[i] = 0;
      }
    }
    pattern = std::move(best);
  }
}

}  // namespace

GeneratedDataset MakeFlights(size_t num_rows, uint64_t seed) {
  DatasetSpec spec;
  spec.name = "FL";
  spec.num_rows = num_rows;
  spec.seed = seed;

  const std::vector<std::string> airlines = {"AA", "AS", "B6", "DL", "EV", "F9", "HA",
                                             "MQ", "NK", "OO", "UA", "US", "VX", "WN"};
  const std::vector<std::string> airports = {"ATL", "ORD", "DFW", "DEN", "LAX",
                                             "SFO", "PHX", "LAS", "IAH", "SEA"};
  std::vector<std::string> tails;
  for (int i = 0; i < 30; ++i) tails.push_back(StrFormat("N%03dXX", 100 + i));

  // Pattern core: the operational columns analysts care about (few groups,
  // profile-affine). Noise: calendar/id columns (many near-uniform groups).
  spec.columns = {
      ColumnSpec::Numeric("YEAR", {2015}, 0.0),
      NoiseNumeric("MONTH", 1, 12, 12),
      NoiseNumeric("DAY", 1, 31, 10),
      NoiseNumeric("DAY_OF_WEEK", 1, 7, 7),
      ColumnSpec::Categorical("AIRLINE", airlines, 0.8),
      NoiseNumeric("FLIGHT_NUMBER", 1, 6000, 10),
      ColumnSpec::Categorical("TAIL_NUMBER", tails, 0.3, 0.01),
      ColumnSpec::Categorical("ORIGIN_AIRPORT", airports, 0.8),
      ColumnSpec::Categorical("DESTINATION_AIRPORT", airports, 0.8),
      TimeOfDay("SCHEDULED_DEPARTURE"),
      TimeOfDay("DEPARTURE_TIME", 0.005),
      ColumnSpec::Numeric("DEPARTURE_DELAY", {-5, 15, 65}, 4.0),
      NoiseNumeric("TAXI_OUT", 4, 40, 6),
      NoiseNumeric("WHEELS_OFF", 1, 2400, 8),
      ColumnSpec::Numeric("SCHEDULED_TIME", {75, 150, 250, 350}, 12.0),
      ColumnSpec::Numeric("ELAPSED_TIME", {75, 150, 250, 350}, 14.0),
      ColumnSpec::Numeric("AIR_TIME", {60, 130, 230, 330}, 12.0),
      ColumnSpec::Numeric("DISTANCE", {400, 900, 1600, 2400}, 90.0),
      NoiseNumeric("WHEELS_ON", 1, 2400, 8),
      NoiseNumeric("TAXI_IN", 2, 25, 6),
      TimeOfDay("SCHEDULED_ARRIVAL"),
      TimeOfDay("ARRIVAL_TIME", 0.005),
      ColumnSpec::Numeric("ARRIVAL_DELAY", {-8, 12, 55}, 4.0),
      ColumnSpec::Categorical("DIVERTED", {"0", "1"}, 3.0),
      ColumnSpec::Categorical("CANCELLED", {"0", "1"}, 2.5),
      ColumnSpec::Categorical("CANCELLATION_REASON", {"A", "B", "C", "D"}, 1.0, 0.9),
      ColumnSpec::Numeric("AIR_SYSTEM_DELAY", {0, 30}, 5.0),
      ColumnSpec::Numeric("SECURITY_DELAY", {0, 20}, 4.0),
      ColumnSpec::Numeric("AIRLINE_DELAY", {0, 35}, 5.0),
      ColumnSpec::Numeric("LATE_AIRCRAFT_DELAY", {0, 40}, 5.0),
      ColumnSpec::Numeric("WEATHER_DELAY", {0, 25}, 4.0),
  };

  // Planted patterns — the prominent rules of Examples 1.2 / 3.5.
  spec.patterns = {
      {{{"AIR_TIME", 3}, {"DISTANCE", 3}},
       {"CANCELLED", 0},
       0.12,
       0.95,
       "long flights (AIR_TIME, DISTANCE high) are almost never cancelled"},
      {{{"SCHEDULED_DEPARTURE", 2}, {"SCHEDULED_ARRIVAL", 2}, {"SCHEDULED_TIME", 0}},
       {"CANCELLED", 1},
       0.08,
       0.85,
       "short afternoon flights are likely to be cancelled"},
      {{{"DEPARTURE_DELAY", 2}, {"SCHEDULED_TIME", 1}},
       {"ARRIVAL_DELAY", 2},
       0.10,
       0.90,
       "large departure delays on mid-length flights imply large arrival delays"},
      {{{"AIRLINE", 0}, {"ORIGIN_AIRPORT", 0}},
       {"DEPARTURE_DELAY", 0},
       0.08,
       0.80,
       "AA flights out of ATL tend to leave early"},
  };

  // Cancelled flights blank their operational columns (cf. Fig. 1 / Fig. 3),
  // and the five delay-breakdown columns are only populated for flights with
  // a large arrival delay — exactly the real dataset's missingness, which
  // makes "the last five columns contain only NaN" in arbitrary displays
  // (Example 1.1) and creates the giant co-NaN rules of the delay block.
  const std::vector<std::string> kDelayBreakdown = {
      "AIR_SYSTEM_DELAY", "SECURITY_DELAY", "AIRLINE_DELAY", "LATE_AIRCRAFT_DELAY",
      "WEATHER_DELAY"};
  spec.nan_patterns = {
      {"CANCELLED",
       1,
       {"DEPARTURE_TIME", "DEPARTURE_DELAY", "TAXI_OUT", "WHEELS_OFF", "ELAPSED_TIME",
        "AIR_TIME", "WHEELS_ON", "TAXI_IN", "ARRIVAL_TIME", "ARRIVAL_DELAY"}},
      {"ARRIVAL_DELAY", 0, kDelayBreakdown},  // Early arrivals: no breakdown.
      {"ARRIVAL_DELAY", 1, kDelayBreakdown},  // Small delays: no breakdown.
  };

  // Flight-leg profiles (short-haul commuter, long-haul, red-eye, ...);
  // more profiles than displayed rows, so medoids come from distinct
  // behavioural clusters (real tables have many such clusters).
  spec.num_profiles = 12;
  spec.profile_zipf = 1.05;
  // A compact, strongly correlated pattern core (the flight-profile columns)
  // plus a weakly correlated periphery — like the real table, where rule
  // mass concentrates on the handful of operational columns analysts reason
  // about. CANCELLED stays profile-independent (cancellations are rare and
  // noisy in reality); the planted patterns supply its structure.
  SetAffinity(&spec,
              {"SCHEDULED_DEPARTURE", "SCHEDULED_TIME", "ELAPSED_TIME", "AIR_TIME",
               "DISTANCE", "SCHEDULED_ARRIVAL"},
              0.75);
  SetAffinity(&spec,
              {"AIRLINE", "ORIGIN_AIRPORT", "DESTINATION_AIRPORT", "DEPARTURE_DELAY",
               "ARRIVAL_DELAY"},
              0.4);
  AvoidProfileCollisions(&spec);
  return GenerateDataset(spec);
}

GeneratedDataset MakeCyber(size_t num_rows, uint64_t seed) {
  DatasetSpec spec;
  spec.name = "CY";
  spec.num_rows = num_rows;
  spec.seed = seed;

  std::vector<std::string> src_ips;
  for (int i = 0; i < 20; ++i) src_ips.push_back(StrFormat("10.0.%d.%d", i / 8, i));
  std::vector<std::string> countries = {"CN", "US", "RU", "BR", "DE", "IN", "KR", "NL"};

  spec.columns = {
      NoiseNumeric("timestamp", 0, 86400, 12),
      ColumnSpec::Categorical("src_ip", src_ips, 0.3),
      ColumnSpec::Categorical("honeypot", {"hp-ams", "hp-sgp", "hp-nyc"}, 0.8),
      NoiseNumeric("src_port", 1024, 65535, 10),
      ColumnSpec::Numeric("dst_port", {22, 445, 1433, 3389}, 1.0),
      ColumnSpec::Categorical("protocol", {"tcp", "udp", "icmp"}, 1.2),
      ColumnSpec::Numeric("packets", {4, 60, 900}, 2.0),
      ColumnSpec::Numeric("bytes", {300, 9000, 150000}, 80.0),
      ColumnSpec::Numeric("duration", {1, 45, 320}, 0.8),
      ColumnSpec::Categorical("alert_type",
                              {"benign", "scan", "bruteforce", "dos", "malware"}, 1.0),
      ColumnSpec::Numeric("severity", {1, 3, 5}, 0.3),
      ColumnSpec::Categorical("action", {"allow", "deny", "drop"}, 1.0),
      ColumnSpec::Categorical("country", countries, 0.4),
      ColumnSpec::Categorical("tcp_flags", {"S", "SA", "FA", "R"}, 0.9),
      ColumnSpec::Numeric("failed_logins", {0, 8, 40}, 1.0, 0.05),
  };

  spec.patterns = {
      {{{"dst_port", 0}, {"failed_logins", 2}},
       {"alert_type", 2},
       0.10,
       0.92,
       "many failed logins on port 22 indicate brute force"},
      {{{"packets", 2}, {"bytes", 2}},
       {"alert_type", 3},
       0.08,
       0.90,
       "huge packet and byte counts indicate DoS"},
      {{{"protocol", 0}, {"dst_port", 3}, {"tcp_flags", 0}},
       {"alert_type", 1},
       0.12,
       0.85,
       "tcp SYN probes of port 3389 are scans"},
      {{{"tcp_flags", 3}, {"action", 2}},
       {"severity", 2},
       0.08,
       0.88,
       "dropped RST-flag traffic is high severity"},
  };

  // Attack-campaign profiles (scanning wave, credential stuffing, ...).
  spec.num_profiles = 10;
  spec.profile_zipf = 1.05;
  SetAffinity(&spec,
              {"dst_port", "protocol", "packets", "bytes", "alert_type", "severity",
               "action", "failed_logins"},
              0.7);
  AvoidProfileCollisions(&spec);
  return GenerateDataset(spec);
}

GeneratedDataset MakeSpotify(size_t num_rows, uint64_t seed) {
  DatasetSpec spec;
  spec.name = "SP";
  spec.num_rows = num_rows;
  spec.seed = seed;

  std::vector<std::string> artists;
  for (int i = 0; i < 40; ++i) artists.push_back(StrFormat("artist_%02d", i));

  spec.columns = {
      ColumnSpec::Categorical("artist", artists, 0.3),
      ColumnSpec::Categorical("genre",
                              {"pop", "rock", "hiphop", "edm", "jazz", "classical"},
                              0.9),
      ColumnSpec::Numeric("danceability", {0.35, 0.75}, 0.06),
      ColumnSpec::Numeric("energy", {0.3, 0.8}, 0.07),
      ColumnSpec::Numeric("loudness", {-12, -5}, 1.0),
      NoiseNumeric("speechiness", 0.0, 0.5, 6),
      ColumnSpec::Numeric("acousticness", {0.15, 0.8}, 0.08),
      ColumnSpec::Numeric("instrumentalness", {0.05, 0.7}, 0.08),
      NoiseNumeric("liveness", 0.0, 0.6, 6),
      ColumnSpec::Numeric("valence", {0.3, 0.7}, 0.08),
      ColumnSpec::Numeric("tempo", {92, 125, 160}, 8.0),
      NoiseNumeric("duration_ms", 120000, 360000, 8),
      ColumnSpec::Categorical("explicit", {"0", "1"}, 2.0),
      ColumnSpec::Categorical("key", {"C", "D", "E", "F", "G", "A", "B"}, 0.2),
      ColumnSpec::Numeric("popularity", {20, 50, 80}, 7.0),
  };

  spec.patterns = {
      {{{"danceability", 1}, {"energy", 1}},
       {"popularity", 2},
       0.12,
       0.88,
       "danceable high-energy songs are popular"},
      {{{"acousticness", 1}, {"instrumentalness", 1}},
       {"popularity", 0},
       0.10,
       0.85,
       "acoustic instrumental tracks stay niche"},
      {{{"genre", 0}, {"explicit", 1}},
       {"popularity", 2},
       0.08,
       0.80,
       "explicit pop tracks chart high"},
      {{{"tempo", 1}, {"valence", 1}},
       {"danceability", 1},
       0.10,
       0.82,
       "mid-tempo happy songs are danceable"},
  };

  // Style profiles (club track, singer-songwriter, ambient, ...).
  spec.num_profiles = 10;
  spec.profile_zipf = 1.05;
  SetAffinity(&spec,
              {"genre", "danceability", "energy", "acousticness", "instrumentalness",
               "valence", "tempo", "explicit", "popularity"},
              0.65);
  AvoidProfileCollisions(&spec);
  return GenerateDataset(spec);
}

GeneratedDataset MakeCreditCard(size_t num_rows, uint64_t seed) {
  DatasetSpec spec;
  spec.name = "CC";
  spec.num_rows = num_rows;
  spec.seed = seed;

  // All-numeric, like the original (PCA components V1..V28 + Time, Amount,
  // Class) — the binning-heavy pre-processing case of Fig. 9. V1-V9 carry
  // the transaction-mix structure; the higher components are near-noise,
  // like the small-variance tail of a real PCA.
  spec.columns.push_back(NoiseNumeric("Time", 0, 172800, 10));
  for (int v = 1; v <= 28; ++v) {
    if (v <= 9) {
      if (v % 2 == 0) {
        spec.columns.push_back(
            ColumnSpec::Numeric(StrFormat("V%d", v), {-2.0, 2.0}, 0.7));
      } else {
        spec.columns.push_back(
            ColumnSpec::Numeric(StrFormat("V%d", v), {-3.0, 0.0, 3.0}, 0.7));
      }
    } else {
      spec.columns.push_back(NoiseNumeric(StrFormat("V%d", v), -4.0, 4.0, 6));
    }
  }
  spec.columns.push_back(ColumnSpec::Numeric("Amount", {15, 120, 900}, 10.0));
  // Fraud is rare (skew pushes ~90% of background to Class 0) and does not
  // follow spending profiles — only the planted patterns predict it.
  ColumnSpec cls = ColumnSpec::Numeric("Class", {0, 1}, 0.02);
  cls.zipf_skew = 3.0;
  spec.columns.push_back(std::move(cls));

  spec.patterns = {
      {{{"V1", 0}, {"V2", 1}, {"V3", 2}, {"V4", 0}},
       {"Class", 1},
       0.05,
       0.90,
       "the V1-V4 fraud signature"},
      {{{"Amount", 2}, {"V4", 1}, {"V7", 1}},
       {"Class", 1},
       0.04,
       0.85,
       "large amounts with the V4/V7 signature are fraudulent"},
      {{{"V5", 1}, {"V6", 0}},
       {"Class", 0},
       0.15,
       0.95,
       "V5 mid + V6 low is ordinary traffic"},
  };

  // Spending profiles (groceries, travel, online, ...). The leading PCA
  // components of the real dataset correlate through the transaction mix.
  spec.num_profiles = 8;
  spec.profile_zipf = 1.05;
  SetAffinity(&spec,
              {"V1", "V2", "V3", "V4", "V5", "V6", "V7", "V8", "V9", "Amount"},
              0.6);
  AvoidProfileCollisions(&spec);
  return GenerateDataset(spec);
}

GeneratedDataset MakeUsFunds(size_t num_rows, uint64_t seed) {
  DatasetSpec spec;
  spec.name = "USF";
  spec.num_rows = num_rows;
  spec.seed = seed;

  std::vector<std::string> families;
  for (int i = 0; i < 25; ++i) families.push_back(StrFormat("family_%02d", i));

  spec.columns = {
      ColumnSpec::Categorical("category",
                              {"large_blend", "large_growth", "small_value", "bond",
                               "international", "sector"},
                              0.9),
      ColumnSpec::Categorical("fund_family", families, 0.3),
      ColumnSpec::Categorical("investment_type", {"equity", "fixed_income", "mixed"},
                              1.0),
      ColumnSpec::Categorical("size_type", {"large", "medium", "small"}, 0.9),
      ColumnSpec::Numeric("rating", {1, 3, 5}, 0.4),
      ColumnSpec::Numeric("risk_rating", {1, 3, 5}, 0.4),
      ColumnSpec::Numeric("expense_ratio", {0.2, 0.9, 1.8}, 0.1),
      NoiseNumeric("total_assets", 1e7, 1e10, 8),
      ColumnSpec::Numeric("yield", {0.5, 2.5, 5.0}, 0.3),
      NoiseNumeric("turnover", 5, 250, 8),
  };
  // Yearly return / alpha / beta panels — the wide numeric tail of the
  // original 298-column table (scaled to 60 columns total). Returns follow
  // the fund's profile; the per-year risk diagnostics are high-entropy.
  for (int year = 2010; year < 2020; ++year) {
    spec.columns.push_back(ColumnSpec::Numeric(StrFormat("return_%d", year),
                                               {-8, 4, 14}, 2.0, 0.05));
    spec.columns.push_back(NoiseNumeric(StrFormat("alpha_%d", year), -4, 4, 6, 0.08));
    spec.columns.push_back(NoiseNumeric(StrFormat("beta_%d", year), 0.4, 1.6, 6, 0.08));
    spec.columns.push_back(
        NoiseNumeric(StrFormat("sharpe_%d", year), -1, 2.5, 6, 0.08));
    spec.columns.push_back(NoiseNumeric(StrFormat("stdev_%d", year), 4, 26, 6, 0.08));
  }

  spec.patterns = {
      {{{"investment_type", 1}, {"risk_rating", 0}},
       {"return_2019", 0},
       0.12,
       0.85,
       "low-risk fixed income funds return little"},
      {{{"category", 1}, {"size_type", 2}},
       {"return_2019", 2},
       0.08,
       0.90,
       "small growth funds outperform"},
      {{{"expense_ratio", 2}},
       {"rating", 0},
       0.10,
       0.75,
       "expensive funds rate poorly"},
  };

  // Fund-style profiles (index tracker, aggressive growth, income, ...).
  spec.num_profiles = 8;
  spec.profile_zipf = 1.05;
  std::vector<std::string> core = {"category",      "investment_type", "size_type",
                                   "rating",        "risk_rating",     "expense_ratio",
                                   "yield"};
  for (int year = 2010; year < 2020; ++year) {
    core.push_back(StrFormat("return_%d", year));
  }
  SetAffinity(&spec, core, 0.6);
  AvoidProfileCollisions(&spec);
  return GenerateDataset(spec);
}

GeneratedDataset MakeBankLoans(size_t num_rows, uint64_t seed) {
  DatasetSpec spec;
  spec.name = "BL";
  spec.num_rows = num_rows;
  spec.seed = seed;

  spec.columns = {
      ColumnSpec::Categorical("loan_status", {"Fully Paid", "Charged Off"}, 2.0),
      ColumnSpec::Numeric("current_loan_amount", {5000, 15000, 32000}, 1500.0),
      ColumnSpec::Categorical("term", {"Short Term", "Long Term"}, 1.5),
      ColumnSpec::Numeric("credit_score", {595, 680, 745}, 12.0, 0.08),
      ColumnSpec::Numeric("annual_income", {28000, 62000, 120000}, 6000.0, 0.08),
      ColumnSpec::Categorical("years_in_job", {"<1", "1-3", "4-9", "10+"}, 0.4),
      ColumnSpec::Categorical("home_ownership", {"Rent", "Mortgage", "Own"}, 0.9),
      ColumnSpec::Categorical("purpose",
                              {"debt_consolidation", "home_improvement", "business",
                               "medical", "other"},
                              0.9),
      NoiseNumeric("monthly_debt", 100, 4000, 8),
      NoiseNumeric("years_credit_history", 2, 40, 8),
      ColumnSpec::Numeric("months_since_delinquent", {10, 35, 70}, 5.0, 0.5),
      NoiseNumeric("open_accounts", 1, 30, 8),
      ColumnSpec::Numeric("credit_problems", {0, 1, 3}, 0.2),
      NoiseNumeric("credit_balance", 1000, 90000, 8),
      NoiseNumeric("max_open_credit", 5000, 200000, 8),
      ColumnSpec::Numeric("bankruptcies", {0, 1}, 0.05),
      ColumnSpec::Numeric("tax_liens", {0, 1}, 0.05),
      ColumnSpec::Numeric("utilization", {0.2, 0.55, 0.9}, 0.05),
      ColumnSpec::Numeric("dti", {0.1, 0.25, 0.45}, 0.03),
  };

  spec.patterns = {
      {{{"credit_score", 2}, {"annual_income", 2}},
       {"loan_status", 0},
       0.12,
       0.93,
       "high credit score + high income repay in full"},
      {{{"credit_problems", 2}, {"bankruptcies", 1}},
       {"loan_status", 1},
       0.07,
       0.90,
       "credit problems + bankruptcy lead to charge-off"},
      {{{"term", 1}, {"current_loan_amount", 2}, {"utilization", 2}},
       {"loan_status", 1},
       0.08,
       0.85,
       "long-term large loans at high utilization default"},
      {{{"dti", 0}, {"credit_score", 2}},
       {"utilization", 0},
       0.10,
       0.80,
       "low debt-to-income borrowers keep utilization low"},
  };

  // Borrower profiles (prime, subprime, small-business, ...).
  spec.num_profiles = 10;
  spec.profile_zipf = 1.05;
  SetAffinity(&spec,
              {"loan_status", "current_loan_amount", "term", "credit_score",
               "annual_income", "home_ownership", "purpose", "credit_problems",
               "bankruptcies", "tax_liens", "utilization", "dti"},
              0.6);
  AvoidProfileCollisions(&spec);
  return GenerateDataset(spec);
}

std::string DatasetTargetColumn(const std::string& dataset_name) {
  if (dataset_name == "FL") return "CANCELLED";
  if (dataset_name == "SP") return "popularity";
  if (dataset_name == "CC") return "Class";
  if (dataset_name == "BL") return "loan_status";
  if (dataset_name == "CY") return "alert_type";
  if (dataset_name == "USF") return "rating";
  return "";
}

}  // namespace subtab
