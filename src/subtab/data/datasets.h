#ifndef SUBTAB_DATA_DATASETS_H_
#define SUBTAB_DATA_DATASETS_H_

#include "subtab/data/generator.h"

/// \file datasets.h
/// Emulators for the paper's six evaluation datasets (Sec. 6.1), built on
/// the planted-pattern generator. Shapes match the paper's column counts;
/// row counts default to ~1/100 of the originals (the `num_rows` parameter
/// scales further). Every dataset exposes its planted patterns as ground
/// truth (GeneratedDataset::spec.patterns) for the simulated user study.
///
///   paper             here (default rows x cols)
///   FL  6M x 31    -> MakeFlights    60,000 x 31
///   CY  30K x 15   -> MakeCyber      30,000 x 15
///   SP  42K x 15   -> MakeSpotify    42,000 x 15
///   CC  250K x 31  -> MakeCreditCard 50,000 x 31 (all-numeric, like the
///                                    original — the binning-heavy case of
///                                    Fig. 9)
///   USF 23.5K x 298-> MakeUsFunds     5,000 x 60 (column count scaled too;
///                                    USF appears in no figure)
///   BL  110K x 19  -> MakeBankLoans  20,000 x 19

namespace subtab {

GeneratedDataset MakeFlights(size_t num_rows = 60000, uint64_t seed = 101);
GeneratedDataset MakeCyber(size_t num_rows = 30000, uint64_t seed = 202);
GeneratedDataset MakeSpotify(size_t num_rows = 42000, uint64_t seed = 303);
GeneratedDataset MakeCreditCard(size_t num_rows = 50000, uint64_t seed = 404);
GeneratedDataset MakeUsFunds(size_t num_rows = 5000, uint64_t seed = 505);
GeneratedDataset MakeBankLoans(size_t num_rows = 20000, uint64_t seed = 606);

/// Name of the target column conventionally analyzed in each dataset
/// (CANCELLED for FL, popularity for SP, ...); empty if none.
std::string DatasetTargetColumn(const std::string& dataset_name);

}  // namespace subtab

#endif  // SUBTAB_DATA_DATASETS_H_
