#include "subtab/data/example_fixture.h"

#include <algorithm>
#include <map>

namespace subtab {

Table MakeExampleTable() {
  // Fig. 3, rows 1-8. Empty string = null (the DEP._TIME NaNs).
  Column cancelled = Column::Categorical(
      "CANCELLED", {"1", "1", "1", "1", "0", "0", "0", "0"});
  Column dep_time = Column::Categorical(
      "DEP._TIME", {"", "", "", "", "morning", "morning", "evening", "evening"});
  Column year = Column::Categorical(
      "YEAR", {"2015", "2015", "2015", "2015", "2016", "2015", "2015", "2015"});
  Column sched_dep = Column::Categorical(
      "SCHED._DEP.", {"afternoon", "afternoon", "morning", "morning", "morning",
                      "morning", "evening", "afternoon"});
  Column distance = Column::Categorical(
      "DISTANCE", {"short", "medium", "medium", "short", "medium", "medium", "long",
                   "long"});
  Result<Table> table = Table::Make({std::move(cancelled), std::move(dep_time),
                                     std::move(year), std::move(sched_dep),
                                     std::move(distance)});
  SUBTAB_CHECK(table.ok());
  return std::move(table).value();
}

RuleSet EnumerateRuleFamily(const BinnedTable& binned, size_t rhs_col,
                            size_t min_lhs_columns, size_t min_rows) {
  const size_t n = binned.num_rows();
  const size_t m = binned.num_columns();
  SUBTAB_CHECK(rhs_col < m);
  SUBTAB_CHECK(m <= 20);  // Bitmask enumeration of column subsets.

  std::vector<size_t> lhs_cols_all;
  for (size_t c = 0; c < m; ++c) {
    if (c != rhs_col) lhs_cols_all.push_back(c);
  }

  RuleSet out;
  // For every subset of lhs columns of size >= min_lhs_columns, candidate
  // lhs assignments are the distinct projections of actual rows (any other
  // assignment holds for zero rows).
  const size_t subsets = size_t{1} << lhs_cols_all.size();
  for (size_t mask = 1; mask < subsets; ++mask) {
    std::vector<size_t> cols;
    for (size_t i = 0; i < lhs_cols_all.size(); ++i) {
      if (mask & (size_t{1} << i)) cols.push_back(lhs_cols_all[i]);
    }
    if (cols.size() < min_lhs_columns) continue;

    // Count (lhs tokens, rhs token) co-occurrences and lhs totals.
    std::map<std::vector<Token>, std::map<Token, size_t>> joint;
    std::map<std::vector<Token>, size_t> lhs_count;
    for (size_t r = 0; r < n; ++r) {
      std::vector<Token> lhs;
      lhs.reserve(cols.size());
      for (size_t c : cols) lhs.push_back(binned.token(r, c));
      ++joint[lhs][binned.token(r, rhs_col)];
      ++lhs_count[lhs];
    }
    for (const auto& [lhs, rhs_counts] : joint) {
      for (const auto& [rhs_token, count] : rhs_counts) {
        if (count < min_rows) continue;
        Rule rule;
        rule.lhs = lhs;
        std::sort(rule.lhs.begin(), rule.lhs.end());
        rule.rhs = {rhs_token};
        rule.support = static_cast<double>(count) / static_cast<double>(n);
        rule.confidence =
            static_cast<double>(count) / static_cast<double>(lhs_count.at(lhs));
        out.rules.push_back(std::move(rule));
      }
    }
  }
  std::sort(out.rules.begin(), out.rules.end());
  return out;
}

std::vector<size_t> ExampleSubTableRows() { return {0, 4, 6}; }

std::vector<size_t> ExampleSubTable1Cols() {
  return {kExampleCancelled, kExampleDepTime, kExampleYear, kExampleDistance};
}

std::vector<size_t> ExampleSubTable2Cols() {
  return {kExampleCancelled, kExampleDepTime, kExampleYear, kExampleSchedDep};
}

std::vector<size_t> ExampleSubTable3Cols() {
  return {kExampleCancelled, kExampleDepTime, kExampleSchedDep, kExampleDistance};
}

}  // namespace subtab
