#ifndef SUBTAB_DATA_EXAMPLE_FIXTURE_H_
#define SUBTAB_DATA_EXAMPLE_FIXTURE_H_

#include "subtab/binning/binned_table.h"
#include "subtab/rules/rule.h"
#include "subtab/table/table.h"

/// \file example_fixture.h
/// The worked example of Fig. 3 / Examples 3.8–3.9: the 8-row table T̂ whose
/// values are already bin names, and its rule family R — "all association
/// rules with column CANCELLED on the right, at least two columns on the
/// left, that hold for at least two rows". The paper derives exact numbers
/// from this fixture (13 + 8 = 21 rules; upcov = 36 cells; sub-tables
/// describing 28 / 26 / 24 cells; diversity 0.83 / 0.92; combined 0.80 /
/// 0.79; T̂(1)_sub optimal), which our test suite verifies bit-for-bit.

namespace subtab {

/// Column order of the fixture (matches Fig. 3 left-to-right).
inline constexpr size_t kExampleCancelled = 0;
inline constexpr size_t kExampleDepTime = 1;
inline constexpr size_t kExampleYear = 2;
inline constexpr size_t kExampleSchedDep = 3;
inline constexpr size_t kExampleDistance = 4;

/// The 8 x 5 table T̂ of Fig. 3. DEP._TIME NaNs are nulls; all columns are
/// categorical bin names.
Table MakeExampleTable();

/// Enumerates the rule family of Fig. 3 over any binned table: rules
/// lhs -> (rhs_col = bin) with at least `min_lhs_columns` antecedent columns
/// and at least `min_rows` supporting rows. Support/confidence are filled in
/// from the data. On the Fig. 3 fixture this yields exactly 21 rules.
RuleSet EnumerateRuleFamily(const BinnedTable& binned, size_t rhs_col,
                            size_t min_lhs_columns = 2, size_t min_rows = 2);

/// Row/column selections of the paper's example sub-tables (0-based ids
/// into T̂): rows {0, 4, 6} for all three; columns per Fig. 3 / Fig. 4.
std::vector<size_t> ExampleSubTableRows();
std::vector<size_t> ExampleSubTable1Cols();  ///< CANC, DEP, YEAR, DIST (28 cells)
std::vector<size_t> ExampleSubTable2Cols();  ///< CANC, DEP, YEAR, SCHED (26 cells)
std::vector<size_t> ExampleSubTable3Cols();  ///< CANC, DEP, SCHED, DIST (24 cells)

}  // namespace subtab

#endif  // SUBTAB_DATA_EXAMPLE_FIXTURE_H_
