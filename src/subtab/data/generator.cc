#include "subtab/data/generator.h"

#include <algorithm>
#include <unordered_map>

#include "subtab/util/string_util.h"

namespace subtab {

ColumnSpec ColumnSpec::Numeric(std::string name, std::vector<double> centers,
                               double spread, double nan_probability) {
  ColumnSpec spec;
  spec.name = std::move(name);
  spec.type = ColumnType::kNumeric;
  spec.group_centers = std::move(centers);
  spec.group_spread = spread;
  spec.nan_probability = nan_probability;
  return spec;
}

ColumnSpec ColumnSpec::Categorical(std::string name, std::vector<std::string> categories,
                                   double zipf_skew, double nan_probability) {
  ColumnSpec spec;
  spec.name = std::move(name);
  spec.type = ColumnType::kCategorical;
  spec.categories = std::move(categories);
  spec.zipf_skew = zipf_skew;
  spec.nan_probability = nan_probability;
  return spec;
}

size_t DatasetSpec::PreferredGroup(size_t profile, size_t column) const {
  SUBTAB_CHECK(column < columns.size());
  const size_t groups = columns[column].num_groups();
  // Deterministic pseudo-random profile->group mapping (SplitMix64-style
  // mix) so distinct profiles disagree on many columns.
  uint64_t h = profile * 0x9e3779b97f4a7c15ULL + column * 0xbf58476d1ce4e5b9ULL + seed;
  h ^= h >> 31;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 29;
  return static_cast<size_t>(h % groups);
}

size_t GeneratedDataset::ColumnIndex(const std::string& name) const {
  auto idx = table.schema().IndexOf(name);
  SUBTAB_CHECK(idx.has_value());
  return *idx;
}

namespace {

/// Cell state during generation: group assignment per (row, column);
/// kFree marks cells awaiting a background draw.
constexpr int32_t kFree = -1;

}  // namespace

GeneratedDataset GenerateDataset(const DatasetSpec& spec) {
  const size_t n = spec.num_rows;
  const size_t m = spec.columns.size();
  SUBTAB_CHECK(n > 0 && m > 0);
  Rng rng(spec.seed);

  std::unordered_map<std::string, size_t> col_index;
  for (size_t c = 0; c < m; ++c) {
    SUBTAB_CHECK(spec.columns[c].num_groups() > 0);
    col_index.emplace(spec.columns[c].name, c);
  }
  auto index_of = [&col_index](const std::string& name) {
    auto it = col_index.find(name);
    SUBTAB_CHECK(it != col_index.end());
    return it->second;
  };

  // ---- Partition rows into pattern regions + background. ------------------
  double total_support = 0.0;
  for (const auto& p : spec.patterns) total_support += p.support;
  SUBTAB_CHECK(total_support <= 0.9);

  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(&order);

  // Group assignment matrix, row-major.
  std::vector<int32_t> group(n * m, kFree);

  size_t cursor = 0;
  for (const auto& pattern : spec.patterns) {
    const size_t region = static_cast<size_t>(pattern.support * static_cast<double>(n));
    SUBTAB_CHECK(cursor + region <= n);
    const size_t rhs_col = index_of(pattern.rhs.first);
    const size_t rhs_groups = spec.columns[rhs_col].num_groups();
    SUBTAB_CHECK(pattern.rhs.second < rhs_groups);

    for (size_t i = 0; i < region; ++i) {
      const size_t row = order[cursor + i];
      for (const auto& [col_name, grp] : pattern.lhs) {
        const size_t c = index_of(col_name);
        SUBTAB_CHECK(grp < spec.columns[c].num_groups());
        group[row * m + c] = static_cast<int32_t>(grp);
      }
      if (rng.Bernoulli(pattern.confidence) || rhs_groups == 1) {
        group[row * m + rhs_col] = static_cast<int32_t>(pattern.rhs.second);
      } else {
        // Confidence miss: any *other* group of the rhs column.
        size_t other = rng.Uniform(rhs_groups - 1);
        if (other >= pattern.rhs.second) ++other;
        group[row * m + rhs_col] = static_cast<int32_t>(other);
      }
    }
    cursor += region;
  }

  // ---- Latent row profiles (cross-column correlation). --------------------
  std::vector<size_t> profile(n, 0);
  if (spec.num_profiles > 0) {
    for (size_t r = 0; r < n; ++r) {
      profile[r] = rng.Zipf(spec.num_profiles, spec.profile_zipf);
    }
  }

  // ---- Resolve background cells. -------------------------------------------
  // Groups are decided for *every* cell before NaN handling so that NaN
  // co-patterns also fire on background rows that happen to land in the
  // trigger group (e.g. background-cancelled flights must blank their
  // operational columns too). A cell follows its row's profile with
  // probability profile_affinity, otherwise the Zipf background.
  std::vector<char> forced(n * m, 0);  // Pattern-forced cells keep values.
  for (size_t i = 0; i < group.size(); ++i) forced[i] = (group[i] != kFree);
  for (size_t c = 0; c < m; ++c) {
    const size_t groups = spec.columns[c].num_groups();
    const double skew = spec.columns[c].zipf_skew;
    const double affinity = spec.columns[c].profile_affinity;
    for (size_t r = 0; r < n; ++r) {
      if (group[r * m + c] != kFree) continue;
      if (spec.num_profiles > 0 && affinity > 0.0 && rng.Bernoulli(affinity)) {
        group[r * m + c] =
            static_cast<int32_t>(spec.PreferredGroup(profile[r], c));
      } else {
        group[r * m + c] = static_cast<int32_t>(rng.Zipf(groups, skew));
      }
    }
  }

  // ---- Background NaN noise (never blanks pattern-forced cells). ----------
  std::vector<char> null_mask(n * m, 0);
  for (size_t c = 0; c < m; ++c) {
    const double p = spec.columns[c].nan_probability;
    if (p <= 0.0) continue;
    for (size_t r = 0; r < n; ++r) {
      if (!forced[r * m + c] && rng.Bernoulli(p)) null_mask[r * m + c] = 1;
    }
  }

  // ---- NaN co-patterns (these *do* override: cancellation blanks cells). --
  for (const auto& nan_pattern : spec.nan_patterns) {
    const size_t trigger = index_of(nan_pattern.trigger_column);
    for (size_t r = 0; r < n; ++r) {
      if (null_mask[r * m + trigger]) continue;  // Trigger cell itself null.
      if (group[r * m + trigger] ==
          static_cast<int32_t>(nan_pattern.trigger_group)) {
        for (const auto& name : nan_pattern.nan_columns) {
          null_mask[r * m + index_of(name)] = 1;
        }
      }
    }
  }

  // ---- Materialize values. -------------------------------------------------
  std::vector<Column> columns;
  columns.reserve(m);
  for (size_t c = 0; c < m; ++c) {
    const ColumnSpec& cs = spec.columns[c];
    Column col(cs.name, cs.type);
    col.Reserve(n);
    for (size_t r = 0; r < n; ++r) {
      if (null_mask[r * m + c]) {
        col.AppendNull();
        continue;
      }
      const int32_t g = group[r * m + c];
      SUBTAB_DCHECK(g >= 0);
      if (cs.type == ColumnType::kNumeric) {
        col.AppendNumeric(rng.Normal(cs.group_centers[static_cast<size_t>(g)],
                                     cs.group_spread));
      } else {
        col.AppendCategorical(cs.categories[static_cast<size_t>(g)]);
      }
    }
    columns.push_back(std::move(col));
  }

  Result<Table> table = Table::Make(std::move(columns));
  SUBTAB_CHECK(table.ok());
  GeneratedDataset out;
  out.table = std::move(table).value();
  out.spec = spec;
  return out;
}

}  // namespace subtab
