#ifndef SUBTAB_DATA_GENERATOR_H_
#define SUBTAB_DATA_GENERATOR_H_

#include <string>
#include <vector>

#include "subtab/table/table.h"
#include "subtab/util/rng.h"

/// \file generator.h
/// Synthetic dataset generation with *planted* association rules. The
/// paper's evaluation uses Kaggle dumps we cannot redistribute; these
/// generators reproduce their shape — column counts and types, NaN
/// structure, and prominent rule patterns of controllable support and
/// confidence — while additionally exposing the planted patterns as ground
/// truth, which the simulated user study (Table 1) and the insight-checking
/// machinery rely on. See DESIGN.md §4 for the substitution argument.
///
/// Generation model: every column has a small number of *value groups*
/// (modes for numeric columns, categories for categorical ones). Rows are
/// partitioned into pattern regions and background; a planted pattern forces
/// its lhs cells into specific groups and, with probability `confidence`,
/// its rhs cell too. Binning recovers the groups, so the planted patterns
/// surface as minable association rules.

namespace subtab {

/// One column of a synthetic dataset.
struct ColumnSpec {
  std::string name;
  ColumnType type = ColumnType::kNumeric;

  // -- Numeric columns: a mixture of well-separated Gaussian groups. --------
  std::vector<double> group_centers;  ///< One mode per group.
  double group_spread = 1.0;          ///< Stddev within a group.

  // -- Categorical columns: the category list; group i = category i. --------
  std::vector<std::string> categories;
  double zipf_skew = 1.0;  ///< Background category popularity skew.

  /// Background probability that a cell is null.
  double nan_probability = 0.0;

  /// Probability that a background cell follows the row's latent profile
  /// (see DatasetSpec::num_profiles) instead of the Zipf background draw.
  /// 0 = profile-independent noise (e.g. id-like columns).
  double profile_affinity = 0.0;

  size_t num_groups() const {
    return type == ColumnType::kNumeric ? group_centers.size() : categories.size();
  }

  /// Shorthand factories.
  static ColumnSpec Numeric(std::string name, std::vector<double> centers,
                            double spread = 1.0, double nan_probability = 0.0);
  static ColumnSpec Categorical(std::string name, std::vector<std::string> categories,
                                double zipf_skew = 1.0, double nan_probability = 0.0);
};

/// One planted pattern: lhs column groups -> rhs column group.
struct PlantedPattern {
  /// (column name, group index) conjuncts.
  std::vector<std::pair<std::string, size_t>> lhs;
  std::pair<std::string, size_t> rhs;
  double support = 0.1;     ///< Fraction of rows in this pattern's region.
  double confidence = 0.9;  ///< P(rhs group | lhs groups) within the region.
  std::string description;  ///< e.g. "long flights are rarely cancelled".
};

/// A co-missingness rule: when `trigger` falls in `trigger_group`, all of
/// `nan_columns` become null (e.g. cancelled flights have NaN delays).
struct NanPattern {
  std::string trigger_column;
  size_t trigger_group = 0;
  std::vector<std::string> nan_columns;
};

/// Full dataset specification.
struct DatasetSpec {
  std::string name;
  size_t num_rows = 1000;
  std::vector<ColumnSpec> columns;
  std::vector<PlantedPattern> patterns;
  std::vector<NanPattern> nan_patterns;

  /// Latent row profiles: every row draws a profile (Zipf-weighted); columns
  /// with profile_affinity > 0 prefer a profile-specific group. This gives
  /// the data the pervasive cross-column correlation of real tables (flight
  /// legs, attack campaigns, music genres, ...) on top of which the planted
  /// patterns sit as crisp ground truth. 0 disables profiles.
  size_t num_profiles = 0;
  double profile_zipf = 1.0;

  uint64_t seed = 42;

  /// The deterministic group a profile prefers in a column (valid when
  /// num_profiles > 0; exposed so tests can verify the correlation).
  size_t PreferredGroup(size_t profile, size_t column) const;
};

/// A generated dataset: the table plus its ground truth.
struct GeneratedDataset {
  Table table;
  DatasetSpec spec;

  /// Convenience: index of a named column in the spec/table.
  size_t ColumnIndex(const std::string& name) const;
};

/// Generates a table from a spec. Pattern regions are disjoint; the sum of
/// pattern supports must be <= 0.9 (the rest is background noise).
GeneratedDataset GenerateDataset(const DatasetSpec& spec);

}  // namespace subtab

#endif  // SUBTAB_DATA_GENERATOR_H_
