#include "subtab/eda/analyst.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "subtab/util/bitset.h"
#include "subtab/util/string_util.h"

namespace subtab {

AnalystReport SimulateAnalyst(const BinnedTable& binned,
                              const std::vector<size_t>& row_ids,
                              const std::vector<size_t>& col_ids,
                              const AnalystOptions& options) {
  AnalystReport report;

  // ---- What the analyst sees: co-occurrence counts in the display. --------
  std::map<std::pair<Token, Token>, size_t> pair_counts;
  for (size_t r : row_ids) {
    for (size_t i = 0; i < col_ids.size(); ++i) {
      for (size_t j = i + 1; j < col_ids.size(); ++j) {
        Token a = binned.token(r, col_ids[i]);
        Token b = binned.token(r, col_ids[j]);
        if (a > b) std::swap(a, b);
        ++pair_counts[{a, b}];
      }
    }
  }

  struct Candidate {
    Token a;
    Token b;
    size_t repeats;
  };
  std::vector<Candidate> candidates;
  for (const auto& [pair, count] : pair_counts) {
    if (count < options.min_repeats) continue;
    if (options.focus_column >= 0) {
      const auto focus = static_cast<uint32_t>(options.focus_column);
      if (TokenColumn(pair.first) != focus && TokenColumn(pair.second) != focus) {
        continue;  // Off-topic for the analysis task.
      }
    }
    candidates.push_back({pair.first, pair.second, count});
  }
  // Salience order: most repeated first, deterministic tie-break.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& x, const Candidate& y) {
                     if (x.repeats != y.repeats) return x.repeats > y.repeats;
                     if (x.a != y.a) return x.a < y.a;
                     return x.b < y.b;
                   });
  if (candidates.empty()) return report;

  // ---- Fact-check each insight against the full table. --------------------
  const size_t n = binned.num_rows();
  std::unordered_map<Token, Bitset> tids;
  for (size_t r = 0; r < n; ++r) {
    const Token* row = binned.row_data(r);
    for (size_t c = 0; c < binned.num_columns(); ++c) {
      auto [it, inserted] = tids.try_emplace(row[c], Bitset(n));
      it->second.Set(r);
    }
  }

  // Drop trivial candidates ("almost every row has this value anyway").
  const auto trivial = [&](Token t) {
    return static_cast<double>(tids.at(t).Count()) >
           options.max_token_support * static_cast<double>(n);
  };
  candidates.erase(std::remove_if(candidates.begin(), candidates.end(),
                                  [&](const Candidate& c) {
                                    return trivial(c.a) || trivial(c.b);
                                  }),
                   candidates.end());
  if (candidates.size() > options.max_insights) {
    candidates.resize(options.max_insights);
  }

  for (const Candidate& cand : candidates) {
    const Bitset& ta = tids.at(cand.a);
    const Bitset& tb = tids.at(cand.b);
    const size_t joint = Bitset::IntersectionCount(ta, tb);
    const size_t ca = ta.Count();
    const size_t cb = tb.Count();
    const double support = static_cast<double>(joint) / static_cast<double>(n);
    const double conf_ab = ca == 0 ? 0.0 : static_cast<double>(joint) / ca;
    const double conf_ba = cb == 0 ? 0.0 : static_cast<double>(joint) / cb;

    Insight insight;
    insight.a = cand.a;
    insight.b = cand.b;
    insight.repeats = cand.repeats;
    insight.correct = support >= options.truth_support &&
                      std::max(conf_ab, conf_ba) >= options.truth_confidence;
    insight.text = StrFormat("%s goes with %s (seen %zux)",
                             binned.TokenLabel(cand.a).c_str(),
                             binned.TokenLabel(cand.b).c_str(), cand.repeats);
    report.num_correct += insight.correct ? 1 : 0;
    report.insights.push_back(std::move(insight));
  }
  report.num_total = report.insights.size();
  return report;
}

}  // namespace subtab
