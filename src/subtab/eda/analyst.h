#ifndef SUBTAB_EDA_ANALYST_H_
#define SUBTAB_EDA_ANALYST_H_

#include <string>
#include <vector>

#include "subtab/data/generator.h"
#include "subtab/eda/session.h"

/// \file analyst.h
/// The simulated analyst behind our reproduction of the user study
/// (Table 1). The live study asked 15 participants to write down insights
/// while looking only at displayed sub-tables, then manually marked each
/// insight correct or statistically wrong. The simulation does exactly
/// that, mechanically:
///
///   * the analyst sees ONLY the displayed k x l sub-table (binned);
///   * any (col=bin, col=bin) conjunction recurring in >= `min_repeats`
///     displayed rows *looks like* a pattern and is reported as an insight;
///   * an insight is *correct* iff the association actually holds in the
///     full table (confidence >= `truth_confidence` in either direction and
///     joint support >= `truth_support`) — the mechanical analogue of the
///     authors' statistical fact-check.
///
/// Misleading sub-tables (random draws, repetitive clusters) surface
/// spurious repetitions that fail the fact-check, reproducing the paper's
/// observation that RAN/NC users "reached false conclusions since many of
/// the sub-tables were misleading".

namespace subtab {

struct AnalystOptions {
  /// Repetitions within the display that make a co-occurrence look like a
  /// pattern to the analyst.
  size_t min_repeats = 2;
  /// How many insights one analyst reports per task (most salient first).
  size_t max_insights = 6;
  /// Full-table thresholds for an insight to be factually correct.
  double truth_support = 0.03;
  double truth_confidence = 0.6;
  /// Task focus: if >= 0, only co-occurrences touching this column count as
  /// insights (the study's tasks were target-driven, e.g. "what makes songs
  /// popular"; off-topic observations were discarded by the authors).
  int focus_column = -1;
  /// Tokens more frequent than this fraction of rows are too trivial to
  /// report ("all flights are from 2015" is not an insight).
  double max_token_support = 0.9;
};

/// One reported insight.
struct Insight {
  Token a = 0;
  Token b = 0;
  size_t repeats = 0;   ///< Occurrences in the displayed sub-table.
  bool correct = false; ///< Passes the full-table fact-check.
  std::string text;
};

/// The outcome of one simulated analysis task.
struct AnalystReport {
  std::vector<Insight> insights;
  size_t num_correct = 0;
  size_t num_total = 0;
};

/// Runs the simulated analyst on one displayed sub-table.
AnalystReport SimulateAnalyst(const BinnedTable& binned,
                              const std::vector<size_t>& row_ids,
                              const std::vector<size_t>& col_ids,
                              const AnalystOptions& options);

}  // namespace subtab

#endif  // SUBTAB_EDA_ANALYST_H_
