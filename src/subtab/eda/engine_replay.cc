#include "subtab/eda/engine_replay.h"

#include <unordered_set>

namespace subtab {

EngineReplayResult ReplayThroughEngine(service::ServingEngine& engine,
                                       const std::string& table_id,
                                       const std::vector<Session>& sessions,
                                       size_t k, size_t l,
                                       std::optional<uint64_t> seed) {
  std::shared_ptr<const SubTab> model = engine.GetModel(table_id);
  SUBTAB_CHECK(model != nullptr);
  const BinnedTable& binned = model->preprocessed().binned();

  // Submit every scoreable step up front; the engine's pool provides the
  // concurrency and its caches absorb revisited drill-downs.
  struct Pending {
    const SessionStep* next;  // Successor whose fragment is scored.
    std::shared_future<service::SelectResponse> future;
  };
  std::vector<Pending> pending;
  for (const Session& session : sessions) {
    for (size_t i = 0; i + 1 < session.steps.size(); ++i) {
      service::SelectRequest request;
      request.table_id = table_id;
      request.query = session.steps[i].query;
      request.k = k;
      request.l = l;
      request.seed = seed;
      pending.push_back(
          Pending{&session.steps[i + 1], engine.SubmitSelect(request)});
    }
  }

  EngineReplayResult result;
  result.queries = pending.size();
  std::unordered_set<const SubTabView*> counted_views;
  for (Pending& p : pending) {
    const service::SelectResponse& response = p.future.get();
    if (!response.status.ok()) {
      // Mirrors ReplaySessions: steps whose query yields no rows are skipped.
      ++result.failures;
      continue;
    }
    if (response.from_cache) {
      ++result.cache_hits;
    } else if (counted_views.insert(response.view.get()).second) {
      // Count each selection's work once: cache hits did none, and
      // coalesced duplicates share one execution (and one stored view).
      result.stats.total_selection_seconds += response.view->selection_seconds;
    }
    ++result.stats.steps_scored;
    if (FragmentCaptured(p.next->fragment, binned, response.view->row_ids,
                         response.view->col_ids)) {
      ++result.stats.fragments_captured;
    }
  }
  if (result.stats.steps_scored > 0) {
    result.stats.capture_rate =
        static_cast<double>(result.stats.fragments_captured) /
        static_cast<double>(result.stats.steps_scored);
  }
  return result;
}

}  // namespace subtab
