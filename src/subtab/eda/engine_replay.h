#ifndef SUBTAB_EDA_ENGINE_REPLAY_H_
#define SUBTAB_EDA_ENGINE_REPLAY_H_

#include <string>
#include <vector>

#include "subtab/eda/replay.h"
#include "subtab/eda/session.h"
#include "subtab/service/engine.h"

/// \file engine_replay.h
/// Replays EDA sessions *through the serving engine* instead of the serial
/// selector loop of replay.h: every step's cumulative query becomes a
/// SelectRequest, all requests are submitted up front (so the engine's
/// worker pool, selection cache, and in-flight dedup carry the load —
/// sessions frequently revisit the same drill-down), and fragment capture is
/// scored from the resolved futures with the same semantics as
/// ReplaySessions. This is the serving analogue of the Sec. 6.2.2 study and
/// the workload driver for serving_demo / bench_serving_throughput.

namespace subtab {

struct EngineReplayResult {
  ReplayStats stats;     ///< Capture stats, comparable to ReplaySessions.
  size_t queries = 0;    ///< Step queries submitted to the engine.
  size_t failures = 0;   ///< Non-OK responses (e.g. empty query results).
  size_t cache_hits = 0; ///< Responses served from the selection cache.
};

/// Submits every step of every session against `table_id` and scores
/// next-step fragment capture. The table must already be registered on the
/// engine. `seed` is forwarded to every request (nullopt = model default).
EngineReplayResult ReplayThroughEngine(service::ServingEngine& engine,
                                       const std::string& table_id,
                                       const std::vector<Session>& sessions,
                                       size_t k, size_t l,
                                       std::optional<uint64_t> seed = std::nullopt);

}  // namespace subtab

#endif  // SUBTAB_EDA_ENGINE_REPLAY_H_
