#include "subtab/eda/replay.h"

#include "subtab/util/stopwatch.h"

namespace subtab {

ReplayStats ReplaySessions(const Table& table, const BinnedTable& binned,
                           const std::vector<Session>& sessions, size_t k, size_t l,
                           const SelectorFn& selector) {
  ReplayStats stats;
  for (const Session& session : sessions) {
    for (size_t i = 0; i + 1 < session.steps.size(); ++i) {
      const SessionStep& step = session.steps[i];
      const SessionStep& next = session.steps[i + 1];

      Result<QueryResult> result = RunQuery(table, step.query);
      SUBTAB_CHECK(result.ok());
      if (result->row_ids.empty()) continue;

      Stopwatch watch;
      auto [rows, cols] = selector(result->row_ids, result->col_ids, k, l);
      stats.total_selection_seconds += watch.ElapsedSeconds();

      ++stats.steps_scored;
      if (FragmentCaptured(next.fragment, binned, rows, cols)) {
        ++stats.fragments_captured;
      }
    }
  }
  if (stats.steps_scored > 0) {
    stats.capture_rate = static_cast<double>(stats.fragments_captured) /
                         static_cast<double>(stats.steps_scored);
  }
  return stats;
}

}  // namespace subtab
