#ifndef SUBTAB_EDA_REPLAY_H_
#define SUBTAB_EDA_REPLAY_H_

#include <functional>

#include "subtab/eda/session.h"

/// \file replay.h
/// The simulation-based study of Sec. 6.2.2: replay each session, build a
/// sub-table after every step with a given algorithm, and measure the
/// fraction of next-step fragments that already appear in the displayed
/// sub-table (Fig. 6 reports this versus sub-table width).

namespace subtab {

/// A sub-table selection strategy: given the visible scope (query result
/// rows/columns in source ids), produce k rows and l columns.
using SelectorFn = std::function<std::pair<std::vector<size_t>, std::vector<size_t>>(
    const std::vector<size_t>& rows, const std::vector<size_t>& cols, size_t k,
    size_t l)>;

/// Aggregate capture statistics of one replay run.
struct ReplayStats {
  size_t steps_scored = 0;       ///< Steps with a successor (fragments tested).
  size_t fragments_captured = 0;
  double capture_rate = 0.0;     ///< captured / scored.
  double total_selection_seconds = 0.0;
};

/// Replays `sessions` over the table behind `binned`, building a k x l
/// sub-table after each step with `selector` and testing the next step's
/// fragment. `table` must be the source table of `binned`.
ReplayStats ReplaySessions(const Table& table, const BinnedTable& binned,
                           const std::vector<Session>& sessions, size_t k, size_t l,
                           const SelectorFn& selector);

}  // namespace subtab

#endif  // SUBTAB_EDA_REPLAY_H_
