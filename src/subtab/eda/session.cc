#include "subtab/eda/session.h"

#include <algorithm>

namespace subtab {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kFilter:
      return "filter";
    case OpKind::kProject:
      return "project";
    case OpKind::kGroupBy:
      return "group_by";
    case OpKind::kSort:
      return "sort";
  }
  return "?";
}

bool FragmentCaptured(const Fragment& fragment, const BinnedTable& binned,
                      const std::vector<size_t>& row_ids,
                      const std::vector<size_t>& col_ids) {
  // Resolve the fragment's column.
  const auto& names = binned.column_names();
  size_t col = names.size();
  for (size_t c = 0; c < names.size(); ++c) {
    if (names[c] == fragment.column) {
      col = c;
      break;
    }
  }
  SUBTAB_CHECK(col < names.size());
  if (std::find(col_ids.begin(), col_ids.end(), col) == col_ids.end()) return false;
  if (!fragment.has_value) return true;

  // A valued fragment is captured if some displayed cell of the column falls
  // in the same bin as the value.
  const ColumnBinning& cb = binned.binning().column(col);
  uint32_t want_bin;
  if (fragment.value_is_numeric) {
    SUBTAB_CHECK(cb.type == ColumnType::kNumeric);
    want_bin = cb.BinOfNumeric(fragment.num_value);
  } else {
    SUBTAB_CHECK(cb.type == ColumnType::kCategorical);
    // Locate the label among the bin labels (top categories keep their own
    // label; tail categories live in "other").
    want_bin = cb.num_value_bins;  // Sentinel: not found -> "other" bin if any.
    for (uint32_t b = 0; b < cb.num_value_bins; ++b) {
      if (cb.labels[b] == fragment.str_value) {
        want_bin = b;
        break;
      }
    }
    if (want_bin == cb.num_value_bins) {
      // Tail category: it lives in the "other" bin iff one exists.
      bool has_other = cb.num_value_bins > 0 &&
                       cb.labels[cb.num_value_bins - 1] == "other";
      if (!has_other) return false;
      want_bin = cb.num_value_bins - 1;
    }
  }
  const Token want = MakeToken(static_cast<uint32_t>(col), want_bin);
  for (size_t r : row_ids) {
    if (binned.token(r, col) == want) return true;
  }
  return false;
}

}  // namespace subtab
