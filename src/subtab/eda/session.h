#ifndef SUBTAB_EDA_SESSION_H_
#define SUBTAB_EDA_SESSION_H_

#include <string>
#include <vector>

#include "subtab/binning/binned_table.h"
#include "subtab/core/subtab.h"
#include "subtab/table/query.h"

/// \file session.h
/// EDA-session model for the simulation study of Sec. 6.2.2. A session is a
/// series of exploratory steps (select / project / group-by / sort); each
/// step carries the *fragment* it introduces — the parameter an analyst had
/// to come up with (a selection term, a group-by attribute, ...). The study
/// asks: does the fragment of step i+1 already appear in the sub-table
/// displayed after step i?

namespace subtab {

/// The exploration operation kinds the replayed sessions use (Sec. 6.2.2:
/// "select, project, group-by, and sort operations").
enum class OpKind { kFilter, kProject, kGroupBy, kSort };

const char* OpKindName(OpKind kind);

/// The parameter of one step that a sub-table could have suggested.
struct Fragment {
  std::string column;           ///< Referenced column (all op kinds).
  bool has_value = false;       ///< Filters also carry a value.
  bool value_is_numeric = true;
  double num_value = 0.0;
  std::string str_value;
};

/// One step of a session.
struct SessionStep {
  OpKind kind = OpKind::kFilter;
  Fragment fragment;
  /// The cumulative SP query visible *after* this step executes (filters are
  /// conjunctive; projection replaces; sort applies to the result).
  SpQuery query;
};

/// One recorded exploration session.
struct Session {
  std::vector<SessionStep> steps;
};

/// True iff `fragment` appears in the displayed sub-table: its column is
/// among the selected columns and, for valued fragments, some displayed cell
/// of that column falls in the same bin as the value (the notion of
/// "appears" the paper uses for selection terms).
bool FragmentCaptured(const Fragment& fragment, const BinnedTable& binned,
                      const std::vector<size_t>& row_ids,
                      const std::vector<size_t>& col_ids);

}  // namespace subtab

#endif  // SUBTAB_EDA_SESSION_H_
