#include "subtab/eda/session_generator.h"

#include <algorithm>

namespace subtab {
namespace {

/// A (column, concrete value) pick for a step parameter.
struct ValuePick {
  size_t col = 0;
  bool is_numeric = true;
  double num_value = 0.0;
  std::string str_value;
};

/// Draws a parameter: with `pattern_bias`, a random conjunct of a random
/// planted pattern (materialized as a concrete value from a matching row);
/// otherwise a uniformly random (column, row-value) pair.
ValuePick DrawPick(const GeneratedDataset& dataset,
                   const std::vector<size_t>& visible_rows, double pattern_bias,
                   Rng* rng) {
  const Table& t = dataset.table;
  for (int attempt = 0; attempt < 32; ++attempt) {
    size_t col;
    const ColumnSpec* pattern_group = nullptr;
    size_t group = 0;
    if (!dataset.spec.patterns.empty() && rng->Bernoulli(pattern_bias)) {
      const PlantedPattern& p =
          dataset.spec.patterns[rng->Uniform(dataset.spec.patterns.size())];
      // Pick a conjunct: lhs entries or the rhs. Analysts chase the pattern
      // *values* they noticed, so the value comes from that conjunct's group.
      const size_t which = rng->Uniform(p.lhs.size() + 1);
      const std::string& name =
          which < p.lhs.size() ? p.lhs[which].first : p.rhs.first;
      group = which < p.lhs.size() ? p.lhs[which].second : p.rhs.second;
      col = dataset.ColumnIndex(name);
      pattern_group = &dataset.spec.columns[col];
    } else {
      col = rng->Uniform(t.num_columns());
    }
    const Column& c = t.column(col);
    ValuePick pick;
    pick.col = col;
    pick.is_numeric = c.is_numeric();
    if (pattern_group != nullptr) {
      if (pattern_group->type == ColumnType::kNumeric) {
        pick.num_value = rng->Normal(pattern_group->group_centers[group],
                                     pattern_group->group_spread);
      } else {
        pick.str_value = pattern_group->categories[group];
      }
      return pick;
    }
    // Exploratory pick: a value from a random visible row (so filters always
    // have support in the current result).
    const size_t row = visible_rows[rng->Uniform(visible_rows.size())];
    if (c.is_null(row)) continue;
    if (c.is_numeric()) {
      pick.num_value = c.num_value(row);
    } else {
      pick.str_value = std::string(c.cat_value(row));
    }
    return pick;
  }
  // Degenerate fallback: first non-null cell of column 0.
  ValuePick pick;
  pick.col = 0;
  const Column& c = t.column(0);
  for (size_t r = 0; r < c.size(); ++r) {
    if (c.is_null(r)) continue;
    pick.is_numeric = c.is_numeric();
    if (c.is_numeric()) {
      pick.num_value = c.num_value(r);
    } else {
      pick.str_value = std::string(c.cat_value(r));
    }
    break;
  }
  return pick;
}

}  // namespace

std::vector<Session> GenerateSessions(const GeneratedDataset& dataset,
                                      const SessionGeneratorOptions& options) {
  const Table& t = dataset.table;
  Rng rng(options.seed);
  std::vector<Session> sessions;
  sessions.reserve(options.num_sessions);

  const std::vector<double> op_weights = {options.p_filter, options.p_group_by,
                                          options.p_sort, options.p_project};
  const OpKind op_kinds[] = {OpKind::kFilter, OpKind::kGroupBy, OpKind::kSort,
                             OpKind::kProject};

  for (size_t s = 0; s < options.num_sessions; ++s) {
    Session session;
    SpQuery query;  // Cumulative state.
    const size_t steps =
        options.min_steps + rng.Uniform(options.max_steps - options.min_steps + 1);

    for (size_t step = 0; step < steps; ++step) {
      // Current visible rows under the cumulative filters.
      Result<QueryResult> current = RunQuery(t, query);
      SUBTAB_CHECK(current.ok());
      const std::vector<size_t>& visible = current->row_ids;
      if (visible.size() < options.min_result_rows) break;

      const OpKind kind = op_kinds[rng.Categorical(op_weights)];
      SessionStep st;
      st.kind = kind;
      const ValuePick pick = DrawPick(dataset, visible, options.pattern_bias, &rng);
      const std::string& col_name = t.column(pick.col).name();
      st.fragment.column = col_name;

      switch (kind) {
        case OpKind::kFilter: {
          st.fragment.has_value = true;
          st.fragment.value_is_numeric = pick.is_numeric;
          st.fragment.num_value = pick.num_value;
          st.fragment.str_value = pick.str_value;
          Predicate pred =
              pick.is_numeric
                  ? Predicate::Num(col_name,
                                   rng.Bernoulli(0.5) ? CmpOp::kGe : CmpOp::kLe,
                                   pick.num_value)
                  : Predicate::Str(col_name, CmpOp::kEq, pick.str_value);
          SpQuery trial = query;
          trial.filters.push_back(pred);
          Result<QueryResult> after = RunQuery(t, trial);
          SUBTAB_CHECK(after.ok());
          if (after->row_ids.size() < options.min_result_rows) {
            // Too selective; retry this step as a different op next loop.
            continue;
          }
          query = std::move(trial);
          break;
        }
        case OpKind::kProject: {
          // Keep a random ~60% of columns, always including the picked one.
          std::vector<std::string> proj;
          for (size_t c = 0; c < t.num_columns(); ++c) {
            if (c == pick.col || rng.Bernoulli(0.6)) {
              proj.push_back(t.column(c).name());
            }
          }
          query.projection = std::move(proj);
          break;
        }
        case OpKind::kGroupBy:
        case OpKind::kSort: {
          // Group-by / sort do not change the visible SP result (the
          // sub-table is built over the SP portion); they contribute their
          // attribute as the fragment. Sorting is recorded on the query.
          if (kind == OpKind::kSort) {
            query.order_by = col_name;
            query.descending = rng.Bernoulli(0.5);
          }
          break;
        }
      }
      st.query = query;
      session.steps.push_back(std::move(st));
    }
    if (session.steps.size() >= 2) sessions.push_back(std::move(session));
  }
  return sessions;
}

}  // namespace subtab
