#ifndef SUBTAB_EDA_SESSION_GENERATOR_H_
#define SUBTAB_EDA_SESSION_GENERATOR_H_

#include "subtab/data/generator.h"
#include "subtab/eda/session.h"

/// \file session_generator.h
/// Synthetic EDA sessions standing in for the 122 recorded sessions of [22]
/// that the paper replays over the CY dataset (Sec. 6.2.2). The generator
/// mimics analyst behaviour documented there: a mix of select / project /
/// group-by / sort steps whose parameters are drawn mostly from *real
/// patterns of the data* (analysts drill into values they believe matter —
/// here, the planted patterns) with a uniform-random remainder. See
/// DESIGN.md §4 for the substitution argument.

namespace subtab {

struct SessionGeneratorOptions {
  size_t num_sessions = 122;  ///< Paper's session count.
  size_t min_steps = 3;
  size_t max_steps = 8;
  /// Probability that a step's parameter comes from a planted pattern
  /// (vs. a uniformly random column/value).
  double pattern_bias = 0.7;
  /// Op mix (normalized internally).
  double p_filter = 0.45;
  double p_group_by = 0.25;
  double p_sort = 0.15;
  double p_project = 0.15;
  /// A filter step is rejected if it leaves fewer rows than this.
  size_t min_result_rows = 25;
  uint64_t seed = 42;
};

/// Generates sessions over a dataset. Each returned session's steps carry
/// cumulative SP queries that are valid (non-empty) on the dataset's table.
std::vector<Session> GenerateSessions(const GeneratedDataset& dataset,
                                      const SessionGeneratorOptions& options);

}  // namespace subtab

#endif  // SUBTAB_EDA_SESSION_GENERATOR_H_
