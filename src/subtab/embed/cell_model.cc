#include "subtab/embed/cell_model.h"

namespace subtab {

std::vector<float> CellModel::RowVector(size_t row,
                                        const std::vector<size_t>& col_ids) const {
  SUBTAB_CHECK(!col_ids.empty());
  std::vector<float> acc(dim(), 0.0f);
  for (size_t c : col_ids) {
    const auto v = CellVector(row, c);
    for (size_t d = 0; d < acc.size(); ++d) acc[d] += v[d];
  }
  const float inv = 1.0f / static_cast<float>(col_ids.size());
  for (float& x : acc) x *= inv;
  return acc;
}

std::vector<float> CellModel::ColumnVector(size_t col,
                                           const std::vector<size_t>& row_ids) const {
  SUBTAB_CHECK(!row_ids.empty());
  std::vector<float> acc(dim(), 0.0f);
  for (size_t r : row_ids) {
    const auto v = CellVector(r, col);
    for (size_t d = 0; d < acc.size(); ++d) acc[d] += v[d];
  }
  const float inv = 1.0f / static_cast<float>(row_ids.size());
  for (float& x : acc) x *= inv;
  return acc;
}

std::vector<float> CellModel::RowMatrix(const std::vector<size_t>& row_ids,
                                        const std::vector<size_t>& col_ids) const {
  std::vector<float> matrix;
  matrix.reserve(row_ids.size() * dim());
  for (size_t r : row_ids) {
    const std::vector<float> v = RowVector(r, col_ids);
    matrix.insert(matrix.end(), v.begin(), v.end());
  }
  return matrix;
}

}  // namespace subtab
