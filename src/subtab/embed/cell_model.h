#ifndef SUBTAB_EMBED_CELL_MODEL_H_
#define SUBTAB_EMBED_CELL_MODEL_H_

#include <span>
#include <vector>

#include "subtab/binning/binned_table.h"
#include "subtab/embed/word2vec.h"

/// \file cell_model.h
/// The cell-to-vector model M of Algorithm 2 (line 4): maps every table cell
/// to the embedding vector of its (column, bin) token, and derives
/// tuple-vectors and column-vectors by component-wise averaging (lines 8–10
/// and 13–15). The model is computed once at pre-processing time and reused
/// for every query over the table.

namespace subtab {

/// Cell-to-vector model over one binned table.
class CellModel {
 public:
  CellModel() = default;
  CellModel(const BinnedTable* binned, Word2VecModel model)
      : binned_(binned), model_(std::move(model)) {
    SUBTAB_CHECK(binned_ != nullptr);
    SUBTAB_CHECK(model_.vocab_size() == binned_->total_bins());
  }

  size_t dim() const { return model_.dim(); }
  const Word2VecModel& word2vec() const { return model_; }
  const BinnedTable& binned() const { return *binned_; }

  /// M(t(u)): vector of the cell at (row, col).
  std::span<const float> CellVector(size_t row, size_t col) const {
    return model_.vector(binned_->DenseIndex(binned_->token(row, col)));
  }

  /// Vector of a token directly.
  std::span<const float> TokenVector(Token t) const {
    return model_.vector(binned_->DenseIndex(t));
  }

  /// Tuple-vector: average of the row's cell vectors over `col_ids`
  /// (Algorithm 2 line 9).
  std::vector<float> RowVector(size_t row, const std::vector<size_t>& col_ids) const;

  /// Column-vector: average of the column's cell vectors over `row_ids`
  /// (Algorithm 2 line 14).
  std::vector<float> ColumnVector(size_t col, const std::vector<size_t>& row_ids) const;

  /// Stacks RowVector for each row id into a row-major matrix.
  std::vector<float> RowMatrix(const std::vector<size_t>& row_ids,
                               const std::vector<size_t>& col_ids) const;

 private:
  const BinnedTable* binned_ = nullptr;
  Word2VecModel model_;
};

}  // namespace subtab

#endif  // SUBTAB_EMBED_CELL_MODEL_H_
