#include "subtab/embed/corpus.h"

#include <algorithm>

namespace subtab {

Corpus Corpus::FromSentences(std::vector<Sentence> sentences, size_t vocab_size) {
  Corpus corpus;
  corpus.vocab_size_ = vocab_size;
  for (const Sentence& s : sentences) {
    corpus.total_words_ += s.size();
    for (uint32_t w : s) SUBTAB_CHECK(w < vocab_size);
  }
  corpus.sentences_ = std::move(sentences);
  return corpus;
}

Corpus Corpus::Build(const BinnedTable& binned, const CorpusOptions& options, Rng* rng) {
  SUBTAB_CHECK(rng != nullptr);
  Corpus corpus;
  corpus.vocab_size_ = binned.total_bins();

  const size_t n = binned.num_rows();
  const size_t m = binned.num_columns();
  const size_t total = (options.tuple_sentences ? n : 0) +
                       (options.column_sentences ? m : 0);

  // Choose which sentences to materialize. Sentence ids: [0, n) are rows,
  // [n, n+m) are columns (offsets shift when rows are disabled).
  std::vector<size_t> chosen;
  if (total <= options.max_sentences) {
    chosen.resize(total);
    for (size_t i = 0; i < total; ++i) chosen[i] = i;
  } else {
    chosen = rng->SampleWithoutReplacement(total, options.max_sentences);
    std::sort(chosen.begin(), chosen.end());
  }

  const size_t row_count = options.tuple_sentences ? n : 0;
  corpus.sentences_.reserve(chosen.size());
  for (size_t id : chosen) {
    Sentence s;
    if (id < row_count) {
      const size_t r = id;
      s.reserve(m);
      const Token* row = binned.row_data(r);
      for (size_t c = 0; c < m; ++c) {
        s.push_back(static_cast<uint32_t>(binned.DenseIndex(row[c])));
      }
    } else {
      const size_t c = id - row_count;
      s.reserve(n);
      for (size_t r = 0; r < n; ++r) {
        s.push_back(static_cast<uint32_t>(binned.DenseIndex(binned.token(r, c))));
      }
    }
    corpus.total_words_ += s.size();
    corpus.sentences_.push_back(std::move(s));
  }
  return corpus;
}

}  // namespace subtab
