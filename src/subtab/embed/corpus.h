#ifndef SUBTAB_EMBED_CORPUS_H_
#define SUBTAB_EMBED_CORPUS_H_

#include <cstdint>
#include <vector>

#include "subtab/binning/binned_table.h"
#include "subtab/util/rng.h"

/// \file corpus.h
/// The "corpus of tabular sentences" of Sec. 5.1: every cell is a word
/// (dense token id); tuple-sentences list the tokens of one row and
/// column-sentences the tokens of one column. The corpus is capped at
/// `max_sentences` sentences chosen uniformly at random, as in the paper
/// (100K default).

namespace subtab {

/// One sentence = sequence of dense token ids.
using Sentence = std::vector<uint32_t>;

struct CorpusOptions {
  /// Paper: "we limit the corpus size to 100K, where the sentences are
  /// chosen uniformly at random".
  size_t max_sentences = 100000;
  bool tuple_sentences = true;
  bool column_sentences = true;
};

/// Materialized training corpus.
class Corpus {
 public:
  /// Builds tuple- and column-sentences from a binned table, sampling
  /// uniformly when the cap is exceeded.
  static Corpus Build(const BinnedTable& binned, const CorpusOptions& options,
                      Rng* rng);

  /// Wraps an externally generated sentence set (e.g. EmbDI random walks).
  /// Every word id must be < vocab_size.
  static Corpus FromSentences(std::vector<Sentence> sentences, size_t vocab_size);

  const std::vector<Sentence>& sentences() const { return sentences_; }
  size_t vocab_size() const { return vocab_size_; }
  /// Total number of word occurrences.
  size_t total_words() const { return total_words_; }

 private:
  std::vector<Sentence> sentences_;
  size_t vocab_size_ = 0;
  size_t total_words_ = 0;
};

}  // namespace subtab

#endif  // SUBTAB_EMBED_CORPUS_H_
