#include "subtab/embed/embdi.h"

#include <algorithm>

#include "subtab/util/logging.h"

namespace subtab {
namespace {

/// Adjacency of the tripartite table graph, by node kind.
struct TableGraph {
  size_t num_tokens = 0;  // B
  size_t num_rows = 0;    // n
  size_t num_cols = 0;    // m
  /// token dense id -> rows containing it.
  std::vector<std::vector<uint32_t>> token_rows;

  size_t TokenNode(size_t dense) const { return dense; }
  size_t RowNode(size_t row) const { return num_tokens + row; }
  size_t ColNode(size_t col) const { return num_tokens + num_rows + col; }
  size_t NumNodes() const { return num_tokens + num_rows + num_cols; }
};

TableGraph BuildGraph(const BinnedTable& binned) {
  TableGraph g;
  g.num_tokens = binned.total_bins();
  g.num_rows = binned.num_rows();
  g.num_cols = binned.num_columns();
  g.token_rows.resize(g.num_tokens);
  for (size_t r = 0; r < g.num_rows; ++r) {
    for (size_t c = 0; c < g.num_cols; ++c) {
      g.token_rows[binned.DenseIndex(binned.token(r, c))].push_back(
          static_cast<uint32_t>(r));
    }
  }
  return g;
}

}  // namespace

Corpus BuildEmbDiCorpus(const BinnedTable& binned, const EmbDiOptions& options,
                        Rng* rng) {
  SUBTAB_CHECK(rng != nullptr);
  const TableGraph g = BuildGraph(binned);
  const size_t n = binned.num_rows();
  const size_t m = binned.num_columns();

  // Re-use the Corpus container: sentences over the node-id vocabulary.
  // Walk step rules (uniform over neighbour kinds, as in EmbDI's
  // value/rid/cid graph):
  //   row   -> token of a random cell of the row;
  //   token -> 50% a random row containing it, 50% its column node;
  //   col   -> token of a random cell of the column.
  std::vector<Sentence> sentences;
  const size_t start_nodes = n + m + g.num_tokens;
  sentences.reserve(start_nodes * options.walks_per_node);

  auto step_from_row = [&](size_t row) -> size_t {
    const size_t c = rng->Uniform(m);
    return g.TokenNode(binned.DenseIndex(binned.token(row, c)));
  };
  auto step_from_col = [&](size_t col) -> size_t {
    const size_t r = rng->Uniform(n);
    return g.TokenNode(binned.DenseIndex(binned.token(r, col)));
  };
  auto step_from_token = [&](size_t dense) -> size_t {
    const auto& rows = g.token_rows[dense];
    if (rows.empty() || rng->Bernoulli(0.5)) {
      return g.ColNode(TokenColumn(binned.TokenOfDense(dense)));
    }
    return g.RowNode(rows[rng->Uniform(rows.size())]);
  };
  auto step = [&](size_t node) -> size_t {
    if (node < g.num_tokens) return step_from_token(node);
    if (node < g.num_tokens + n) return step_from_row(node - g.num_tokens);
    return step_from_col(node - g.num_tokens - n);
  };

  for (size_t start = 0; start < start_nodes; ++start) {
    // Map the start index to a node id: tokens, then rows, then columns.
    for (size_t w = 0; w < options.walks_per_node; ++w) {
      Sentence walk;
      walk.reserve(options.walk_length);
      size_t node = start;
      walk.push_back(static_cast<uint32_t>(node));
      for (size_t s = 1; s < options.walk_length; ++s) {
        node = step(node);
        walk.push_back(static_cast<uint32_t>(node));
      }
      sentences.push_back(std::move(walk));
    }
  }

  return Corpus::FromSentences(std::move(sentences), g.NumNodes());
}

Word2VecModel TrainEmbDi(const BinnedTable& binned, const EmbDiOptions& options) {
  Rng rng(options.seed);
  const Corpus corpus = BuildEmbDiCorpus(binned, options, &rng);
  SUBTAB_LOG_STREAM(Info) << "EmbDI: " << corpus.sentences().size() << " walks, "
                          << corpus.total_words() << " node visits";
  Word2VecOptions w2v = options.word2vec;
  w2v.seed = options.seed;
  const Word2VecModel full = Word2VecModel::Train(corpus, w2v);

  // Keep only the token-node vectors: dense ids [0, total_bins).
  const size_t dim = full.dim();
  std::vector<float> token_vectors(binned.total_bins() * dim);
  for (size_t t = 0; t < binned.total_bins(); ++t) {
    const auto v = full.vector(t);
    std::copy(v.begin(), v.end(), token_vectors.begin() + t * dim);
  }
  return Word2VecModel::FromVectors(dim, std::move(token_vectors));
}

}  // namespace subtab
