#ifndef SUBTAB_EMBED_EMBDI_H_
#define SUBTAB_EMBED_EMBDI_H_

#include <vector>

#include "subtab/binning/binned_table.h"
#include "subtab/embed/word2vec.h"
#include "subtab/util/rng.h"

/// \file embdi.h
/// EmbDI-style graph embedding (Cappuzzo et al., SIGMOD'20) — the paper's
/// slow high-quality baseline (Sec. 6.1, baseline 6). The table becomes a
/// tripartite graph: row nodes, value (token) nodes, and column nodes; edges
/// connect a row to the tokens of its cells and a token to its column.
/// Node2vec-style uniform random walks over this graph form the training
/// corpus for the same SGNS trainer, and the token-node vectors serve as the
/// cell-to-vector model. Deliberately much more expensive than SubTab's
/// direct tabular corpus (the paper measures ~26x slower pre-processing).

namespace subtab {

struct EmbDiOptions {
  size_t walks_per_node = 10;
  size_t walk_length = 20;
  Word2VecOptions word2vec;  ///< dim/epochs/negative shared with SubTab.
  uint64_t seed = 42;
};

/// Generates the random-walk corpus over the tripartite graph. Word ids:
/// [0, B) token nodes, [B, B+n) row nodes, [B+n, B+n+m) column nodes, where
/// B = binned.total_bins(). Exposed separately for testing.
Corpus BuildEmbDiCorpus(const BinnedTable& binned, const EmbDiOptions& options,
                        Rng* rng);

/// Trains the EmbDI embedding and returns a model over the *token* id space
/// [0, total_bins) (row/column node vectors are dropped), so it is a drop-in
/// replacement for the Word2Vec cell model.
Word2VecModel TrainEmbDi(const BinnedTable& binned, const EmbDiOptions& options);

}  // namespace subtab

#endif  // SUBTAB_EMBED_EMBDI_H_
