#include "subtab/embed/vocab.h"

#include <algorithm>
#include <cmath>

namespace subtab {

Vocabulary::Vocabulary(const Corpus& corpus, size_t vocab_size) {
  counts_.assign(vocab_size, 0);
  for (const Sentence& s : corpus.sentences()) {
    for (uint32_t w : s) {
      SUBTAB_CHECK(w < vocab_size);
      ++counts_[w];
    }
  }
  BuildSampler();
}

Vocabulary::Vocabulary(std::vector<uint64_t> counts) : counts_(std::move(counts)) {
  BuildSampler();
}

void Vocabulary::BuildSampler() {
  total_ = 0;
  cumulative_.resize(counts_.size());
  double acc = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    total_ += counts_[i];
    acc += std::pow(static_cast<double>(counts_[i]), 0.75);
    cumulative_[i] = acc;
  }
  cumulative_total_ = acc;
}

uint32_t Vocabulary::SampleNegative(Rng* rng) const {
  SUBTAB_CHECK(cumulative_total_ > 0.0);
  const double u = rng->UniformDouble() * cumulative_total_;
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  size_t idx = static_cast<size_t>(it - cumulative_.begin());
  if (idx >= cumulative_.size()) idx = cumulative_.size() - 1;
  return static_cast<uint32_t>(idx);
}

}  // namespace subtab
