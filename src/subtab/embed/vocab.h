#ifndef SUBTAB_EMBED_VOCAB_H_
#define SUBTAB_EMBED_VOCAB_H_

#include <cstdint>
#include <vector>

#include "subtab/embed/corpus.h"
#include "subtab/util/rng.h"

/// \file vocab.h
/// Word frequencies and the unigram^0.75 negative-sampling distribution of
/// Mikolov et al. [21]. Word ids are the dense token ids of the binned table,
/// so no string interning is needed.

namespace subtab {

/// Frequency table + negative sampler over a fixed-size id space.
class Vocabulary {
 public:
  /// Counts occurrences over the corpus; `vocab_size` ids.
  Vocabulary(const Corpus& corpus, size_t vocab_size);

  /// Explicit counts (used by the EmbDI walker whose corpus is implicit).
  Vocabulary(std::vector<uint64_t> counts);  // NOLINT(runtime/explicit)

  size_t size() const { return counts_.size(); }
  uint64_t count(size_t word) const {
    SUBTAB_CHECK(word < counts_.size());
    return counts_[word];
  }
  uint64_t total_count() const { return total_; }

  /// Draws a word id ∝ count^0.75 (words with zero count are never drawn).
  uint32_t SampleNegative(Rng* rng) const;

 private:
  void BuildSampler();

  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
  std::vector<double> cumulative_;  ///< CDF of count^0.75.
  double cumulative_total_ = 0.0;
};

}  // namespace subtab

#endif  // SUBTAB_EMBED_VOCAB_H_
