#include "subtab/embed/word2vec.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "subtab/util/logging.h"
#include "subtab/util/parallel.h"

namespace subtab {
namespace {

constexpr size_t kSigmoidTableSize = 1024;
constexpr double kSigmoidClip = 6.0;

/// Precomputed sigmoid lookup, as in the reference word2vec implementation.
struct SigmoidTable {
  float values[kSigmoidTableSize];

  SigmoidTable() {
    for (size_t i = 0; i < kSigmoidTableSize; ++i) {
      const double x =
          (static_cast<double>(i) / kSigmoidTableSize * 2.0 - 1.0) * kSigmoidClip;
      values[i] = static_cast<float>(1.0 / (1.0 + std::exp(-x)));
    }
  }

  float operator()(float x) const {
    if (x >= kSigmoidClip) return 1.0f;
    if (x <= -kSigmoidClip) return 0.0f;
    const size_t idx = static_cast<size_t>((x / kSigmoidClip + 1.0f) / 2.0f *
                                           kSigmoidTableSize);
    return values[std::min(idx, kSigmoidTableSize - 1)];
  }
};

const SigmoidTable& Sigmoid() {
  static const SigmoidTable table;
  return table;
}

/// The SGNS epoch loop shared by Train (fresh vectors) and ContinueTraining
/// (vectors of an existing model, delta corpus). Updates `in_data` and
/// `out_data` (both vocab x dim, row-major) in place.
void RunSgnsEpochs(const Corpus& corpus, const Word2VecOptions& options,
                   size_t dim, float* in_data, float* out_data) {
  Vocabulary vocabulary(corpus, corpus.vocab_size());
  if (corpus.sentences().empty() || vocabulary.total_count() == 0) return;

  const size_t total_sentences = corpus.sentences().size() * options.epochs;
  std::atomic<size_t> sentences_done{0};
  const SigmoidTable& sigmoid = Sigmoid();

  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    const size_t n_sent = corpus.sentences().size();
    ParallelFor(n_sent, options.num_threads, [&](size_t shard, size_t begin,
                                                 size_t end) {
      // Independent stream per (seed, epoch, shard): reproducible for a
      // fixed thread count.
      Rng rng(options.seed ^ (epoch * 0x9e3779b9ULL + shard * 0x85ebca6bULL + 1));
      std::vector<float> grad_center(dim);
      for (size_t si = begin; si < end; ++si) {
        const Sentence& sent = corpus.sentences()[si];
        const size_t len = sent.size();
        if (len < 2) {
          sentences_done.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // Linear learning-rate decay over all sentences of all epochs.
        const double progress =
            static_cast<double>(sentences_done.load(std::memory_order_relaxed)) /
            static_cast<double>(total_sentences);
        const float lr = static_cast<float>(
            std::max(options.min_lr, options.initial_lr * (1.0 - progress)));

        for (size_t i = 0; i < len; ++i) {
          const uint32_t center = sent[i];
          float* v_center = in_data + static_cast<size_t>(center) * dim;

          // Context positions: whole sentence (window == 0) or a window,
          // subsampled down to max_pairs_per_token positions.
          const size_t window =
              options.window == 0 ? len : std::min(options.window, len);
          const size_t lo = (options.window == 0 || i < window) ? 0 : i - window;
          const size_t hi = options.window == 0
                                ? len
                                : std::min(len, i + window + 1);
          const size_t span = hi - lo - 1;  // Excluding the center itself.
          if (span == 0) continue;
          const size_t pairs = std::min(span, options.max_pairs_per_token);

          for (size_t p = 0; p < pairs; ++p) {
            size_t j;
            if (span <= options.max_pairs_per_token) {
              j = lo + p;
              if (j >= i) ++j;  // Skip the center position.
            } else {
              j = lo + rng.Uniform(span + 1);
              if (j == i) continue;
            }
            if (j >= hi) continue;
            const uint32_t context = sent[j];
            if (context == center) continue;

            // SGNS update: positive (context) + `negative` sampled words.
            std::fill(grad_center.begin(), grad_center.end(), 0.0f);
            for (size_t neg = 0; neg <= options.negative; ++neg) {
              uint32_t target;
              float label;
              if (neg == 0) {
                target = context;
                label = 1.0f;
              } else {
                target = vocabulary.SampleNegative(&rng);
                if (target == center || target == context) continue;
                label = 0.0f;
              }
              float* v_target = out_data + static_cast<size_t>(target) * dim;
              float dot = 0.0f;
              for (size_t d = 0; d < dim; ++d) dot += v_center[d] * v_target[d];
              const float g = (label - sigmoid(dot)) * lr;
              for (size_t d = 0; d < dim; ++d) {
                grad_center[d] += g * v_target[d];
                v_target[d] += g * v_center[d];
              }
            }
            for (size_t d = 0; d < dim; ++d) v_center[d] += grad_center[d];
          }
        }
        sentences_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
    SUBTAB_LOG_STREAM(Debug) << "word2vec epoch " << epoch + 1 << "/" << options.epochs
                             << " done";
  }
}

}  // namespace

Word2VecModel Word2VecModel::Train(const Corpus& corpus,
                                   const Word2VecOptions& options) {
  Word2VecModel model;
  model.dim_ = options.dim;
  model.vocab_size_ = corpus.vocab_size();
  const size_t dim = options.dim;
  const size_t vocab = model.vocab_size_;
  SUBTAB_CHECK(dim > 0);

  // Init: input vectors uniform in [-0.5/dim, 0.5/dim], output vectors zero.
  Rng init_rng(options.seed);
  model.in_.resize(vocab * dim);
  std::vector<float> out(vocab * dim, 0.0f);
  for (float& v : model.in_) {
    v = static_cast<float>((init_rng.UniformDouble() - 0.5) / static_cast<double>(dim));
  }
  RunSgnsEpochs(corpus, options, dim, model.in_.data(), out.data());
  return model;
}

void Word2VecModel::ContinueTraining(const Corpus& corpus,
                                     const Word2VecOptions& options) {
  SUBTAB_CHECK(dim_ > 0);
  SUBTAB_CHECK(corpus.vocab_size() == vocab_size_);
  Word2VecOptions continued = options;
  continued.dim = dim_;
  std::vector<float> out(vocab_size_ * dim_, 0.0f);
  RunSgnsEpochs(corpus, continued, dim_, in_.data(), out.data());
}

Word2VecModel Word2VecModel::FromVectors(size_t dim, std::vector<float> vectors) {
  SUBTAB_CHECK(dim > 0);
  SUBTAB_CHECK(vectors.size() % dim == 0);
  Word2VecModel model;
  model.dim_ = dim;
  model.vocab_size_ = vectors.size() / dim;
  model.in_ = std::move(vectors);
  return model;
}

double Word2VecModel::CosineSimilarity(size_t a, size_t b) const {
  const auto va = vector(a);
  const auto vb = vector(b);
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (size_t d = 0; d < dim_; ++d) {
    dot += va[d] * vb[d];
    na += va[d] * va[d];
    nb += vb[d] * vb[d];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace subtab
