#ifndef SUBTAB_EMBED_WORD2VEC_H_
#define SUBTAB_EMBED_WORD2VEC_H_

#include <cstdint>
#include <span>
#include <vector>

#include "subtab/embed/corpus.h"
#include "subtab/embed/vocab.h"

/// \file word2vec.h
/// Skip-gram with negative sampling (SGNS) [Mikolov et al., NeurIPS'13] —
/// the embedding engine behind Algorithm 2 line 3. The paper trains with
/// windowSize = max{n, m}, i.e. whole-sentence context; for column-sentences
/// of length n the full O(len^2) pair set is intractable, so each center
/// token samples at most `max_pairs_per_token` context positions uniformly —
/// an unbiased subsample of the same objective (documented in DESIGN.md).

namespace subtab {

struct Word2VecOptions {
  size_t dim = 64;
  size_t epochs = 5;
  size_t negative = 5;             ///< Negative samples per pair.
  double initial_lr = 0.025;
  double min_lr = 1e-4;
  /// Context window; 0 = whole sentence (the paper's max{n, m} setting).
  size_t window = 0;
  /// Cap on sampled context positions per center token.
  size_t max_pairs_per_token = 16;
  /// Training shards (hogwild). 1 = fully deterministic; 0 = hardware.
  size_t num_threads = 1;
  uint64_t seed = 42;
};

/// A trained embedding: one `dim`-dimensional vector per word id.
class Word2VecModel {
 public:
  Word2VecModel() = default;

  /// Trains SGNS over the corpus.
  static Word2VecModel Train(const Corpus& corpus, const Word2VecOptions& options);

  /// Continues SGNS training from this model's vectors over a (typically
  /// small) delta corpus — the streaming layer's incremental refresh
  /// (stream/refresh_policy.h): a few epochs over sentences drawn from newly
  /// appended rows nudge the embedding toward the new data at a fraction of
  /// a full retrain. The corpus must use the same vocabulary (same dense
  /// token ids; the frozen bin spec guarantees this). Only input vectors are
  /// part of the model/artifact, so the output layer restarts at zero — the
  /// same approximation a model reloaded from disk would make.
  /// `options.dim` is ignored in favour of the model's dimension.
  void ContinueTraining(const Corpus& corpus, const Word2VecOptions& options);

  /// Wraps pre-computed vectors (row-major vocab x dim); used by EmbDI to
  /// expose the token-node slice of its graph embedding.
  static Word2VecModel FromVectors(size_t dim, std::vector<float> vectors);

  size_t dim() const { return dim_; }
  size_t vocab_size() const { return vocab_size_; }

  /// Input vector of a word (the representation used downstream).
  std::span<const float> vector(size_t word) const {
    SUBTAB_CHECK(word < vocab_size_);
    return {in_.data() + word * dim_, dim_};
  }

  /// Cosine similarity between two word vectors (0 for zero vectors).
  double CosineSimilarity(size_t a, size_t b) const;

 private:
  size_t dim_ = 0;
  size_t vocab_size_ = 0;
  std::vector<float> in_;
};

}  // namespace subtab

#endif  // SUBTAB_EMBED_WORD2VEC_H_
