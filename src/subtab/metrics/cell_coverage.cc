#include "subtab/metrics/cell_coverage.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace subtab {
namespace {

/// True iff `needle` (sorted) is a subset of `haystack` (sorted).
bool SortedSubset(const std::vector<uint32_t>& needle,
                  const std::vector<uint32_t>& haystack) {
  size_t j = 0;
  for (uint32_t x : needle) {
    while (j < haystack.size() && haystack[j] < x) ++j;
    if (j == haystack.size() || haystack[j] != x) return false;
  }
  return true;
}

std::vector<uint32_t> SortedCols(const std::vector<size_t>& col_ids) {
  std::vector<uint32_t> cols;
  cols.reserve(col_ids.size());
  for (size_t c : col_ids) cols.push_back(static_cast<uint32_t>(c));
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return cols;
}

}  // namespace

CoverageEvaluator::CoverageEvaluator(const BinnedTable& binned, const RuleSet& rules)
    : binned_(&binned), rules_(&rules) {
  const size_t n = binned.num_rows();
  const size_t num_rules = rules.rules.size();
  rule_class_.resize(num_rules);

  // Token tidsets once, then AND per class.
  std::unordered_map<Token, Bitset> token_tids;
  for (size_t r = 0; r < n; ++r) {
    const Token* row = binned.row_data(r);
    for (size_t c = 0; c < binned.num_columns(); ++c) {
      auto [it, inserted] = token_tids.try_emplace(row[c], Bitset(n));
      it->second.Set(r);
    }
  }

  // Group rules into classes by their token set.
  std::map<std::vector<Token>, uint32_t> class_of_tokens;
  std::vector<const std::vector<Token>*> class_tokens;
  std::vector<std::vector<Token>> token_storage;
  token_storage.reserve(num_rules);
  for (size_t i = 0; i < num_rules; ++i) {
    token_storage.push_back(rules.rules[i].AllTokens());
    const std::vector<Token>& tokens = token_storage.back();
    SUBTAB_CHECK(!tokens.empty());
    auto [it, inserted] = class_of_tokens.try_emplace(
        tokens, static_cast<uint32_t>(class_rules_.size()));
    if (inserted) {
      class_rules_.emplace_back();
      class_tokens.push_back(&it->first);
    }
    rule_class_[i] = it->second;
    class_rules_[it->second].push_back(static_cast<uint32_t>(i));
  }

  const size_t num_classes = class_rules_.size();
  class_tids_.reserve(num_classes);
  class_cols_.reserve(num_classes);
  std::vector<Bitset> col_union(binned.num_columns());
  for (size_t cls = 0; cls < num_classes; ++cls) {
    const std::vector<Token>& tokens = *class_tokens[cls];
    Bitset tids(n);
    auto it0 = token_tids.find(tokens[0]);
    if (it0 != token_tids.end()) {
      tids = it0->second;
      for (size_t t = 1; t < tokens.size(); ++t) {
        auto it = token_tids.find(tokens[t]);
        if (it == token_tids.end()) {
          tids = Bitset(n);
          break;
        }
        tids.IntersectWith(it->second);
      }
    }
    std::vector<uint32_t> cols;
    cols.reserve(tokens.size());
    for (Token t : tokens) cols.push_back(TokenColumn(t));
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());

    for (uint32_t c : cols) {
      if (col_union[c].size() == 0) col_union[c] = Bitset(n);
      col_union[c].UnionWith(tids);
    }
    class_cols_.push_back(std::move(cols));
    class_tids_.push_back(std::move(tids));
  }

  upcov_ = 0;
  for (const Bitset& bs : col_union) {
    if (bs.size() != 0) upcov_ += bs.Count();
  }
}

const Bitset& CoverageEvaluator::rule_rows(size_t i) const {
  SUBTAB_CHECK(i < rule_class_.size());
  return class_tids_[rule_class_[i]];
}

const std::vector<uint32_t>& CoverageEvaluator::rule_columns(size_t i) const {
  SUBTAB_CHECK(i < rule_class_.size());
  return class_cols_[rule_class_[i]];
}

size_t CoverageEvaluator::RuleCellCount(size_t i) const {
  SUBTAB_CHECK(i < rule_class_.size());
  const uint32_t cls = rule_class_[i];
  return class_tids_[cls].Count() * class_cols_[cls].size();
}

std::vector<size_t> CoverageEvaluator::CoveredClasses(
    const std::vector<size_t>& row_ids, const std::vector<size_t>& col_ids) const {
  const std::vector<uint32_t> cols = SortedCols(col_ids);
  for (size_t row : row_ids) SUBTAB_CHECK(row < binned_->num_rows());
  std::vector<size_t> covered;
  // Classes are typically far fewer than rows x classes memberships, so scan
  // classes and probe the (few) selected rows against each tid bitset.
  for (size_t cls = 0; cls < class_rules_.size(); ++cls) {
    if (!SortedSubset(class_cols_[cls], cols)) continue;
    for (size_t row : row_ids) {
      if (class_tids_[cls].Test(row)) {
        covered.push_back(cls);
        break;
      }
    }
  }
  return covered;
}

std::vector<size_t> CoverageEvaluator::CoveredRules(
    const std::vector<size_t>& row_ids, const std::vector<size_t>& col_ids) const {
  std::vector<size_t> covered;
  for (size_t cls : CoveredClasses(row_ids, col_ids)) {
    for (uint32_t rule : class_rules_[cls]) covered.push_back(rule);
  }
  std::sort(covered.begin(), covered.end());
  return covered;
}

size_t CoverageEvaluator::CoveredCellCount(const std::vector<size_t>& row_ids,
                                           const std::vector<size_t>& col_ids) const {
  const std::vector<size_t> covered = CoveredClasses(row_ids, col_ids);
  // Union of cell(R,T) per column, then sum counts.
  std::unordered_map<uint32_t, Bitset> per_col;
  for (size_t cls : covered) {
    for (uint32_t c : class_cols_[cls]) {
      auto [it, inserted] = per_col.try_emplace(c, Bitset(binned_->num_rows()));
      it->second.UnionWith(class_tids_[cls]);
    }
  }
  size_t total = 0;
  for (const auto& [c, bs] : per_col) total += bs.Count();
  return total;
}

double CoverageEvaluator::CellCoverage(const std::vector<size_t>& row_ids,
                                       const std::vector<size_t>& col_ids) const {
  if (upcov_ == 0) return 0.0;
  return static_cast<double>(CoveredCellCount(row_ids, col_ids)) /
         static_cast<double>(upcov_);
}

CoverageAccumulator::CoverageAccumulator(const CoverageEvaluator& evaluator,
                                         const std::vector<size_t>& col_ids)
    : evaluator_(&evaluator) {
  const std::vector<uint32_t> cols = SortedCols(col_ids);
  const size_t num_classes = evaluator.class_rules_.size();
  class_covered_.assign(num_classes, 0);
  col_selected_.assign(evaluator.binned().num_columns(), 0);
  for (uint32_t c : cols) col_selected_[c] = 1;
  covered_by_col_.resize(evaluator.binned().num_columns());
  for (size_t cls = 0; cls < num_classes; ++cls) {
    if (SortedSubset(evaluator.class_cols_[cls], cols)) {
      eligible_classes_.push_back(static_cast<uint32_t>(cls));
    }
  }
}

size_t CoverageAccumulator::GainOfRow(size_t row) const {
  SUBTAB_CHECK(row < evaluator_->binned().num_rows());
  size_t gain = 0;
  // Cells newly covered by the classes this row activates. Overlaps *between*
  // the newly activated classes themselves are handled by accumulating into
  // scratch copies per column.
  std::unordered_map<uint32_t, Bitset> scratch;
  for (uint32_t cls : eligible_classes_) {
    if (class_covered_[cls] || !evaluator_->class_tids_[cls].Test(row)) continue;
    for (uint32_t c : evaluator_->class_cols_[cls]) {
      auto it = scratch.find(c);
      if (it == scratch.end()) {
        const Bitset& base = covered_by_col_[c];
        Bitset init = (base.size() != 0) ? base : Bitset(evaluator_->binned().num_rows());
        it = scratch.emplace(c, std::move(init)).first;
      }
      const size_t before = it->second.Count();
      it->second.UnionWith(evaluator_->class_tids_[cls]);
      gain += it->second.Count() - before;
    }
  }
  return gain;
}

void CoverageAccumulator::AddRow(size_t row) {
  SUBTAB_CHECK(row < evaluator_->binned().num_rows());
  for (uint32_t cls : eligible_classes_) {
    if (class_covered_[cls] || !evaluator_->class_tids_[cls].Test(row)) continue;
    class_covered_[cls] = 1;
    for (uint32_t c : evaluator_->class_cols_[cls]) {
      Bitset& acc = covered_by_col_[c];
      if (acc.size() == 0) acc = Bitset(evaluator_->binned().num_rows());
      const size_t before = acc.Count();
      acc.UnionWith(evaluator_->class_tids_[cls]);
      covered_cells_ += acc.Count() - before;
    }
  }
}

double CoverageAccumulator::CellCoverage() const {
  const size_t up = evaluator_->upcov();
  if (up == 0) return 0.0;
  return static_cast<double>(covered_cells_) / static_cast<double>(up);
}

double CellCoverage(const BinnedTable& binned, const RuleSet& rules,
                    const std::vector<size_t>& row_ids,
                    const std::vector<size_t>& col_ids) {
  CoverageEvaluator evaluator(binned, rules);
  return evaluator.CellCoverage(row_ids, col_ids);
}

}  // namespace subtab
