#ifndef SUBTAB_METRICS_CELL_COVERAGE_H_
#define SUBTAB_METRICS_CELL_COVERAGE_H_

#include <vector>

#include "subtab/rules/rule.h"
#include "subtab/util/bitset.h"

/// \file cell_coverage.h
/// The cell-coverage metric of Def. 3.6. A rule R is covered by a sub-table
/// (rows, cols) iff U_R ⊆ cols and at least one selected row satisfies R; the
/// metric is |∪_{covered R} cell(R,T)| / upcov, where cell(R,T) = T_R × U_R
/// and upcov normalizes by the union over *all* rules.
///
/// CoverageEvaluator pre-computes per-rule row sets (T_R) once per
/// (table, rule set); CoverageAccumulator supports the greedy baseline's
/// incremental "gain of adding one row" queries.

namespace subtab {

/// Pre-computed coverage machinery for one (binned table, rule set) pair.
class CoverageEvaluator {
 public:
  CoverageEvaluator(const BinnedTable& binned, const RuleSet& rules);

  const BinnedTable& binned() const { return *binned_; }
  const RuleSet& rules() const { return *rules_; }
  size_t num_rules() const { return rules_->rules.size(); }

  /// Rows of T satisfying rule i (the set T_R).
  const Bitset& rule_rows(size_t i) const;
  /// Columns used by rule i (U_R), sorted.
  const std::vector<uint32_t>& rule_columns(size_t i) const;
  /// |cell(R_i, T)| = |T_R| · |U_R|.
  size_t RuleCellCount(size_t i) const;

  /// Normalization constant upcov = |∪_R cell(R,T)| (0 when no rules).
  size_t upcov() const { return upcov_; }

  /// Number of distinct token-set classes among the rules.
  size_t num_classes() const { return class_rules_.size(); }

  /// Indices of rules covered by the sub-table (Def. 3.6 d1).
  std::vector<size_t> CoveredRules(const std::vector<size_t>& row_ids,
                                   const std::vector<size_t>& col_ids) const;

  /// Indices of covered token-set classes (deduplicated rules).
  std::vector<size_t> CoveredClasses(const std::vector<size_t>& row_ids,
                                     const std::vector<size_t>& col_ids) const;

  /// Number of cells of T described by covered rules (numerator of Eq. 1).
  size_t CoveredCellCount(const std::vector<size_t>& row_ids,
                          const std::vector<size_t>& col_ids) const;

  /// cellCov in [0, 1]; 0 when the rule set is empty.
  double CellCoverage(const std::vector<size_t>& row_ids,
                      const std::vector<size_t>& col_ids) const;

 private:
  friend class CoverageAccumulator;

  // Rules with the same token set (lhs ∪ rhs) have identical T_R and U_R and
  // hence identical cell(R,T); they are deduplicated into *classes* so rich
  // rule sets (every lhs/rhs split of an itemset) cost one bitset, not many.
  const BinnedTable* binned_;
  const RuleSet* rules_;
  std::vector<uint32_t> rule_class_;             ///< Rule -> class id.
  std::vector<std::vector<uint32_t>> class_rules_;///< Class -> member rules.
  std::vector<Bitset> class_tids_;               ///< T_R per class.
  std::vector<std::vector<uint32_t>> class_cols_;///< U_R per class, sorted.
  size_t upcov_ = 0;
};

/// Incremental covered-cell counting for greedy row selection over a fixed
/// column set. Complexity of GainOfRow is proportional to the rules holding
/// on that row.
class CoverageAccumulator {
 public:
  /// `col_ids` is the fixed column selection (need not be sorted).
  CoverageAccumulator(const CoverageEvaluator& evaluator,
                      const std::vector<size_t>& col_ids);

  /// Cells newly described if `row` were added to the selection.
  size_t GainOfRow(size_t row) const;

  /// Adds a row to the selection.
  void AddRow(size_t row);

  /// Cells currently described.
  size_t covered_cells() const { return covered_cells_; }

  /// Current cellCov value.
  double CellCoverage() const;

 private:
  const CoverageEvaluator* evaluator_;
  std::vector<uint32_t> eligible_classes_;  ///< Classes with U_R ⊆ columns.
  std::vector<char> class_covered_;
  /// Per selected column: rows of T whose cell in that column is described.
  std::vector<Bitset> covered_by_col_;  ///< Indexed by column id (sparse).
  std::vector<char> col_selected_;
  size_t covered_cells_ = 0;
};

/// One-shot convenience wrapper over CoverageEvaluator.
double CellCoverage(const BinnedTable& binned, const RuleSet& rules,
                    const std::vector<size_t>& row_ids,
                    const std::vector<size_t>& col_ids);

}  // namespace subtab

#endif  // SUBTAB_METRICS_CELL_COVERAGE_H_
