#include "subtab/metrics/combined.h"

namespace subtab {

SubTableScore ScoreSubTable(const CoverageEvaluator& evaluator,
                            const std::vector<size_t>& row_ids,
                            const std::vector<size_t>& col_ids, double alpha) {
  SUBTAB_CHECK(alpha >= 0.0 && alpha <= 1.0);
  SubTableScore score;
  score.cell_coverage = evaluator.CellCoverage(row_ids, col_ids);
  score.diversity = Diversity(evaluator.binned(), row_ids, col_ids);
  score.combined = alpha * score.cell_coverage + (1.0 - alpha) * score.diversity;
  return score;
}

SubTableScore ScoreSubTable(const BinnedTable& binned, const RuleSet& rules,
                            const std::vector<size_t>& row_ids,
                            const std::vector<size_t>& col_ids, double alpha) {
  CoverageEvaluator evaluator(binned, rules);
  return ScoreSubTable(evaluator, row_ids, col_ids, alpha);
}

}  // namespace subtab
