#ifndef SUBTAB_METRICS_COMBINED_H_
#define SUBTAB_METRICS_COMBINED_H_

#include <vector>

#include "subtab/metrics/cell_coverage.h"
#include "subtab/metrics/diversity.h"

/// \file combined.h
/// The combined informativeness score of Eq. 3:
///   combined = α · cellCov + (1 − α) · divers,  α ∈ [0, 1] (default 0.5).

namespace subtab {

/// All three scores of one sub-table.
struct SubTableScore {
  double cell_coverage = 0.0;
  double diversity = 0.0;
  double combined = 0.0;
};

/// Scores a sub-table against a pre-built evaluator (preferred when scoring
/// many candidates over the same table + rules).
SubTableScore ScoreSubTable(const CoverageEvaluator& evaluator,
                            const std::vector<size_t>& row_ids,
                            const std::vector<size_t>& col_ids, double alpha = 0.5);

/// One-shot convenience (builds the evaluator internally).
SubTableScore ScoreSubTable(const BinnedTable& binned, const RuleSet& rules,
                            const std::vector<size_t>& row_ids,
                            const std::vector<size_t>& col_ids, double alpha = 0.5);

}  // namespace subtab

#endif  // SUBTAB_METRICS_COMBINED_H_
