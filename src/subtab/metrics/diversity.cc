#include "subtab/metrics/diversity.h"

namespace subtab {

double RowSimilarity(const BinnedTable& binned, size_t row_a, size_t row_b,
                     const std::vector<size_t>& col_ids) {
  SUBTAB_CHECK(!col_ids.empty());
  size_t same = 0;
  for (size_t c : col_ids) {
    if (binned.token(row_a, c) == binned.token(row_b, c)) ++same;
  }
  return static_cast<double>(same) / static_cast<double>(col_ids.size());
}

double Diversity(const BinnedTable& binned, const std::vector<size_t>& row_ids,
                 const std::vector<size_t>& col_ids) {
  const size_t k = row_ids.size();
  if (k < 2) return 1.0;
  double total = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      total += RowSimilarity(binned, row_ids[i], row_ids[j], col_ids);
      ++pairs;
    }
  }
  return 1.0 - total / static_cast<double>(pairs);
}

}  // namespace subtab
