#ifndef SUBTAB_METRICS_DIVERSITY_H_
#define SUBTAB_METRICS_DIVERSITY_H_

#include <vector>

#include "subtab/binning/binned_table.h"

/// \file diversity.h
/// The diversity metric of Def. 3.7: 1 minus the average pairwise Jaccard
/// similarity of the selected rows, where two cells are similar iff they fall
/// in the same bin of their column.

namespace subtab {

/// Jaccard similarity of two rows restricted to `col_ids`: the fraction of
/// those columns where both rows fall in the same bin (null bins compare
/// equal, matching the paper's treatment of NaN as a value).
double RowSimilarity(const BinnedTable& binned, size_t row_a, size_t row_b,
                     const std::vector<size_t>& col_ids);

/// divers(T_sub) = 1 - avg over unordered row pairs of RowSimilarity.
/// Sub-tables with fewer than two rows are maximally diverse (1.0).
double Diversity(const BinnedTable& binned, const std::vector<size_t>& row_ids,
                 const std::vector<size_t>& col_ids);

}  // namespace subtab

#endif  // SUBTAB_METRICS_DIVERSITY_H_
