#include "subtab/ops/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "subtab/ops/prometheus.h"
#include "subtab/util/logging.h"
#include "subtab/util/string_util.h"
#include "subtab/util/trace.h"

namespace subtab::ops {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string HttpResponse(int code, const char* reason,
                         const std::string& content_type,
                         const std::string& body) {
  std::string out = StrFormat("HTTP/1.0 %d %s\r\n", code, reason);
  out += "Content-Type: " + content_type + "\r\n";
  out += StrFormat("Content-Length: %zu\r\n", body.size());
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

/// The `n` query parameter of `/traces?n=K` (0 = absent/invalid).
size_t ParseTraceCount(const std::string& query) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    const std::string pair = query.substr(pos, end - pos);
    if (pair.size() > 2 && pair.compare(0, 2, "n=") == 0) {
      return static_cast<size_t>(std::strtoull(pair.c_str() + 2, nullptr, 10));
    }
    pos = end + 1;
  }
  return 0;
}

}  // namespace

AdminServer::AdminServer(service::ServingEngine* engine, SloMonitor* monitor,
                         AdminServerOptions options)
    : engine_(engine),
      monitor_(monitor),
      options_(std::move(options)),
      started_at_seconds_(NowSeconds()) {}

AdminServer::~AdminServer() { Stop(); }

Status AdminServer::Start() {
  if (running()) return Status::Ok();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrFormat("admin: socket() failed: %s",
                                      std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("admin: bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal(StrFormat("admin: bind(%s:%u) failed: %s",
                                      options_.bind_address.c_str(),
                                      (unsigned)options_.port,
                                      std::strerror(err)));
  }
  if (::listen(fd, 16) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal(
        StrFormat("admin: listen() failed: %s", std::strerror(err)));
  }
  // Resolve the ephemeral port before serving so callers can read it the
  // moment Start returns.
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal(
        StrFormat("admin: getsockname() failed: %s", std::strerror(err)));
  }

  listen_fd_ = fd;
  port_.store(ntohs(bound.sin_port), std::memory_order_release);
  running_.store(true, std::memory_order_release);
  serve_thread_ = std::thread([this] { Serve(); });
  SUBTAB_LOG_STREAM(Info) << "admin: serving on " << options_.bind_address
                          << ":" << port();
  return Status::Ok();
}

void AdminServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (serve_thread_.joinable()) serve_thread_.join();
    return;
  }
  if (serve_thread_.joinable()) serve_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void AdminServer::Serve() {
  // Poll-then-accept so the loop observes Stop() within one poll timeout —
  // never parked in accept() waiting for a connection that won't come.
  while (running()) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/250);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    HandleConnection(client);
    ::close(client);
  }
}

void AdminServer::HandleConnection(int client_fd) const {
  // Bound the read: a stalled client may cost one timeout, never a hang.
  timeval timeout;
  timeout.tv_sec = static_cast<long>(options_.read_timeout_seconds);
  timeout.tv_usec = static_cast<long>(
      (options_.read_timeout_seconds - static_cast<double>(timeout.tv_sec)) *
      1e6);
  ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  // HTTP/1.0, GET only: the request is one line plus headers we ignore —
  // read until the first CRLF (or 4 KiB, whichever comes first).
  std::string request;
  char buf[1024];
  while (request.find("\r\n") == std::string::npos &&
         request.size() < 4096) {
    const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }
  const size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) return;  // Malformed / timed out.

  const std::string line = request.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return;
  const std::string method = line.substr(0, sp1);
  const std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);

  const std::string response = HandleRequest(method, target);
  size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t n = ::send(client_fd, response.data() + sent,
                             response.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
}

std::string AdminServer::HandleRequest(const std::string& method,
                                       const std::string& target) const {
  if (method != "GET") {
    return HttpResponse(405, "Method Not Allowed", "text/plain",
                        "only GET is served here\n");
  }
  const size_t qmark = target.find('?');
  const std::string path = target.substr(0, qmark);
  const std::string query =
      qmark == std::string::npos ? "" : target.substr(qmark + 1);

  if (path == "/metrics") {
    return HttpResponse(200, "OK",
                        "text/plain; version=0.0.4; charset=utf-8",
                        MetricsBody());
  }
  if (path == "/statusz") {
    return HttpResponse(200, "OK", "application/json", StatuszBody());
  }
  if (path == "/traces") {
    size_t n = ParseTraceCount(query);
    if (n == 0) n = options_.default_trace_count;
    return HttpResponse(200, "OK", "application/x-ndjson", TracesBody(n));
  }
  if (path == "/healthz") {
    const HealthState state =
        monitor_ == nullptr ? HealthState::kOk : monitor_->health();
    const char* name = HealthStateName(state);
    // Degraded already answers 503: a balancer should stop sending traffic
    // BEFORE the engine tips into unhealthy, not after.
    if (state == HealthState::kOk) {
      return HttpResponse(200, "OK", "text/plain", std::string(name) + "\n");
    }
    return HttpResponse(503, "Service Unavailable", "text/plain",
                        std::string(name) + "\n");
  }
  if (path == "/readyz") {
    return HttpResponse(200, "OK", "text/plain", "ok\n");
  }
  return HttpResponse(404, "Not Found", "text/plain",
                      "unknown path; try /metrics /statusz /traces /healthz "
                      "/readyz\n");
}

std::string AdminServer::MetricsBody() const {
  engine_->Stats();  // Refresh gauges so the scrape is point-in-time.
  return RenderPrometheus(engine_->metrics().Snapshot());
}

std::string AdminServer::StatuszBody() const {
  std::string out = "{\"engine\":";
  out += engine_->Stats().ToJson();
  if (monitor_ != nullptr) {
    out += ",\"slo\":";
    out += monitor_->status().ToJson();
  }
  out += StrFormat(",\"uptime_seconds\":%.3f",
                   NowSeconds() - started_at_seconds_);
  out += ",\"build\":{\"compiler\":\"" +
         std::string(
#if defined(__VERSION__)
             __VERSION__
#else
             "unknown"
#endif
             ) +
         "\",\"mode\":\"" +
#ifdef NDEBUG
         "release"
#else
         "debug"
#endif
         "\"}}";
  return out;
}

std::string AdminServer::TracesBody(size_t n) const {
  const std::shared_ptr<TraceSink>& sink = engine_->trace_sink();
  if (sink == nullptr) return "";
  return TracesToJsonl(sink->Peek(n));
}

}  // namespace subtab::ops
