#ifndef SUBTAB_OPS_ADMIN_SERVER_H_
#define SUBTAB_OPS_ADMIN_SERVER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "subtab/ops/slo_monitor.h"
#include "subtab/service/engine.h"
#include "subtab/util/status.h"

/// \file admin_server.h
/// The engine's live ops plane: a dependency-free in-process HTTP admin
/// server — blocking POSIX sockets on one dedicated thread, plain HTTP/1.0
/// (one request per connection, Connection: close) — serving read-only
/// observability endpoints:
///
///   GET /metrics      Prometheus text exposition of the whole
///                     MetricsRegistry (ops/prometheus.h): engine counters,
///                     gauges, stage histograms, and the monitor's slo.*
///                     gauges, every instrument exactly once.
///   GET /statusz      Full EngineStats::ToJson plus SLO status, effective
///                     admission bounds, build info, and uptime.
///   GET /traces?n=K   The K most recent retained traces plus pinned
///                     slow-query exemplars, as JSONL (TraceSink::Peek —
///                     non-destructive; scraping never races an exporter).
///   GET /healthz      The SLO monitor's health state: 200 "ok",
///                     503 "degraded"/"unhealthy" (200 "ok" when no monitor
///                     is attached). Load balancers key eviction off this.
///   GET /readyz       200 once the listener is up (readiness is liveness
///                     for an in-process server — if this answers, the
///                     engine behind it is constructed and serving).
///
/// Deliberately NOT a general web server: no keep-alive, no TLS, no POST —
/// bind it to loopback (the default) and let a sidecar scrape it. A
/// half-open or slow client can stall at most one scrape, never the serving
/// pipeline; request reads time out and the accept loop polls its listen
/// socket so Stop() completes promptly.

namespace subtab::ops {

struct AdminServerOptions {
  /// TCP port; 0 = ephemeral (read the outcome from port() after Start).
  uint16_t port = 0;
  /// Bind address. Loopback by default — the ops plane is not a public API.
  std::string bind_address = "127.0.0.1";
  /// Per-connection request read timeout.
  double read_timeout_seconds = 2.0;
  /// Default /traces count when no ?n= is given.
  size_t default_trace_count = 64;
};

/// One admin server per engine. Start() binds + listens + spawns the serve
/// thread; Stop() (or the destructor) joins it. `monitor` may be null —
/// /healthz then always reports ok and /statusz omits the slo section.
class AdminServer {
 public:
  AdminServer(service::ServingEngine* engine, SloMonitor* monitor = nullptr,
              AdminServerOptions options = {});
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Binds, listens, and starts serving. Fails (socket/bind/listen errno in
  /// the message) without leaking the fd; idempotent once started.
  Status Start();
  /// Stops accepting, closes the listener, and joins the serve thread.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (the resolved one when options.port was 0); 0 before
  /// Start.
  uint16_t port() const { return port_.load(std::memory_order_acquire); }

  /// Request dispatch, exposed for tests that want to exercise routing
  /// without a socket: returns the full HTTP response (status line, headers,
  /// body) for `GET <target>`.
  std::string HandleRequest(const std::string& method,
                            const std::string& target) const;

 private:
  void Serve();
  void HandleConnection(int client_fd) const;

  std::string MetricsBody() const;
  std::string StatuszBody() const;
  std::string TracesBody(size_t n) const;

  service::ServingEngine* const engine_;
  SloMonitor* const monitor_;
  const AdminServerOptions options_;
  const double started_at_seconds_;

  std::atomic<bool> running_{false};
  std::atomic<uint16_t> port_{0};
  int listen_fd_ = -1;
  std::thread serve_thread_;
};

}  // namespace subtab::ops

#endif  // SUBTAB_OPS_ADMIN_SERVER_H_
