#include "subtab/ops/prometheus.h"

#include <cctype>
#include <limits>

#include "subtab/util/string_util.h"

namespace subtab::ops {
namespace {

bool LegalNameChar(char c, bool first) {
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':') {
    return true;
  }
  return !first && std::isdigit(static_cast<unsigned char>(c));
}

/// One `name value` (or `name{labels} value`) sample line.
void AppendSample(std::string* out, const std::string& name,
                  const std::string& labels, double value) {
  *out += name;
  if (!labels.empty()) {
    *out += "{";
    *out += labels;
    *out += "}";
  }
  // %.17g round-trips doubles; counters stay integral in this format.
  *out += StrFormat(" %.17g\n", value);
}

void AppendHeader(std::string* out, const std::string& name,
                  const std::string& help, const char* type) {
  *out += "# HELP " + name + " " + EscapeHelpText(help) + "\n";
  *out += "# TYPE " + name + " " + type + "\n";
}

}  // namespace

std::string SanitizeMetricName(const std::string& dotted) {
  std::string out;
  out.reserve(dotted.size() + 1);
  for (size_t i = 0; i < dotted.size(); ++i) {
    const char c = dotted[i];
    if (LegalNameChar(c, /*first=*/out.empty())) {
      out += c;
    } else if (out.empty() && std::isdigit(static_cast<unsigned char>(c))) {
      out += '_';
      out += c;
    } else {
      out += '_';
    }
  }
  if (out.empty()) out = "_";
  return out;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string EscapeHelpText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

double LatencyBucketUpperBoundSeconds(size_t b) {
  // util/latency_histogram.h: bucket 0 holds sub-microsecond records,
  // bucket b in [1, kBuckets-2] holds microsecond values of bit_width b
  // (i.e. < 2^b us), and the last bucket is the clamped overflow.
  if (b + 1 >= LatencyHistogram::kBuckets) {
    return std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(1ULL << b) * 1e-6;
}

std::string RenderPrometheus(const MetricsSnapshot& snapshot,
                             const std::string& prefix) {
  const std::string base = SanitizeMetricName(prefix) + "_";
  std::string out;
  for (const auto& [dotted, value] : snapshot.counters) {
    const std::string name = base + SanitizeMetricName(dotted);
    AppendHeader(&out, name, "Counter `" + dotted + "`.", "counter");
    AppendSample(&out, name, "", static_cast<double>(value));
  }
  for (const auto& [dotted, value] : snapshot.gauges) {
    const std::string name = base + SanitizeMetricName(dotted);
    AppendHeader(&out, name, "Gauge `" + dotted + "`.", "gauge");
    AppendSample(&out, name, "", value);
  }
  for (const auto& [dotted, hist] : snapshot.histograms) {
    const std::string name = base + SanitizeMetricName(dotted) + "_seconds";
    AppendHeader(&out, name, "Latency histogram `" + dotted + "` (seconds).",
                 "histogram");
    uint64_t cumulative = 0;
    for (size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
      cumulative += hist.buckets[b];
      const double bound = LatencyBucketUpperBoundSeconds(b);
      const std::string le =
          bound == std::numeric_limits<double>::infinity()
              ? "+Inf"
              : StrFormat("%.9g", bound);
      AppendSample(&out, name + "_bucket", "le=\"" + EscapeLabelValue(le) + "\"",
                   static_cast<double>(cumulative));
    }
    AppendSample(&out, name + "_sum", "", hist.sum_seconds);
    AppendSample(&out, name + "_count", "", static_cast<double>(hist.count));
  }
  return out;
}

}  // namespace subtab::ops
