#ifndef SUBTAB_OPS_PROMETHEUS_H_
#define SUBTAB_OPS_PROMETHEUS_H_

#include <string>

#include "subtab/util/metrics.h"

/// \file prometheus.h
/// Prometheus text-exposition rendering (format version 0.0.4) for the
/// unified MetricsRegistry — what `GET /metrics` on the admin server
/// (ops/admin_server.h) returns. Dependency-free: a MetricsSnapshot in, one
/// exposition document out.
///
/// Mapping from the registry's dotted names (docs/OBSERVABILITY.md):
///
///   counter  engine.requests.submitted -> subtab_engine_requests_submitted
///   gauge    pipeline.worker_utilization -> subtab_pipeline_worker_utilization
///   histogram pipeline.latency -> subtab_pipeline_latency_seconds with
///            cumulative `_bucket{le="..."}` series (one per
///            LatencyHistogram power-of-two bucket, ending in le="+Inf"),
///            plus `_sum` (seconds) and `_count`.
///
/// Every instrument in the snapshot appears exactly once, with `# HELP` and
/// `# TYPE` headers; names are sanitized to the exposition grammar and label
/// values escaped per the spec (tests/ops_test.cc holds the conformance
/// checker CI runs).

namespace subtab::ops {

/// A dotted registry name as a legal Prometheus metric-name fragment:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`. Dots (and every other illegal byte) become
/// underscores; a leading digit gets an underscore prefix.
std::string SanitizeMetricName(const std::string& dotted);

/// Label-value escaping per the exposition format: backslash, double quote,
/// and newline are escaped; everything else passes through.
std::string EscapeLabelValue(const std::string& value);

/// HELP-text escaping: backslash and newline only (quotes are legal there).
std::string EscapeHelpText(const std::string& text);

/// The inclusive `le` upper bound, in seconds, of LatencyHistogram bucket
/// `b` — +infinity for the last bucket. Exposed so the exposition tests can
/// check bucket math against util/latency_histogram.h directly.
double LatencyBucketUpperBoundSeconds(size_t b);

/// Renders the whole snapshot as one exposition document. `prefix` is
/// prepended to every metric name (`<prefix>_<sanitized dotted name>`);
/// histograms additionally get a `_seconds` unit suffix. Instruments are
/// emitted in the snapshot's (sorted) name order, so output is
/// deterministic and diffs cleanly between scrapes.
std::string RenderPrometheus(const MetricsSnapshot& snapshot,
                             const std::string& prefix = "subtab");

}  // namespace subtab::ops

#endif  // SUBTAB_OPS_PROMETHEUS_H_
