#include "subtab/ops/slo_monitor.h"

#include <algorithm>
#include <chrono>

#include "subtab/util/logging.h"
#include "subtab/util/string_util.h"
#include "subtab/util/trace.h"

namespace subtab::ops {
namespace {

using Clock = std::chrono::steady_clock;

double NowSeconds() {
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

uint64_t CounterValue(const MetricsSnapshot& snap, const char* name) {
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

}  // namespace

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kOk:
      return "ok";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kUnhealthy:
      return "unhealthy";
  }
  return "unknown";
}

std::string SloStatus::ToJson() const {
  return StrFormat(
      "{\"state\":\"%s\",\"ticks\":%llu,\"transitions\":%llu,"
      "\"burn\":{\"latency_short\":%.6g,\"latency_long\":%.6g,"
      "\"shed_short\":%.6g,\"shed_long\":%.6g},"
      "\"latency_p95_short_ms\":%.6g,\"shed_rate_short\":%.6g,"
      "\"clean_streak\":%zu,\"adaptive_queue_depth\":%zu}",
      HealthStateName(state), (unsigned long long)ticks,
      (unsigned long long)transitions, burn_latency_short, burn_latency_long,
      burn_shed_short, burn_shed_long, latency_p95_short_ms, shed_rate_short,
      clean_streak, adaptive_queue_depth);
}

SloMonitor::SloMonitor(service::ServingEngine* engine, SloOptions options)
    : engine_(engine),
      options_(options),
      burn_threshold_(options.burn_threshold) {
  MetricsRegistry* registry = engine_->mutable_metrics();
  g_health_ = registry->gauge("slo.health");
  g_burn_latency_short_ = registry->gauge("slo.burn.latency_short");
  g_burn_latency_long_ = registry->gauge("slo.burn.latency_long");
  g_burn_shed_short_ = registry->gauge("slo.burn.shed_short");
  g_burn_shed_long_ = registry->gauge("slo.burn.shed_long");
  g_latency_p95_short_ms_ = registry->gauge("slo.latency_p95_short_ms");
  g_shed_rate_short_ = registry->gauge("slo.shed_rate_short");
  g_adaptive_queue_depth_ = registry->gauge("slo.adaptive_queue_depth");
  c_ticks_ = registry->counter("slo.ticks");
  c_transitions_ = registry->counter("slo.transitions");
}

SloMonitor::~SloMonitor() { Stop(); }

void SloMonitor::Start() {
  std::lock_guard<std::mutex> lock(ticker_mu_);
  if (ticker_.joinable()) return;
  stopping_ = false;
  ticker_ = std::thread([this] { RunTicker(); });
}

void SloMonitor::Stop() {
  {
    std::lock_guard<std::mutex> lock(ticker_mu_);
    stopping_ = true;
  }
  ticker_cv_.notify_all();
  if (ticker_.joinable()) ticker_.join();
}

void SloMonitor::RunTicker() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(ticker_mu_);
      ticker_cv_.wait_for(
          lock,
          std::chrono::duration<double>(std::max(0.01, options_.tick_seconds)),
          [this] { return stopping_; });
      if (stopping_) return;
    }
    // Stats() refreshes the registry's gauges so the snapshot the window
    // math (and the next /metrics scrape) sees is current.
    engine_->Stats();
    const MetricsSnapshot snapshot = engine_->metrics().Snapshot();
    const double now = NowSeconds();
    std::lock_guard<std::mutex> lock(mu_);
    TickLocked(snapshot, now);
  }
}

void SloMonitor::TickWithSnapshotForTesting(const MetricsSnapshot& snapshot,
                                            double now_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  TickLocked(snapshot, now_seconds);
}

SloMonitor::WindowBurn SloMonitor::BurnOver(const MetricsSnapshot& current,
                                            double now_seconds,
                                            double window_seconds) const {
  WindowBurn burn;
  if (history_.empty()) return burn;
  // The newest retained sample at least `window_seconds` old; when the
  // history is younger than the window (startup), the oldest stands in, so
  // the monitor starts judging as soon as it has any baseline at all.
  const Sample* reference = &history_.front();
  for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
    if (now_seconds - it->at_seconds >= window_seconds) {
      reference = &*it;
      break;
    }
  }
  const MetricsSnapshot delta = current.Delta(reference->snapshot);

  auto hist = delta.histograms.find("pipeline.latency");
  if (hist != delta.histograms.end() && hist->second.count > 0) {
    burn.p95_seconds = hist->second.Percentile(0.95);
  }
  const uint64_t submitted =
      CounterValue(delta, "engine.requests.submitted");
  const uint64_t shed = CounterValue(delta, "pipeline.shed.global_queue") +
                        CounterValue(delta, "pipeline.shed.tenant");
  burn.shed_rate = submitted == 0 ? 0.0
                                  : static_cast<double>(shed) /
                                        static_cast<double>(submitted);
  if (options_.latency_p95_objective_seconds > 0.0) {
    burn.latency = burn.p95_seconds / options_.latency_p95_objective_seconds;
  }
  if (options_.shed_rate_objective > 0.0) {
    burn.shed = burn.shed_rate / options_.shed_rate_objective;
  }
  return burn;
}

void SloMonitor::TickLocked(const MetricsSnapshot& snapshot,
                            double now_seconds) {
  ++ticks_;
  c_ticks_->Add();

  // Windows are judged against the PRIOR history; the current snapshot only
  // joins it afterwards (a window must never be a self-delta of zero).
  const WindowBurn s = BurnOver(snapshot, now_seconds,
                                options_.short_window_seconds);
  const WindowBurn l = BurnOver(snapshot, now_seconds,
                                options_.long_window_seconds);
  last_short_ = s;
  last_long_ = l;
  history_.push_back(Sample{now_seconds, snapshot});
  // Keep exactly one sample older than the long window (the reference);
  // everything older than it is dead weight.
  while (history_.size() >= 2 &&
         now_seconds - history_[1].at_seconds >=
             options_.long_window_seconds) {
    history_.pop_front();
  }

  const auto burning = [this](const WindowBurn& w) {
    return std::max(w.latency, w.shed) > burn_threshold_;
  };
  const bool short_burning = burning(s);
  const bool both_burning = short_burning && burning(l);

  const HealthState before = health();
  HealthState after = before;
  if (short_burning) clean_streak_ = 0;
  if (both_burning) {
    // Escalate one level per burning tick — unhealthy takes two ticks of
    // sustained two-window burn, never one spike.
    if (after == HealthState::kOk) {
      after = HealthState::kDegraded;
    } else if (after == HealthState::kDegraded) {
      after = HealthState::kUnhealthy;
    }
  } else if (!short_burning && before != HealthState::kOk) {
    // Hysteresis: one recovery step per recovery_ticks clean short windows.
    ++clean_streak_;
    if (clean_streak_ >= std::max<size_t>(1, options_.recovery_ticks)) {
      clean_streak_ = 0;
      after = before == HealthState::kUnhealthy ? HealthState::kDegraded
                                                : HealthState::kOk;
    }
  }

  if (options_.adaptive_admission) {
    if (both_burning) {
      const size_t current = engine_->effective_max_queue_depth();
      if (current > 0) {
        const size_t floor = std::max<size_t>(1, options_.min_queue_depth);
        const size_t target = std::max(floor, current / 2);
        if (target < current &&
            engine_->SetEffectiveMaxQueueDepth(target)) {
          adaptive_queue_depth_ = target;
        }
      }
    } else if (after == HealthState::kOk && adaptive_queue_depth_ > 0) {
      engine_->SetEffectiveMaxQueueDepth(
          engine_->configured_max_queue_depth());
      adaptive_queue_depth_ = 0;
    }
  }

  g_health_->Set(static_cast<double>(static_cast<int>(after)));
  g_burn_latency_short_->Set(s.latency);
  g_burn_latency_long_->Set(l.latency);
  g_burn_shed_short_->Set(s.shed);
  g_burn_shed_long_->Set(l.shed);
  g_latency_p95_short_ms_->Set(s.p95_seconds * 1e3);
  g_shed_rate_short_->Set(s.shed_rate);
  g_adaptive_queue_depth_->Set(static_cast<double>(adaptive_queue_depth_));

  if (after != before) {
    ++transitions_;
    c_transitions_->Add();
    state_.store(static_cast<int>(after), std::memory_order_release);
    Transition(before, after, s, l);
  }
}

void SloMonitor::Transition(HealthState from, HealthState to,
                            const WindowBurn& s, const WindowBurn& l) {
  // The transition is an event worth retaining: commit it as a trace (so
  // /traces and the exemplar export show it next to the requests that
  // caused it) and tag the log line with its id.
  uint64_t trace_id = 0;
  if (engine_->trace_sink() != nullptr) {
    TraceContext trace =
        TraceContext::Start("slo.transition", engine_->trace_sink());
    trace.AddRootAttr("from", HealthStateName(from));
    trace.AddRootAttr("to", HealthStateName(to));
    trace.AddRootAttr("burn_latency_short", s.latency);
    trace.AddRootAttr("burn_latency_long", l.latency);
    trace.AddRootAttr("burn_shed_short", s.shed);
    trace.AddRootAttr("burn_shed_long", l.shed);
    if (adaptive_queue_depth_ > 0) {
      trace.AddRootAttr("adaptive_queue_depth",
                        (uint64_t)adaptive_queue_depth_);
    }
    trace_id = trace.trace_id();
    trace.FinishRoot();
  }
  LogTraceScope log_scope(trace_id);
  SUBTAB_LOG_STREAM(Warning)
      << "slo: health " << HealthStateName(from) << " -> "
      << HealthStateName(to) << " (burn latency short/long "
      << StrFormat("%.3g/%.3g", s.latency, l.latency) << ", shed short/long "
      << StrFormat("%.3g/%.3g", s.shed, l.shed) << ")";
}

SloStatus SloMonitor::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  SloStatus out;
  out.state = health();
  out.ticks = ticks_;
  out.transitions = transitions_;
  out.burn_latency_short = last_short_.latency;
  out.burn_latency_long = last_long_.latency;
  out.burn_shed_short = last_short_.shed;
  out.burn_shed_long = last_long_.shed;
  out.latency_p95_short_ms = last_short_.p95_seconds * 1e3;
  out.shed_rate_short = last_short_.shed_rate;
  out.clean_streak = clean_streak_;
  out.adaptive_queue_depth = adaptive_queue_depth_;
  return out;
}

}  // namespace subtab::ops
