#ifndef SUBTAB_OPS_SLO_MONITOR_H_
#define SUBTAB_OPS_SLO_MONITOR_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

#include "subtab/service/engine.h"
#include "subtab/util/metrics.h"

/// \file slo_monitor.h
/// Multi-window SLO burn-rate monitoring for the serving engine — the live
/// health signal behind the admin server's /healthz (ops/admin_server.h).
///
/// A ticker thread snapshots the engine's MetricsRegistry once per tick and
/// keeps a short history, so every tick can compute windowed deltas
/// (MetricsSnapshot::Delta) over a SHORT window (default 5 s, the fast
/// trigger) and a LONG window (default 60 s, the flap damper). From each
/// window it derives two burn rates against configured objectives:
///
///   latency burn = windowed pipeline.latency p95 / latency_p95_objective
///   shed burn    = windowed shed fraction      / shed_rate_objective
///
/// A window is BURNING when either burn rate exceeds burn_threshold. Health
/// escalates one level per tick (ok -> degraded -> unhealthy) only while
/// BOTH windows burn — a transient spike trips the short window but not the
/// long one, so it never flips health. Recovery is hysteretic: health steps
/// down one level only after recovery_ticks consecutive CLEAN short
/// windows, so health doesn't oscillate at the threshold.
///
/// Every tick exports the burn rates and health as slo.* gauges into the
/// engine's own registry (one /metrics scrape shows engine and monitor
/// state together — docs/STATS.md); every transition commits an
/// "slo.transition" trace to the engine's sink and emits a trace-tagged
/// warning log line.
///
/// Adaptive admission (optional, requires EngineOptions::
/// slo_adaptive_admission): while both windows burn, the monitor halves the
/// engine's effective global queue bound toward min_queue_depth — shedding
/// earlier is the only lever that shortens the queue a latency SLO is
/// drowning in — and restores the configured bound once health returns to
/// ok.

namespace subtab::ops {

enum class HealthState { kOk = 0, kDegraded = 1, kUnhealthy = 2 };

/// Lowercase state name ("ok", "degraded", "unhealthy") — the /healthz body.
const char* HealthStateName(HealthState state);

struct SloOptions {
  /// Ticker period. Tests drive ticks synthetically instead
  /// (TickWithSnapshotForTesting) and never start the thread.
  double tick_seconds = 1.0;
  double short_window_seconds = 5.0;
  double long_window_seconds = 60.0;
  /// Latency SLO: windowed pipeline.latency p95 must stay below this.
  double latency_p95_objective_seconds = 0.5;
  /// Shed SLO: windowed sheds / submissions must stay below this fraction.
  double shed_rate_objective = 0.01;
  /// A window burns when max(latency burn, shed burn) exceeds this.
  double burn_threshold = 1.0;
  /// Consecutive clean short-window ticks required per recovery step.
  size_t recovery_ticks = 3;
  /// Tighten the engine's effective max_queue_depth while burning (no-op
  /// unless the engine was built with slo_adaptive_admission).
  bool adaptive_admission = false;
  /// Floor the adaptive bound never tightens past.
  size_t min_queue_depth = 1;
};

/// Point-in-time monitor state, as exposed on /statusz and by tests.
struct SloStatus {
  HealthState state = HealthState::kOk;
  uint64_t ticks = 0;
  uint64_t transitions = 0;
  /// Burn rates from the most recent tick (objective multiples; 1.0 = at
  /// the objective).
  double burn_latency_short = 0.0;
  double burn_latency_long = 0.0;
  double burn_shed_short = 0.0;
  double burn_shed_long = 0.0;
  /// Raw short-window observations behind those burns.
  double latency_p95_short_ms = 0.0;
  double shed_rate_short = 0.0;
  /// Clean short-window streak (resets whenever the short window burns).
  size_t clean_streak = 0;
  /// What adaptive admission last set (0 = never tightened / not enabled).
  size_t adaptive_queue_depth = 0;

  std::string ToJson() const;
};

/// One monitor per engine. Start() spawns the ticker; the destructor (or
/// Stop()) joins it. All public methods are thread-safe.
class SloMonitor {
 public:
  SloMonitor(service::ServingEngine* engine, SloOptions options = {});
  ~SloMonitor();

  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  /// Spawns the ticker thread (idempotent).
  void Start();
  /// Stops and joins the ticker (idempotent; the destructor calls it).
  void Stop();

  HealthState health() const {
    return static_cast<HealthState>(state_.load(std::memory_order_acquire));
  }
  SloStatus status() const;

  /// Test seam: runs one tick against an externally supplied snapshot and
  /// clock, exactly as the ticker thread would (window math, hysteresis,
  /// gauge export, transition traces, adaptive admission). `now_seconds` is
  /// an arbitrary monotonic clock; ticks must be fed in increasing order.
  void TickWithSnapshotForTesting(const MetricsSnapshot& snapshot,
                                  double now_seconds);

 private:
  struct Sample {
    double at_seconds = 0.0;
    MetricsSnapshot snapshot;
  };

  /// Burn rates of one window (current vs the newest sample at least
  /// `window_seconds` old, falling back to the oldest retained).
  struct WindowBurn {
    double latency = 0.0;  ///< p95 / objective.
    double shed = 0.0;     ///< shed rate / objective.
    double p95_seconds = 0.0;
    double shed_rate = 0.0;
  };

  void TickLocked(const MetricsSnapshot& snapshot, double now_seconds);
  WindowBurn BurnOver(const MetricsSnapshot& current, double now_seconds,
                      double window_seconds) const;
  void Transition(HealthState from, HealthState to, const WindowBurn& s,
                  const WindowBurn& l);
  void RunTicker();

  service::ServingEngine* const engine_;
  const SloOptions options_;
  const double burn_threshold_;

  /// slo.* gauges live in the ENGINE's registry so one scrape sees both.
  Gauge* g_health_;
  Gauge* g_burn_latency_short_;
  Gauge* g_burn_latency_long_;
  Gauge* g_burn_shed_short_;
  Gauge* g_burn_shed_long_;
  Gauge* g_latency_p95_short_ms_;
  Gauge* g_shed_rate_short_;
  Gauge* g_adaptive_queue_depth_;
  Counter* c_ticks_;
  Counter* c_transitions_;

  /// Published health, readable without mu_ (the /healthz hot path).
  std::atomic<int> state_{0};

  mutable std::mutex mu_;
  std::deque<Sample> history_;
  uint64_t ticks_ = 0;
  uint64_t transitions_ = 0;
  size_t clean_streak_ = 0;
  size_t adaptive_queue_depth_ = 0;
  WindowBurn last_short_;
  WindowBurn last_long_;

  std::mutex ticker_mu_;
  std::condition_variable ticker_cv_;
  bool stopping_ = false;
  std::thread ticker_;
};

}  // namespace subtab::ops

#endif  // SUBTAB_OPS_SLO_MONITOR_H_
