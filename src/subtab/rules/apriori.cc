#include "subtab/rules/apriori.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "subtab/util/logging.h"

namespace subtab {
namespace {

/// FNV-1a over the token vector, for the subset-pruning hash set.
struct ItemsetHash {
  size_t operator()(const std::vector<Token>& items) const {
    size_t h = 1469598103934665603ULL;
    for (Token t : items) {
      h ^= t;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

using ItemsetSet = std::unordered_set<std::vector<Token>, ItemsetHash>;

/// True iff every (k-1)-subset of `candidate` is frequent (Apriori prune).
/// The two parent subsets are frequent by construction, so only subsets
/// dropping one of the first k-2 items need checking.
bool AllSubsetsFrequent(const std::vector<Token>& candidate, const ItemsetSet& frequent) {
  std::vector<Token> subset(candidate.size() - 1);
  for (size_t skip = 0; skip + 2 < candidate.size(); ++skip) {
    size_t j = 0;
    for (size_t i = 0; i < candidate.size(); ++i) {
      if (i != skip) subset[j++] = candidate[i];
    }
    if (frequent.find(subset) == frequent.end()) return false;
  }
  return true;
}

}  // namespace

std::vector<FrequentItemset> MineFrequentItemsets(
    const BinnedTable& binned, const AprioriOptions& options,
    const std::vector<uint32_t>* row_subset) {
  const size_t n_total = binned.num_rows();
  const size_t universe =
      row_subset != nullptr ? row_subset->size() : n_total;
  std::vector<FrequentItemset> result;
  if (universe == 0) return result;

  const size_t min_count = static_cast<size_t>(
      std::ceil(options.min_support * static_cast<double>(universe)));
  const size_t effective_min = std::max<size_t>(min_count, 1);

  // ---- L1: one tid-bitset per token. -----------------------------------
  std::unordered_map<Token, Bitset> tidsets;
  auto scan_row = [&](uint32_t r) {
    const Token* row = binned.row_data(r);
    for (size_t c = 0; c < binned.num_columns(); ++c) {
      auto [it, inserted] = tidsets.try_emplace(row[c], Bitset(n_total));
      it->second.Set(r);
    }
  };
  if (row_subset != nullptr) {
    for (uint32_t r : *row_subset) scan_row(r);
  } else {
    for (size_t r = 0; r < n_total; ++r) scan_row(static_cast<uint32_t>(r));
  }

  std::vector<FrequentItemset> level;
  for (auto& [token, tids] : tidsets) {
    const size_t count = tids.Count();
    if (count >= effective_min) {
      FrequentItemset fi;
      fi.items = {token};
      fi.tids = std::move(tids);
      fi.count = count;
      level.push_back(std::move(fi));
    }
  }
  // Deterministic order regardless of hash-map iteration.
  std::sort(level.begin(), level.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              return a.items < b.items;
            });

  ItemsetSet frequent_keys;
  for (const auto& fi : level) frequent_keys.insert(fi.items);
  for (const auto& fi : level) result.push_back(fi);

  // ---- Level-wise join. -------------------------------------------------
  for (size_t k = 2; k <= options.max_itemset_size && level.size() >= 2; ++k) {
    std::vector<FrequentItemset> next;
    // level is sorted by items; candidates join pairs sharing the first k-2
    // items. Scan blocks with a common prefix.
    for (size_t i = 0; i < level.size(); ++i) {
      for (size_t j = i + 1; j < level.size(); ++j) {
        const auto& a = level[i].items;
        const auto& b = level[j].items;
        // Shared (k-2)-prefix required; since `level` is sorted, a mismatch
        // means no later j matches either.
        if (!std::equal(a.begin(), a.end() - 1, b.begin(), b.end() - 1)) break;
        const Token ta = a.back();
        const Token tb = b.back();
        // One token per column per row: same-column pairs can never co-occur.
        if (TokenColumn(ta) == TokenColumn(tb)) continue;

        std::vector<Token> candidate = a;
        candidate.push_back(tb);  // b.back() > a.back() by sort order.
        if (!AllSubsetsFrequent(candidate, frequent_keys)) continue;

        Bitset tids = Bitset::Intersection(level[i].tids, level[j].tids);
        const size_t count = tids.Count();
        if (count < effective_min) continue;

        FrequentItemset fi;
        fi.items = std::move(candidate);
        fi.tids = std::move(tids);
        fi.count = count;
        next.push_back(std::move(fi));
        if (result.size() + next.size() >= options.max_itemsets) {
          SUBTAB_LOG_STREAM(Warning)
              << "Apriori: itemset cap " << options.max_itemsets << " reached at level "
              << k << "; results truncated";
          for (auto& f : next) {
            frequent_keys.insert(f.items);
            result.push_back(std::move(f));
          }
          return result;
        }
      }
    }
    for (const auto& fi : next) frequent_keys.insert(fi.items);
    for (auto& fi : next) result.push_back(fi);
    level = std::move(next);
  }
  return result;
}

}  // namespace subtab
