#ifndef SUBTAB_RULES_APRIORI_H_
#define SUBTAB_RULES_APRIORI_H_

#include <cstdint>
#include <vector>

#include "subtab/binning/binned_table.h"
#include "subtab/util/bitset.h"

/// \file apriori.h
/// Apriori frequent-itemset mining [Agrawal & Srikant '94] over binned
/// tables. Transactions are rows; items are tokens. Because every row carries
/// exactly one token per column, itemsets never contain two tokens of the
/// same column — candidate generation exploits this. Support counting uses
/// vertical tid-bitsets: the tidset of a (k)-candidate is the AND of its two
/// parents' tidsets, so each level costs one word-wise pass per candidate.

namespace subtab {

/// Mining parameters.
struct AprioriOptions {
  /// Minimum support as a fraction of transactions (paper default 0.1).
  double min_support = 0.1;
  /// Largest itemset size to mine. Rules of size >= 3 need itemsets of at
  /// least 3 tokens; 4 covers the paper's examples at modest cost.
  size_t max_itemset_size = 4;
  /// Safety cap on the total number of frequent itemsets kept.
  size_t max_itemsets = 500000;
};

/// A frequent itemset with its transaction set.
struct FrequentItemset {
  std::vector<Token> items;  ///< Sorted ascending; ≤ 1 token per column.
  Bitset tids;               ///< Rows containing every item.
  size_t count = 0;          ///< tids.Count(), cached.

  double Support(size_t num_rows) const {
    return num_rows == 0 ? 0.0 : static_cast<double>(count) / num_rows;
  }
};

/// Mines all frequent itemsets of size in [1, max_itemset_size].
///
/// If `row_subset` is non-null, only those rows form the transaction universe
/// (used when mining per target-bin subsets, Sec. 6.1); tid bitsets are still
/// indexed by the original row ids.
std::vector<FrequentItemset> MineFrequentItemsets(
    const BinnedTable& binned, const AprioriOptions& options,
    const std::vector<uint32_t>* row_subset = nullptr);

}  // namespace subtab

#endif  // SUBTAB_RULES_APRIORI_H_
