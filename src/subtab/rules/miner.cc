#include "subtab/rules/miner.h"

#include <algorithm>
#include <unordered_map>

#include "subtab/util/logging.h"

namespace subtab {
namespace {

struct ItemsetHash {
  size_t operator()(const std::vector<Token>& items) const {
    size_t h = 1469598103934665603ULL;
    for (Token t : items) {
      h ^= t;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

using CountMap = std::unordered_map<std::vector<Token>, size_t, ItemsetHash>;

/// Emits all rules of `itemset` with |rhs| in [1, max_rhs_size]; counts come
/// from the frequent-itemset map (every subset of a frequent itemset is
/// frequent, so lookups always succeed).
void EmitRules(const FrequentItemset& itemset, const CountMap& counts, size_t num_rows,
               const RuleMiningOptions& options, RuleSet* out) {
  const size_t k = itemset.items.size();
  if (k < options.min_rule_size || k < 2) return;
  const double support =
      static_cast<double>(itemset.count) / static_cast<double>(num_rows);

  const size_t max_rhs = std::min(options.max_rhs_size, k - 1);
  // Enumerate consequents of size 1..max_rhs via bitmask subsets (k <= ~5).
  SUBTAB_CHECK(k < 20);
  for (uint32_t mask = 1; mask < (1u << k); ++mask) {
    const size_t rhs_size = static_cast<size_t>(__builtin_popcount(mask));
    if (rhs_size == 0 || rhs_size > max_rhs) continue;
    Rule rule;
    rule.support = support;
    std::vector<Token> lhs;
    std::vector<Token> rhs;
    for (size_t i = 0; i < k; ++i) {
      if (mask & (1u << i)) {
        rhs.push_back(itemset.items[i]);
      } else {
        lhs.push_back(itemset.items[i]);
      }
    }
    auto it = counts.find(lhs);
    SUBTAB_CHECK(it != counts.end());
    const double lhs_count = static_cast<double>(it->second);
    const double confidence = static_cast<double>(itemset.count) / lhs_count;
    if (confidence < options.min_confidence) continue;
    rule.lhs = std::move(lhs);
    rule.rhs = std::move(rhs);
    rule.confidence = confidence;
    out->rules.push_back(std::move(rule));
    if (out->rules.size() >= options.max_rules) return;
  }
}

}  // namespace

RuleSet MineRules(const BinnedTable& binned, const RuleMiningOptions& options) {
  RuleSet out;
  const size_t n = binned.num_rows();
  if (n == 0) return out;

  std::vector<FrequentItemset> itemsets = MineFrequentItemsets(binned, options.apriori);
  CountMap counts;
  counts.reserve(itemsets.size());
  for (const auto& fi : itemsets) counts.emplace(fi.items, fi.count);

  for (const auto& fi : itemsets) {
    EmitRules(fi, counts, n, options, &out);
    if (out.rules.size() >= options.max_rules) {
      SUBTAB_LOG_STREAM(Warning) << "rule cap " << options.max_rules << " reached";
      break;
    }
  }
  std::sort(out.rules.begin(), out.rules.end());
  return out;
}

RuleSet MineRulesForTargets(const BinnedTable& binned, const RuleMiningOptions& options,
                            const std::vector<uint32_t>& target_columns) {
  RuleSet out;
  const size_t n = binned.num_rows();
  if (n == 0 || target_columns.empty()) return out;

  // Full-table tidset per token, for global antecedent frequencies.
  std::unordered_map<Token, Bitset> token_tids;
  for (size_t r = 0; r < n; ++r) {
    const Token* row = binned.row_data(r);
    for (size_t c = 0; c < binned.num_columns(); ++c) {
      auto [it, inserted] = token_tids.try_emplace(row[c], Bitset(n));
      it->second.Set(r);
    }
  }
  auto full_count = [&token_tids, n](const std::vector<Token>& items) -> size_t {
    SUBTAB_CHECK(!items.empty());
    Bitset acc = token_tids.at(items[0]);
    for (size_t i = 1; i < items.size(); ++i) acc.IntersectWith(token_tids.at(items[i]));
    return acc.Count();
  };

  const size_t global_min_count = std::max<size_t>(
      1, static_cast<size_t>(options.apriori.min_support * static_cast<double>(n)));

  for (uint32_t target : target_columns) {
    SUBTAB_CHECK(target < binned.num_columns());
    const uint32_t bins = binned.bins_in_column(target);
    for (uint32_t b = 0; b < bins; ++b) {
      const Token target_token = MakeToken(target, b);
      auto it = token_tids.find(target_token);
      if (it == token_tids.end()) continue;  // Bin unused.
      std::vector<uint32_t> subset = it->second.ToIndices();
      // Rule support can never exceed |subset| / n.
      if (subset.size() < global_min_count) continue;

      // Local support threshold equivalent to the global min count.
      AprioriOptions local = options.apriori;
      local.min_support = static_cast<double>(global_min_count) /
                          static_cast<double>(subset.size());
      // Antecedent needs min_rule_size - 1 tokens; no target tokens inside.
      std::vector<FrequentItemset> itemsets =
          MineFrequentItemsets(binned, local, &subset);

      for (const auto& fi : itemsets) {
        if (fi.items.size() + 1 < options.min_rule_size) continue;
        bool uses_target_column = false;
        for (Token t : fi.items) {
          if (TokenColumn(t) == target) {
            uses_target_column = true;
            break;
          }
        }
        if (uses_target_column) continue;

        const size_t lhs_full = full_count(fi.items);
        SUBTAB_CHECK(lhs_full >= fi.count);
        const double confidence =
            static_cast<double>(fi.count) / static_cast<double>(lhs_full);
        if (confidence < options.min_confidence) continue;

        Rule rule;
        rule.lhs = fi.items;
        rule.rhs = {target_token};
        rule.support = static_cast<double>(fi.count) / static_cast<double>(n);
        rule.confidence = confidence;
        out.rules.push_back(std::move(rule));
        if (out.rules.size() >= options.max_rules) {
          SUBTAB_LOG_STREAM(Warning)
              << "rule cap " << options.max_rules << " reached (targeted mining)";
          std::sort(out.rules.begin(), out.rules.end());
          return out;
        }
      }
    }
  }
  std::sort(out.rules.begin(), out.rules.end());
  out.rules.erase(std::unique(out.rules.begin(), out.rules.end(),
                              [](const Rule& a, const Rule& b) {
                                return a.SameTokens(b);
                              }),
                  out.rules.end());
  return out;
}

}  // namespace subtab
