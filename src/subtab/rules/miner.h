#ifndef SUBTAB_RULES_MINER_H_
#define SUBTAB_RULES_MINER_H_

#include <vector>

#include "subtab/rules/apriori.h"
#include "subtab/rules/rule.h"

/// \file miner.h
/// Association-rule generation on top of the Apriori itemset miner, with the
/// paper's defaults (Sec. 6.1): min support 0.1, min confidence 0.6, minimum
/// rule size 3. Two modes:
///   * MineRules          — global mining; callers may then apply the R*
///                          target filter (RuleSet::FilterByTargets).
///   * MineRulesForTargets — the paper's implementation detail for target
///                          columns: "the data is split according to the
///                          binned values of the target columns. The rules
///                          are then mined over each subset separately."

namespace subtab {

/// Rule-mining parameters (thresholds apply to the *rule*, i.e. lhs ∪ rhs).
struct RuleMiningOptions {
  AprioriOptions apriori;        ///< min_support applies to lhs ∪ rhs.
  double min_confidence = 0.6;   ///< Paper default.
  size_t min_rule_size = 3;      ///< Minimum |lhs| + |rhs| (paper default).
  size_t max_rhs_size = 1;       ///< Single-token consequents by default.
  size_t max_rules = 500000;     ///< Safety cap.
};

/// Mines rules over the whole table. Deterministic output order.
RuleSet MineRules(const BinnedTable& binned, const RuleMiningOptions& options);

/// Mines rules whose consequent is a target-column bin, by mining frequent
/// antecedents within each target-bin row subset (Sec. 6.1). Support is
/// measured against the full table; confidence against the antecedent's
/// full-table frequency.
RuleSet MineRulesForTargets(const BinnedTable& binned, const RuleMiningOptions& options,
                            const std::vector<uint32_t>& target_columns);

}  // namespace subtab

#endif  // SUBTAB_RULES_MINER_H_
