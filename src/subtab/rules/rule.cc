#include "subtab/rules/rule.h"

#include <algorithm>

#include "subtab/util/string_util.h"

namespace subtab {

std::vector<Token> Rule::AllTokens() const {
  std::vector<Token> all;
  all.reserve(lhs.size() + rhs.size());
  std::merge(lhs.begin(), lhs.end(), rhs.begin(), rhs.end(), std::back_inserter(all));
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

std::vector<uint32_t> Rule::Columns() const {
  std::vector<uint32_t> cols;
  cols.reserve(size());
  for (Token t : lhs) cols.push_back(TokenColumn(t));
  for (Token t : rhs) cols.push_back(TokenColumn(t));
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return cols;
}

bool Rule::HoldsForRow(const BinnedTable& binned, size_t row) const {
  for (Token t : lhs) {
    if (binned.token(row, TokenColumn(t)) != t) return false;
  }
  for (Token t : rhs) {
    if (binned.token(row, TokenColumn(t)) != t) return false;
  }
  return true;
}

bool Rule::TouchesAnyColumn(const std::vector<uint32_t>& columns) const {
  auto touches = [&columns](Token t) {
    return std::binary_search(columns.begin(), columns.end(), TokenColumn(t));
  };
  for (Token t : lhs) {
    if (touches(t)) return true;
  }
  for (Token t : rhs) {
    if (touches(t)) return true;
  }
  return false;
}

std::string Rule::ToString(const BinnedTable& binned) const {
  std::vector<std::string> lhs_parts;
  lhs_parts.reserve(lhs.size());
  for (Token t : lhs) lhs_parts.push_back(binned.TokenLabel(t));
  std::vector<std::string> rhs_parts;
  rhs_parts.reserve(rhs.size());
  for (Token t : rhs) rhs_parts.push_back(binned.TokenLabel(t));
  return StrFormat("%s -> %s [supp=%.3f conf=%.3f]",
                   StrJoin(lhs_parts, ", ").c_str(), StrJoin(rhs_parts, ", ").c_str(),
                   support, confidence);
}

bool Rule::operator<(const Rule& other) const {
  if (lhs != other.lhs) return lhs < other.lhs;
  return rhs < other.rhs;
}

RuleSet RuleSet::FilterByTargets(const std::vector<uint32_t>& target_columns) const {
  if (target_columns.empty()) return *this;
  std::vector<uint32_t> sorted = target_columns;
  std::sort(sorted.begin(), sorted.end());
  RuleSet out;
  for (const Rule& r : rules) {
    if (r.TouchesAnyColumn(sorted)) out.rules.push_back(r);
  }
  return out;
}

}  // namespace subtab
