#ifndef SUBTAB_RULES_RULE_H_
#define SUBTAB_RULES_RULE_H_

#include <string>
#include <vector>

#include "subtab/binning/binned_table.h"

/// \file rule.h
/// Association rules over binned tables (Def. 3.4). A rule's antecedent and
/// consequent are token sets; a rule *holds* for a row iff the row carries
/// every token of the rule. U_R — the set of columns the rule uses — drives
/// the coverage semantics (Def. 3.6 d1 requires U_R ⊆ U_sub).

namespace subtab {

/// One association rule lhs -> rhs with its quality statistics.
struct Rule {
  std::vector<Token> lhs;  ///< Antecedent tokens, sorted ascending.
  std::vector<Token> rhs;  ///< Consequent tokens, sorted ascending (may be
                           ///< empty for synthetic rules used in tests).
  double support = 0.0;    ///< Fraction of rows where lhs ∪ rhs holds.
  double confidence = 0.0; ///< supp(lhs ∪ rhs) / supp(lhs).

  /// Total number of tokens (the "rule size" the paper thresholds at 3).
  size_t size() const { return lhs.size() + rhs.size(); }

  /// Sorted union of lhs and rhs tokens.
  std::vector<Token> AllTokens() const;

  /// Distinct column ids used by the rule (U_R), sorted ascending.
  std::vector<uint32_t> Columns() const;

  /// True iff the rule holds for `row` of `binned` (Def. 3.4).
  bool HoldsForRow(const BinnedTable& binned, size_t row) const;

  /// True iff any column of the rule appears in `columns` (sorted).
  bool TouchesAnyColumn(const std::vector<uint32_t>& columns) const;

  /// "A=x, B=y -> C=z [supp=0.12 conf=0.81]".
  std::string ToString(const BinnedTable& binned) const;

  /// Orders rules deterministically (by tokens); used to canonicalize sets.
  bool operator<(const Rule& other) const;
  bool SameTokens(const Rule& other) const {
    return lhs == other.lhs && rhs == other.rhs;
  }
};

/// A mined rule collection with provenance.
struct RuleSet {
  std::vector<Rule> rules;

  size_t size() const { return rules.size(); }
  bool empty() const { return rules.empty(); }

  /// Rules that touch at least one of `target_columns` — the R* filter of
  /// the optimization problem (Sec. 3.2). Returns all rules when targets are
  /// empty, matching the paper's convention.
  RuleSet FilterByTargets(const std::vector<uint32_t>& target_columns) const;
};

}  // namespace subtab

#endif  // SUBTAB_RULES_RULE_H_
