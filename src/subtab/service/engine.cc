#include "subtab/service/engine.h"

#include <algorithm>
#include <unordered_set>

#include "subtab/util/logging.h"
#include "subtab/util/parallel.h"
#include "subtab/util/string_util.h"

namespace subtab::service {
namespace {

/// A future that is already resolved (table miss, cache hit, shed).
std::shared_future<SelectResponse> ReadyFuture(SelectResponse response) {
  std::promise<SelectResponse> promise;
  promise.set_value(std::move(response));
  return promise.get_future().share();
}

/// Stage-latency snapshot view over a registry histogram.
StageLatencyStats StageView(const LatencyHistogram* histogram) {
  const LatencyHistogram::Snapshot snap = histogram->TakeSnapshot();
  StageLatencyStats stage;
  stage.count = snap.count;
  stage.mean_ms = snap.MeanSeconds() * 1e3;
  stage.p50_ms = snap.Percentile(0.50) * 1e3;
  stage.p95_ms = snap.Percentile(0.95) * 1e3;
  return stage;
}

}  // namespace

ServingEngine::ServingEngine(EngineOptions options)
    : options_(options),
      registry_(ModelRegistryOptions{options.model_capacity,
                                     std::max<size_t>(1, options.cache_shards / 2),
                                     options.persist_dir}),
      selection_cache_(options.selection_cache_capacity, options.cache_shards,
                       options.scope_index_per_model,
                       options.scope_index_rows_per_model),
      sample_quality_([&options] {
        SampleQualityOptions quality;
        quality.check_every = options.sample_quality_check_every;
        return quality;
      }()),
      pool_(options.num_threads) {
  // Register every instrument once, up front — the request path only ever
  // touches the cached pointers (metrics.h: registration is mutexed, the
  // instruments themselves are relaxed atomics). The dotted names are the
  // stable external contract (docs/OBSERVABILITY.md).
  c_submitted_ = metrics_.counter("engine.requests.submitted");
  c_completed_ = metrics_.counter("engine.requests.completed");
  c_failed_ = metrics_.counter("engine.requests.failed");
  c_coalesced_ = metrics_.counter("engine.requests.coalesced");
  c_shed_global_ = metrics_.counter("pipeline.shed.global_queue");
  c_shed_tenant_ = metrics_.counter("pipeline.shed.tenant");
  c_cache_invalidations_ = metrics_.counter("streaming.cache_invalidations");
  c_containment_hits_ = metrics_.counter("containment.hits");
  c_containment_misses_ = metrics_.counter("containment.misses");
  c_restricted_scan_rows_ = metrics_.counter("containment.restricted_scan_rows");
  c_full_scan_rows_ = metrics_.counter("containment.full_scan_rows");
  c_scope_invalidations_ = metrics_.counter("containment.scope_invalidations");
  c_scan_busy_ns_ = metrics_.counter("pipeline.scan_busy_ns");
  c_select_busy_ns_ = metrics_.counter("pipeline.select_busy_ns");
  c_rows_visited_ = metrics_.counter("scan.rows_visited");
  c_rows_matched_ = metrics_.counter("scan.rows_matched");
  c_chunks_scanned_ = metrics_.counter("scan.chunks_scanned");
  c_chunks_pruned_ = metrics_.counter("scan.chunks_pruned");
  c_code_eval_preds_ = metrics_.counter("scan.code_eval_predicates");
  c_sel_sampled_ = metrics_.counter("selection.sampled");
  c_sel_exact_ = metrics_.counter("selection.exact");
  c_sel_sample_rows_ = metrics_.counter("selection.sample_rows");
  c_sel_scope_rows_ = metrics_.counter("selection.scope_rows_sampled");
  c_sel_quality_checks_ = metrics_.counter("selection.sample_quality_checks");
  c_sel_quality_fallbacks_ =
      metrics_.counter("selection.sample_quality_fallbacks");
  g_sel_last_quality_ = metrics_.gauge("selection.last_quality_ratio");
  g_sel_min_quality_ = metrics_.gauge("selection.min_quality_ratio");
  h_latency_ = metrics_.histogram("pipeline.latency");
  h_queue_scan_ = metrics_.histogram("pipeline.stage.queue_scan");
  h_scan_ = metrics_.histogram("pipeline.stage.scan");
  h_queue_select_ = metrics_.histogram("pipeline.stage.queue_select");
  h_select_ = metrics_.histogram("pipeline.stage.select");
  g_queue_depth_ = metrics_.gauge("engine.queue_depth");
  g_workers_active_ = metrics_.gauge("pipeline.workers_active");
  g_worker_utilization_ = metrics_.gauge("pipeline.worker_utilization");
  g_tables_ = metrics_.gauge("engine.tables");
  g_scope_entries_ = metrics_.gauge("containment.scope_entries");
  g_memory_resident_ = metrics_.gauge("memory.resident_bytes");
  g_memory_logical_ = metrics_.gauge("memory.logical_bytes");
  g_memory_saved_ = metrics_.gauge("memory.shared_saved_bytes");
  g_effective_max_queue_depth_ = metrics_.gauge("pipeline.effective_max_queue_depth");
  effective_max_queue_depth_.store(options_.max_queue_depth,
                                   std::memory_order_relaxed);
  g_effective_max_queue_depth_->Set(
      static_cast<double>(options_.max_queue_depth));
  if (options_.tracing) {
    trace_sink_ = std::make_shared<TraceSink>(options_.trace_sink);
  }
}

bool ServingEngine::SetEffectiveMaxQueueDepth(size_t depth) {
  if (!options_.slo_adaptive_admission || options_.max_queue_depth == 0) {
    return false;
  }
  const size_t clamped =
      std::min(std::max<size_t>(1, depth), options_.max_queue_depth);
  effective_max_queue_depth_.store(clamped, std::memory_order_relaxed);
  g_effective_max_queue_depth_->Set(static_cast<double>(clamped));
  return true;
}

ServingEngine::~ServingEngine() {
  // Uninstall publish listeners first (blocking on any in-flight
  // invocation), so no stream publication re-enters a half-destroyed
  // engine; then drain our own workers. Listeners must be cleared without
  // tables_mu_ held — an in-flight listener call acquires it.
  std::vector<std::shared_ptr<stream::StreamSession>> streams;
  {
    std::unique_lock<std::shared_mutex> lock(tables_mu_);
    std::unordered_set<const stream::StreamSession*> seen;
    for (auto& [id, entry] : tables_) {
      if (entry.stream != nullptr && seen.insert(entry.stream.get()).second) {
        streams.push_back(entry.stream);
      }
    }
  }
  for (const auto& stream : streams) stream->SetPublishListener(nullptr);
  Drain();
}

uint64_t ServingEngine::ScopeDigestFor(const ModelKey& key) {
  // Content only: resolved scopes are a pure function of (table rows,
  // filters), so refresh generations — and even configs — share them.
  return HashCombine(HashMix(key.table_fp), key.version);
}

Status ServingEngine::RegisterTable(const std::string& table_id,
                                    const Table& table, SubTabConfig config) {
  const ModelKey key = MakeModelKey(table, config);
  Result<std::shared_ptr<const SubTab>> model =
      registry_.GetOrFitKeyed(key, table, config);
  if (!model.ok()) return model.status();
  uint64_t dead_scope_digest = 0;
  {
    std::unique_lock<std::shared_mutex> lock(tables_mu_);
    dead_scope_digest = ReplaceBindingLocked(
        table_id,
        TableEntry{*model, key, key.Digest(), ScopeDigestFor(key), nullptr});
  }
  SweepDeadScopes(dead_scope_digest);
  return Status::Ok();
}

bool ServingEngine::ScopeDigestLiveLocked(uint64_t scope_digest) const {
  // THE liveness test of the containment tier — every sweep decision
  // (binding swap, stream supersede, insert-recheck) must use this one
  // definition, or the leak-closure reasoning at those sites diverges.
  // Caller holds tables_mu_ (shared or unique).
  for (const auto& [id, entry] : tables_) {
    if (entry.scope_digest == scope_digest) return true;
  }
  return false;
}

uint64_t ServingEngine::ReplaceBindingLocked(const std::string& table_id,
                                             TableEntry entry) {
  // The scope index is swept only by content-digest liveness checks; a
  // binding swap (re-registering an id to different content) must run one
  // too, or the old content's bucket — up to scope_index_rows_per_model
  // row ids — leaks for the engine's lifetime. Returns the replaced
  // binding's scope digest when this swap removed its last reference
  // (0 = nothing to sweep); the caller sweeps after releasing tables_mu_.
  uint64_t old_scope = 0;
  auto it = tables_.find(table_id);
  if (it != tables_.end()) old_scope = it->second.scope_digest;
  tables_[table_id] = std::move(entry);
  if (old_scope == 0 || old_scope == tables_[table_id].scope_digest) return 0;
  return ScopeDigestLiveLocked(old_scope) ? 0 : old_scope;
}

void ServingEngine::SweepDeadScopes(uint64_t scope_digest) {
  if (scope_digest == 0) return;
  c_scope_invalidations_->Add(selection_cache_.InvalidateScopes(scope_digest));
}

Status ServingEngine::RegisterStream(
    const std::string& table_id,
    std::shared_ptr<stream::StreamSession> stream) {
  if (stream == nullptr) {
    return Status::InvalidArgument("stream must not be null");
  }
  // Install the publish listener BEFORE binding (and without tables_mu_
  // held: the listener itself acquires it, and the session serializes
  // installation against in-flight invocations). A publication racing in
  // between touches no entries yet; the bind below snapshots the newest
  // publication under tables_mu_, so nothing is missed.
  stream->SetPublishListener(
      [this, weak = std::weak_ptr<stream::StreamSession>(stream)](
          const stream::PublishedModel& published) {
        if (std::shared_ptr<stream::StreamSession> s = weak.lock()) {
          OnStreamPublish(s, published);
        }
      });
  // Refresh traces (fold-in vs retrain spans) land in the engine's sink
  // next to the request traces they collide with.
  if (trace_sink_ != nullptr) stream->SetTraceSink(trace_sink_);
  // Snapshot and bind under tables_mu_: snapshotting outside it would let a
  // concurrent publication sweep run in between and leave this id bound to
  // the swept (stale) publication forever. Inside the lock, any sweep
  // either happened before (the snapshot already sees its publication) or
  // happens after our insert (the sweep upgrades this entry with the rest).
  // The snapshot's publish_mu_ nests inside tables_mu_ only here, and no
  // path acquires them in the opposite order.
  uint64_t dead_scope_digest = 0;
  {
    std::unique_lock<std::shared_mutex> lock(tables_mu_);
    stream::PublishedModel published = stream->Snapshot();
    registry_.Publish(published.key, published.model);
    const uint64_t scope_digest = ScopeDigestFor(published.key);
    dead_scope_digest = ReplaceBindingLocked(
        table_id,
        TableEntry{std::move(published.model), published.key,
                   published.key.Digest(), scope_digest, std::move(stream)});
  }
  SweepDeadScopes(dead_scope_digest);
  return Status::Ok();
}

Result<stream::RefreshEvent> ServingEngine::Append(const std::string& table_id,
                                                   const Table& batch) {
  std::shared_ptr<stream::StreamSession> stream;
  {
    std::shared_lock<std::shared_mutex> lock(tables_mu_);
    auto it = tables_.find(table_id);
    if (it == tables_.end() || it->second.stream == nullptr) {
      return Status::NotFound("no stream registered as: " + table_id);
    }
    stream = it->second.stream;
  }

  // The session serializes appends and model maintenance internally and
  // invokes the publish listener (OnStreamPublish) synchronously for the
  // new version's model — and later for any background upgrade — so every
  // bound id is republished before Append returns. Concurrent selects keep
  // serving whatever entry they already resolved.
  return stream->Append(batch);
}

void ServingEngine::OnStreamPublish(
    const std::shared_ptr<stream::StreamSession>& stream,
    const stream::PublishedModel& published) {
  // Every id bound to this stream at an older publication republishes;
  // their superseded registry entries and cached selections go. Ids bound
  // to the same stream share one superseded (digest, key) — dedup so each
  // O(entries) cache sweep runs once. The registry Publish happens inside
  // the same critical section that proves this publication is still the
  // newest bound one — a preempted publisher whose version was already
  // superseded must not re-insert its dead model after the sweep.
  std::vector<std::pair<uint64_t, ModelKey>> superseded;
  std::vector<uint64_t> dead_scope_digests;
  {
    std::unique_lock<std::shared_mutex> lock(tables_mu_);
    for (auto& [id, entry] : tables_) {
      // The (version, refresh) guard keeps a slow publisher from rolling an
      // id back below a newer publication.
      if (entry.stream != stream || !published.key.Supersedes(entry.key)) {
        continue;
      }
      superseded.emplace_back(entry.model_digest, entry.key);
      entry.model = published.model;
      entry.key = published.key;
      entry.model_digest = published.key.Digest();
      entry.scope_digest = ScopeDigestFor(published.key);
    }
    if (!superseded.empty()) registry_.Publish(published.key, published.model);
    // A superseded digest can still be live under another entry: a static
    // RegisterTable of the same (table, config) shares the stream's
    // version-0 key by design. Sweeping it would flush that table's warm
    // selections and evict its shared fitted model — keep those.
    std::erase_if(superseded, [this](const auto& dead) {
      for (const auto& [id, entry] : tables_) {
        if (entry.model_digest == dead.first) return true;
      }
      return false;
    });
    // The containment tier sweeps by CONTENT digest, and only when the
    // content is gone: a refresh upgrade republishes the same (table fp,
    // version), whose resolved scopes stay valid — sweeping them would
    // zero drill-down reuse on every background upgrade for no reason.
    for (const auto& [digest, old_key] : superseded) {
      const uint64_t old_scope = ScopeDigestFor(old_key);
      if (old_scope == ScopeDigestFor(published.key)) continue;
      if (!ScopeDigestLiveLocked(old_scope)) {
        dead_scope_digests.push_back(old_scope);
      }
    }
  }
  std::sort(superseded.begin(), superseded.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  superseded.erase(std::unique(superseded.begin(), superseded.end(),
                               [](const auto& a, const auto& b) {
                                 return a.first == b.first;
                               }),
                   superseded.end());
  std::sort(dead_scope_digests.begin(), dead_scope_digests.end());
  dead_scope_digests.erase(
      std::unique(dead_scope_digests.begin(), dead_scope_digests.end()),
      dead_scope_digests.end());
  uint64_t invalidated = 0;
  for (const auto& [digest, old_key] : superseded) {
    invalidated += selection_cache_.InvalidateModel(digest);
    registry_.Erase(old_key);
  }
  uint64_t scopes_invalidated = 0;
  for (const uint64_t scope_digest : dead_scope_digests) {
    scopes_invalidated += selection_cache_.InvalidateScopes(scope_digest);
  }
  c_cache_invalidations_->Add(invalidated);
  c_scope_invalidations_->Add(scopes_invalidated);
}

std::shared_ptr<const SubTab> ServingEngine::GetModel(
    const std::string& table_id) const {
  std::shared_lock<std::shared_mutex> lock(tables_mu_);
  auto it = tables_.find(table_id);
  return it == tables_.end() ? nullptr : it->second.model;
}

SelectionKey ServingEngine::KeyFor(const TableEntry& entry,
                                   const SelectRequest& request) const {
  const SubTabConfig& config = entry.model->config();
  SelectionKey key;
  key.model_digest = entry.model_digest;
  key.query = NormalizedQueryKey(request.query);
  key.k = request.k.value_or(config.k);
  key.l = request.l.value_or(config.l);
  key.seed = request.seed.value_or(config.seed);
  return key;
}

ServingEngine::Admission ServingEngine::TryAdmit(const std::string& tenant) {
  // The EFFECTIVE bound, not the configured one — SLO-adaptive admission
  // may have tightened it (SetEffectiveMaxQueueDepth), and shed messages /
  // /statusz report the same value, so clients and operators see one truth.
  const size_t max_depth =
      effective_max_queue_depth_.load(std::memory_order_relaxed);
  if (max_depth > 0 && pool_.queue_depth() >= max_depth) {
    return Admission::kShedGlobalQueue;
  }
  if (options_.max_pending_per_tenant == 0) return Admission::kAdmitted;
  std::lock_guard<std::mutex> lock(admission_mu_);
  size_t& pending = tenant_pending_[tenant];
  if (pending >= options_.max_pending_per_tenant) {
    return Admission::kShedTenant;
  }
  ++pending;
  return Admission::kAdmitted;
}

void ServingEngine::ReleaseTenant(const std::string& tenant) {
  if (options_.max_pending_per_tenant == 0) return;
  std::lock_guard<std::mutex> lock(admission_mu_);
  auto it = tenant_pending_.find(tenant);
  SUBTAB_CHECK(it != tenant_pending_.end() && it->second > 0);
  if (--it->second == 0) tenant_pending_.erase(it);
}

std::shared_future<SelectResponse> ServingEngine::SubmitSelect(
    const SelectRequest& request) {
  c_submitted_->Add();

  TableEntry entry;
  {
    std::shared_lock<std::shared_mutex> lock(tables_mu_);
    auto it = tables_.find(request.table_id);
    if (it == tables_.end()) {
      c_completed_->Add();
      c_failed_->Add();
      SelectResponse response;
      response.status =
          Status::NotFound("table not registered: " + request.table_id);
      return ReadyFuture(std::move(response));
    }
    entry = it->second;
  }

  Stopwatch submitted;
  // Root span per request, opened the moment the table resolved. The
  // context is a by-value handle (util/trace.h); every early-exit tier
  // below commits a root-only trace carrying its outcome attribute, so the
  // sink sees cache hits and sheds, not just full computations.
  TraceContext trace;
  if (options_.tracing) {
    trace = TraceContext::Start("select", trace_sink_);
    trace.AddRootAttr("table", request.table_id);
    trace.AddRootAttr("query", request.query.ToString());
  }

  const SelectionKey key = KeyFor(entry, request);
  if (std::shared_ptr<const CachedSelection> cached = selection_cache_.Get(key)) {
    c_completed_->Add();
    if (!cached->status.ok()) c_failed_->Add();
    h_latency_->Record(submitted.ElapsedSeconds());
    SelectResponse response;
    response.status = cached->status;
    response.view = cached->view;
    response.from_cache = true;
    response.trace_id = trace.trace_id();
    if (trace.enabled()) {
      trace.AddRootAttr("cache", "exact");
      trace.AddRootAttr("status", cached->status.ok() ? "ok" : "error");
      std::shared_ptr<const CompletedTrace> done = trace.FinishRoot();
      if (request.trace_explain) response.trace = std::move(done);
    }
    return ReadyFuture(std::move(response));
  }

  // Dedup by key digest: an identical request already being computed gets
  // the same future — attaching is free, so it happens before admission.
  // (A 64-bit digest collision would share the wrong result; with in-flight
  // populations of at most thousands the probability is ~n^2/2^64 —
  // ignored, as with the fingerprint-keyed registry.)
  const uint64_t digest = SelectionKeyHasher{}(key);
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(digest);
    if (it != inflight_.end()) {
      c_coalesced_->Add();
      ++it->second.coalesced_waiters;
      if (trace.enabled()) {
        trace.AddRootAttr("cache", "coalesced");
        trace.AddRootAttr("coalesced_into",
                          StrFormat("%016llx",
                                    (unsigned long long)it->second.trace_id));
        trace.FinishRoot();
      }
      return it->second.future;
    }
  }

  // A genuinely new computation: it must pass admission before it may
  // occupy queue slots.
  const Admission admission = TryAdmit(request.table_id);
  if (admission != Admission::kAdmitted) {
    (admission == Admission::kShedGlobalQueue ? c_shed_global_
                                              : c_shed_tenant_)
        ->Add();
    c_completed_->Add();
    c_failed_->Add();
    SelectResponse response;
    response.trace_id = trace.trace_id();
    // Name the bound that tripped: an operator tuning sheds must know
    // whether to raise max_queue_depth or max_pending_per_tenant. The
    // message also carries the shed stage and the trace id, so one grep
    // connects a client's kUnavailable to its retained trace.
    std::string message =
        admission == Admission::kShedGlobalQueue
            ? StrFormat("request shed: global queue depth is over its "
                        "effective bound (%llu)",
                        (unsigned long long)effective_max_queue_depth())
            : "request shed: tenant '" + request.table_id +
                  "' is over its bound (" +
                  StrFormat("%llu",
                            (unsigned long long)options_.max_pending_per_tenant) +
                  ")";
    message += " [stage=admission";
    if (trace.enabled()) {
      message += StrFormat(", trace=%016llx",
                           (unsigned long long)trace.trace_id());
    }
    message += "]";
    response.status = Status::Unavailable(message);
    if (trace.enabled()) {
      trace.AddRootAttr("admission", admission == Admission::kShedGlobalQueue
                                         ? "shed_global_queue"
                                         : "shed_tenant");
      trace.AddRootAttr("shed_stage", "admission");
      trace.AddRootAttr("status", "unavailable");
      std::shared_ptr<const CompletedTrace> done = trace.FinishRoot();
      if (request.trace_explain) response.trace = std::move(done);
    }
    return ReadyFuture(std::move(response));
  }

  std::shared_future<SelectResponse> future;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(digest);
    if (it != inflight_.end()) {
      // An identical computation slipped in while we took the admission
      // token; attach to it and hand the token back.
      c_coalesced_->Add();
      ++it->second.coalesced_waiters;
      future = it->second.future;
      if (options_.max_pending_per_tenant > 0) ReleaseTenant(request.table_id);
      if (trace.enabled()) {
        trace.AddRootAttr("cache", "coalesced");
        trace.AddRootAttr("coalesced_into",
                          StrFormat("%016llx",
                                    (unsigned long long)it->second.trace_id));
        trace.FinishRoot();
      }
      return future;
    }
    auto promise = std::make_shared<std::promise<SelectResponse>>();
    future = promise->get_future().share();
    inflight_[digest] = InFlight{std::move(promise), future, 0,
                                 trace.trace_id()};
  }

  auto pending = std::make_shared<PendingSelect>();
  pending->key = key;
  pending->key_digest = digest;
  pending->scope_digest = entry.scope_digest;
  pending->model = entry.model;
  pending->request = request;
  pending->submitted = submitted;
  pending->tenant_admitted = options_.max_pending_per_tenant > 0;
  if (trace.enabled()) {
    trace.AddRootAttr("admission", "admitted");
    trace.AddRootAttr("cache", "miss");
    pending->trace = trace;
    pending->queue_span = trace.StartSpan("queue.scan");
  }
  pending->hop.Reset();
  if (options_.staged_pipeline) {
    pool_.Submit([this, pending] { ExecuteScan(pending); });
  } else {
    pool_.Submit([this, pending] { ExecuteBlocking(pending); });
  }
  return future;
}

void ServingEngine::ExecuteScan(const std::shared_ptr<PendingSelect>& pending) {
  // Queue wait ends here; the hop stopwatch feeds the stage histogram even
  // with tracing off, the queue span only when the request carries a trace.
  h_queue_scan_->Record(pending->hop.ElapsedSeconds());
  LogTraceScope log_scope(pending->trace.trace_id());
  pending->trace.FinishSpan(std::move(pending->queue_span));
  TraceSpan span = pending->trace.StartSpan("scan");
  Stopwatch stage;
  QueryExecOptions exec;
  exec.num_threads = options_.scan_threads;
  exec.zone_map_pruning = options_.zone_map_pruning;
  // Containment probe: a drill-down refinement of an already-resolved query
  // has a cached ancestor scope; restricting it visits O(parent scope) rows
  // instead of O(table). The hint never changes the resolved scope — see
  // RestrictQueryScope's bit-identity contract — only the scan's cost.
  ScopeHint hint;
  const char* containment_attr = "disabled";
  size_t ancestor_rows_attr = 0;
  size_t extra_conjuncts_attr = 0;
  if (options_.containment_reuse) {
    containment_attr = "miss";
    std::optional<AncestorScope> ancestor = selection_cache_.FindAncestorScope(
        pending->scope_digest, pending->request.query);
    if (ancestor.has_value()) {
      std::vector<Predicate> extra =
          ExtraConjuncts(ancestor->query, pending->request.query);
      // Benefit gate: the restricted scan point-evaluates rows (a per-row
      // chunk lookup, only the extra conjuncts), the full scan runs
      // chunk-sequential and may fan out per chunk. An empty-extra
      // restriction (same conjunction, e.g. a new seed) skips evaluation
      // entirely and always wins; otherwise require the ancestor to (a)
      // undercut the full scan's per-thread share and (b) actually shrink
      // the row count by a margin (>= 1/8), so a near-table ancestor's
      // point-lookup overhead can never make reuse slower than the scan it
      // replaces. Tables under min_parallel_rows scan serially regardless
      // (see EvalFilterMask).
      size_t scan_ways = 1;
      const size_t table_rows = pending->model->table().num_rows();
      if (options_.scan_threads != 1 &&
          table_rows >= QueryExecOptions{}.min_parallel_rows) {
        scan_ways = options_.scan_threads == 0 ? HardwareThreads()
                                               : options_.scan_threads;
      }
      const size_t ancestor_rows = ancestor->rows->size();
      if (extra.empty() ||
          (ancestor_rows * scan_ways <= table_rows &&
           ancestor_rows <= table_rows - table_rows / 8)) {
        c_containment_hits_->Add();
        c_restricted_scan_rows_->Add(ancestor->rows->size());
        containment_attr = "hit";
        ancestor_rows_attr = ancestor_rows;
        extra_conjuncts_attr = extra.size();
        hint.parent_rows = std::move(ancestor->rows);
        hint.extra_conjuncts = std::move(extra);
      } else {
        c_containment_misses_->Add();
      }
    } else {
      c_containment_misses_->Add();
    }
  }
  const bool restricted = hint.parent_rows != nullptr;
  const size_t table_rows = pending->model->table().num_rows();
  if (!restricted) c_full_scan_rows_->Add(table_rows);
  ScanStats scan_stats;
  Result<SelectionScope> scope = pending->model->ResolveScope(
      pending->request.query, exec, restricted ? &hint : nullptr, &scan_stats);
  c_scan_busy_ns_->Add(static_cast<uint64_t>(stage.ElapsedSeconds() * 1e9));
  h_scan_->Record(stage.ElapsedSeconds());
  c_rows_visited_->Add(scan_stats.rows_visited);
  c_rows_matched_->Add(scan_stats.rows_matched);
  c_chunks_scanned_->Add(scan_stats.chunks_scanned);
  c_chunks_pruned_->Add(scan_stats.chunks_pruned);
  c_code_eval_preds_->Add(scan_stats.code_eval_predicates);
  if (span.enabled()) {
    // Cost attribution: "rows scanned vs restricted" is what makes a
    // drill-down trace self-explanatory — a hit's rows_visited equals the
    // ancestor scope, a miss's equals the table.
    span.AddAttr("containment", containment_attr);
    if (containment_attr[0] == 'h') {
      span.AddAttr("ancestor_rows", (uint64_t)ancestor_rows_attr);
      span.AddAttr("extra_conjuncts", (uint64_t)extra_conjuncts_attr);
    }
    span.AddAttr("restricted", scan_stats.restricted ? "true" : "false");
    span.AddAttr("table_rows", (uint64_t)table_rows);
    span.AddAttr("rows_visited", (uint64_t)scan_stats.rows_visited);
    span.AddAttr("rows_matched", (uint64_t)scan_stats.rows_matched);
    span.AddAttr("chunks_scanned", (uint64_t)scan_stats.chunks_scanned);
    span.AddAttr("chunks_pruned", (uint64_t)scan_stats.chunks_pruned);
    span.AddAttr("code_eval_predicates",
                 (uint64_t)scan_stats.code_eval_predicates);
    span.AddAttr("status", scope.ok() ? "ok" : "error");
  }
  pending->trace.FinishSpan(std::move(span));
  if (!scope.ok()) {
    // Deterministic scan errors (unknown column, empty result) are as
    // memoizable as views; no select stage to run.
    CachedSelection outcome;
    outcome.status = scope.status();
    FinishComputation(pending, outcome);
    return;
  }
  pending->scope = std::move(*scope);
  if (options_.containment_reuse) {
    // Offer the resolved scope to the containment index, then re-check the
    // binding: a content-superseding republish between the insert and this
    // check (or before the insert) has already run its InvalidateScopes
    // sweep, so an insert that lost the race would park a scope no future
    // sweep targets — unlike the capacity-bounded exact tier, a dead
    // ScopeIndex bucket would leak for the engine's lifetime.
    // Insert-then-recheck closes it: either the sweep ran after our insert
    // (it took the scope with it), or we observe the dead content digest
    // here and sweep again (idempotent). The liveness test matches
    // OnStreamPublish's: the content may still be served by ANOTHER entry
    // (a static registration sharing a stream's version-0 content, or a
    // refresh upgrade of the same version), whose scopes must survive.
    const bool within_budget =
        options_.scope_index_rows_per_model == 0 ||
        pending->scope.rows.size() <= options_.scope_index_rows_per_model;
    if (ScopeIndex::Indexable(pending->request.query) && within_budget) {
      // The budget pre-check keeps an oversized scope (which Insert would
      // reject anyway) from being deep-copied just to be discarded.
      selection_cache_.InsertScope(
          pending->scope_digest, pending->request.query,
          std::make_shared<const std::vector<size_t>>(pending->scope.rows));
      bool content_live = false;
      {
        std::shared_lock<std::shared_mutex> lock(tables_mu_);
        content_live = ScopeDigestLiveLocked(pending->scope_digest);
      }
      if (!content_live) {
        c_scope_invalidations_->Add(
            selection_cache_.InvalidateScopes(pending->scope_digest));
      }
    }
  }
  // Separate queue hop: this worker is free for another request's scan (or
  // select) while the clustering below waits its turn.
  pending->queue_span = pending->trace.StartSpan("queue.select");
  pending->hop.Reset();
  pool_.Submit([this, pending] { ExecuteSelect(pending); });
}

void ServingEngine::ExecuteSelect(const std::shared_ptr<PendingSelect>& pending) {
  h_queue_select_->Record(pending->hop.ElapsedSeconds());
  LogTraceScope log_scope(pending->trace.trace_id());
  pending->trace.FinishSpan(std::move(pending->queue_span));
  TraceSpan span = pending->trace.StartSpan("select");
  Stopwatch stage;
  // k/l/seed were resolved against the model's config at submit time
  // (KeyFor), so passing them explicitly equals the serial path's
  // value_or chain bit for bit.
  SelectionSamplingOptions sampling;
  sampling.min_rows = options_.sampled_selection_min_rows;
  sampling.sample_rows = options_.selection_sample_rows;
  SubTabView view = pending->model->SelectScoped(
      pending->scope, pending->key.k, pending->key.l, pending->key.seed,
      sampling);
  c_select_busy_ns_->Add(static_cast<uint64_t>(stage.ElapsedSeconds() * 1e9));
  h_select_->Record(stage.ElapsedSeconds());

  // Quality gate: on the deterministic schedule, re-run exactly and score
  // both results; below the floor the exact result is served instead. The
  // check (and the fallback result it may substitute) is itself a pure
  // function of the per-model request sequence, so within one engine the
  // memoized outcome stays consistent across duplicates and cache hits.
  double quality_ratio = -1.0;
  bool quality_fallback = false;
  if (view.sampled) {
    c_sel_sampled_->Add(1);
    c_sel_sample_rows_->Add(view.sample_rows);
    c_sel_scope_rows_->Add(pending->scope.rows.size());
    if (sample_quality_.ShouldCheck(pending->key.model_digest)) {
      SubTabView exact = pending->model->SelectScoped(
          pending->scope, pending->key.k, pending->key.l, pending->key.seed);
      quality_ratio = sample_quality_.QualityRatio(
          pending->key.model_digest, pending->model->preprocessed().binned(),
          pending->model, view.row_ids, view.col_ids, exact.row_ids,
          exact.col_ids);
      c_sel_quality_checks_->Add(1);
      {
        std::lock_guard<std::mutex> lock(quality_mu_);
        last_quality_ratio_ = quality_ratio;
        min_quality_ratio_ = min_quality_ratio_ == 0.0
                                 ? quality_ratio
                                 : std::min(min_quality_ratio_, quality_ratio);
        g_sel_last_quality_->Set(last_quality_ratio_);
        g_sel_min_quality_->Set(min_quality_ratio_);
      }
      if (quality_ratio < options_.sampled_selection_min_quality) {
        c_sel_quality_fallbacks_->Add(1);
        quality_fallback = true;
        view = std::move(exact);
      }
    }
  } else {
    c_sel_exact_->Add(1);
  }

  if (span.enabled()) {
    span.AddAttr("k", (uint64_t)pending->key.k);
    span.AddAttr("l", (uint64_t)pending->key.l);
    span.AddAttr("scope_rows", (uint64_t)pending->scope.rows.size());
    span.AddAttr("scope_cols", (uint64_t)pending->scope.cols.size());
    span.AddAttr("sampled", (uint64_t)(view.sampled ? 1 : 0));
    span.AddAttr("sample_rows", (uint64_t)view.sample_rows);
    if (quality_ratio >= 0.0) {
      span.AddAttr("quality_ratio", quality_ratio);
      span.AddAttr("quality_fallback", (uint64_t)(quality_fallback ? 1 : 0));
    }
  }
  pending->trace.FinishSpan(std::move(span));
  CachedSelection outcome;
  outcome.view = std::make_shared<const SubTabView>(std::move(view));
  FinishComputation(pending, outcome);
}

void ServingEngine::ExecuteBlocking(
    const std::shared_ptr<PendingSelect>& pending) {
  h_queue_scan_->Record(pending->hop.ElapsedSeconds());
  LogTraceScope log_scope(pending->trace.trace_id());
  pending->trace.FinishSpan(std::move(pending->queue_span));
  TraceSpan span = pending->trace.StartSpan("execute");
  const SelectRequest& request = pending->request;
  Result<SubTabView> view = pending->model->SelectForQuery(
      request.query, request.k, request.l, request.seed);
  if (span.enabled()) {
    span.AddAttr("status", view.ok() ? "ok" : "error");
  }
  pending->trace.FinishSpan(std::move(span));
  CachedSelection outcome;
  if (view.ok()) {
    outcome.view = std::make_shared<const SubTabView>(std::move(*view));
  } else {
    outcome.status = view.status();
  }
  FinishComputation(pending, outcome);
}

void ServingEngine::FinishComputation(
    const std::shared_ptr<PendingSelect>& pending,
    const CachedSelection& outcome) {
  // Both outcomes are deterministic functions of the key, so errors are
  // memoized too — a repeated empty-result query must not rescan the table.
  // Guard: cache only while the table still serves this model version — a
  // result computed across a stream republish would otherwise re-insert
  // under a digest InvalidateModel already swept, parking an unreachable
  // entry until LRU eviction. (Best-effort: a republish between this check
  // and the Put still leaks one entry; it cannot serve wrong results, the
  // digest no longer matches any table.)
  bool version_current = false;
  {
    std::shared_lock<std::shared_mutex> lock(tables_mu_);
    auto it = tables_.find(pending->request.table_id);
    version_current = it != tables_.end() &&
                      it->second.model_digest == pending->key.model_digest;
  }
  if (version_current) {
    selection_cache_.Put(pending->key,
                         std::make_shared<const CachedSelection>(outcome));
  }
  SelectResponse response;
  response.status = outcome.status;
  response.view = outcome.view;
  response.trace_id = pending->trace.trace_id();
  if (pending->trace.enabled()) {
    pending->trace.AddRootAttr("status",
                               outcome.status.ok() ? "ok" : "error");
    std::shared_ptr<const CompletedTrace> done = pending->trace.FinishRoot();
    if (pending->request.trace_explain) response.trace = std::move(done);
  }

  std::shared_ptr<std::promise<SelectResponse>> promise;
  uint64_t resolved = 1;
  {
    // Erase before resolving: a submitter that misses the in-flight map from
    // here on finds the result in the selection cache instead.
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(pending->key_digest);
    SUBTAB_CHECK(it != inflight_.end());
    promise = std::move(it->second.promise);
    resolved += it->second.coalesced_waiters;
    inflight_.erase(it);
  }
  if (pending->tenant_admitted) ReleaseTenant(pending->request.table_id);
  h_latency_->Record(pending->submitted.ElapsedSeconds());
  // The computation and every coalesced waiter complete together — and fail
  // together — keeping submitted/completed/failed consistent per response.
  c_completed_->Add(resolved);
  if (!response.status.ok()) c_failed_->Add(resolved);
  promise->set_value(std::move(response));
}

SelectResponse ServingEngine::Select(const SelectRequest& request) {
  return SubmitSelect(request).get();
}

void ServingEngine::Drain() { pool_.Wait(); }

void ServingEngine::SubmitBarrierTaskForTesting(std::function<void()> task) {
  pool_.Submit(std::move(task));
}

EngineStats ServingEngine::Stats() const {
  EngineStats stats;
  stats.registry = registry_.Stats();
  stats.selection_cache = selection_cache_.Stats();
  stats.requests_submitted = c_submitted_->Value();
  stats.requests_completed = c_completed_->Value();
  stats.requests_failed = c_failed_->Value();
  stats.requests_coalesced = c_coalesced_->Value();
  stats.num_threads = pool_.num_threads();
  stats.queue_depth = pool_.queue_depth();

  stats.containment.containment_hits = c_containment_hits_->Value();
  stats.containment.containment_misses = c_containment_misses_->Value();
  stats.containment.restricted_scan_rows = c_restricted_scan_rows_->Value();
  stats.containment.full_scan_rows = c_full_scan_rows_->Value();
  stats.containment.scope_entries = selection_cache_.scope_entries();
  stats.containment.scope_invalidations = c_scope_invalidations_->Value();

  stats.scan.rows_visited = c_rows_visited_->Value();
  stats.scan.rows_matched = c_rows_matched_->Value();
  stats.scan.chunks_scanned = c_chunks_scanned_->Value();
  stats.scan.chunks_pruned = c_chunks_pruned_->Value();
  stats.scan.code_eval_predicates = c_code_eval_preds_->Value();

  stats.pipeline.shed_global_queue = c_shed_global_->Value();
  stats.pipeline.shed_tenant = c_shed_tenant_->Value();
  stats.pipeline.requests_shed =
      stats.pipeline.shed_global_queue + stats.pipeline.shed_tenant;
  stats.pipeline.scan_seconds =
      static_cast<double>(c_scan_busy_ns_->Value()) * 1e-9;
  stats.pipeline.select_seconds =
      static_cast<double>(c_select_busy_ns_->Value()) * 1e-9;
  stats.pipeline.stage_queue_scan = StageView(h_queue_scan_);
  stats.pipeline.stage_scan = StageView(h_scan_);
  stats.pipeline.stage_queue_select = StageView(h_queue_select_);
  stats.pipeline.stage_select = StageView(h_select_);
  const LatencyHistogram::Snapshot latency = h_latency_->TakeSnapshot();
  stats.pipeline.latency_p50_ms = latency.Percentile(0.50) * 1e3;
  stats.pipeline.latency_p95_ms = latency.Percentile(0.95) * 1e3;
  stats.pipeline.latency_p99_ms = latency.Percentile(0.99) * 1e3;
  stats.pipeline.latency_mean_ms = latency.MeanSeconds() * 1e3;
  stats.pipeline.latency_count = latency.count;
  stats.pipeline.workers_active = pool_.active_count();
  stats.pipeline.worker_utilization =
      stats.num_threads == 0
          ? 0.0
          : static_cast<double>(stats.pipeline.workers_active) /
                static_cast<double>(stats.num_threads);
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    stats.pipeline.tenants_tracked = tenant_pending_.size();
  }
  stats.pipeline.max_queue_depth_effective = effective_max_queue_depth();
  stats.pipeline.max_queue_depth_configured = options_.max_queue_depth;
  stats.pipeline.max_pending_per_tenant = options_.max_pending_per_tenant;

  stats.selection.sampled = c_sel_sampled_->Value();
  stats.selection.exact = c_sel_exact_->Value();
  stats.selection.sample_rows_total = c_sel_sample_rows_->Value();
  stats.selection.scope_rows_sampled = c_sel_scope_rows_->Value();
  stats.selection.quality_checks = c_sel_quality_checks_->Value();
  stats.selection.quality_fallbacks = c_sel_quality_fallbacks_->Value();
  {
    std::lock_guard<std::mutex> lock(quality_mu_);
    stats.selection.last_quality_ratio = last_quality_ratio_;
    stats.selection.min_quality_ratio = min_quality_ratio_;
  }

  std::vector<std::shared_ptr<stream::StreamSession>> streams;
  std::vector<std::shared_ptr<const Table>> bound_tables;
  {
    std::shared_lock<std::shared_mutex> lock(tables_mu_);
    stats.tables = tables_.size();
    std::unordered_set<const stream::StreamSession*> seen;
    for (const auto& [id, entry] : tables_) {
      if (entry.model != nullptr) {
        bound_tables.push_back(entry.model->shared_table());
      }
      // One stream may be bound under several ids; count it once.
      if (entry.stream != nullptr && seen.insert(entry.stream.get()).second) {
        streams.push_back(entry.stream);
      }
    }
  }
  // Streams' current snapshots are read outside tables_mu_ (their internal
  // locks must not nest inside it).
  for (const auto& stream : streams) {
    bound_tables.push_back(stream->current_version().table);
  }
  // Memory accounting: logical counts every binding's table independently;
  // resident deduplicates shared Table objects, then shared chunks across
  // distinct tables (successive stream versions share all but the newest
  // chunk).
  std::unordered_set<const Table*> seen_tables;
  std::unordered_set<const Chunk*> seen_chunks;
  std::unordered_set<const void*> seen_dicts;
  for (const auto& table : bound_tables) {
    if (table == nullptr) continue;
    stats.memory.logical_bytes += table->ApproxBytes();
    if (!seen_tables.insert(table.get()).second) continue;
    for (size_t c = 0; c < table->num_columns(); ++c) {
      const Column& col = table->column(c);
      for (const auto& chunk : col.chunks()) {
        if (seen_chunks.insert(chunk.get()).second) {
          stats.memory.resident_bytes += chunk->ByteSize();
        }
      }
      // Dictionaries are shared copy-on-write across versions; count each
      // distinct dictionary object once, like chunks.
      if (col.dict_identity() != nullptr &&
          seen_dicts.insert(col.dict_identity()).second) {
        stats.memory.resident_bytes += col.DictBytes();
      }
    }
  }
  stats.memory.tables = seen_tables.size();
  stats.memory.chunks = seen_chunks.size();
  stats.memory.shared_saved_bytes =
      stats.memory.logical_bytes - stats.memory.resident_bytes;
  stats.streaming.streams = streams.size();
  stats.streaming.cache_invalidations = c_cache_invalidations_->Value();
  for (const auto& stream : streams) {
    const stream::StreamStats s = stream->Stats();
    stats.streaming.appends += s.appends;
    stats.streaming.rows_appended += s.rows_appended;
    stats.streaming.fold_ins += s.fold_ins;
    stats.streaming.incremental_refreshes += s.incremental_refreshes;
    stats.streaming.full_refits += s.full_refits;
    stats.streaming.fold_in_seconds += s.fold_in_seconds;
    stats.streaming.incremental_seconds += s.incremental_seconds;
    stats.streaming.refit_seconds += s.refit_seconds;
    stats.streaming.deferred_upgrades += s.deferred_upgrades;
    stats.streaming.upgrades_completed += s.upgrades_completed;
    stats.streaming.upgrades_discarded += s.upgrades_discarded;
  }
  if (trace_sink_ != nullptr) stats.trace = trace_sink_->Stats();
  // Point-in-time gauges are refreshed on read, so a registry Snapshot (or
  // MetricsJson) taken right after Stats() carries current values — the hot
  // path never touches them.
  g_queue_depth_->Set(static_cast<double>(stats.queue_depth));
  g_workers_active_->Set(static_cast<double>(stats.pipeline.workers_active));
  g_worker_utilization_->Set(stats.pipeline.worker_utilization);
  g_tables_->Set(static_cast<double>(stats.tables));
  g_scope_entries_->Set(static_cast<double>(stats.containment.scope_entries));
  g_memory_resident_->Set(static_cast<double>(stats.memory.resident_bytes));
  g_memory_logical_->Set(static_cast<double>(stats.memory.logical_bytes));
  g_memory_saved_->Set(static_cast<double>(stats.memory.shared_saved_bytes));
  return stats;
}

std::string ServingEngine::MetricsJson() const {
  Stats();  // refresh gauges
  return metrics_.ToJson();
}

std::string EngineStats::ToJson() const {
  std::string json = "{";
  json += StrFormat("\"tables\":%zu,\"threads\":%zu,\"queue_depth\":%zu,",
                    tables, num_threads, queue_depth);
  json += StrFormat(
      "\"requests\":{\"submitted\":%llu,\"completed\":%llu,\"failed\":%llu,"
      "\"coalesced\":%llu,\"shed\":%llu},",
      (unsigned long long)requests_submitted,
      (unsigned long long)requests_completed,
      (unsigned long long)requests_failed,
      (unsigned long long)requests_coalesced,
      (unsigned long long)pipeline.requests_shed);
  json += StrFormat(
      "\"pipeline\":{\"queue_depth\":%zu,\"workers_active\":%zu,"
      "\"worker_utilization\":%.6g,\"tenants_tracked\":%zu,"
      "\"shed_global_queue\":%llu,\"shed_tenant\":%llu,"
      "\"scan_seconds\":%.6g,\"select_seconds\":%.6g,"
      "\"latency_ms\":{\"count\":%llu,\"mean\":%.6g,\"p50\":%.6g,"
      "\"p95\":%.6g,\"p99\":%.6g},",
      queue_depth, pipeline.workers_active, pipeline.worker_utilization,
      pipeline.tenants_tracked,
      (unsigned long long)pipeline.shed_global_queue,
      (unsigned long long)pipeline.shed_tenant,
      pipeline.scan_seconds, pipeline.select_seconds,
      (unsigned long long)pipeline.latency_count, pipeline.latency_mean_ms,
      pipeline.latency_p50_ms, pipeline.latency_p95_ms,
      pipeline.latency_p99_ms);
  const auto stage_json = [](const char* name, const StageLatencyStats& s) {
    return StrFormat(
        "\"%s\":{\"count\":%llu,\"mean_ms\":%.6g,\"p50_ms\":%.6g,"
        "\"p95_ms\":%.6g}",
        name, (unsigned long long)s.count, s.mean_ms, s.p50_ms, s.p95_ms);
  };
  json += "\"stages\":{";
  json += stage_json("queue_scan", pipeline.stage_queue_scan) + ",";
  json += stage_json("scan", pipeline.stage_scan) + ",";
  json += stage_json("queue_select", pipeline.stage_queue_select) + ",";
  json += stage_json("select", pipeline.stage_select);
  json += "},";
  json += StrFormat(
      "\"admission\":{\"max_queue_depth_effective\":%zu,"
      "\"max_queue_depth_configured\":%zu,\"max_pending_per_tenant\":%zu}",
      pipeline.max_queue_depth_effective, pipeline.max_queue_depth_configured,
      pipeline.max_pending_per_tenant);
  json += "},";
  json += StrFormat(
      "\"trace\":{\"committed\":%llu,\"ring_evicted\":%llu,"
      "\"exemplars_pinned\":%llu,\"exemplars_evicted\":%llu,"
      "\"threshold_ms\":%.6g},",
      (unsigned long long)trace.committed,
      (unsigned long long)trace.ring_evicted,
      (unsigned long long)trace.exemplars_pinned,
      (unsigned long long)trace.exemplars_evicted,
      trace.exemplar_threshold_seconds * 1e3);
  json += StrFormat(
      "\"selection\":{\"sampled\":%llu,\"exact\":%llu,"
      "\"sample_rows_total\":%llu,\"scope_rows_sampled\":%llu,"
      "\"quality_checks\":%llu,\"quality_fallbacks\":%llu,"
      "\"last_quality_ratio\":%.6g,\"min_quality_ratio\":%.6g},",
      (unsigned long long)selection.sampled,
      (unsigned long long)selection.exact,
      (unsigned long long)selection.sample_rows_total,
      (unsigned long long)selection.scope_rows_sampled,
      (unsigned long long)selection.quality_checks,
      (unsigned long long)selection.quality_fallbacks,
      selection.last_quality_ratio, selection.min_quality_ratio);
  json += StrFormat(
      "\"selection_cache\":{\"hits\":%llu,\"misses\":%llu,\"insertions\":%llu,"
      "\"evictions\":%llu,\"entries\":%zu},",
      (unsigned long long)selection_cache.hits,
      (unsigned long long)selection_cache.misses,
      (unsigned long long)selection_cache.insertions,
      (unsigned long long)selection_cache.evictions, selection_cache.entries);
  json += StrFormat(
      "\"containment\":{\"hits\":%llu,\"misses\":%llu,"
      "\"restricted_scan_rows\":%llu,\"full_scan_rows\":%llu,"
      "\"scope_entries\":%zu,\"scope_invalidations\":%llu},",
      (unsigned long long)containment.containment_hits,
      (unsigned long long)containment.containment_misses,
      (unsigned long long)containment.restricted_scan_rows,
      (unsigned long long)containment.full_scan_rows,
      containment.scope_entries,
      (unsigned long long)containment.scope_invalidations);
  json += StrFormat(
      "\"scan\":{\"rows_visited\":%llu,\"rows_matched\":%llu,"
      "\"chunks_scanned\":%llu,\"chunks_pruned\":%llu,"
      "\"code_eval_predicates\":%llu},",
      (unsigned long long)scan.rows_visited,
      (unsigned long long)scan.rows_matched,
      (unsigned long long)scan.chunks_scanned,
      (unsigned long long)scan.chunks_pruned,
      (unsigned long long)scan.code_eval_predicates);
  json += StrFormat(
      "\"registry\":{\"hits\":%llu,\"misses\":%llu,\"evictions\":%llu,"
      "\"entries\":%zu,\"loads\":%llu,\"fits\":%llu,\"coalesced\":%llu},",
      (unsigned long long)registry.cache.hits,
      (unsigned long long)registry.cache.misses,
      (unsigned long long)registry.cache.evictions, registry.cache.entries,
      (unsigned long long)registry.loads, (unsigned long long)registry.fits,
      (unsigned long long)registry.coalesced);
  json += StrFormat(
      "\"memory\":{\"tables\":%zu,\"chunks\":%zu,\"logical_bytes\":%llu,"
      "\"resident_bytes\":%llu,\"shared_saved_bytes\":%llu},",
      memory.tables, memory.chunks, (unsigned long long)memory.logical_bytes,
      (unsigned long long)memory.resident_bytes,
      (unsigned long long)memory.shared_saved_bytes);
  json += StrFormat(
      "\"streaming\":{\"streams\":%zu,\"appends\":%llu,\"rows_appended\":%llu,"
      "\"fold_ins\":%llu,\"incremental_refreshes\":%llu,\"full_refits\":%llu,"
      "\"fold_in_seconds\":%.6g,\"incremental_seconds\":%.6g,"
      "\"refit_seconds\":%.6g,\"deferred_upgrades\":%llu,"
      "\"upgrades_completed\":%llu,\"upgrades_discarded\":%llu,"
      "\"cache_invalidations\":%llu}}",
      streaming.streams, (unsigned long long)streaming.appends,
      (unsigned long long)streaming.rows_appended,
      (unsigned long long)streaming.fold_ins,
      (unsigned long long)streaming.incremental_refreshes,
      (unsigned long long)streaming.full_refits, streaming.fold_in_seconds,
      streaming.incremental_seconds, streaming.refit_seconds,
      (unsigned long long)streaming.deferred_upgrades,
      (unsigned long long)streaming.upgrades_completed,
      (unsigned long long)streaming.upgrades_discarded,
      (unsigned long long)streaming.cache_invalidations);
  return json;
}

}  // namespace subtab::service
