#include "subtab/service/engine.h"

#include <algorithm>

namespace subtab::service {
namespace {

/// A future that is already resolved (table miss, cache hit).
std::shared_future<SelectResponse> ReadyFuture(SelectResponse response) {
  std::promise<SelectResponse> promise;
  promise.set_value(std::move(response));
  return promise.get_future().share();
}

}  // namespace

ServingEngine::ServingEngine(EngineOptions options)
    : options_(options),
      registry_(ModelRegistryOptions{options.model_capacity,
                                     std::max<size_t>(1, options.cache_shards / 2),
                                     options.persist_dir}),
      selection_cache_(options.selection_cache_capacity, options.cache_shards),
      pool_(options.num_threads) {}

ServingEngine::~ServingEngine() { Drain(); }

Status ServingEngine::RegisterTable(const std::string& table_id,
                                    const Table& table, SubTabConfig config) {
  const ModelKey key = MakeModelKey(table, config);
  Result<std::shared_ptr<const SubTab>> model =
      registry_.GetOrFitKeyed(key, table, config);
  if (!model.ok()) return model.status();
  std::unique_lock<std::shared_mutex> lock(tables_mu_);
  tables_[table_id] = TableEntry{*model, key.Digest()};
  return Status::Ok();
}

std::shared_ptr<const SubTab> ServingEngine::GetModel(
    const std::string& table_id) const {
  std::shared_lock<std::shared_mutex> lock(tables_mu_);
  auto it = tables_.find(table_id);
  return it == tables_.end() ? nullptr : it->second.model;
}

SelectionKey ServingEngine::KeyFor(const TableEntry& entry,
                                   const SelectRequest& request) const {
  const SubTabConfig& config = entry.model->config();
  SelectionKey key;
  key.model_digest = entry.model_digest;
  key.query = NormalizedQueryKey(request.query);
  key.k = request.k.value_or(config.k);
  key.l = request.l.value_or(config.l);
  key.seed = request.seed.value_or(config.seed);
  return key;
}

std::shared_future<SelectResponse> ServingEngine::SubmitSelect(
    const SelectRequest& request) {
  requests_submitted_.fetch_add(1, std::memory_order_relaxed);

  TableEntry entry;
  {
    std::shared_lock<std::shared_mutex> lock(tables_mu_);
    auto it = tables_.find(request.table_id);
    if (it == tables_.end()) {
      requests_completed_.fetch_add(1, std::memory_order_relaxed);
      requests_failed_.fetch_add(1, std::memory_order_relaxed);
      SelectResponse response;
      response.status =
          Status::NotFound("table not registered: " + request.table_id);
      return ReadyFuture(std::move(response));
    }
    entry = it->second;
  }

  const SelectionKey key = KeyFor(entry, request);
  if (std::shared_ptr<const CachedSelection> cached = selection_cache_.Get(key)) {
    requests_completed_.fetch_add(1, std::memory_order_relaxed);
    if (!cached->status.ok()) {
      requests_failed_.fetch_add(1, std::memory_order_relaxed);
    }
    SelectResponse response;
    response.status = cached->status;
    response.view = cached->view;
    response.from_cache = true;
    return ReadyFuture(std::move(response));
  }

  // Dedup by key digest: an identical request already being computed gets
  // the same future. (A 64-bit digest collision would share the wrong
  // result; with in-flight populations of at most thousands the probability
  // is ~n^2/2^64 — ignored, as with the fingerprint-keyed registry.)
  const uint64_t digest = SelectionKeyHasher{}(key);
  std::shared_future<SelectResponse> future;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(digest);
    if (it != inflight_.end()) {
      requests_coalesced_.fetch_add(1, std::memory_order_relaxed);
      ++it->second.coalesced_waiters;
      return it->second.future;
    }
    auto promise = std::make_shared<std::promise<SelectResponse>>();
    future = promise->get_future().share();
    inflight_[digest] = InFlight{std::move(promise), future};
  }

  pool_.Submit([this, key, model = entry.model, request] {
    Execute(key, model, request);
  });
  return future;
}

void ServingEngine::Execute(const SelectionKey& key,
                            std::shared_ptr<const SubTab> model,
                            const SelectRequest& request) {
  Result<SubTabView> view =
      model->SelectForQuery(request.query, request.k, request.l, request.seed);
  CachedSelection outcome;
  if (view.ok()) {
    outcome.view = std::make_shared<const SubTabView>(std::move(*view));
  } else {
    outcome.status = view.status();
  }
  // Both outcomes are deterministic functions of the key, so errors are
  // memoized too — a repeated empty-result query must not rescan the table.
  selection_cache_.Put(key,
                       std::make_shared<const CachedSelection>(outcome));
  SelectResponse response;
  response.status = outcome.status;
  response.view = outcome.view;

  std::shared_ptr<std::promise<SelectResponse>> promise;
  uint64_t resolved = 1;
  {
    // Erase before resolving: a submitter that misses the in-flight map from
    // here on finds the result in the selection cache instead.
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(SelectionKeyHasher{}(key));
    SUBTAB_CHECK(it != inflight_.end());
    promise = std::move(it->second.promise);
    resolved += it->second.coalesced_waiters;
    inflight_.erase(it);
  }
  // The computation and every coalesced waiter complete together — and fail
  // together — keeping submitted/completed/failed consistent per response.
  requests_completed_.fetch_add(resolved, std::memory_order_relaxed);
  if (!response.status.ok()) {
    requests_failed_.fetch_add(resolved, std::memory_order_relaxed);
  }
  promise->set_value(std::move(response));
}

SelectResponse ServingEngine::Select(const SelectRequest& request) {
  return SubmitSelect(request).get();
}

void ServingEngine::Drain() { pool_.Wait(); }

void ServingEngine::SubmitBarrierTaskForTesting(std::function<void()> task) {
  pool_.Submit(std::move(task));
}

EngineStats ServingEngine::Stats() const {
  EngineStats stats;
  stats.registry = registry_.Stats();
  stats.selection_cache = selection_cache_.Stats();
  stats.requests_submitted = requests_submitted_.load(std::memory_order_relaxed);
  stats.requests_completed = requests_completed_.load(std::memory_order_relaxed);
  stats.requests_failed = requests_failed_.load(std::memory_order_relaxed);
  stats.requests_coalesced = requests_coalesced_.load(std::memory_order_relaxed);
  stats.num_threads = pool_.num_threads();
  stats.queue_depth = pool_.queue_depth();
  {
    std::shared_lock<std::shared_mutex> lock(tables_mu_);
    stats.tables = tables_.size();
  }
  return stats;
}

}  // namespace subtab::service
