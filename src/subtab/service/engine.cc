#include "subtab/service/engine.h"

#include <algorithm>
#include <unordered_set>

#include "subtab/util/string_util.h"

namespace subtab::service {
namespace {

/// A future that is already resolved (table miss, cache hit).
std::shared_future<SelectResponse> ReadyFuture(SelectResponse response) {
  std::promise<SelectResponse> promise;
  promise.set_value(std::move(response));
  return promise.get_future().share();
}

}  // namespace

ServingEngine::ServingEngine(EngineOptions options)
    : options_(options),
      registry_(ModelRegistryOptions{options.model_capacity,
                                     std::max<size_t>(1, options.cache_shards / 2),
                                     options.persist_dir}),
      selection_cache_(options.selection_cache_capacity, options.cache_shards),
      pool_(options.num_threads) {}

ServingEngine::~ServingEngine() { Drain(); }

Status ServingEngine::RegisterTable(const std::string& table_id,
                                    const Table& table, SubTabConfig config) {
  const ModelKey key = MakeModelKey(table, config);
  Result<std::shared_ptr<const SubTab>> model =
      registry_.GetOrFitKeyed(key, table, config);
  if (!model.ok()) return model.status();
  std::unique_lock<std::shared_mutex> lock(tables_mu_);
  tables_[table_id] = TableEntry{*model, key, key.Digest(), nullptr};
  return Status::Ok();
}

Status ServingEngine::RegisterStream(
    const std::string& table_id,
    std::shared_ptr<stream::StreamSession> stream) {
  if (stream == nullptr) {
    return Status::InvalidArgument("stream must not be null");
  }
  // Snapshot and bind under tables_mu_: snapshotting outside it would let a
  // concurrent Append sweep run in between and leave this id bound to the
  // swept (stale) version forever. Inside the lock, any sweep either
  // happened before (the snapshot already sees its version) or happens
  // after our insert (the sweep upgrades this entry with the rest). The
  // snapshot's publish_mu_ nests inside tables_mu_ only here, and no path
  // acquires them in the opposite order.
  std::unique_lock<std::shared_mutex> lock(tables_mu_);
  stream::PublishedModel published = stream->Snapshot();
  registry_.Publish(published.key, published.model);
  tables_[table_id] =
      TableEntry{std::move(published.model), published.key,
                 published.key.Digest(), std::move(stream)};
  return Status::Ok();
}

Result<stream::RefreshEvent> ServingEngine::Append(const std::string& table_id,
                                                   const Table& batch) {
  std::shared_ptr<stream::StreamSession> stream;
  {
    std::shared_lock<std::shared_mutex> lock(tables_mu_);
    auto it = tables_.find(table_id);
    if (it == tables_.end() || it->second.stream == nullptr) {
      return Status::NotFound("no stream registered as: " + table_id);
    }
    stream = it->second.stream;
  }

  // The session serializes appends and model maintenance internally;
  // concurrent selects keep serving whatever entry they already resolved.
  // The event carries the (model, key) pair of the version THIS append
  // published — re-reading stream->model() here could observe a later
  // concurrent append's model and register it under this append's key.
  Result<stream::RefreshEvent> event = stream->Append(batch);
  if (!event.ok()) return event.status();
  const ModelKey key = event->key;

  // Every id bound to this stream at an older version republishes; their
  // superseded versions' registry entries and cached selections go. Ids
  // bound to the same stream share one superseded (digest, key) — dedup so
  // each O(entries) cache sweep runs once. The registry Publish happens
  // inside the same critical section that proves this event is still the
  // newest bound version — a preempted appender whose version was already
  // superseded must not re-insert its dead model after the sweep.
  std::vector<std::pair<uint64_t, ModelKey>> superseded;
  {
    std::unique_lock<std::shared_mutex> lock(tables_mu_);
    for (auto& [id, entry] : tables_) {
      // The version guard keeps a slow appender from rolling an id back
      // below a newer republish.
      if (entry.stream != stream || entry.key.version >= key.version) continue;
      superseded.emplace_back(entry.model_digest, entry.key);
      entry.model = event->model;
      entry.key = key;
      entry.model_digest = key.Digest();
    }
    if (!superseded.empty()) registry_.Publish(key, event->model);
    // A superseded digest can still be live under another entry: a static
    // RegisterTable of the same (table, config) shares the stream's
    // version-0 key by design. Sweeping it would flush that table's warm
    // selections and evict its shared fitted model — keep those.
    std::erase_if(superseded, [this](const auto& dead) {
      for (const auto& [id, entry] : tables_) {
        if (entry.model_digest == dead.first) return true;
      }
      return false;
    });
  }
  std::sort(superseded.begin(), superseded.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  superseded.erase(std::unique(superseded.begin(), superseded.end(),
                               [](const auto& a, const auto& b) {
                                 return a.first == b.first;
                               }),
                   superseded.end());
  uint64_t invalidated = 0;
  for (const auto& [digest, old_key] : superseded) {
    invalidated += selection_cache_.InvalidateModel(digest);
    registry_.Erase(old_key);
  }
  cache_invalidations_.fetch_add(invalidated, std::memory_order_relaxed);
  return event;
}

std::shared_ptr<const SubTab> ServingEngine::GetModel(
    const std::string& table_id) const {
  std::shared_lock<std::shared_mutex> lock(tables_mu_);
  auto it = tables_.find(table_id);
  return it == tables_.end() ? nullptr : it->second.model;
}

SelectionKey ServingEngine::KeyFor(const TableEntry& entry,
                                   const SelectRequest& request) const {
  const SubTabConfig& config = entry.model->config();
  SelectionKey key;
  key.model_digest = entry.model_digest;
  key.query = NormalizedQueryKey(request.query);
  key.k = request.k.value_or(config.k);
  key.l = request.l.value_or(config.l);
  key.seed = request.seed.value_or(config.seed);
  return key;
}

std::shared_future<SelectResponse> ServingEngine::SubmitSelect(
    const SelectRequest& request) {
  requests_submitted_.fetch_add(1, std::memory_order_relaxed);

  TableEntry entry;
  {
    std::shared_lock<std::shared_mutex> lock(tables_mu_);
    auto it = tables_.find(request.table_id);
    if (it == tables_.end()) {
      requests_completed_.fetch_add(1, std::memory_order_relaxed);
      requests_failed_.fetch_add(1, std::memory_order_relaxed);
      SelectResponse response;
      response.status =
          Status::NotFound("table not registered: " + request.table_id);
      return ReadyFuture(std::move(response));
    }
    entry = it->second;
  }

  const SelectionKey key = KeyFor(entry, request);
  if (std::shared_ptr<const CachedSelection> cached = selection_cache_.Get(key)) {
    requests_completed_.fetch_add(1, std::memory_order_relaxed);
    if (!cached->status.ok()) {
      requests_failed_.fetch_add(1, std::memory_order_relaxed);
    }
    SelectResponse response;
    response.status = cached->status;
    response.view = cached->view;
    response.from_cache = true;
    return ReadyFuture(std::move(response));
  }

  // Dedup by key digest: an identical request already being computed gets
  // the same future. (A 64-bit digest collision would share the wrong
  // result; with in-flight populations of at most thousands the probability
  // is ~n^2/2^64 — ignored, as with the fingerprint-keyed registry.)
  const uint64_t digest = SelectionKeyHasher{}(key);
  std::shared_future<SelectResponse> future;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(digest);
    if (it != inflight_.end()) {
      requests_coalesced_.fetch_add(1, std::memory_order_relaxed);
      ++it->second.coalesced_waiters;
      return it->second.future;
    }
    auto promise = std::make_shared<std::promise<SelectResponse>>();
    future = promise->get_future().share();
    inflight_[digest] = InFlight{std::move(promise), future};
  }

  pool_.Submit([this, key, model = entry.model, request] {
    Execute(key, model, request);
  });
  return future;
}

void ServingEngine::Execute(const SelectionKey& key,
                            std::shared_ptr<const SubTab> model,
                            const SelectRequest& request) {
  Result<SubTabView> view =
      model->SelectForQuery(request.query, request.k, request.l, request.seed);
  CachedSelection outcome;
  if (view.ok()) {
    outcome.view = std::make_shared<const SubTabView>(std::move(*view));
  } else {
    outcome.status = view.status();
  }
  // Both outcomes are deterministic functions of the key, so errors are
  // memoized too — a repeated empty-result query must not rescan the table.
  // Guard: cache only while the table still serves this model version — a
  // result computed across a stream republish would otherwise re-insert
  // under a digest InvalidateModel already swept, parking an unreachable
  // entry until LRU eviction. (Best-effort: a republish between this check
  // and the Put still leaks one entry; it cannot serve wrong results, the
  // digest no longer matches any table.)
  bool version_current = false;
  {
    std::shared_lock<std::shared_mutex> lock(tables_mu_);
    auto it = tables_.find(request.table_id);
    version_current =
        it != tables_.end() && it->second.model_digest == key.model_digest;
  }
  if (version_current) {
    selection_cache_.Put(key,
                         std::make_shared<const CachedSelection>(outcome));
  }
  SelectResponse response;
  response.status = outcome.status;
  response.view = outcome.view;

  std::shared_ptr<std::promise<SelectResponse>> promise;
  uint64_t resolved = 1;
  {
    // Erase before resolving: a submitter that misses the in-flight map from
    // here on finds the result in the selection cache instead.
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(SelectionKeyHasher{}(key));
    SUBTAB_CHECK(it != inflight_.end());
    promise = std::move(it->second.promise);
    resolved += it->second.coalesced_waiters;
    inflight_.erase(it);
  }
  // The computation and every coalesced waiter complete together — and fail
  // together — keeping submitted/completed/failed consistent per response.
  requests_completed_.fetch_add(resolved, std::memory_order_relaxed);
  if (!response.status.ok()) {
    requests_failed_.fetch_add(resolved, std::memory_order_relaxed);
  }
  promise->set_value(std::move(response));
}

SelectResponse ServingEngine::Select(const SelectRequest& request) {
  return SubmitSelect(request).get();
}

void ServingEngine::Drain() { pool_.Wait(); }

void ServingEngine::SubmitBarrierTaskForTesting(std::function<void()> task) {
  pool_.Submit(std::move(task));
}

EngineStats ServingEngine::Stats() const {
  EngineStats stats;
  stats.registry = registry_.Stats();
  stats.selection_cache = selection_cache_.Stats();
  stats.requests_submitted = requests_submitted_.load(std::memory_order_relaxed);
  stats.requests_completed = requests_completed_.load(std::memory_order_relaxed);
  stats.requests_failed = requests_failed_.load(std::memory_order_relaxed);
  stats.requests_coalesced = requests_coalesced_.load(std::memory_order_relaxed);
  stats.num_threads = pool_.num_threads();
  stats.queue_depth = pool_.queue_depth();
  std::vector<std::shared_ptr<stream::StreamSession>> streams;
  std::vector<std::shared_ptr<const Table>> bound_tables;
  {
    std::shared_lock<std::shared_mutex> lock(tables_mu_);
    stats.tables = tables_.size();
    std::unordered_set<const stream::StreamSession*> seen;
    for (const auto& [id, entry] : tables_) {
      if (entry.model != nullptr) {
        bound_tables.push_back(entry.model->shared_table());
      }
      // One stream may be bound under several ids; count it once.
      if (entry.stream != nullptr && seen.insert(entry.stream.get()).second) {
        streams.push_back(entry.stream);
      }
    }
  }
  // Streams' current snapshots are read outside tables_mu_ (their internal
  // locks must not nest inside it).
  for (const auto& stream : streams) {
    bound_tables.push_back(stream->current_version().table);
  }
  // Memory accounting: logical counts every binding's table independently;
  // resident deduplicates shared Table objects, then shared chunks across
  // distinct tables (successive stream versions share all but the newest
  // chunk).
  std::unordered_set<const Table*> seen_tables;
  std::unordered_set<const Chunk*> seen_chunks;
  std::unordered_set<const void*> seen_dicts;
  for (const auto& table : bound_tables) {
    if (table == nullptr) continue;
    stats.memory.logical_bytes += table->ApproxBytes();
    if (!seen_tables.insert(table.get()).second) continue;
    for (size_t c = 0; c < table->num_columns(); ++c) {
      const Column& col = table->column(c);
      for (const auto& chunk : col.chunks()) {
        if (seen_chunks.insert(chunk.get()).second) {
          stats.memory.resident_bytes += chunk->ByteSize();
        }
      }
      // Dictionaries are shared copy-on-write across versions; count each
      // distinct dictionary object once, like chunks.
      if (col.dict_identity() != nullptr &&
          seen_dicts.insert(col.dict_identity()).second) {
        stats.memory.resident_bytes += col.DictBytes();
      }
    }
  }
  stats.memory.tables = seen_tables.size();
  stats.memory.chunks = seen_chunks.size();
  stats.memory.shared_saved_bytes =
      stats.memory.logical_bytes - stats.memory.resident_bytes;
  stats.streaming.streams = streams.size();
  stats.streaming.cache_invalidations =
      cache_invalidations_.load(std::memory_order_relaxed);
  for (const auto& stream : streams) {
    const stream::StreamStats s = stream->Stats();
    stats.streaming.appends += s.appends;
    stats.streaming.rows_appended += s.rows_appended;
    stats.streaming.fold_ins += s.fold_ins;
    stats.streaming.incremental_refreshes += s.incremental_refreshes;
    stats.streaming.full_refits += s.full_refits;
    stats.streaming.fold_in_seconds += s.fold_in_seconds;
    stats.streaming.incremental_seconds += s.incremental_seconds;
    stats.streaming.refit_seconds += s.refit_seconds;
  }
  return stats;
}

std::string EngineStats::ToJson() const {
  std::string json = "{";
  json += StrFormat("\"tables\":%zu,\"threads\":%zu,\"queue_depth\":%zu,",
                    tables, num_threads, queue_depth);
  json += StrFormat(
      "\"requests\":{\"submitted\":%llu,\"completed\":%llu,\"failed\":%llu,"
      "\"coalesced\":%llu},",
      (unsigned long long)requests_submitted,
      (unsigned long long)requests_completed,
      (unsigned long long)requests_failed,
      (unsigned long long)requests_coalesced);
  json += StrFormat(
      "\"selection_cache\":{\"hits\":%llu,\"misses\":%llu,\"insertions\":%llu,"
      "\"evictions\":%llu,\"entries\":%zu},",
      (unsigned long long)selection_cache.hits,
      (unsigned long long)selection_cache.misses,
      (unsigned long long)selection_cache.insertions,
      (unsigned long long)selection_cache.evictions, selection_cache.entries);
  json += StrFormat(
      "\"registry\":{\"hits\":%llu,\"misses\":%llu,\"evictions\":%llu,"
      "\"entries\":%zu,\"loads\":%llu,\"fits\":%llu,\"coalesced\":%llu},",
      (unsigned long long)registry.cache.hits,
      (unsigned long long)registry.cache.misses,
      (unsigned long long)registry.cache.evictions, registry.cache.entries,
      (unsigned long long)registry.loads, (unsigned long long)registry.fits,
      (unsigned long long)registry.coalesced);
  json += StrFormat(
      "\"memory\":{\"tables\":%zu,\"chunks\":%zu,\"logical_bytes\":%llu,"
      "\"resident_bytes\":%llu,\"shared_saved_bytes\":%llu},",
      memory.tables, memory.chunks, (unsigned long long)memory.logical_bytes,
      (unsigned long long)memory.resident_bytes,
      (unsigned long long)memory.shared_saved_bytes);
  json += StrFormat(
      "\"streaming\":{\"streams\":%zu,\"appends\":%llu,\"rows_appended\":%llu,"
      "\"fold_ins\":%llu,\"incremental_refreshes\":%llu,\"full_refits\":%llu,"
      "\"fold_in_seconds\":%.6g,\"incremental_seconds\":%.6g,"
      "\"refit_seconds\":%.6g,\"cache_invalidations\":%llu}}",
      streaming.streams, (unsigned long long)streaming.appends,
      (unsigned long long)streaming.rows_appended,
      (unsigned long long)streaming.fold_ins,
      (unsigned long long)streaming.incremental_refreshes,
      (unsigned long long)streaming.full_refits, streaming.fold_in_seconds,
      streaming.incremental_seconds, streaming.refit_seconds,
      (unsigned long long)streaming.cache_invalidations);
  return json;
}

}  // namespace subtab::service
