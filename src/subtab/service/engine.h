#ifndef SUBTAB_SERVICE_ENGINE_H_
#define SUBTAB_SERVICE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "subtab/core/fingerprint.h"
#include "subtab/core/subtab.h"
#include "subtab/service/model_registry.h"
#include "subtab/service/selection_cache.h"
#include "subtab/stream/stream_session.h"
#include "subtab/util/latency_histogram.h"
#include "subtab/util/metrics.h"
#include "subtab/util/sample_quality.h"
#include "subtab/util/stopwatch.h"
#include "subtab/util/thread_pool.h"
#include "subtab/util/trace.h"

/// \file engine.h
/// The concurrent sub-table serving engine — the multi-tenant front door of
/// the library. The paper splits SubTab into a one-off pre-processing phase
/// and a cheap per-display selection phase (Sec. 5.1, Fig. 9); the engine
/// turns that split into a server architecture:
///
///   RegisterTable ── ModelRegistry ── one shared fit per (table, config),
///                                     LRU-evicted, optionally disk-backed
///   RegisterStream ─ StreamSession ── append-mostly tables: versions are
///                                     registry entries (fp, config, version)
///   SubmitSelect ─── SelectionCache ── repeated displays are cache hits
///                └── in-flight dedup ── identical concurrent requests run once
///                └── admission ──────── bounded per-tenant queues shed early
///                └── pipeline ───────── normalize -> scan -> select stages
///                └── containment ────── a miss whose query refines a cached
///                                       ancestor rescans only that scope
///
/// Requests flow through a staged pipeline: normalization and cache/dedup
/// checks happen at submit, then the *scan* stage (ResolveScope — the
/// query's filter scan, optionally fanned out per sealed chunk) and the
/// *select* stage (SelectScoped — clustering) run as separate queue hops on
/// the worker pool, so one request's scan overlaps another's selection and
/// neither materializes the intermediate query result. Admission control
/// bounds what a single tenant (table id) may keep in flight and what the
/// whole queue may hold; excess requests fail fast with kUnavailable
/// instead of queueing unboundedly (EngineStats::pipeline counts sheds and
/// latency percentiles for the ops loop that tunes those bounds).
///
/// Results are bit-identical to the serial SubTab::SelectForQuery path:
/// ResolveScope + SelectScoped *is* that method split at its seam (see
/// core/subtab.h), the chunk-parallel scan partitions rows without touching
/// any row's verdict, and caching only memoizes a deterministic function of
/// (model, query, k, l, seed). Containment reuse (the scope index in
/// selection_cache.h) only changes where the scan LOOKS — a proven superset
/// scope instead of the whole table — never what it finds: a drill-down
/// refinement of an already-served query re-evaluates just its extra
/// conjuncts over the parent's rows (RestrictQueryScope), shrinking the
/// scan stage from O(table) to O(parent scope).
///
/// Streaming tables (stream/): Append ingests a batch through the bound
/// StreamSession — inline or background refresh per its options — and every
/// publication (each new version, and each background upgrade republishing a
/// version at a higher ModelKey::refresh generation) synchronously
/// republishes the bound ids via the session's publish listener. In-flight
/// selects finish against the version they started on; the superseded
/// publication's selection-cache entries are invalidated, every other
/// table's stay warm.
///
/// Future scaling seams (see ROADMAP.md): the registry generalizes to a
/// shard-per-node map, SubmitSelect to an async RPC.

namespace subtab::service {

/// One display request against a registered table. Empty query = whole
/// table; k/l/seed default to the registered config.
struct SelectRequest {
  std::string table_id;
  SpQuery query;
  std::optional<size_t> k;
  std::optional<size_t> l;
  std::optional<uint64_t> seed;
  /// Opt-in explain payload: when tracing is on, the response carries the
  /// request's completed trace (SelectResponse::trace) so the caller can
  /// render a stage waterfall without scraping the sink. Coalesced waiters
  /// receive the initiating request's choice (they share one response).
  bool trace_explain = false;
};

/// Outcome of one request. `view` is set iff `status.ok()`; it is shared
/// with the selection cache, so treat it as immutable. Shed requests carry
/// kUnavailable and were never queued.
struct SelectResponse {
  Status status;
  std::shared_ptr<const SubTabView> view;
  bool from_cache = false;
  /// The request's trace id (0 when tracing is disabled). Shed responses
  /// carry it too — the id in the kUnavailable message is this one.
  uint64_t trace_id = 0;
  /// Set iff the initiating request asked for trace_explain (and tracing
  /// is on): the completed trace, root span first.
  std::shared_ptr<const CompletedTrace> trace;
};

struct EngineOptions {
  /// Worker threads executing selections (0 = HardwareThreads()).
  size_t num_threads = 0;
  /// Resident fitted models (one per distinct table x config).
  size_t model_capacity = 16;
  /// Cached selection results across all tables.
  size_t selection_cache_capacity = 4096;
  size_t cache_shards = 8;
  /// Forwarded to ModelRegistryOptions::persist_dir.
  std::string persist_dir;
  /// Staged pipeline (scan and select as separate queue hops) vs the
  /// pre-refactor monolithic executor (one blocking SelectForQuery task per
  /// request). The monolithic path is kept for differential testing and the
  /// before/after throughput benchmark; both return bit-identical views.
  bool staged_pipeline = true;
  /// Chunk-parallel fan-out of one request's filter scan
  /// (QueryExecOptions::num_threads): 1 = serial, 0 = HardwareThreads().
  /// Parallel scans cut single-request latency when workers are idle; under
  /// saturation the pipeline already fills every core. Fan-out spawns
  /// short-lived threads per scan (util/parallel), amortized by
  /// QueryExecOptions::min_parallel_rows — leave at 1 for small tables or
  /// fully loaded engines.
  size_t scan_threads = 1;
  /// Zone-map pruning of the filter scan (QueryExecOptions::zone_map_pruning,
  /// table/query.h): seal-time chunk statistics refute whole chunks before a
  /// cell is read, and dictionary-column comparisons are resolved against
  /// the dictionary once and evaluated over integer codes. Bit-identical
  /// either way; off = every scan walks every chunk (kept for differential
  /// testing and the BENCH_serving scan_pruning phase).
  bool zone_map_pruning = true;
  /// Admission control: maximum computations one tenant (table id) may have
  /// admitted (queued or running; cache hits and coalesced attaches are
  /// free) before further ones are shed with kUnavailable. 0 = unbounded.
  size_t max_pending_per_tenant = 0;
  /// Global bound on the worker queue depth before sheds kick in for
  /// everyone. 0 = unbounded.
  size_t max_queue_depth = 0;
  /// Lets an SLO monitor (ops/slo_monitor.h) tighten the global queue bound
  /// at runtime while the error budget is burning and restore it on
  /// recovery (SetEffectiveMaxQueueDepth). Off = the effective bound is
  /// pinned to max_queue_depth and tightening requests are refused. Only
  /// meaningful when max_queue_depth > 0 — an unbounded queue has no bound
  /// to shrink.
  bool slo_adaptive_admission = false;
  /// Containment-based scan reuse for drill-down sessions: on a selection-
  /// cache miss, probe the scope index for the nearest cached ancestor query
  /// (a proven superset, table/query.h QueryContains) and scan only its rows
  /// (RestrictQueryScope) instead of the whole table. Results are
  /// bit-identical either way; off = every miss pays a full scan (the
  /// pre-containment behavior, kept for differential testing and benches).
  bool containment_reuse = true;
  /// Resolved scopes the containment index keeps per model version (LRU).
  size_t scope_index_per_model = 32;
  /// Row-id budget of the containment index per model version: indexed
  /// scopes can approach table size, so this — not the entry count — is
  /// what bounds the index's memory (~8 bytes/row). Entries are LRU-evicted
  /// past the budget; a single scope exceeding it is not indexed. 0 =
  /// unbounded.
  size_t scope_index_rows_per_model = 1u << 20;
  /// Request-scoped tracing (util/trace.h): every request opens a root span
  /// plus one child span per pipeline stage, completed traces land in the
  /// engine's TraceSink (slow-query exemplars pinned past ring eviction),
  /// and shed/error messages carry trace ids. Off = the sink is never
  /// created, contexts are disabled handles, and the request path pays
  /// nothing (bench_serving_throughput CHECKs the <=3% bound). Stage
  /// latency histograms (pipeline.stage.*) record either way.
  bool tracing = true;
  /// Ring/exemplar tuning of the engine's sink (ignored when !tracing).
  TraceSinkOptions trace_sink;
  /// Sub-linear selection (core/select.h sampled path): scopes with at
  /// least this many rows cluster over a deterministic weighted sample of
  /// the scope instead of every scoped row. The sample is a pure function
  /// of the request key, so caching/dedup semantics are unchanged; exact
  /// SelectScoped stays the differential reference. 0 = always exact.
  size_t sampled_selection_min_rows = 10000;
  /// Distinct scope rows drawn per sampled selection (weighted toward rare
  /// bin signatures so planted patterns survive the sample).
  size_t selection_sample_rows = 2048;
  /// Quality gate (util/sample_quality.h): every Nth sampled selection per
  /// model is also run exactly and both results scored with the combined
  /// coverage+diversity metric (Eq. 3); when sampled/exact falls below
  /// `sampled_selection_min_quality` the exact result is served instead and
  /// selection.sample_quality_fallbacks counts it. The first sampled
  /// selection of each model is always checked. 0 = never check.
  uint64_t sample_quality_check_every = 32;
  double sampled_selection_min_quality = 0.95;
};

/// Refresh activity across every stream bound to the engine (aggregated
/// from stream::StreamStats, deduplicated when one stream serves many ids).
struct StreamingStats {
  size_t streams = 0;
  uint64_t appends = 0;
  uint64_t rows_appended = 0;
  uint64_t fold_ins = 0;
  uint64_t incremental_refreshes = 0;
  uint64_t full_refits = 0;
  double fold_in_seconds = 0.0;
  double incremental_seconds = 0.0;
  double refit_seconds = 0.0;
  /// Background refresh: upgrades scheduled / republished / discarded
  /// because an append superseded the version mid-training.
  uint64_t deferred_upgrades = 0;
  uint64_t upgrades_completed = 0;
  uint64_t upgrades_discarded = 0;
  /// Selection-cache entries dropped when a publication was superseded.
  uint64_t cache_invalidations = 0;
};

/// Resident-table accounting across every model and stream bound to the
/// engine. `logical_bytes` counts each binding's table independently — what
/// the pre-chunking design kept resident (every SubTab owned its own copy of
/// the table, so a stream's live version was resident twice: once in the
/// snapshot, once in the model). `resident_bytes` deduplicates shared Table
/// objects and shared chunks across versions, so `shared_saved_bytes =
/// logical - resident` is the double-residency the zero-copy snapshot path
/// eliminated. Registry-cached models not currently bound to an id are not
/// walked (they are LRU-bounded and share chunks the same way).
struct MemoryStats {
  size_t tables = 0;  ///< Distinct Table objects referenced by bindings.
  size_t chunks = 0;  ///< Distinct chunks across those tables.
  uint64_t logical_bytes = 0;
  uint64_t resident_bytes = 0;
  uint64_t shared_saved_bytes = 0;
};

/// Latency view of one pipeline stage (a registry histogram's snapshot,
/// util/latency_histogram.h bucket resolution).
struct StageLatencyStats {
  uint64_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
};

/// Pipeline health: shed/latency counters plus the gauges a load balancer
/// or autoscaler reads (queue depth lives on EngineStats directly).
struct PipelineStats {
  /// Requests refused by admission control (never queued).
  uint64_t requests_shed = 0;
  /// Sheds attributed to the bound that tripped (sum = requests_shed).
  uint64_t shed_global_queue = 0;
  uint64_t shed_tenant = 0;
  /// Summed wall time inside each stage, across all workers.
  double scan_seconds = 0.0;
  double select_seconds = 0.0;
  /// End-to-end latency (submit -> response) percentiles over every
  /// response that resolved against a table — cache hits included, sheds
  /// and unknown-table misses excluded (util/latency_histogram.h bucket
  /// resolution).
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_mean_ms = 0.0;
  uint64_t latency_count = 0;
  /// Gauges at snapshot time.
  size_t workers_active = 0;
  double worker_utilization = 0.0;  ///< workers_active / num_threads.
  size_t tenants_tracked = 0;       ///< Tenants with admitted work.
  /// Per-stage latency attribution: queue wait before the scan hop, the
  /// scan itself, queue wait before the select hop, the selection. Recorded
  /// for every staged computation whether tracing is on or off.
  StageLatencyStats stage_queue_scan;
  StageLatencyStats stage_scan;
  StageLatencyStats stage_queue_select;
  StageLatencyStats stage_select;
  /// Admission limits as enforced RIGHT NOW. `max_queue_depth_effective` is
  /// what TryAdmit checks — it differs from `max_queue_depth_configured`
  /// only while SLO-adaptive admission has tightened it; shed messages and
  /// /statusz both report this effective value (0 = unbounded).
  size_t max_queue_depth_effective = 0;
  size_t max_queue_depth_configured = 0;
  size_t max_pending_per_tenant = 0;
};

/// Containment-tier accounting: how often a selection-cache miss was served
/// by restricting a cached ancestor scope instead of scanning the table,
/// and how many rows those restricted scans visited vs what full scans
/// cost. `restricted_scan_rows / containment_hits` vs
/// `full_scan_rows / containment_misses` is the drill-down win in average
/// rows per scan (misses and hits partition the containment-enabled scans).
struct ContainmentStats {
  /// Scans served by restricting a cached ancestor scope.
  uint64_t containment_hits = 0;
  /// Scans that fell back to a full table scan: the probe found no
  /// containing ancestor, or the found ancestor failed the benefit gate
  /// (too large to beat the full scan's cost).
  uint64_t containment_misses = 0;
  /// Rows visited by restricted scans (the ancestors' scope sizes).
  uint64_t restricted_scan_rows = 0;
  /// Rows visited by full-table scans (misses and disabled reuse).
  uint64_t full_scan_rows = 0;
  /// Scopes currently indexed across all content versions.
  size_t scope_entries = 0;
  /// Scopes dropped because their CONTENT version was superseded. Refresh
  /// upgrades (same rows, retrained embedding) preserve indexed scopes —
  /// they key on (table fp, version), not the full model digest.
  uint64_t scope_invalidations = 0;
};

/// Sub-linear selection accounting: how many select stages ran over a
/// sampled scope vs the full scope, how much row work sampling skipped
/// (`scope_rows_sampled - sample_rows_total` is the rows never embedded),
/// and what the quality gate measured. `min_quality_ratio` is the worst
/// sampled/exact combined-score ratio any check observed (0 until the
/// first check).
struct SelectionStats {
  uint64_t sampled = 0;            ///< Select stages over a sampled scope.
  uint64_t exact = 0;              ///< Select stages over the full scope.
  uint64_t sample_rows_total = 0;  ///< Rows actually clustered when sampled.
  uint64_t scope_rows_sampled = 0; ///< Scope rows of those sampled selects.
  uint64_t quality_checks = 0;
  uint64_t quality_fallbacks = 0;  ///< Checks that served the exact result.
  double last_quality_ratio = 0.0;
  double min_quality_ratio = 0.0;
};

/// Scan-stage attribution summed over every full (non-restricted) filter
/// scan the engine ran: how much chunk walking the zone maps skipped and how
/// often dictionary comparisons ran code-level. `chunks_pruned /
/// (chunks_scanned + chunks_pruned)` is the prune rate the drill-down
/// workload is expected to drive up (table/query.h ScanStats per request).
struct ScanAttributionStats {
  uint64_t rows_visited = 0;
  uint64_t rows_matched = 0;
  uint64_t chunks_scanned = 0;
  uint64_t chunks_pruned = 0;
  /// Conjuncts on dictionary columns evaluated over integer codes.
  uint64_t code_eval_predicates = 0;
};

/// Counter snapshot for introspection / load-shedding decisions.
struct EngineStats {
  ModelRegistryStats registry;
  CacheCounters selection_cache;
  ContainmentStats containment;
  StreamingStats streaming;
  MemoryStats memory;
  PipelineStats pipeline;
  SelectionStats selection;
  ScanAttributionStats scan;
  /// Trace retention (zeros when tracing is disabled).
  TraceSinkStats trace;
  uint64_t requests_submitted = 0;
  uint64_t requests_completed = 0;
  uint64_t requests_failed = 0;
  /// Requests that attached to an identical in-flight computation.
  uint64_t requests_coalesced = 0;
  size_t num_threads = 0;
  size_t queue_depth = 0;
  size_t tables = 0;

  /// One-line JSON rendering of every counter — the machine-readable form
  /// emitted by serving_demo and the bench harnesses (bench_common.h's
  /// "json |" convention) and by any ops endpoint that scrapes the engine.
  /// Includes the pipeline gauges (queue depth, worker utilization) next to
  /// the counters.
  std::string ToJson() const;
};

class ServingEngine {
 public:
  explicit ServingEngine(EngineOptions options = {});
  /// Completes all outstanding requests, then stops the workers.
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Binds `table_id` to a fitted model, fitting (or fetching from the
  /// registry / disk) as needed; the table is only copied when a fit/load
  /// actually happens. Blocking; typically called at session start.
  /// Re-registering an id atomically swaps the binding.
  Status RegisterTable(const std::string& table_id, const Table& table,
                       SubTabConfig config);

  /// Binds `table_id` to an append-mostly stream (stream/stream_session.h):
  /// the id serves the stream's latest publication, starting from its
  /// current model. Appends go through Append() below or directly through
  /// the session; a stream may be bound under several ids (all republished
  /// on every publication via the session's publish listener, including
  /// background-refresh upgrades). A stream binds to one engine at a time.
  Status RegisterStream(const std::string& table_id,
                        std::shared_ptr<stream::StreamSession> stream);

  /// Ingests one batch into the stream bound to `table_id`. Every id bound
  /// to that stream is republished at the new version before this returns
  /// (synchronously via the publish listener). Selects submitted before the
  /// republish complete against the version they resolved; selects after it
  /// see the new rows. Returns the stream's refresh outcome (which
  /// maintenance level ran, whether an upgrade was deferred, and the cost).
  Result<stream::RefreshEvent> Append(const std::string& table_id,
                                      const Table& batch);

  /// The model behind an id (nullptr if unregistered). Shared and immutable.
  std::shared_ptr<const SubTab> GetModel(const std::string& table_id) const;

  /// Enqueues a request; the future resolves when a worker (or the cache)
  /// has produced the response. Identical in-flight requests are deduped
  /// onto one computation; repeated requests hit the selection cache; over
  /// the admission bounds the future is already resolved with kUnavailable.
  std::shared_future<SelectResponse> SubmitSelect(const SelectRequest& request);

  /// Convenience: SubmitSelect + wait. Do not call from a worker task.
  SelectResponse Select(const SelectRequest& request);

  /// Blocks until every submitted request has completed.
  void Drain();

  EngineStats Stats() const;

  /// The trace sink (null when EngineOptions::tracing is false). Benches
  /// export its exemplars as JSONL; ops endpoints scrape Recent().
  const std::shared_ptr<TraceSink>& trace_sink() const { return trace_sink_; }

  /// The unified registry every EngineStats section snapshots from
  /// (util/metrics.h naming scheme — see docs/OBSERVABILITY.md). Counters
  /// and histograms are live; gauges refresh on Stats()/MetricsJson().
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Mutable registry access for co-located observers (ops/slo_monitor.h
  /// registers its slo.* gauges here so one /metrics scrape exposes engine
  /// and monitor state together). The registry is internally synchronized.
  MetricsRegistry* mutable_metrics() const { return &metrics_; }

  /// Refreshes the gauges (one Stats() pass) and renders the registry.
  std::string MetricsJson() const;

  /// The global queue bound TryAdmit enforces right now: equal to
  /// EngineOptions::max_queue_depth unless SLO-adaptive admission tightened
  /// it (0 = unbounded).
  size_t effective_max_queue_depth() const {
    return effective_max_queue_depth_.load(std::memory_order_relaxed);
  }
  size_t configured_max_queue_depth() const { return options_.max_queue_depth; }

  /// Sets the effective global queue bound (the SLO monitor's adaptive-
  /// admission hook). Refused (returns false) unless
  /// EngineOptions::slo_adaptive_admission is on and a finite
  /// max_queue_depth is configured; accepted values are clamped to
  /// [1, max_queue_depth] — adaptation may only TIGHTEN the configured
  /// bound, never loosen it or introduce one where none was configured.
  bool SetEffectiveMaxQueueDepth(size_t depth);

  /// Test-only: enqueues an opaque task on the worker pool, letting tests
  /// hold workers busy deterministically (e.g. to pin requests in flight).
  void SubmitBarrierTaskForTesting(std::function<void()> task);

 private:
  struct TableEntry {
    std::shared_ptr<const SubTab> model;
    /// Registry key of `model`; key.Digest() is the selection-cache
    /// model_digest.
    ModelKey key;
    uint64_t model_digest = 0;
    /// Containment-tier key: a CONTENT digest over (table fp, version) —
    /// refresh- and config-insensitive, because resolved scopes depend only
    /// on the table's rows and the query's filters. Background-refresh
    /// upgrades keep it, so drill-down reuse survives them.
    uint64_t scope_digest = 0;
    /// Set when the id is bound to a stream; key's (version, refresh) orders
    /// republishes so a slow publisher can never roll an id back.
    std::shared_ptr<stream::StreamSession> stream;
  };

  /// One admitted computation flowing through the pipeline stages.
  struct PendingSelect {
    SelectionKey key;
    uint64_t key_digest = 0;
    uint64_t scope_digest = 0;  ///< TableEntry::scope_digest at submit.
    std::shared_ptr<const SubTab> model;
    SelectRequest request;
    SelectionScope scope;  ///< Filled by the scan stage.
    Stopwatch submitted;   ///< End-to-end latency clock.
    bool tenant_admitted = false;
    /// The request's trace, carried BY VALUE across queue hops — stages
    /// migrate threads, so nothing trace-shaped may live in thread-locals
    /// (util/trace.h). Disabled handle when tracing is off.
    TraceContext trace;
    /// The open queue-wait span between hops (queue.scan, then reused for
    /// queue.select); finished by the stage that dequeues.
    TraceSpan queue_span;
    /// Queue-wait clock between hops — feeds the pipeline.stage.queue_*
    /// histograms even when tracing is off.
    Stopwatch hop;
  };

  /// Cache/dedup identity of a request against a resolved table entry.
  SelectionKey KeyFor(const TableEntry& entry, const SelectRequest& request) const;

  /// The containment tier's content digest for a publication.
  static uint64_t ScopeDigestFor(const ModelKey& key);

  /// The containment tier's one liveness test: is any binding still
  /// serving this content digest? Caller holds tables_mu_.
  bool ScopeDigestLiveLocked(uint64_t scope_digest) const;
  /// Swaps `table_id`'s binding (tables_mu_ held) and returns the replaced
  /// binding's scope digest iff the swap removed its last reference —
  /// the caller must pass it to SweepDeadScopes outside the lock, or the
  /// old content's scope bucket leaks (only liveness checks sweep it).
  uint64_t ReplaceBindingLocked(const std::string& table_id, TableEntry entry);
  /// Sweeps one dead content digest's scopes (no-op for 0).
  void SweepDeadScopes(uint64_t scope_digest);

  /// Admission control outcome: admitted, or which bound shed the request
  /// (the response message names the knob an operator must tune).
  enum class Admission { kAdmitted, kShedGlobalQueue, kShedTenant };

  /// Returns which bound (if any) refuses the request (the caller counts
  /// the shed). An admitted return must be paired with ReleaseTenant at
  /// completion.
  Admission TryAdmit(const std::string& tenant);
  void ReleaseTenant(const std::string& tenant);

  /// Pipeline stage 2: the query's filter scan (chunk-parallel per
  /// options_.scan_threads); enqueues the select stage.
  void ExecuteScan(const std::shared_ptr<PendingSelect>& pending);
  /// Pipeline stage 3: clustering over the resolved scope.
  void ExecuteSelect(const std::shared_ptr<PendingSelect>& pending);
  /// The pre-refactor monolithic executor: scan + select in one task.
  void ExecuteBlocking(const std::shared_ptr<PendingSelect>& pending);
  /// Shared tail: memoize, resolve every waiter, release admission.
  void FinishComputation(const std::shared_ptr<PendingSelect>& pending,
                         const CachedSelection& outcome);

  /// Republishes every id bound to `stream` at `published` (no-op for ids
  /// already at or past it), sweeping superseded cache/registry entries.
  /// Runs on every stream publication (the session's listener) and is
  /// idempotent.
  void OnStreamPublish(const std::shared_ptr<stream::StreamSession>& stream,
                       const stream::PublishedModel& published);

  const EngineOptions options_;
  ModelRegistry registry_;
  SelectionCache selection_cache_;

  mutable std::shared_mutex tables_mu_;
  std::unordered_map<std::string, TableEntry> tables_;

  /// One in-flight computation: the promise its worker resolves, the shared
  /// future every duplicate submitter receives, and how many duplicates
  /// attached (their completion is accounted when the computation resolves).
  struct InFlight {
    std::shared_ptr<std::promise<SelectResponse>> promise;
    std::shared_future<SelectResponse> future;
    uint64_t coalesced_waiters = 0;
    /// The initiating request's trace id, so a coalesced waiter's trace
    /// can point at the computation it attached to.
    uint64_t trace_id = 0;
  };

  std::mutex inflight_mu_;
  std::unordered_map<uint64_t, InFlight> inflight_;

  /// Admitted computations per tenant (only tracked when bounded).
  mutable std::mutex admission_mu_;
  std::unordered_map<std::string, size_t> tenant_pending_;

  /// The global queue bound TryAdmit reads (== options_.max_queue_depth
  /// unless SLO-adaptive admission tightened it). Relaxed atomic: admission
  /// is already approximate under concurrency, and the monitor's ticker is
  /// the only writer.
  std::atomic<size_t> effective_max_queue_depth_;

  /// Every counter/gauge/histogram the engine maintains lives here under a
  /// stable dotted name; the EngineStats sections are snapshot views over
  /// it. The pointers below are the constructor-cached instruments the
  /// request path updates lock-free (util/metrics.h contract). Mutable:
  /// Stats()/MetricsJson() refresh gauges from a const context.
  mutable MetricsRegistry metrics_;
  Counter* c_submitted_;
  Counter* c_completed_;
  Counter* c_failed_;
  Counter* c_coalesced_;
  Counter* c_shed_global_;
  Counter* c_shed_tenant_;
  Counter* c_cache_invalidations_;
  Counter* c_containment_hits_;
  Counter* c_containment_misses_;
  Counter* c_restricted_scan_rows_;
  Counter* c_full_scan_rows_;
  Counter* c_scope_invalidations_;
  Counter* c_scan_busy_ns_;
  Counter* c_select_busy_ns_;
  Counter* c_rows_visited_;
  Counter* c_rows_matched_;
  Counter* c_chunks_scanned_;
  Counter* c_chunks_pruned_;
  Counter* c_code_eval_preds_;
  Counter* c_sel_sampled_;
  Counter* c_sel_exact_;
  Counter* c_sel_sample_rows_;
  Counter* c_sel_scope_rows_;
  Counter* c_sel_quality_checks_;
  Counter* c_sel_quality_fallbacks_;
  Gauge* g_sel_last_quality_;
  Gauge* g_sel_min_quality_;
  LatencyHistogram* h_latency_;
  LatencyHistogram* h_queue_scan_;
  LatencyHistogram* h_scan_;
  LatencyHistogram* h_queue_select_;
  LatencyHistogram* h_select_;
  Gauge* g_queue_depth_;
  Gauge* g_workers_active_;
  Gauge* g_worker_utilization_;
  Gauge* g_tables_;
  Gauge* g_scope_entries_;
  Gauge* g_memory_resident_;
  Gauge* g_memory_logical_;
  Gauge* g_memory_saved_;
  Gauge* g_effective_max_queue_depth_;

  /// Quality gate for the sampled selection path (internally synchronized);
  /// quality_mu_ guards only the last/min ratio aggregates below, which the
  /// rare check path writes and Stats() reads.
  SampleQualityCheck sample_quality_;
  mutable std::mutex quality_mu_;
  double last_quality_ratio_ = 0.0;
  double min_quality_ratio_ = 0.0;

  /// Created iff options_.tracing; shared with bound streams so refresh
  /// traces land next to request traces.
  std::shared_ptr<TraceSink> trace_sink_;

  /// Declared last: destroyed first, so workers drain while the caches and
  /// tables above are still alive.
  ThreadPool pool_;
};

}  // namespace subtab::service

#endif  // SUBTAB_SERVICE_ENGINE_H_
