#ifndef SUBTAB_SERVICE_ENGINE_H_
#define SUBTAB_SERVICE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "subtab/core/fingerprint.h"
#include "subtab/core/subtab.h"
#include "subtab/service/model_registry.h"
#include "subtab/service/selection_cache.h"
#include "subtab/stream/stream_session.h"
#include "subtab/util/thread_pool.h"

/// \file engine.h
/// The concurrent sub-table serving engine — the multi-tenant front door of
/// the library. The paper splits SubTab into a one-off pre-processing phase
/// and a cheap per-display selection phase (Sec. 5.1, Fig. 9); the engine
/// turns that split into a server architecture:
///
///   RegisterTable ── ModelRegistry ── one shared fit per (table, config),
///                                     LRU-evicted, optionally disk-backed
///   RegisterStream ─ StreamSession ── append-mostly tables: versions are
///                                     registry entries (fp, config, version)
///   SubmitSelect ─── SelectionCache ── repeated displays are cache hits
///                └── in-flight dedup ── identical concurrent requests run once
///                └── ThreadPool ─────── everything else fans out to workers
///
/// Results are bit-identical to the serial SubTab::SelectForQuery path: the
/// workers call exactly that method on the shared immutable model (see the
/// thread-safety contract in core/subtab.h), and caching only memoizes a
/// deterministic function of (model, query, k, l, seed).
///
/// Streaming tables (stream/): Append ingests a batch through the bound
/// StreamSession — fold-in / incremental epochs / full refit per its
/// refresh policy — then atomically republishes the id at the new version.
/// In-flight selects finish against the version they started on; the
/// superseded version's selection-cache entries are invalidated, every
/// other table's stay warm.
///
/// Future scaling seams (see ROADMAP.md): the registry generalizes to a
/// shard-per-node map, SubmitSelect to an async RPC, the pool to per-tenant
/// queues with admission control.

namespace subtab::service {

/// One display request against a registered table. Empty query = whole
/// table; k/l/seed default to the registered config.
struct SelectRequest {
  std::string table_id;
  SpQuery query;
  std::optional<size_t> k;
  std::optional<size_t> l;
  std::optional<uint64_t> seed;
};

/// Outcome of one request. `view` is set iff `status.ok()`; it is shared
/// with the selection cache, so treat it as immutable.
struct SelectResponse {
  Status status;
  std::shared_ptr<const SubTabView> view;
  bool from_cache = false;
};

struct EngineOptions {
  /// Worker threads executing selections (0 = HardwareThreads()).
  size_t num_threads = 0;
  /// Resident fitted models (one per distinct table x config).
  size_t model_capacity = 16;
  /// Cached selection results across all tables.
  size_t selection_cache_capacity = 4096;
  size_t cache_shards = 8;
  /// Forwarded to ModelRegistryOptions::persist_dir.
  std::string persist_dir;
};

/// Refresh activity across every stream bound to the engine (aggregated
/// from stream::StreamStats, deduplicated when one stream serves many ids).
struct StreamingStats {
  size_t streams = 0;
  uint64_t appends = 0;
  uint64_t rows_appended = 0;
  uint64_t fold_ins = 0;
  uint64_t incremental_refreshes = 0;
  uint64_t full_refits = 0;
  double fold_in_seconds = 0.0;
  double incremental_seconds = 0.0;
  double refit_seconds = 0.0;
  /// Selection-cache entries dropped when a version was superseded.
  uint64_t cache_invalidations = 0;
};

/// Resident-table accounting across every model and stream bound to the
/// engine. `logical_bytes` counts each binding's table independently — what
/// the pre-chunking design kept resident (every SubTab owned its own copy of
/// the table, so a stream's live version was resident twice: once in the
/// snapshot, once in the model). `resident_bytes` deduplicates shared Table
/// objects and shared chunks across versions, so `shared_saved_bytes =
/// logical - resident` is the double-residency the zero-copy snapshot path
/// eliminated. Registry-cached models not currently bound to an id are not
/// walked (they are LRU-bounded and share chunks the same way).
struct MemoryStats {
  size_t tables = 0;  ///< Distinct Table objects referenced by bindings.
  size_t chunks = 0;  ///< Distinct chunks across those tables.
  uint64_t logical_bytes = 0;
  uint64_t resident_bytes = 0;
  uint64_t shared_saved_bytes = 0;
};

/// Counter snapshot for introspection / load-shedding decisions.
struct EngineStats {
  ModelRegistryStats registry;
  CacheCounters selection_cache;
  StreamingStats streaming;
  MemoryStats memory;
  uint64_t requests_submitted = 0;
  uint64_t requests_completed = 0;
  uint64_t requests_failed = 0;
  /// Requests that attached to an identical in-flight computation.
  uint64_t requests_coalesced = 0;
  size_t num_threads = 0;
  size_t queue_depth = 0;
  size_t tables = 0;

  /// One-line JSON rendering of every counter — the machine-readable form
  /// emitted by serving_demo and the bench harnesses (bench_common.h's
  /// "json |" convention) and by any ops endpoint that scrapes the engine.
  std::string ToJson() const;
};

class ServingEngine {
 public:
  explicit ServingEngine(EngineOptions options = {});
  /// Completes all outstanding requests, then stops the workers.
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Binds `table_id` to a fitted model, fitting (or fetching from the
  /// registry / disk) as needed; the table is only copied when a fit/load
  /// actually happens. Blocking; typically called at session start.
  /// Re-registering an id atomically swaps the binding.
  Status RegisterTable(const std::string& table_id, const Table& table,
                       SubTabConfig config);

  /// Binds `table_id` to an append-mostly stream (stream/stream_session.h):
  /// the id serves the stream's latest version, starting from its current
  /// model. Appends go through Append() below; a stream may be bound under
  /// several ids (all republished on append).
  Status RegisterStream(const std::string& table_id,
                        std::shared_ptr<stream::StreamSession> stream);

  /// Ingests one batch into the stream bound to `table_id` and republishes
  /// every id bound to that stream at the new version. Selects submitted
  /// before the republish complete against the version they resolved;
  /// selects after it see the new rows. Returns the stream's refresh
  /// outcome (which maintenance level ran, and its cost).
  Result<stream::RefreshEvent> Append(const std::string& table_id,
                                      const Table& batch);

  /// The model behind an id (nullptr if unregistered). Shared and immutable.
  std::shared_ptr<const SubTab> GetModel(const std::string& table_id) const;

  /// Enqueues a request; the future resolves when a worker (or the cache)
  /// has produced the response. Identical in-flight requests are deduped
  /// onto one computation; repeated requests hit the selection cache.
  std::shared_future<SelectResponse> SubmitSelect(const SelectRequest& request);

  /// Convenience: SubmitSelect + wait. Do not call from a worker task.
  SelectResponse Select(const SelectRequest& request);

  /// Blocks until every submitted request has completed.
  void Drain();

  EngineStats Stats() const;

  /// Test-only: enqueues an opaque task on the worker pool, letting tests
  /// hold workers busy deterministically (e.g. to pin requests in flight).
  void SubmitBarrierTaskForTesting(std::function<void()> task);

 private:
  struct TableEntry {
    std::shared_ptr<const SubTab> model;
    /// Registry key of `model`; key.Digest() is the selection-cache
    /// model_digest.
    ModelKey key;
    uint64_t model_digest = 0;
    /// Set when the id is bound to a stream; key.version orders republishes
    /// so a slow appender can never roll an id back to an older version.
    std::shared_ptr<stream::StreamSession> stream;
  };

  /// Cache/dedup identity of a request against a resolved table entry.
  SelectionKey KeyFor(const TableEntry& entry, const SelectRequest& request) const;

  /// Runs on a worker: query + selection, fills the cache, resolves waiters.
  void Execute(const SelectionKey& key, std::shared_ptr<const SubTab> model,
               const SelectRequest& request);

  const EngineOptions options_;
  ModelRegistry registry_;
  SelectionCache selection_cache_;

  mutable std::shared_mutex tables_mu_;
  std::unordered_map<std::string, TableEntry> tables_;

  /// One in-flight computation: the promise its worker resolves, the shared
  /// future every duplicate submitter receives, and how many duplicates
  /// attached (their completion is accounted when the computation resolves).
  struct InFlight {
    std::shared_ptr<std::promise<SelectResponse>> promise;
    std::shared_future<SelectResponse> future;
    uint64_t coalesced_waiters = 0;
  };

  std::mutex inflight_mu_;
  std::unordered_map<uint64_t, InFlight> inflight_;

  std::atomic<uint64_t> requests_submitted_{0};
  std::atomic<uint64_t> requests_completed_{0};
  std::atomic<uint64_t> requests_failed_{0};
  std::atomic<uint64_t> requests_coalesced_{0};
  std::atomic<uint64_t> cache_invalidations_{0};

  /// Declared last: destroyed first, so workers drain while the caches and
  /// tables above are still alive.
  ThreadPool pool_;
};

}  // namespace subtab::service

#endif  // SUBTAB_SERVICE_ENGINE_H_
