#ifndef SUBTAB_SERVICE_LRU_CACHE_H_
#define SUBTAB_SERVICE_LRU_CACHE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "subtab/util/check.h"
#include "subtab/util/hash.h"

/// \file lru_cache.h
/// Sharded, thread-safe LRU cache — the storage primitive behind both the
/// model registry and the selection cache. Keys hash to one of `num_shards`
/// independent shards, each guarded by its own mutex, so concurrent lookups
/// of unrelated keys never contend. Values are shared_ptr so a hit stays
/// valid after a concurrent eviction. Counters (hits / misses / evictions)
/// are process-lifetime atomics, aggregated across shards.

namespace subtab::service {

/// Running counters of one cache. Snapshot via Stats().
struct CacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
};

/// K must be equality-comparable; KeyHash must be a stable 64-bit hasher
/// (struct with `uint64_t operator()(const K&) const`).
template <typename K, typename V, typename KeyHash>
class ShardedLruCache {
 public:
  /// `capacity` is the total entry budget, split evenly over `num_shards`
  /// (each shard holds at least one entry).
  explicit ShardedLruCache(size_t capacity, size_t num_shards = 8)
      : per_shard_capacity_(
            std::max<size_t>(1, capacity / std::max<size_t>(1, num_shards))),
        shards_(std::max<size_t>(1, num_shards)) {
    SUBTAB_CHECK(capacity >= 1);
  }

  /// Returns the cached value and refreshes recency, or nullptr on miss.
  std::shared_ptr<const V> Get(const K& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->second;
  }

  /// Inserts (or replaces) a value, evicting the least-recent entry of the
  /// key's shard when over budget. Returns the stored pointer.
  std::shared_ptr<const V> Put(const K& key, std::shared_ptr<const V> value) {
    SUBTAB_CHECK(value != nullptr);
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(value);
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      return it->second->second;
    }
    shard.order.emplace_front(key, std::move(value));
    shard.index.emplace(key, shard.order.begin());
    insertions_.fetch_add(1, std::memory_order_relaxed);
    if (shard.order.size() > per_shard_capacity_) {
      shard.index.erase(shard.order.back().first);
      shard.order.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    return shard.order.front().second;
  }

  /// True iff the key is resident (does not touch recency or counters).
  bool Contains(const K& key) const {
    const Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.index.count(key) > 0;
  }

  size_t size() const {
    size_t n = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      n += shard.order.size();
    }
    return n;
  }

  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.order.clear();
      shard.index.clear();
    }
  }

  /// Erases one key; returns whether it was resident. Not counted as an
  /// eviction: the entry was invalidated, not displaced by capacity.
  bool Erase(const K& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) return false;
    shard.order.erase(it->second);
    shard.index.erase(it);
    return true;
  }

  /// Erases every entry whose key satisfies `pred`; returns the count.
  /// O(entries) across all shards — meant for rare, targeted invalidation
  /// (a streaming table superseding a version), not steady-state traffic.
  /// Not counted as evictions: these entries were invalidated, not
  /// displaced by capacity.
  template <typename Pred>
  size_t EraseIf(Pred pred) {
    size_t erased = 0;
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (auto it = shard.order.begin(); it != shard.order.end();) {
        if (pred(it->first)) {
          shard.index.erase(it->first);
          it = shard.order.erase(it);
          ++erased;
        } else {
          ++it;
        }
      }
    }
    return erased;
  }

  CacheCounters Stats() const {
    CacheCounters c;
    c.hits = hits_.load(std::memory_order_relaxed);
    c.misses = misses_.load(std::memory_order_relaxed);
    c.insertions = insertions_.load(std::memory_order_relaxed);
    c.evictions = evictions_.load(std::memory_order_relaxed);
    c.entries = size();
    return c;
  }

  size_t num_shards() const { return shards_.size(); }
  size_t per_shard_capacity() const { return per_shard_capacity_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recent. Stable iterators, so index can point into it.
    std::list<std::pair<K, std::shared_ptr<const V>>> order;
    std::unordered_map<K, typename decltype(order)::iterator, KeyHash> index;
  };

  Shard& ShardFor(const K& key) {
    return shards_[KeyHash{}(key) % shards_.size()];
  }
  const Shard& ShardFor(const K& key) const {
    return shards_[KeyHash{}(key) % shards_.size()];
  }

  const size_t per_shard_capacity_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace subtab::service

#endif  // SUBTAB_SERVICE_LRU_CACHE_H_
