#include "subtab/service/model_registry.h"

#include <condition_variable>
#include <filesystem>

#include "subtab/core/model_io.h"
#include "subtab/util/logging.h"
#include "subtab/util/string_util.h"

namespace subtab::service {

/// One in-flight fit that late arrivals block on (single-flight).
struct ModelRegistry::InFlight {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status status;
  std::shared_ptr<const SubTab> model;
};

ModelRegistry::ModelRegistry(ModelRegistryOptions options)
    : options_(std::move(options)),
      cache_(options_.capacity, options_.num_shards) {}

Result<std::shared_ptr<const SubTab>> ModelRegistry::GetOrFit(
    const Table& table, const SubTabConfig& config) {
  return GetOrFitKeyed(MakeModelKey(table, config), table, config);
}

Result<std::shared_ptr<const SubTab>> ModelRegistry::GetOrFitKeyed(
    const ModelKey& key, const Table& table, const SubTabConfig& config) {
  if (std::shared_ptr<const SubTab> model = cache_.Get(key)) {
    return model;
  }

  std::shared_ptr<InFlight> slot;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(key.Digest());
    if (it != inflight_.end()) {
      slot = it->second;
    } else {
      slot = std::make_shared<InFlight>();
      inflight_.emplace(key.Digest(), slot);
      owner = true;
    }
  }

  if (!owner) {
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(slot->mu);
    slot->cv.wait(lock, [&slot] { return slot->done; });
    if (!slot->status.ok()) return slot->status;
    return slot->model;
  }

  // Re-check the cache after winning ownership: another owner may have
  // finished (Put + slot erase) between our cache miss and our insert, and
  // re-running Build would duplicate the whole pre-processing pass.
  Result<std::shared_ptr<const SubTab>> built = [&] {
    if (std::shared_ptr<const SubTab> cached = cache_.Get(key)) {
      return Result<std::shared_ptr<const SubTab>>(std::move(cached));
    }
    return Build(key, table, config);
  }();
  if (built.ok()) cache_.Put(key, *built);
  {
    std::lock_guard<std::mutex> lock(slot->mu);
    slot->done = true;
    if (built.ok()) {
      slot->model = *built;
    } else {
      slot->status = built.status();
    }
  }
  slot->cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(key.Digest());
  }
  return built;
}

std::shared_ptr<const SubTab> ModelRegistry::Peek(const ModelKey& key) {
  return cache_.Get(key);
}

void ModelRegistry::Publish(const ModelKey& key,
                            std::shared_ptr<const SubTab> model) {
  cache_.Put(key, std::move(model));
}

bool ModelRegistry::Erase(const ModelKey& key) { return cache_.Erase(key); }

ModelRegistryStats ModelRegistry::Stats() const {
  ModelRegistryStats stats;
  stats.cache = cache_.Stats();
  stats.loads = loads_.load(std::memory_order_relaxed);
  stats.fits = fits_.load(std::memory_order_relaxed);
  stats.coalesced = coalesced_.load(std::memory_order_relaxed);
  return stats;
}

Result<std::shared_ptr<const SubTab>> ModelRegistry::Build(
    const ModelKey& key, const Table& table, const SubTabConfig& config) {
  // One shared copy for whatever model we build: the copy shares the
  // caller's chunks, and the model holds the shared table rather than its
  // own duplicate.
  auto shared = std::make_shared<const Table>(table);
  const std::string path = ArtifactPath(key);
  if (!path.empty() && std::filesystem::exists(path)) {
    Result<PreprocessedTable> pre = LoadModel(*shared, path);
    if (pre.ok()) {
      Result<SubTab> model =
          SubTab::FromPreprocessed(shared, config, std::move(*pre));
      if (model.ok()) {
        loads_.fetch_add(1, std::memory_order_relaxed);
        return std::make_shared<const SubTab>(std::move(*model));
      }
    }
    SUBTAB_LOG_STREAM(Warning)
        << "stale model artifact " << path << "; re-fitting";
  }

  Result<SubTab> fitted = SubTab::Fit(shared, config);
  if (!fitted.ok()) return fitted.status();
  fits_.fetch_add(1, std::memory_order_relaxed);
  auto model = std::make_shared<const SubTab>(std::move(*fitted));
  if (!path.empty()) {
    const Status saved = SaveModel(model->preprocessed(), model->table(), path);
    if (!saved.ok()) {
      SUBTAB_LOG_STREAM(Warning)
          << "could not persist model to " << path << ": " << saved.ToString();
    }
  }
  return model;
}

std::string ModelRegistry::ArtifactPath(const ModelKey& key) const {
  if (options_.persist_dir.empty()) return "";
  return options_.persist_dir +
         StrFormat("/subtab-%016llx.stm",
                   static_cast<unsigned long long>(key.Digest()));
}

}  // namespace subtab::service
