#ifndef SUBTAB_SERVICE_MODEL_REGISTRY_H_
#define SUBTAB_SERVICE_MODEL_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "subtab/core/fingerprint.h"
#include "subtab/core/subtab.h"
#include "subtab/service/lru_cache.h"

/// \file model_registry.h
/// Cross-session reuse of fitted models. The paper's architecture runs
/// pre-processing once per table and serves every display from the cached
/// artifact (Fig. 1); the registry extends that to a multi-tenant server:
/// fitted SubTab instances live in a sharded LRU keyed by
/// (table fingerprint, config fingerprint), so N concurrent sessions opening
/// the same table share ONE pre-processing pass. An optional persistence
/// directory plugs in core/model_io: a fingerprint-named artifact is loaded
/// on a memory miss (milliseconds) and written after a fresh fit, extending
/// the amortization across process restarts.
///
/// Concurrent GetOrFit calls for the same key are single-flighted: one
/// caller fits, the rest block on the same in-flight slot and share the
/// result instead of duplicating minutes of training.

namespace subtab::service {

struct ModelRegistryOptions {
  /// Maximum resident fitted models (across all shards).
  size_t capacity = 16;
  size_t num_shards = 4;
  /// When non-empty, models persist as <dir>/subtab-<digest>.stm via
  /// core/model_io (created lazily; must already exist as a directory).
  std::string persist_dir;
};

/// Counters of registry traffic. `hits`/`misses`/`evictions` describe the
/// in-memory LRU; `loads` and `fits` split the misses into disk-restores and
/// fresh pre-processing passes; `coalesced` counts callers that piggybacked
/// on another caller's in-flight fit.
struct ModelRegistryStats {
  CacheCounters cache;
  uint64_t loads = 0;
  uint64_t fits = 0;
  uint64_t coalesced = 0;
};

class ModelRegistry {
 public:
  explicit ModelRegistry(ModelRegistryOptions options = {});

  /// Returns the fitted model for (table, config), fitting (or loading from
  /// the persistence dir) on first use. The returned instance is shared and
  /// immutable; callers may Select on it concurrently. `table` is copied
  /// into the model only when a fit/load actually happens.
  Result<std::shared_ptr<const SubTab>> GetOrFit(const Table& table,
                                                 const SubTabConfig& config);

  /// As GetOrFit, but with a precomputed key (avoids re-fingerprinting when
  /// the caller already knows it).
  Result<std::shared_ptr<const SubTab>> GetOrFitKeyed(const ModelKey& key,
                                                      const Table& table,
                                                      const SubTabConfig& config);

  /// Resident model lookup without fitting; nullptr when absent.
  std::shared_ptr<const SubTab> Peek(const ModelKey& key);

  /// Inserts an externally fitted model under `key` — the streaming path:
  /// a StreamSession maintains its model incrementally and publishes each
  /// version under its (chained fp, config fp, version) key, so concurrent
  /// sessions of the same stream share versions exactly like static tables
  /// share fits. Not persisted to disk: a version is superseded within
  /// seconds, unlike the minutes-long fits the artifact store amortizes.
  void Publish(const ModelKey& key, std::shared_ptr<const SubTab> model);

  /// Removes a published entry (a stream version that was superseded), so
  /// dead versions do not churn the LRU and pin full model copies. Returns
  /// whether the key was resident. In-flight selects keep their shared_ptr.
  bool Erase(const ModelKey& key);

  ModelRegistryStats Stats() const;

 private:
  struct KeyHasher {
    uint64_t operator()(const ModelKey& key) const { return key.Digest(); }
  };
  struct InFlight;

  /// Fit or disk-load outside any lock; returns the finished model.
  Result<std::shared_ptr<const SubTab>> Build(const ModelKey& key,
                                              const Table& table,
                                              const SubTabConfig& config);

  std::string ArtifactPath(const ModelKey& key) const;

  const ModelRegistryOptions options_;
  ShardedLruCache<ModelKey, SubTab, KeyHasher> cache_;

  std::mutex inflight_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<InFlight>> inflight_;

  std::atomic<uint64_t> loads_{0};
  std::atomic<uint64_t> fits_{0};
  std::atomic<uint64_t> coalesced_{0};
};

}  // namespace subtab::service

#endif  // SUBTAB_SERVICE_MODEL_REGISTRY_H_
