#include "subtab/service/selection_cache.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "subtab/util/hash.h"
#include "subtab/util/string_util.h"

namespace subtab::service {

namespace {

// Length-prefixed string: immune to delimiter/quote characters appearing in
// column names or (user-data) literals.
void AppendString(std::string* out, const std::string& s) {
  *out += StrFormat("%zu:", s.size());
  *out += s;
}

// One predicate, losslessly: numeric literals are encoded as their exact
// bit pattern (Predicate::ToString rounds for display, which would collide
// distinct thresholds onto one cache key).
std::string EncodePredicate(const Predicate& p) {
  std::string out;
  AppendString(&out, p.column);
  out += StrFormat("|%d|", static_cast<int>(p.op));
  if (p.literal_is_numeric) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(p.num_literal));
    std::memcpy(&bits, &p.num_literal, sizeof(bits));
    out += StrFormat("n%016llx", static_cast<unsigned long long>(bits));
  } else {
    out += 's';
    AppendString(&out, p.str_literal);
  }
  return out;
}

}  // namespace

std::string NormalizedQueryKey(const SpQuery& query) {
  std::vector<std::string> conjuncts;
  conjuncts.reserve(query.filters.size());
  for (const Predicate& p : query.filters) conjuncts.push_back(EncodePredicate(p));
  std::sort(conjuncts.begin(), conjuncts.end());
  // Conjunction is idempotent as well as commutative: "a AND a" keeps
  // exactly "a"'s rows (RunQuery ANDs per-row masks), so repeated identical
  // conjuncts must share one cache key — a drill-down session re-applying
  // its current filter must hit, not rescan.
  conjuncts.erase(std::unique(conjuncts.begin(), conjuncts.end()),
                  conjuncts.end());

  std::string key = "where{";
  for (const std::string& c : conjuncts) AppendString(&key, c);
  key += "} project{";
  for (const std::string& p : query.projection) AppendString(&key, p);
  key += '}';
  if (!query.order_by.empty()) {
    key += query.descending ? " order_desc{" : " order_asc{";
    AppendString(&key, query.order_by);
    key += '}';
  }
  if (query.limit > 0) key += StrFormat(" limit{%zu}", query.limit);
  return key;
}

uint64_t SelectionKeyHasher::operator()(const SelectionKey& key) const {
  uint64_t h = HashString(key.query);
  h = HashCombine(h, key.model_digest);
  h = HashCombine(h, key.k);
  h = HashCombine(h, key.l);
  h = HashCombine(h, key.seed);
  return h;
}

}  // namespace subtab::service
