#include "subtab/service/selection_cache.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "subtab/util/hash.h"
#include "subtab/util/string_util.h"

namespace subtab::service {

namespace {

// Length-prefixed string: immune to delimiter/quote characters appearing in
// column names or (user-data) literals.
void AppendString(std::string* out, const std::string& s) {
  *out += StrFormat("%zu:", s.size());
  *out += s;
}

// One predicate, losslessly: numeric literals are encoded as their exact
// bit pattern (Predicate::ToString rounds for display, which would collide
// distinct thresholds onto one cache key).
std::string EncodePredicate(const Predicate& p) {
  std::string out;
  AppendString(&out, p.column);
  out += StrFormat("|%d|", static_cast<int>(p.op));
  if (p.literal_is_numeric) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(p.num_literal));
    std::memcpy(&bits, &p.num_literal, sizeof(bits));
    out += StrFormat("n%016llx", static_cast<unsigned long long>(bits));
  } else {
    out += 's';
    AppendString(&out, p.str_literal);
  }
  return out;
}

}  // namespace

std::string NormalizedFilterKey(const std::vector<Predicate>& filters) {
  // Canonicalize first: redundant numeric bounds on one column merge to the
  // tightest ("a >= 1 AND a >= 2" and "a >= 2" select identical rows and
  // must share a key — a drill-down session tightening a threshold it
  // already applied must hit, not rescan).
  const std::vector<Predicate> canonical = CanonicalConjuncts(filters);
  std::vector<std::string> conjuncts;
  conjuncts.reserve(canonical.size());
  for (const Predicate& p : canonical) conjuncts.push_back(EncodePredicate(p));
  std::sort(conjuncts.begin(), conjuncts.end());
  // Conjunction is idempotent as well as commutative: "a AND a" keeps
  // exactly "a"'s rows (RunQuery ANDs per-row masks), so repeated identical
  // conjuncts must share one cache key.
  conjuncts.erase(std::unique(conjuncts.begin(), conjuncts.end()),
                  conjuncts.end());

  std::string key = "where{";
  for (const std::string& c : conjuncts) AppendString(&key, c);
  key += '}';
  return key;
}

std::string NormalizedQueryKey(const SpQuery& query) {
  std::string key = NormalizedFilterKey(query.filters);
  key += " project{";
  for (const std::string& p : query.projection) AppendString(&key, p);
  key += '}';
  if (!query.order_by.empty()) {
    key += query.descending ? " order_desc{" : " order_asc{";
    AppendString(&key, query.order_by);
    key += '}';
  }
  if (query.limit > 0) key += StrFormat(" limit{%zu}", query.limit);
  return key;
}

void ScopeIndex::Insert(uint64_t model_digest, const SpQuery& query,
                        std::shared_ptr<const std::vector<size_t>> rows) {
  SUBTAB_CHECK(Indexable(query));
  SUBTAB_CHECK(rows != nullptr);
  // A single scope exceeding the whole row budget is never indexed: its
  // memory cost (row ids can approach table size) outweighs any reuse.
  if (per_model_row_budget_ > 0 && rows->size() > per_model_row_budget_) {
    return;
  }
  std::string filter_key = NormalizedFilterKey(query.filters);
  auto entry = std::make_shared<const Entry>(
      Entry{filter_key, query, std::move(rows)});
  std::lock_guard<std::mutex> lock(mu_);
  PerModel& bucket = models_[model_digest];
  auto it = bucket.by_filter.find(filter_key);
  if (it != bucket.by_filter.end()) {
    // Equivalent conjunction already indexed (e.g. the same drill-down
    // reached via reordered filters): refresh recency, keep one entry.
    // Entries are immutable once published (concurrent probes hold
    // snapshots), so replace the pointer rather than mutating.
    bucket.total_rows -= (*it->second)->rows->size();
    bucket.total_rows += entry->rows->size();
    *it->second = std::move(entry);
    bucket.order.splice(bucket.order.begin(), bucket.order, it->second);
    return;
  }
  bucket.total_rows += entry->rows->size();
  bucket.order.push_front(std::move(entry));
  bucket.by_filter.emplace(bucket.order.front()->filter_key,
                           bucket.order.begin());
  while (bucket.order.size() > 1 &&
         (bucket.order.size() > per_model_capacity_ ||
          (per_model_row_budget_ > 0 &&
           bucket.total_rows > per_model_row_budget_))) {
    bucket.total_rows -= bucket.order.back()->rows->size();
    bucket.by_filter.erase(bucket.order.back()->filter_key);
    bucket.order.pop_back();
  }
}

std::optional<AncestorScope> ScopeIndex::FindAncestor(
    uint64_t model_digest, const SpQuery& query) const {
  // Snapshot the candidates under the lock, run the containment reasoning
  // outside it: probes happen on every cache miss across all workers, and
  // QueryContains is pure CPU — holding mu_ through it would serialize
  // unrelated tables' scans. The shared rows pointers keep a concurrent
  // eviction from invalidating anything we copied.
  std::vector<std::shared_ptr<const Entry>> candidates;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto model_it = models_.find(model_digest);
    if (model_it == models_.end()) return std::nullopt;
    candidates.assign(model_it->second.order.begin(),
                      model_it->second.order.end());
  }
  const Entry* best = nullptr;
  for (const auto& candidate : candidates) {
    if (best != nullptr && candidate->rows->size() >= best->rows->size()) {
      continue;
    }
    if (QueryContains(candidate->query, query)) best = candidate.get();
  }
  if (best == nullptr) return std::nullopt;
  {
    // A hit refreshes recency: a drill-down session's root scope is its
    // most-reused entry, and without the touch it would age out while its
    // one-off descendants crowd the LRU. Re-looked-up by key — the entry
    // may have been evicted or replaced since the snapshot, which is fine.
    std::lock_guard<std::mutex> lock(mu_);
    auto model_it = models_.find(model_digest);
    if (model_it != models_.end()) {
      auto it = model_it->second.by_filter.find(best->filter_key);
      if (it != model_it->second.by_filter.end()) {
        model_it->second.order.splice(model_it->second.order.begin(),
                                      model_it->second.order, it->second);
      }
    }
  }
  AncestorScope ancestor;
  ancestor.query = best->query;
  ancestor.rows = best->rows;
  return ancestor;
}

size_t ScopeIndex::InvalidateModel(uint64_t model_digest) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(model_digest);
  if (it == models_.end()) return 0;
  const size_t dropped = it->second.order.size();
  models_.erase(it);
  return dropped;
}

size_t ScopeIndex::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [digest, bucket] : models_) n += bucket.order.size();
  return n;
}

void ScopeIndex::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  models_.clear();
}

uint64_t SelectionKeyHasher::operator()(const SelectionKey& key) const {
  uint64_t h = HashString(key.query);
  h = HashCombine(h, key.model_digest);
  h = HashCombine(h, key.k);
  h = HashCombine(h, key.l);
  h = HashCombine(h, key.seed);
  return h;
}

}  // namespace subtab::service
