#ifndef SUBTAB_SERVICE_SELECTION_CACHE_H_
#define SUBTAB_SERVICE_SELECTION_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "subtab/core/subtab.h"
#include "subtab/service/lru_cache.h"
#include "subtab/table/query.h"

/// \file selection_cache.h
/// Memoization of the selection phase, in two tiers.
///
/// Tier 1 — exact match: selection is deterministic for a fixed (model,
/// scope, k, l, seed) — see SubTab's thread-safety contract — so a repeated
/// display request (the common case in dashboards and shared EDA sessions:
/// many analysts looking at the same drill-down) is served straight from
/// cache, skipping clustering AND query execution entirely.
///
/// Keys are (model digest, normalized query, k, l, seed). Normalization
/// sorts the filter conjuncts, drops repeated identical ones, and merges
/// redundant numeric bounds on one column to the tightest
/// (CanonicalConjuncts: "a >= 1 AND a >= 2" keys as "a >= 2") — conjunction
/// is commutative and idempotent, and RunQuery preserves input row order
/// regardless of predicate order or multiplicity — while projection,
/// ordering and limit stay verbatim since they affect the visible scope.
///
/// Tier 2 — containment: drill-down sessions issue chains of progressively
/// narrower queries, so an exact-match miss usually has a cached ANCESTOR —
/// a previously resolved query whose row set provably contains the new
/// query's (QueryContains, table/query.h). The per-model ScopeIndex keeps
/// recently resolved filter scopes; on a tier-1 miss the engine probes it
/// for the nearest (smallest) containing ancestor and re-scans only that
/// ancestor's rows (RestrictQueryScope) instead of the whole table. Results
/// stay bit-identical — containment changes where the scan LOOKS, never
/// what it finds.

namespace subtab::service {

/// Cache key for one selection request.
struct SelectionKey {
  uint64_t model_digest = 0;
  std::string query;  ///< NormalizedQueryKey(query).
  size_t k = 0;
  size_t l = 0;
  uint64_t seed = 0;

  bool operator==(const SelectionKey& other) const {
    return model_digest == other.model_digest && k == other.k && l == other.l &&
           seed == other.seed && query == other.query;
  }
};

/// Canonical string form of an SP query for cache keying: redundant numeric
/// bounds merged per column (CanonicalConjuncts), conjuncts sorted
/// lexicographically and deduplicated, projection/order/limit verbatim.
std::string NormalizedQueryKey(const SpQuery& query);

/// The filter-conjunction part of NormalizedQueryKey alone — the ScopeIndex
/// bucket key: two queries with one canonical conjunction resolve one scope,
/// whatever their projection/order/limit.
std::string NormalizedFilterKey(const std::vector<Predicate>& filters);

struct SelectionKeyHasher {
  uint64_t operator()(const SelectionKey& key) const;
};

/// One memoized outcome. Deterministic errors (e.g. "query returned no
/// rows") are as cacheable as views: both are pure functions of the key.
struct CachedSelection {
  Status status;
  std::shared_ptr<const SubTabView> view;  ///< Set iff status.ok().
};

/// A containment-index hit: the ancestor's query (for ExtraConjuncts) and
/// its resolved rows, shared so concurrent restricted scans and index
/// eviction never copy or race.
struct AncestorScope {
  SpQuery query;
  std::shared_ptr<const std::vector<size_t>> rows;
};

/// Per-model index of resolved filter scopes for containment reuse. Only
/// ORDER-FREE, LIMIT-FREE queries are indexable: their row ids are in
/// ascending source order, the precondition for bit-identical restriction
/// (RestrictQueryScope). Each model's bucket is LRU-bounded; probing scans
/// the bucket (O(bucket) QueryContains checks — buckets are small by
/// construction) and returns the smallest containing scope, the one that
/// shrinks the restricted scan the most.
class ScopeIndex {
 public:
  /// `per_model_row_budget` bounds the MEMORY of a model's bucket: indexed
  /// row-id vectors can approach table size, so an entry count alone could
  /// pin count x table_rows ids. Entries are LRU-evicted past either
  /// bound, and a single scope larger than the whole budget is not indexed
  /// at all (0 = unbounded rows).
  explicit ScopeIndex(size_t per_model_capacity = 32,
                      size_t per_model_row_budget = 1u << 20)
      : per_model_capacity_(per_model_capacity == 0 ? 1 : per_model_capacity),
        per_model_row_budget_(per_model_row_budget) {}

  /// True iff `query`'s resolved scope may be indexed AND later restricted:
  /// no ordering, no limit (projection is fine — it never affects rows).
  static bool Indexable(const SpQuery& query) {
    return query.order_by.empty() && query.limit == 0;
  }

  /// Records a resolved scope (call only for Indexable queries with the
  /// rows in ascending source order). Re-inserting an equivalent filter set
  /// refreshes recency and replaces the rows.
  void Insert(uint64_t model_digest, const SpQuery& query,
              std::shared_ptr<const std::vector<size_t>> rows);

  /// The smallest indexed scope proven to contain `query`'s rows, or
  /// nullopt. The child query may carry order_by/limit/projection — those
  /// are applied by the restricted scan, not proven by containment.
  std::optional<AncestorScope> FindAncestor(uint64_t model_digest,
                                            const SpQuery& query) const;

  /// Drops every scope of one model version; returns how many were dropped.
  size_t InvalidateModel(uint64_t model_digest);

  size_t entries() const;
  void Clear();

 private:
  struct Entry {
    std::string filter_key;  ///< Canonical filter conjunction (keying only).
    SpQuery query;
    std::shared_ptr<const std::vector<size_t>> rows;
  };
  /// Entries are shared and immutable once published, so FindAncestor's
  /// snapshot copies refcounted pointers — not queries and key strings —
  /// on every probe (one per tier-1 miss); a refresh replaces the pointer.
  /// Front = most recent. Stable iterators, so the index can point into it.
  struct PerModel {
    std::list<std::shared_ptr<const Entry>> order;
    std::unordered_map<std::string,
                       std::list<std::shared_ptr<const Entry>>::iterator>
        by_filter;
    size_t total_rows = 0;  ///< Sum of rows->size() across entries.
  };

  const size_t per_model_capacity_;
  const size_t per_model_row_budget_;
  mutable std::mutex mu_;
  /// Mutable: FindAncestor is a logically-const probe but refreshes the
  /// matched entry's LRU recency (same pattern as ShardedLruCache::Get).
  mutable std::unordered_map<uint64_t, PerModel> models_;
};

/// The two-tier selection cache: exact-match LRU over full selection
/// outcomes, plus the per-model containment index over resolved scopes.
/// The tiers are keyed — and invalidated — independently: exact-tier
/// entries depend on the full model (the embedding re-trains across
/// background-refresh generations, so they key on the model digest, which
/// folds in ModelKey::refresh), while a resolved scope is a pure function
/// of (table content, filters) and survives refresh upgrades — callers key
/// the scope tier on a content digest (table fp, version) and sweep it
/// only when the CONTENT version is superseded (InvalidateScopes), not on
/// every republish (InvalidateModel).
class SelectionCache {
 public:
  explicit SelectionCache(size_t capacity, size_t num_shards = 8,
                          size_t scopes_per_model = 32,
                          size_t scope_rows_per_model = 1u << 20)
      : cache_(capacity, num_shards),
        scopes_(scopes_per_model, scope_rows_per_model) {}

  std::shared_ptr<const CachedSelection> Get(const SelectionKey& key) {
    return cache_.Get(key);
  }
  std::shared_ptr<const CachedSelection> Put(
      const SelectionKey& key, std::shared_ptr<const CachedSelection> outcome) {
    return cache_.Put(key, std::move(outcome));
  }

  /// Containment tier (see ScopeIndex), keyed by the caller's CONTENT
  /// digest. InsertScope ignores non-indexable queries, so callers can
  /// offer every resolved scope unconditionally.
  void InsertScope(uint64_t scope_digest, const SpQuery& query,
                   std::shared_ptr<const std::vector<size_t>> rows) {
    if (ScopeIndex::Indexable(query)) {
      scopes_.Insert(scope_digest, query, std::move(rows));
    }
  }
  std::optional<AncestorScope> FindAncestorScope(uint64_t scope_digest,
                                                 const SpQuery& query) const {
    return scopes_.FindAncestor(scope_digest, query);
  }
  size_t scope_entries() const { return scopes_.entries(); }

  /// Drops every memoized selection of one model publication; returns how
  /// many entries were dropped. Called whenever a streaming table
  /// republishes — new content version or refresh upgrade — since exact
  /// outcomes depend on the retrained embedding. Selections of other
  /// tables/publications stay warm.
  size_t InvalidateModel(uint64_t model_digest) {
    return cache_.EraseIf([model_digest](const SelectionKey& key) {
      return key.model_digest == model_digest;
    });
  }

  /// Drops every indexed scope of one content version; returns the count.
  /// Called only when the table CONTENT is superseded (a new version), not
  /// on refresh upgrades — scopes do not depend on the embedding.
  size_t InvalidateScopes(uint64_t scope_digest) {
    return scopes_.InvalidateModel(scope_digest);
  }

  void Clear() {
    cache_.Clear();
    scopes_.Clear();
  }
  CacheCounters Stats() const { return cache_.Stats(); }

 private:
  ShardedLruCache<SelectionKey, CachedSelection, SelectionKeyHasher> cache_;
  ScopeIndex scopes_;
};

}  // namespace subtab::service

#endif  // SUBTAB_SERVICE_SELECTION_CACHE_H_
