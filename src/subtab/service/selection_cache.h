#ifndef SUBTAB_SERVICE_SELECTION_CACHE_H_
#define SUBTAB_SERVICE_SELECTION_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "subtab/core/subtab.h"
#include "subtab/service/lru_cache.h"
#include "subtab/table/query.h"

/// \file selection_cache.h
/// Memoization of the selection phase. Selection is deterministic for a
/// fixed (model, scope, k, l, seed) — see SubTab's thread-safety contract —
/// so a repeated display request (the common case in dashboards and shared
/// EDA sessions: many analysts looking at the same drill-down) can be served
/// straight from cache, skipping clustering AND query execution entirely.
///
/// Keys are (model digest, normalized query, k, l, seed). Normalization
/// sorts the filter conjuncts and drops repeated identical ones —
/// conjunction is commutative and idempotent, and RunQuery preserves input
/// row order regardless of predicate order or multiplicity — while
/// projection, ordering and limit stay verbatim since they affect the
/// visible scope.

namespace subtab::service {

/// Cache key for one selection request.
struct SelectionKey {
  uint64_t model_digest = 0;
  std::string query;  ///< NormalizedQueryKey(query).
  size_t k = 0;
  size_t l = 0;
  uint64_t seed = 0;

  bool operator==(const SelectionKey& other) const {
    return model_digest == other.model_digest && k == other.k && l == other.l &&
           seed == other.seed && query == other.query;
  }
};

/// Canonical string form of an SP query for cache keying: filter conjuncts
/// sorted lexicographically and deduplicated, projection/order/limit
/// verbatim.
std::string NormalizedQueryKey(const SpQuery& query);

struct SelectionKeyHasher {
  uint64_t operator()(const SelectionKey& key) const;
};

/// One memoized outcome. Deterministic errors (e.g. "query returned no
/// rows") are as cacheable as views: both are pure functions of the key.
struct CachedSelection {
  Status status;
  std::shared_ptr<const SubTabView> view;  ///< Set iff status.ok().
};

/// Sharded LRU over selection outcomes.
class SelectionCache {
 public:
  explicit SelectionCache(size_t capacity, size_t num_shards = 8)
      : cache_(capacity, num_shards) {}

  std::shared_ptr<const CachedSelection> Get(const SelectionKey& key) {
    return cache_.Get(key);
  }
  std::shared_ptr<const CachedSelection> Put(
      const SelectionKey& key, std::shared_ptr<const CachedSelection> outcome) {
    return cache_.Put(key, std::move(outcome));
  }

  /// Drops every memoized selection of one model version; returns how many
  /// were dropped. Called when a streaming table republishes under a new
  /// version digest — only the superseded version's entries go, selections
  /// of other tables/versions stay warm.
  size_t InvalidateModel(uint64_t model_digest) {
    return cache_.EraseIf([model_digest](const SelectionKey& key) {
      return key.model_digest == model_digest;
    });
  }

  void Clear() { cache_.Clear(); }
  CacheCounters Stats() const { return cache_.Stats(); }

 private:
  ShardedLruCache<SelectionKey, CachedSelection, SelectionKeyHasher> cache_;
};

}  // namespace subtab::service

#endif  // SUBTAB_SERVICE_SELECTION_CACHE_H_
