#include "subtab/stream/refresh_policy.h"

namespace subtab::stream {

const char* RefreshActionName(RefreshAction action) {
  switch (action) {
    case RefreshAction::kFoldIn:
      return "fold_in";
    case RefreshAction::kIncremental:
      return "incremental";
    case RefreshAction::kFullRefit:
      return "full_refit";
  }
  return "unknown";
}

RefreshAction DecideRefresh(const RefreshPolicyOptions& options,
                            const DriftSnapshot& drift) {
  const double fitted = static_cast<double>(drift.fitted_rows);
  if (drift.rows_since_refit >= options.min_rows_for_drift &&
      (drift.out_of_range_rate > options.max_out_of_range_rate ||
       drift.new_category_rate > options.max_new_category_rate)) {
    return RefreshAction::kFullRefit;
  }
  if (fitted > 0.0 && static_cast<double>(drift.rows_since_refit) >
                          options.staleness_budget * fitted) {
    return RefreshAction::kFullRefit;
  }
  if (fitted > 0.0 && static_cast<double>(drift.rows_since_refresh) >
                          options.incremental_threshold * fitted) {
    return RefreshAction::kIncremental;
  }
  return RefreshAction::kFoldIn;
}

bool BackgroundLagExceeded(const RefreshPolicyOptions& options,
                           const DriftSnapshot& drift) {
  const double fitted = static_cast<double>(drift.fitted_rows);
  return fitted > 0.0 && static_cast<double>(drift.rows_since_refresh) >
                             options.max_background_lag * fitted;
}

RefreshAction EscalateRefresh(RefreshAction a, RefreshAction b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

}  // namespace subtab::stream
