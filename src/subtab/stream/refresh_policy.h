#ifndef SUBTAB_STREAM_REFRESH_POLICY_H_
#define SUBTAB_STREAM_REFRESH_POLICY_H_

#include <cstddef>
#include <cstdint>

/// \file refresh_policy.h
/// Per-batch embedding refresh decision. The paper's split (Algorithm 2)
/// pays pre-processing once and keeps every display cheap; a streaming
/// table must keep that amortization while the content moves underneath the
/// fitted model. Three escalating refresh levels trade freshness for cost:
///
///   kFoldIn       appended rows are tokenized against the frozen bin spec
///                 and reuse the existing token vectors — no training at
///                 all. Sound while new data looks like fit-time data.
///   kIncremental  a few SGNS epochs over sentences from the appended rows
///                 only (embed/word2vec ContinueTraining) nudge the
///                 embedding; cost scales with the delta, not the table.
///   kFullRefit    the bin spec itself went stale (drift) or too much of
///                 the table was never seen by a full pass (staleness
///                 budget): re-pay pre-processing.
///
/// The decision is pure: counters in, action out — unit-testable without a
/// stream, and replaceable by smarter policies behind the same signature.

namespace subtab::stream {

enum class RefreshAction {
  kFoldIn,
  kIncremental,
  kFullRefit,
};

const char* RefreshActionName(RefreshAction action);

/// Inputs of one decision, accumulated by the stream since the last refit
/// (drift, staleness) / last embedding refresh of any kind (refresh lag).
struct DriftSnapshot {
  /// Appended numeric cells outside the fit-time range, over appended
  /// non-null numeric cells (binning/incremental.h).
  double out_of_range_rate = 0.0;
  /// Appended unseen-category cells over appended non-null categorical
  /// cells.
  double new_category_rate = 0.0;
  /// Rows appended since the last full refit.
  size_t rows_since_refit = 0;
  /// Rows appended since the last refresh that touched the embedding
  /// (incremental or refit).
  size_t rows_since_refresh = 0;
  /// Rows the current model's pre-processing pass saw.
  size_t fitted_rows = 0;
};

struct RefreshPolicyOptions {
  /// Drift rates above either threshold mean the frozen spec misrepresents
  /// the new data: full refit.
  double max_out_of_range_rate = 0.10;
  double max_new_category_rate = 0.10;
  /// Drift rates are noise until this many rows were appended since the
  /// last refit; below it, drift alone never triggers a refit.
  size_t min_rows_for_drift = 64;
  /// Staleness budget: when rows-since-refit exceeds this fraction of the
  /// fitted rows, the model has never seen too much of the table — refit
  /// even without drift.
  double staleness_budget = 0.5;
  /// Embedding refresh lag: when rows-since-refresh exceeds this fraction
  /// of the fitted rows, run incremental epochs instead of folding in.
  double incremental_threshold = 0.1;
  /// SGNS epochs of one incremental refresh (over the delta corpus).
  size_t incremental_epochs = 2;
  /// Background mode only (StreamSessionOptions::background_refresh): a
  /// deferred upgrade may lag behind fold-in publications, but when the rows
  /// no embedding refresh has seen exceed this fraction of the fitted rows,
  /// Append runs the refresh inline instead of deferring — the staleness
  /// budget that keeps "eventually upgraded" from becoming "never".
  double max_background_lag = 0.3;
};

/// Picks the cheapest action consistent with the thresholds. Escalation
/// order: drift or staleness-budget exhaustion force a refit; otherwise
/// refresh lag forces incremental epochs; otherwise fold in.
RefreshAction DecideRefresh(const RefreshPolicyOptions& options,
                            const DriftSnapshot& drift);

/// Background-mode scheduling decision: true when the un-refreshed backlog
/// exhausted `max_background_lag` and the decided action must run inline on
/// the appender rather than be deferred to the background worker. Pure,
/// like DecideRefresh.
bool BackgroundLagExceeded(const RefreshPolicyOptions& options,
                           const DriftSnapshot& drift);

/// The more expensive of two actions (escalation order
/// fold-in < incremental < full refit) — deferred upgrade requests coalesce
/// to this.
RefreshAction EscalateRefresh(RefreshAction a, RefreshAction b);

}  // namespace subtab::stream

#endif  // SUBTAB_STREAM_REFRESH_POLICY_H_
