#include "subtab/stream/stream_session.h"

#include <utility>
#include <vector>

#include "subtab/util/logging.h"
#include "subtab/util/stopwatch.h"

namespace subtab::stream {

StreamSession::StreamSession(std::unique_ptr<StreamingTable> table,
                             StreamSessionOptions options,
                             std::shared_ptr<const SubTab> model)
    : options_(std::move(options)),
      config_fp_(ConfigFingerprint(options_.config)),
      table_(std::move(table)),
      model_(std::move(model)) {
  const TableVersion v0 = table_->Current();
  binner_ = std::make_unique<IncrementalBinner>(
      *v0.table, model_->preprocessed().binned().binning());
  fitted_rows_ = v0.num_rows;
  key_ = ModelKey{v0.fingerprint, config_fp_, v0.version};
  stats_.fitted_rows = v0.num_rows;
}

Result<std::shared_ptr<StreamSession>> StreamSession::Open(
    Table base, StreamSessionOptions options) {
  SUBTAB_ASSIGN_OR_RETURN(std::unique_ptr<StreamingTable> stream,
                          StreamingTable::Open(std::move(base)));
  const TableVersion v0 = stream->Current();
  Result<SubTab> fitted = SubTab::Fit(v0.table, options.config);
  if (!fitted.ok()) return fitted.status();
  auto model = std::make_shared<const SubTab>(std::move(*fitted));
  return std::shared_ptr<StreamSession>(new StreamSession(
      std::move(stream), std::move(options), std::move(model)));
}

Corpus StreamSession::DeltaCorpus(const BinnedTable& binned,
                                  size_t row_begin) const {
  const size_t rows = binned.num_rows();
  const size_t cols = binned.num_columns();
  std::vector<Sentence> sentences;
  const CorpusOptions& corpus_options = options_.config.corpus;
  if (corpus_options.tuple_sentences) {
    for (size_t r = row_begin; r < rows; ++r) {
      Sentence sentence(cols);
      for (size_t c = 0; c < cols; ++c) {
        sentence[c] =
            static_cast<uint32_t>(binned.DenseIndex(binned.token(r, c)));
      }
      sentences.push_back(std::move(sentence));
    }
  }
  if (corpus_options.column_sentences) {
    // Column-sentences restricted to the delta: the local analogue of the
    // fit-time per-column sentences, keeping cost O(delta), not O(table).
    for (size_t c = 0; c < cols; ++c) {
      Sentence sentence(rows - row_begin);
      for (size_t r = row_begin; r < rows; ++r) {
        sentence[r - row_begin] =
            static_cast<uint32_t>(binned.DenseIndex(binned.token(r, c)));
      }
      sentences.push_back(std::move(sentence));
    }
  }
  return Corpus::FromSentences(std::move(sentences), binned.total_bins());
}

Result<RefreshEvent> StreamSession::Append(const Table& batch) {
  std::lock_guard<std::mutex> append_lock(append_mu_);
  Stopwatch watch;
  // Stage the new version but publish nothing until the refresh succeeded:
  // a published table without a matching model would wedge every later
  // append on the row-count mismatch.
  SUBTAB_ASSIGN_OR_RETURN(TableVersion next, table_->Prepare(batch));
  const size_t row_begin = next.num_rows - next.delta_rows;
  const std::shared_ptr<const SubTab> previous = model();

  // Incremental bin maintenance: extend a copy of the current token matrix
  // with the batch, tokenized against the frozen spec.
  const IncrementalBinner::DriftState drift_backup = binner_->SaveState();
  BinnedTable binned = previous->preprocessed().binned();
  binner_->AppendRows(*next.table, row_begin, &binned);

  DriftSnapshot drift;
  drift.out_of_range_rate = binner_->OutOfRangeRate();
  drift.new_category_rate = binner_->NewCategoryRate();
  drift.rows_since_refit = rows_since_refit_ + next.delta_rows;
  drift.rows_since_refresh = rows_since_refresh_ + next.delta_rows;
  drift.fitted_rows = fitted_rows_;
  const RefreshAction action = DecideRefresh(options_.policy, drift);

  Result<SubTab> refreshed = [&]() -> Result<SubTab> {
    switch (action) {
      case RefreshAction::kFullRefit:
        // Re-pay pre-processing over the whole new version; the model
        // shares the snapshot's table (one resident copy).
        return SubTab::Fit(next.table, options_.config);
      case RefreshAction::kIncremental: {
        Word2VecModel embedding =
            previous->preprocessed().cell_model().word2vec();
        Word2VecOptions continued = options_.config.embedding;
        continued.epochs = options_.policy.incremental_epochs;
        continued.seed = options_.config.seed ^ next.version;
        Stopwatch train;
        embedding.ContinueTraining(DeltaCorpus(binned, row_begin), continued);
        PreprocessTimings timings;
        timings.training_seconds = train.ElapsedSeconds();
        return SubTab::FromPreprocessed(
            next.table, options_.config,
            PreprocessedTable(std::move(binned), std::move(embedding),
                              timings));
      }
      case RefreshAction::kFoldIn: {
        // New rows reuse the fitted token vectors as-is: zero training.
        Word2VecModel embedding =
            previous->preprocessed().cell_model().word2vec();
        return SubTab::FromPreprocessed(
            next.table, options_.config,
            PreprocessedTable(std::move(binned), std::move(embedding),
                              PreprocessTimings{}));
      }
    }
    return Status::Internal("unreachable refresh action");
  }();
  if (!refreshed.ok()) {
    // Roll back the tokenized batch's accounting; the staged table version
    // was never published, so the stream stays consistent at version n.
    binner_->RestoreState(drift_backup);
    return refreshed.status();
  }
  auto model = std::make_shared<const SubTab>(std::move(*refreshed));
  table_->Publish(next);

  const double seconds = watch.ElapsedSeconds();
  switch (action) {
    case RefreshAction::kFullRefit:
      fitted_rows_ = next.num_rows;
      rows_since_refit_ = 0;
      rows_since_refresh_ = 0;
      // The refit recomputed the spec; re-anchor drift detection on it.
      binner_ = std::make_unique<IncrementalBinner>(
          *next.table, model->preprocessed().binned().binning());
      break;
    case RefreshAction::kIncremental:
      rows_since_refit_ += next.delta_rows;
      rows_since_refresh_ = 0;
      break;
    case RefreshAction::kFoldIn:
      rows_since_refit_ += next.delta_rows;
      rows_since_refresh_ += next.delta_rows;
      break;
  }

  // Publish: brief swap under publish_mu_, so model()/Stats() readers only
  // ever wait microseconds, never for training.
  {
    std::lock_guard<std::mutex> publish_lock(publish_mu_);
    model_ = model;
    key_ = ModelKey{next.fingerprint, config_fp_, next.version};
    switch (action) {
      case RefreshAction::kFullRefit:
        ++stats_.full_refits;
        stats_.refit_seconds += seconds;
        break;
      case RefreshAction::kIncremental:
        ++stats_.incremental_refreshes;
        stats_.incremental_seconds += seconds;
        break;
      case RefreshAction::kFoldIn:
        ++stats_.fold_ins;
        stats_.fold_in_seconds += seconds;
        break;
    }
    ++stats_.appends;
    stats_.rows_appended += next.delta_rows;
    stats_.version = next.version;
    stats_.out_of_range_rate = binner_->OutOfRangeRate();
    stats_.new_category_rate = binner_->NewCategoryRate();
    stats_.rows_since_refit = rows_since_refit_;
    stats_.fitted_rows = fitted_rows_;
  }

  SUBTAB_LOG_STREAM(Debug) << "stream append v" << next.version << ": "
                           << RefreshActionName(action) << " in " << seconds
                           << "s (+" << next.delta_rows << " rows)";

  RefreshEvent event;
  event.version = next.version;
  event.action = action;
  event.seconds = seconds;
  event.delta_rows = next.delta_rows;
  event.drift = drift;
  event.key = ModelKey{next.fingerprint, config_fp_, next.version};
  event.model = std::move(model);
  return event;
}

std::shared_ptr<const SubTab> StreamSession::model() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return model_;
}

TableVersion StreamSession::current_version() const {
  return table_->Current();
}

ModelKey StreamSession::model_key() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return key_;
}

PublishedModel StreamSession::Snapshot() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return PublishedModel{model_, key_};
}

StreamStats StreamSession::Stats() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return stats_;
}

}  // namespace subtab::stream
