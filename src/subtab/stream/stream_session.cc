#include "subtab/stream/stream_session.h"

#include <utility>
#include <vector>

#include "subtab/util/logging.h"
#include "subtab/util/stopwatch.h"

namespace subtab::stream {

StreamSession::StreamSession(std::unique_ptr<StreamingTable> table,
                             StreamSessionOptions options,
                             std::shared_ptr<const SubTab> model)
    : options_(std::move(options)),
      config_fp_(ConfigFingerprint(options_.config)),
      table_(std::move(table)),
      model_(std::move(model)) {
  const TableVersion v0 = table_->Current();
  binner_ = std::make_unique<IncrementalBinner>(
      *v0.table, model_->preprocessed().binned().binning());
  fitted_rows_ = v0.num_rows;
  key_ = ModelKey{v0.fingerprint, config_fp_, v0.version};
  stats_.fitted_rows = v0.num_rows;
  if (options_.background_refresh) {
    background_ = std::make_unique<ThreadPool>(1);
  }
}

Result<std::shared_ptr<StreamSession>> StreamSession::Open(
    Table base, StreamSessionOptions options) {
  SUBTAB_ASSIGN_OR_RETURN(std::unique_ptr<StreamingTable> stream,
                          StreamingTable::Open(std::move(base)));
  const TableVersion v0 = stream->Current();
  Result<SubTab> fitted = SubTab::Fit(v0.table, options.config);
  if (!fitted.ok()) return fitted.status();
  auto model = std::make_shared<const SubTab>(std::move(*fitted));
  return std::shared_ptr<StreamSession>(new StreamSession(
      std::move(stream), std::move(options), std::move(model)));
}

Corpus StreamSession::DeltaCorpus(const BinnedTable& binned,
                                  size_t row_begin) const {
  const size_t rows = binned.num_rows();
  const size_t cols = binned.num_columns();
  std::vector<Sentence> sentences;
  const CorpusOptions& corpus_options = options_.config.corpus;
  if (corpus_options.tuple_sentences) {
    for (size_t r = row_begin; r < rows; ++r) {
      Sentence sentence(cols);
      for (size_t c = 0; c < cols; ++c) {
        sentence[c] =
            static_cast<uint32_t>(binned.DenseIndex(binned.token(r, c)));
      }
      sentences.push_back(std::move(sentence));
    }
  }
  if (corpus_options.column_sentences) {
    // Column-sentences restricted to the delta: the local analogue of the
    // fit-time per-column sentences, keeping cost O(delta), not O(table).
    for (size_t c = 0; c < cols; ++c) {
      Sentence sentence(rows - row_begin);
      for (size_t r = row_begin; r < rows; ++r) {
        sentence[r - row_begin] =
            static_cast<uint32_t>(binned.DenseIndex(binned.token(r, c)));
      }
      sentences.push_back(std::move(sentence));
    }
  }
  return Corpus::FromSentences(std::move(sentences), binned.total_bins());
}

Result<SubTab> StreamSession::TrainRefresh(
    RefreshAction action, const TableVersion& next,
    const std::shared_ptr<const SubTab>& base_model, BinnedTable binned,
    size_t row_begin) const {
  switch (action) {
    case RefreshAction::kFullRefit:
      // Re-pay pre-processing over the whole new version; the model
      // shares the snapshot's table (one resident copy).
      return SubTab::Fit(next.table, options_.config);
    case RefreshAction::kIncremental: {
      Word2VecModel embedding =
          base_model->preprocessed().cell_model().word2vec();
      Word2VecOptions continued = options_.config.embedding;
      continued.epochs = options_.policy.incremental_epochs;
      continued.seed = options_.config.seed ^ next.version;
      Stopwatch train;
      embedding.ContinueTraining(DeltaCorpus(binned, row_begin), continued);
      PreprocessTimings timings;
      timings.training_seconds = train.ElapsedSeconds();
      return SubTab::FromPreprocessed(
          next.table, options_.config,
          PreprocessedTable(std::move(binned), std::move(embedding), timings));
    }
    case RefreshAction::kFoldIn: {
      // New rows reuse the fitted token vectors as-is: zero training.
      Word2VecModel embedding =
          base_model->preprocessed().cell_model().word2vec();
      return SubTab::FromPreprocessed(
          next.table, options_.config,
          PreprocessedTable(std::move(binned), std::move(embedding),
                            PreprocessTimings{}));
    }
  }
  return Status::Internal("unreachable refresh action");
}

void StreamSession::PublishLocked(
    std::shared_ptr<const SubTab> model, const ModelKey& key,
    const std::function<void(StreamStats&)>& update_stats) {
  PublishedModel published;
  {
    // Brief swap under publish_mu_, so model()/Stats() readers only ever
    // wait microseconds, never for training.
    std::lock_guard<std::mutex> publish_lock(publish_mu_);
    model_ = std::move(model);
    key_ = key;
    update_stats(stats_);
    published = PublishedModel{model_, key_};
  }
  // Listener runs without publish_mu_ (it reads engine state that must not
  // nest inside it) but still under the caller's append_mu_, so invocations
  // arrive in publication order.
  std::lock_guard<std::mutex> listener_lock(listener_mu_);
  if (listener_) listener_(published);
}

std::shared_ptr<TraceSink> StreamSession::trace_sink() const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  return trace_sink_;
}

void StreamSession::SetTraceSink(std::shared_ptr<TraceSink> sink) {
  std::lock_guard<std::mutex> lock(trace_mu_);
  trace_sink_ = std::move(sink);
}

Result<RefreshEvent> StreamSession::Append(const Table& batch) {
  std::lock_guard<std::mutex> append_lock(append_mu_);
  TraceContext trace;
  if (std::shared_ptr<TraceSink> sink = trace_sink()) {
    trace = TraceContext::Start("stream.append", sink);
  }
  LogTraceScope log_scope(trace.trace_id());
  Stopwatch watch;
  // Stage the new version but publish nothing until the refresh succeeded:
  // a published table without a matching model would wedge every later
  // append on the row-count mismatch.
  SUBTAB_ASSIGN_OR_RETURN(TableVersion next, table_->Prepare(batch));
  const size_t batch_begin = next.num_rows - next.delta_rows;
  const std::shared_ptr<const SubTab> previous = model();

  // Incremental bin maintenance: extend a copy of the current token matrix
  // with the batch, tokenized against the frozen spec.
  const IncrementalBinner::DriftState drift_backup = binner_->SaveState();
  BinnedTable binned = previous->preprocessed().binned();
  binner_->AppendRows(*next.table, batch_begin, &binned);

  DriftSnapshot drift;
  drift.out_of_range_rate = binner_->OutOfRangeRate();
  drift.new_category_rate = binner_->NewCategoryRate();
  drift.rows_since_refit = rows_since_refit_ + next.delta_rows;
  drift.rows_since_refresh = rows_since_refresh_ + next.delta_rows;
  drift.fitted_rows = fitted_rows_;
  const RefreshAction action = DecideRefresh(options_.policy, drift);

  // Background mode: publish a fold-in now and hand the training to the
  // worker — unless the un-refreshed backlog exhausted the staleness budget,
  // in which case this appender pays for the training inline.
  const bool defer = options_.background_refresh &&
                     action != RefreshAction::kFoldIn &&
                     !BackgroundLagExceeded(options_.policy, drift);
  const RefreshAction run_now = defer ? RefreshAction::kFoldIn : action;

  // An incremental refresh trains the WHOLE un-refreshed suffix — every row
  // folded in since the embedding last moved, not just this batch —
  // otherwise backlog rows deferred by earlier fold-ins would reset the
  // counter below without ever entering a delta corpus.
  const size_t refresh_begin = next.num_rows - drift.rows_since_refresh;
  // The refresh child span is what separates "append was slow" into "the
  // fold-in was slow" vs "the appender paid for training inline".
  TraceSpan refresh_span = trace.StartSpan("refresh");
  if (refresh_span.enabled()) {
    refresh_span.AddAttr("action", RefreshActionName(run_now));
    refresh_span.AddAttr("refresh_rows",
                         (uint64_t)(next.num_rows - refresh_begin));
  }
  Result<SubTab> refreshed =
      TrainRefresh(run_now, next, previous, std::move(binned), refresh_begin);
  if (refresh_span.enabled()) {
    refresh_span.AddAttr("status", refreshed.ok() ? "ok" : "error");
  }
  trace.FinishSpan(std::move(refresh_span));
  if (!refreshed.ok()) {
    // Roll back the tokenized batch's accounting; the staged table version
    // was never published, so the stream stays consistent at version n.
    binner_->RestoreState(drift_backup);
    if (trace.enabled()) {
      trace.AddRootAttr("status", "error");
      trace.FinishRoot();
    }
    return refreshed.status();
  }
  auto model = std::make_shared<const SubTab>(std::move(*refreshed));
  table_->Publish(next);

  const double seconds = watch.ElapsedSeconds();
  switch (run_now) {
    case RefreshAction::kFullRefit:
      fitted_rows_ = next.num_rows;
      rows_since_refit_ = 0;
      rows_since_refresh_ = 0;
      // The refit recomputed the spec; re-anchor drift detection on it.
      binner_ = std::make_unique<IncrementalBinner>(
          *next.table, model->preprocessed().binned().binning());
      break;
    case RefreshAction::kIncremental:
      rows_since_refit_ += next.delta_rows;
      rows_since_refresh_ = 0;
      break;
    case RefreshAction::kFoldIn:
      rows_since_refit_ += next.delta_rows;
      rows_since_refresh_ += next.delta_rows;
      break;
  }

  refresh_seq_ = 0;  // Content changed: generation restarts at this version.
  const ModelKey key{next.fingerprint, config_fp_, next.version};
  PublishLocked(model, key, [&](StreamStats& stats) {
    switch (run_now) {
      case RefreshAction::kFullRefit:
        ++stats.full_refits;
        stats.refit_seconds += seconds;
        break;
      case RefreshAction::kIncremental:
        ++stats.incremental_refreshes;
        stats.incremental_seconds += seconds;
        break;
      case RefreshAction::kFoldIn:
        ++stats.fold_ins;
        stats.fold_in_seconds += seconds;
        break;
    }
    ++stats.appends;
    stats.rows_appended += next.delta_rows;
    stats.version = next.version;
    stats.refresh_generation = 0;
    stats.out_of_range_rate = binner_->OutOfRangeRate();
    stats.new_category_rate = binner_->NewCategoryRate();
    stats.rows_since_refit = rows_since_refit_;
    stats.fitted_rows = fitted_rows_;
    if (defer) ++stats.deferred_upgrades;
  });

  if (defer) {
    // Coalesce with any request the worker has not claimed yet; escalation
    // keeps the strongest action. One drain task at a time.
    pending_action_ =
        upgrade_pending_ ? EscalateRefresh(pending_action_, action) : action;
    upgrade_pending_ = true;
    if (!upgrade_running_) {
      upgrade_running_ = true;
      background_->Submit([this] { RunUpgrades(); });
    }
  } else if (upgrade_pending_ &&
             EscalateRefresh(run_now, pending_action_) == run_now) {
    // The training that just ran inline covers the not-yet-claimed request
    // (it saw every row and at least as strong an action) — cancel it
    // rather than re-train the identical content and churn the caches.
    upgrade_pending_ = false;
    upgrade_cv_.notify_all();
  }

  SUBTAB_LOG_STREAM(Debug) << "stream append v" << next.version << ": "
                           << RefreshActionName(run_now) << " in " << seconds
                           << "s (+" << next.delta_rows << " rows)"
                           << (defer ? " [upgrade deferred]" : "");

  if (trace.enabled()) {
    trace.AddRootAttr("version", next.version);
    trace.AddRootAttr("delta_rows", (uint64_t)next.delta_rows);
    trace.AddRootAttr("action", RefreshActionName(run_now));
    trace.AddRootAttr("deferred", defer ? "true" : "false");
    trace.AddRootAttr("status", "ok");
    trace.FinishRoot();
  }

  RefreshEvent event;
  event.version = next.version;
  event.action = run_now;
  event.seconds = seconds;
  event.delta_rows = next.delta_rows;
  event.drift = drift;
  event.key = key;
  event.model = std::move(model);
  event.upgrade_deferred = defer;
  event.deferred_action = defer ? action : run_now;
  return event;
}

void StreamSession::RunUpgrades() {
  for (;;) {
    RefreshAction action;
    TableVersion cur;
    std::shared_ptr<const SubTab> base;
    size_t row_begin;
    {
      std::unique_lock<std::mutex> lock(append_mu_);
      if (!upgrade_pending_) {
        upgrade_running_ = false;
        upgrade_cv_.notify_all();
        return;
      }
      upgrade_pending_ = false;
      action = pending_action_;
      // A racing inline refresh may have already covered this request: an
      // incremental with no un-refreshed rows (or a refit right after one)
      // would train an empty delta and publish a useless generation.
      if ((action == RefreshAction::kIncremental && rows_since_refresh_ == 0) ||
          (action == RefreshAction::kFullRefit && rows_since_refit_ == 0)) {
        continue;
      }
      cur = table_->Current();
      {
        std::lock_guard<std::mutex> publish_lock(publish_mu_);
        base = model_;  // The published model OF cur (publications are
                        // serialized by append_mu_, which we hold).
      }
      row_begin = cur.num_rows - rows_since_refresh_;
    }

    // Train with no session lock held: appenders keep folding in and
    // readers keep selecting against the published model throughout.
    // (The full-refit branch is hoisted so the token-matrix copy is only
    // made when the incremental delta corpus actually needs it.)
    TraceContext trace;
    if (std::shared_ptr<TraceSink> sink = trace_sink()) {
      trace = TraceContext::Start("stream.upgrade", sink);
      trace.AddRootAttr("version", cur.version);
      trace.AddRootAttr("action", RefreshActionName(action));
    }
    LogTraceScope log_scope(trace.trace_id());
    TraceSpan retrain_span = trace.StartSpan("retrain");
    Stopwatch watch;
    Result<SubTab> refreshed =
        action == RefreshAction::kFullRefit
            ? SubTab::Fit(cur.table, options_.config)
            : TrainRefresh(action, cur, base, base->preprocessed().binned(),
                           row_begin);
    const double seconds = watch.ElapsedSeconds();
    if (retrain_span.enabled()) {
      retrain_span.AddAttr("status", refreshed.ok() ? "ok" : "error");
    }
    trace.FinishSpan(std::move(retrain_span));

    std::unique_lock<std::mutex> lock(append_mu_);
    if (table_->Current().version != cur.version) {
      // An append superseded the version mid-training: publishing this model
      // would roll content back. Discard, and retrain against the newest
      // version (coalescing with any request that arrived meanwhile) —
      // unless the superseding appends left nothing un-refreshed, i.e. they
      // trained inline or scheduled their own requests already.
      {
        std::lock_guard<std::mutex> publish_lock(publish_mu_);
        ++stats_.upgrades_discarded;
      }
      if (rows_since_refresh_ > 0) {
        pending_action_ = upgrade_pending_
                              ? EscalateRefresh(pending_action_, action)
                              : action;
        upgrade_pending_ = true;
      }
      if (trace.enabled()) {
        trace.AddRootAttr("status", "discarded");
        trace.FinishRoot();
      }
      continue;
    }
    if (!refreshed.ok()) {
      SUBTAB_LOG_STREAM(Warning)
          << "background upgrade failed (v" << cur.version
          << ", " << RefreshActionName(action)
          << "): " << refreshed.status().ToString();
      if (trace.enabled()) {
        trace.AddRootAttr("status", "error");
        trace.FinishRoot();
      }
      continue;  // The fold-in model stays published; drain any new request.
    }

    auto model = std::make_shared<const SubTab>(std::move(*refreshed));
    if (action == RefreshAction::kFullRefit) {
      fitted_rows_ = cur.num_rows;
      rows_since_refit_ = 0;
      rows_since_refresh_ = 0;
      binner_ = std::make_unique<IncrementalBinner>(
          *cur.table, model->preprocessed().binned().binning());
    } else {
      rows_since_refresh_ = 0;
    }
    ++refresh_seq_;
    const ModelKey key{cur.fingerprint, config_fp_, cur.version, refresh_seq_};
    PublishLocked(model, key, [&](StreamStats& stats) {
      if (action == RefreshAction::kFullRefit) {
        ++stats.full_refits;
        stats.refit_seconds += seconds;
      } else {
        ++stats.incremental_refreshes;
        stats.incremental_seconds += seconds;
      }
      ++stats.upgrades_completed;
      stats.refresh_generation = refresh_seq_;
      stats.out_of_range_rate = binner_->OutOfRangeRate();
      stats.new_category_rate = binner_->NewCategoryRate();
      stats.rows_since_refit = rows_since_refit_;
      stats.fitted_rows = fitted_rows_;
    });
    SUBTAB_LOG_STREAM(Debug)
        << "background upgrade v" << cur.version << " r" << refresh_seq_
        << ": " << RefreshActionName(action) << " in " << seconds << "s";
    if (trace.enabled()) {
      trace.AddRootAttr("refresh", refresh_seq_);
      trace.AddRootAttr("status", "ok");
      trace.FinishRoot();
    }
  }
}

void StreamSession::SetPublishListener(
    std::function<void(const PublishedModel&)> listener) {
  std::lock_guard<std::mutex> lock(listener_mu_);
  listener_ = std::move(listener);
}

void StreamSession::WaitForUpgrades() {
  std::unique_lock<std::mutex> lock(append_mu_);
  upgrade_cv_.wait(lock,
                   [this] { return !upgrade_pending_ && !upgrade_running_; });
}

std::shared_ptr<const SubTab> StreamSession::model() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return model_;
}

TableVersion StreamSession::current_version() const {
  return table_->Current();
}

ModelKey StreamSession::model_key() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return key_;
}

PublishedModel StreamSession::Snapshot() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return PublishedModel{model_, key_};
}

StreamStats StreamSession::Stats() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return stats_;
}

}  // namespace subtab::stream
