#ifndef SUBTAB_STREAM_STREAM_SESSION_H_
#define SUBTAB_STREAM_STREAM_SESSION_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "subtab/binning/incremental.h"
#include "subtab/core/subtab.h"
#include "subtab/stream/refresh_policy.h"
#include "subtab/stream/streaming_table.h"
#include "subtab/util/thread_pool.h"
#include "subtab/util/trace.h"

/// \file stream_session.h
/// The streaming counterpart of the SubTab facade: one append-mostly table
/// plus an always-servable fitted model. Usage:
///
///   auto session = *StreamSession::Open(base_table, options);
///   session->Append(batch);                  // fold-in / incremental / refit
///   SubTabView view = session->model()->Select();   // latest version
///
/// Every Append publishes a new immutable (table, model) pair — version
/// isolation: a model obtained before an append keeps selecting over its own
/// version's rows. The refresh policy (refresh_policy.h) picks the cheapest
/// model maintenance per batch, driven by the incremental binner's drift
/// counters; the serving engine (service/engine.h) republishes the latest
/// version under a (chained fingerprint, config, version) registry key.

namespace subtab::stream {

struct StreamSessionOptions {
  SubTabConfig config;
  RefreshPolicyOptions policy;
  /// Background refresh: Append publishes a fold-in model for the new
  /// version immediately (milliseconds — the appender never trains) and
  /// defers the policy's incremental-epochs / full-refit work to a dedicated
  /// background worker, which republishes the *same* content version with a
  /// bumped ModelKey::refresh generation when training lands. Deferral is
  /// bounded by RefreshPolicyOptions::max_background_lag: past that backlog
  /// the appender trains inline, like the default (false) mode always does.
  /// Every published version stays servable throughout — model() readers
  /// never wait on training in either mode.
  bool background_refresh = false;
};

/// Outcome of one Append: which refresh ran and what it cost. Carries the
/// published (model, key) pair so callers racing other appenders never
/// re-read them separately and pair one version's key with another's model.
struct RefreshEvent {
  uint64_t version = 0;
  RefreshAction action = RefreshAction::kFoldIn;
  /// Wall time from batch receipt to the new model being servable
  /// (snapshot + incremental binning + the chosen refresh).
  double seconds = 0.0;
  size_t delta_rows = 0;
  /// The counters the decision was based on.
  DriftSnapshot drift;
  /// Registry key of the new version's model.
  ModelKey key;
  /// The new version's model itself (what model() would return right after
  /// this append published).
  std::shared_ptr<const SubTab> model;
  /// Background mode: the publication above is a fold-in and
  /// `deferred_action` was handed to the background worker to upgrade this
  /// version (a later publication with the same `key.version` and
  /// `key.refresh + 1`).
  bool upgrade_deferred = false;
  RefreshAction deferred_action = RefreshAction::kFoldIn;
};

/// A consistent (model, key) pair, read in one critical section.
struct PublishedModel {
  std::shared_ptr<const SubTab> model;
  ModelKey key;
};

/// Counter snapshot for introspection (EngineStats aggregates these).
struct StreamStats {
  uint64_t version = 0;
  uint64_t appends = 0;
  uint64_t rows_appended = 0;
  uint64_t fold_ins = 0;
  uint64_t incremental_refreshes = 0;
  uint64_t full_refits = 0;
  double fold_in_seconds = 0.0;
  double incremental_seconds = 0.0;
  double refit_seconds = 0.0;
  /// Drift accumulated since the last full refit.
  double out_of_range_rate = 0.0;
  double new_category_rate = 0.0;
  size_t rows_since_refit = 0;
  /// Rows the last full pre-processing pass saw.
  size_t fitted_rows = 0;
  /// Background refresh: upgrades handed to the worker / republished by it /
  /// thrown away because an append superseded the version mid-training.
  uint64_t deferred_upgrades = 0;
  uint64_t upgrades_completed = 0;
  uint64_t upgrades_discarded = 0;
  /// ModelKey::refresh of the currently published model.
  uint64_t refresh_generation = 0;
};

class StreamSession {
 public:
  /// Fits the base table (one full pre-processing pass) and opens the
  /// stream at version 0.
  static Result<std::shared_ptr<StreamSession>> Open(
      Table base, StreamSessionOptions options);

  StreamSession(const StreamSession&) = delete;
  StreamSession& operator=(const StreamSession&) = delete;

  /// Ingests one batch: appends rows, maintains the binned matrix against
  /// the frozen spec, refreshes the embedding per policy, and publishes the
  /// next version's model. Appends are serialized; model() readers are
  /// never blocked by training.
  Result<RefreshEvent> Append(const Table& batch);

  /// The latest version's fitted model (shared, immutable; selects on it
  /// stay valid across later appends).
  std::shared_ptr<const SubTab> model() const;

  /// The latest snapshot of the streamed content.
  TableVersion current_version() const;

  /// Registry key of the latest model: (chained fp, config fp, version).
  ModelKey model_key() const;

  /// The latest (model, key) pair, consistent under one lock — use this
  /// instead of model() + model_key() when both are needed (a concurrent
  /// append could publish between the two separate reads).
  PublishedModel Snapshot() const;

  StreamStats Stats() const;

  const StreamSessionOptions& options() const { return options_; }

  /// Publication hook: invoked synchronously after *every* model
  /// publication — each Append's (fold-in or inline-trained) model and each
  /// background upgrade — in publication order, without publish_mu_ held.
  /// The serving engine installs this at RegisterStream to republish bound
  /// ids; pass nullptr to uninstall (blocks until an in-flight invocation
  /// returns, so the callee can be torn down afterwards). One listener at a
  /// time: a stream is bound to at most one engine.
  void SetPublishListener(std::function<void(const PublishedModel&)> listener);

  /// Installs the trace sink refresh traces commit to (stream.append /
  /// stream.upgrade roots with a refresh/retrain child span each, tagged
  /// with version + refresh generation + action). The serving engine
  /// installs its own sink at RegisterStream so refresh traces land next to
  /// the request traces competing with them; nullptr uninstalls.
  void SetTraceSink(std::shared_ptr<TraceSink> sink);

  /// Blocks until no deferred upgrade is pending or running. Background mode
  /// only (returns immediately otherwise); for tests and orderly shutdown.
  void WaitForUpgrades();

 private:
  StreamSession(std::unique_ptr<StreamingTable> table,
                StreamSessionOptions options,
                std::shared_ptr<const SubTab> model);

  /// Sentences over only the delta rows of `binned` (tuple sentences per
  /// appended row, one per-column sentence over the appended rows), for
  /// incremental training.
  Corpus DeltaCorpus(const BinnedTable& binned, size_t row_begin) const;

  /// Trains the given refresh over `base_model`'s state for version `next`
  /// (no locks held; pure function of its arguments + options_).
  Result<SubTab> TrainRefresh(RefreshAction action, const TableVersion& next,
                              const std::shared_ptr<const SubTab>& base_model,
                              BinnedTable binned, size_t row_begin) const;

  /// Swaps the published (model, key) and mutates stats under publish_mu_,
  /// then invokes the publish listener. Caller holds append_mu_ (publication
  /// order = append_mu_ acquisition order).
  void PublishLocked(std::shared_ptr<const SubTab> model, const ModelKey& key,
                     const std::function<void(StreamStats&)>& update_stats);

  /// Background worker body: drains pending upgrade requests, retraining
  /// against the newest version whenever an append lands mid-training.
  void RunUpgrades();

  const StreamSessionOptions options_;
  const uint64_t config_fp_;

  /// Serializes appenders and (briefly) the background worker's
  /// claim/publish sections. In inline mode it is held across the whole
  /// refresh (possibly seconds of training); in background mode appenders
  /// hold it only for snapshot + fold-in and the worker trains *outside* it.
  /// Either way the published state lives under `publish_mu_`, held only for
  /// pointer swaps, so model()/Stats() readers never wait on training.
  std::mutex append_mu_;
  std::unique_ptr<StreamingTable> table_;
  std::unique_ptr<IncrementalBinner> binner_;
  size_t rows_since_refresh_ = 0;
  size_t rows_since_refit_ = 0;
  size_t fitted_rows_ = 0;
  /// Deferred-upgrade handshake (guarded by append_mu_): at most one request
  /// pending (repeats coalesce via EscalateRefresh) and one worker draining.
  bool upgrade_running_ = false;
  bool upgrade_pending_ = false;
  RefreshAction pending_action_ = RefreshAction::kFoldIn;
  uint64_t refresh_seq_ = 0;  ///< ModelKey::refresh of the published model.
  std::condition_variable upgrade_cv_;

  mutable std::mutex publish_mu_;
  std::shared_ptr<const SubTab> model_;
  ModelKey key_;
  StreamStats stats_;

  std::mutex listener_mu_;
  std::function<void(const PublishedModel&)> listener_;

  /// Sink handle for refresh traces; read per maintenance operation under
  /// its own mutex (never nested inside append_mu_/publish_mu_ sections
  /// that call out). The TraceContexts built from it are by-value handles —
  /// no thread-local state, matching the serving pipeline's rule.
  mutable std::mutex trace_mu_;
  std::shared_ptr<TraceSink> trace_sink_;
  std::shared_ptr<TraceSink> trace_sink() const;

  /// Background worker (created iff options_.background_refresh). Declared
  /// last: destroyed first, so a queued upgrade task finishes against
  /// still-alive members before the rest of the session tears down.
  std::unique_ptr<ThreadPool> background_;
};

}  // namespace subtab::stream

#endif  // SUBTAB_STREAM_STREAM_SESSION_H_
