#ifndef SUBTAB_STREAM_STREAM_SESSION_H_
#define SUBTAB_STREAM_STREAM_SESSION_H_

#include <cstdint>
#include <memory>
#include <mutex>

#include "subtab/binning/incremental.h"
#include "subtab/core/subtab.h"
#include "subtab/stream/refresh_policy.h"
#include "subtab/stream/streaming_table.h"

/// \file stream_session.h
/// The streaming counterpart of the SubTab facade: one append-mostly table
/// plus an always-servable fitted model. Usage:
///
///   auto session = *StreamSession::Open(base_table, options);
///   session->Append(batch);                  // fold-in / incremental / refit
///   SubTabView view = session->model()->Select();   // latest version
///
/// Every Append publishes a new immutable (table, model) pair — version
/// isolation: a model obtained before an append keeps selecting over its own
/// version's rows. The refresh policy (refresh_policy.h) picks the cheapest
/// model maintenance per batch, driven by the incremental binner's drift
/// counters; the serving engine (service/engine.h) republishes the latest
/// version under a (chained fingerprint, config, version) registry key.

namespace subtab::stream {

struct StreamSessionOptions {
  SubTabConfig config;
  RefreshPolicyOptions policy;
};

/// Outcome of one Append: which refresh ran and what it cost. Carries the
/// published (model, key) pair so callers racing other appenders never
/// re-read them separately and pair one version's key with another's model.
struct RefreshEvent {
  uint64_t version = 0;
  RefreshAction action = RefreshAction::kFoldIn;
  /// Wall time from batch receipt to the new model being servable
  /// (snapshot + incremental binning + the chosen refresh).
  double seconds = 0.0;
  size_t delta_rows = 0;
  /// The counters the decision was based on.
  DriftSnapshot drift;
  /// Registry key of the new version's model.
  ModelKey key;
  /// The new version's model itself (what model() would return right after
  /// this append published).
  std::shared_ptr<const SubTab> model;
};

/// A consistent (model, key) pair, read in one critical section.
struct PublishedModel {
  std::shared_ptr<const SubTab> model;
  ModelKey key;
};

/// Counter snapshot for introspection (EngineStats aggregates these).
struct StreamStats {
  uint64_t version = 0;
  uint64_t appends = 0;
  uint64_t rows_appended = 0;
  uint64_t fold_ins = 0;
  uint64_t incremental_refreshes = 0;
  uint64_t full_refits = 0;
  double fold_in_seconds = 0.0;
  double incremental_seconds = 0.0;
  double refit_seconds = 0.0;
  /// Drift accumulated since the last full refit.
  double out_of_range_rate = 0.0;
  double new_category_rate = 0.0;
  size_t rows_since_refit = 0;
  /// Rows the last full pre-processing pass saw.
  size_t fitted_rows = 0;
};

class StreamSession {
 public:
  /// Fits the base table (one full pre-processing pass) and opens the
  /// stream at version 0.
  static Result<std::shared_ptr<StreamSession>> Open(
      Table base, StreamSessionOptions options);

  StreamSession(const StreamSession&) = delete;
  StreamSession& operator=(const StreamSession&) = delete;

  /// Ingests one batch: appends rows, maintains the binned matrix against
  /// the frozen spec, refreshes the embedding per policy, and publishes the
  /// next version's model. Appends are serialized; model() readers are
  /// never blocked by training.
  Result<RefreshEvent> Append(const Table& batch);

  /// The latest version's fitted model (shared, immutable; selects on it
  /// stay valid across later appends).
  std::shared_ptr<const SubTab> model() const;

  /// The latest snapshot of the streamed content.
  TableVersion current_version() const;

  /// Registry key of the latest model: (chained fp, config fp, version).
  ModelKey model_key() const;

  /// The latest (model, key) pair, consistent under one lock — use this
  /// instead of model() + model_key() when both are needed (a concurrent
  /// append could publish between the two separate reads).
  PublishedModel Snapshot() const;

  StreamStats Stats() const;

  const StreamSessionOptions& options() const { return options_; }

 private:
  StreamSession(std::unique_ptr<StreamingTable> table,
                StreamSessionOptions options,
                std::shared_ptr<const SubTab> model);

  /// Sentences over only the delta rows of `binned` (tuple sentences per
  /// appended row, one per-column sentence over the appended rows), for
  /// incremental training.
  Corpus DeltaCorpus(const BinnedTable& binned, size_t row_begin) const;

  const StreamSessionOptions options_;
  const uint64_t config_fp_;

  /// Serializes appenders. Held across the whole refresh (possibly seconds
  /// of training) — which is why the members below split into two groups:
  /// appender-owned state guarded by this mutex, and the published state
  /// under `publish_mu_`, held only for pointer swaps so model()/Stats()
  /// readers never wait on training.
  std::mutex append_mu_;
  std::unique_ptr<StreamingTable> table_;
  std::unique_ptr<IncrementalBinner> binner_;
  size_t rows_since_refresh_ = 0;
  size_t rows_since_refit_ = 0;
  size_t fitted_rows_ = 0;

  mutable std::mutex publish_mu_;
  std::shared_ptr<const SubTab> model_;
  ModelKey key_;
  StreamStats stats_;
};

}  // namespace subtab::stream

#endif  // SUBTAB_STREAM_STREAM_SESSION_H_
