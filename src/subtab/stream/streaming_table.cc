#include "subtab/stream/streaming_table.h"

#include <utility>
#include <vector>

namespace subtab::stream {

StreamingTable::StreamingTable(TableVersion base) : current_(std::move(base)) {}

Result<std::unique_ptr<StreamingTable>> StreamingTable::Open(Table base) {
  if (base.num_rows() == 0 || base.num_columns() == 0) {
    return Status::InvalidArgument("streaming table needs a non-empty base");
  }
  TableVersion v0;
  v0.version = 0;
  v0.fingerprint = TableFingerprint(base);
  v0.delta_fp = v0.fingerprint;
  v0.delta_rows = base.num_rows();
  v0.num_rows = base.num_rows();
  v0.table = std::make_shared<const Table>(std::move(base));
  return std::unique_ptr<StreamingTable>(new StreamingTable(std::move(v0)));
}

Result<TableVersion> StreamingTable::Prepare(const Table& batch) const {
  if (batch.num_rows() == 0) {
    return Status::InvalidArgument("appended batch has no rows");
  }
  TableVersion parent;
  {
    std::lock_guard<std::mutex> lock(mu_);
    parent = current_;
  }
  if (!(batch.schema() == parent.table->schema())) {
    return Status::InvalidArgument(
        "batch schema does not match stream schema: " +
        batch.schema().ToString() + " vs " + parent.table->schema().ToString());
  }
  // O(batch) snapshot: the appended table shares every chunk of the parent
  // and adds one new chunk per column holding the batch. Categorical cells
  // are remapped into the cumulative dictionary (first-seen order), so
  // appended cells get master-table codes (what binning/incremental.h
  // tokenizes against).
  SUBTAB_ASSIGN_OR_RETURN(Table appended, parent.table->AppendRows(batch));
  TableVersion next;
  next.version = parent.version + 1;
  // Hash the batch as it lies in the appended table, where categorical codes
  // refer to the master dictionary; TableSliceFingerprint hashes values, so
  // this equals hashing the standalone batch.
  next.delta_fp =
      TableSliceFingerprint(appended, parent.num_rows, appended.num_rows());
  next.fingerprint =
      ChainFingerprint(parent.fingerprint, next.delta_fp, next.version);
  next.delta_rows = batch.num_rows();
  next.num_rows = appended.num_rows();
  next.table = std::make_shared<const Table>(std::move(appended));
  return next;
}

void StreamingTable::Publish(const TableVersion& next) {
  std::lock_guard<std::mutex> lock(mu_);
  SUBTAB_CHECK(next.version == current_.version + 1);
  current_ = next;
}

Result<TableVersion> StreamingTable::Append(const Table& batch) {
  SUBTAB_ASSIGN_OR_RETURN(TableVersion next, Prepare(batch));
  Publish(next);
  return next;
}

TableVersion StreamingTable::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

}  // namespace subtab::stream
