#ifndef SUBTAB_STREAM_STREAMING_TABLE_H_
#define SUBTAB_STREAM_STREAMING_TABLE_H_

#include <cstdint>
#include <memory>
#include <mutex>

#include "subtab/core/fingerprint.h"
#include "subtab/table/table.h"

/// \file streaming_table.h
/// An append-mostly table with versioned snapshots. The rest of the library
/// treats a Table as frozen content (fingerprints, fitted models, caches all
/// bind to it); StreamingTable makes mutation explicit and *versioned*
/// instead: every appended batch produces a new immutable snapshot with a
/// monotonically increasing version and a chained content fingerprint
/// (core/fingerprint.h). Readers hold a snapshot's shared_ptr and are
/// unaffected by later appends — the version-isolation property the serving
/// layer's per-version registry keys and caches rely on.
///
/// Snapshots are zero-copy: the table layer is a chunked, shared-ownership
/// column store (table/chunk.h), so Append builds the next version by
/// appending one chunk per column and *sharing* every prior chunk with the
/// parent — O(batch) per append, independent of total rows. Readers holding
/// an old version keep its chunks alive; dropping a version frees only the
/// chunks no other version references. This keeps snapshot cost negligible
/// even when ingest rates rival select rates (see bench_streaming's
/// append-cost series).

namespace subtab::stream {

/// One immutable version of the streamed content.
struct TableVersion {
  /// 0 = the base table; +1 per appended batch.
  uint64_t version = 0;
  /// Chained content fingerprint: TableFingerprint(base) for version 0, then
  /// ChainFingerprint(parent, batch slice fp, version) per append.
  uint64_t fingerprint = 0;
  /// Slice fingerprint of this version's batch (base fingerprint for v0).
  uint64_t delta_fp = 0;
  /// Rows this version's batch added (num_rows of the base for v0).
  size_t delta_rows = 0;
  size_t num_rows = 0;
  std::shared_ptr<const Table> table;
};

/// Thread-safe append-mostly table handle.
class StreamingTable {
 public:
  /// Wraps a non-empty base table as version 0. Heap-allocated: the handle
  /// owns a mutex, so it is neither copyable nor movable.
  static Result<std::unique_ptr<StreamingTable>> Open(Table base);

  StreamingTable(const StreamingTable&) = delete;
  StreamingTable& operator=(const StreamingTable&) = delete;

  /// Appends a batch (same schema: column names and types, in order; at
  /// least one row) and publishes the next version. Returns the new
  /// snapshot. Appenders must be serialized by the caller (StreamSession
  /// holds its append mutex); concurrent Current() readers are always safe
  /// and keep whatever snapshot they already hold.
  Result<TableVersion> Append(const Table& batch);

  /// Two-phase variant for callers that must do fallible work between
  /// building a version and exposing it (StreamSession: the model refresh
  /// can fail, and a published table without a matching model would wedge
  /// the stream). Prepare builds the next snapshot without publishing;
  /// Publish installs it. Callers serialize their own Prepare/Publish
  /// pairs; Publish checks the version chains off the current one.
  Result<TableVersion> Prepare(const Table& batch) const;
  void Publish(const TableVersion& next);

  /// The latest published snapshot.
  TableVersion Current() const;

  uint64_t version() const { return Current().version; }
  size_t num_rows() const { return Current().num_rows; }

 private:
  explicit StreamingTable(TableVersion base);

  mutable std::mutex mu_;
  TableVersion current_;
};

}  // namespace subtab::stream

#endif  // SUBTAB_STREAM_STREAMING_TABLE_H_
