#ifndef SUBTAB_TABLE_CHUNK_H_
#define SUBTAB_TABLE_CHUNK_H_

#include <cstdint>
#include <vector>

#include "subtab/util/check.h"

/// \file chunk.h
/// The immutable storage unit of the chunked column store. A Chunk holds a
/// contiguous slice of one column's payload (validity bytes plus the numeric
/// or dictionary-code array); a Column is a sequence of
/// std::shared_ptr<const Chunk>. Chunks are sealed once and never mutated
/// afterwards, so any number of tables — most importantly the successive
/// versions of a streaming table (stream/streaming_table.h) — can share them
/// concurrently without synchronization: appending a batch creates one new
/// chunk and *shares* every prior chunk, making a snapshot O(batch) instead
/// of O(rows). The idiom follows chunked-table storage engines (Hyrise-style
/// immutable chunks; see SNIPPETS.md).
///
/// A Chunk stores no dictionary: categorical codes are assigned against the
/// owning column's cumulative dictionary (first-seen order across the whole
/// chunk sequence), so a code is valid in every later version that shares
/// the chunk — later versions only ever extend the dictionary.

namespace subtab {

class Column;

/// One immutable slice of a column's payload. Only Column builds chunks;
/// everything else reads them through const access.
class Chunk {
 public:
  Chunk() = default;

  size_t size() const { return valid_.size(); }

  bool is_null(size_t i) const {
    SUBTAB_DCHECK(i < valid_.size());
    return valid_[i] == 0;
  }

  /// Numeric payload; NaN for null slots.
  double num_value(size_t i) const {
    SUBTAB_DCHECK(i < nums_.size());
    return nums_[i];
  }

  /// Dictionary code against the owning column's dictionary; -1 for nulls.
  int32_t cat_code(size_t i) const {
    SUBTAB_DCHECK(i < codes_.size());
    return codes_[i];
  }

  size_t null_count() const;

  /// Heap payload bytes (validity + values), for resident-memory accounting.
  size_t ByteSize() const {
    return valid_.size() * sizeof(uint8_t) + nums_.size() * sizeof(double) +
           codes_.size() * sizeof(int32_t);
  }

 private:
  friend class Column;

  std::vector<uint8_t> valid_;  ///< 1 = present, 0 = null.
  std::vector<double> nums_;    ///< Numeric payload (empty for categorical).
  std::vector<int32_t> codes_;  ///< Categorical payload (empty for numeric).
};

}  // namespace subtab

#endif  // SUBTAB_TABLE_CHUNK_H_
