#ifndef SUBTAB_TABLE_CHUNK_H_
#define SUBTAB_TABLE_CHUNK_H_

#include <cstdint>
#include <vector>

#include "subtab/util/check.h"

/// \file chunk.h
/// The immutable storage unit of the chunked column store. A Chunk holds a
/// contiguous slice of one column's payload (validity bytes plus the numeric
/// or dictionary-code array); a Column is a sequence of
/// std::shared_ptr<const Chunk>. Chunks are sealed once and never mutated
/// afterwards, so any number of tables — most importantly the successive
/// versions of a streaming table (stream/streaming_table.h) — can share them
/// concurrently without synchronization: appending a batch creates one new
/// chunk and *shares* every prior chunk, making a snapshot O(batch) instead
/// of O(rows). The idiom follows chunked-table storage engines (Hyrise-style
/// immutable chunks; see SNIPPETS.md).
///
/// A Chunk stores no dictionary: categorical codes are assigned against the
/// owning column's cumulative dictionary (first-seen order across the whole
/// chunk sequence), so a code is valid in every later version that shares
/// the chunk — later versions only ever extend the dictionary.

namespace subtab {

class Column;

enum class ColumnType;

/// Seal-time zone map of one chunk (Hyrise-style chunk statistics): enough
/// to refute a whole conjunct for the chunk without reading a single cell.
/// Computed once by Column::SealTail and immutable afterwards, so every
/// snapshot that shares the chunk's shared_ptr carries the stats for free —
/// Table::AppendRows and streaming versioning stay O(batch). Stats exist
/// only for sealed chunks; the open tail has none, so fresh appends can
/// never be pruned by a stale zone.
struct ChunkStats {
  /// Distinct-code cap: past this many distinct codes the set is dropped
  /// (has_code_set stays false) and only null counts can refute the chunk.
  static constexpr size_t kMaxTrackedCodes = 64;

  bool valid = false;     ///< True once SealTail computed the stats.
  size_t null_count = 0;  ///< Null slots in the chunk.
  /// Numeric zone: min/max over non-null values (never NaN — NaN input is
  /// stored as null). has_range is false when every slot is null.
  bool has_range = false;
  double min = 0.0;
  double max = 0.0;
  /// Categorical zone: the sorted distinct dictionary codes present in the
  /// chunk, tracked only up to kMaxTrackedCodes distinct values.
  bool has_code_set = false;
  std::vector<int32_t> codes;
};

/// One immutable slice of a column's payload. Only Column builds chunks;
/// everything else reads them through const access.
class Chunk {
 public:
  Chunk() = default;

  size_t size() const { return valid_.size(); }

  bool is_null(size_t i) const {
    SUBTAB_DCHECK(i < valid_.size());
    return valid_[i] == 0;
  }

  /// Numeric payload; NaN for null slots.
  double num_value(size_t i) const {
    SUBTAB_DCHECK(i < nums_.size());
    return nums_[i];
  }

  /// Dictionary code against the owning column's dictionary; -1 for nulls.
  int32_t cat_code(size_t i) const {
    SUBTAB_DCHECK(i < codes_.size());
    return codes_[i];
  }

  size_t null_count() const;

  /// Seal-time zone map; stats().valid is false only for the open tail
  /// (which is never a sealed chunk inside a Table).
  const ChunkStats& stats() const { return stats_; }

  /// Heap payload bytes (validity + values), for resident-memory accounting.
  size_t ByteSize() const {
    return valid_.size() * sizeof(uint8_t) + nums_.size() * sizeof(double) +
           codes_.size() * sizeof(int32_t);
  }

 private:
  friend class Column;

  /// Fills stats_ from the payload — called exactly once, by
  /// Column::SealTail, right before the chunk becomes immutable.
  void ComputeStats(ColumnType type);

  std::vector<uint8_t> valid_;  ///< 1 = present, 0 = null.
  std::vector<double> nums_;    ///< Numeric payload (empty for categorical).
  std::vector<int32_t> codes_;  ///< Categorical payload (empty for numeric).
  ChunkStats stats_;            ///< Zone map, filled at seal time.
};

}  // namespace subtab

#endif  // SUBTAB_TABLE_CHUNK_H_
