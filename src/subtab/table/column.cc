#include "subtab/table/column.h"

#include <cmath>
#include <unordered_set>

#include "subtab/util/string_util.h"

namespace subtab {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kNumeric:
      return "numeric";
    case ColumnType::kCategorical:
      return "categorical";
  }
  return "unknown";
}

Column::Column(std::string name, ColumnType type)
    : name_(std::move(name)), type_(type) {}

Column Column::Numeric(std::string name, const std::vector<double>& values) {
  Column col(std::move(name), ColumnType::kNumeric);
  col.Reserve(values.size());
  for (double v : values) col.AppendNumeric(v);
  return col;
}

Column Column::Categorical(std::string name, const std::vector<std::string>& values) {
  Column col(std::move(name), ColumnType::kCategorical);
  col.Reserve(values.size());
  for (const auto& v : values) {
    if (v.empty()) {
      col.AppendNull();
    } else {
      col.AppendCategorical(v);
    }
  }
  return col;
}

void Column::Reserve(size_t n) {
  valid_.reserve(n);
  if (type_ == ColumnType::kNumeric) {
    nums_.reserve(n);
  } else {
    codes_.reserve(n);
  }
}

void Column::AppendNull() {
  valid_.push_back(0);
  if (type_ == ColumnType::kNumeric) {
    nums_.push_back(std::nan(""));
  } else {
    codes_.push_back(-1);
  }
}

void Column::AppendNumeric(double value) {
  SUBTAB_CHECK(type_ == ColumnType::kNumeric);
  if (std::isnan(value)) {
    AppendNull();
    return;
  }
  valid_.push_back(1);
  nums_.push_back(value);
}

void Column::AppendCategorical(std::string_view value) {
  SUBTAB_CHECK(type_ == ColumnType::kCategorical);
  std::string key(value);
  auto it = dict_index_.find(key);
  int32_t code;
  if (it == dict_index_.end()) {
    code = static_cast<int32_t>(dict_.size());
    dict_.push_back(key);
    dict_index_.emplace(std::move(key), code);
  } else {
    code = it->second;
  }
  valid_.push_back(1);
  codes_.push_back(code);
}

size_t Column::null_count() const {
  size_t n = 0;
  for (uint8_t v : valid_) n += (v == 0);
  return n;
}

double Column::num_value(size_t row) const {
  SUBTAB_CHECK(type_ == ColumnType::kNumeric);
  SUBTAB_DCHECK(row < size());
  return nums_[row];
}

int32_t Column::cat_code(size_t row) const {
  SUBTAB_CHECK(type_ == ColumnType::kCategorical);
  SUBTAB_DCHECK(row < size());
  SUBTAB_DCHECK(valid_[row] != 0);
  return codes_[row];
}

std::string_view Column::cat_value(size_t row) const {
  return dict_[static_cast<size_t>(cat_code(row))];
}

size_t Column::distinct_count() const {
  if (type_ == ColumnType::kCategorical) {
    std::unordered_set<int32_t> seen;
    for (size_t i = 0; i < size(); ++i) {
      if (valid_[i]) seen.insert(codes_[i]);
    }
    return seen.size();
  }
  std::unordered_set<double> seen;
  for (size_t i = 0; i < size(); ++i) {
    if (valid_[i]) seen.insert(nums_[i]);
  }
  return seen.size();
}

std::string Column::ToDisplay(size_t row) const {
  if (is_null(row)) return "NaN";
  if (type_ == ColumnType::kNumeric) return FormatCell(nums_[row]);
  return std::string(cat_value(row));
}

Column Column::Take(const std::vector<size_t>& indices) const {
  Column out(name_, type_);
  out.Reserve(indices.size());
  for (size_t i : indices) {
    SUBTAB_CHECK(i < size());
    if (is_null(i)) {
      out.AppendNull();
    } else if (type_ == ColumnType::kNumeric) {
      out.AppendNumeric(nums_[i]);
    } else {
      out.AppendCategorical(cat_value(i));
    }
  }
  return out;
}

bool Column::NumericRange(double* min_out, double* max_out) const {
  SUBTAB_CHECK(type_ == ColumnType::kNumeric);
  bool found = false;
  double mn = 0.0;
  double mx = 0.0;
  for (size_t i = 0; i < size(); ++i) {
    if (!valid_[i]) continue;
    const double v = nums_[i];
    if (!found || v < mn) mn = v;
    if (!found || v > mx) mx = v;
    found = true;
  }
  if (found) {
    *min_out = mn;
    *max_out = mx;
  }
  return found;
}

}  // namespace subtab
