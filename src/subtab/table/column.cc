#include "subtab/table/column.h"

#include <cmath>
#include <unordered_set>

#include "subtab/util/string_util.h"

namespace subtab {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kNumeric:
      return "numeric";
    case ColumnType::kCategorical:
      return "categorical";
  }
  return "unknown";
}

size_t Chunk::null_count() const {
  if (stats_.valid) return stats_.null_count;
  size_t n = 0;
  for (uint8_t v : valid_) n += (v == 0);
  return n;
}

void Chunk::ComputeStats(ColumnType type) {
  ChunkStats s;
  s.valid = true;
  for (uint8_t v : valid_) s.null_count += (v == 0);
  if (type == ColumnType::kNumeric) {
    // Non-null values are never NaN (NaN input is stored as null), so the
    // running min/max are well-defined plain comparisons.
    for (size_t i = 0; i < valid_.size(); ++i) {
      if (valid_[i] == 0) continue;
      const double v = nums_[i];
      if (!s.has_range || v < s.min) s.min = v;
      if (!s.has_range || v > s.max) s.max = v;
      s.has_range = true;
    }
  } else {
    // Distinct codes, abandoned past the cap: a high-cardinality chunk is
    // unlikely to be refutable by set membership anyway, and the zone map
    // must stay O(chunk) to build and O(1) to carry.
    std::unordered_set<int32_t> seen;
    bool capped = false;
    for (size_t i = 0; i < valid_.size() && !capped; ++i) {
      if (valid_[i] == 0) continue;
      seen.insert(codes_[i]);
      capped = seen.size() > ChunkStats::kMaxTrackedCodes;
    }
    if (!capped) {
      s.has_code_set = true;
      s.codes.assign(seen.begin(), seen.end());
      std::sort(s.codes.begin(), s.codes.end());
    }
  }
  stats_ = std::move(s);
}

Column::Column(std::string name, ColumnType type)
    : name_(std::move(name)), type_(type) {}

Column::Column(const Column& other)
    : name_(other.name_),
      type_(other.type_),
      size_(other.size_),
      sealed_rows_(other.sealed_rows_),
      chunks_(other.chunks_),
      offsets_(other.offsets_),
      tail_(other.tail_ ? std::make_unique<Chunk>(*other.tail_) : nullptr),
      dict_(other.dict_) {}

Column& Column::operator=(const Column& other) {
  if (this != &other) {
    Column copy(other);
    *this = std::move(copy);
  }
  return *this;
}

Column Column::Numeric(std::string name, const std::vector<double>& values) {
  Column col(std::move(name), ColumnType::kNumeric);
  col.Reserve(values.size());
  for (double v : values) col.AppendNumeric(v);
  return col;
}

Column Column::Categorical(std::string name, const std::vector<std::string>& values) {
  Column col(std::move(name), ColumnType::kCategorical);
  col.Reserve(values.size());
  for (const auto& v : values) {
    if (v.empty()) {
      col.AppendNull();
    } else {
      col.AppendCategorical(v);
    }
  }
  return col;
}

Chunk& Column::MutableTail() {
  if (!tail_) tail_ = std::make_unique<Chunk>();
  return *tail_;
}

void Column::Reserve(size_t n) {
  if (n <= size_) return;
  Chunk& tail = MutableTail();
  const size_t tail_rows = n - sealed_rows_;
  tail.valid_.reserve(tail_rows);
  if (type_ == ColumnType::kNumeric) {
    tail.nums_.reserve(tail_rows);
  } else {
    tail.codes_.reserve(tail_rows);
  }
}

void Column::SealTail() {
  if (!tail_) return;
  if (tail_->size() == 0) {
    tail_.reset();
    return;
  }
  tail_->ComputeStats(type_);  // Zone map rides the seal: O(chunk), once.
  offsets_.push_back(sealed_rows_);
  sealed_rows_ += tail_->size();
  chunks_.emplace_back(std::move(tail_));
  tail_.reset();
}

void Column::AppendNull() {
  Chunk& tail = MutableTail();
  tail.valid_.push_back(0);
  if (type_ == ColumnType::kNumeric) {
    tail.nums_.push_back(std::nan(""));
  } else {
    tail.codes_.push_back(-1);
  }
  ++size_;
}

void Column::AppendNumeric(double value) {
  SUBTAB_CHECK(type_ == ColumnType::kNumeric);
  if (std::isnan(value)) {
    AppendNull();
    return;
  }
  Chunk& tail = MutableTail();
  tail.valid_.push_back(1);
  tail.nums_.push_back(value);
  ++size_;
}

const std::vector<std::string>& Column::dictionary() const {
  static const std::vector<std::string> kEmpty;
  return dict_ ? dict_->words : kEmpty;
}

Column::Dictionary& Column::MutableDict() {
  if (!dict_) {
    dict_ = std::make_shared<Dictionary>();
  } else if (dict_.use_count() > 1) {
    // Another column shares this dictionary (an older snapshot, a copy):
    // clone before writing so the extension is invisible through it.
    dict_ = std::make_shared<Dictionary>(*dict_);
  }
  return *dict_;
}

int32_t Column::LookupOrAddCode(std::string_view value) {
  std::string key(value);
  if (dict_) {
    auto it = dict_->index.find(key);
    if (it != dict_->index.end()) return it->second;
  }
  Dictionary& dict = MutableDict();
  const int32_t code = static_cast<int32_t>(dict.words.size());
  dict.words.push_back(key);
  dict.index.emplace(std::move(key), code);
  return code;
}

void Column::AppendCode(int32_t code) {
  SUBTAB_DCHECK(dict_ != nullptr &&
                static_cast<size_t>(code) < dict_->words.size());
  Chunk& tail = MutableTail();
  tail.valid_.push_back(1);
  tail.codes_.push_back(code);
  ++size_;
}

void Column::AppendCategorical(std::string_view value) {
  SUBTAB_CHECK(type_ == ColumnType::kCategorical);
  AppendCode(LookupOrAddCode(value));
}

size_t Column::null_count() const {
  size_t n = 0;
  for (const auto& chunk : chunks_) n += chunk->null_count();
  if (tail_) n += tail_->null_count();
  return n;
}

double Column::num_value(size_t row) const {
  SUBTAB_CHECK(type_ == ColumnType::kNumeric);
  SUBTAB_DCHECK(row < size_);
  size_t local = 0;
  return LocateRow(row, &local).num_value(local);
}

int32_t Column::cat_code(size_t row) const {
  SUBTAB_CHECK(type_ == ColumnType::kCategorical);
  SUBTAB_DCHECK(row < size_);
  size_t local = 0;
  const Chunk& chunk = LocateRow(row, &local);
  SUBTAB_DCHECK(!chunk.is_null(local));
  return chunk.cat_code(local);
}

std::string_view Column::cat_value(size_t row) const {
  return dict_->words[static_cast<size_t>(cat_code(row))];
}

size_t Column::distinct_count() const {
  if (type_ == ColumnType::kCategorical) {
    std::unordered_set<int32_t> seen;
    VisitRows(0, size_, [&](size_t, const Chunk& chunk, size_t local) {
      if (!chunk.is_null(local)) seen.insert(chunk.cat_code(local));
    });
    return seen.size();
  }
  std::unordered_set<double> seen;
  VisitRows(0, size_, [&](size_t, const Chunk& chunk, size_t local) {
    if (!chunk.is_null(local)) seen.insert(chunk.num_value(local));
  });
  return seen.size();
}

std::string Column::ToDisplay(size_t row) const {
  if (is_null(row)) return "NaN";
  if (type_ == ColumnType::kNumeric) return FormatCell(num_value(row));
  return std::string(cat_value(row));
}

Column Column::Take(const std::vector<size_t>& indices) const {
  Column out(name_, type_);
  out.Reserve(indices.size());
  for (size_t i : indices) {
    SUBTAB_CHECK(i < size_);
    size_t local = 0;
    const Chunk& chunk = LocateRow(i, &local);  // One lookup per row.
    if (chunk.is_null(local)) {
      out.AppendNull();
    } else if (type_ == ColumnType::kNumeric) {
      out.AppendNumeric(chunk.num_value(local));
    } else {
      out.AppendCategorical(
          dict_->words[static_cast<size_t>(chunk.cat_code(local))]);
    }
  }
  return out;
}

bool Column::NumericRange(double* min_out, double* max_out) const {
  SUBTAB_CHECK(type_ == ColumnType::kNumeric);
  bool found = false;
  double mn = 0.0;
  double mx = 0.0;
  VisitRows(0, size_, [&](size_t, const Chunk& chunk, size_t local) {
    if (chunk.is_null(local)) return;
    const double v = chunk.num_value(local);
    if (!found || v < mn) mn = v;
    if (!found || v > mx) mx = v;
    found = true;
  });
  if (found) {
    *min_out = mn;
    *max_out = mx;
  }
  return found;
}

Column Column::AppendSlice(const Column& delta, size_t max_chunk_rows) const {
  SUBTAB_CHECK(delta.type_ == type_);
  Column out(*this);
  out.SealTail();
  size_t in_chunk = 0;
  const auto maybe_seal = [&out, &in_chunk, max_chunk_rows]() {
    if (max_chunk_rows != 0 && ++in_chunk == max_chunk_rows) {
      out.SealTail();
      in_chunk = 0;
    }
  };
  // Remap table from delta codes to cumulative codes, resolved lazily at
  // each code's first occurrence so dictionary words extend in first-seen
  // ROW order (identical to a flat rebuild) and unused delta dictionary
  // entries are never imported. An append whose values were all seen before
  // does no dictionary write at all (the dictionary object stays shared).
  std::vector<int32_t> remap(
      type_ == ColumnType::kCategorical ? delta.dictionary().size() : 0, -1);
  delta.VisitRows(0, delta.size_, [&](size_t, const Chunk& chunk, size_t local) {
    if (chunk.is_null(local)) {
      out.AppendNull();
    } else if (type_ == ColumnType::kNumeric) {
      out.AppendNumeric(chunk.num_value(local));
    } else {
      int32_t& mapped = remap[static_cast<size_t>(chunk.cat_code(local))];
      if (mapped < 0) {
        mapped = out.LookupOrAddCode(
            delta.dict_->words[static_cast<size_t>(chunk.cat_code(local))]);
      }
      out.AppendCode(mapped);
    }
    maybe_seal();
  });
  out.SealTail();
  return out;
}

void Column::AppendRaw(const Chunk& src, size_t i) {
  Chunk& tail = MutableTail();
  tail.valid_.push_back(src.valid_[i]);
  if (type_ == ColumnType::kNumeric) {
    tail.nums_.push_back(src.nums_[i]);
  } else {
    tail.codes_.push_back(src.codes_[i]);
  }
  ++size_;
}

Column Column::Rechunked(size_t max_chunk_rows) const {
  Column out(name_, type_);
  // Share the dictionary (codes and fingerprints are preserved verbatim):
  // re-chunking changes physical layout only.
  out.dict_ = dict_;
  out.Reserve(max_chunk_rows == 0 ? size_ : std::min(size_, max_chunk_rows));
  VisitRows(0, size_, [&](size_t, const Chunk& chunk, size_t local) {
    out.AppendRaw(chunk, local);
    if (max_chunk_rows != 0 && out.size_ - out.sealed_rows_ == max_chunk_rows) {
      out.SealTail();
    }
  });
  out.SealTail();
  return out;
}

Column Column::Flattened() const { return Rechunked(0); }

size_t Column::DictBytes() const {
  if (!dict_) return 0;
  size_t bytes = 0;
  for (const std::string& word : dict_->words) {
    // String payload plus a flat estimate for the words-vector slot and the
    // index entry; close enough for the sharing ratios the stats report.
    bytes += word.size() + sizeof(std::string) + 48;
  }
  return bytes;
}

size_t Column::ApproxBytes() const {
  size_t bytes = DictBytes();
  for (const auto& chunk : chunks_) bytes += chunk->ByteSize();
  if (tail_) bytes += tail_->ByteSize();
  return bytes;
}

}  // namespace subtab
