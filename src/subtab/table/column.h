#ifndef SUBTAB_TABLE_COLUMN_H_
#define SUBTAB_TABLE_COLUMN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "subtab/util/check.h"

/// \file column.h
/// Columnar storage for the dataframe substrate (Sec. 3.1 of the paper models
/// tables as tuples over a schema; we store them column-wise like Arrow /
/// Pandas). Two physical types cover the paper's data model:
///   * kNumeric      — doubles with a validity bitmap (NaN input => null),
///   * kCategorical  — dictionary-encoded strings with a validity bitmap.
/// Nulls are first-class: the paper's examples use NaN as a *value* that
/// participates in association rules (e.g. DEP_TIME = NaN for cancelled
/// flights), which the binning layer later maps to a dedicated bin.

namespace subtab {

enum class ColumnType { kNumeric, kCategorical };

/// Returns "numeric" / "categorical".
const char* ColumnTypeName(ColumnType type);

/// A single named, typed column. Append-only builder API plus random access.
class Column {
 public:
  /// Creates an empty column of the given type.
  Column(std::string name, ColumnType type);

  /// Convenience factory: numeric column from values; NaNs become nulls.
  static Column Numeric(std::string name, const std::vector<double>& values);

  /// Convenience factory: categorical column from strings; empty strings
  /// become nulls.
  static Column Categorical(std::string name, const std::vector<std::string>& values);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  ColumnType type() const { return type_; }
  size_t size() const { return valid_.size(); }
  bool is_numeric() const { return type_ == ColumnType::kNumeric; }

  // -- Builder API ----------------------------------------------------------

  void AppendNull();
  void AppendNumeric(double value);          // NaN is recorded as null.
  void AppendCategorical(std::string_view value);
  void Reserve(size_t n);

  // -- Access ---------------------------------------------------------------

  bool is_null(size_t row) const {
    SUBTAB_DCHECK(row < size());
    return valid_[row] == 0;
  }
  size_t null_count() const;

  /// Numeric value; NaN if null. Column must be numeric.
  double num_value(size_t row) const;

  /// Dictionary code of a categorical cell; requires non-null cell.
  int32_t cat_code(size_t row) const;

  /// Dictionary string for a categorical cell; requires non-null cell.
  std::string_view cat_value(size_t row) const;

  /// The dictionary of distinct categorical values, in first-seen order.
  const std::vector<std::string>& dictionary() const { return dict_; }

  /// Number of distinct non-null values.
  size_t distinct_count() const;

  /// Cell rendered for display ("NaN" for nulls).
  std::string ToDisplay(size_t row) const;

  /// New column containing rows at `indices` (duplicates allowed).
  Column Take(const std::vector<size_t>& indices) const;

  /// Min / max over non-null numeric values; returns false if no such value.
  bool NumericRange(double* min_out, double* max_out) const;

 private:
  std::string name_;
  ColumnType type_;
  std::vector<uint8_t> valid_;       // 1 = present, 0 = null.
  std::vector<double> nums_;         // Numeric payload (size() entries).
  std::vector<int32_t> codes_;       // Categorical payload (size() entries).
  std::vector<std::string> dict_;    // Dictionary for categorical columns.
  std::unordered_map<std::string, int32_t> dict_index_;
};

}  // namespace subtab

#endif  // SUBTAB_TABLE_COLUMN_H_
