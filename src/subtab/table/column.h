#ifndef SUBTAB_TABLE_COLUMN_H_
#define SUBTAB_TABLE_COLUMN_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "subtab/table/chunk.h"
#include "subtab/util/check.h"

/// \file column.h
/// Columnar storage for the dataframe substrate (Sec. 3.1 of the paper models
/// tables as tuples over a schema; we store them column-wise like Arrow /
/// Pandas). Two physical types cover the paper's data model:
///   * kNumeric      — doubles with a validity bitmap (NaN input => null),
///   * kCategorical  — dictionary-encoded strings with a validity bitmap.
/// Nulls are first-class: the paper's examples use NaN as a *value* that
/// participates in association rules (e.g. DEP_TIME = NaN for cancelled
/// flights), which the binning layer later maps to a dedicated bin.
///
/// Physically a column is a sequence of immutable, shared chunks (chunk.h)
/// plus an open "tail" chunk the builder API appends into. Copying a column
/// shares the sealed chunks (O(chunks), not O(rows)); AppendSlice produces a
/// longer column that shares every sealed chunk — the O(batch) snapshot path
/// of the streaming layer. Row access goes through a chunk-aware lookup
/// (single-chunk fast path; binary search otherwise); scans should use
/// VisitRows, which amortizes the lookup per chunk, or Flattened() — the
/// explicit single-chunk escape hatch for hot random-access loops.
///
/// The dictionary lives on the column, not on chunks, and is cumulative in
/// first-seen order across the whole chunk sequence: codes frozen into old
/// chunks stay valid in every descendant column, which only ever *extends*
/// the dictionary. It is itself shared copy-on-write: column copies and
/// AppendSlice share the dictionary object and clone it only when a write
/// would be visible through another reference, so an append whose batch
/// introduces no new categories does no dictionary work at all.
/// Thread-safety: all const members touch only immutable state (no mutable
/// caches), so concurrent readers of a sealed column are safe — the
/// contract the serving engine's shared snapshots rely on.

namespace subtab {

enum class ColumnType { kNumeric, kCategorical };

/// Returns "numeric" / "categorical".
const char* ColumnTypeName(ColumnType type);

/// A single named, typed column. Append-only builder API plus random access.
class Column {
 public:
  /// Creates an empty column of the given type.
  Column(std::string name, ColumnType type);

  /// Convenience factory: numeric column from values; NaNs become nulls.
  static Column Numeric(std::string name, const std::vector<double>& values);

  /// Convenience factory: categorical column from strings; empty strings
  /// become nulls.
  static Column Categorical(std::string name, const std::vector<std::string>& values);

  /// Copies share the sealed chunks and deep-copy only the open tail (which
  /// is bounded by one chunk), so copying a sealed column is O(chunks).
  Column(const Column& other);
  Column& operator=(const Column& other);
  Column(Column&&) = default;
  Column& operator=(Column&&) = default;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  ColumnType type() const { return type_; }
  size_t size() const { return size_; }
  bool is_numeric() const { return type_ == ColumnType::kNumeric; }

  // -- Builder API ----------------------------------------------------------

  void AppendNull();
  void AppendNumeric(double value);          // NaN is recorded as null.
  void AppendCategorical(std::string_view value);
  void Reserve(size_t n);

  /// Freezes the open tail into an immutable shared chunk (no-op when the
  /// tail is empty). Table::AddColumn seals on insertion, so every column
  /// *inside* a Table is fully sealed and safe to share across threads.
  void SealTail();

  // -- Access ---------------------------------------------------------------

  bool is_null(size_t row) const {
    SUBTAB_DCHECK(row < size_);
    size_t local = 0;
    return LocateRow(row, &local).is_null(local);
  }
  size_t null_count() const;

  /// Numeric value; NaN if null. Column must be numeric.
  double num_value(size_t row) const;

  /// Dictionary code of a categorical cell; requires non-null cell.
  int32_t cat_code(size_t row) const;

  /// Dictionary string for a categorical cell; requires non-null cell.
  std::string_view cat_value(size_t row) const;

  /// The dictionary of distinct categorical values, in first-seen order.
  const std::vector<std::string>& dictionary() const;

  /// Number of distinct non-null values.
  size_t distinct_count() const;

  /// Cell rendered for display ("NaN" for nulls).
  std::string ToDisplay(size_t row) const;

  /// New column containing rows at `indices` (duplicates allowed).
  Column Take(const std::vector<size_t>& indices) const;

  /// Min / max over non-null numeric values; returns false if no such value.
  bool NumericRange(double* min_out, double* max_out) const;

  // -- Chunked storage ------------------------------------------------------

  /// Sealed chunks, in row order (the open tail, if any, is not included).
  const std::vector<std::shared_ptr<const Chunk>>& chunks() const {
    return chunks_;
  }
  /// Sealed chunks plus the open tail.
  size_t num_chunks() const { return chunks_.size() + (tail_ ? 1 : 0); }
  /// First row covered by sealed chunk `i`.
  size_t chunk_offset(size_t i) const {
    SUBTAB_CHECK(i < offsets_.size());
    return offsets_[i];
  }

  /// New column = this column's rows followed by `delta`'s rows. Shares every
  /// sealed chunk with this column and appends the delta as new chunk(s) of
  /// at most `max_chunk_rows` rows each (0 = one chunk for the whole delta),
  /// remapping delta categoricals through the cumulative dictionary. Cost is
  /// O(delta + dictionary), independent of this column's row count — the
  /// streaming snapshot path (Table::AppendRows).
  Column AppendSlice(const Column& delta, size_t max_chunk_rows = 0) const;

  /// Deep single-chunk copy: same values, codes, and dictionary, all payload
  /// in one chunk — the escape hatch for hot random-access loops.
  Column Flattened() const;

  /// Same content re-sliced into chunks of at most `max_chunk_rows` rows
  /// (0 = one chunk). Chunk layout changes; values, codes, dictionary — and
  /// therefore fingerprints — do not.
  Column Rechunked(size_t max_chunk_rows) const;

  /// Approximate heap bytes of this column's payload, counting every chunk
  /// (shared or not) once per reference plus the dictionary. The engine's
  /// resident-memory stats deduplicate shared chunks and dictionaries
  /// across tables.
  size_t ApproxBytes() const;

  /// Approximate heap bytes of the dictionary alone (0 for numeric columns).
  size_t DictBytes() const;

  /// Identity of the shared dictionary object (columns that share a
  /// dictionary return the same pointer; nullptr when empty). Resident
  /// accounting deduplicates by it.
  const void* dict_identity() const { return dict_.get(); }

  /// Chunk-sequential scan over rows [begin, end): fn(row, chunk, local) is
  /// called with chunk.is_null(local) / num_value / cat_code valid. Amortizes
  /// the row->chunk lookup to once per chunk — use for scans (predicates,
  /// fingerprints, binning) instead of per-row accessors.
  template <typename Fn>
  void VisitRows(size_t begin, size_t end, Fn&& fn) const {
    SUBTAB_CHECK(begin <= end && end <= size_);
    size_t row = begin;
    while (row < end) {
      size_t local = 0;
      const Chunk& chunk = LocateRow(row, &local);
      const size_t stop = std::min(end - row + local, chunk.size());
      for (; local < stop; ++local, ++row) fn(row, chunk, local);
    }
  }

 private:
  /// Chunk containing `row`; `*local` is the row's index within it.
  const Chunk& LocateRow(size_t row, size_t* local) const {
    if (row >= sealed_rows_) {
      *local = row - sealed_rows_;
      return *tail_;
    }
    size_t idx = 0;
    if (chunks_.size() > 1) {
      idx = static_cast<size_t>(std::upper_bound(offsets_.begin(),
                                                 offsets_.end(), row) -
                                offsets_.begin()) -
            1;
    }
    *local = row - offsets_[idx];
    return *chunks_[idx];
  }

  /// The open tail, created on first append.
  Chunk& MutableTail();

  /// Appends chunk `src`'s slot `i` to the tail verbatim (codes preserved;
  /// used by Flattened/Rechunked, which keep the dictionary as-is).
  void AppendRaw(const Chunk& src, size_t i);

  /// Shared, copy-on-write dictionary of a categorical column.
  struct Dictionary {
    std::vector<std::string> words;  ///< First-seen order.
    std::unordered_map<std::string, int32_t> index;
  };

  /// The dictionary for writing: created lazily; cloned first if another
  /// column shares it (so the write is invisible through that reference).
  Dictionary& MutableDict();

  /// Code of `value` in the dictionary, extending it on first sight.
  int32_t LookupOrAddCode(std::string_view value);

  /// Appends a pre-resolved dictionary code (must be valid in dict_).
  void AppendCode(int32_t code);

  std::string name_;
  ColumnType type_;
  size_t size_ = 0;         ///< Total rows (sealed + tail).
  size_t sealed_rows_ = 0;  ///< Rows covered by sealed chunks.
  std::vector<std::shared_ptr<const Chunk>> chunks_;
  std::vector<size_t> offsets_;  ///< First row of each sealed chunk.
  std::unique_ptr<Chunk> tail_;  ///< Open chunk under construction.
  std::shared_ptr<Dictionary> dict_;  ///< Null until the first value.
};

}  // namespace subtab

#endif  // SUBTAB_TABLE_COLUMN_H_
