#include "subtab/table/csv.h"

#include <fstream>
#include <unordered_set>

#include "subtab/util/string_util.h"

namespace subtab {
namespace {

bool NeedsQuoting(std::string_view s, char delimiter) {
  for (char c : s) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

std::string QuoteField(std::string_view s, char delimiter) {
  if (!NeedsQuoting(s, delimiter)) return std::string(s);
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

bool ParseCsvRecord(std::string_view line, char delimiter,
                    std::vector<std::string>* fields) {
  fields->clear();
  std::string cur;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"' && cur.empty()) {
      in_quotes = true;
    } else if (c == delimiter) {
      fields->push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r' && i + 1 == line.size()) {
      // Trailing CR from CRLF input; drop it.
    } else {
      cur += c;
    }
    ++i;
  }
  if (in_quotes) return false;
  fields->push_back(std::move(cur));
  return true;
}

Result<Table> ReadCsv(std::istream& in, const CsvOptions& options) {
  std::unordered_set<std::string> na_set;
  for (const auto& na : options.na_values) na_set.insert(StrLower(na));
  auto is_na = [&na_set](const std::string& s) {
    return na_set.count(StrLower(std::string(StrTrim(s)))) > 0;
  };

  std::string line;
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> records;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() && in.peek() == EOF) break;
    std::vector<std::string> fields;
    // RFC 4180: quoted fields may span lines; an "unterminated quote" means
    // the record continues on the next line.
    const size_t record_start_line = line_no;
    while (!ParseCsvRecord(line, options.delimiter, &fields)) {
      std::string continuation;
      if (!std::getline(in, continuation)) {
        return Status::InvalidArgument(
            StrFormat("malformed CSV record (unterminated quote) at line %zu",
                      record_start_line));
      }
      ++line_no;
      line += '\n';
      line += continuation;
    }
    if (header.empty() && options.has_header) {
      header = std::move(fields);
      continue;
    }
    if (header.empty()) {
      // Headerless input: synthesize names from the first record's arity.
      header.resize(fields.size());
      for (size_t i = 0; i < fields.size(); ++i) header[i] = StrFormat("col_%zu", i);
    }
    if (fields.size() != header.size()) {
      return Status::InvalidArgument(
          StrFormat("line %zu has %zu fields, expected %zu", line_no, fields.size(),
                    header.size()));
    }
    records.push_back(std::move(fields));
    if (options.max_rows > 0 && records.size() >= options.max_rows) break;
  }
  if (header.empty()) {
    return Status::InvalidArgument("empty CSV input");
  }

  const size_t m = header.size();
  // Type inference: numeric iff every non-NA cell parses as a finite double.
  std::vector<bool> numeric(m, true);
  std::vector<bool> any_value(m, false);
  for (const auto& rec : records) {
    for (size_t c = 0; c < m; ++c) {
      if (is_na(rec[c])) continue;
      any_value[c] = true;
      if (numeric[c] && !LooksNumeric(rec[c])) numeric[c] = false;
    }
  }

  std::vector<Column> columns;
  columns.reserve(m);
  for (size_t c = 0; c < m; ++c) {
    // All-null columns default to categorical.
    const ColumnType type = (numeric[c] && any_value[c]) ? ColumnType::kNumeric
                                                         : ColumnType::kCategorical;
    Column col(header[c], type);
    col.Reserve(records.size());
    for (const auto& rec : records) {
      if (is_na(rec[c])) {
        col.AppendNull();
      } else if (type == ColumnType::kNumeric) {
        double v = 0.0;
        SUBTAB_CHECK(ParseDouble(rec[c], &v));
        col.AppendNumeric(v);
      } else {
        col.AppendCategorical(std::string(StrTrim(rec[c])));
      }
    }
    columns.push_back(std::move(col));
  }
  Result<Table> table = Table::Make(std::move(columns));
  if (table.ok() && options.max_chunk_rows != 0) {
    return table->Rechunked(options.max_chunk_rows);
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open CSV file '" + path + "'");
  return ReadCsv(in, options);
}

Status WriteCsv(const Table& table, std::ostream& out, char delimiter) {
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out << delimiter;
    out << QuoteField(table.column(c).name(), delimiter);
  }
  out << '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << delimiter;
      const Column& col = table.column(c);
      if (col.is_null(r)) continue;  // Nulls serialize as empty fields.
      out << QuoteField(col.ToDisplay(r), delimiter);
    }
    out << '\n';
  }
  if (!out) return Status::Internal("CSV write failed");
  return Status::Ok();
}

Status WriteCsvFile(const Table& table, const std::string& path, char delimiter) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot open '" + path + "' for writing");
  return WriteCsv(table, out, delimiter);
}

}  // namespace subtab
