#ifndef SUBTAB_TABLE_CSV_H_
#define SUBTAB_TABLE_CSV_H_

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "subtab/table/table.h"
#include "subtab/util/status.h"

/// \file csv.h
/// CSV reader/writer for the dataframe substrate (the paper's datasets are
/// Kaggle CSV dumps). The reader handles RFC-4180 quoting, configurable
/// delimiters, NA spellings, and per-column type inference (a column is
/// numeric iff every non-NA cell parses as a finite double).

namespace subtab {

/// Reader configuration.
struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
  /// Cell spellings treated as null (case-insensitive).
  std::vector<std::string> na_values = {"", "na", "nan", "null", "none"};
  /// Maximum rows to read (0 = unlimited).
  size_t max_rows = 0;
  /// Chunk the loaded table into slices of at most this many rows (0 = one
  /// chunk). Content and fingerprints are layout-independent; pre-chunking a
  /// load bounds per-chunk allocation and mirrors the streaming layout.
  size_t max_chunk_rows = 0;
};

/// Parses one CSV record (handles quoted fields, embedded delimiters and
/// doubled quotes). Returns false on a malformed record (unterminated quote).
bool ParseCsvRecord(std::string_view line, char delimiter,
                    std::vector<std::string>* fields);

/// Reads a table from a stream.
Result<Table> ReadCsv(std::istream& in, const CsvOptions& options = {});

/// Reads a table from a file path.
Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options = {});

/// Writes a table as CSV (quoting cells that need it).
Status WriteCsv(const Table& table, std::ostream& out, char delimiter = ',');

/// Writes a table to a file path.
Status WriteCsvFile(const Table& table, const std::string& path, char delimiter = ',');

}  // namespace subtab

#endif  // SUBTAB_TABLE_CSV_H_
