#include "subtab/table/query.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <string_view>

#include "subtab/util/parallel.h"
#include "subtab/util/string_util.h"

namespace subtab {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "==";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
    case CmpOp::kIsNull:
      return "is null";
    case CmpOp::kNotNull:
      return "is not null";
  }
  return "?";
}

Predicate Predicate::Num(std::string column, CmpOp op, double value) {
  Predicate p;
  p.column = std::move(column);
  p.op = op;
  p.num_literal = value;
  p.literal_is_numeric = true;
  return p;
}

Predicate Predicate::Str(std::string column, CmpOp op, std::string value) {
  Predicate p;
  p.column = std::move(column);
  p.op = op;
  p.str_literal = std::move(value);
  p.literal_is_numeric = false;
  return p;
}

Predicate Predicate::IsNull(std::string column) {
  Predicate p;
  p.column = std::move(column);
  p.op = CmpOp::kIsNull;
  return p;
}

Predicate Predicate::NotNull(std::string column) {
  Predicate p;
  p.column = std::move(column);
  p.op = CmpOp::kNotNull;
  return p;
}

std::string Predicate::ToString() const {
  if (op == CmpOp::kIsNull || op == CmpOp::kNotNull) {
    return column + " " + CmpOpName(op);
  }
  if (literal_is_numeric) {
    return StrFormat("%s %s %s", column.c_str(), CmpOpName(op),
                     FormatCell(num_literal).c_str());
  }
  return column + " " + CmpOpName(op) + " '" + str_literal + "'";
}

std::string SpQuery::ToString() const {
  std::string out = "SELECT ";
  out += projection.empty() ? "*" : StrJoin(projection, ", ");
  if (!filters.empty()) {
    std::vector<std::string> parts;
    parts.reserve(filters.size());
    for (const auto& f : filters) parts.push_back(f.ToString());
    out += " WHERE " + StrJoin(parts, " AND ");
  }
  if (!order_by.empty()) {
    out += " ORDER BY " + order_by + (descending ? " DESC" : " ASC");
  }
  if (limit > 0) out += StrFormat(" LIMIT %zu", limit);
  return out;
}

namespace {

/// A predicate with its column resolved and type-checked — validation
/// happens once, serially, so the sharded scan below cannot fail mid-flight.
struct BoundPredicate {
  const Predicate* pred = nullptr;
  const Column* col = nullptr;
};

template <typename T>
bool Compare(CmpOp op, const T& lhs, const T& rhs) {
  switch (op) {
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
    default:
      return false;
  }
}

Result<BoundPredicate> BindPredicate(const Table& table, const Predicate& pred) {
  SUBTAB_ASSIGN_OR_RETURN(size_t col_idx, table.ColumnIndex(pred.column));
  const Column& col = table.column(col_idx);
  if (pred.op != CmpOp::kIsNull && pred.op != CmpOp::kNotNull &&
      col.is_numeric() != pred.literal_is_numeric) {
    return Status::InvalidArgument(
        StrFormat("predicate on '%s' mixes %s column with %s literal",
                  pred.column.c_str(), ColumnTypeName(col.type()),
                  pred.literal_is_numeric ? "numeric" : "string"));
  }
  return BoundPredicate{&pred, &col};
}

/// Evaluates one bound predicate over rows [begin, end), ANDing into `keep`
/// when `first` is false. Chunk-sequential scans (Column::VisitRows)
/// amortize the row->chunk lookup; each row's verdict depends only on that
/// row's cell, so any row partition evaluates to identical bytes.
void EvalPredicateRange(const BoundPredicate& bound, size_t begin, size_t end,
                        bool first, char* keep) {
  const Predicate& pred = *bound.pred;
  const Column& col = *bound.col;
  auto emit = [first, keep](size_t r, bool match) {
    const char m = match ? 1 : 0;
    keep[r] = first ? m : (keep[r] & m);
  };

  if (pred.op == CmpOp::kIsNull || pred.op == CmpOp::kNotNull) {
    const bool want_null = pred.op == CmpOp::kIsNull;
    col.VisitRows(begin, end, [&](size_t r, const Chunk& chunk, size_t local) {
      emit(r, chunk.is_null(local) == want_null);
    });
    return;
  }

  if (col.is_numeric()) {
    col.VisitRows(begin, end, [&](size_t r, const Chunk& chunk, size_t local) {
      // Nulls fail all value comparisons.
      emit(r, !chunk.is_null(local) &&
                  Compare(pred.op, chunk.num_value(local), pred.num_literal));
    });
  } else {
    const std::string_view want = pred.str_literal;
    const auto& dict = col.dictionary();
    col.VisitRows(begin, end, [&](size_t r, const Chunk& chunk, size_t local) {
      emit(r, !chunk.is_null(local) &&
                  Compare(pred.op,
                          std::string_view(
                              dict[static_cast<size_t>(chunk.cat_code(local))]),
                          want));
    });
  }
}

/// Shard boundaries for the filter scan: aligned to the sealed-chunk edges
/// of the filtered column with the most chunks (a streaming snapshot holds
/// one chunk per appended batch), coalesced toward `num_shards` roughly
/// row-balanced groups; an unchunked table falls back to an even row split.
/// Boundaries only partition the row space — they never affect any row's
/// verdict — so every sharding yields the same mask.
std::vector<size_t> ScanShardBoundaries(
    const std::vector<BoundPredicate>& preds, size_t num_rows,
    size_t num_shards) {
  const Column* most_chunked = nullptr;
  for (const BoundPredicate& bound : preds) {
    if (most_chunked == nullptr ||
        bound.col->chunks().size() > most_chunked->chunks().size()) {
      most_chunked = bound.col;
    }
  }
  std::vector<size_t> edges;
  if (most_chunked != nullptr && most_chunked->chunks().size() > 1) {
    for (size_t i = 0; i < most_chunked->chunks().size(); ++i) {
      edges.push_back(most_chunked->chunk_offset(i));
    }
  } else {
    for (size_t s = 0; s < num_shards; ++s) {
      edges.push_back(s * num_rows / num_shards);
    }
  }
  edges.push_back(num_rows);
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  // Coalesce consecutive edges into at most num_shards row-balanced groups.
  std::vector<size_t> bounds;
  const size_t target = (num_rows + num_shards - 1) / num_shards;
  size_t group_begin = edges.front();
  bounds.push_back(group_begin);
  for (size_t i = 1; i + 1 < edges.size(); ++i) {
    if (edges[i] - group_begin >= target) {
      bounds.push_back(edges[i]);
      group_begin = edges[i];
    }
  }
  bounds.push_back(num_rows);
  return bounds;
}

Result<std::vector<char>> EvalFilterMask(const Table& table,
                                         const std::vector<Predicate>& filters,
                                         const QueryExecOptions& exec) {
  const size_t n = table.num_rows();
  std::vector<char> keep(n, 1);
  if (filters.empty()) return keep;

  std::vector<BoundPredicate> bound;
  bound.reserve(filters.size());
  for (const Predicate& pred : filters) {
    SUBTAB_ASSIGN_OR_RETURN(BoundPredicate b, BindPredicate(table, pred));
    bound.push_back(b);
  }

  size_t threads = exec.num_threads == 0 ? HardwareThreads() : exec.num_threads;
  if (n < exec.min_parallel_rows) threads = 1;
  if (threads <= 1) {
    for (size_t i = 0; i < bound.size(); ++i) {
      EvalPredicateRange(bound[i], 0, n, /*first=*/i == 0, keep.data());
    }
    return keep;
  }

  const std::vector<size_t> bounds = ScanShardBoundaries(bound, n, threads);
  ParallelForEach(bounds.size() - 1, threads, [&](size_t s) {
    for (size_t i = 0; i < bound.size(); ++i) {
      EvalPredicateRange(bound[i], bounds[s], bounds[s + 1], i == 0,
                         keep.data());
    }
  });
  return keep;
}

}  // namespace

Result<QueryScope> ResolveQueryScope(const Table& table, const SpQuery& query,
                                     const QueryExecOptions& exec) {
  const size_t n = table.num_rows();
  SUBTAB_ASSIGN_OR_RETURN(std::vector<char> keep,
                          EvalFilterMask(table, query.filters, exec));

  std::vector<size_t> row_ids;
  for (size_t r = 0; r < n; ++r) {
    if (keep[r]) row_ids.push_back(r);
  }

  if (!query.order_by.empty()) {
    SUBTAB_ASSIGN_OR_RETURN(size_t sort_idx, table.ColumnIndex(query.order_by));
    const Column& col = table.column(sort_idx);
    auto null_last_less = [&col](size_t a, size_t b) {
      const bool na = col.is_null(a);
      const bool nb = col.is_null(b);
      if (na != nb) return nb;  // Nulls sort last.
      if (na) return false;
      if (col.is_numeric()) return col.num_value(a) < col.num_value(b);
      return col.cat_value(a) < col.cat_value(b);
    };
    std::stable_sort(row_ids.begin(), row_ids.end(), null_last_less);
    if (query.descending) std::reverse(row_ids.begin(), row_ids.end());
  }

  if (query.limit > 0 && row_ids.size() > query.limit) {
    row_ids.resize(query.limit);
  }

  std::vector<size_t> col_ids;
  if (query.projection.empty()) {
    col_ids.resize(table.num_columns());
    std::iota(col_ids.begin(), col_ids.end(), 0);
  } else {
    for (const auto& name : query.projection) {
      SUBTAB_ASSIGN_OR_RETURN(size_t idx, table.ColumnIndex(name));
      col_ids.push_back(idx);
    }
  }

  QueryScope scope;
  scope.row_ids = std::move(row_ids);
  scope.col_ids = std::move(col_ids);
  return scope;
}

Result<QueryResult> RunQuery(const Table& table, const SpQuery& query,
                             const QueryExecOptions& exec) {
  SUBTAB_ASSIGN_OR_RETURN(QueryScope scope,
                          ResolveQueryScope(table, query, exec));
  QueryResult result;
  result.table = table.SubTable(scope.row_ids, scope.col_ids);
  result.row_ids = std::move(scope.row_ids);
  result.col_ids = std::move(scope.col_ids);
  return result;
}

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount:
      return "count";
    case AggFn::kSum:
      return "sum";
    case AggFn::kMean:
      return "mean";
    case AggFn::kMin:
      return "min";
    case AggFn::kMax:
      return "max";
  }
  return "?";
}

Result<Table> RunGroupBy(const Table& table, const GroupByQuery& query) {
  SUBTAB_ASSIGN_OR_RETURN(size_t key_idx, table.ColumnIndex(query.key_column));
  const Column& key = table.column(key_idx);
  const bool needs_agg_col = query.fn != AggFn::kCount;
  const Column* agg = nullptr;
  if (needs_agg_col) {
    SUBTAB_ASSIGN_OR_RETURN(size_t agg_idx, table.ColumnIndex(query.agg_column));
    agg = &table.column(agg_idx);
    if (!agg->is_numeric()) {
      return Status::InvalidArgument("aggregate column '" + query.agg_column +
                                     "' must be numeric");
    }
  }

  struct Acc {
    size_t count = 0;      // Rows in the group.
    size_t agg_count = 0;  // Non-null aggregate values in the group.
    double sum = 0.0;
    double mn = 0.0;
    double mx = 0.0;
    bool any = false;
  };
  // std::map keeps groups in deterministic key order.
  std::map<std::string, Acc> groups;
  std::map<std::string, double> numeric_keys;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (key.is_null(r)) continue;
    std::string k = key.ToDisplay(r);
    Acc& acc = groups[k];
    if (key.is_numeric()) numeric_keys[k] = key.num_value(r);
    ++acc.count;
    if (needs_agg_col && !agg->is_null(r)) {
      const double v = agg->num_value(r);
      acc.sum += v;
      if (!acc.any || v < acc.mn) acc.mn = v;
      if (!acc.any || v > acc.mx) acc.mx = v;
      acc.any = true;
      ++acc.agg_count;
    }
  }

  Column key_out = key.is_numeric() ? Column(query.key_column, ColumnType::kNumeric)
                                    : Column(query.key_column, ColumnType::kCategorical);
  const std::string agg_name =
      needs_agg_col ? StrFormat("%s(%s)", AggFnName(query.fn), query.agg_column.c_str())
                    : "count";
  Column agg_out(agg_name, ColumnType::kNumeric);
  for (const auto& [k, acc] : groups) {
    if (key.is_numeric()) {
      key_out.AppendNumeric(numeric_keys[k]);
    } else {
      key_out.AppendCategorical(k);
    }
    switch (query.fn) {
      case AggFn::kCount:
        agg_out.AppendNumeric(static_cast<double>(acc.count));
        break;
      case AggFn::kSum:
        agg_out.AppendNumeric(acc.sum);
        break;
      case AggFn::kMean:
        if (acc.any) {
          agg_out.AppendNumeric(acc.sum / static_cast<double>(acc.agg_count));
        } else {
          agg_out.AppendNull();
        }
        break;
      case AggFn::kMin:
        acc.any ? agg_out.AppendNumeric(acc.mn) : agg_out.AppendNull();
        break;
      case AggFn::kMax:
        acc.any ? agg_out.AppendNumeric(acc.mx) : agg_out.AppendNull();
        break;
    }
  }
  return Table::Make({std::move(key_out), std::move(agg_out)});
}

}  // namespace subtab
