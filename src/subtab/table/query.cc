#include "subtab/table/query.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <numeric>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "subtab/util/parallel.h"
#include "subtab/util/string_util.h"

namespace subtab {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "==";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
    case CmpOp::kIsNull:
      return "is null";
    case CmpOp::kNotNull:
      return "is not null";
  }
  return "?";
}

Predicate Predicate::Num(std::string column, CmpOp op, double value) {
  Predicate p;
  p.column = std::move(column);
  p.op = op;
  p.num_literal = value;
  p.literal_is_numeric = true;
  return p;
}

Predicate Predicate::Str(std::string column, CmpOp op, std::string value) {
  Predicate p;
  p.column = std::move(column);
  p.op = op;
  p.str_literal = std::move(value);
  p.literal_is_numeric = false;
  return p;
}

Predicate Predicate::IsNull(std::string column) {
  Predicate p;
  p.column = std::move(column);
  p.op = CmpOp::kIsNull;
  return p;
}

Predicate Predicate::NotNull(std::string column) {
  Predicate p;
  p.column = std::move(column);
  p.op = CmpOp::kNotNull;
  return p;
}

std::string Predicate::ToString() const {
  if (op == CmpOp::kIsNull || op == CmpOp::kNotNull) {
    return column + " " + CmpOpName(op);
  }
  if (literal_is_numeric) {
    return StrFormat("%s %s %s", column.c_str(), CmpOpName(op),
                     FormatCell(num_literal).c_str());
  }
  return column + " " + CmpOpName(op) + " '" + str_literal + "'";
}

std::string SpQuery::ToString() const {
  std::string out = "SELECT ";
  out += projection.empty() ? "*" : StrJoin(projection, ", ");
  if (!filters.empty()) {
    std::vector<std::string> parts;
    parts.reserve(filters.size());
    for (const auto& f : filters) parts.push_back(f.ToString());
    out += " WHERE " + StrJoin(parts, " AND ");
  }
  if (!order_by.empty()) {
    out += " ORDER BY " + order_by + (descending ? " DESC" : " ASC");
  }
  if (limit > 0) out += StrFormat(" LIMIT %zu", limit);
  return out;
}

namespace {

/// A predicate with its column resolved and type-checked — validation
/// happens once, serially, so the sharded scan below cannot fail mid-flight.
/// For value comparisons on dictionary columns, binding also resolves the
/// comparison against the dictionary ONCE (code_verdict), so the row loop
/// compares integer codes instead of materializing strings.
struct BoundPredicate {
  const Predicate* pred = nullptr;
  const Column* col = nullptr;
  /// True for value comparisons on categorical columns: code_verdict holds
  /// the per-dictionary-code answer, indexed by code.
  bool use_codes = false;
  /// True when no dictionary code satisfies the comparison — no row of the
  /// column can match (e.g. equality against a value the table never saw),
  /// so every sealed chunk is refutable without consulting its zone.
  bool always_false = false;
  std::vector<uint8_t> code_verdict;
};

template <typename T>
bool Compare(CmpOp op, const T& lhs, const T& rhs) {
  switch (op) {
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
    default:
      return false;
  }
}

Result<BoundPredicate> BindPredicate(const Table& table, const Predicate& pred) {
  SUBTAB_ASSIGN_OR_RETURN(size_t col_idx, table.ColumnIndex(pred.column));
  const Column& col = table.column(col_idx);
  if (pred.op != CmpOp::kIsNull && pred.op != CmpOp::kNotNull &&
      col.is_numeric() != pred.literal_is_numeric) {
    return Status::InvalidArgument(
        StrFormat("predicate on '%s' mixes %s column with %s literal",
                  pred.column.c_str(), ColumnTypeName(col.type()),
                  pred.literal_is_numeric ? "numeric" : "string"));
  }
  BoundPredicate bound;
  bound.pred = &pred;
  bound.col = &col;
  if (pred.op != CmpOp::kIsNull && pred.op != CmpOp::kNotNull &&
      !col.is_numeric()) {
    const std::vector<std::string>& words = col.dictionary();
    bound.use_codes = true;
    bound.code_verdict.resize(words.size());
    bool any = false;
    for (size_t c = 0; c < words.size(); ++c) {
      const bool v = Compare(pred.op, std::string_view(words[c]),
                             std::string_view(pred.str_literal));
      bound.code_verdict[c] = v ? 1 : 0;
      any = any || v;
    }
    bound.always_false = !any;
  }
  return bound;
}

/// Verdict of one bound predicate on one chunk cell — THE single definition
/// of per-cell predicate semantics. Both scan paths (the chunk-sequential
/// full scan and the restricted point scan) go through here, so they cannot
/// drift: the containment tier's bit-identity guarantee depends on it.
/// Nulls fail every value comparison (SQL semantics). Dictionary-column
/// value comparisons read the bind-time code_verdict — bit-identical to
/// comparing the materialized string, because the verdict table IS that
/// comparison evaluated per dictionary entry.
bool CellVerdict(const BoundPredicate& bound, const Chunk& chunk,
                 size_t local) {
  const Predicate& pred = *bound.pred;
  if (pred.op == CmpOp::kIsNull || pred.op == CmpOp::kNotNull) {
    return chunk.is_null(local) == (pred.op == CmpOp::kIsNull);
  }
  if (chunk.is_null(local)) return false;
  if (bound.col->is_numeric()) {
    return Compare(pred.op, chunk.num_value(local), pred.num_literal);
  }
  return bound.code_verdict[static_cast<size_t>(chunk.cat_code(local))] != 0;
}

/// Evaluates one bound predicate over rows [begin, end), ANDing into `keep`
/// when `first` is false. Chunk-sequential scans (Column::VisitRows)
/// amortize the row->chunk lookup; each row's verdict depends only on that
/// row's cell, so any row partition evaluates to identical bytes.
void EvalPredicateRange(const BoundPredicate& bound, size_t begin, size_t end,
                        bool first, char* keep) {
  bound.col->VisitRows(
      begin, end, [&](size_t r, const Chunk& chunk, size_t local) {
        const char m = CellVerdict(bound, chunk, local) ? 1 : 0;
        keep[r] = first ? m : (keep[r] & m);
      });
}

/// True iff the chunk's seal-time zone (ChunkStats) PROVES no row in it can
/// satisfy `bound`. Conservative by construction: false means "cannot
/// prove", never "does not match" — bit-identity of pruned and unpruned
/// scans rests on this direction. Stats exist only for sealed chunks, so
/// the open tail is never consulted here (a batch appended past a refuted
/// zone lands in a NEW sealed chunk with fresh stats, or stays in the
/// unpruned tail).
bool ZoneRefutes(const BoundPredicate& bound, const Chunk& chunk) {
  const ChunkStats& s = chunk.stats();
  if (!s.valid) return false;
  const Predicate& pred = *bound.pred;
  if (pred.op == CmpOp::kIsNull) return s.null_count == 0;
  if (pred.op == CmpOp::kNotNull) return s.null_count == chunk.size();
  if (bound.always_false) return true;  // No dictionary code matches at all.
  if (bound.use_codes) {
    if (!s.has_code_set) return false;
    for (const int32_t code : s.codes) {
      if (bound.code_verdict[static_cast<size_t>(code)] != 0) return false;
    }
    return true;  // Every distinct code present fails; nulls fail too.
  }
  // Numeric zone: non-null values lie in [min, max] and are never NaN (NaN
  // input is stored as null); nulls fail every value comparison.
  if (!s.has_range) return true;  // All-null chunk.
  const double v = pred.num_literal;
  if (std::isnan(v)) {
    // x op NaN is false for every op except !=, which every non-null value
    // satisfies — so a NaN literal refutes unless the op is kNe.
    return pred.op != CmpOp::kNe;
  }
  switch (pred.op) {
    case CmpOp::kEq:
      return v < s.min || v > s.max;
    case CmpOp::kNe:
      return s.min == v && s.max == v;
    case CmpOp::kLt:
      return s.min >= v;
    case CmpOp::kLe:
      return s.min > v;
    case CmpOp::kGt:
      return s.max <= v;
    case CmpOp::kGe:
      return s.max < v;
    default:
      return false;
  }
}

/// Shard boundaries for the filter scan: aligned to the sealed-chunk edges
/// of the filtered column with the most chunks (a streaming snapshot holds
/// one chunk per appended batch), coalesced toward `num_shards` roughly
/// row-balanced groups; an unchunked table falls back to an even row split.
/// Boundaries only partition the row space — they never affect any row's
/// verdict — so every sharding yields the same mask.
std::vector<size_t> ScanShardBoundaries(
    const std::vector<BoundPredicate>& preds, size_t num_rows,
    size_t num_shards) {
  const Column* most_chunked = nullptr;
  for (const BoundPredicate& bound : preds) {
    if (most_chunked == nullptr ||
        bound.col->chunks().size() > most_chunked->chunks().size()) {
      most_chunked = bound.col;
    }
  }
  std::vector<size_t> edges;
  if (most_chunked != nullptr && most_chunked->chunks().size() > 1) {
    for (size_t i = 0; i < most_chunked->chunks().size(); ++i) {
      edges.push_back(most_chunked->chunk_offset(i));
    }
  } else {
    for (size_t s = 0; s < num_shards; ++s) {
      edges.push_back(s * num_rows / num_shards);
    }
  }
  edges.push_back(num_rows);
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  // Coalesce consecutive edges into at most num_shards row-balanced groups.
  std::vector<size_t> bounds;
  const size_t target = (num_rows + num_shards - 1) / num_shards;
  size_t group_begin = edges.front();
  bounds.push_back(group_begin);
  for (size_t i = 1; i + 1 < edges.size(); ++i) {
    if (edges[i] - group_begin >= target) {
      bounds.push_back(edges[i]);
      group_begin = edges[i];
    }
  }
  bounds.push_back(num_rows);

  // Coalescing can only MERGE chunk edges, never split them, so one
  // dominant sealed chunk (a huge base table plus a few streamed batches)
  // would collapse the scan to ~serial. Subdivide any group wider than the
  // row-balanced target at row granularity — VisitRows handles arbitrary
  // ranges, and boundaries never affect a row's verdict.
  std::vector<size_t> split;
  split.reserve(bounds.size());
  split.push_back(bounds.front());
  for (size_t i = 1; i < bounds.size(); ++i) {
    const size_t begin = bounds[i - 1];
    const size_t width = bounds[i] - begin;
    if (width > target) {
      const size_t pieces = (width + target - 1) / target;
      for (size_t p = 1; p < pieces; ++p) {
        split.push_back(begin + p * width / pieces);
      }
    }
    split.push_back(bounds[i]);
  }
  return split;
}

/// Point evaluation of one bound predicate at a single row — the restricted
/// scan's inner loop (parent rows are sparse, so chunk-sequential visiting
/// buys nothing, but the row->chunk lookup must still happen only ONCE per
/// (row, predicate): a one-row VisitRows hands us the chunk slot, and the
/// verdict is CellVerdict — the same definition the full scan evaluates.
bool EvalPredicateAt(const BoundPredicate& bound, size_t row) {
  bool verdict = false;
  bound.col->VisitRows(row, row + 1,
                       [&](size_t, const Chunk& chunk, size_t local) {
                         verdict = CellVerdict(bound, chunk, local);
                       });
  return verdict;
}

/// The shared tail of scope resolution: order_by sort, limit, projection.
/// Both the full scan and the restricted scan feed their filtered row ids
/// through this one function, so the two paths cannot drift.
Result<QueryScope> FinishScope(const Table& table, const SpQuery& query,
                               std::vector<size_t> row_ids) {
  if (!query.order_by.empty()) {
    SUBTAB_ASSIGN_OR_RETURN(size_t sort_idx, table.ColumnIndex(query.order_by));
    const Column& col = table.column(sort_idx);
    auto null_last_less = [&col](size_t a, size_t b) {
      const bool na = col.is_null(a);
      const bool nb = col.is_null(b);
      if (na != nb) return nb;  // Nulls sort last.
      if (na) return false;
      if (col.is_numeric()) return col.num_value(a) < col.num_value(b);
      return col.cat_value(a) < col.cat_value(b);
    };
    std::stable_sort(row_ids.begin(), row_ids.end(), null_last_less);
    if (query.descending) std::reverse(row_ids.begin(), row_ids.end());
  }

  if (query.limit > 0 && row_ids.size() > query.limit) {
    row_ids.resize(query.limit);
  }

  std::vector<size_t> col_ids;
  if (query.projection.empty()) {
    col_ids.resize(table.num_columns());
    std::iota(col_ids.begin(), col_ids.end(), 0);
  } else {
    for (const auto& name : query.projection) {
      SUBTAB_ASSIGN_OR_RETURN(size_t idx, table.ColumnIndex(name));
      col_ids.push_back(idx);
    }
  }

  QueryScope scope;
  scope.row_ids = std::move(row_ids);
  scope.col_ids = std::move(col_ids);
  return scope;
}

/// What the filter scan produced beyond the mask itself: the surviving row
/// ranges (so callers can skip pruned regions) and the attribution that
/// ResolveQueryScope copies into ScanStats.
struct FilterMask {
  std::vector<char> keep;
  /// Complement of the merged refuted set: the row ranges whose cells were
  /// actually evaluated, ascending and disjoint. [0, n) when nothing pruned.
  std::vector<std::pair<size_t, size_t>> survive;
  size_t chunks_scanned = 0;
  size_t chunks_pruned = 0;
  size_t rows_pruned = 0;
  size_t code_eval_predicates = 0;
};

/// Splits the surviving ranges into ~num_shards row-balanced pieces, each
/// inside one surviving range, so the parallel scan never touches a pruned
/// row. The pruning-on analogue of ScanShardBoundaries' subdivision step.
std::vector<std::pair<size_t, size_t>> ShardSurvivingRanges(
    const std::vector<std::pair<size_t, size_t>>& ranges, size_t num_shards) {
  size_t total = 0;
  for (const auto& r : ranges) total += r.second - r.first;
  const size_t target = (total + num_shards - 1) / num_shards;
  std::vector<std::pair<size_t, size_t>> shards;
  for (const auto& r : ranges) {
    const size_t width = r.second - r.first;
    const size_t pieces = target == 0 ? 1 : (width + target - 1) / target;
    for (size_t p = 0; p < pieces; ++p) {
      shards.emplace_back(r.first + p * width / pieces,
                          r.first + (p + 1) * width / pieces);
    }
  }
  return shards;
}

Result<FilterMask> EvalFilterMask(const Table& table,
                                  const std::vector<Predicate>& filters,
                                  const QueryExecOptions& exec) {
  const size_t n = table.num_rows();
  FilterMask out;
  out.keep.assign(n, 1);
  out.survive.emplace_back(0, n);
  if (filters.empty()) return out;

  std::vector<BoundPredicate> bound;
  bound.reserve(filters.size());
  for (const Predicate& pred : filters) {
    SUBTAB_ASSIGN_OR_RETURN(BoundPredicate b, BindPredicate(table, pred));
    out.code_eval_predicates += b.use_codes ? 1 : 0;
    bound.push_back(std::move(b));
  }

  // Zone-map pruning: collect the row intervals of sealed chunks whose
  // stats refute one conjunct, and merge them across predicates (each
  // column has its own chunk layout). Rows inside the merged set provably
  // fail the conjunction, so they are pre-failed without reading a cell.
  std::vector<std::pair<size_t, size_t>> merged;
  if (exec.zone_map_pruning) {
    std::vector<std::pair<size_t, size_t>> refuted;
    for (const BoundPredicate& b : bound) {
      const auto& chunks = b.col->chunks();
      for (size_t c = 0; c < chunks.size(); ++c) {
        if (ZoneRefutes(b, *chunks[c])) {
          const size_t begin = b.col->chunk_offset(c);
          refuted.emplace_back(begin, begin + chunks[c]->size());
        }
      }
    }
    std::sort(refuted.begin(), refuted.end());
    for (const auto& r : refuted) {
      if (!merged.empty() && r.first <= merged.back().second) {
        merged.back().second = std::max(merged.back().second, r.second);
      } else {
        merged.push_back(r);
      }
    }
  }
  for (const auto& r : merged) {
    std::fill(out.keep.begin() + static_cast<ptrdiff_t>(r.first),
              out.keep.begin() + static_cast<ptrdiff_t>(r.second), 0);
    out.rows_pruned += r.second - r.first;
  }

  // Attribution: a chunk counts as pruned when the merged refuted set
  // covers its whole row range (possibly thanks to another column's
  // conjunct), as scanned otherwise — scanned + pruned always equals the
  // chunk walk a pruning-off scan performs.
  const auto covered = [&merged](size_t begin, size_t end) {
    auto it = std::upper_bound(
        merged.begin(), merged.end(),
        std::make_pair(begin, std::numeric_limits<size_t>::max()));
    if (it == merged.begin()) return false;
    --it;
    return it->first <= begin && end <= it->second;
  };
  for (const BoundPredicate& b : bound) {
    const auto& chunks = b.col->chunks();
    for (size_t c = 0; c < chunks.size(); ++c) {
      const size_t begin = b.col->chunk_offset(c);
      if (covered(begin, begin + chunks[c]->size())) {
        ++out.chunks_pruned;
      } else {
        ++out.chunks_scanned;
      }
    }
  }

  // Surviving ranges: the complement of the refuted set. Evaluation — and
  // sharding — happens over these only; pruned rows are never revisited.
  out.survive.clear();
  size_t cursor = 0;
  for (const auto& r : merged) {
    if (r.first > cursor) out.survive.emplace_back(cursor, r.first);
    cursor = r.second;
  }
  if (cursor < n) out.survive.emplace_back(cursor, n);
  const size_t surviving_rows = n - out.rows_pruned;
  if (surviving_rows == 0) return out;

  size_t threads = exec.num_threads == 0 ? HardwareThreads() : exec.num_threads;
  if (surviving_rows < exec.min_parallel_rows) threads = 1;
  if (threads <= 1) {
    for (const auto& range : out.survive) {
      for (size_t i = 0; i < bound.size(); ++i) {
        EvalPredicateRange(bound[i], range.first, range.second,
                           /*first=*/i == 0, out.keep.data());
      }
    }
    return out;
  }

  if (merged.empty()) {
    // Nothing pruned: keep the chunk-edge-aligned sharding (cache-friendly
    // and pinned by query_test via ScanShardBoundariesForQuery).
    const std::vector<size_t> bounds = ScanShardBoundaries(bound, n, threads);
    ParallelForEach(bounds.size() - 1, threads, [&](size_t s) {
      for (size_t i = 0; i < bound.size(); ++i) {
        EvalPredicateRange(bound[i], bounds[s], bounds[s + 1], i == 0,
                           out.keep.data());
      }
    });
    return out;
  }
  const std::vector<std::pair<size_t, size_t>> shards =
      ShardSurvivingRanges(out.survive, threads);
  ParallelForEach(shards.size(), threads, [&](size_t s) {
    for (size_t i = 0; i < bound.size(); ++i) {
      EvalPredicateRange(bound[i], shards[s].first, shards[s].second, i == 0,
                         out.keep.data());
    }
  });
  return out;
}

}  // namespace

Result<std::vector<size_t>> ScanShardBoundariesForQuery(const Table& table,
                                                        const SpQuery& query,
                                                        size_t num_shards) {
  std::vector<BoundPredicate> bound;
  bound.reserve(query.filters.size());
  for (const Predicate& pred : query.filters) {
    SUBTAB_ASSIGN_OR_RETURN(BoundPredicate b, BindPredicate(table, pred));
    bound.push_back(b);
  }
  if (num_shards == 0) num_shards = 1;
  return ScanShardBoundaries(bound, table.num_rows(), num_shards);
}

Result<QueryScope> ResolveQueryScope(const Table& table, const SpQuery& query,
                                     const QueryExecOptions& exec) {
  const size_t n = table.num_rows();
  SUBTAB_ASSIGN_OR_RETURN(FilterMask mask,
                          EvalFilterMask(table, query.filters, exec));

  // Collect matches from the surviving ranges only: zone-pruned regions
  // hold provably-failing rows, so skipping them cannot change the result.
  std::vector<size_t> row_ids;
  for (const auto& range : mask.survive) {
    for (size_t r = range.first; r < range.second; ++r) {
      if (mask.keep[r]) row_ids.push_back(r);
    }
  }

  ScanStats stats;
  stats.rows_visited = n - mask.rows_pruned;
  stats.rows_matched = row_ids.size();
  stats.predicates_evaluated = query.filters.size();
  stats.chunks_scanned = mask.chunks_scanned;
  stats.chunks_pruned = mask.chunks_pruned;
  stats.code_eval_predicates = mask.code_eval_predicates;

  Result<QueryScope> scope = FinishScope(table, query, std::move(row_ids));
  if (scope.ok()) scope->stats = stats;
  return scope;
}

Result<QueryScope> RestrictQueryScope(const Table& table,
                                      const std::vector<size_t>& parent_rows,
                                      const SpQuery& query,
                                      const std::vector<Predicate>& extra) {
  // Bind (and type-check) only the extra conjuncts. Shared conjuncts bound
  // successfully when the parent's scope was resolved against this same
  // table, so the first binding error here is the first binding error the
  // full scan would hit — `extra` preserves the filters' relative order.
  std::vector<BoundPredicate> bound;
  bound.reserve(extra.size());
  for (const Predicate& pred : extra) {
    SUBTAB_ASSIGN_OR_RETURN(BoundPredicate b, BindPredicate(table, pred));
    bound.push_back(b);
  }

  std::vector<size_t> row_ids;
  for (const size_t row : parent_rows) {
    bool keep = true;
    for (const BoundPredicate& b : bound) {
      if (!EvalPredicateAt(b, row)) {
        keep = false;
        break;
      }
    }
    if (keep) row_ids.push_back(row);
  }

  ScanStats stats;
  stats.restricted = true;
  stats.rows_visited = parent_rows.size();
  stats.rows_matched = row_ids.size();
  stats.predicates_evaluated = extra.size();
  for (const BoundPredicate& b : bound) {
    stats.code_eval_predicates += b.use_codes ? 1 : 0;
  }
  // Point lookups, not chunk walks: chunks_scanned stays 0 by definition.

  Result<QueryScope> scope = FinishScope(table, query, std::move(row_ids));
  if (scope.ok()) scope->stats = stats;
  return scope;
}

bool SamePredicate(const Predicate& a, const Predicate& b) {
  if (a.column != b.column || a.op != b.op) return false;
  if (a.op == CmpOp::kIsNull || a.op == CmpOp::kNotNull) return true;
  if (a.literal_is_numeric != b.literal_is_numeric) return false;
  if (!a.literal_is_numeric) return a.str_literal == b.str_literal;
  // Bit-pattern equality, matching the selection cache's lossless encoding:
  // NaN == NaN (both match nothing) while -0.0 != 0.0 stays conservative.
  uint64_t abits = 0;
  uint64_t bbits = 0;
  std::memcpy(&abits, &a.num_literal, sizeof(abits));
  std::memcpy(&bbits, &b.num_literal, sizeof(bbits));
  return abits == bbits;
}

namespace {

/// Is `p` a numeric lower/upper bound eligible for interval merging?
bool IsNumericLowerBound(const Predicate& p) {
  return p.literal_is_numeric && (p.op == CmpOp::kGe || p.op == CmpOp::kGt);
}
bool IsNumericUpperBound(const Predicate& p) {
  return p.literal_is_numeric && (p.op == CmpOp::kLe || p.op == CmpOp::kLt);
}

/// One side of a column's interval: the bound value plus whether the
/// comparison excludes equality. Tighter(a, b) orders lower bounds; upper
/// bounds use it with the comparison flipped by the caller.
struct Bound {
  double value = 0.0;
  bool strict = false;
};

/// True iff lower bound `a` admits strictly fewer values than `b`.
bool TighterLower(const Bound& a, const Bound& b) {
  return a.value > b.value || (a.value == b.value && a.strict && !b.strict);
}
bool TighterUpper(const Bound& a, const Bound& b) {
  return a.value < b.value || (a.value == b.value && a.strict && !b.strict);
}

/// What a conjunction pins down about one column — built from the child
/// query's conjuncts, then queried for implication of each parent conjunct.
/// Eq/ne lists use exists-semantics: if the conjunction carries two distinct
/// equalities the row set is empty and any implication holds vacuously, so
/// "some equality satisfies it" is sound.
struct ColumnFacts {
  bool has_lower = false;
  Bound lower;
  bool has_upper = false;
  Bound upper;
  std::vector<double> num_eq;
  std::vector<double> num_ne;
  std::vector<std::string> str_eq;
  std::vector<std::string> str_ne;
  bool is_null = false;
  /// Set by an explicit NOT NULL or by ANY value comparison: nulls fail
  /// every value comparison (see EvalPredicateRange), so `x op v` implies
  /// `x is not null`.
  bool not_null = false;
};

std::unordered_map<std::string, ColumnFacts> BuildFacts(
    const std::vector<Predicate>& filters) {
  std::unordered_map<std::string, ColumnFacts> facts;
  for (const Predicate& p : filters) {
    ColumnFacts& f = facts[p.column];
    if (p.op == CmpOp::kIsNull) {
      f.is_null = true;
      continue;
    }
    if (p.op == CmpOp::kNotNull) {
      f.not_null = true;
      continue;
    }
    f.not_null = true;  // Value comparisons never match null cells.
    if (!p.literal_is_numeric) {
      if (p.op == CmpOp::kEq) f.str_eq.push_back(p.str_literal);
      if (p.op == CmpOp::kNe) f.str_ne.push_back(p.str_literal);
      // String order comparisons are matched only verbatim (SamePredicate).
      continue;
    }
    const double v = p.num_literal;
    switch (p.op) {
      case CmpOp::kEq:
        f.num_eq.push_back(v);
        break;
      case CmpOp::kNe:
        f.num_ne.push_back(v);
        break;
      case CmpOp::kGe:
      case CmpOp::kGt: {
        // A NaN bound matches nothing; it cannot be ordered against other
        // bounds, so it never becomes the representative lower bound.
        const Bound candidate{v, p.op == CmpOp::kGt};
        if (!std::isnan(v) && (!f.has_lower || TighterLower(candidate, f.lower))) {
          f.has_lower = true;
          f.lower = candidate;
        }
        break;
      }
      case CmpOp::kLe:
      case CmpOp::kLt: {
        const Bound candidate{v, p.op == CmpOp::kLt};
        if (!std::isnan(v) && (!f.has_upper || TighterUpper(candidate, f.upper))) {
          f.has_upper = true;
          f.upper = candidate;
        }
        break;
      }
      default:
        break;
    }
  }
  return facts;
}

/// Does the child's conjunction (summarized as `f`) imply the single parent
/// conjunct `p`? Conservative: false means "could not prove".
bool FactsImply(const ColumnFacts& f, const Predicate& p) {
  if (p.op == CmpOp::kIsNull) return f.is_null;
  if (p.op == CmpOp::kNotNull) return f.not_null;
  if (!p.literal_is_numeric) {
    const std::string& v = p.str_literal;
    if (p.op == CmpOp::kEq) {
      for (const std::string& e : f.str_eq) {
        if (e == v) return true;
      }
      return false;
    }
    if (p.op == CmpOp::kNe) {
      for (const std::string& n : f.str_ne) {
        if (n == v) return true;
      }
      for (const std::string& e : f.str_eq) {
        if (e != v) return true;  // x == e and e != v => x != v.
      }
      return false;
    }
    return false;  // String order comparisons: verbatim matches only.
  }

  const double v = p.num_literal;
  if (std::isnan(v)) return false;  // Matches nothing; only verbatim reuse.
  // Bounds excluding v, shared by kGt/kGe/kNe reasoning below.
  const bool lower_excludes =
      f.has_lower && (f.lower.value > v || (f.lower.value == v && f.lower.strict));
  const bool upper_excludes =
      f.has_upper && (f.upper.value < v || (f.upper.value == v && f.upper.strict));
  auto any_eq = [&f](auto pred) {
    for (const double e : f.num_eq) {
      if (pred(e)) return true;
    }
    return false;
  };
  switch (p.op) {
    case CmpOp::kGe:
      return (f.has_lower && f.lower.value >= v) ||
             any_eq([v](double e) { return e >= v; });
    case CmpOp::kGt:
      return lower_excludes || any_eq([v](double e) { return e > v; });
    case CmpOp::kLe:
      return (f.has_upper && f.upper.value <= v) ||
             any_eq([v](double e) { return e <= v; });
    case CmpOp::kLt:
      return upper_excludes || any_eq([v](double e) { return e < v; });
    case CmpOp::kEq:
      return any_eq([v](double e) { return e == v; });
    case CmpOp::kNe: {
      for (const double n : f.num_ne) {
        if (n == v) return true;
      }
      return any_eq([v](double e) { return e != v; }) || lower_excludes ||
             upper_excludes;
    }
    default:
      return false;
  }
}

}  // namespace

std::vector<Predicate> CanonicalConjuncts(
    const std::vector<Predicate>& filters) {
  // Representative (tightest) bound per column, exactly as BuildFacts picks
  // them; a redundant bound is one that a tighter bound on the same column
  // makes implied, so dropping it keeps the row set identical.
  const std::unordered_map<std::string, ColumnFacts> facts = BuildFacts(filters);
  std::vector<Predicate> out;
  out.reserve(filters.size());
  // Emit the representative bound only once per column/side: duplicates of
  // the tightest bound are as redundant as looser ones.
  std::unordered_map<std::string, bool> lower_emitted;
  std::unordered_map<std::string, bool> upper_emitted;
  for (const Predicate& p : filters) {
    if (IsNumericLowerBound(p) && !std::isnan(p.num_literal)) {
      const ColumnFacts& f = facts.at(p.column);
      const bool is_representative = f.has_lower &&
                                     f.lower.value == p.num_literal &&
                                     f.lower.strict == (p.op == CmpOp::kGt);
      if (!is_representative || lower_emitted[p.column]) continue;
      lower_emitted[p.column] = true;
    } else if (IsNumericUpperBound(p) && !std::isnan(p.num_literal)) {
      const ColumnFacts& f = facts.at(p.column);
      const bool is_representative = f.has_upper &&
                                     f.upper.value == p.num_literal &&
                                     f.upper.strict == (p.op == CmpOp::kLt);
      if (!is_representative || upper_emitted[p.column]) continue;
      upper_emitted[p.column] = true;
    }
    out.push_back(p);
  }
  return out;
}

bool QueryContains(const SpQuery& a, const SpQuery& b) {
  // A truncated result proves nothing: rows b matches may lie past a's cut.
  if (a.limit > 0) return false;
  if (a.filters.empty()) return true;  // a is the whole table.
  const std::unordered_map<std::string, ColumnFacts> facts =
      BuildFacts(b.filters);
  for (const Predicate& p : a.filters) {
    // Verbatim-match fast path covers every operator, including the string
    // order comparisons the facts summary does not model.
    bool verbatim = false;
    for (const Predicate& q : b.filters) {
      if (SamePredicate(p, q)) {
        verbatim = true;
        break;
      }
    }
    if (verbatim) continue;
    auto it = facts.find(p.column);
    if (it == facts.end() || !FactsImply(it->second, p)) return false;
  }
  return true;
}

std::vector<Predicate> ExtraConjuncts(const SpQuery& parent,
                                      const SpQuery& child) {
  std::vector<Predicate> extra;
  for (const Predicate& p : child.filters) {
    bool shared = false;
    for (const Predicate& q : parent.filters) {
      if (SamePredicate(p, q)) {
        shared = true;
        break;
      }
    }
    if (!shared) extra.push_back(p);
  }
  return extra;
}

Result<QueryResult> RunQuery(const Table& table, const SpQuery& query,
                             const QueryExecOptions& exec) {
  SUBTAB_ASSIGN_OR_RETURN(QueryScope scope,
                          ResolveQueryScope(table, query, exec));
  QueryResult result;
  result.table = table.SubTable(scope.row_ids, scope.col_ids);
  result.row_ids = std::move(scope.row_ids);
  result.col_ids = std::move(scope.col_ids);
  return result;
}

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount:
      return "count";
    case AggFn::kSum:
      return "sum";
    case AggFn::kMean:
      return "mean";
    case AggFn::kMin:
      return "min";
    case AggFn::kMax:
      return "max";
  }
  return "?";
}

Result<Table> RunGroupBy(const Table& table, const GroupByQuery& query) {
  SUBTAB_ASSIGN_OR_RETURN(size_t key_idx, table.ColumnIndex(query.key_column));
  const Column& key = table.column(key_idx);
  const bool needs_agg_col = query.fn != AggFn::kCount;
  const Column* agg = nullptr;
  if (needs_agg_col) {
    SUBTAB_ASSIGN_OR_RETURN(size_t agg_idx, table.ColumnIndex(query.agg_column));
    agg = &table.column(agg_idx);
    if (!agg->is_numeric()) {
      return Status::InvalidArgument("aggregate column '" + query.agg_column +
                                     "' must be numeric");
    }
  }

  struct Acc {
    size_t count = 0;      // Rows in the group.
    size_t agg_count = 0;  // Non-null aggregate values in the group.
    double sum = 0.0;
    double mn = 0.0;
    double mx = 0.0;
    bool any = false;
  };
  // std::map keeps groups in deterministic key order.
  std::map<std::string, Acc> groups;
  std::map<std::string, double> numeric_keys;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (key.is_null(r)) continue;
    std::string k = key.ToDisplay(r);
    Acc& acc = groups[k];
    if (key.is_numeric()) numeric_keys[k] = key.num_value(r);
    ++acc.count;
    if (needs_agg_col && !agg->is_null(r)) {
      const double v = agg->num_value(r);
      acc.sum += v;
      if (!acc.any || v < acc.mn) acc.mn = v;
      if (!acc.any || v > acc.mx) acc.mx = v;
      acc.any = true;
      ++acc.agg_count;
    }
  }

  Column key_out = key.is_numeric() ? Column(query.key_column, ColumnType::kNumeric)
                                    : Column(query.key_column, ColumnType::kCategorical);
  const std::string agg_name =
      needs_agg_col ? StrFormat("%s(%s)", AggFnName(query.fn), query.agg_column.c_str())
                    : "count";
  Column agg_out(agg_name, ColumnType::kNumeric);
  for (const auto& [k, acc] : groups) {
    if (key.is_numeric()) {
      key_out.AppendNumeric(numeric_keys[k]);
    } else {
      key_out.AppendCategorical(k);
    }
    switch (query.fn) {
      case AggFn::kCount:
        agg_out.AppendNumeric(static_cast<double>(acc.count));
        break;
      case AggFn::kSum:
        agg_out.AppendNumeric(acc.sum);
        break;
      case AggFn::kMean:
        if (acc.any) {
          agg_out.AppendNumeric(acc.sum / static_cast<double>(acc.agg_count));
        } else {
          agg_out.AppendNull();
        }
        break;
      case AggFn::kMin:
        acc.any ? agg_out.AppendNumeric(acc.mn) : agg_out.AppendNull();
        break;
      case AggFn::kMax:
        acc.any ? agg_out.AppendNumeric(acc.mx) : agg_out.AppendNull();
        break;
    }
  }
  return Table::Make({std::move(key_out), std::move(agg_out)});
}

}  // namespace subtab
