#ifndef SUBTAB_TABLE_QUERY_H_
#define SUBTAB_TABLE_QUERY_H_

#include <string>
#include <vector>

#include "subtab/table/table.h"
#include "subtab/util/status.h"

/// \file query.h
/// The exploratory query engine. The paper's EDA sessions issue
/// selection-projection (SP) queries plus sort and group-by (Sec. 1, 6.2.2);
/// sub-tables are computed over SP query results (Algorithm 2 line 6).

namespace subtab {

/// Comparison operators for predicates.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe, kIsNull, kNotNull };

const char* CmpOpName(CmpOp op);

/// One conjunct of a selection: `column op literal`. The literal is numeric
/// for numeric columns and a string for categorical ones; kIsNull/kNotNull
/// ignore the literal.
struct Predicate {
  std::string column;
  CmpOp op = CmpOp::kEq;
  double num_literal = 0.0;
  std::string str_literal;
  bool literal_is_numeric = true;

  static Predicate Num(std::string column, CmpOp op, double value);
  static Predicate Str(std::string column, CmpOp op, std::string value);
  static Predicate IsNull(std::string column);
  static Predicate NotNull(std::string column);

  /// "COL <= 3.5" for logging / session display.
  std::string ToString() const;
};

/// A selection-projection query with optional ordering and limit.
struct SpQuery {
  std::vector<Predicate> filters;       ///< Conjunction; empty = all rows.
  std::vector<std::string> projection;  ///< Empty = all columns.
  std::string order_by;                 ///< Empty = input order.
  bool descending = false;
  size_t limit = 0;                     ///< 0 = no limit.

  std::string ToString() const;
};

/// Query result: the materialized table plus the provenance of each result
/// row/column in the source table (needed so the SubTab selector can reuse
/// pre-computed cell vectors, Algorithm 2 line 6).
struct QueryResult {
  Table table;
  std::vector<size_t> row_ids;  ///< Result row -> source row index.
  std::vector<size_t> col_ids;  ///< Result col -> source col index.
};

/// Execution knobs of one scan. Results are bit-identical for every setting:
/// parallelism only changes which thread evaluates which rows, never any
/// row's verdict or the output order.
struct QueryExecOptions {
  /// Threads fanning the filter scan out over sealed chunks (util/parallel's
  /// ParallelForEach; streaming snapshots accumulate one chunk per appended
  /// batch). 1 = serial; 0 = HardwareThreads().
  size_t num_threads = 1;
  /// Below this many rows the scan stays serial even when num_threads > 1 —
  /// spawning threads costs more than the scan itself.
  size_t min_parallel_rows = 16384;
};

/// Scan-only result: the provenance ids of a query, without materializing
/// the result table. This is the resolve-scope stage of the serving
/// pipeline — selection needs only the ids (core/subtab.h ResolveScope), and
/// materializing a many-thousand-row intermediate per request is pure waste.
struct QueryScope {
  std::vector<size_t> row_ids;  ///< Matching source rows, result order.
  std::vector<size_t> col_ids;  ///< Projected source columns, result order.
};

/// Executes an SP query's scan (filters + order + limit + projection) and
/// returns provenance ids only. RunQuery == ResolveQueryScope + SubTable.
Result<QueryScope> ResolveQueryScope(const Table& table, const SpQuery& query,
                                     const QueryExecOptions& exec = {});

/// Executes an SP query. Errors on unknown columns or type-incompatible
/// predicates. Null cells never satisfy value comparisons (SQL semantics).
Result<QueryResult> RunQuery(const Table& table, const SpQuery& query,
                             const QueryExecOptions& exec = {});

/// Group-by aggregates, rounding out the dataframe substrate for EDA.
enum class AggFn { kCount, kSum, kMean, kMin, kMax };

const char* AggFnName(AggFn fn);

struct GroupByQuery {
  std::string key_column;
  std::string agg_column;  ///< Ignored for kCount.
  AggFn fn = AggFn::kCount;
};

/// Returns a table with columns [key, agg] where key iterates the distinct
/// non-null values of the key column (numeric keys kept numeric).
Result<Table> RunGroupBy(const Table& table, const GroupByQuery& query);

}  // namespace subtab

#endif  // SUBTAB_TABLE_QUERY_H_
