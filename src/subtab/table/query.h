#ifndef SUBTAB_TABLE_QUERY_H_
#define SUBTAB_TABLE_QUERY_H_

#include <string>
#include <vector>

#include "subtab/table/table.h"
#include "subtab/util/status.h"

/// \file query.h
/// The exploratory query engine. The paper's EDA sessions issue
/// selection-projection (SP) queries plus sort and group-by (Sec. 1, 6.2.2);
/// sub-tables are computed over SP query results (Algorithm 2 line 6).

namespace subtab {

/// Comparison operators for predicates.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe, kIsNull, kNotNull };

const char* CmpOpName(CmpOp op);

/// One conjunct of a selection: `column op literal`. The literal is numeric
/// for numeric columns and a string for categorical ones; kIsNull/kNotNull
/// ignore the literal.
struct Predicate {
  std::string column;
  CmpOp op = CmpOp::kEq;
  double num_literal = 0.0;
  std::string str_literal;
  bool literal_is_numeric = true;

  static Predicate Num(std::string column, CmpOp op, double value);
  static Predicate Str(std::string column, CmpOp op, std::string value);
  static Predicate IsNull(std::string column);
  static Predicate NotNull(std::string column);

  /// "COL <= 3.5" for logging / session display.
  std::string ToString() const;
};

/// A selection-projection query with optional ordering and limit.
struct SpQuery {
  std::vector<Predicate> filters;       ///< Conjunction; empty = all rows.
  std::vector<std::string> projection;  ///< Empty = all columns.
  std::string order_by;                 ///< Empty = input order.
  bool descending = false;
  size_t limit = 0;                     ///< 0 = no limit.

  std::string ToString() const;
};

/// Query result: the materialized table plus the provenance of each result
/// row/column in the source table (needed so the SubTab selector can reuse
/// pre-computed cell vectors, Algorithm 2 line 6).
struct QueryResult {
  Table table;
  std::vector<size_t> row_ids;  ///< Result row -> source row index.
  std::vector<size_t> col_ids;  ///< Result col -> source col index.
};

/// Execution knobs of one scan. Results are bit-identical for every setting:
/// parallelism only changes which thread evaluates which rows, never any
/// row's verdict or the output order.
struct QueryExecOptions {
  /// Threads fanning the filter scan out over sealed chunks (util/parallel's
  /// ParallelForEach; streaming snapshots accumulate one chunk per appended
  /// batch). 1 = serial; 0 = HardwareThreads().
  size_t num_threads = 1;
  /// Below this many surviving (unpruned) rows the scan stays serial even
  /// when num_threads > 1 — spawning threads costs more than the scan itself.
  size_t min_parallel_rows = 16384;
  /// Consult seal-time chunk statistics (zone maps, chunk.h ChunkStats) to
  /// skip whole chunks a conjunct provably cannot match, and resolve
  /// categorical comparisons against the dictionary once so rows are judged
  /// by integer code. Results are bit-identical either way — the knob exists
  /// for benchmarking and bisection, not semantics.
  bool zone_map_pruning = true;
};

/// What one scan actually did — the per-request attribution the serving
/// pipeline records into trace span attributes ("rows scanned vs
/// restricted", docs/OBSERVABILITY.md) and aggregates into scan.* metrics.
/// Purely observational: nothing here feeds back into the scan.
struct ScanStats {
  /// Rows the filter loop touched: the table's row count minus zone-pruned
  /// rows for a full scan, the parent scope's size for a restricted
  /// (containment) scan.
  size_t rows_visited = 0;
  /// Rows surviving the filters, before order/limit trimming.
  size_t rows_matched = 0;
  /// Sealed chunks of the filtered columns the scan walked (0 when there
  /// are no filters, or on the restricted path's point lookups).
  size_t chunks_scanned = 0;
  /// Sealed chunks skipped whole because the merged zone-map refutation
  /// covers their row range (QueryExecOptions::zone_map_pruning);
  /// chunks_scanned + chunks_pruned equals the walk a pruning-off scan does.
  size_t chunks_pruned = 0;
  /// Conjuncts evaluated per visited row.
  size_t predicates_evaluated = 0;
  /// Conjuncts on dictionary columns resolved to code-level evaluation: the
  /// comparison was answered once per dictionary entry at bind time, and the
  /// row loop compared integer codes instead of materialized strings.
  size_t code_eval_predicates = 0;
  /// True for the containment tier's restricted path (RestrictQueryScope).
  bool restricted = false;
};

/// Scan-only result: the provenance ids of a query, without materializing
/// the result table. This is the resolve-scope stage of the serving
/// pipeline — selection needs only the ids (core/subtab.h ResolveScope), and
/// materializing a many-thousand-row intermediate per request is pure waste.
struct QueryScope {
  std::vector<size_t> row_ids;  ///< Matching source rows, result order.
  std::vector<size_t> col_ids;  ///< Projected source columns, result order.
  ScanStats stats;              ///< What the scan cost (attribution only).
};

/// Executes an SP query's scan (filters + order + limit + projection) and
/// returns provenance ids only. RunQuery == ResolveQueryScope + SubTable.
Result<QueryScope> ResolveQueryScope(const Table& table, const SpQuery& query,
                                     const QueryExecOptions& exec = {});

/// Introspection/test hook: the row boundaries the chunk-parallel filter
/// scan would shard `query` into over `table` (bounds.front() == 0,
/// bounds.back() == num_rows; each consecutive pair is one shard). Shards
/// align to sealed-chunk edges where possible, but any group wider than
/// ceil(num_rows / num_shards) is subdivided at row granularity, so a
/// dominant sealed chunk cannot collapse the fan-out to ~serial. Boundaries
/// only partition the row space — they never change a row's verdict. This
/// hook describes the pruning-off layout; when zone maps prune chunks, the
/// scan shards over the surviving row ranges only (same row-balanced target,
/// pruned ranges excluded).
Result<std::vector<size_t>> ScanShardBoundariesForQuery(const Table& table,
                                                        const SpQuery& query,
                                                        size_t num_shards);

/// True iff the two predicates are the same conjunct for caching/containment
/// purposes: same column, op, literal type, and literal — numeric literals
/// compared by bit pattern (so NaN == NaN and -0.0 != 0.0), matching the
/// lossless encoding the selection cache keys on.
bool SamePredicate(const Predicate& a, const Predicate& b);

/// Canonical conjunct list for cache keying and containment reasoning:
/// redundant numeric bounds on the same column are merged to the tightest one
/// (e.g. "a >= 1 AND a >= 2" keeps only "a >= 2"; "a > 2 AND a >= 2" keeps
/// "a > 2"), so syntactically different but row-set-identical conjunctions
/// normalize to one form. Only numeric kLt/kLe/kGt/kGe conjuncts merge —
/// equality, inequality, null, and string predicates pass through verbatim,
/// as does any column carrying a NaN bound (NaN bounds match nothing, and
/// ordering them is meaningless). Relative order of the survivors is
/// preserved; the result selects exactly the same rows as the input.
std::vector<Predicate> CanonicalConjuncts(const std::vector<Predicate>& filters);

/// Provable superset test for containment-based reuse: true only when query
/// `a`'s result rows are guaranteed to be a superset of query `b`'s on EVERY
/// table, shown by per-column predicate subsumption — each conjunct of `a` is
/// implied by the conjunction of `b`'s conjuncts (interval containment for
/// numeric bounds, set reasoning for eq/ne, null-state reasoning for
/// is-null / not-null; any value comparison implies not-null since nulls
/// fail all value comparisons). Purely syntactic — no table access — and
/// conservative: a false return means "could not prove", not "not contained".
/// Requires a.limit == 0 (a truncated result proves nothing); projections and
/// ordering are ignored, as they never change which rows qualify.
bool QueryContains(const SpQuery& a, const SpQuery& b);

/// The conjuncts of `child` not literally present (SamePredicate) in
/// `parent` — the only ones that still need evaluation when `child` is
/// re-scanned over `parent`'s already-resolved rows.
std::vector<Predicate> ExtraConjuncts(const SpQuery& parent,
                                      const SpQuery& child);

/// The restricted-scan path of containment reuse: resolves `query`'s scope by
/// evaluating only `extra` conjuncts over `parent_rows` (a proven superset
/// scope, see QueryContains) instead of scanning the whole table, then applies
/// `query`'s order/limit/projection exactly like ResolveQueryScope. The result
/// is bit-identical to ResolveQueryScope(table, query) provided
///   * `parent_rows` is in ascending source order (a scope resolved from a
///     query with no order_by and no limit), and
///   * every conjunct of `query` outside `extra` holds on all of
///     `parent_rows` (ExtraConjuncts of a containing parent guarantees this).
/// Cost is O(|parent_rows| * |extra|) point lookups — the drill-down win:
/// each refinement scans the previous result, not the table.
Result<QueryScope> RestrictQueryScope(const Table& table,
                                      const std::vector<size_t>& parent_rows,
                                      const SpQuery& query,
                                      const std::vector<Predicate>& extra);

/// Executes an SP query. Errors on unknown columns or type-incompatible
/// predicates. Null cells never satisfy value comparisons (SQL semantics).
Result<QueryResult> RunQuery(const Table& table, const SpQuery& query,
                             const QueryExecOptions& exec = {});

/// Group-by aggregates, rounding out the dataframe substrate for EDA.
enum class AggFn { kCount, kSum, kMean, kMin, kMax };

const char* AggFnName(AggFn fn);

struct GroupByQuery {
  std::string key_column;
  std::string agg_column;  ///< Ignored for kCount.
  AggFn fn = AggFn::kCount;
};

/// Returns a table with columns [key, agg] where key iterates the distinct
/// non-null values of the key column (numeric keys kept numeric).
Result<Table> RunGroupBy(const Table& table, const GroupByQuery& query);

}  // namespace subtab

#endif  // SUBTAB_TABLE_QUERY_H_
