#include "subtab/table/schema.h"

#include "subtab/util/string_util.h"

namespace subtab {

Schema::Schema(std::vector<Field> fields) {
  for (auto& f : fields) AddField(std::move(f));
}

std::optional<size_t> Schema::IndexOf(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

void Schema::AddField(Field field) {
  SUBTAB_CHECK(index_.find(field.name) == index_.end());
  index_.emplace(field.name, fields_.size());
  fields_.push_back(std::move(field));
}

Schema Schema::Select(const std::vector<size_t>& indices) const {
  Schema out;
  for (size_t i : indices) {
    SUBTAB_CHECK(i < fields_.size());
    out.AddField(fields_[i]);
  }
  return out;
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(fields_.size());
  for (const auto& f : fields_) {
    parts.push_back(f.name + ":" + ColumnTypeName(f.type));
  }
  return StrJoin(parts, ", ");
}

}  // namespace subtab
