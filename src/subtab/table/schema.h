#ifndef SUBTAB_TABLE_SCHEMA_H_
#define SUBTAB_TABLE_SCHEMA_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "subtab/table/column.h"

/// \file schema.h
/// Relational schema U = {u_1, ..., u_m} (paper Sec. 3.1): ordered, named,
/// typed fields with O(1) name lookup.

namespace subtab {

/// One column description.
struct Field {
  std::string name;
  ColumnType type;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// Ordered collection of fields.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const {
    SUBTAB_CHECK(i < fields_.size());
    return fields_[i];
  }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field with this name, if present.
  std::optional<size_t> IndexOf(std::string_view name) const;

  /// Appends a field; name must be unique.
  void AddField(Field field);

  /// Schema restricted to `indices`, in the given order.
  Schema Select(const std::vector<size_t>& indices) const;

  bool operator==(const Schema& other) const { return fields_ == other.fields_; }

  /// "name:type, name:type, ..." for diagnostics.
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace subtab

#endif  // SUBTAB_TABLE_SCHEMA_H_
