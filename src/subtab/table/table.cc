#include "subtab/table/table.h"

#include <algorithm>
#include <numeric>

#include "subtab/util/string_util.h"

namespace subtab {

Result<Table> Table::Make(std::vector<Column> columns) {
  Table t;
  for (auto& col : columns) {
    SUBTAB_RETURN_IF_ERROR(t.AddColumn(std::move(col)));
  }
  return t;
}

const Column& Table::column(std::string_view name) const {
  auto idx = schema_.IndexOf(name);
  SUBTAB_CHECK(idx.has_value());
  return columns_[*idx];
}

Result<size_t> Table::ColumnIndex(std::string_view name) const {
  auto idx = schema_.IndexOf(name);
  if (!idx.has_value()) {
    return Status::NotFound("no column named '" + std::string(name) + "'");
  }
  return *idx;
}

Status Table::AddColumn(Column column) {
  if (!columns_.empty() && column.size() != num_rows_) {
    return Status::InvalidArgument(
        StrFormat("column '%s' has %zu rows, table has %zu", column.name().c_str(),
                  column.size(), num_rows_));
  }
  if (schema_.IndexOf(column.name()).has_value()) {
    return Status::InvalidArgument("duplicate column name '" + column.name() + "'");
  }
  if (columns_.empty()) num_rows_ = column.size();
  column.SealTail();
  schema_.AddField({column.name(), column.type()});
  columns_.push_back(std::move(column));
  return Status::Ok();
}

Result<Table> Table::AppendRows(const Table& batch, size_t max_chunk_rows) const {
  if (!(batch.schema() == schema_)) {
    return Status::InvalidArgument("appended batch schema does not match: " +
                                   batch.schema().ToString() + " vs " +
                                   schema_.ToString());
  }
  Table out;
  out.schema_ = schema_;
  out.num_rows_ = num_rows_ + batch.num_rows();
  out.columns_.reserve(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    out.columns_.push_back(
        columns_[c].AppendSlice(batch.columns_[c], max_chunk_rows));
  }
  return out;
}

Table Table::Rechunked(size_t max_chunk_rows) const {
  Table out;
  out.schema_ = schema_;
  out.num_rows_ = num_rows_;
  out.columns_.reserve(columns_.size());
  for (const Column& col : columns_) {
    out.columns_.push_back(col.Rechunked(max_chunk_rows));
  }
  return out;
}

Table Table::Flatten() const { return Rechunked(0); }

size_t Table::num_chunks() const {
  size_t chunks = columns_.empty() ? 0 : 1;
  for (const Column& col : columns_) chunks = std::max(chunks, col.num_chunks());
  return chunks;
}

size_t Table::ApproxBytes() const {
  size_t bytes = 0;
  for (const Column& col : columns_) bytes += col.ApproxBytes();
  return bytes;
}

Table Table::TakeRows(const std::vector<size_t>& indices) const {
  Table out;
  for (const auto& col : columns_) {
    Status st = out.AddColumn(col.Take(indices));
    SUBTAB_CHECK(st.ok());
  }
  // An all-columns table with zero columns keeps zero rows by construction.
  return out;
}

Table Table::SelectColumns(const std::vector<size_t>& indices) const {
  Table out;
  for (size_t i : indices) {
    SUBTAB_CHECK(i < columns_.size());
    Status st = out.AddColumn(columns_[i]);
    SUBTAB_CHECK(st.ok());
  }
  return out;
}

Table Table::SubTable(const std::vector<size_t>& row_ids,
                      const std::vector<size_t>& col_ids) const {
  return SelectColumns(col_ids).TakeRows(row_ids);
}

Table Table::Head(size_t limit) const {
  limit = std::min(limit, num_rows_);
  std::vector<size_t> idx(limit);
  std::iota(idx.begin(), idx.end(), 0);
  return TakeRows(idx);
}

std::string Table::ToString(size_t max_rows) const {
  const size_t rows = std::min(max_rows, num_rows_);
  // Column widths.
  std::vector<size_t> width(columns_.size());
  std::vector<std::vector<std::string>> cells(rows);
  for (size_t c = 0; c < columns_.size(); ++c) {
    width[c] = columns_[c].name().size();
  }
  for (size_t r = 0; r < rows; ++r) {
    cells[r].resize(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      cells[r][c] = columns_[c].ToDisplay(r);
      width[c] = std::max(width[c], cells[r][c].size());
    }
  }
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row_cells) {
    for (size_t c = 0; c < row_cells.size(); ++c) {
      out += "| ";
      out += row_cells[c];
      out.append(width[c] - row_cells[c].size() + 1, ' ');
    }
    out += "|\n";
  };
  std::vector<std::string> header(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) header[c] = columns_[c].name();
  append_row(header);
  for (size_t c = 0; c < columns_.size(); ++c) {
    out += "|";
    out.append(width[c] + 2, '-');
  }
  out += "|\n";
  for (size_t r = 0; r < rows; ++r) append_row(cells[r]);
  if (rows < num_rows_) {
    out += StrFormat("... (%zu of %zu rows shown)\n", rows, num_rows_);
  }
  return out;
}

Table Table::Describe() const {
  Column name("column", ColumnType::kCategorical);
  Column type("type", ColumnType::kCategorical);
  Column count("count", ColumnType::kNumeric);
  Column nulls("nulls", ColumnType::kNumeric);
  Column distinct("distinct", ColumnType::kNumeric);
  Column mn("min", ColumnType::kNumeric);
  Column mx("max", ColumnType::kNumeric);
  Column mean("mean", ColumnType::kNumeric);

  for (const Column& col : columns_) {
    name.AppendCategorical(col.name());
    type.AppendCategorical(ColumnTypeName(col.type()));
    const size_t null_count = col.null_count();
    count.AppendNumeric(static_cast<double>(col.size() - null_count));
    nulls.AppendNumeric(static_cast<double>(null_count));
    distinct.AppendNumeric(static_cast<double>(col.distinct_count()));
    if (col.is_numeric()) {
      double lo = 0.0;
      double hi = 0.0;
      if (col.NumericRange(&lo, &hi)) {
        mn.AppendNumeric(lo);
        mx.AppendNumeric(hi);
        double total = 0.0;
        size_t n = 0;
        for (size_t r = 0; r < col.size(); ++r) {
          if (!col.is_null(r)) {
            total += col.num_value(r);
            ++n;
          }
        }
        mean.AppendNumeric(total / static_cast<double>(n));
      } else {
        mn.AppendNull();
        mx.AppendNull();
        mean.AppendNull();
      }
    } else {
      mn.AppendNull();
      mx.AppendNull();
      mean.AppendNull();
    }
  }
  Result<Table> out =
      Table::Make({std::move(name), std::move(type), std::move(count),
                   std::move(nulls), std::move(distinct), std::move(mn),
                   std::move(mx), std::move(mean)});
  SUBTAB_CHECK(out.ok());
  return std::move(out).value();
}

size_t Table::TotalNullCount() const {
  size_t n = 0;
  for (const auto& col : columns_) n += col.null_count();
  return n;
}

}  // namespace subtab
