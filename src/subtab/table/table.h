#ifndef SUBTAB_TABLE_TABLE_H_
#define SUBTAB_TABLE_TABLE_H_

#include <string>
#include <string_view>
#include <vector>

#include "subtab/table/column.h"
#include "subtab/table/schema.h"
#include "subtab/util/status.h"

/// \file table.h
/// Relational table T over schema U (paper Sec. 3.1). Column-oriented; all
/// columns have equal length. Sub-table extraction is row selection
/// (TakeRows) composed with projection (SelectColumns), matching Def. 3.1.

namespace subtab {

/// A column-oriented relational table.
class Table {
 public:
  Table() = default;

  /// Builds a table from columns; all columns must have equal length and
  /// unique names.
  static Result<Table> Make(std::vector<Column> columns);

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  const Schema& schema() const { return schema_; }

  const Column& column(size_t i) const {
    SUBTAB_CHECK(i < columns_.size());
    return columns_[i];
  }

  /// Column by name; fatal if absent (use schema().IndexOf for probing).
  const Column& column(std::string_view name) const;

  /// Index of a named column as a Status-ful lookup.
  Result<size_t> ColumnIndex(std::string_view name) const;

  /// Appends a column of matching length.
  Status AddColumn(Column column);

  /// New table with the rows at `indices` (in order; duplicates allowed).
  Table TakeRows(const std::vector<size_t>& indices) const;

  /// New table with the columns at `indices` (in order).
  Table SelectColumns(const std::vector<size_t>& indices) const;

  /// Sub-table per Def. 3.1: rows at `row_ids` projected on `col_ids`.
  Table SubTable(const std::vector<size_t>& row_ids,
                 const std::vector<size_t>& col_ids) const;

  /// First `limit` rows (entire table if limit >= num_rows).
  Table Head(size_t limit) const;

  /// Renders up to `max_rows` rows as an aligned ASCII table for display.
  std::string ToString(size_t max_rows = 10) const;

  /// Per-column summary statistics (the pandas describe() analogue):
  /// columns [column, type, count, nulls, distinct, min, max, mean] with one
  /// row per column of this table. Min/max/mean are null for categorical
  /// columns.
  Table Describe() const;

  /// Total null cells across all columns.
  size_t TotalNullCount() const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace subtab

#endif  // SUBTAB_TABLE_TABLE_H_
