#ifndef SUBTAB_TABLE_TABLE_H_
#define SUBTAB_TABLE_TABLE_H_

#include <string>
#include <string_view>
#include <vector>

#include "subtab/table/column.h"
#include "subtab/table/schema.h"
#include "subtab/util/status.h"

/// \file table.h
/// Relational table T over schema U (paper Sec. 3.1). Column-oriented; all
/// columns have equal length. Sub-table extraction is row selection
/// (TakeRows) composed with projection (SelectColumns), matching Def. 3.1.
///
/// Storage is a chunked, shared-ownership column store (chunk.h): every
/// column inside a table is sealed into immutable shared chunks, so copying
/// a table — or extending it with AppendRows — shares payload instead of
/// duplicating it. AppendRows is the streaming snapshot path: the new table
/// costs O(batch) and shares every prior chunk with its parent; dropping
/// either table frees only the chunks the other does not reference.

namespace subtab {

/// A column-oriented relational table.
class Table {
 public:
  Table() = default;

  /// Builds a table from columns; all columns must have equal length and
  /// unique names.
  static Result<Table> Make(std::vector<Column> columns);

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  const Schema& schema() const { return schema_; }

  const Column& column(size_t i) const {
    SUBTAB_CHECK(i < columns_.size());
    return columns_[i];
  }

  /// Column by name; fatal if absent (use schema().IndexOf for probing).
  const Column& column(std::string_view name) const;

  /// Index of a named column as a Status-ful lookup.
  Result<size_t> ColumnIndex(std::string_view name) const;

  /// Appends a column of matching length. The column's open tail is sealed
  /// on insertion, so columns inside a table are always fully chunked and
  /// safe to share across threads.
  Status AddColumn(Column column);

  /// New table = this table's rows followed by `batch`'s rows (schemas must
  /// match: names and types, in order). Shares every chunk of this table and
  /// appends the batch as new chunk(s) of at most `max_chunk_rows` rows each
  /// (0 = one chunk per batch) — O(batch rows), independent of this table's
  /// size. The streaming layer's snapshot primitive.
  Result<Table> AppendRows(const Table& batch, size_t max_chunk_rows = 0) const;

  /// Deep copy with each column's payload in a single chunk — the explicit
  /// escape hatch for hot random-access loops (row access on the result
  /// never pays the chunk lookup). Values, codes, dictionaries, and
  /// fingerprints are unchanged.
  Table Flatten() const;

  /// Same content re-sliced into chunks of at most `max_chunk_rows` rows
  /// (0 = one chunk). Physical layout only; content and fingerprints are
  /// unchanged.
  Table Rechunked(size_t max_chunk_rows) const;

  /// Maximum chunk count across columns (1 for a freshly built table).
  size_t num_chunks() const;

  /// Approximate heap bytes of payload, counting shared chunks once per
  /// reference. service::EngineStats deduplicates chunks shared across
  /// tables/versions for resident accounting.
  size_t ApproxBytes() const;

  /// New table with the rows at `indices` (in order; duplicates allowed).
  Table TakeRows(const std::vector<size_t>& indices) const;

  /// New table with the columns at `indices` (in order).
  Table SelectColumns(const std::vector<size_t>& indices) const;

  /// Sub-table per Def. 3.1: rows at `row_ids` projected on `col_ids`.
  Table SubTable(const std::vector<size_t>& row_ids,
                 const std::vector<size_t>& col_ids) const;

  /// First `limit` rows (entire table if limit >= num_rows).
  Table Head(size_t limit) const;

  /// Renders up to `max_rows` rows as an aligned ASCII table for display.
  std::string ToString(size_t max_rows = 10) const;

  /// Per-column summary statistics (the pandas describe() analogue):
  /// columns [column, type, count, nulls, distinct, min, max, mean] with one
  /// row per column of this table. Min/max/mean are null for categorical
  /// columns.
  Table Describe() const;

  /// Total null cells across all columns.
  size_t TotalNullCount() const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace subtab

#endif  // SUBTAB_TABLE_TABLE_H_
