#ifndef SUBTAB_UTIL_ALIAS_TABLE_H_
#define SUBTAB_UTIL_ALIAS_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "subtab/util/check.h"
#include "subtab/util/rng.h"

/// \file alias_table.h
/// Walker/Vose alias method: O(n) preprocessing of a fixed non-negative
/// weight vector into two flat arrays, then O(1) weighted draws. Every draw
/// consumes exactly two Rng values (one slot pick, one coin flip), so a
/// sample sequence is fully determined by the Rng seed — the property the
/// sampled selection path relies on for cache/dedup soundness: the same
/// (scope, seed) always yields the same sampled sub-table.
///
/// The construction partitions slots into "small" (below-average weight) and
/// "large" (above-average); each small slot donates its deficit to exactly
/// one large alias partner. Weights that are zero simply never win the coin
/// flip and alias away; an all-zero (or empty) vector degenerates to uniform
/// over the slots.

namespace subtab {

class AliasTable {
 public:
  /// Builds the table from `weights`. Negative weights are invalid
  /// (checked); zero weights are allowed and draw with probability 0 unless
  /// every weight is zero, in which case draws are uniform.
  explicit AliasTable(const std::vector<double>& weights)
      : prob_(weights.size(), 1.0), alias_(weights.size()) {
    const size_t n = weights.size();
    for (size_t i = 0; i < n; ++i) alias_[i] = i;
    if (n == 0) return;
    double total = 0.0;
    for (double w : weights) {
      SUBTAB_CHECK(w >= 0.0 && "AliasTable weights must be non-negative");
      total += w;
    }
    if (!(total > 0.0)) return;  // All-zero: uniform fallback.

    // Scaled[i] = weight[i] * n / total; average scaled weight is 1.
    std::vector<double> scaled(n);
    std::vector<size_t> small, large;
    small.reserve(n);
    large.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      scaled[i] = weights[i] * static_cast<double>(n) / total;
      (scaled[i] < 1.0 ? small : large).push_back(i);
    }
    while (!small.empty() && !large.empty()) {
      const size_t s = small.back();
      const size_t l = large.back();
      small.pop_back();
      large.pop_back();
      prob_[s] = scaled[s];
      alias_[s] = l;
      scaled[l] -= 1.0 - scaled[s];  // Large donates the small slot's deficit.
      (scaled[l] < 1.0 ? small : large).push_back(l);
    }
    // Whatever remains (either stack, from rounding) keeps prob 1 — it can
    // only be within floating error of 1 anyway.
    for (size_t s : small) prob_[s] = 1.0;
    for (size_t l : large) prob_[l] = 1.0;
  }

  /// One weighted draw: a slot index in [0, size()). Consumes exactly two
  /// Rng values regardless of the outcome, so interleaved consumers stay
  /// reproducible.
  size_t Sample(Rng& rng) const {
    SUBTAB_CHECK(!prob_.empty() && "Sample() on an empty AliasTable");
    const size_t slot = static_cast<size_t>(rng.Uniform(prob_.size()));
    const double flip = rng.UniformDouble();
    return flip < prob_[slot] ? slot : alias_[slot];
  }

  size_t size() const { return prob_.size(); }

  /// Probability of drawing `slot` directly (vs its alias) — exposed for
  /// tests asserting the Vose invariants.
  double prob(size_t slot) const { return prob_[slot]; }
  size_t alias(size_t slot) const { return alias_[slot]; }

 private:
  std::vector<double> prob_;
  std::vector<size_t> alias_;
};

}  // namespace subtab

#endif  // SUBTAB_UTIL_ALIAS_TABLE_H_
