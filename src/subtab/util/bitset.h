#ifndef SUBTAB_UTIL_BITSET_H_
#define SUBTAB_UTIL_BITSET_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "subtab/util/check.h"

/// \file bitset.h
/// Dynamic bitset used for transaction-id sets in the Apriori miner and for
/// covered-cell accounting in the cell-coverage metric. Intersection is the
/// hot operation (word-wise AND + popcount).

namespace subtab {

/// Fixed-size-after-construction dynamic bitset.
class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(size_t size, bool value = false)
      : size_(size),
        words_((size + 63) / 64, value ? ~uint64_t{0} : uint64_t{0}) {
    ClearPadding();
  }

  size_t size() const { return size_; }

  void Set(size_t i) {
    SUBTAB_DCHECK(i < size_);
    words_[i >> 6] |= (uint64_t{1} << (i & 63));
  }
  void Clear(size_t i) {
    SUBTAB_DCHECK(i < size_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }
  bool Test(size_t i) const {
    SUBTAB_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Number of set bits.
  size_t Count() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
    return n;
  }

  bool AnySet() const {
    for (uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  /// this &= other (sizes must match).
  void IntersectWith(const Bitset& other) {
    SUBTAB_DCHECK(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  }

  /// this |= other (sizes must match).
  void UnionWith(const Bitset& other) {
    SUBTAB_DCHECK(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  }

  /// |a & b| without materializing the intersection.
  static size_t IntersectionCount(const Bitset& a, const Bitset& b) {
    SUBTAB_DCHECK(a.size_ == b.size_);
    size_t n = 0;
    for (size_t i = 0; i < a.words_.size(); ++i) {
      n += static_cast<size_t>(std::popcount(a.words_[i] & b.words_[i]));
    }
    return n;
  }

  /// a & b as a new bitset.
  static Bitset Intersection(const Bitset& a, const Bitset& b) {
    Bitset out = a;
    out.IntersectWith(b);
    return out;
  }

  /// Indices of set bits, ascending.
  std::vector<uint32_t> ToIndices() const {
    std::vector<uint32_t> out;
    out.reserve(Count());
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        out.push_back(static_cast<uint32_t>((w << 6) + static_cast<size_t>(b)));
        bits &= bits - 1;
      }
    }
    return out;
  }

  bool operator==(const Bitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

 private:
  void ClearPadding() {
    const size_t rem = size_ & 63;
    if (rem != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << rem) - 1;
    }
  }

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace subtab

#endif  // SUBTAB_UTIL_BITSET_H_
