#ifndef SUBTAB_UTIL_CHECK_H_
#define SUBTAB_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file check.h
/// Fatal invariant checks. The library follows the Google style of not using
/// exceptions: programming errors abort with a diagnostic, while recoverable
/// errors flow through subtab::Status (see status.h).

namespace subtab::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "SUBTAB_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace subtab::internal

/// Aborts the process with a diagnostic when `expr` is false. Always enabled.
#define SUBTAB_CHECK(expr)                                           \
  do {                                                               \
    if (!(expr)) ::subtab::internal::CheckFailed(__FILE__, __LINE__, #expr); \
  } while (0)

/// Debug-only variant of SUBTAB_CHECK; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define SUBTAB_DCHECK(expr) \
  do {                      \
  } while (0)
#else
#define SUBTAB_DCHECK(expr) SUBTAB_CHECK(expr)
#endif

#endif  // SUBTAB_UTIL_CHECK_H_
