#ifndef SUBTAB_UTIL_HASH_H_
#define SUBTAB_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

/// \file hash.h
/// Stable 64-bit hashing for fingerprints and cache keys. FNV-1a over bytes
/// plus a SplitMix64-based combiner. These hashes are *persistent* — the
/// serving layer stores them in model-cache file names — so the functions
/// here must never change behaviour across versions (unlike std::hash, which
/// is free to differ per platform/process).

namespace subtab {

inline constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

/// FNV-1a over a byte range, continuing from `seed`.
inline uint64_t HashBytes(const void* data, size_t len,
                          uint64_t seed = kFnvOffsetBasis) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

inline uint64_t HashString(std::string_view s, uint64_t seed = kFnvOffsetBasis) {
  return HashBytes(s.data(), s.size(), seed);
}

/// SplitMix64 finalizer: diffuses a 64-bit value.
inline uint64_t HashMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-sensitive combiner: fold `value` into running hash `h`.
inline uint64_t HashCombine(uint64_t h, uint64_t value) {
  return HashMix(h ^ HashMix(value));
}

}  // namespace subtab

#endif  // SUBTAB_UTIL_HASH_H_
