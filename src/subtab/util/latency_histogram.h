#ifndef SUBTAB_UTIL_LATENCY_HISTOGRAM_H_
#define SUBTAB_UTIL_LATENCY_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>

/// \file latency_histogram.h
/// Fixed-footprint concurrent latency histogram for the serving pipeline's
/// stats (service/engine.h). Buckets are powers of two in microseconds
/// (1us .. ~2200s), recorded with relaxed atomics so the request path pays
/// two uncontended fetch_adds; percentiles are estimated from a snapshot by
/// nearest-rank over the buckets, answering within ~2x of the true latency —
/// plenty for shed/alerting decisions, and stable under any thread count.

namespace subtab {

class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 32;

  /// Percentile estimates plus exact count/sum, read in one pass.
  struct Snapshot {
    uint64_t count = 0;
    double sum_seconds = 0.0;
    std::array<uint64_t, kBuckets> buckets{};

    /// Nearest-rank percentile (p in [0, 1]) in seconds; 0 when empty.
    /// Returns the geometric midpoint of the owning bucket.
    double Percentile(double p) const {
      if (count == 0) return 0.0;
      // Nearest-rank: the ceil(p*count)-th smallest sample, i.e. 0-based
      // index ceil(p*count) - 1. floor(p*count) would land one sample past
      // that whenever p*count is integral (p50 of 2 samples must be the
      // 1st, not the 2nd), inflating percentiles by up to a bucket on
      // round counts.
      uint64_t rank =
          static_cast<uint64_t>(std::ceil(p * static_cast<double>(count)));
      if (rank > 0) --rank;
      if (rank >= count) rank = count - 1;
      uint64_t seen = 0;
      for (size_t b = 0; b < kBuckets; ++b) {
        seen += buckets[b];
        if (seen > rank) {
          // Bucket b spans [2^(b-1), 2^b) microseconds (b=0: [0, 1)).
          const double hi_us = static_cast<double>(1ULL << b);
          const double mid_us = b == 0 ? 0.5 : hi_us * 0.75;
          return mid_us * 1e-6;
        }
      }
      return 0.0;
    }

    double MeanSeconds() const {
      return count == 0 ? 0.0 : sum_seconds / static_cast<double>(count);
    }
  };

  void Record(double seconds) {
    if (seconds < 0.0) seconds = 0.0;
    const uint64_t us = static_cast<uint64_t>(seconds * 1e6);
    const size_t b =
        us == 0 ? 0
                : std::min<size_t>(kBuckets - 1, std::bit_width(us));
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                      std::memory_order_relaxed);
  }

  Snapshot TakeSnapshot() const {
    Snapshot snap;
    for (size_t b = 0; b < kBuckets; ++b) {
      snap.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
      snap.count += snap.buckets[b];
    }
    snap.sum_seconds =
        static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
    return snap;
  }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> sum_ns_{0};
};

}  // namespace subtab

#endif  // SUBTAB_UTIL_LATENCY_HISTOGRAM_H_
