#include "subtab/util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace subtab {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::mutex g_log_mutex;

/// Log-line tag only (never span propagation — see LogTraceScope's contract
/// in logging.h): re-armed at each pipeline stage entry.
thread_local uint64_t g_trace_tag = 0;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

LogTraceScope::LogTraceScope(uint64_t trace_id) : saved_(g_trace_tag) {
  if (trace_id != 0) g_trace_tag = trace_id;
}

LogTraceScope::~LogTraceScope() { g_trace_tag = saved_; }

uint64_t CurrentLogTraceId() { return g_trace_tag; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  // Keep only the basename to keep lines short.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level_) << " " << base << ":" << line << "] ";
  if (g_trace_tag != 0) {
    char tag[24];
    std::snprintf(tag, sizeof(tag), "[%016llx] ",
                  (unsigned long long)g_trace_tag);
    stream_ << tag;
  }
}

LogMessage::~LogMessage() {
  // One write call per line: interleaved fprintf("%s") + "\n" pairs from
  // concurrent pipeline stages used to shear lines mid-message. The mutex
  // orders whole lines; the single fwrite keeps each line atomic even
  // against non-subtab writers sharing stderr.
  std::string line = stream_.str();
  line.push_back('\n');
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace internal
}  // namespace subtab
