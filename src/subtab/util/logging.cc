#include "subtab/util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace subtab {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::mutex g_log_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  // Keep only the basename to keep lines short.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal
}  // namespace subtab
