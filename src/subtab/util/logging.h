#ifndef SUBTAB_UTIL_LOGGING_H_
#define SUBTAB_UTIL_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

/// \file logging.h
/// Tiny leveled logger used by long-running stages (embedding training,
/// mining) to report progress. Defaults to kWarning so tests stay quiet;
/// benches raise it to kInfo. Each message is emitted in a single write, so
/// concurrent pipeline stages never shear each other's lines, and lines are
/// tagged with the active trace id when one is in scope (LogTraceScope).

namespace subtab {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Tags log lines emitted by the current thread with a trace id (RAII;
/// restores the previous tag on destruction, so nested scopes stack).
/// Pipeline stages arm this at entry from the trace carried BY VALUE in the
/// request — the thread-local here is only the log-line tag, never the span
/// propagation path (stages migrate threads between queue hops; see
/// util/trace.h). A zero id leaves lines untagged.
class LogTraceScope {
 public:
  explicit LogTraceScope(uint64_t trace_id);
  ~LogTraceScope();

  LogTraceScope(const LogTraceScope&) = delete;
  LogTraceScope& operator=(const LogTraceScope&) = delete;

 private:
  uint64_t saved_;
};

/// The current thread's active trace-id tag (0 = none).
uint64_t CurrentLogTraceId();

namespace internal {

/// Collects one message and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a log statement that is below the threshold.
struct NullLog {
  template <typename T>
  NullLog& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define SUBTAB_LOG(level)                                        \
  (::subtab::LogLevel::k##level < ::subtab::GetLogLevel())       \
      ? (void)0                                                  \
      : (void)(::subtab::internal::LogMessage(                   \
            ::subtab::LogLevel::k##level, __FILE__, __LINE__))

// Stream-style logging: SUBTAB_LOG_STREAM(Info) << "trained " << n;
#define SUBTAB_LOG_STREAM(level)                                 \
  if (::subtab::LogLevel::k##level < ::subtab::GetLogLevel()) {  \
  } else                                                         \
    ::subtab::internal::LogMessage(::subtab::LogLevel::k##level, __FILE__, __LINE__)

}  // namespace subtab

#endif  // SUBTAB_UTIL_LOGGING_H_
