#ifndef SUBTAB_UTIL_LOGGING_H_
#define SUBTAB_UTIL_LOGGING_H_

#include <sstream>
#include <string>

/// \file logging.h
/// Tiny leveled logger used by long-running stages (embedding training,
/// mining) to report progress. Defaults to kWarning so tests stay quiet;
/// benches raise it to kInfo.

namespace subtab {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Collects one message and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a log statement that is below the threshold.
struct NullLog {
  template <typename T>
  NullLog& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define SUBTAB_LOG(level)                                        \
  (::subtab::LogLevel::k##level < ::subtab::GetLogLevel())       \
      ? (void)0                                                  \
      : (void)(::subtab::internal::LogMessage(                   \
            ::subtab::LogLevel::k##level, __FILE__, __LINE__))

// Stream-style logging: SUBTAB_LOG_STREAM(Info) << "trained " << n;
#define SUBTAB_LOG_STREAM(level)                                 \
  if (::subtab::LogLevel::k##level < ::subtab::GetLogLevel()) {  \
  } else                                                         \
    ::subtab::internal::LogMessage(::subtab::LogLevel::k##level, __FILE__, __LINE__)

}  // namespace subtab

#endif  // SUBTAB_UTIL_LOGGING_H_
