#include "subtab/util/metrics.h"

#include "subtab/util/string_util.h"

namespace subtab {
namespace {

/// Bucket-wise histogram-snapshot subtraction (clamped), recomputing count
/// and sum so percentiles over the delta answer "inside this window".
LatencyHistogram::Snapshot SnapshotDelta(
    const LatencyHistogram::Snapshot& now,
    const LatencyHistogram::Snapshot& earlier) {
  LatencyHistogram::Snapshot delta;
  for (size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
    delta.buckets[b] = now.buckets[b] >= earlier.buckets[b]
                           ? now.buckets[b] - earlier.buckets[b]
                           : 0;
    delta.count += delta.buckets[b];
  }
  delta.sum_seconds = now.sum_seconds >= earlier.sum_seconds
                          ? now.sum_seconds - earlier.sum_seconds
                          : 0.0;
  return delta;
}

}  // namespace

MetricsSnapshot MetricsSnapshot::Delta(const MetricsSnapshot& earlier) const {
  MetricsSnapshot delta;
  for (const auto& [name, value] : counters) {
    auto it = earlier.counters.find(name);
    const uint64_t base = it == earlier.counters.end() ? 0 : it->second;
    delta.counters[name] = value >= base ? value - base : 0;
  }
  delta.gauges = gauges;
  for (const auto& [name, snap] : histograms) {
    auto it = earlier.histograms.find(name);
    delta.histograms[name] = it == earlier.histograms.end()
                                 ? snap
                                 : SnapshotDelta(snap, it->second);
  }
  return delta;
}

std::string MetricsSnapshot::ToJson() const {
  std::string json = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) json += ",";
    first = false;
    json += StrFormat("\"%s\":%llu", name.c_str(), (unsigned long long)value);
  }
  json += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) json += ",";
    first = false;
    json += StrFormat("\"%s\":%.6g", name.c_str(), value);
  }
  json += "},\"histograms\":{";
  first = true;
  for (const auto& [name, snap] : histograms) {
    if (!first) json += ",";
    first = false;
    json += StrFormat(
        "\"%s\":{\"count\":%llu,\"mean_ms\":%.6g,\"p50_ms\":%.6g,"
        "\"p95_ms\":%.6g,\"p99_ms\":%.6g}",
        name.c_str(), (unsigned long long)snap.count, snap.MeanSeconds() * 1e3,
        snap.Percentile(0.50) * 1e3, snap.Percentile(0.95) * 1e3,
        snap.Percentile(0.99) * 1e3);
  }
  json += "}}";
  return json;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<LatencyHistogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->TakeSnapshot();
  }
  return snap;
}

}  // namespace subtab
