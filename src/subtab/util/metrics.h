#ifndef SUBTAB_UTIL_METRICS_H_
#define SUBTAB_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "subtab/util/latency_histogram.h"

/// \file metrics.h
/// The unified metrics registry behind EngineStats: counters, gauges, and
/// latency histograms under stable dotted names ("pipeline.stage.scan",
/// "containment.hits", ...). Instruments are registered once (a mutexed map
/// lookup at construction time), then updated lock-free on the request path
/// via the returned stable pointers — registration cost never touches a hot
/// path. The naming scheme is cataloged in docs/OBSERVABILITY.md; the
/// EngineStats struct sections are snapshot VIEWS over these instruments,
/// not independent counters.
///
/// Snapshots support deltas: Snapshot() captures every instrument, and
/// Delta(earlier) subtracts counters and histogram buckets (gauges pass
/// through), so a bench phase or an ops scrape window can report exactly
/// what happened inside it — the per-stage p50/p95 attribution in
/// BENCH_serving.json's trace_summary is a delta over the drill-down phase.

namespace subtab {

/// Monotonic counter; relaxed atomics, safe from any thread.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins double gauge (queue depth, utilization, resident bytes).
class Gauge {
 public:
  void Set(double value) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    bits_.store(bits, std::memory_order_relaxed);
  }
  double Value() const {
    const uint64_t bits = bits_.load(std::memory_order_relaxed);
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

 private:
  std::atomic<uint64_t> bits_{0};
};

/// Point-in-time capture of every registered instrument, keyed by name
/// (sorted — ToJson output is deterministic).
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, LatencyHistogram::Snapshot> histograms;

  /// This snapshot minus `earlier`: counters and histogram buckets
  /// subtract (clamped at 0 — instruments registered mid-window simply
  /// contribute their full value); gauges keep this snapshot's value.
  MetricsSnapshot Delta(const MetricsSnapshot& earlier) const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":
  /// {name:{count,mean_ms,p50_ms,p95_ms,p99_ms}}}.
  std::string ToJson() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the instrument registered under `name`, creating it on first
  /// use. Pointers are stable for the registry's lifetime — cache them at
  /// construction time and update through them lock-free. Names should be
  /// dotted section.metric paths (see docs/OBSERVABILITY.md).
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  LatencyHistogram* histogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  std::string ToJson() const { return Snapshot().ToJson(); }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace subtab

#endif  // SUBTAB_UTIL_METRICS_H_
