#include "subtab/util/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace subtab {

size_t HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

void ParallelFor(size_t total, size_t num_threads,
                 const std::function<void(size_t, size_t, size_t)>& body) {
  if (total == 0) return;
  if (num_threads == 0) num_threads = HardwareThreads();
  num_threads = std::min(num_threads, total);
  if (num_threads <= 1) {
    body(0, 0, total);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  const size_t chunk = (total + num_threads - 1) / num_threads;
  for (size_t t = 0; t < num_threads; ++t) {
    const size_t begin = t * chunk;
    const size_t end = std::min(begin + chunk, total);
    if (begin >= end) break;
    workers.emplace_back([&body, t, begin, end] { body(t, begin, end); });
  }
  for (auto& w : workers) w.join();
}

void ParallelForEach(size_t count, size_t num_threads,
                     const std::function<void(size_t)>& body) {
  if (count == 0) return;
  if (num_threads == 0) num_threads = HardwareThreads();
  num_threads = std::min(num_threads, count);
  if (num_threads <= 1) {
    for (size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([&body, t, count, num_threads] {
      for (size_t i = t; i < count; i += num_threads) body(i);
    });
  }
  for (auto& w : workers) w.join();
}

}  // namespace subtab
