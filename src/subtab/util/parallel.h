#ifndef SUBTAB_UTIL_PARALLEL_H_
#define SUBTAB_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

/// \file parallel.h
/// Static-partition parallel-for used by the embedding trainer and k-means.
/// Work is split into `num_threads` contiguous shards so that each shard can
/// own an independent RNG stream, keeping runs reproducible for a fixed
/// thread count (and exactly reproducible with num_threads == 1).

namespace subtab {

/// Number of hardware threads, at least 1.
size_t HardwareThreads();

/// Runs body(shard_index, begin, end) on `num_threads` shards covering
/// [0, total). A num_threads of 0 means HardwareThreads(); 1 runs inline.
void ParallelFor(size_t total, size_t num_threads,
                 const std::function<void(size_t shard, size_t begin, size_t end)>& body);

}  // namespace subtab

#endif  // SUBTAB_UTIL_PARALLEL_H_
