#ifndef SUBTAB_UTIL_PARALLEL_H_
#define SUBTAB_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

/// \file parallel.h
/// Static-partition parallel-for used by the embedding trainer and k-means.
/// Work is split into `num_threads` contiguous shards so that each shard can
/// own an independent RNG stream, keeping runs reproducible for a fixed
/// thread count (and exactly reproducible with num_threads == 1).

namespace subtab {

/// Number of hardware threads, at least 1.
size_t HardwareThreads();

/// Runs body(shard_index, begin, end) on `num_threads` shards covering
/// [0, total). A num_threads of 0 means HardwareThreads(); 1 runs inline.
void ParallelFor(size_t total, size_t num_threads,
                 const std::function<void(size_t shard, size_t begin, size_t end)>& body);

/// Runs body(i) for every i in [0, count) across up to `num_threads` threads
/// (0 = HardwareThreads(); <= 1, or count <= 1, runs inline). Tasks are dealt
/// statically round-robin, so the mapping of task to thread is deterministic
/// for a fixed thread count. Unlike ParallelFor's contiguous even shards,
/// this is for *irregular* units — e.g. one task per sealed chunk of a
/// column, where chunk sizes differ by orders of magnitude (a streaming
/// table's base chunk vs its per-batch chunks); round-robin keeps every
/// thread busy without an up-front size model.
void ParallelForEach(size_t count, size_t num_threads,
                     const std::function<void(size_t i)>& body);

}  // namespace subtab

#endif  // SUBTAB_UTIL_PARALLEL_H_
