#include "subtab/util/rng.h"

#include <cmath>
#include <numbers>

namespace subtab {
namespace {

inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  // All-zero state is invalid for xoshiro; SplitMix64 cannot produce four
  // zeros from any seed, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  has_cached_normal_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  SUBTAB_CHECK(bound > 0);
  // Lemire's nearly-divisionless bounded sampling.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SUBTAB_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // Full 64-bit range.
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::UniformDouble() {
  // 53 high-quality mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  // Avoid log(0).
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  SUBTAB_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    SUBTAB_CHECK(w >= 0.0);
    total += w;
  }
  SUBTAB_CHECK(total > 0.0);
  double u = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point fallthrough.
}

size_t Rng::Zipf(size_t n, double s) {
  SUBTAB_CHECK(n > 0);
  // Small n in practice (category counts), so direct inversion on the CDF.
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) total += 1.0 / std::pow(static_cast<double>(i + 1), s);
  double u = UniformDouble() * total;
  for (size_t i = 0; i < n; ++i) {
    u -= 1.0 / std::pow(static_cast<double>(i + 1), s);
    if (u <= 0.0) return i;
  }
  return n - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t count) {
  SUBTAB_CHECK(count <= n);
  if (count == 0) return {};
  // Floyd's algorithm keeps memory proportional to `count`.
  std::vector<size_t> picked;
  picked.reserve(count);
  auto contains = [&picked](size_t v) {
    for (size_t p : picked) {
      if (p == v) return true;
    }
    return false;
  };
  for (size_t j = n - count; j < n; ++j) {
    size_t t = Uniform(j + 1);
    if (contains(t)) {
      picked.push_back(j);
    } else {
      picked.push_back(t);
    }
  }
  Shuffle(&picked);
  return picked;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace subtab
