#ifndef SUBTAB_UTIL_RNG_H_
#define SUBTAB_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "subtab/util/check.h"

/// \file rng.h
/// Deterministic pseudo-random number generation. Every stochastic component
/// of the library (data generators, Word2Vec, k-means++, the RAN and MAB
/// baselines) takes an explicit seed so experiments are reproducible
/// bit-for-bit. The engine is xoshiro256**, seeded via SplitMix64.

namespace subtab {

/// xoshiro256** engine with convenience distributions.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the engine deterministically from a single 64-bit value.
  void Seed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound). `bound` must be > 0. Uses Lemire's method.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box–Muller (cached second value).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Samples an index in [0, weights.size()) proportional to weights.
  /// Weights must be non-negative with a positive sum.
  size_t Categorical(const std::vector<double>& weights);

  /// Zipf-like rank sample over [0, n): P(i) ∝ 1/(i+1)^s.
  size_t Zipf(size_t n, double s);

  /// Fisher–Yates shuffle of the container in place.
  template <typename Container>
  void Shuffle(Container* c) {
    SUBTAB_CHECK(c != nullptr);
    const size_t n = c->size();
    for (size_t i = n; i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*c)[i - 1], (*c)[j]);
    }
  }

  /// Samples `count` distinct indices from [0, n) (Floyd's algorithm),
  /// returned in random order. Requires count <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t count);

  /// Derives an independent child generator; cheap way to give each worker or
  /// component its own stream from one master seed.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace subtab

#endif  // SUBTAB_UTIL_RNG_H_
