#include "subtab/util/sample_quality.h"

#include <utility>

#include "subtab/metrics/combined.h"

namespace subtab {

SampleQualityCheck::SampleQualityCheck(SampleQualityOptions options)
    : options_(std::move(options)) {}

bool SampleQualityCheck::ShouldCheck(uint64_t model_digest) {
  if (options_.check_every == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t n = scheduled_[model_digest]++;
  return n % options_.check_every == 0;
}

const SampleQualityCheck::CacheEntry& SampleQualityCheck::EvaluatorFor(
    uint64_t model_digest, const BinnedTable& binned,
    std::shared_ptr<const void> keep_alive) {
  // Held across mining: concurrent checks of the same model would otherwise
  // mine the same rules twice. Checks are off the hot path (every Nth
  // sampled selection), so serializing them is the cheap choice.
  auto it = evaluators_.find(model_digest);
  if (it != evaluators_.end()) return it->second;
  if (evaluators_.size() >= options_.max_cached_models) evaluators_.clear();

  CacheEntry entry;
  entry.keep_alive = std::move(keep_alive);
  entry.rules = std::make_unique<RuleSet>(MineRules(binned, options_.mining));
  entry.evaluator = std::make_unique<CoverageEvaluator>(binned, *entry.rules);
  return evaluators_.emplace(model_digest, std::move(entry)).first->second;
}

double SampleQualityCheck::QualityRatio(
    uint64_t model_digest, const BinnedTable& binned,
    std::shared_ptr<const void> keep_alive,
    const std::vector<size_t>& sampled_rows,
    const std::vector<size_t>& sampled_cols,
    const std::vector<size_t>& exact_rows,
    const std::vector<size_t>& exact_cols) {
  std::lock_guard<std::mutex> lock(mu_);
  const CacheEntry& entry =
      EvaluatorFor(model_digest, binned, std::move(keep_alive));
  const SubTableScore sampled = ScoreSubTable(*entry.evaluator, sampled_rows,
                                              sampled_cols, options_.alpha);
  const SubTableScore exact = ScoreSubTable(*entry.evaluator, exact_rows,
                                            exact_cols, options_.alpha);
  if (!(exact.combined > 0.0)) return 1.0;
  return sampled.combined / exact.combined;
}

size_t SampleQualityCheck::cached_models() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evaluators_.size();
}

}  // namespace subtab
