#ifndef SUBTAB_UTIL_SAMPLE_QUALITY_H_
#define SUBTAB_UTIL_SAMPLE_QUALITY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "subtab/metrics/cell_coverage.h"
#include "subtab/rules/miner.h"

/// \file sample_quality.h
/// Quality gate for the sub-linear sampled selection path (core/select.h).
/// Sampling trades scope coverage for speed; this gate bounds the trade the
/// same way the refresh policy gates model staleness on measured drift: on a
/// deterministic schedule (every Nth sampled selection per model) the
/// serving engine re-runs the selection exactly, scores both results with
/// the paper's combined coverage+diversity metric (Eq. 3), and serves the
/// exact result instead when the sampled/exact ratio falls below the
/// configured floor.
///
/// Scoring needs association rules, and mining them is far more expensive
/// than one selection — so rules (and the CoverageEvaluator built from
/// them) are mined once per model digest and cached, pinned by a keep-alive
/// handle so the binned table the evaluator points into cannot be evicted
/// out from under it. All entry points are thread-safe.

namespace subtab {

struct SampleQualityOptions {
  /// Check every Nth sampled selection per model digest; the 1st sampled
  /// selection of each model is always checked so a bad configuration is
  /// caught immediately. 0 = never check.
  uint64_t check_every = 32;
  /// Eq. 3 weight between cell coverage and diversity.
  double alpha = 0.5;
  /// Rules mined per model for the coverage half of the score.
  RuleMiningOptions mining;
  /// Cached evaluators are cleared when more models than this accumulate
  /// (checks are rare; re-mining after a clear is acceptable).
  size_t max_cached_models = 8;
};

class SampleQualityCheck {
 public:
  explicit SampleQualityCheck(SampleQualityOptions options = {});

  /// True when the next sampled selection for `model_digest` is due a
  /// quality check under the deterministic schedule. Advances the per-model
  /// counter as a side effect.
  bool ShouldCheck(uint64_t model_digest);

  /// Combined-score ratio sampled/exact for one selection pair over the
  /// model's binned table. `keep_alive` owns (directly or transitively) the
  /// storage behind `binned` and is held for the lifetime of the cached
  /// evaluator. Returns 1.0 when the exact score is not positive (nothing
  /// to lose); values above 1.0 are possible and simply mean the sample
  /// scored better.
  double QualityRatio(uint64_t model_digest, const BinnedTable& binned,
                      std::shared_ptr<const void> keep_alive,
                      const std::vector<size_t>& sampled_rows,
                      const std::vector<size_t>& sampled_cols,
                      const std::vector<size_t>& exact_rows,
                      const std::vector<size_t>& exact_cols);

  /// Cached evaluators currently held (test/ops introspection).
  size_t cached_models() const;

 private:
  struct CacheEntry {
    std::shared_ptr<const void> keep_alive;
    std::unique_ptr<RuleSet> rules;
    std::unique_ptr<CoverageEvaluator> evaluator;
  };

  const CacheEntry& EvaluatorFor(uint64_t model_digest,
                                 const BinnedTable& binned,
                                 std::shared_ptr<const void> keep_alive);

  SampleQualityOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, uint64_t> scheduled_;  ///< Per-model counters.
  std::unordered_map<uint64_t, CacheEntry> evaluators_;
};

}  // namespace subtab

#endif  // SUBTAB_UTIL_SAMPLE_QUALITY_H_
