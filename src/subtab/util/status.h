#ifndef SUBTAB_UTIL_STATUS_H_
#define SUBTAB_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "subtab/util/check.h"

/// \file status.h
/// Minimal Status / Result<T> error model (absl-style). Recoverable failures —
/// malformed CSV input, invalid user configuration, impossible requests such as
/// k > n — are reported through these types; invariant violations abort via
/// SUBTAB_CHECK.

namespace subtab {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  /// Transient overload: the serving engine's admission control sheds the
  /// request instead of queueing it unboundedly; retry after backoff.
  kUnavailable,
};

/// Returns a stable human-readable name ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail without a payload.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored result is a fatal programming error.
template <typename T>
class Result {
 public:
  /// Implicit from a value: allows `return value;` in functions returning
  /// Result<T>, mirroring absl::StatusOr.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status: allows `return Status::...;`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    SUBTAB_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SUBTAB_CHECK(ok());
    return *value_;
  }
  T& value() & {
    SUBTAB_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    SUBTAB_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status to the caller.
#define SUBTAB_RETURN_IF_ERROR(expr)             \
  do {                                           \
    ::subtab::Status _st = (expr);               \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Evaluates a Result<T> expression, assigning its value to `lhs` or
/// propagating the error. `lhs` may include a declaration.
#define SUBTAB_ASSIGN_OR_RETURN(lhs, expr)                \
  SUBTAB_ASSIGN_OR_RETURN_IMPL_(                          \
      SUBTAB_STATUS_CONCAT_(_subtab_result_, __LINE__), lhs, expr)

#define SUBTAB_STATUS_CONCAT_INNER_(a, b) a##b
#define SUBTAB_STATUS_CONCAT_(a, b) SUBTAB_STATUS_CONCAT_INNER_(a, b)
#define SUBTAB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

}  // namespace subtab

#endif  // SUBTAB_UTIL_STATUS_H_
