#ifndef SUBTAB_UTIL_STOPWATCH_H_
#define SUBTAB_UTIL_STOPWATCH_H_

#include <chrono>

/// \file stopwatch.h
/// Wall-clock timing for the pre-processing / selection phase measurements
/// (Fig. 9) and for budgeted baselines (RAN, semi-greedy, MAB).

namespace subtab {

/// Monotonic wall-clock stopwatch, started at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Deadline helper for time-budgeted algorithms.
class Deadline {
 public:
  /// A deadline `budget_seconds` from now; a non-positive budget means
  /// "already expired", an infinite budget can be modeled with a huge value.
  explicit Deadline(double budget_seconds) : budget_seconds_(budget_seconds) {}

  bool Expired() const { return watch_.ElapsedSeconds() >= budget_seconds_; }
  double RemainingSeconds() const {
    return budget_seconds_ - watch_.ElapsedSeconds();
  }

 private:
  Stopwatch watch_;
  double budget_seconds_;
};

}  // namespace subtab

#endif  // SUBTAB_UTIL_STOPWATCH_H_
