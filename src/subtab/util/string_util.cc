#include "subtab/util/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace subtab {

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StrTrim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string StrLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool ParseDouble(std::string_view s, double* out) {
  s = StrTrim(s);
  if (s.empty() || s.size() > 63) return false;
  char buf[64];
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  double v = std::strtod(buf, &end);
  if (end != buf + s.size()) return false;
  *out = v;
  return true;
}

bool LooksNumeric(std::string_view s) {
  double v;
  if (!ParseDouble(s, &v)) return false;
  return std::isfinite(v);
}

std::string NormalizeCell(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char raw : StrTrim(s)) {
    char c = static_cast<char>(std::tolower(static_cast<unsigned char>(raw)));
    const bool legal = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                       c == '.' || c == '_' || c == '+' || c == '-';
    out.push_back(legal ? c : '_');
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatCell(double value, int max_decimals) {
  if (std::isnan(value)) return "NaN";
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    return StrFormat("%.0f", value);
  }
  std::string s = StrFormat("%.*f", max_decimals, value);
  // Trim trailing zeros but keep at least one decimal.
  while (s.size() > 1 && s.back() == '0' && s[s.size() - 2] != '.') s.pop_back();
  return s;
}

}  // namespace subtab
