#ifndef SUBTAB_UTIL_STRING_UTIL_H_
#define SUBTAB_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

/// \file string_util.h
/// Small string helpers shared by the CSV layer, the value normalizer
/// (Algorithm 2 line 1 "normalize"), and display code.

namespace subtab {

/// Splits on a single character; keeps empty fields.
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// Joins with a separator.
std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view StrTrim(std::string_view s);

/// ASCII lower-case copy.
std::string StrLower(std::string_view s);

/// True if `s` parses fully as a floating-point number ("nan"/"inf" excluded;
/// empty string excluded).
bool LooksNumeric(std::string_view s);

/// Parses a double; returns false on any trailing garbage.
bool ParseDouble(std::string_view s, double* out);

/// Normalizes a raw cell for tokenization: trims, lower-cases, and collapses
/// characters outside [a-z0-9._+-] to '_' (the paper's "remove illegal
/// characters" step).
std::string NormalizeCell(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Human-readable fixed-width number for table rendering (e.g. "3.14", "12").
std::string FormatCell(double value, int max_decimals = 3);

}  // namespace subtab

#endif  // SUBTAB_UTIL_STRING_UTIL_H_
