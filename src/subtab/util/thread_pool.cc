#include "subtab/util/thread_pool.h"

#include "subtab/util/check.h"
#include "subtab/util/parallel.h"

namespace subtab {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = HardwareThreads();
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  SUBTAB_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    SUBTAB_CHECK(!stop_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t ThreadPool::active_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run.
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace subtab
