#ifndef SUBTAB_UTIL_THREAD_POOL_H_
#define SUBTAB_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file thread_pool.h
/// A fixed-size worker pool with a FIFO task queue — the general-purpose
/// sibling of ParallelFor (parallel.h). ParallelFor spawns threads per call
/// for static, evenly sharded work inside one algorithm; the pool amortizes
/// thread creation across many small independent jobs, which is what a
/// request-serving path needs (see service/engine.h). Tasks must not throw.

namespace subtab {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (0 means HardwareThreads()).
  explicit ThreadPool(size_t num_threads);

  /// Drains nothing: outstanding tasks are completed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks (unbounded queue). Must not be called
  /// after destruction has begun.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished executing.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Tasks currently queued (excludes running ones); for stats/introspection.
  size_t queue_depth() const;

  /// Tasks currently executing on a worker; active_count() / num_threads()
  /// is the utilization gauge the serving engine's stats expose.
  size_t active_count() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // Signals workers: task ready / stop.
  std::condition_variable idle_cv_;   // Signals Wait(): everything drained.
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;  // Tasks currently executing.
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace subtab

#endif  // SUBTAB_UTIL_THREAD_POOL_H_
