#include "subtab/util/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "subtab/util/hash.h"
#include "subtab/util/string_util.h"

namespace subtab {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t SinceNs(Clock::time_point epoch) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - epoch)
          .count());
}

/// Process-unique nonzero trace ids: a counter diffused through SplitMix64,
/// so ids sharded by value spread evenly and never collide in-process.
uint64_t NextTraceId() {
  static std::atomic<uint64_t> counter{0};
  const uint64_t seq = counter.fetch_add(1, std::memory_order_relaxed) + 1;
  const uint64_t id = HashMix(seq);
  return id == 0 ? seq : id;
}

/// Minimal JSON string escaping: quotes, backslashes, and control bytes.
/// Attribute values are verdicts, numbers, and query strings — never
/// arbitrary user bytes — but a stray quote must not break the JSONL.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------- TraceSpan

void TraceSpan::AddAttr(std::string key, std::string value) {
  if (!enabled()) return;
  attrs.push_back(TraceAttr{std::move(key), std::move(value)});
}

void TraceSpan::AddAttr(std::string key, const char* value) {
  AddAttr(std::move(key), std::string(value));
}

void TraceSpan::AddAttr(std::string key, uint64_t value) {
  AddAttr(std::move(key), StrFormat("%llu", (unsigned long long)value));
}

void TraceSpan::AddAttr(std::string key, double value) {
  AddAttr(std::move(key), StrFormat("%.6g", value));
}

const std::string* TraceSpan::FindAttr(std::string_view key) const {
  for (const TraceAttr& attr : attrs) {
    if (attr.key == key) return &attr.value;
  }
  return nullptr;
}

// ----------------------------------------------------------- CompletedTrace

std::string CompletedTrace::ToJson() const {
  std::string json = StrFormat(
      "{\"trace_id\":\"%016llx\",\"name\":\"%s\",\"duration_ns\":%llu,"
      "\"spans\":[",
      (unsigned long long)trace_id, JsonEscape(name).c_str(),
      (unsigned long long)duration_ns);
  for (size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& span = spans[i];
    if (i > 0) json += ",";
    json += StrFormat(
        "{\"name\":\"%s\",\"span_id\":%llu,\"parent_id\":%llu,"
        "\"start_ns\":%llu,\"duration_ns\":%llu,\"attrs\":{",
        JsonEscape(span.name).c_str(), (unsigned long long)span.span_id,
        (unsigned long long)span.parent_id, (unsigned long long)span.start_ns,
        (unsigned long long)span.duration_ns);
    for (size_t a = 0; a < span.attrs.size(); ++a) {
      if (a > 0) json += ",";
      json += StrFormat("\"%s\":\"%s\"",
                        JsonEscape(span.attrs[a].key).c_str(),
                        JsonEscape(span.attrs[a].value).c_str());
    }
    json += "}}";
  }
  json += "]}";
  return json;
}

// ---------------------------------------------------------------- TraceSink

TraceSink::TraceSink(TraceSinkOptions options)
    : options_(options),
      ring_per_shard_(std::max<size_t>(
          1, options.ring_capacity / std::max<size_t>(1, options.shards))),
      exemplars_per_shard_(
          options.exemplar_capacity == 0
              ? 0
              : std::max<size_t>(1, options.exemplar_capacity /
                                        std::max<size_t>(1, options.shards))) {
  const size_t shards = std::max<size_t>(1, options.shards);
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->ring.resize(ring_per_shard_);
    shards_.push_back(std::move(shard));
  }
}

TraceSink::Shard& TraceSink::ShardFor(uint64_t trace_id) const {
  // Ids are already SplitMix64-diffused; modulo suffices.
  return *shards_[trace_id % shards_.size()];
}

void TraceSink::Commit(std::shared_ptr<const CompletedTrace> trace) {
  if (trace == nullptr) return;
  const double seconds = static_cast<double>(trace->duration_ns) * 1e-9;
  durations_.Record(seconds);

  // Exemplar gate: computed outside the shard lock — the histogram is its
  // own (relaxed-atomic) synchronization domain. The threshold trails by
  // one commit at worst, which only shifts the pin decision for ties.
  bool candidate = false;
  if (exemplars_per_shard_ > 0) {
    const LatencyHistogram::Snapshot snap = durations_.TakeSnapshot();
    if (snap.count >= options_.exemplar_min_samples) {
      candidate = seconds >= snap.Percentile(options_.exemplar_percentile);
    }
  }

  Shard& shard = ShardFor(trace->trace_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.committed;
  if (shard.ring[shard.next] != nullptr) ++shard.evicted;
  shard.ring[shard.next] = trace;
  shard.next = (shard.next + 1) % shard.ring.size();

  if (!candidate) return;
  if (shard.exemplars.size() < exemplars_per_shard_) {
    shard.exemplars.push_back(std::move(trace));
    return;
  }
  // Full: the fastest pinned exemplar yields iff this trace is slower —
  // the list monotonically converges on the slowest traces observed.
  auto fastest = std::min_element(
      shard.exemplars.begin(), shard.exemplars.end(),
      [](const auto& a, const auto& b) { return a->duration_ns < b->duration_ns; });
  if ((*fastest)->duration_ns < trace->duration_ns) {
    *fastest = std::move(trace);
    ++shard.exemplars_evicted;
  }
}

std::vector<std::shared_ptr<const CompletedTrace>> TraceSink::Recent() const {
  std::vector<std::shared_ptr<const CompletedTrace>> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    // Oldest first: the slot under the cursor is the next to be overwritten.
    for (size_t i = 0; i < shard->ring.size(); ++i) {
      const auto& trace = shard->ring[(shard->next + i) % shard->ring.size()];
      if (trace != nullptr) out.push_back(trace);
    }
  }
  return out;
}

std::vector<std::shared_ptr<const CompletedTrace>> TraceSink::Exemplars()
    const {
  std::vector<std::shared_ptr<const CompletedTrace>> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.insert(out.end(), shard->exemplars.begin(), shard->exemplars.end());
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a->duration_ns > b->duration_ns;
  });
  return out;
}

std::vector<std::shared_ptr<const CompletedTrace>> TraceSink::Peek(
    size_t max_traces) const {
  std::vector<std::shared_ptr<const CompletedTrace>> out;
  // Ring first, newest-first: walk each shard's ring backwards from the
  // cursor, then interleave nothing across shards — shard order is
  // unspecified anyway, and observers care about "recent + slow", not a
  // global timeline.
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (size_t i = 0; i < shard->ring.size(); ++i) {
      const size_t slot =
          (shard->next + shard->ring.size() - 1 - i) % shard->ring.size();
      const auto& trace = shard->ring[slot];
      if (trace != nullptr) out.push_back(trace);
    }
  }
  // Then any pinned exemplar not already present (a slow trace may have
  // been evicted from the ring long ago), slowest first.
  std::vector<std::shared_ptr<const CompletedTrace>> exemplars = Exemplars();
  for (auto& exemplar : exemplars) {
    bool seen = false;
    for (const auto& trace : out) {
      if (trace->trace_id == exemplar->trace_id) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(std::move(exemplar));
  }
  if (max_traces > 0 && out.size() > max_traces) out.resize(max_traces);
  return out;
}

std::vector<std::shared_ptr<const CompletedTrace>> TraceSink::Drain() {
  std::vector<std::shared_ptr<const CompletedTrace>> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (size_t i = 0; i < shard->ring.size(); ++i) {
      auto& trace = shard->ring[(shard->next + i) % shard->ring.size()];
      if (trace != nullptr) out.push_back(std::move(trace));
      trace = nullptr;
    }
    shard->next = 0;
  }
  return out;
}

TraceSinkStats TraceSink::Stats() const {
  TraceSinkStats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.committed += shard->committed;
    stats.ring_evicted += shard->evicted;
    stats.exemplars_pinned += shard->exemplars.size();
    stats.exemplars_evicted += shard->exemplars_evicted;
  }
  const LatencyHistogram::Snapshot snap = durations_.TakeSnapshot();
  if (snap.count >= options_.exemplar_min_samples) {
    stats.exemplar_threshold_seconds =
        snap.Percentile(options_.exemplar_percentile);
  }
  return stats;
}

// ------------------------------------------------------------- TraceContext

struct TraceContext::State {
  uint64_t trace_id = 0;
  Clock::time_point epoch;
  std::shared_ptr<TraceSink> sink;

  std::mutex mu;
  TraceSpan root;                 ///< Open until FinishRoot.
  std::vector<TraceSpan> spans;   ///< Finished children, finish order.
  uint64_t next_span_id = 2;      ///< Root takes 1.
  std::shared_ptr<const CompletedTrace> done;  ///< Set once by FinishRoot.
};

TraceContext TraceContext::Start(std::string root_name,
                                 std::shared_ptr<TraceSink> sink) {
  TraceContext ctx;
  ctx.state_ = std::make_shared<State>();
  ctx.state_->trace_id = NextTraceId();
  ctx.state_->epoch = Clock::now();
  ctx.state_->sink = std::move(sink);
  ctx.state_->root.trace_id = ctx.state_->trace_id;
  ctx.state_->root.span_id = 1;
  ctx.state_->root.parent_id = 0;
  ctx.state_->root.name = std::move(root_name);
  ctx.state_->root.start_ns = 0;
  return ctx;
}

uint64_t TraceContext::trace_id() const {
  return state_ == nullptr ? 0 : state_->trace_id;
}

TraceSpan TraceContext::StartSpan(std::string name) const {
  TraceSpan span;
  if (state_ == nullptr) return span;
  span.trace_id = state_->trace_id;
  span.parent_id = 1;  // Child of the root.
  span.name = std::move(name);
  span.start_ns = SinceNs(state_->epoch);
  std::lock_guard<std::mutex> lock(state_->mu);
  span.span_id = state_->next_span_id++;
  return span;
}

void TraceContext::FinishSpan(TraceSpan&& span) const {
  if (state_ == nullptr || !span.enabled()) return;
  const uint64_t now = SinceNs(state_->epoch);
  span.duration_ns = now >= span.start_ns ? now - span.start_ns : 0;
  std::lock_guard<std::mutex> lock(state_->mu);
  if (state_->done != nullptr) return;  // Frozen: late spans are dropped.
  state_->spans.push_back(std::move(span));
}

void TraceContext::AddRootAttr(std::string key, std::string value) const {
  if (state_ == nullptr) return;
  std::lock_guard<std::mutex> lock(state_->mu);
  if (state_->done != nullptr) return;
  state_->root.attrs.push_back(TraceAttr{std::move(key), std::move(value)});
}

void TraceContext::AddRootAttr(std::string key, const char* value) const {
  AddRootAttr(std::move(key), std::string(value));
}

void TraceContext::AddRootAttr(std::string key, uint64_t value) const {
  AddRootAttr(std::move(key), StrFormat("%llu", (unsigned long long)value));
}

void TraceContext::AddRootAttr(std::string key, double value) const {
  AddRootAttr(std::move(key), StrFormat("%.6g", value));
}

std::shared_ptr<const CompletedTrace> TraceContext::FinishRoot() const {
  if (state_ == nullptr) return nullptr;
  std::shared_ptr<TraceSink> sink;
  std::shared_ptr<const CompletedTrace> done;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->done != nullptr) return state_->done;
    state_->root.duration_ns = SinceNs(state_->epoch);
    auto trace = std::make_shared<CompletedTrace>();
    trace->trace_id = state_->trace_id;
    trace->name = state_->root.name;
    trace->duration_ns = state_->root.duration_ns;
    trace->spans.reserve(1 + state_->spans.size());
    trace->spans.push_back(std::move(state_->root));
    for (TraceSpan& span : state_->spans) trace->spans.push_back(std::move(span));
    state_->spans.clear();
    state_->done = std::move(trace);
    done = state_->done;
    sink = std::move(state_->sink);
  }
  // Commit outside the trace's own lock: the sink has its own sharded locks
  // and must never nest inside a per-request mutex held by a hot stage.
  if (sink != nullptr) sink->Commit(done);
  return done;
}

std::string TracesToJsonl(
    const std::vector<std::shared_ptr<const CompletedTrace>>& traces) {
  std::string out;
  for (const auto& trace : traces) {
    if (trace == nullptr) continue;
    out += trace->ToJson();
    out += "\n";
  }
  return out;
}

}  // namespace subtab
