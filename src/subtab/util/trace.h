#ifndef SUBTAB_UTIL_TRACE_H_
#define SUBTAB_UTIL_TRACE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "subtab/util/latency_histogram.h"

/// \file trace.h
/// Request-scoped tracing for the staged serving pipeline. One trace per
/// request: a root span ("select", "stream.append", ...) plus child spans,
/// one per pipeline stage, each carrying monotonic timestamps relative to
/// the trace's epoch and an explicit parent id — the attribution layer that
/// answers "which stage / cache tier / refresh collision ate this request's
/// time" (docs/OBSERVABILITY.md).
///
/// Propagation is BY VALUE: a TraceContext is a copyable handle over shared
/// state, carried inside the pipeline's PendingSelect across queue hops, and
/// an in-flight TraceSpan is a plain value struct handed from the stage that
/// opened it to the stage that closes it. No thread-locals anywhere in the
/// span path — pipeline stages migrate threads between hops, so ambient
/// state would attribute spans to whichever request last ran on the worker.
/// (The only thread-local in the observability layer is the *log tag*,
/// logging.h's LogTraceScope, which is re-armed at every stage entry.)
///
/// Completed traces land in a TraceSink: a lock-sharded in-memory ring
/// buffer (bounded, overwrite-oldest) plus a bounded per-shard exemplar
/// list that PINS slow queries — traces whose root duration clears the
/// sink's latency-percentile threshold survive ring eviction, so the trace
/// of last night's p99 spike is still there in the morning while the
/// thousands of healthy requests that followed it have long been recycled.

namespace subtab {

/// One span attribute, rendered to a string at record time (values are
/// small: verdicts, row counts, version numbers).
struct TraceAttr {
  std::string key;
  std::string value;
};

/// One timed region of a trace. `start_ns` is monotonic, relative to the
/// owning trace's epoch (steady clock — never wall time, so spans order
/// correctly across NTP steps). `parent_id` is explicit; 0 marks the root.
/// A default-constructed span (trace_id 0) is the disabled no-op every
/// tracing-off code path carries for free.
struct TraceSpan {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  std::string name;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  std::vector<TraceAttr> attrs;

  bool enabled() const { return trace_id != 0; }

  /// Attribute setters are no-ops on a disabled span, so call sites never
  /// need an `if (tracing)` around attribute bookkeeping.
  void AddAttr(std::string key, std::string value);
  void AddAttr(std::string key, const char* value);
  void AddAttr(std::string key, uint64_t value);
  void AddAttr(std::string key, double value);

  /// The attribute's value, or nullptr. Linear — spans carry a handful.
  const std::string* FindAttr(std::string_view key) const;
};

/// An immutable finished trace: root span first, children in finish order.
struct CompletedTrace {
  uint64_t trace_id = 0;
  std::string name;
  uint64_t duration_ns = 0;  ///< Root span duration.
  std::vector<TraceSpan> spans;

  const TraceSpan& root() const { return spans.front(); }

  /// One-line JSON object (spans + attrs inline) — the JSONL exemplar
  /// export format the CI stress job uploads.
  std::string ToJson() const;
};

struct TraceSinkOptions {
  /// Completed traces retained across all shards (overwrite-oldest).
  size_t ring_capacity = 256;
  /// Lock shards; commits hash by trace id.
  size_t shards = 4;
  /// Slow-query exemplars pinned across all shards (0 disables pinning).
  size_t exemplar_capacity = 32;
  /// A trace is an exemplar candidate when its root duration reaches this
  /// percentile of all committed root durations...
  double exemplar_percentile = 0.95;
  /// ...once at least this many traces have been committed (below it the
  /// percentile is noise and nothing is pinned).
  uint64_t exemplar_min_samples = 32;
};

struct TraceSinkStats {
  uint64_t committed = 0;
  uint64_t ring_evicted = 0;
  uint64_t exemplars_pinned = 0;  ///< Currently held.
  uint64_t exemplars_evicted = 0;
  /// Current slow-query threshold in seconds (0 until min_samples reached).
  double exemplar_threshold_seconds = 0.0;
};

/// Lock-sharded retention of completed traces. Commit is the request path's
/// only contact: one histogram record plus one shard lock. Readers (Recent /
/// Exemplars / Stats) walk every shard and are snapshot-consistent per shard
/// only — they are ops endpoints, not synchronization points.
class TraceSink {
 public:
  explicit TraceSink(TraceSinkOptions options = {});

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  void Commit(std::shared_ptr<const CompletedTrace> trace);

  /// Retained ring contents, oldest first within a shard (cross-shard order
  /// is unspecified).
  std::vector<std::shared_ptr<const CompletedTrace>> Recent() const;

  /// Pinned slow-query exemplars, slowest first.
  std::vector<std::shared_ptr<const CompletedTrace>> Exemplars() const;

  /// Non-destructive observer view for ops endpoints (`/traces` on the
  /// admin server): the ring's retained traces NEWEST first, then any
  /// pinned exemplars not already in the ring (slowest first), deduplicated
  /// by trace id and capped at `max_traces` (0 = everything). Peeking never
  /// consumes — a later Peek or Drain still sees every trace.
  std::vector<std::shared_ptr<const CompletedTrace>> Peek(
      size_t max_traces = 0) const;

  /// Destructive export of the ring: returns its contents (oldest first per
  /// shard, cross-shard order unspecified) and clears it, so repeated
  /// exporters (a log shipper, a trace uploader) see each trace exactly
  /// once. Exemplars are retention, not a queue — they stay pinned and keep
  /// appearing in Peek()/Exemplars() after a drain. Drained ring slots are
  /// not counted as evictions.
  std::vector<std::shared_ptr<const CompletedTrace>> Drain();

  TraceSinkStats Stats() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Fixed-capacity ring; `next` is the overwrite cursor.
    std::vector<std::shared_ptr<const CompletedTrace>> ring;
    size_t next = 0;
    uint64_t committed = 0;
    uint64_t evicted = 0;
    /// Bounded; when full, the fastest pinned exemplar yields to a slower
    /// candidate — the list converges on the slowest traces ever seen.
    std::vector<std::shared_ptr<const CompletedTrace>> exemplars;
    uint64_t exemplars_evicted = 0;
  };

  Shard& ShardFor(uint64_t trace_id) const;

  const TraceSinkOptions options_;
  const size_t ring_per_shard_;
  const size_t exemplars_per_shard_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Root durations of every committed trace — supplies the exemplar
  /// threshold (relaxed atomics; see util/latency_histogram.h).
  LatencyHistogram durations_;
};

/// The per-request tracing handle. Copyable by value (a shared_ptr under
/// the hood); a default-constructed context is disabled and every operation
/// on it is a free no-op, so tracing-off request paths carry it at zero
/// cost. All operations are thread-safe: concurrent stages of one request
/// may finish spans and add attributes from different workers.
class TraceContext {
 public:
  /// Disabled context: trace_id() == 0, spans are no-ops.
  TraceContext() = default;

  /// Opens a trace: assigns a process-unique nonzero trace id, stamps the
  /// epoch, and opens the root span. `sink` (may be null) receives the
  /// completed trace at FinishRoot.
  static TraceContext Start(std::string root_name,
                            std::shared_ptr<TraceSink> sink);

  bool enabled() const { return state_ != nullptr; }
  uint64_t trace_id() const;

  /// Opens a child span of the root, stamped now. The returned value is
  /// owned by the caller until FinishSpan — hand it across queue hops by
  /// value (e.g. inside the pipeline's PendingSelect).
  TraceSpan StartSpan(std::string name) const;

  /// Stamps the span's duration and records it into the trace. No-op for a
  /// disabled span (or context), so unconditional call sites stay branch-
  /// free. Finishing after FinishRoot is allowed but the span is dropped.
  void FinishSpan(TraceSpan&& span) const;

  /// Attribute on the root span (request-level facts: table id, admission
  /// verdict, cache tier, status).
  void AddRootAttr(std::string key, std::string value) const;
  void AddRootAttr(std::string key, const char* value) const;
  void AddRootAttr(std::string key, uint64_t value) const;
  void AddRootAttr(std::string key, double value) const;

  /// Closes the root span, freezes the trace, commits it to the sink, and
  /// returns it (for SelectResponse's opt-in explain payload). Idempotent:
  /// later calls return the same object without re-committing. Returns
  /// nullptr on a disabled context.
  std::shared_ptr<const CompletedTrace> FinishRoot() const;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

/// Renders traces as JSONL (one CompletedTrace::ToJson per line) — the
/// artifact format bench_serving_throughput writes and CI uploads.
std::string TracesToJsonl(
    const std::vector<std::shared_ptr<const CompletedTrace>>& traces);

}  // namespace subtab

#endif  // SUBTAB_UTIL_TRACE_H_
