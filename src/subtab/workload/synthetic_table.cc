#include "subtab/workload/synthetic_table.h"

#include <algorithm>
#include <cmath>

#include "subtab/util/check.h"

namespace subtab::workload {

namespace {

// Counter-based randomness: SplitMix64's finalizer over a (seed, salt,
// column, row) counter. Three multiplies of avalanche per draw keeps cells
// statistically independent while staying a pure function of the
// coordinates — the property the chunk-layout-independence contract and the
// O(rows) bound both rest on.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

enum Salt : uint64_t {
  kSaltValueA = 1,
  kSaltValueB,
  kSaltNull,
  kSaltRegion,
  kSaltConfidence,
  kSaltAlternative,
  kSaltProfile,
  kSaltAffinity,
  kSaltPreferred,
};

uint64_t CellBits(uint64_t seed, uint64_t salt, uint64_t column,
                  uint64_t row) {
  uint64_t h = seed;
  h = Mix64(h ^ (salt * 0x9e3779b97f4a7c15ULL));
  h = Mix64(h ^ (column * 0xc2b2ae3d27d4eb4fULL));
  h = Mix64(h ^ (row * 0x165667b19e3779f9ULL));
  return h;
}

// Uniform double in [0, 1) from 53 high bits.
double UnitFromBits(uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

double CellUnit(uint64_t seed, uint64_t salt, uint64_t column, uint64_t row) {
  return UnitFromBits(CellBits(seed, salt, column, row));
}

constexpr double kTwoPi = 6.283185307179586476925286766559;

// Zipf cumulative weights over [0, n): P(i) proportional to 1/(i+1)^s
// (matching util/rng.h's Zipf), normalized to end at 1.
std::vector<double> ZipfCumulative(size_t n, double s) {
  std::vector<double> cumulative(n, 0.0);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cumulative[i] = total;
  }
  for (double& c : cumulative) c /= total;
  return cumulative;
}

size_t PickCumulative(const std::vector<double>& cumulative, double u) {
  const auto it = std::upper_bound(cumulative.begin(), cumulative.end(), u);
  const size_t idx = static_cast<size_t>(it - cumulative.begin());
  return std::min(idx, cumulative.size() - 1);
}

}  // namespace

ColumnDataDistribution ColumnDataDistribution::Uniform(double min, double max,
                                                       size_t num_distinct) {
  SUBTAB_CHECK(min < max);
  ColumnDataDistribution d;
  d.type = DataDistributionType::kUniform;
  d.min_value = min;
  d.max_value = max;
  d.num_distinct = num_distinct;
  return d;
}

ColumnDataDistribution ColumnDataDistribution::Pareto(double scale,
                                                      double shape,
                                                      size_t num_distinct) {
  SUBTAB_CHECK(scale > 0.0 && shape > 0.0);
  ColumnDataDistribution d;
  d.type = DataDistributionType::kPareto;
  d.pareto_scale = scale;
  d.pareto_shape = shape;
  d.num_distinct = num_distinct;
  return d;
}

ColumnDataDistribution ColumnDataDistribution::NormalSkewed(
    double location, double scale, double shape, size_t num_distinct) {
  SUBTAB_CHECK(scale > 0.0);
  ColumnDataDistribution d;
  d.type = DataDistributionType::kNormalSkewed;
  d.skew_location = location;
  d.skew_scale = scale;
  d.skew_shape = shape;
  d.num_distinct = num_distinct;
  return d;
}

double ColumnDataDistribution::GridMin() const {
  switch (type) {
    case DataDistributionType::kUniform:
      return min_value;
    case DataDistributionType::kPareto:
      return pareto_scale;
    case DataDistributionType::kNormalSkewed:
      return skew_location - 3.0 * skew_scale;
  }
  return 0.0;
}

double ColumnDataDistribution::GridMax() const {
  switch (type) {
    case DataDistributionType::kUniform:
      return max_value;
    case DataDistributionType::kPareto:
      // p99 of the inverse CDF: scale / 0.01^(1/shape).
      return pareto_scale * std::pow(100.0, 1.0 / pareto_shape);
    case DataDistributionType::kNormalSkewed:
      return skew_location + 3.0 * skew_scale;
  }
  return 1.0;
}

double ColumnDataDistribution::ValueOfIndex(size_t idx) const {
  SUBTAB_CHECK(num_distinct > 0 && idx < num_distinct);
  const double step =
      (GridMax() - GridMin()) / static_cast<double>(num_distinct);
  return GridMin() + (static_cast<double>(idx) + 0.5) * step;
}

size_t ColumnDataDistribution::IndexOfValue(double value) const {
  SUBTAB_CHECK(num_distinct > 0);
  const double lo = GridMin();
  const double step = (GridMax() - lo) / static_cast<double>(num_distinct);
  const double raw = std::floor((value - lo) / step);
  if (raw <= 0.0) return 0;
  const size_t idx = static_cast<size_t>(raw);
  return std::min(idx, num_distinct - 1);
}

double ColumnDataDistribution::SampleContinuous(double u0, double u1) const {
  switch (type) {
    case DataDistributionType::kUniform:
      return min_value + u0 * (max_value - min_value);
    case DataDistributionType::kPareto:
      // Inverse CDF; u0 in [0, 1) keeps 1-u0 in (0, 1] so the pow is finite.
      return pareto_scale / std::pow(1.0 - u0, 1.0 / pareto_shape);
    case DataDistributionType::kNormalSkewed: {
      // Box-Muller gives two independent standard normals; the delta method
      // combines them into Azzalini's skew-normal: delta*|z0| biases the
      // half-normal direction, the orthogonal z1 keeps the spread.
      const double r = std::sqrt(-2.0 * std::log(1.0 - u0));
      const double z0 = r * std::cos(kTwoPi * u1);
      const double z1 = r * std::sin(kTwoPi * u1);
      const double delta =
          skew_shape / std::sqrt(1.0 + skew_shape * skew_shape);
      const double z =
          delta * std::fabs(z0) + std::sqrt(1.0 - delta * delta) * z1;
      return skew_location + skew_scale * z;
    }
  }
  return 0.0;
}

SyntheticColumnSpec SyntheticColumnSpec::Numeric(
    std::string name, ColumnDataDistribution distribution,
    double profile_affinity) {
  SyntheticColumnSpec spec;
  spec.name = std::move(name);
  spec.type = ColumnType::kNumeric;
  spec.distribution = distribution;
  spec.profile_affinity = profile_affinity;
  return spec;
}

SyntheticColumnSpec SyntheticColumnSpec::Categorical(
    std::string name, ColumnDataDistribution distribution,
    double profile_affinity) {
  SUBTAB_CHECK(distribution.num_distinct > 0);
  SyntheticColumnSpec spec;
  spec.name = std::move(name);
  spec.type = ColumnType::kCategorical;
  spec.distribution = distribution;
  spec.profile_affinity = profile_affinity;
  return spec;
}

size_t SyntheticTable::ColumnIndex(const std::string& name) const {
  for (size_t c = 0; c < spec.columns.size(); ++c) {
    if (spec.columns[c].name == name) return c;
  }
  SUBTAB_CHECK(false);
  return 0;
}

std::string CategoryOfIndex(size_t idx) {
  std::string word = "v";
  word += std::to_string(idx);
  return word;
}

size_t PreferredIndex(const SyntheticTableSpec& spec, size_t profile,
                      size_t column) {
  const size_t n = spec.columns[column].distribution.num_distinct;
  SUBTAB_CHECK(n > 0);
  return CellBits(spec.seed, kSaltPreferred, column, profile) % n;
}

namespace {

/// Pre-resolved per-column view of the spec plus the rule each column is
/// forced by, per region.
struct ResolvedRules {
  /// cumulative[r] = sum of supports of rules [0, r]; a row's region hash
  /// below cumulative.back() lands in a rule region, else background.
  std::vector<double> cumulative;
  /// forced[r][c] = value index rule r forces on column c as lhs
  /// (npos = not forced). rhs handled separately (confidence draw).
  std::vector<std::vector<size_t>> forced_lhs;
  /// rhs_column[r] / rhs_index[r] of rule r.
  std::vector<size_t> rhs_column;
  std::vector<size_t> rhs_index;

  static constexpr size_t kNone = static_cast<size_t>(-1);
};

ResolvedRules ResolveRules(const SyntheticTableSpec& spec) {
  ResolvedRules resolved;
  double total_support = 0.0;
  for (const PlantedRule& rule : spec.rules) {
    SUBTAB_CHECK(rule.support > 0.0 && rule.confidence >= 0.0 &&
                 rule.confidence <= 1.0);
    total_support += rule.support;
    resolved.cumulative.push_back(total_support);
    std::vector<size_t> forced(spec.columns.size(), ResolvedRules::kNone);
    auto resolve = [&](const std::pair<std::string, size_t>& ref) {
      size_t column = ResolvedRules::kNone;
      for (size_t c = 0; c < spec.columns.size(); ++c) {
        if (spec.columns[c].name == ref.first) column = c;
      }
      SUBTAB_CHECK(column != ResolvedRules::kNone);
      // Rules need >= 2 values so the low-confidence alternative exists.
      SUBTAB_CHECK(spec.columns[column].distribution.num_distinct >= 2);
      SUBTAB_CHECK(ref.second < spec.columns[column].distribution.num_distinct);
      return column;
    };
    for (const auto& lhs : rule.lhs) forced[resolve(lhs)] = lhs.second;
    resolved.rhs_column.push_back(resolve(rule.rhs));
    resolved.rhs_index.push_back(rule.rhs.second);
    resolved.forced_lhs.push_back(std::move(forced));
  }
  SUBTAB_CHECK(total_support <= 0.9);
  return resolved;
}

}  // namespace

SyntheticTable GenerateSyntheticTable(const SyntheticTableSpec& spec) {
  SUBTAB_CHECK(!spec.columns.empty());
  const ResolvedRules rules = ResolveRules(spec);
  const std::vector<double> profile_cumulative =
      spec.num_profiles > 0
          ? ZipfCumulative(spec.num_profiles, spec.profile_zipf)
          : std::vector<double>{};

  const size_t num_cols = spec.columns.size();
  const size_t batch_rows =
      spec.chunk_rows == 0 ? std::max<size_t>(spec.num_rows, 1)
                           : spec.chunk_rows;

  Table table;
  bool first_batch = true;
  for (size_t begin = 0; begin < spec.num_rows || first_batch;
       begin += batch_rows) {
    const size_t end = std::min(spec.num_rows, begin + batch_rows);
    std::vector<Column> columns;
    columns.reserve(num_cols);
    for (const SyntheticColumnSpec& col : spec.columns) {
      columns.emplace_back(col.name, col.type);
      columns.back().Reserve(end - begin);
    }

    for (size_t row = begin; row < end; ++row) {
      // Region membership and profile are per-row hashes — scattered
      // uniformly over the table, so zone maps see realistic value mixes
      // rather than sorted pattern blocks.
      size_t region = ResolvedRules::kNone;
      if (!rules.cumulative.empty()) {
        const double u = CellUnit(spec.seed, kSaltRegion, 0, row);
        if (u < rules.cumulative.back()) {
          region = PickCumulative(rules.cumulative, u);
        }
      }
      const size_t profile =
          spec.num_profiles > 0
              ? PickCumulative(profile_cumulative,
                               CellUnit(spec.seed, kSaltProfile, 0, row))
              : 0;

      for (size_t c = 0; c < num_cols; ++c) {
        const SyntheticColumnSpec& col = spec.columns[c];
        const ColumnDataDistribution& dist = col.distribution;
        Column& out = columns[c];

        // Precedence: rule-forced cell > null > profile > marginal draw.
        size_t forced = ResolvedRules::kNone;
        if (region != ResolvedRules::kNone) {
          forced = rules.forced_lhs[region][c];
          if (forced == ResolvedRules::kNone &&
              rules.rhs_column[region] == c) {
            const size_t rhs = rules.rhs_index[region];
            if (CellUnit(spec.seed, kSaltConfidence, c, row) <
                spec.rules[region].confidence) {
              forced = rhs;
            } else {
              // A deterministic non-rhs alternative keeps the planted
              // confidence exact.
              const size_t n = dist.num_distinct;
              const size_t alt =
                  1 + CellBits(spec.seed, kSaltAlternative, c, row) % (n - 1);
              forced = (rhs + alt) % n;
            }
          }
        }

        if (forced != ResolvedRules::kNone) {
          if (col.type == ColumnType::kNumeric) {
            out.AppendNumeric(dist.ValueOfIndex(forced));
          } else {
            out.AppendCategorical(CategoryOfIndex(forced));
          }
          continue;
        }

        if (dist.null_fraction > 0.0 &&
            CellUnit(spec.seed, kSaltNull, c, row) < dist.null_fraction) {
          out.AppendNull();
          continue;
        }

        size_t idx = ResolvedRules::kNone;
        if (col.profile_affinity > 0.0 && spec.num_profiles > 0 &&
            dist.num_distinct > 0 &&
            CellUnit(spec.seed, kSaltAffinity, c, row) <
                col.profile_affinity) {
          idx = PreferredIndex(spec, profile, c);
        } else if (dist.num_distinct > 0) {
          idx = dist.IndexOfValue(dist.SampleContinuous(
              CellUnit(spec.seed, kSaltValueA, c, row),
              CellUnit(spec.seed, kSaltValueB, c, row)));
        }

        if (col.type == ColumnType::kCategorical) {
          out.AppendCategorical(CategoryOfIndex(idx));
        } else if (idx != ResolvedRules::kNone) {
          out.AppendNumeric(dist.ValueOfIndex(idx));
        } else {
          out.AppendNumeric(dist.SampleContinuous(
              CellUnit(spec.seed, kSaltValueA, c, row),
              CellUnit(spec.seed, kSaltValueB, c, row)));
        }
      }
    }

    Result<Table> batch = Table::Make(std::move(columns));
    SUBTAB_CHECK(batch.ok());
    if (first_batch) {
      table = std::move(*batch);
      first_batch = false;
    } else {
      Result<Table> appended = table.AppendRows(*batch, batch_rows);
      SUBTAB_CHECK(appended.ok());
      table = std::move(*appended);
    }
    if (end >= spec.num_rows) break;
  }

  return SyntheticTable{std::move(table), spec};
}

Rule PlantedRuleTokens(const SyntheticTable& data, const BinnedTable& binned,
                       const PlantedRule& rule) {
  auto token_of = [&](const std::pair<std::string, size_t>& ref) {
    const size_t c = data.ColumnIndex(ref.first);
    const SyntheticColumnSpec& col = data.spec.columns[c];
    const ColumnBinning& binning = binned.binning().column(c);
    uint32_t bin = 0;
    if (col.type == ColumnType::kNumeric) {
      bin = binning.BinOfNumeric(col.distribution.ValueOfIndex(ref.second));
    } else {
      // Resolve the category string through the column's dictionary; a
      // planted category can be absent only if it never materialized.
      const std::string word = CategoryOfIndex(ref.second);
      const auto& dict = data.table.column(c).dictionary();
      int32_t code = -1;
      for (size_t i = 0; i < dict.size(); ++i) {
        if (dict[i] == word) code = static_cast<int32_t>(i);
      }
      SUBTAB_CHECK(code >= 0);
      bin = binning.BinOfCode(code);
    }
    return MakeToken(static_cast<uint32_t>(c), bin);
  };

  Rule expected;
  for (const auto& lhs : rule.lhs) expected.lhs.push_back(token_of(lhs));
  std::sort(expected.lhs.begin(), expected.lhs.end());
  expected.rhs.push_back(token_of(rule.rhs));
  expected.support = rule.support;
  expected.confidence = rule.confidence;
  return expected;
}

}  // namespace subtab::workload
