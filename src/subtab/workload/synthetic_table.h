#ifndef SUBTAB_WORKLOAD_SYNTHETIC_TABLE_H_
#define SUBTAB_WORKLOAD_SYNTHETIC_TABLE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "subtab/binning/binned_table.h"
#include "subtab/rules/rule.h"
#include "subtab/table/table.h"

/// \file synthetic_table.h
/// The workload forge's data half: a deterministic, seedable generator that
/// produces million-row chunked Tables from per-column distribution configs,
/// modeled on hyrise's SyntheticTableGenerator (SNIPPETS.md 1-3) but grown
/// for this repo's needs — planted minable patterns and cluster structure so
/// the coverage/diversity metrics the selection pipeline optimizes stay
/// meaningful at 10^6 rows (ROADMAP item 4; the existing data/generator.*
/// shapes small paper-replica datasets, this one shapes *scale*).
///
/// Determinism is counter-based: every random draw for cell (row, column) is
/// a pure hash of (seed, column, row, salt), never a sequential RNG stream.
/// That makes generation
///   * O(rows) and embarrassingly batchable — cells are independent,
///   * independent of the chunking: the same (seed, spec) yields the same
///     values whether built in 512-row or 64k-row batches, so
///     core/fingerprint.h TableFingerprint is identical across chunk
///     layouts (workload_test pins this),
///   * stable under column reordering of *other* columns (each column hashes
///     its own index).
///
/// Tables are built through the table/ append path (Table::AppendRows in
/// chunk-sized batches), so chunk zone maps (ChunkStats) and cumulative
/// dictionaries form exactly as they would under streaming ingest — the
/// generated data exercises the same pruning/encoding machinery production
/// tables would.
///
/// Planted patterns: a PlantedRule forces, on a hash-scattered `support`
/// fraction of rows, its lhs cells to fixed value indices and its rhs cell
/// to the rhs index with probability `confidence`. Value indices quantize
/// each distribution onto a num_distinct-point grid (ValueOfIndex), so a
/// binning fine enough to separate grid points recovers the rule as tokens
/// — PlantedRuleTokens builds the expected Rule and rules/miner.h finds it
/// at the configured support (workload_test pins this too). Cluster
/// structure comes from latent row profiles (Zipf-popular, like
/// data/generator.*): columns with profile_affinity > 0 prefer a
/// profile-specific value index, giving the pervasive cross-column
/// correlation of real tables.

namespace subtab::workload {

/// Which marginal distribution a column draws from (hyrise's enum).
enum class DataDistributionType { kUniform, kPareto, kNormalSkewed };

/// Per-column value distribution plus quantization/null controls.
struct ColumnDataDistribution {
  DataDistributionType type = DataDistributionType::kUniform;

  // kUniform: support [min_value, max_value).
  double min_value = 0.0;
  double max_value = 1.0;

  // kPareto: inverse-CDF scale / (1-u)^(1/shape); support [scale, inf).
  double pareto_scale = 1.0;
  double pareto_shape = 1.0;

  // kNormalSkewed: Azzalini skew-normal (location, scale, shape) via the
  // delta method over two hashed normals; shape 0 = plain normal.
  double skew_location = 0.0;
  double skew_scale = 1.0;
  double skew_shape = 0.0;

  /// 0 = continuous (numeric columns only). Otherwise every draw snaps to a
  /// num_distinct-point grid over [GridMin, GridMax] (ValueOfIndex), which
  /// bounds the column's distinct count and gives planted rules crisp,
  /// binnable values. Categorical columns require num_distinct >= 1 — the
  /// grid indices become the category ids.
  size_t num_distinct = 0;

  /// Background probability that a cell is null (planted-rule cells are
  /// never nulled — the rule's support is exact).
  double null_fraction = 0.0;

  static ColumnDataDistribution Uniform(double min, double max,
                                        size_t num_distinct = 0);
  static ColumnDataDistribution Pareto(double scale, double shape,
                                       size_t num_distinct = 0);
  static ColumnDataDistribution NormalSkewed(double location, double scale,
                                             double shape,
                                             size_t num_distinct = 0);

  /// Quantization grid bounds: the distribution's bulk mass (exact support
  /// for kUniform, the ~p99 span for the unbounded tails).
  double GridMin() const;
  double GridMax() const;

  /// Grid value of index `idx` (requires num_distinct > 0, idx < it).
  double ValueOfIndex(size_t idx) const;

  /// Grid index a continuous draw snaps to (requires num_distinct > 0).
  size_t IndexOfValue(double value) const;

  /// One continuous draw from two uniforms in [0, 1) (exposed so tests can
  /// check distribution shape without a Table in the loop).
  double SampleContinuous(double u0, double u1) const;
};

/// One column of a synthetic table.
struct SyntheticColumnSpec {
  std::string name;
  ColumnType type = ColumnType::kNumeric;
  ColumnDataDistribution distribution;

  /// Probability that a background cell follows the row's latent profile
  /// (PreferredIndex) instead of its marginal draw. Requires
  /// num_distinct > 0 to act; 0 = profile-independent.
  double profile_affinity = 0.0;

  static SyntheticColumnSpec Numeric(std::string name,
                                     ColumnDataDistribution distribution,
                                     double profile_affinity = 0.0);
  /// Categorical column over `distribution.num_distinct` categories whose
  /// popularity follows the distribution's quantized marginal.
  static SyntheticColumnSpec Categorical(std::string name,
                                         ColumnDataDistribution distribution,
                                         double profile_affinity = 0.0);
};

/// One planted association rule: lhs (column, value-index) conjuncts ->
/// rhs (column, value-index). Referenced columns need num_distinct >= 2.
struct PlantedRule {
  std::vector<std::pair<std::string, size_t>> lhs;
  std::pair<std::string, size_t> rhs;
  /// Fraction of all rows carrying this rule (regions of distinct rules are
  /// disjoint; supports must sum to <= 0.9).
  double support = 0.1;
  /// P(rhs index | lhs indices) within the rule's region.
  double confidence = 0.9;
};

/// Full table specification.
struct SyntheticTableSpec {
  std::string name = "forge";
  size_t num_rows = 1u << 20;
  /// Rows per sealed chunk; generation appends in batches of this size
  /// through Table::AppendRows (0 = one chunk).
  size_t chunk_rows = 65536;
  uint64_t seed = 42;
  std::vector<SyntheticColumnSpec> columns;
  std::vector<PlantedRule> rules;

  /// Latent row profiles for cluster structure: every row hashes to a
  /// profile (Zipf-popular, exponent profile_zipf); columns with
  /// profile_affinity > 0 prefer PreferredIndex(profile, column).
  /// 0 disables profiles.
  size_t num_profiles = 0;
  double profile_zipf = 1.0;
};

/// A generated table plus its ground truth.
struct SyntheticTable {
  Table table;
  SyntheticTableSpec spec;

  /// Index of a named column in the spec/table (fatal if absent).
  size_t ColumnIndex(const std::string& name) const;
};

/// Generates the table. O(num_rows * num_columns); deterministic in
/// (seed, spec) and independent of chunk_rows (values, not layout).
SyntheticTable GenerateSyntheticTable(const SyntheticTableSpec& spec);

/// The category string of value index `idx` ("v0", "v1", ...).
std::string CategoryOfIndex(size_t idx);

/// The value index a profile prefers in a column with num_distinct > 0
/// (pure hash of (seed, profile, column); exposed so tests can verify the
/// planted correlation).
size_t PreferredIndex(const SyntheticTableSpec& spec, size_t profile,
                      size_t column);

/// The token-level Rule a planted rule should surface as under `binned`
/// (lhs/rhs value indices mapped through the binning). Support/confidence
/// carry the planted configuration; workload_test checks MineRules output
/// contains a rule with these tokens.
Rule PlantedRuleTokens(const SyntheticTable& data, const BinnedTable& binned,
                       const PlantedRule& rule);

}  // namespace subtab::workload

#endif  // SUBTAB_WORKLOAD_SYNTHETIC_TABLE_H_
