#include "subtab/workload/traffic_driver.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "subtab/util/check.h"

namespace subtab::workload {

SteadyClock::SteadyClock() : epoch_(std::chrono::steady_clock::now()) {}

double SteadyClock::Now() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void SteadyClock::SleepUntil(double deadline_seconds) {
  const double remaining = deadline_seconds - Now();
  if (remaining <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(remaining));
}

double FakeClock::Now() {
  std::lock_guard<std::mutex> lock(mu_);
  return now_;
}

void FakeClock::SleepUntil(double deadline_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  now_ = std::max(now_, deadline_seconds);
}

void FakeClock::Advance(double seconds) {
  SUBTAB_CHECK(seconds >= 0.0);
  std::lock_guard<std::mutex> lock(mu_);
  now_ += seconds;
}

const char* ArrivalProcessName(ArrivalProcess arrival) {
  return arrival == ArrivalProcess::kPoisson ? "poisson" : "bursty";
}

namespace {

// Exponential inter-arrival at `rate`; UniformDouble() < 1 keeps the log
// finite.
double ExpGap(Rng* rng, double rate) {
  return -std::log(1.0 - rng->UniformDouble()) / rate;
}

}  // namespace

TrafficDriver::TrafficDriver(TrafficOptions options,
                             std::vector<std::vector<SpQuery>> sessions,
                             Clock* clock)
    : options_(std::move(options)),
      sessions_(std::move(sessions)),
      clock_(clock != nullptr ? clock : &own_clock_) {
  SUBTAB_CHECK(options_.rate_rps > 0.0);
  SUBTAB_CHECK(options_.num_tenants > 0);
  if (options_.arrival == ArrivalProcess::kBursty) {
    SUBTAB_CHECK(options_.burst_factor >= 1.0);
    SUBTAB_CHECK(options_.burst_on_seconds > 0.0 &&
                 options_.burst_on_seconds < options_.burst_cycle_seconds);
  }
  sessions_.erase(std::remove_if(sessions_.begin(), sessions_.end(),
                                 [](const std::vector<SpQuery>& s) {
                                   return s.empty();
                                 }),
                  sessions_.end());
  if (sessions_.empty()) sessions_.push_back({SpQuery{}});
}

double TrafficDriver::NextArrival(double t, Rng* rng) const {
  if (options_.arrival == ArrivalProcess::kPoisson) {
    return t + ExpGap(rng, options_.rate_rps);
  }
  // Piecewise-constant-rate Poisson: draw from the current phase's rate; a
  // gap that crosses the phase boundary is discarded at the boundary and
  // redrawn from the next phase (memorylessness makes this exact).
  const double cycle = options_.burst_cycle_seconds;
  const double on = options_.burst_on_seconds;
  const double off = cycle - on;
  const double rate_hi = options_.rate_rps * options_.burst_factor;
  const double rate_lo = std::max(
      0.0, options_.rate_rps * (cycle - options_.burst_factor * on) / off);
  for (;;) {
    const double phase = t - std::floor(t / cycle) * cycle;
    const bool in_burst = phase < on;
    const double phase_end = t - phase + (in_burst ? on : cycle);
    const double rate = in_burst ? rate_hi : rate_lo;
    if (rate <= 0.0) {
      t = phase_end;
      continue;
    }
    const double gap = ExpGap(rng, rate);
    if (t + gap <= phase_end) return t + gap;
    t = phase_end;
  }
}

DriveReport TrafficDriver::Drive(const TrafficSink& sink) {
  Rng rng(options_.seed);
  Rng arrival_rng = rng.Fork();
  Rng tenant_rng = rng.Fork();
  Rng session_rng = rng.Fork();

  // Per-tenant session cursor: which session the tenant's analyst is in and
  // which step comes next.
  struct Cursor {
    size_t session = 0;
    size_t step = 0;
  };
  std::vector<Cursor> cursors(options_.num_tenants);
  for (Cursor& cursor : cursors) {
    cursor.session = session_rng.Uniform(sessions_.size());
  }

  DriveReport report;
  report.tenant_fires.assign(options_.num_tenants, 0);
  const double start = clock_->Now();
  double offset = 0.0;
  double lag_sum = 0.0;
  double first_fire = 0.0;
  double last_fire = 0.0;

  for (size_t seq = 0; seq < options_.total_requests; ++seq) {
    offset = NextArrival(offset, &arrival_rng);
    const double scheduled = start + offset;
    clock_->SleepUntil(scheduled);
    const double fired = clock_->Now();

    const size_t tenant =
        options_.tenant_zipf > 0.0
            ? tenant_rng.Zipf(options_.num_tenants, options_.tenant_zipf)
            : static_cast<size_t>(tenant_rng.Uniform(options_.num_tenants));
    Cursor& cursor = cursors[tenant];
    if (cursor.step >= sessions_[cursor.session].size()) {
      cursor.session = session_rng.Uniform(sessions_.size());
      cursor.step = 0;
    }

    TrafficRequest request;
    request.sequence = seq;
    request.tenant = tenant;
    request.table_id = options_.tenant_prefix + std::to_string(tenant);
    request.query = &sessions_[cursor.session][cursor.step];
    request.session = cursor.session;
    request.step = cursor.step;
    request.scheduled_seconds = scheduled;
    request.fired_seconds = fired;
    ++cursor.step;

    sink(request);

    ++report.fired;
    ++report.tenant_fires[tenant];
    const double lag = std::max(0.0, fired - scheduled);
    lag_sum += lag;
    report.max_lag_seconds = std::max(report.max_lag_seconds, lag);
    if (report.fired == 1) first_fire = fired;
    last_fire = fired;
  }

  if (report.fired > 0) {
    report.duration_seconds = std::max(1e-9, last_fire - first_fire);
    report.offered_rate_rps =
        static_cast<double>(report.fired) / report.duration_seconds;
    report.mean_lag_seconds = lag_sum / static_cast<double>(report.fired);
  }
  return report;
}

}  // namespace subtab::workload
