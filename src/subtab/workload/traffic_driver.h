#ifndef SUBTAB_WORKLOAD_TRAFFIC_DRIVER_H_
#define SUBTAB_WORKLOAD_TRAFFIC_DRIVER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "subtab/table/query.h"
#include "subtab/util/rng.h"

/// \file traffic_driver.h
/// The workload forge's traffic half: an OPEN-LOOP request driver. The
/// existing benches are closed-loop — each client thread waits for its
/// response before sending the next request — which silently throttles the
/// offered load to whatever the engine can absorb, so queueing delay and
/// shed behavior are invisible. This driver fires on a schedule derived
/// only from the arrival process and the clock, never from completions:
/// when the engine stalls, requests keep arriving (and the engine's
/// admission control is what must cope). That is the harness that can
/// contradict the ROADMAP's scale claims (item 4; bench/bench_scale.cc is
/// the sweep built on it).
///
/// Pieces:
///   * Clock — injectable time source. SteadyClock sleeps for real;
///     FakeClock jumps, so tests burn through a 10k-request schedule
///     instantly and assert on the scheduled inter-arrival statistics.
///   * ArrivalProcess — kPoisson (exponential inter-arrivals at rate_rps)
///     or kBursty (piecewise-constant-rate Poisson: burst_factor x the
///     rate for burst_on_seconds out of every burst_cycle_seconds, the
///     off-phase rate chosen to preserve the configured mean when
///     feasible).
///   * Tenant skew — each request picks a tenant by a Zipf(tenant_zipf)
///     draw over num_tenants, so hot tenants hammer their per-tenant
///     admission bound the way real multi-tenant traffic does.
///   * Session mix — requests walk drill-down session chains (vectors of
///     SpQuery steps, e.g. eda/session_generator output flattened per
///     session) with a per-tenant cursor: an analyst's next request is the
///     next refinement of their current session, and a finished session
///     rolls to a fresh one.
///
/// The sink MUST NOT block (pass ServingEngine::SubmitSelect, not Select):
/// a blocking sink would turn the driver back into a closed loop. Shed
/// responses come back as already-resolved futures — count them, never
/// retry (DriveReport's lag statistics prove the schedule was honored
/// regardless).
///
/// Determinism: the whole schedule (arrival times, tenants, session walks)
/// is a pure function of (options.seed, sessions) — two drives with the
/// same seed fire the identical request sequence.

namespace subtab::workload {

/// Injectable monotonic time source (seconds).
class Clock {
 public:
  virtual ~Clock() = default;
  virtual double Now() = 0;
  virtual void SleepUntil(double deadline_seconds) = 0;
};

/// Real time on std::chrono::steady_clock.
class SteadyClock final : public Clock {
 public:
  SteadyClock();
  double Now() override;
  void SleepUntil(double deadline_seconds) override;

 private:
  std::chrono::steady_clock::time_point epoch_;
};

/// Test clock: SleepUntil jumps straight to the deadline, so a driver on a
/// FakeClock replays its entire schedule without wall delay; Advance lets a
/// test move time from outside.
class FakeClock final : public Clock {
 public:
  double Now() override;
  void SleepUntil(double deadline_seconds) override;
  void Advance(double seconds);

 private:
  std::mutex mu_;
  double now_ = 0.0;
};

enum class ArrivalProcess { kPoisson, kBursty };

/// Returns "poisson" / "bursty".
const char* ArrivalProcessName(ArrivalProcess arrival);

struct TrafficOptions {
  /// Mean arrival rate (requests/second) of the whole process.
  double rate_rps = 100.0;
  ArrivalProcess arrival = ArrivalProcess::kPoisson;
  /// kBursty: the on-phase fires at burst_factor * rate_rps for
  /// burst_on_seconds out of every burst_cycle_seconds; the off-phase rate
  /// preserves the configured mean when burst_factor * burst_on_seconds <=
  /// burst_cycle_seconds, else the off-phase is silent.
  double burst_factor = 4.0;
  double burst_on_seconds = 0.5;
  double burst_cycle_seconds = 2.0;
  /// Tenants "t0" .. "t<n-1>" (tenant_prefix + index), picked per request
  /// by Zipf(tenant_zipf) — 0 = uniform.
  size_t num_tenants = 4;
  double tenant_zipf = 1.0;
  std::string tenant_prefix = "t";
  size_t total_requests = 1000;
  uint64_t seed = 42;
};

/// One fired request. `query` points into the driver's session pool and is
/// valid for the sink call only as long as the driver lives.
struct TrafficRequest {
  size_t sequence = 0;
  size_t tenant = 0;
  std::string table_id;
  const SpQuery* query = nullptr;
  size_t session = 0;  ///< Index into the session pool.
  size_t step = 0;     ///< Step within that session.
  double scheduled_seconds = 0.0;  ///< When the schedule wanted it fired.
  double fired_seconds = 0.0;      ///< When the clock let it fire.
};

using TrafficSink = std::function<void(const TrafficRequest&)>;

/// What the drive did — and proof it stayed open-loop: lag is fired minus
/// scheduled time, which stays near zero whenever the sink is non-blocking,
/// no matter how far behind the engine falls.
struct DriveReport {
  size_t fired = 0;
  double duration_seconds = 0.0;  ///< First to last fire, on the clock.
  double offered_rate_rps = 0.0;  ///< fired / duration.
  double mean_lag_seconds = 0.0;
  double max_lag_seconds = 0.0;
  std::vector<uint64_t> tenant_fires;  ///< Per-tenant request counts.
};

class TrafficDriver {
 public:
  /// `sessions` is the drill-down pool (each inner vector one session's
  /// query steps, in order); empty sessions are dropped, and an empty pool
  /// gets one whole-table (empty-query) session. `clock` may be null
  /// (internal SteadyClock) and must outlive the driver otherwise.
  TrafficDriver(TrafficOptions options,
                std::vector<std::vector<SpQuery>> sessions,
                Clock* clock = nullptr);

  /// Fires options.total_requests requests at the sink on the arrival
  /// schedule. Blocking (single dispatch thread — the caller's); reentrant
  /// per driver instance is not supported, but a fresh Drive replays the
  /// identical schedule (same seed).
  DriveReport Drive(const TrafficSink& sink);

  const TrafficOptions& options() const { return options_; }
  const std::vector<std::vector<SpQuery>>& sessions() const {
    return sessions_;
  }

 private:
  /// Next arrival offset (seconds since drive start) strictly after `t`.
  double NextArrival(double t, Rng* rng) const;

  TrafficOptions options_;
  std::vector<std::vector<SpQuery>> sessions_;
  Clock* clock_;
  SteadyClock own_clock_;
};

}  // namespace subtab::workload

#endif  // SUBTAB_WORKLOAD_TRAFFIC_DRIVER_H_
