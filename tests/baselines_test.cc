// Tests for the baselines of Sec. 4.2 / 6.1, including the property at the
// heart of Prop. 4.3: greedy row selection achieves >= (1 - 1/e) of the
// optimal coverage for its column set (verified against brute force on
// random instances).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "subtab/baselines/brute_force.h"
#include "subtab/baselines/greedy.h"
#include "subtab/baselines/mab.h"
#include "subtab/baselines/naive_clustering.h"
#include "subtab/baselines/random_baseline.h"
#include "subtab/data/example_fixture.h"
#include "subtab/rules/miner.h"
#include "subtab/util/rng.h"

namespace subtab {
namespace {

/// Random small categorical table + mined rules, for property tests.
struct RandomInstance {
  Table table;
  BinnedTable binned;
  RuleSet rules;
};

RandomInstance MakeInstance(uint64_t seed, size_t n = 16, size_t m = 5) {
  Rng rng(seed);
  std::vector<Column> cols;
  for (size_t c = 0; c < m; ++c) {
    std::vector<std::string> values;
    for (size_t r = 0; r < n; ++r) {
      values.push_back(std::string(1, static_cast<char>('a' + rng.Uniform(3))));
    }
    cols.push_back(Column::Categorical("c" + std::to_string(c), values));
  }
  Result<Table> t = Table::Make(std::move(cols));
  EXPECT_TRUE(t.ok());
  RandomInstance inst{std::move(t).value(), {}, {}};
  inst.binned = BinnedTable::Compute(inst.table);
  RuleMiningOptions mining;
  mining.apriori.min_support = 0.15;
  mining.min_confidence = 0.4;
  mining.min_rule_size = 2;
  inst.rules = MineRules(inst.binned, mining);
  return inst;
}

// -------------------------------------------------------------- NextCombo --

TEST(CombinatoricsTest, EnumeratesAllCombinations) {
  std::vector<size_t> idx = FirstCombination(2);
  std::set<std::vector<size_t>> seen;
  do {
    seen.insert(idx);
  } while (NextCombination(&idx, 4));
  EXPECT_EQ(seen.size(), 6u);  // C(4,2).
}

TEST(CombinatoricsTest, SingleElementAndFull) {
  std::vector<size_t> idx = FirstCombination(1);
  size_t count = 1;
  while (NextCombination(&idx, 5)) ++count;
  EXPECT_EQ(count, 5u);

  idx = FirstCombination(3);
  EXPECT_FALSE(NextCombination(&idx, 3));  // Only one 3-of-3 combination.
}

// ------------------------------------------------------------------ RAN --

TEST(RandomBaselineTest, ShapeAndBudget) {
  RandomInstance inst = MakeInstance(1);
  CoverageEvaluator evaluator(inst.binned, inst.rules);
  RandomBaselineOptions options;
  options.k = 4;
  options.l = 3;
  options.max_iterations = 50;
  options.time_budget_seconds = 10.0;
  BaselineResult result = RandomBaseline(evaluator, options);
  EXPECT_EQ(result.row_ids.size(), 4u);
  EXPECT_EQ(result.col_ids.size(), 3u);
  EXPECT_EQ(result.iterations, 50u);
  EXPECT_GE(result.score.combined, 0.0);
}

TEST(RandomBaselineTest, MoreIterationsNeverWorse) {
  RandomInstance inst = MakeInstance(2);
  CoverageEvaluator evaluator(inst.binned, inst.rules);
  RandomBaselineOptions options;
  options.k = 4;
  options.l = 3;
  options.seed = 5;
  options.time_budget_seconds = 10.0;
  options.max_iterations = 1;
  const double one = RandomBaseline(evaluator, options).score.combined;
  options.max_iterations = 200;
  const double many = RandomBaseline(evaluator, options).score.combined;
  EXPECT_GE(many, one);  // Same seed: first draw is identical.
}

TEST(RandomBaselineTest, TargetsAlwaysIncluded) {
  RandomInstance inst = MakeInstance(3);
  CoverageEvaluator evaluator(inst.binned, inst.rules);
  RandomBaselineOptions options;
  options.k = 3;
  options.l = 2;
  options.target_cols = {4};
  options.max_iterations = 20;
  BaselineResult result = RandomBaseline(evaluator, options);
  EXPECT_NE(std::find(result.col_ids.begin(), result.col_ids.end(), 4u),
            result.col_ids.end());
}

// ------------------------------------------------------------------- NC --

TEST(NaiveClusteringTest, ShapeAndDistinctRows) {
  RandomInstance inst = MakeInstance(4, 30, 5);
  CoverageEvaluator evaluator(inst.binned, inst.rules);
  NaiveClusteringOptions options;
  options.k = 6;
  options.l = 3;
  BaselineResult result = NaiveClustering(evaluator, options);
  EXPECT_EQ(result.row_ids.size(), 6u);
  EXPECT_EQ(result.col_ids.size(), 3u);
  std::set<size_t> unique(result.row_ids.begin(), result.row_ids.end());
  EXPECT_EQ(unique.size(), 6u);
}

TEST(NaiveClusteringTest, TargetsIncluded) {
  RandomInstance inst = MakeInstance(5, 30, 5);
  CoverageEvaluator evaluator(inst.binned, inst.rules);
  NaiveClusteringOptions options;
  options.k = 4;
  options.l = 3;
  options.target_cols = {0};
  BaselineResult result = NaiveClustering(evaluator, options);
  EXPECT_NE(std::find(result.col_ids.begin(), result.col_ids.end(), 0u),
            result.col_ids.end());
}

// --------------------------------------------------------------- Greedy --

TEST(GreedyTest, RowSelectionMatchesAccumulator) {
  RandomInstance inst = MakeInstance(6);
  CoverageEvaluator evaluator(inst.binned, inst.rules);
  const std::vector<size_t> cols = {0, 1, 2, 3, 4};
  auto [rows, cells] = GreedyRowSelection(evaluator, 4, cols);
  EXPECT_EQ(rows.size(), 4u);
  EXPECT_EQ(cells, evaluator.CoveredCellCount(rows, cols));
}

TEST(GreedyTest, ExhaustiveBeatsOrMatchesSemiGreedy) {
  RandomInstance inst = MakeInstance(7);
  CoverageEvaluator evaluator(inst.binned, inst.rules);
  GreedyOptions options;
  options.k = 3;
  options.l = 3;
  options.alpha = 1.0;  // Coverage only, as in Algorithm 1.
  BaselineResult full = GreedySubTable(evaluator, options);

  options.randomize_column_order = true;
  options.time_budget_seconds = 10.0;
  options.max_column_combos = 3;
  BaselineResult semi = GreedySubTable(evaluator, options);
  EXPECT_GE(full.score.cell_coverage, semi.score.cell_coverage - 1e-12);
  EXPECT_EQ(full.iterations, 10u);  // C(5,3) column subsets.
}

class GreedyApproximationTest : public ::testing::TestWithParam<int> {};

TEST_P(GreedyApproximationTest, AchievesSubmodularBoundPerColumnSet) {
  // Prop. 4.3: for every fixed column set, greedy rows reach >= (1 - 1/e) of
  // the optimal row selection's coverage.
  RandomInstance inst = MakeInstance(100 + static_cast<uint64_t>(GetParam()), 12, 4);
  CoverageEvaluator evaluator(inst.binned, inst.rules);
  if (evaluator.upcov() == 0) GTEST_SKIP() << "no rules mined";

  const size_t k = 3;
  std::vector<size_t> cols = {0, 1, 2, 3};
  auto [greedy_rows, greedy_cells] = GreedyRowSelection(evaluator, k, cols);

  // Brute-force the optimal k rows for the same columns.
  size_t best_cells = 0;
  std::vector<size_t> rows = FirstCombination(k);
  do {
    best_cells = std::max(best_cells, evaluator.CoveredCellCount(rows, cols));
  } while (NextCombination(&rows, inst.binned.num_rows()));

  EXPECT_GE(static_cast<double>(greedy_cells),
            (1.0 - 1.0 / 2.718281828) * static_cast<double>(best_cells) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyApproximationTest, ::testing::Range(0, 10));

TEST(GreedyTest, OnExampleFixtureFindsOptimum) {
  // On the Fig. 3 fixture, exhaustive-column greedy (alpha=1 coverage
  // objective) must reach the known optimal coverage of 28/36 for k=3, l=4
  // with CANCELLED forced.
  Table t = MakeExampleTable();
  BinnedTable binned = BinnedTable::Compute(t);
  RuleSet rules = EnumerateRuleFamily(binned, kExampleCancelled);
  CoverageEvaluator evaluator(binned, rules);
  GreedyOptions options;
  options.k = 3;
  options.l = 4;
  options.target_cols = {kExampleCancelled};
  BaselineResult result = GreedySubTable(evaluator, options);
  EXPECT_NEAR(result.score.cell_coverage, 28.0 / 36.0, 1e-9);
}

// ------------------------------------------------------------------ MAB --

TEST(MabTest, ShapeAndReward) {
  RandomInstance inst = MakeInstance(8, 24, 5);
  CoverageEvaluator evaluator(inst.binned, inst.rules);
  MabOptions options;
  options.k = 4;
  options.l = 3;
  options.max_iterations = 60;
  options.time_budget_seconds = 10.0;
  BaselineResult result = MabBaseline(evaluator, options);
  EXPECT_EQ(result.row_ids.size(), 4u);
  EXPECT_EQ(result.col_ids.size(), 3u);
  EXPECT_EQ(result.iterations, 60u);
  EXPECT_GE(result.score.combined, 0.0);
  EXPECT_LE(result.score.combined, 1.0);
}

TEST(MabTest, BeatsSingleRandomDrawGivenBudget) {
  RandomInstance inst = MakeInstance(9, 24, 5);
  CoverageEvaluator evaluator(inst.binned, inst.rules);
  MabOptions mab;
  mab.k = 4;
  mab.l = 3;
  mab.max_iterations = 300;
  mab.time_budget_seconds = 30.0;
  const double mab_score = MabBaseline(evaluator, mab).score.combined;
  RandomBaselineOptions ran;
  ran.k = 4;
  ran.l = 3;
  ran.max_iterations = 1;
  ran.time_budget_seconds = 10.0;
  const double one_draw = RandomBaseline(evaluator, ran).score.combined;
  EXPECT_GE(mab_score, one_draw - 1e-12);
}

TEST(MabTest, TargetsIncluded) {
  RandomInstance inst = MakeInstance(10, 20, 5);
  CoverageEvaluator evaluator(inst.binned, inst.rules);
  MabOptions options;
  options.k = 3;
  options.l = 2;
  options.target_cols = {2};
  options.max_iterations = 10;
  BaselineResult result = MabBaseline(evaluator, options);
  EXPECT_NE(std::find(result.col_ids.begin(), result.col_ids.end(), 2u),
            result.col_ids.end());
}

// ----------------------------------------------------------- Brute force --

TEST(BruteForceTest, FindsExactOptimumOnTinyInstance) {
  RandomInstance inst = MakeInstance(11, 8, 4);
  CoverageEvaluator evaluator(inst.binned, inst.rules);
  BruteForceOptions options;
  options.k = 2;
  options.l = 2;
  BaselineResult best = BruteForceOptimal(evaluator, options);
  EXPECT_EQ(best.iterations, 28u * 6u);  // C(8,2) * C(4,2).

  // No random draw may beat it.
  RandomBaselineOptions ran;
  ran.k = 2;
  ran.l = 2;
  ran.max_iterations = 300;
  ran.time_budget_seconds = 30.0;
  const BaselineResult sampled = RandomBaseline(evaluator, ran);
  EXPECT_GE(best.score.combined, sampled.score.combined - 1e-12);
}

TEST(BruteForceTest, RespectsTargets) {
  RandomInstance inst = MakeInstance(12, 6, 4);
  CoverageEvaluator evaluator(inst.binned, inst.rules);
  BruteForceOptions options;
  options.k = 2;
  options.l = 2;
  options.target_cols = {1};
  BaselineResult best = BruteForceOptimal(evaluator, options);
  EXPECT_NE(std::find(best.col_ids.begin(), best.col_ids.end(), 1u),
            best.col_ids.end());
}

}  // namespace
}  // namespace subtab
