// Unit + property tests for the binning substrate (Def. 3.2).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "subtab/binning/binned_table.h"
#include "subtab/util/rng.h"

namespace subtab {
namespace {

std::vector<double> Ramp(size_t n) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = static_cast<double>(i);
  return v;
}

// ------------------------------------------------------------ Edge rules --

TEST(EqualWidthTest, ProducesRequestedEdges) {
  std::vector<double> edges = EqualWidthEdges(Ramp(100), 5);
  ASSERT_EQ(edges.size(), 4u);
  EXPECT_NEAR(edges[0], 19.8, 1e-9);
  EXPECT_NEAR(edges[3], 79.2, 1e-9);
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
}

TEST(EqualWidthTest, ConstantColumnHasNoEdges) {
  EXPECT_TRUE(EqualWidthEdges({5, 5, 5}, 4).empty());
  EXPECT_TRUE(EqualWidthEdges({}, 4).empty());
  EXPECT_TRUE(EqualWidthEdges({1, 2}, 1).empty());
}

TEST(QuantileTest, BalancedOnUniformData) {
  std::vector<double> edges = QuantileEdges(Ramp(1000), 4);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_NEAR(edges[0], 249.75, 1.0);
  EXPECT_NEAR(edges[1], 499.5, 1.0);
  EXPECT_NEAR(edges[2], 749.25, 1.0);
}

TEST(QuantileTest, HeavyTiesCollapseEdges) {
  // 90% zeros: most quantiles coincide at 0 and must be deduplicated.
  std::vector<double> v(100, 0.0);
  for (size_t i = 90; i < 100; ++i) v[i] = static_cast<double>(i);
  std::vector<double> edges = QuantileEdges(v, 5);
  EXPECT_LT(edges.size(), 4u);
  for (double e : edges) EXPECT_GT(e, 0.0);  // No empty first bin.
}

TEST(KdeTest, SplitsWellSeparatedModes) {
  // Two tight clusters around 0 and 100: the density minimum between them
  // must be found.
  Rng rng(1);
  std::vector<double> v;
  for (int i = 0; i < 300; ++i) v.push_back(rng.Normal(0, 2));
  for (int i = 0; i < 300; ++i) v.push_back(rng.Normal(100, 2));
  std::vector<double> edges = KdeEdges(v, 5);
  ASSERT_FALSE(edges.empty());
  bool has_separator = false;
  for (double e : edges) has_separator |= (e > 20 && e < 80);
  EXPECT_TRUE(has_separator);
}

TEST(KdeTest, ThreeModesYieldAtLeastTwoCuts) {
  Rng rng(2);
  std::vector<double> v;
  for (int i = 0; i < 200; ++i) v.push_back(rng.Normal(0, 1));
  for (int i = 0; i < 200; ++i) v.push_back(rng.Normal(50, 1));
  for (int i = 0; i < 200; ++i) v.push_back(rng.Normal(100, 1));
  std::vector<double> edges = KdeEdges(v, 5);
  EXPECT_GE(edges.size(), 2u);
}

TEST(KdeTest, UnimodalFallsBackToQuantiles) {
  Rng rng(3);
  std::vector<double> v;
  for (int i = 0; i < 2000; ++i) v.push_back(rng.Normal(0, 1));
  std::vector<double> edges = KdeEdges(v, 5);
  // Fallback guarantees the requested bin count on smooth unimodal data.
  EXPECT_EQ(edges.size(), 4u);
}

TEST(KdeTest, RespectsMaxBins) {
  Rng rng(4);
  std::vector<double> v;
  for (int mode = 0; mode < 8; ++mode) {
    for (int i = 0; i < 100; ++i) v.push_back(rng.Normal(mode * 30, 1));
  }
  std::vector<double> edges = KdeEdges(v, 4);  // 8 modes but only 4 bins.
  EXPECT_LE(edges.size(), 3u);
}

// ----------------------------------------------- Strategy property sweep --

struct StrategyCase {
  BinningStrategy strategy;
  uint32_t num_bins;
};

class BinningPropertyTest : public ::testing::TestWithParam<StrategyCase> {};

TEST_P(BinningPropertyTest, EveryValueFallsInExactlyOneBin) {
  const StrategyCase& param = GetParam();
  Rng rng(99);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) values.push_back(rng.Normal(0, 5));
  for (int i = 0; i < 500; ++i) values.push_back(rng.Normal(40, 3));
  Column col = Column::Numeric("x", values);

  BinningOptions options;
  options.strategy = param.strategy;
  options.num_bins = param.num_bins;
  ColumnBinning binning = BinNumericColumn(col, options);

  EXPECT_GE(binning.num_value_bins, 1u);
  EXPECT_LE(binning.num_value_bins, param.num_bins);
  EXPECT_EQ(binning.labels.size(), binning.num_bins());
  for (double v : values) {
    const uint32_t bin = binning.BinOfNumeric(v);
    EXPECT_LT(bin, binning.num_value_bins);
  }
  // Bin boundaries are monotone: larger values never land in earlier bins.
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  uint32_t prev = 0;
  for (double v : sorted) {
    const uint32_t bin = binning.BinOfNumeric(v);
    EXPECT_GE(bin, prev);
    prev = bin;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, BinningPropertyTest,
    ::testing::Values(StrategyCase{BinningStrategy::kEqualWidth, 3},
                      StrategyCase{BinningStrategy::kEqualWidth, 5},
                      StrategyCase{BinningStrategy::kEqualWidth, 10},
                      StrategyCase{BinningStrategy::kQuantile, 3},
                      StrategyCase{BinningStrategy::kQuantile, 5},
                      StrategyCase{BinningStrategy::kQuantile, 10},
                      StrategyCase{BinningStrategy::kKde, 3},
                      StrategyCase{BinningStrategy::kKde, 5},
                      StrategyCase{BinningStrategy::kKde, 10}));

// ------------------------------------------------------------ Categorical --

TEST(CategoricalBinningTest, FewCategoriesKeepOwnBins) {
  Column col = Column::Categorical("c", {"x", "y", "x", "z"});
  BinningOptions options;
  options.max_cat_bins = 5;
  ColumnBinning b = BinCategoricalColumn(col, options);
  EXPECT_EQ(b.num_value_bins, 3u);
  EXPECT_EQ(b.BinOfCode(col.cat_code(0)), b.BinOfCode(col.cat_code(2)));
  EXPECT_NE(b.BinOfCode(col.cat_code(0)), b.BinOfCode(col.cat_code(1)));
}

TEST(CategoricalBinningTest, TailCollapsesIntoOther) {
  std::vector<std::string> values;
  for (int i = 0; i < 50; ++i) values.push_back("big");
  for (int i = 0; i < 30; ++i) values.push_back("mid");
  for (int i = 0; i < 5; ++i) values.push_back(std::string("rare") + char('a' + i));
  Column col = Column::Categorical("c", values);
  BinningOptions options;
  options.max_cat_bins = 3;
  ColumnBinning b = BinCategoricalColumn(col, options);
  EXPECT_EQ(b.num_value_bins, 3u);  // big, mid, other.
  EXPECT_EQ(b.labels[0], "big");
  EXPECT_EQ(b.labels[1], "mid");
  EXPECT_EQ(b.labels[2], "other");
  // All rare categories share the "other" bin.
  const uint32_t other = 2;
  for (size_t r = 80; r < values.size(); ++r) {
    EXPECT_EQ(b.BinOfCode(col.cat_code(r)), other);
  }
}

TEST(CategoricalBinningTest, NullBinAlwaysLast) {
  Column col = Column::Categorical("c", {"a", "", "b"});
  ColumnBinning b = BinCategoricalColumn(col, BinningOptions{});
  EXPECT_EQ(b.null_bin(), b.num_value_bins);
  EXPECT_EQ(b.labels.back(), "NaN");
}

// ------------------------------------------------------------ BinnedTable --

Table MixedTable() {
  Column num = Column::Numeric("num", {1, 2, 3, 100, 101, 102, std::nan("")});
  Column cat = Column::Categorical("cat", {"a", "b", "a", "b", "a", "", "a"});
  Result<Table> t = Table::Make({std::move(num), std::move(cat)});
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

TEST(BinnedTableTest, ShapeAndTokens) {
  Table t = MixedTable();
  BinningOptions options;
  options.strategy = BinningStrategy::kEqualWidth;
  options.num_bins = 2;
  BinnedTable binned = BinnedTable::Compute(t, options);
  EXPECT_EQ(binned.num_rows(), 7u);
  EXPECT_EQ(binned.num_columns(), 2u);
  // Rows 0-2 share the low numeric bin; rows 3-5 the high one.
  EXPECT_EQ(binned.token(0, 0), binned.token(1, 0));
  EXPECT_NE(binned.token(0, 0), binned.token(3, 0));
  // Null lands in the dedicated bin.
  EXPECT_EQ(TokenBin(binned.token(6, 0)), binned.binning().column(0).null_bin());
}

TEST(BinnedTableTest, TokenPackingRoundTrip) {
  const Token t = MakeToken(17, 9);
  EXPECT_EQ(TokenColumn(t), 17u);
  EXPECT_EQ(TokenBin(t), 9u);
}

TEST(BinnedTableTest, DenseIndexBijection) {
  Table t = MixedTable();
  BinnedTable binned = BinnedTable::Compute(t, BinningOptions{});
  for (size_t d = 0; d < binned.total_bins(); ++d) {
    EXPECT_EQ(binned.DenseIndex(binned.TokenOfDense(d)), d);
  }
}

TEST(BinnedTableTest, TotalBinsIsColumnSum) {
  Table t = MixedTable();
  BinnedTable binned = BinnedTable::Compute(t, BinningOptions{});
  size_t sum = 0;
  for (size_t c = 0; c < binned.num_columns(); ++c) sum += binned.bins_in_column(c);
  EXPECT_EQ(binned.total_bins(), sum);
}

TEST(BinnedTableTest, TokenLabelNamesColumnAndBin) {
  Table t = MixedTable();
  BinnedTable binned = BinnedTable::Compute(t, BinningOptions{});
  const std::string label = binned.TokenLabel(binned.token(0, 1));
  EXPECT_EQ(label, "cat=a");
  const std::string null_label = binned.TokenLabel(binned.token(5, 1));
  EXPECT_EQ(null_label, "cat=NaN");
}

TEST(BinnedTableTest, RowDataMatchesTokenAccessor) {
  Table t = MixedTable();
  BinnedTable binned = BinnedTable::Compute(t, BinningOptions{});
  for (size_t r = 0; r < binned.num_rows(); ++r) {
    const Token* row = binned.row_data(r);
    for (size_t c = 0; c < binned.num_columns(); ++c) {
      EXPECT_EQ(row[c], binned.token(r, c));
    }
  }
}

TEST(BinnedTableTest, StrategyNames) {
  EXPECT_STREQ(BinningStrategyName(BinningStrategy::kKde), "kde");
  EXPECT_STREQ(BinningStrategyName(BinningStrategy::kQuantile), "quantile");
  EXPECT_STREQ(BinningStrategyName(BinningStrategy::kEqualWidth), "equal_width");
}

}  // namespace
}  // namespace subtab
