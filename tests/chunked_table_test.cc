// Differential + property tests for the chunked, shared-ownership column
// store (table/chunk.h). The refactor's contract is that chunking is purely
// physical: for ANY append schedule and chunk capacity, a chunked table is
// row-for-row identical to a flat rebuild of the same value sequence —
// cells, dictionaries, fingerprints, bin tokenizations, and selections are
// all bit-identical — while appends share (not copy) every prior chunk.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "subtab/binning/binned_table.h"
#include "subtab/core/fingerprint.h"
#include "subtab/core/subtab.h"
#include "subtab/stream/streaming_table.h"
#include "subtab/table/csv.h"
#include "subtab/table/table.h"

namespace subtab {
namespace {

using stream::StreamingTable;
using stream::TableVersion;

/// Column-wise value sequences a table is (re)built from.
struct RowStream {
  std::vector<double> n;        // Numeric, NaN = null.
  std::vector<double> m;        // Numeric.
  std::vector<std::string> c;   // Categorical, "" = null.
  std::vector<std::string> d;   // Categorical.

  size_t size() const { return n.size(); }

  RowStream Slice(size_t begin, size_t end) const {
    RowStream out;
    out.n.assign(n.begin() + begin, n.begin() + end);
    out.m.assign(m.begin() + begin, m.begin() + end);
    out.c.assign(c.begin() + begin, c.begin() + end);
    out.d.assign(d.begin() + begin, d.begin() + end);
    return out;
  }

  Table Build() const {
    Result<Table> table = Table::Make(
        {Column::Numeric("n", n), Column::Numeric("m", m),
         Column::Categorical("c", c), Column::Categorical("d", d)});
    SUBTAB_CHECK(table.ok());
    return std::move(*table);
  }
};

/// Deterministic random rows: nulls, repeated and fresh categories, values
/// drifting with the row index so later batches introduce unseen content.
RowStream MakeRows(size_t count, std::mt19937* rng, size_t index_base = 0) {
  std::uniform_real_distribution<double> value(-50.0, 50.0);
  std::uniform_int_distribution<int> coin(0, 9);
  const char* pool[] = {"ant", "bee", "cat", "dog", "elk", "fox"};
  RowStream rows;
  for (size_t i = 0; i < count; ++i) {
    const size_t index = index_base + i;
    rows.n.push_back(coin(*rng) == 0 ? std::nan("") : value(*rng));
    rows.m.push_back(static_cast<double>(index % 13) * 0.5);
    if (coin(*rng) == 0) {
      rows.c.push_back("");  // Null.
    } else if (coin(*rng) == 1) {
      rows.c.push_back("fresh_" + std::to_string(index / 40));  // Late-arriving.
    } else {
      rows.c.push_back(pool[static_cast<size_t>(coin(*rng)) % 6]);
    }
    rows.d.push_back(index % 4 == 0 ? "even" : "odd");
  }
  return rows;
}

void ExpectTablesBitIdentical(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  ASSERT_TRUE(a.schema() == b.schema());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    const Column& ca = a.column(c);
    const Column& cb = b.column(c);
    ASSERT_EQ(ca.dictionary(), cb.dictionary()) << "column " << ca.name();
    for (size_t r = 0; r < a.num_rows(); ++r) {
      ASSERT_EQ(ca.is_null(r), cb.is_null(r)) << ca.name() << " row " << r;
      if (ca.is_null(r)) continue;
      if (ca.is_numeric()) {
        // Bit-identical, not approximately equal.
        ASSERT_EQ(ca.num_value(r), cb.num_value(r)) << ca.name() << " row " << r;
      } else {
        ASSERT_EQ(ca.cat_code(r), cb.cat_code(r)) << ca.name() << " row " << r;
        ASSERT_EQ(ca.cat_value(r), cb.cat_value(r));
      }
    }
  }
  EXPECT_EQ(TableFingerprint(a), TableFingerprint(b));
}

/// Appends `rows` to `base` batch-by-batch per `batch_sizes`, with the given
/// per-append chunk capacity.
Table AppendSchedule(Table base, const RowStream& rows,
                     const std::vector<size_t>& batch_sizes,
                     size_t max_chunk_rows) {
  Table chunked = std::move(base);
  size_t offset = 0;
  for (size_t batch : batch_sizes) {
    Result<Table> next =
        chunked.AppendRows(rows.Slice(offset, offset + batch).Build(),
                           max_chunk_rows);
    SUBTAB_CHECK(next.ok());
    chunked = std::move(*next);
    offset += batch;
  }
  SUBTAB_CHECK(offset == rows.size());
  return chunked;
}

// ------------------------------------------------------------ Differential --

TEST(ChunkedTableTest, RandomizedAppendSchedulesMatchFlatRebuild) {
  std::mt19937 rng(20260731);
  const size_t chunk_caps[] = {0, 1, 3, 17, 4096};
  for (int schedule = 0; schedule < 8; ++schedule) {
    std::uniform_int_distribution<size_t> base_size(1, 80);
    std::uniform_int_distribution<size_t> batch_size(1, 40);
    std::uniform_int_distribution<size_t> batch_count(1, 9);
    const size_t base_rows = base_size(rng);
    std::vector<size_t> batches(batch_count(rng));
    size_t appended = 0;
    for (size_t& b : batches) {
      b = batch_size(rng);
      appended += b;
    }
    const RowStream all = MakeRows(base_rows + appended, &rng);
    const size_t cap = chunk_caps[static_cast<size_t>(schedule) %
                                  (sizeof(chunk_caps) / sizeof(chunk_caps[0]))];

    const Table chunked =
        AppendSchedule(all.Slice(0, base_rows).Build(),
                       all.Slice(base_rows, all.size()), batches, cap);
    const Table flat = all.Build();

    ASSERT_EQ(flat.num_chunks(), 1u);
    if (appended > 0 && cap != 4096) EXPECT_GT(chunked.num_chunks(), 1u);
    ExpectTablesBitIdentical(chunked, flat);

    // Slice fingerprints agree on arbitrary windows regardless of layout.
    std::uniform_int_distribution<size_t> pick(0, flat.num_rows());
    for (int probe = 0; probe < 4; ++probe) {
      size_t lo = pick(rng);
      size_t hi = pick(rng);
      if (lo > hi) std::swap(lo, hi);
      ASSERT_EQ(TableSliceFingerprint(chunked, lo, hi),
                TableSliceFingerprint(flat, lo, hi));
    }

    // Derived tables gather through the chunk-aware accessors identically.
    std::vector<size_t> take = {0, flat.num_rows() - 1, flat.num_rows() / 2, 0};
    ExpectTablesBitIdentical(chunked.TakeRows(take), flat.TakeRows(take));
    ExpectTablesBitIdentical(chunked.SelectColumns({2, 0}),
                             flat.SelectColumns({2, 0}));
    EXPECT_EQ(chunked.Describe().ToString(99), flat.Describe().ToString(99));
  }
}

TEST(ChunkedTableTest, TokenizationsAndSelectionsBitIdentical) {
  // The paper pipeline end to end on chunked vs flat content: binning must
  // tokenize every cell identically, and a fitted SubTab must select the
  // exact same sub-table (the engine's bit-identical-serving contract).
  std::mt19937 rng(7);
  const RowStream all = MakeRows(240, &rng);
  const Table flat = all.Build();
  const Table chunked = AppendSchedule(
      all.Slice(0, 60).Build(), all.Slice(60, all.size()), {90, 30, 60}, 25);

  const BinnedTable flat_binned = BinnedTable::Compute(flat);
  const BinnedTable chunked_binned = BinnedTable::Compute(chunked);
  ASSERT_EQ(flat_binned.num_rows(), chunked_binned.num_rows());
  ASSERT_EQ(flat_binned.total_bins(), chunked_binned.total_bins());
  for (size_t r = 0; r < flat_binned.num_rows(); ++r) {
    for (size_t c = 0; c < flat_binned.num_columns(); ++c) {
      ASSERT_EQ(flat_binned.token(r, c), chunked_binned.token(r, c));
    }
  }

  SubTabConfig config;
  config.k = 5;
  config.l = 3;
  config.embedding.dim = 8;
  config.embedding.epochs = 1;
  config.seed = 11;
  Result<SubTab> fit_flat = SubTab::Fit(flat, config);
  Result<SubTab> fit_chunked = SubTab::Fit(chunked, config);
  ASSERT_TRUE(fit_flat.ok() && fit_chunked.ok());

  const SubTabView view_flat = fit_flat->Select();
  const SubTabView view_chunked = fit_chunked->Select();
  EXPECT_EQ(view_flat.row_ids, view_chunked.row_ids);
  EXPECT_EQ(view_flat.col_ids, view_chunked.col_ids);
  EXPECT_EQ(view_flat.table.ToString(99), view_chunked.table.ToString(99));

  SpQuery query;
  query.filters = {Predicate::Num("m", CmpOp::kLe, 4.0),
                   Predicate::Str("d", CmpOp::kEq, "odd")};
  query.order_by = "m";
  Result<SubTabView> q_flat = fit_flat->SelectForQuery(query);
  Result<SubTabView> q_chunked = fit_chunked->SelectForQuery(query);
  ASSERT_TRUE(q_flat.ok() && q_chunked.ok());
  EXPECT_EQ(q_flat->row_ids, q_chunked->row_ids);
  EXPECT_EQ(q_flat->col_ids, q_chunked->col_ids);
  EXPECT_EQ(q_flat->table.ToString(99), q_chunked->table.ToString(99));

  // The staged pipeline's scan stage — chunk-parallel ResolveScope — feeds
  // SelectScoped bit-identically to the one-shot SelectForQuery above, on
  // both layouts and across thread counts.
  for (size_t threads : {size_t{2}, size_t{5}}) {
    QueryExecOptions exec;
    exec.num_threads = threads;
    exec.min_parallel_rows = 1;
    for (const SubTab* fit : {&*fit_flat, &*fit_chunked}) {
      Result<SelectionScope> scope = fit->ResolveScope(query, exec);
      ASSERT_TRUE(scope.ok());
      const SubTabView staged = fit->SelectScoped(*scope, config.k, config.l);
      EXPECT_EQ(staged.row_ids, q_flat->row_ids) << "threads=" << threads;
      EXPECT_EQ(staged.col_ids, q_flat->col_ids);
    }
  }
}

TEST(ChunkedTableTest, RechunkFlattenAndCsvPreserveContent) {
  std::mt19937 rng(99);
  const RowStream all = MakeRows(120, &rng);
  const Table flat = all.Build();

  const Table rechunked = flat.Rechunked(7);
  EXPECT_EQ(rechunked.num_chunks(), (120 + 6) / 7);
  ExpectTablesBitIdentical(rechunked, flat);

  const Table reflattened = rechunked.Flatten();
  EXPECT_EQ(reflattened.num_chunks(), 1u);
  ExpectTablesBitIdentical(reflattened, flat);

  // The CSV loader's chunked mode is layout-only too.
  std::ostringstream csv;
  ASSERT_TRUE(WriteCsv(flat, csv).ok());
  CsvOptions options;
  options.max_chunk_rows = 11;
  std::istringstream in(csv.str());
  Result<Table> loaded = ReadCsv(in, options);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_chunks(), (120 + 10) / 11);
  std::istringstream in_flat(csv.str());
  Result<Table> loaded_flat = ReadCsv(in_flat);
  ASSERT_TRUE(loaded_flat.ok());
  ExpectTablesBitIdentical(*loaded, *loaded_flat);
}

TEST(ChunkedTableTest, AppendRemapsDictionaryCodes) {
  // The batch's own dictionary orders values differently than the parent's;
  // appended cells must be remapped into the cumulative dictionary so codes
  // stay globally consistent across chunks.
  std::vector<std::string> base_vals = {"x", "y", "x"};
  std::vector<std::string> batch_vals = {"w", "y", "x", "w"};
  Result<Table> base = Table::Make({Column::Categorical("c", base_vals)});
  Result<Table> batch = Table::Make({Column::Categorical("c", batch_vals)});
  ASSERT_TRUE(base.ok() && batch.ok());
  Result<Table> grown = base->AppendRows(*batch);
  ASSERT_TRUE(grown.ok());
  const Column& col = grown->column(size_t{0});
  const std::vector<std::string> want_dict = {"x", "y", "w"};
  EXPECT_EQ(col.dictionary(), want_dict);
  EXPECT_EQ(col.cat_value(3), "w");
  EXPECT_EQ(col.cat_code(3), 2);   // Remapped (was 0 in the batch's dict).
  EXPECT_EQ(col.cat_code(0), 0);   // Parent codes untouched.
  EXPECT_EQ(col.cat_code(4), 1);
  EXPECT_EQ(col.cat_code(5), 0);
}

// ------------------------------------------------------------- Properties --

/// All sealed chunks of every column of `table`, in order.
std::vector<std::shared_ptr<const Chunk>> AllChunks(const Table& table) {
  std::vector<std::shared_ptr<const Chunk>> chunks;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    for (const auto& chunk : table.column(c).chunks()) chunks.push_back(chunk);
  }
  return chunks;
}

TEST(ChunkedTableTest, AppendSharesChunksWithoutHiddenCopies) {
  std::mt19937 rng(5);
  const RowStream all = MakeRows(100, &rng);
  auto stream = StreamingTable::Open(all.Slice(0, 40).Build());
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE((*stream)->Append(all.Slice(40, 70).Build()).ok());

  std::vector<const Chunk*> before;
  {
    const TableVersion v1 = (*stream)->Current();
    for (const auto& chunk : AllChunks(*v1.table)) before.push_back(chunk.get());
  }
  ASSERT_TRUE((*stream)->Append(all.Slice(70, 100).Build()).ok());
  TableVersion v2 = (*stream)->Current();

  // Chunk identity: the new version references the parent's chunks — the
  // very same objects, not copies.
  std::vector<const Chunk*> after;
  for (const auto& chunk : AllChunks(*v2.table)) after.push_back(chunk.get());
  ASSERT_GT(after.size(), before.size());
  size_t found = 0;
  for (const Chunk* chunk : before) {
    for (const Chunk* candidate : after) found += (candidate == chunk);
  }
  EXPECT_EQ(found, before.size());

  // Interior-chunk use_count property: a chunk's use_count counts the
  // distinct Table objects referencing it (holding a TableVersion copy
  // shares the same Table object and adds nothing). With no old snapshots
  // retained, an append leaves every interior chunk's count unchanged — the
  // new version takes over the reference the dropped parent held. Measured
  // through weak_ptrs so this test itself holds no table alive.
  std::vector<std::weak_ptr<const Chunk>> interior;
  for (const auto& chunk : AllChunks(*v2.table)) interior.push_back(chunk);
  v2.table.reset();
  const auto table_refs = [](const std::weak_ptr<const Chunk>& weak) {
    auto locked = weak.lock();
    SUBTAB_CHECK(locked != nullptr);
    return locked.use_count() - 1;  // Minus our own temporary lock.
  };
  for (const auto& weak : interior) ASSERT_EQ(table_refs(weak), 1);
  ASSERT_TRUE((*stream)->Append(all.Slice(0, 10).Build()).ok());
  for (const auto& weak : interior) {
    EXPECT_EQ(table_refs(weak), 1);  // Constant across Append: no copies.
  }
}

TEST(ChunkedTableTest, DroppingVersionsFreesOnlyUnsharedChunks) {
  std::mt19937 rng(13);
  const RowStream all = MakeRows(90, &rng);
  auto opened = StreamingTable::Open(all.Slice(0, 30).Build());
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<StreamingTable> stream = std::move(*opened);

  std::shared_ptr<const Table> t0 = stream->Current().table;
  ASSERT_TRUE(stream->Append(all.Slice(30, 60).Build()).ok());
  std::shared_ptr<const Table> t1 = stream->Current().table;
  ASSERT_TRUE(stream->Append(all.Slice(60, 90).Build()).ok());
  std::shared_ptr<const Table> t2 = stream->Current().table;

  const Column& col2 = t2->column(size_t{0});
  ASSERT_EQ(col2.chunks().size(), 3u);
  std::weak_ptr<const Chunk> base_chunk = col2.chunks()[0];
  std::weak_ptr<const Chunk> delta1_chunk = col2.chunks()[1];
  std::weak_ptr<const Chunk> delta2_chunk = col2.chunks()[2];

  // Destroy the stream: snapshots alone keep chunks alive.
  stream.reset();
  EXPECT_FALSE(base_chunk.expired());
  EXPECT_FALSE(delta1_chunk.expired());
  EXPECT_FALSE(delta2_chunk.expired());

  // Dropping the newest version frees exactly its unshared delta chunk.
  t2.reset();
  EXPECT_FALSE(base_chunk.expired());
  EXPECT_FALSE(delta1_chunk.expired());
  EXPECT_TRUE(delta2_chunk.expired());

  // Dropping the middle version frees its delta; the base, still referenced
  // by t0, survives.
  t1.reset();
  EXPECT_FALSE(base_chunk.expired());
  EXPECT_TRUE(delta1_chunk.expired());

  t0.reset();
  EXPECT_TRUE(base_chunk.expired());
}

TEST(ChunkedTableTest, ApproxBytesReflectsSharing) {
  std::mt19937 rng(21);
  const RowStream all = MakeRows(200, &rng);
  const Table base = all.Slice(0, 100).Build();
  Result<Table> grown = base.AppendRows(all.Slice(100, 200).Build());
  ASSERT_TRUE(grown.ok());
  // The grown table's payload is roughly base + delta; materializing the
  // same content flat costs about the same bytes — but the grown table
  // *shares* the base chunks, so base + grown resident together cost far
  // less than two flat copies (the engine's MemoryStats dedupes this).
  EXPECT_GT(grown->ApproxBytes(), base.ApproxBytes());
  size_t shared_bytes = 0;
  for (size_t c = 0; c < grown->num_columns(); ++c) {
    const auto& base_chunks = base.column(c).chunks();
    const auto& grown_chunks = grown->column(c).chunks();
    ASSERT_EQ(base_chunks.size(), 1u);
    ASSERT_EQ(grown_chunks.size(), 2u);
    EXPECT_EQ(grown_chunks[0].get(), base_chunks[0].get());
    shared_bytes += base_chunks[0]->ByteSize();
  }
  EXPECT_GT(shared_bytes, 0u);
}

}  // namespace
}  // namespace subtab
